// libFuzzer harness for GIOP framing: ParseHeader/ParseMessage plus the
// per-message-type header decoders behind them, including the QoS-extended
// Request header (version 9.9, paper Fig. 2-ii).
//
// Built with -fsanitize=fuzzer under Clang (COOL_FUZZERS=ON in CI); with
// other toolchains fuzz/standalone_main.cc supplies a main() that replays
// corpus files through the same entry point.
#include <cstddef>
#include <cstdint>
#include <span>

#include "giop/message.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  (void)cool::giop::ParseHeader(bytes);
  auto parsed = cool::giop::ParseMessage(bytes);
  if (!parsed.ok()) return 0;

  // A framed message: run the body through the type-specific header
  // parser the dispatch path would use.
  cool::cdr::Decoder dec = parsed->MakeBodyDecoder();
  switch (parsed->header.message_type) {
    case cool::giop::MsgType::kRequest:
      (void)cool::giop::ParseRequestHeader(dec, parsed->header.version);
      break;
    case cool::giop::MsgType::kReply:
      (void)cool::giop::ParseReplyHeader(dec);
      break;
    case cool::giop::MsgType::kCancelRequest:
      (void)cool::giop::ParseCancelRequestHeader(dec);
      break;
    case cool::giop::MsgType::kLocateRequest:
      (void)cool::giop::ParseLocateRequestHeader(dec);
      break;
    case cool::giop::MsgType::kLocateReply:
      (void)cool::giop::ParseLocateReplyHeader(dec);
      break;
    case cool::giop::MsgType::kCloseConnection:
    case cool::giop::MsgType::kMessageError:
      break;
  }
  return 0;
}
