// libFuzzer harness for the CDR decoder (promoted from the deterministic
// sweeps in tests/cdr/test_fuzz.cc). The input drives both the buffer
// contents and the sequence of typed reads, so the fuzzer can explore the
// alignment/underrun logic of every primitive, not just one fixed script.
//
// Built with -fsanitize=fuzzer under Clang (COOL_FUZZERS=ON in CI); with
// other toolchains fuzz/standalone_main.cc supplies a main() that replays
// corpus files through the same entry point.
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cdr/decoder.h"
#include "qos/qos.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 2) return 0;
  const auto order = (data[0] & 1) != 0 ? cool::cdr::ByteOrder::kLittleEndian
                                        : cool::cdr::ByteOrder::kBigEndian;
  const std::span<const std::uint8_t> body(data + 1, size - 1);

  // Pass 1: an op stream derived from the input itself selects typed
  // reads. Every call either succeeds or reports a clean protocol error;
  // ASan/UBSan watch for anything else.
  cool::cdr::Decoder dec(body, order);
  for (std::size_t i = 0; i < 64 && !dec.AtEnd(); ++i) {
    switch (data[(i * 7 + 1) % size] % 13) {
      case 0: (void)dec.GetOctet(); break;
      case 1: (void)dec.GetBoolean(); break;
      case 2: (void)dec.GetChar(); break;
      case 3: (void)dec.GetShort(); break;
      case 4: (void)dec.GetUShort(); break;
      case 5: (void)dec.GetLong(); break;
      case 6: (void)dec.GetULong(); break;
      case 7: (void)dec.GetLongLong(); break;
      case 8: (void)dec.GetULongLong(); break;
      case 9: (void)dec.GetFloat(); break;
      case 10: (void)dec.GetDouble(); break;
      case 11: (void)dec.GetString(); break;
      case 12: (void)dec.GetOctetSeq(); break;
    }
  }

  // Pass 2: the composite decoders layered on the primitives.
  cool::cdr::Decoder qos_dec(body, order);
  (void)cool::qos::DecodeQoSParameterSeq(qos_dec);
  cool::cdr::Decoder str_dec(body, order);
  (void)str_dec.GetStringView();
  (void)str_dec.GetOctetSeqView();

  // Pass 3: the bulk primitive-sequence decoders (memcpy/byteswap sweep),
  // driven across every element width. Hostile counts must surface as
  // clean protocol errors without over-allocation or out-of-bounds reads.
  {
    cool::cdr::Decoder seq_dec(body, order);
    std::vector<std::int16_t> v16;
    std::vector<std::int32_t> v32;
    std::vector<std::uint64_t> v64;
    std::vector<double> vd;
    std::vector<std::uint8_t> v8;
    for (std::size_t i = 0; i < 16 && !seq_dec.AtEnd(); ++i) {
      switch (data[(i * 11 + 3) % size] % 5) {
        case 0: (void)seq_dec.GetPrimitiveSeq(v16); break;
        case 1: (void)seq_dec.GetPrimitiveSeq(v32); break;
        case 2: (void)seq_dec.GetPrimitiveSeq(v64); break;
        case 3: (void)seq_dec.GetPrimitiveSeq(vd); break;
        case 4: (void)seq_dec.GetPrimitiveSeq(v8); break;
      }
    }
  }
  return 0;
}
