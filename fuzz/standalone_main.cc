// Fallback driver for toolchains without libFuzzer (-fsanitize=fuzzer is
// Clang-only; the default build here is GCC). Replays the files given on
// the command line — typically the checked-in corpus — through the same
// LLVMFuzzerTestOneInput entry point the real fuzzer uses, so the harness
// stays buildable and runnable everywhere. libFuzzer flags (-runs=...,
// -max_len=...) are accepted and ignored.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;  // ignore libFuzzer-style flags
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "standalone fuzzer: cannot open %s\n", argv[i]);
      return 1;
    }
    const std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    (void)LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    ++replayed;
  }
  std::fprintf(stderr, "standalone fuzzer: replayed %d input(s)\n", replayed);
  return 0;
}
