#include "common/status.h"

#include <gtest/gtest.h>

namespace cool {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(NotFoundError("a"), NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InternalError("a"));
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(FailedPreconditionError("").code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(NotFoundError("").code(), ErrorCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(ResourceExhaustedError("").code(),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(UnavailableError("").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(DeadlineExceededError("").code(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(CancelledError("").code(), ErrorCode::kCancelled);
  EXPECT_EQ(ProtocolError("").code(), ErrorCode::kProtocolError);
  EXPECT_EQ(UnsupportedError("").code(), ErrorCode::kUnsupported);
  EXPECT_EQ(InternalError("").code(), ErrorCode::kInternal);
}

TEST(StatusTest, ErrorCodeNamesAreDistinct) {
  EXPECT_EQ(ErrorCodeName(ErrorCode::kOk), "OK");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kProtocolError), "PROTOCOL_ERROR");
  EXPECT_NE(ErrorCodeName(ErrorCode::kNotFound),
            ErrorCodeName(ErrorCode::kUnavailable));
}

// Built through a function returning Result<int>, as call sites do. (A
// directly-constructed local trips a GCC 12 -Wmaybe-uninitialized false
// positive in the variant destructor once status() is also called.)
Result<int> MakeFortyTwo() { return 42; }

TEST(ResultTest, HoldsValue) {
  Result<int> r = MakeFortyTwo();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFoundError("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok_result(7);
  Result<int> err_result(InternalError("x"));
  EXPECT_EQ(ok_result.value_or(0), 7);
  EXPECT_EQ(err_result.value_or(99), 99);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, MacroReturnsEarlyOnError) {
  auto failing = []() -> Result<int> { return InternalError("boom"); };
  auto wrapper = [&]() -> Result<int> {
    COOL_ASSIGN_OR_RETURN(int v, failing());
    return v + 1;
  };
  EXPECT_EQ(wrapper().status().code(), ErrorCode::kInternal);

  auto succeeding = []() -> Result<int> { return 1; };
  auto wrapper2 = [&]() -> Result<int> {
    COOL_ASSIGN_OR_RETURN(int v, succeeding());
    return v + 1;
  };
  EXPECT_EQ(*wrapper2(), 2);
}

TEST(ResultTest, ReturnIfErrorMacro) {
  auto f = [](bool fail) -> Status {
    COOL_RETURN_IF_ERROR(fail ? InternalError("x") : Status::Ok());
    return AlreadyExistsError("reached end");
  };
  EXPECT_EQ(f(true).code(), ErrorCode::kInternal);
  EXPECT_EQ(f(false).code(), ErrorCode::kAlreadyExists);
}

}  // namespace
}  // namespace cool
