#include "common/clock.h"

#include <gtest/gtest.h>

namespace cool {
namespace {

TEST(ClockTest, ConversionsAreConsistent) {
  const Duration d = milliseconds(1500);
  EXPECT_DOUBLE_EQ(ToSeconds(d), 1.5);
  EXPECT_DOUBLE_EQ(ToMillis(d), 1500.0);
  EXPECT_DOUBLE_EQ(ToMicros(d), 1'500'000.0);
}

TEST(ClockTest, NowIsMonotonic) {
  const TimePoint a = Now();
  const TimePoint b = Now();
  EXPECT_LE(a, b);
}

TEST(ClockTest, PreciseSleepZeroAndNegativeReturnImmediately) {
  const Stopwatch sw;
  PreciseSleep(Duration::zero());
  PreciseSleep(milliseconds(-5));
  EXPECT_LT(sw.Elapsed(), milliseconds(5));
}

TEST(ClockTest, PreciseSleepShortDurationsAreAccurate) {
  // Sub-50us sleeps busy-wait; they must not undershoot.
  for (const auto target : {microseconds(10), microseconds(40)}) {
    const Stopwatch sw;
    PreciseSleep(target);
    EXPECT_GE(sw.Elapsed(), target);
    EXPECT_LT(sw.Elapsed(), target + milliseconds(5));
  }
}

TEST(ClockTest, PreciseSleepLongDurationNeverUndershoots) {
  const Duration target = milliseconds(20);
  const Stopwatch sw;
  PreciseSleep(target);
  EXPECT_GE(sw.Elapsed(), target);
}

TEST(ClockTest, StopwatchResets) {
  Stopwatch sw;
  PreciseSleep(milliseconds(10));
  EXPECT_GE(sw.Elapsed(), milliseconds(9));
  sw.Reset();
  EXPECT_LT(sw.Elapsed(), milliseconds(5));
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace cool
