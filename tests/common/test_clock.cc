#include "common/clock.h"

#include <gtest/gtest.h>

namespace cool {
namespace {

TEST(ClockTest, ConversionsAreConsistent) {
  const Duration d = milliseconds(1500);
  EXPECT_DOUBLE_EQ(ToSeconds(d), 1.5);
  EXPECT_DOUBLE_EQ(ToMillis(d), 1500.0);
  EXPECT_DOUBLE_EQ(ToMicros(d), 1'500'000.0);
}

TEST(ClockTest, NowIsMonotonic) {
  const TimePoint a = Now();
  const TimePoint b = Now();
  EXPECT_LE(a, b);
}

TEST(ClockTest, PreciseSleepZeroAndNegativeReturnImmediately) {
  const Stopwatch sw;
  PreciseSleep(Duration::zero());
  PreciseSleep(milliseconds(-5));
  EXPECT_LT(sw.Elapsed(), milliseconds(5));
}

TEST(ClockTest, PreciseSleepShortDurationsAreAccurate) {
  // Sub-50us sleeps busy-wait; they must not undershoot.
  for (const auto target : {microseconds(10), microseconds(40)}) {
    const Stopwatch sw;
    PreciseSleep(target);
    EXPECT_GE(sw.Elapsed(), target);
    EXPECT_LT(sw.Elapsed(), target + milliseconds(5));
  }
}

TEST(ClockTest, PreciseSleepLongDurationNeverUndershoots) {
  const Duration target = milliseconds(20);
  const Stopwatch sw;
  PreciseSleep(target);
  EXPECT_GE(sw.Elapsed(), target);
}

TEST(ClockTest, DeadlineForOrdinaryTimeoutIsNowPlusTimeout) {
  const TimePoint before = Now();
  const TimePoint deadline = DeadlineFor(milliseconds(100));
  const TimePoint after = Now();
  EXPECT_GE(deadline, before + milliseconds(100));
  EXPECT_LE(deadline, after + milliseconds(100));
}

// Regression: `Now() + Duration::max()` wraps negative, turning "wait
// forever" into "already expired". The saturating helper must pin huge
// timeouts to TimePoint::max() instead.
TEST(ClockTest, DeadlineForSaturatesInsteadOfWrapping) {
  EXPECT_EQ(DeadlineFor(Duration::max()), TimePoint::max());
  // Near-max values that would still overflow must saturate too.
  EXPECT_EQ(DeadlineFor(Duration::max() - milliseconds(1)),
            TimePoint::max());
}

TEST(ClockTest, DeadlineFromSaturatesAtAnyBase) {
  const TimePoint base = Now();
  EXPECT_EQ(DeadlineFrom(base, Duration::max()), TimePoint::max());
  EXPECT_EQ(DeadlineFrom(base, milliseconds(5)), base + milliseconds(5));
  EXPECT_EQ(DeadlineFrom(TimePoint::max() - milliseconds(1), seconds(1)),
            TimePoint::max());
}

TEST(ClockTest, DeadlineForZeroAndNegativeTimeouts) {
  const TimePoint before = Now();
  EXPECT_GE(DeadlineFor(Duration::zero()), before);
  // Negative timeouts mean "already expired", never saturation.
  EXPECT_LT(DeadlineFor(milliseconds(-10)), Now());
}

TEST(ClockTest, StopwatchResets) {
  Stopwatch sw;
  PreciseSleep(milliseconds(10));
  EXPECT_GE(sw.Elapsed(), milliseconds(9));
  sw.Reset();
  EXPECT_LT(sw.Elapsed(), milliseconds(5));
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace cool
