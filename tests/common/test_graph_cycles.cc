// GraphCycles (Pearce–Kelly incremental topological order): the pure
// algorithm under the deadlock detector. Cycle rejection, versioned node
// reuse, path reporting, and a randomized stress run against a model DAG.
#include "common/graph_cycles.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"

namespace cool {
namespace {

// Stable fake identity keys: the graph only compares pointers.
struct Keys {
  explicit Keys(std::size_t n) : slots(n) {}
  void* operator[](std::size_t i) { return &slots[i]; }
  std::vector<int> slots;
};

TEST(GraphCyclesTest, EdgesAndCycleRejection) {
  GraphCycles g;
  Keys k(3);
  const GraphId a = g.GetId(k[0]);
  const GraphId b = g.GetId(k[1]);
  const GraphId c = g.GetId(k[2]);
  EXPECT_EQ(g.num_nodes(), 3);

  EXPECT_TRUE(g.InsertEdge(a, b));
  EXPECT_TRUE(g.InsertEdge(b, c));
  EXPECT_TRUE(g.HasEdge(a, b));
  EXPECT_TRUE(g.HasEdge(b, c));
  EXPECT_EQ(g.num_edges(), 2);

  // a ->* c exists, so c -> a must be rejected and NOT recorded.
  EXPECT_FALSE(g.InsertEdge(c, a));
  EXPECT_FALSE(g.HasEdge(c, a));
  EXPECT_EQ(g.num_edges(), 2);

  // The transitive shortcut is fine; so is a duplicate (idempotent).
  EXPECT_TRUE(g.InsertEdge(a, c));
  EXPECT_TRUE(g.InsertEdge(a, c));
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(GraphCyclesTest, SelfEdgeIsACycle) {
  GraphCycles g;
  Keys k(1);
  const GraphId a = g.GetId(k[0]);
  EXPECT_FALSE(g.InsertEdge(a, a));
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(GraphCyclesTest, FindPathReturnsTheConflictingOrder) {
  GraphCycles g;
  Keys k(4);
  const GraphId a = g.GetId(k[0]);
  const GraphId b = g.GetId(k[1]);
  const GraphId c = g.GetId(k[2]);
  const GraphId d = g.GetId(k[3]);
  ASSERT_TRUE(g.InsertEdge(a, b));
  ASSERT_TRUE(g.InsertEdge(b, c));
  ASSERT_TRUE(g.InsertEdge(c, d));
  ASSERT_FALSE(g.InsertEdge(d, a));

  // The pre-existing a ->* d ordering that conflicts with edge d -> a.
  GraphId path[8];
  const int len = g.FindPath(d, a, 8, path);
  ASSERT_EQ(len, 4);
  EXPECT_EQ(path[0], a);
  EXPECT_EQ(path[1], b);
  EXPECT_EQ(path[2], c);
  EXPECT_EQ(path[3], d);

  // Truncation: the reported length exceeds max_len so callers can tell.
  GraphId short_path[2];
  EXPECT_EQ(g.FindPath(d, a, 2, short_path), 4);
  EXPECT_EQ(short_path[0], a);
  EXPECT_EQ(short_path[1], b);

  // No path in the unconnected direction.
  Keys other(1);
  const GraphId e = g.GetId(other[0]);
  EXPECT_EQ(g.FindPath(a, e, 8, path), 0);
}

TEST(GraphCyclesTest, RemoveEdgeAllowsTheReverseOrder) {
  GraphCycles g;
  Keys k(2);
  const GraphId a = g.GetId(k[0]);
  const GraphId b = g.GetId(k[1]);
  ASSERT_TRUE(g.InsertEdge(a, b));
  ASSERT_FALSE(g.InsertEdge(b, a));
  g.RemoveEdge(a, b);
  EXPECT_FALSE(g.HasEdge(a, b));
  EXPECT_TRUE(g.InsertEdge(b, a));
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(GraphCyclesTest, NodeRemovalInvalidatesHandlesAndFreesEdges) {
  GraphCycles g;
  Keys k(3);
  const GraphId a = g.GetId(k[0]);
  const GraphId b = g.GetId(k[1]);
  const GraphId c = g.GetId(k[2]);
  ASSERT_TRUE(g.InsertEdge(a, b));
  ASSERT_TRUE(g.InsertEdge(b, c));

  g.RemoveNode(k[1]);
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.Ptr(b), nullptr);
  EXPECT_FALSE(g.InsertEdge(a, b));  // stale id
  EXPECT_FALSE(g.HasEdge(a, b));

  // With b gone there is no a ->* c order: c -> a becomes legal.
  EXPECT_TRUE(g.InsertEdge(c, a));
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(GraphCyclesTest, SlotReuseBumpsTheVersion) {
  GraphCycles g;
  Keys k(2);
  const GraphId old_id = g.GetId(k[0]);
  g.RemoveNode(k[0]);

  // New nodes may reuse the slot, but never the handle.
  const GraphId n1 = g.GetId(k[1]);
  const GraphId n2 = g.GetId(k[0]);
  EXPECT_NE(n1, old_id);
  EXPECT_NE(n2, old_id);
  EXPECT_EQ(g.Ptr(old_id), nullptr);
  EXPECT_EQ(g.Ptr(n2), k[0]);

  // GetId is stable for a live pointer.
  EXPECT_EQ(g.GetId(k[0]), n2);
}

TEST(GraphCyclesTest, NodeInfoRoundTrips) {
  GraphCycles g;
  Keys k(1);
  int payload = 7;
  const GraphId a = g.GetId(k[0]);
  EXPECT_EQ(g.GetNodeInfo(a), nullptr);
  g.SetNodeInfo(a, &payload);
  EXPECT_EQ(g.GetNodeInfo(a), &payload);
  g.RemoveNode(k[0]);
  EXPECT_EQ(g.GetNodeInfo(a), nullptr);
}

TEST(GraphCyclesTest, StressRandomEdgesAgainstModel) {
  // Insert random edges; mirror accepted ones in a model reachability
  // matrix. The graph must accept exactly the edges that do not close a
  // cycle in the model, and its invariants must hold throughout.
  constexpr int kN = 48;
  GraphCycles g;
  Keys k(kN);
  std::vector<GraphId> ids(kN);
  for (int i = 0; i < kN; ++i) ids[static_cast<std::size_t>(i)] = g.GetId(k[static_cast<std::size_t>(i)]);

  std::vector<std::vector<bool>> reach(
      kN, std::vector<bool>(kN, false));  // reach[i][j]: i ->* j, i != j
  Rng rng(20260808);
  int accepted = 0;
  for (int iter = 0; iter < 1200; ++iter) {
    const int x = static_cast<int>(rng.NextBelow(kN));
    const int y = static_cast<int>(rng.NextBelow(kN));
    const bool would_cycle =
        x == y || reach[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)];
    const bool ok = g.InsertEdge(ids[static_cast<std::size_t>(x)],
                                 ids[static_cast<std::size_t>(y)]);
    ASSERT_EQ(ok, !would_cycle) << "edge " << x << " -> " << y;
    if (ok) {
      ++accepted;
      // Close the model's transitive closure over the new edge.
      for (int i = 0; i < kN; ++i) {
        const bool to_x = i == x || reach[static_cast<std::size_t>(i)][static_cast<std::size_t>(x)];
        if (!to_x) continue;
        for (int j = 0; j < kN; ++j) {
          const bool from_y = j == y || reach[static_cast<std::size_t>(y)][static_cast<std::size_t>(j)];
          if (from_y && i != j) reach[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = true;
        }
      }
    }
    if (iter % 100 == 99) {
      ASSERT_TRUE(g.CheckInvariants()) << "iter " << iter;
    }
  }
  EXPECT_GT(accepted, 0);
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(GraphCyclesTest, StressChurnNodesAndEdges) {
  // Interleave node removal with edge insertion; invariants must survive
  // slot reuse and edge cleanup.
  constexpr int kN = 24;
  GraphCycles g;
  Keys k(kN);
  Rng rng(97);
  for (int iter = 0; iter < 600; ++iter) {
    const std::size_t x = rng.NextBelow(kN);
    const std::size_t y = rng.NextBelow(kN);
    switch (rng.NextBelow(4)) {
      case 0:
        g.RemoveNode(k[x]);
        break;
      case 1:
        g.RemoveEdge(g.GetId(k[x]), g.GetId(k[y]));
        break;
      default:
        (void)g.InsertEdge(g.GetId(k[x]), g.GetId(k[y]));
        break;
    }
    if (iter % 60 == 59) {
      ASSERT_TRUE(g.CheckInvariants()) << "iter " << iter;
    }
  }
  EXPECT_TRUE(g.CheckInvariants());
}

}  // namespace
}  // namespace cool
