#include "common/byte_buffer.h"

#include <gtest/gtest.h>

namespace cool {
namespace {

TEST(ByteBufferTest, StartsEmpty) {
  ByteBuffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.remaining(), 0u);
}

TEST(ByteBufferTest, AppendAndRead) {
  ByteBuffer b;
  const std::uint8_t data[] = {1, 2, 3, 4};
  b.Append(data);
  EXPECT_EQ(b.size(), 4u);

  std::uint8_t out[4] = {};
  ASSERT_TRUE(b.Read(out).ok());
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[3], 4);
  EXPECT_EQ(b.remaining(), 0u);
}

TEST(ByteBufferTest, ReadPastEndFailsWithoutConsuming) {
  ByteBuffer b;
  b.AppendByte(7);
  std::uint8_t out[2];
  EXPECT_EQ(b.Read(out).code(), ErrorCode::kProtocolError);
  EXPECT_EQ(b.remaining(), 1u);  // nothing consumed
}

TEST(ByteBufferTest, PartialReadsAdvanceCursor) {
  ByteBuffer b = ByteBuffer::FromString("abcdef");
  std::uint8_t out[2];
  ASSERT_TRUE(b.Read(out).ok());
  EXPECT_EQ(out[0], 'a');
  ASSERT_TRUE(b.Read(out).ok());
  EXPECT_EQ(out[0], 'c');
  EXPECT_EQ(b.remaining(), 2u);
}

TEST(ByteBufferTest, SkipAndSetReadPos) {
  ByteBuffer b = ByteBuffer::FromString("hello");
  ASSERT_TRUE(b.Skip(3).ok());
  EXPECT_EQ(b.remaining(), 2u);
  b.set_read_pos(0);
  EXPECT_EQ(b.remaining(), 5u);
  EXPECT_EQ(b.Skip(6).code(), ErrorCode::kProtocolError);
}

TEST(ByteBufferTest, WriteAtPatchesInPlace) {
  ByteBuffer b;
  b.AppendZeros(8);
  const std::uint8_t patch[] = {0xAA, 0xBB};
  ASSERT_TRUE(b.WriteAt(3, patch).ok());
  EXPECT_EQ(b.data()[3], 0xAA);
  EXPECT_EQ(b.data()[4], 0xBB);
  EXPECT_EQ(b.data()[5], 0);
}

TEST(ByteBufferTest, WriteAtOutOfRangeFails) {
  ByteBuffer b;
  b.AppendZeros(4);
  const std::uint8_t patch[] = {1, 2, 3};
  EXPECT_EQ(b.WriteAt(2, patch).code(), ErrorCode::kInvalidArgument);
}

TEST(ByteBufferTest, AppendZerosWritesZeros) {
  ByteBuffer b;
  b.AppendByte(9);
  b.AppendZeros(3);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b.data()[1], 0);
  EXPECT_EQ(b.data()[3], 0);
}

TEST(ByteBufferTest, RoundTripString) {
  ByteBuffer b = ByteBuffer::FromString("cool orb");
  EXPECT_EQ(b.ToString(), "cool orb");
}

TEST(ByteBufferTest, EqualityComparesContents) {
  EXPECT_EQ(ByteBuffer::FromString("x"), ByteBuffer::FromString("x"));
  EXPECT_FALSE(ByteBuffer::FromString("x") == ByteBuffer::FromString("y"));
}

TEST(ByteBufferTest, HexDumpTruncates) {
  ByteBuffer b;
  for (int i = 0; i < 100; ++i) b.AppendByte(0xAB);
  const std::string dump = b.HexDump(4);
  EXPECT_NE(dump.find("ab ab ab ab"), std::string::npos);
  EXPECT_NE(dump.find("..."), std::string::npos);
}

TEST(ByteBufferTest, ClearResetsEverything) {
  ByteBuffer b = ByteBuffer::FromString("data");
  std::uint8_t out[2];
  ASSERT_TRUE(b.Read(out).ok());
  b.Clear();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.read_pos(), 0u);
}

TEST(ByteBufferTest, UnreadViewTracksCursor) {
  ByteBuffer b = ByteBuffer::FromString("abcd");
  ASSERT_TRUE(b.Skip(1).ok());
  auto view = b.unread();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], 'b');
}

}  // namespace
}  // namespace cool
