#include "common/intrusive_list.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace cool {
namespace {

struct Node {
  explicit Node(int v) : value(v) {}
  int value;
  DLink link;
};

using NodeList = DList<Node, &Node::link>;

TEST(IntrusiveListTest, StartsEmpty) {
  NodeList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.Front(), nullptr);
  EXPECT_EQ(list.PopFront(), nullptr);
}

TEST(IntrusiveListTest, PushBackPreservesOrder) {
  NodeList list;
  Node a(1), b(2), c(3);
  list.PushBack(a);
  list.PushBack(b);
  list.PushBack(c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.Front()->value, 1);
  EXPECT_EQ(list.Back()->value, 3);

  std::vector<int> seen;
  for (Node& n : list) seen.push_back(n.value);
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST(IntrusiveListTest, PushFront) {
  NodeList list;
  Node a(1), b(2);
  list.PushFront(a);
  list.PushFront(b);
  EXPECT_EQ(list.Front()->value, 2);
  EXPECT_EQ(list.Back()->value, 1);
}

TEST(IntrusiveListTest, RemoveMiddleElement) {
  NodeList list;
  Node a(1), b(2), c(3);
  list.PushBack(a);
  list.PushBack(b);
  list.PushBack(c);
  NodeList::Remove(b);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_FALSE(NodeList::IsLinked(b));
  std::vector<int> seen;
  for (Node& n : list) seen.push_back(n.value);
  EXPECT_EQ(seen, (std::vector<int>{1, 3}));
}

TEST(IntrusiveListTest, DestructionUnlinksAutomatically) {
  NodeList list;
  Node a(1);
  {
    Node temp(2);
    list.PushBack(a);
    list.PushBack(temp);
    EXPECT_EQ(list.size(), 2u);
  }  // temp destroyed -> unlinked
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.Front()->value, 1);
}

TEST(IntrusiveListTest, PopFrontReturnsInOrder) {
  NodeList list;
  Node a(1), b(2);
  list.PushBack(a);
  list.PushBack(b);
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 2);
  EXPECT_EQ(list.PopFront(), nullptr);
  EXPECT_FALSE(NodeList::IsLinked(a));
}

TEST(IntrusiveListTest, UnlinkIsIdempotent) {
  Node a(1);
  a.link.Unlink();  // never linked: no-op
  NodeList list;
  list.PushBack(a);
  NodeList::Remove(a);
  NodeList::Remove(a);  // second remove: no-op
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveListTest, ElementCanMoveBetweenLists) {
  NodeList list1;
  NodeList list2;
  Node a(1);
  list1.PushBack(a);
  NodeList::Remove(a);
  list2.PushBack(a);
  EXPECT_TRUE(list1.empty());
  EXPECT_EQ(list2.size(), 1u);
}

TEST(IntrusiveListTest, ClearUnlinksAll) {
  NodeList list;
  Node a(1), b(2);
  list.PushBack(a);
  list.PushBack(b);
  list.Clear();
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(NodeList::IsLinked(a));
  EXPECT_FALSE(NodeList::IsLinked(b));
}

TEST(IntrusiveListTest, ListDestructionLeavesNodesValid) {
  Node a(1);
  {
    NodeList list;
    list.PushBack(a);
  }
  EXPECT_FALSE(NodeList::IsLinked(a));
}

}  // namespace
}  // namespace cool
