// BufferPool: the bounded free list behind the allocation-free invocation
// path. Covers the ownership rules of DESIGN.md "Buffer ownership and
// lifetimes": leases recycle on destruction and move-assign-over, copies
// are unpooled, and capacity/free-list caps hold. The concurrent test is a
// TSan target: lease/recycle from many threads against one pool.
#include "common/buffer_pool.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/thread.h"

namespace cool {
namespace {

TEST(BufferPoolTest, FirstLeaseMissesThenRecycledStorageHits) {
  BufferPool pool;
  {
    ByteBuffer b = pool.Lease();
    EXPECT_TRUE(b.empty());
    b.AppendByte(0x5A);
  }  // recycles
  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.free_buffers, 1u);

  {
    ByteBuffer b = pool.Lease();
    EXPECT_TRUE(b.empty());  // recycled storage comes back cleared
  }
  s = pool.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(BufferPoolTest, RecycledAllocationIsActuallyReused) {
  BufferPool pool;
  const std::uint8_t* storage = nullptr;
  {
    ByteBuffer b = pool.Lease(256);
    b.AppendZeros(100);
    storage = b.data();
  }
  ByteBuffer again = pool.Lease(64);
  again.AppendByte(1);
  EXPECT_EQ(again.data(), storage);  // same backing allocation, no new heap
}

TEST(BufferPoolTest, OversizedStorageIsNotCached) {
  BufferPool::Options opt;
  opt.max_capacity = 1024;
  opt.initial_reserve = 64;
  BufferPool pool(opt);
  {
    ByteBuffer b = pool.Lease();
    b.AppendZeros(4096);  // grows past max_capacity
  }
  EXPECT_EQ(pool.stats().free_buffers, 0u);
}

TEST(BufferPoolTest, FreeListIsBounded) {
  BufferPool::Options opt;
  opt.max_buffers = 2;
  BufferPool pool(opt);
  {
    std::vector<ByteBuffer> live;
    for (int i = 0; i < 5; ++i) live.push_back(pool.Lease());
  }  // five recycles race for two slots
  EXPECT_EQ(pool.stats().free_buffers, 2u);
}

TEST(BufferPoolTest, CopyIsUnpooledMoveCarriesHoming) {
  BufferPool pool;
  {
    ByteBuffer leased = pool.Lease();
    leased.AppendByte(7);
    ByteBuffer copy = leased;              // unpooled: dies silently
    ByteBuffer moved = std::move(leased);  // homed: recycles
    EXPECT_EQ(copy.size(), 1u);
    EXPECT_EQ(moved.size(), 1u);
  }
  EXPECT_EQ(pool.stats().free_buffers, 1u);
}

TEST(BufferPoolTest, MoveAssignOverLeaseRecyclesTheOldStorage) {
  BufferPool pool;
  {
    ByteBuffer a = pool.Lease();
    ByteBuffer b = pool.Lease();
    a = std::move(b);  // a's original storage returns to the pool here
    EXPECT_EQ(pool.stats().free_buffers, 1u);
  }
  EXPECT_EQ(pool.stats().free_buffers, 2u);
}

// TSan target: concurrent lease/append/recycle against one pool.
TEST(BufferPoolStressTest, ConcurrentLeaseRecycle) {
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  BufferPool pool;
  {
    std::vector<Thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&pool] {
        for (int i = 0; i < kIters; ++i) {
          ByteBuffer b = pool.Lease(64);
          b.AppendByte(static_cast<std::uint8_t>(i));
          ByteBuffer taken = std::move(b);
          ASSERT_EQ(taken.size(), 1u);
        }  // recycle
      });
    }
    for (Thread& t : threads) t.join();
  }
  const BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_LE(s.free_buffers, BufferPool::Options{}.max_buffers);
}

}  // namespace
}  // namespace cool
