#include "common/logging.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/thread.h"

namespace cool {
namespace {

// Restores the process-wide level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }

  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, LevelGateWorks) {
  SetLogLevel(LogLevel::kWarn);
  EXPECT_FALSE(LogEnabled(LogLevel::kTrace));
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));

  SetLogLevel(LogLevel::kTrace);
  EXPECT_TRUE(LogEnabled(LogLevel::kTrace));

  SetLogLevel(LogLevel::kOff);
  EXPECT_FALSE(LogEnabled(LogLevel::kError));
}

TEST_F(LoggingTest, MacroSkipsStreamingWhenDisabled) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  COOL_LOG(kDebug, "test") << "never built: " << expensive();
  EXPECT_EQ(evaluations, 0);
  COOL_LOG(kError, "test") << "built once: " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, ConcurrentLoggingDoesNotCrash) {
  SetLogLevel(LogLevel::kError);
  std::vector<cool::Thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 5; ++i) {
        COOL_LOG(kError, "stress") << "thread " << t << " line " << i;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  SUCCEED();
}

}  // namespace
}  // namespace cool
