#include "common/blocking_queue.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/thread.h"

namespace cool {
namespace {

TEST(BlockingQueueTest, PushPopSingleThread) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_TRUE(q.empty());
}

TEST(BlockingQueueTest, TryPopEmptyReturnsNullopt) {
  BlockingQueue<int> q;
  EXPECT_EQ(q.TryPop(), std::nullopt);
}

TEST(BlockingQueueTest, PopForTimesOut) {
  BlockingQueue<int> q;
  const Stopwatch sw;
  EXPECT_EQ(q.PopFor(milliseconds(30)), std::nullopt);
  EXPECT_GE(sw.Elapsed(), milliseconds(25));
}

TEST(BlockingQueueTest, CloseDrainsThenSignals) {
  BlockingQueue<int> q;
  q.Push(5);
  q.Close();
  EXPECT_FALSE(q.Push(6));  // rejected after close
  EXPECT_EQ(q.Pop(), 5);    // drains existing
  EXPECT_EQ(q.Pop(), std::nullopt);
  EXPECT_TRUE(q.closed());
}

TEST(BlockingQueueTest, CloseWakesBlockedPopper) {
  BlockingQueue<int> q;
  cool::Thread popper([&] { EXPECT_EQ(q.Pop(), std::nullopt); });
  std::this_thread::sleep_for(milliseconds(20));
  q.Close();
  popper.join();
}

TEST(BlockingQueueTest, BoundedPushBlocksUntilSpace) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full

  cool::Thread pusher([&] { EXPECT_TRUE(q.Push(3)); });
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_EQ(q.Pop(), 1);  // frees one slot
  pusher.join();
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), 3);
}

TEST(BlockingQueueTest, CloseWakesBlockedPusher) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  cool::Thread pusher([&] { EXPECT_FALSE(q.Push(2)); });
  std::this_thread::sleep_for(milliseconds(20));
  q.Close();
  pusher.join();
}

TEST(BlockingQueueTest, ManyProducersManyConsumers) {
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 250;
  BlockingQueue<int> q(16);
  std::atomic<int> consumed{0};
  std::atomic<long long> sum{0};

  std::vector<cool::Thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kItemsEach; ++i) {
        ASSERT_TRUE(q.Push(p * kItemsEach + i));
      }
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (true) {
        auto item = q.Pop();
        if (!item.has_value()) return;
        sum += *item;
        ++consumed;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.Close();
  for (std::size_t i = kProducers; i < threads.size(); ++i) threads[i].join();

  const int total = kProducers * kItemsEach;
  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(sum.load(), static_cast<long long>(total) * (total - 1) / 2);
}

TEST(BlockingQueueTest, MoveOnlyItems) {
  BlockingQueue<std::unique_ptr<int>> q;
  ASSERT_TRUE(q.Push(std::make_unique<int>(11)));
  auto item = q.Pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 11);
}

}  // namespace
}  // namespace cool
