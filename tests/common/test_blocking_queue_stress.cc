// Stress tests for BlockingQueue: many producers and consumers racing each
// other, Close() racing blocked producers/consumers, and PopFor() deadlines
// racing Close(). Run under TSan in CI; locally they still catch lost
// wakeups and lost/duplicated items.
#include "common/blocking_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/thread.h"

namespace cool {
namespace {

TEST(BlockingQueueStressTest, ManyProducersManyConsumersBounded) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;

  BlockingQueue<int> q(8);  // small capacity: producers block constantly
  std::atomic<std::uint64_t> consumed_sum{0};
  std::atomic<int> consumed_count{0};

  {
    std::vector<Thread> threads;
    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&q, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          ASSERT_TRUE(q.Push(p * kPerProducer + i));
        }
      });
    }
    for (int c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&] {
        for (;;) {
          std::optional<int> item = q.Pop();
          if (!item.has_value()) return;  // closed and drained
          consumed_sum += static_cast<std::uint64_t>(*item);
          if (++consumed_count == kProducers * kPerProducer) q.Close();
        }
      });
    }
  }

  const int n = kProducers * kPerProducer;
  EXPECT_EQ(consumed_count.load(), n);
  // Every value 0..n-1 exactly once.
  EXPECT_EQ(consumed_sum.load(),
            static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(BlockingQueueStressTest, CloseRacesBlockedProducers) {
  for (int round = 0; round < 50; ++round) {
    BlockingQueue<int> q(1);
    ASSERT_TRUE(q.Push(0));  // queue now full: further pushes block

    std::atomic<int> rejected{0};
    std::vector<Thread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&] {
        if (!q.Push(1)) ++rejected;
      });
    }
    q.Close();
    for (auto& t : producers) t.join();
    // Close() must wake every blocked producer; none may hang, and none
    // may enqueue after the close.
    EXPECT_EQ(rejected.load(), 4);
    EXPECT_EQ(q.size(), 1u);
  }
}

TEST(BlockingQueueStressTest, CloseRacesPopFor) {
  for (int round = 0; round < 50; ++round) {
    BlockingQueue<int> q;
    std::vector<Thread> consumers;
    std::atomic<int> woken{0};
    for (int c = 0; c < 4; ++c) {
      consumers.emplace_back([&] {
        // Generous deadline: the pop must return via Close(), not timeout.
        EXPECT_EQ(q.PopFor(seconds(30)), std::nullopt);
        ++woken;
      });
    }
    q.Close();
    for (auto& t : consumers) t.join();
    EXPECT_EQ(woken.load(), 4);
  }
}

TEST(BlockingQueueStressTest, PopForTimesOutWhileProducersRace) {
  BlockingQueue<int> q;
  std::atomic<bool> stop{false};
  Thread producer([&](std::stop_token) {
    int i = 0;
    while (!stop.load()) {
      q.Push(i++);
      std::this_thread::yield();
    }
  });

  // Consumers with a tiny deadline: they either get an item or time out,
  // but never hang and never tear the queue state.
  std::vector<Thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        (void)q.PopFor(microseconds(50));
      }
    });
  }
  for (auto& t : consumers) t.join();
  stop = true;
  producer.join();
  q.Close();
}

// The destruction-safety property the notify-under-lock discipline exists
// for: a consumer that observes the last item may destroy the queue while
// the producer is still inside Push().
TEST(BlockingQueueStressTest, ConsumerDestroysQueueAfterLastPop) {
  for (int round = 0; round < 200; ++round) {
    auto q = std::make_unique<BlockingQueue<int>>(1);
    BlockingQueue<int>* raw = q.get();
    Thread producer([raw] { raw->Push(42); });
    for (;;) {
      std::optional<int> item = q->Pop();
      if (item.has_value()) {
        EXPECT_EQ(*item, 42);
        break;
      }
      std::this_thread::yield();
    }
    // Deliberately destroy WITHOUT joining the producer: once Pop returned
    // the item, Push holds no queue state (its notify ran under the lock),
    // so destruction must be safe even while Push is still returning.
    q.reset();
    producer.join();
  }
}

}  // namespace
}  // namespace cool
