// TrafficClassTree (common/qos_sched.h) under a synthetic clock: the tree
// is passive and driven by explicit `now` values, so DRR quantum
// accounting, WFQ weight ratios, token-bucket shaping and CoDel
// entry/exit are all pinned down deterministically here.
#include "common/qos_sched.h"

#include <gtest/gtest.h>

#include <vector>

namespace cool::sched {
namespace {

using Tree = TrafficClassTree<int>;

constexpr TimePoint kT0 = TimePoint{} + seconds(10);

ClassOptions Leaf(std::string name, std::uint32_t weight = 1,
                  std::uint32_t quantum = 100) {
  ClassOptions o;
  o.name = std::move(name);
  o.weight = weight;
  o.quantum_bytes = quantum;
  return o;
}

// Dequeues one item, asserting nothing was AQM-dropped on the way.
int MustDequeue(Tree& tree, TimePoint now) {
  std::vector<Tree::Served> dropped;
  auto served = tree.Dequeue(now, &dropped);
  EXPECT_TRUE(served.has_value());
  EXPECT_TRUE(dropped.empty());
  return served ? served->value : -1;
}

TEST(QosSchedTest, SingleFlowIsFifo) {
  Tree tree;
  const auto cls = tree.AddClass(Tree::kRoot, Leaf("only"));
  for (int i = 1; i <= 3; ++i) {
    tree.Enqueue(cls, 7, FlowProfile{}, i, 10, kT0);
  }
  EXPECT_EQ(tree.queued(), 3u);
  EXPECT_EQ(MustDequeue(tree, kT0), 1);
  EXPECT_EQ(MustDequeue(tree, kT0), 2);
  EXPECT_EQ(MustDequeue(tree, kT0), 3);
  EXPECT_TRUE(tree.empty());
  EXPECT_FALSE(tree.Dequeue(kT0, nullptr).has_value());
}

TEST(QosSchedTest, DrrAlternatesEqualWeightFlows) {
  Tree tree;
  const auto cls = tree.AddClass(Tree::kRoot, Leaf("c", 1, /*quantum=*/100));
  // Flow 1 items are 10x, flow 2 items are 20x; every item costs one
  // quantum, so service strictly alternates.
  for (int i = 1; i <= 3; ++i) {
    tree.Enqueue(cls, 1, FlowProfile{}, 10 + i, 100, kT0);
    tree.Enqueue(cls, 2, FlowProfile{}, 20 + i, 100, kT0);
  }
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) order.push_back(MustDequeue(tree, kT0));
  EXPECT_EQ(order, (std::vector<int>{11, 21, 12, 22, 13, 23}));
}

TEST(QosSchedTest, DrrFlowWeightScalesQuantum) {
  Tree tree;
  const auto cls = tree.AddClass(Tree::kRoot, Leaf("c", 1, /*quantum=*/100));
  FlowProfile heavy;
  heavy.weight = 2;
  for (int i = 0; i < 8; ++i) {
    tree.Enqueue(cls, 1, heavy, 1, 100, kT0);        // weight 2
    tree.Enqueue(cls, 2, FlowProfile{}, 2, 100, kT0);  // weight 1
  }
  int flow1 = 0;
  for (int i = 0; i < 9; ++i) {
    if (MustDequeue(tree, kT0) == 1) ++flow1;
  }
  // 2:1 service: 6 of the first 9 dequeues belong to the heavy flow.
  EXPECT_EQ(flow1, 6);
}

TEST(QosSchedTest, DrrQuantumAccountingIsByteFair) {
  Tree tree;
  const auto cls = tree.AddClass(Tree::kRoot, Leaf("c", 1, /*quantum=*/100));
  // Flow 1 sends 300-byte items, flow 2 sends 100-byte items: deficits
  // accumulate across rounds, so *bytes* equalize, not item counts. Equal
  // byte backlogs (4800 each) keep both flows busy for the whole run — a
  // flow that empties retires and forfeits its deficit, which would skew
  // the tally toward the survivor.
  for (int i = 0; i < 16; ++i) {
    tree.Enqueue(cls, 1, FlowProfile{}, 1, 300, kT0);
  }
  for (int i = 0; i < 48; ++i) {
    tree.Enqueue(cls, 2, FlowProfile{}, 2, 100, kT0);
  }
  std::int64_t bytes1 = 0;
  std::int64_t bytes2 = 0;
  for (int i = 0; i < 24; ++i) {
    std::vector<Tree::Served> dropped;
    auto served = tree.Dequeue(kT0, &dropped);
    ASSERT_TRUE(served.has_value());
    (served->flow == 1 ? bytes1 : bytes2) +=
        static_cast<std::int64_t>(served->bytes);
  }
  // Within one max-size item of perfect byte fairness.
  EXPECT_LE(std::abs(bytes1 - bytes2), 300);
}

TEST(QosSchedTest, WfqClassWeightsShareService) {
  Tree tree;
  const auto high = tree.AddClass(Tree::kRoot, Leaf("high", 3));
  const auto low = tree.AddClass(Tree::kRoot, Leaf("low", 1));
  for (int i = 0; i < 12; ++i) {
    tree.Enqueue(high, 1, FlowProfile{}, 1, 100, kT0);
    tree.Enqueue(low, 2, FlowProfile{}, 2, 100, kT0);
  }
  int high_served = 0;
  for (int i = 0; i < 8; ++i) {
    if (MustDequeue(tree, kT0) == 1) ++high_served;
  }
  // Weight 3:1 -> 6 of 8 dequeues from the high class.
  EXPECT_EQ(high_served, 6);
}

TEST(QosSchedTest, ActivationGrantsNoCatchUpCredit) {
  Tree tree;
  const auto high = tree.AddClass(Tree::kRoot, Leaf("high", 1));
  const auto low = tree.AddClass(Tree::kRoot, Leaf("low", 1));
  for (int i = 0; i < 20; ++i) {
    tree.Enqueue(high, 1, FlowProfile{}, 1, 100, kT0);
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(MustDequeue(tree, kT0), 1);
  }
  // The low class activates after sitting idle through 10 services. It
  // joins at the parent's current virtual time: strict alternation from
  // here, not a burst of low until its pass catches up.
  for (int i = 0; i < 4; ++i) {
    tree.Enqueue(low, 2, FlowProfile{}, 2, 100, kT0);
  }
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) order.push_back(MustDequeue(tree, kT0));
  EXPECT_EQ(order, (std::vector<int>{2, 1, 2, 1, 2, 1, 2, 1}));
}

TEST(QosSchedTest, FlowTokenBucketShapes) {
  Tree tree;
  const auto cls = tree.AddClass(Tree::kRoot, Leaf("c"));
  FlowProfile shaped;
  shaped.rate_bytes_per_sec = 1000;
  shaped.burst_bytes = 100;
  for (int i = 1; i <= 3; ++i) {
    tree.Enqueue(cls, 1, shaped, i, 100, kT0);
  }
  // Burst covers the first item; the bucket may go one item negative, so
  // the second is served too; the third must wait for tokens.
  EXPECT_EQ(MustDequeue(tree, kT0), 1);
  EXPECT_EQ(MustDequeue(tree, kT0), 2);
  EXPECT_FALSE(tree.Dequeue(kT0, nullptr).has_value());
  const auto ready = tree.NextReadyTime(kT0);
  ASSERT_TRUE(ready.has_value());
  EXPECT_EQ(*ready, kT0 + milliseconds(100));  // 100 B deficit at 1000 B/s
  EXPECT_FALSE(tree.Dequeue(kT0 + milliseconds(50), nullptr).has_value());
  EXPECT_EQ(MustDequeue(tree, kT0 + milliseconds(100)), 3);
}

TEST(QosSchedTest, ClassTokenBucketShapesSubtree) {
  Tree tree;
  ClassOptions shaped = Leaf("shaped");
  shaped.rate_bytes_per_sec = 1000;
  shaped.burst_bytes = 100;
  const auto cls = tree.AddClass(Tree::kRoot, shaped);
  for (int i = 1; i <= 3; ++i) {
    tree.Enqueue(cls, 1, FlowProfile{}, i, 100, kT0);
  }
  EXPECT_EQ(MustDequeue(tree, kT0), 1);
  EXPECT_EQ(MustDequeue(tree, kT0), 2);
  EXPECT_FALSE(tree.Dequeue(kT0, nullptr).has_value());
  ASSERT_TRUE(tree.NextReadyTime(kT0).has_value());
  EXPECT_EQ(MustDequeue(tree, kT0 + milliseconds(100)), 3);
}

TEST(QosSchedTest, DrainBypassesShaping) {
  Tree tree;
  const auto cls = tree.AddClass(Tree::kRoot, Leaf("c"));
  FlowProfile shaped;
  shaped.rate_bytes_per_sec = 1;  // 1 B/s: effectively frozen
  shaped.burst_bytes = 1;
  for (int i = 1; i <= 3; ++i) {
    tree.Enqueue(cls, 1, shaped, i, 100, kT0);
  }
  EXPECT_EQ(MustDequeue(tree, kT0), 1);  // burst covers one (goes negative)
  EXPECT_FALSE(tree.Dequeue(kT0, nullptr).has_value());
  auto served = tree.Dequeue(kT0, nullptr, /*drain=*/true);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(served->value, 2);
}

TEST(QosSchedTest, CodelEntersDropStateAfterInterval) {
  Tree tree;
  ClassOptions opts = Leaf("c");
  opts.codel.enabled = true;
  opts.codel.target = milliseconds(5);
  opts.codel.interval = milliseconds(100);
  const auto cls = tree.AddClass(Tree::kRoot, opts);
  for (int i = 1; i <= 10; ++i) {
    tree.Enqueue(cls, 1, FlowProfile{}, i, 10, kT0);
  }

  // Sojourn above target starts the interval clock but nothing drops yet.
  std::vector<Tree::Served> dropped;
  auto served = tree.Dequeue(kT0 + milliseconds(10), &dropped);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(served->value, 1);
  EXPECT_TRUE(dropped.empty());

  // A full interval later the standing delay never dipped: the flow enters
  // the drop state, sheds its head, and serves the next item.
  dropped.clear();
  served = tree.Dequeue(kT0 + milliseconds(120), &dropped);
  ASSERT_TRUE(served.has_value());
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0].value, 2);
  EXPECT_EQ(served->value, 3);

  const auto snap = tree.Snapshot();
  EXPECT_EQ(snap[cls].dropped, 1u);
}

TEST(QosSchedTest, CodelExitsWhenSojournDips) {
  Tree tree;
  ClassOptions opts = Leaf("c");
  opts.codel.enabled = true;
  opts.codel.target = milliseconds(5);
  opts.codel.interval = milliseconds(100);
  const auto cls = tree.AddClass(Tree::kRoot, opts);
  for (int i = 1; i <= 10; ++i) {
    tree.Enqueue(cls, 1, FlowProfile{}, i, 10, kT0);
  }
  std::vector<Tree::Served> dropped;
  (void)tree.Dequeue(kT0 + milliseconds(10), &dropped);   // start clock
  (void)tree.Dequeue(kT0 + milliseconds(120), &dropped);  // enter dropping
  EXPECT_EQ(dropped.size(), 1u);

  // Drain the stale backlog (shutdown-style), then offer fresh traffic
  // whose sojourn is under target: the drop state must exit.
  while (tree.Dequeue(kT0 + milliseconds(121), nullptr, true).has_value()) {
  }
  const TimePoint t1 = kT0 + milliseconds(200);
  for (int i = 100; i < 105; ++i) {
    tree.Enqueue(cls, 1, FlowProfile{}, i, 10, t1);
  }
  dropped.clear();
  for (int i = 100; i < 105; ++i) {
    auto s = tree.Dequeue(t1 + milliseconds(1), &dropped);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->value, i);
  }
  EXPECT_TRUE(dropped.empty());
}

TEST(QosSchedTest, RemoveIfCancelsQueuedItems) {
  Tree tree;
  const auto cls = tree.AddClass(Tree::kRoot, Leaf("c"));
  for (int i = 1; i <= 4; ++i) {
    tree.Enqueue(cls, 1, FlowProfile{}, i, 10, kT0);
  }
  const std::size_t removed = tree.RemoveIf(
      [](Tree::ClassId, std::uint64_t, int v) { return v % 2 == 0; });
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(tree.queued(), 2u);
  EXPECT_EQ(MustDequeue(tree, kT0), 1);
  EXPECT_EQ(MustDequeue(tree, kT0), 3);
  // Cancelled items are neither served nor AQM drops.
  const auto snap = tree.Snapshot();
  EXPECT_EQ(snap[cls].dropped, 0u);
  EXPECT_EQ(snap[cls].dequeued, 2u);
}

TEST(QosSchedTest, RemoveFlowOnlyWhenIdle) {
  Tree tree;
  const auto cls = tree.AddClass(Tree::kRoot, Leaf("c"));
  tree.Enqueue(cls, 1, FlowProfile{}, 1, 10, kT0);
  tree.RemoveFlow(cls, 1);  // queued: must be a no-op
  EXPECT_EQ(tree.Snapshot()[cls].flows.size(), 1u);
  (void)MustDequeue(tree, kT0);
  tree.RemoveFlow(cls, 1);
  EXPECT_TRUE(tree.Snapshot()[cls].flows.empty());
}

TEST(QosSchedTest, LiveWeightReconfigurationApplies) {
  Tree tree;
  const auto a = tree.AddClass(Tree::kRoot, Leaf("a", 1));
  const auto b = tree.AddClass(Tree::kRoot, Leaf("b", 1));
  for (int i = 0; i < 24; ++i) {
    tree.Enqueue(a, 1, FlowProfile{}, 1, 100, kT0);
    tree.Enqueue(b, 2, FlowProfile{}, 2, 100, kT0);
  }
  int a_served = 0;
  for (int i = 0; i < 8; ++i) {
    if (MustDequeue(tree, kT0) == 1) ++a_served;
  }
  EXPECT_EQ(a_served, 4);  // 1:1 before the change

  ClassOptions heavier = Leaf("a", 3);
  tree.SetClassOptions(a, heavier, kT0);
  a_served = 0;
  for (int i = 0; i < 16; ++i) {
    if (MustDequeue(tree, kT0) == 1) ++a_served;
  }
  // 3:1 after: allow one arbitration of slack around the switch point.
  EXPECT_GE(a_served, 11);
  EXPECT_LE(a_served, 13);
}

TEST(QosSchedTest, SnapshotReportsCountsAndSojourns) {
  Tree tree;
  const auto cls = tree.AddClass(Tree::kRoot, Leaf("media"));
  for (int i = 0; i < 5; ++i) {
    tree.Enqueue(cls, 42, FlowProfile{}, i, 10, kT0);
  }
  (void)MustDequeue(tree, kT0 + milliseconds(3));
  (void)MustDequeue(tree, kT0 + milliseconds(3));

  const auto snap = tree.Snapshot();
  ASSERT_EQ(snap.size(), 2u);  // root + leaf
  const ClassSnapshot& leaf = snap[cls];
  EXPECT_EQ(leaf.name, "media");
  EXPECT_EQ(leaf.enqueued, 5u);
  EXPECT_EQ(leaf.dequeued, 2u);
  EXPECT_EQ(leaf.queued, 3u);
  ASSERT_EQ(leaf.flows.size(), 1u);
  EXPECT_EQ(leaf.flows[0].id, 42u);
  EXPECT_EQ(leaf.flows[0].queued, 3u);
  // Both services waited 3ms; the histogram's p50 is in that bucket.
  EXPECT_GE(leaf.sojourn_p50_us, 2900u);
  EXPECT_LE(leaf.sojourn_p50_us, 3200u);
  EXPECT_EQ(tree.sojourn_histogram(cls).count(), 2u);
}

}  // namespace
}  // namespace cool::sched
