#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace cool {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // roughly uniform
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(11);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.25)) ++trues;
  }
  EXPECT_NEAR(trues / 10000.0, 0.25, 0.03);
}

TEST(RngTest, ZeroProbabilityNeverTrue) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
  }
}

}  // namespace
}  // namespace cool
