// Shared log-bucketed histogram (common/histogram.h): exactness below the
// sub-bucket threshold, bounded relative error above it, merge algebra.
#include "common/histogram.h"

#include <gtest/gtest.h>

namespace cool {
namespace {

TEST(HistogramTest, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < Histogram::kSub; ++v) h.Add(v);
  EXPECT_EQ(h.count(), Histogram::kSub);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), Histogram::kSub - 1);
  // Values below 2^kSubBits land in unit buckets: percentiles are exact.
  // Rank semantics: p50 of kSub samples is the kSub/2-th smallest (1-based),
  // and value 0 occupies the first bucket, so the answer is kSub/2 - 1.
  EXPECT_EQ(h.Percentile(50), Histogram::kSub / 2 - 1);
  EXPECT_EQ(h.Percentile(100), Histogram::kSub - 1);
}

TEST(HistogramTest, SingleValueEveryPercentile) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Add(777);
  EXPECT_EQ(h.Percentile(1), 777u);
  EXPECT_EQ(h.Percentile(50), 777u);
  EXPECT_EQ(h.Percentile(99.9), 777u);
  EXPECT_DOUBLE_EQ(h.Mean(), 777.0);
}

TEST(HistogramTest, RelativeErrorBounded) {
  // Bucket width is <= value / 2^kSubBits, and percentiles report the
  // bucket's upper edge: at most ~3.2% above the true value.
  for (std::uint64_t v : {100u, 1000u, 54321u, 1u << 20, 987654321u}) {
    Histogram h;
    h.Add(v);
    h.Add(v * 2);  // keep the clamp-to-max off the bucket under test
    const std::uint64_t p = h.Percentile(50);
    EXPECT_GE(p, v);
    EXPECT_LE(p, v + v / Histogram::kSub + 1);
  }
}

TEST(HistogramTest, PercentileClampedToObservedRange) {
  Histogram h;
  h.Add(1'000'000);
  // One sample: every percentile is that sample, not its bucket edge.
  EXPECT_EQ(h.Percentile(50), 1'000'000u);
  EXPECT_EQ(h.Percentile(99.9), 1'000'000u);
}

TEST(HistogramTest, PercentilesMonotone) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.Add(v * 17);
  std::uint64_t prev = 0;
  for (double p : {1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const std::uint64_t cur = h.Percentile(p);
    EXPECT_GE(cur, prev) << "p" << p;
    prev = cur;
  }
}

TEST(HistogramTest, MergeMatchesCombinedAdds) {
  Histogram a;
  Histogram b;
  Histogram combined;
  for (std::uint64_t v = 0; v < 500; ++v) {
    (v % 2 == 0 ? a : b).Add(v * 3);
    combined.Add(v * 3);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double p : {50.0, 99.0, 99.9}) {
    EXPECT_EQ(a.Percentile(p), combined.Percentile(p)) << "p" << p;
  }
}

TEST(HistogramTest, MergeIntoEmptyAndReset) {
  Histogram a;
  Histogram b;
  b.Add(42);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 42u);
  a.Merge(Histogram{});  // merging empty is a no-op
  EXPECT_EQ(a.count(), 1u);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.Percentile(50), 0u);
}

TEST(HistogramTest, BucketEdgeCoversValue) {
  for (std::uint64_t v : {0u, 1u, 31u, 32u, 33u, 1000u, 65535u, 65536u,
                          123456789u}) {
    const std::size_t idx = Histogram::IndexOf(v);
    ASSERT_LT(idx, Histogram::kBuckets);
    EXPECT_GE(Histogram::BucketUpperEdge(idx), v) << v;
  }
}

}  // namespace
}  // namespace cool
