// Deadlock-freedom toolkit (DESIGN.md §11): context markers, the lock-order
// detector hooks, and — in COOL_DEADLOCK_DETECTOR builds — the instrumented
// cool::Mutex itself, including the seeded ABBA regression and the
// reactor-context blocking guard.
//
// The hooks are compiled in every build (only the call sites inside
// cool::Mutex are #ifdef'd), so most of this file runs everywhere; the
// real-mutex integration tests are detector-only.
#include "common/deadlock.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread.h"

namespace cool::deadlock {
namespace {

// Captures reports instead of aborting. A plain function pointer is all
// SetReportHandler takes, so the sink is file-static.
std::vector<Report>* g_reports = nullptr;

void CapturingHandler(const Report& report) { g_reports->push_back(report); }

class DeadlockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reports_.clear();
    g_reports = &reports_;
    prev_ = SetReportHandler(&CapturingHandler);
  }
  void TearDown() override {
    SetReportHandler(prev_);
    g_reports = nullptr;
  }

  bool HasReport(Report::Kind kind) const {
    for (const Report& r : reports_) {
      if (r.kind == kind) return true;
    }
    return false;
  }
  const Report* FirstOf(Report::Kind kind) const {
    for (const Report& r : reports_) {
      if (r.kind == kind) return &r;
    }
    return nullptr;
  }

  std::vector<Report> reports_;
  ReportHandler prev_ = nullptr;
};

// --- context markers (always active) ----------------------------------------

TEST_F(DeadlockTest, ContextMarkerNestsAndRestores) {
  EXPECT_EQ(CurrentContext(), Context::kNone);
  EXPECT_TRUE(BlockingAllowed());
  {
    ScopedContext outer(Context::kReactorCallback);
    EXPECT_EQ(CurrentContext(), Context::kReactorCallback);
    EXPECT_FALSE(BlockingAllowed());
    {
      ScopedContext inner(Context::kDispatchUpcall);
      EXPECT_EQ(CurrentContext(), Context::kDispatchUpcall);
    }
    EXPECT_EQ(CurrentContext(), Context::kReactorCallback);
  }
  EXPECT_EQ(CurrentContext(), Context::kNone);
}

TEST_F(DeadlockTest, ScopedBlockingAllowedOverridesTheContext) {
  ScopedContext ctx(Context::kDispatchUpcall);
  EXPECT_FALSE(BlockingAllowed());
  {
    ScopedBlockingAllowed allow;
    EXPECT_TRUE(BlockingAllowed());
    AssertBlockingAllowed("test wait");  // must not report
  }
  EXPECT_FALSE(BlockingAllowed());
  EXPECT_TRUE(reports_.empty());
}

TEST_F(DeadlockTest, ContextIsPerThread) {
  ScopedContext ctx(Context::kReactorCallback);
  Context seen = Context::kReactorCallback;
  Thread t([&](std::stop_token) { seen = CurrentContext(); });
  t.join();
  EXPECT_EQ(seen, Context::kNone);
}

// --- blocking guard (direct hook; active in every build) ---------------------

TEST_F(DeadlockTest, BlockingInReactorContextIsReported) {
  {
    ScopedContext ctx(Context::kReactorCallback);
    AssertBlockingAllowed("sim::WaitSet::Wait");
  }
  const Report* r = FirstOf(Report::Kind::kBlockingInContext);
  ASSERT_NE(r, nullptr);
  EXPECT_NE(r->message.find("sim::WaitSet::Wait"), std::string::npos);
  EXPECT_NE(r->message.find("reactor callback"), std::string::npos);
}

TEST_F(DeadlockTest, BlockingOutsideRestrictedContextIsFine) {
  AssertBlockingAllowed("BlockingQueue::Pop");
  EXPECT_TRUE(reports_.empty());
}

// --- lock-order hooks (driven directly; active in every build) ---------------

TEST_F(DeadlockTest, RecursiveAcquisitionIsReported) {
  int mu = 0;
  OnLockAcquire(&mu, LockRank::kLeaf, "test::recursive_mu");
  OnLockAcquire(&mu, LockRank::kLeaf, "test::recursive_mu");
  const Report* r = FirstOf(Report::Kind::kRecursiveLock);
  ASSERT_NE(r, nullptr);
  EXPECT_NE(r->message.find("test::recursive_mu"), std::string::npos);
  OnLockRelease(&mu);
  OnLockRelease(&mu);
  OnLockDestroy(&mu);
  EXPECT_EQ(HeldLockCount(), 0);
}

TEST_F(DeadlockTest, RankInversionIsReported) {
  int inner = 0, outer = 0;
  OnLockAcquire(&inner, LockRank::kMailbox, "test::inner_mailbox");
  // kChannel (50) out-ranks kMailbox (30): acquiring it under the mailbox
  // lock inverts the declared hierarchy.
  OnLockAcquire(&outer, LockRank::kChannel, "test::outer_channel");
  const Report* r = FirstOf(Report::Kind::kRankViolation);
  ASSERT_NE(r, nullptr);
  EXPECT_NE(r->message.find("test::inner_mailbox"), std::string::npos);
  EXPECT_NE(r->message.find("test::outer_channel"), std::string::npos);
  EXPECT_NE(r->message.find("kChannel"), std::string::npos);
  EXPECT_NE(r->message.find("kMailbox"), std::string::npos);
  OnLockRelease(&outer);
  OnLockRelease(&inner);
  OnLockDestroy(&inner);
  OnLockDestroy(&outer);
}

TEST_F(DeadlockTest, SameRankAndDescendingRanksAreClean) {
  int a = 0, b = 0, c = 0;
  OnLockAcquire(&a, LockRank::kOrb, "test::a");
  OnLockAcquire(&b, LockRank::kEngine, "test::b");
  OnLockAcquire(&c, LockRank::kEngine, "test::c");  // equal rank: legal
  EXPECT_EQ(HeldLockCount(), 3);
  OnLockRelease(&c);
  OnLockRelease(&b);
  OnLockRelease(&a);
  EXPECT_TRUE(reports_.empty());
  OnLockDestroy(&a);
  OnLockDestroy(&b);
  OnLockDestroy(&c);
}

TEST_F(DeadlockTest, UnrankedLocksSkipTheRankCheckButJoinTheGraph) {
  int a = 0, b = 0;
  OnLockAcquire(&a, LockRank::kLeaf, "test::ranked_leaf");
  OnLockAcquire(&b, LockRank::kUnranked, "test::unranked");
  OnLockRelease(&b);
  OnLockRelease(&a);
  EXPECT_TRUE(reports_.empty());  // wildcard: no rank violation ...

  OnLockAcquire(&b, LockRank::kUnranked, "test::unranked");
  OnLockAcquire(&a, LockRank::kLeaf, "test::ranked_leaf");
  OnLockRelease(&a);
  OnLockRelease(&b);
  // ... but the a -> b / b -> a orders still close a cycle.
  EXPECT_TRUE(HasReport(Report::Kind::kCycle));
  OnLockDestroy(&a);
  OnLockDestroy(&b);
}

TEST_F(DeadlockTest, AbbaCycleIsReportedWithBothStacks) {
  int a = 0, b = 0;
  // Thread-order 1: A then B — establishes the edge A -> B.
  OnLockAcquire(&a, LockRank::kSession, "test::abba_a");
  OnLockAcquire(&b, LockRank::kSession, "test::abba_b");
  OnLockRelease(&b);
  OnLockRelease(&a);
  EXPECT_TRUE(reports_.empty());

  // Thread-order 2: B then A — closes the cycle at the moment the reverse
  // edge is attempted, before any interleaving can actually deadlock.
  OnLockAcquire(&b, LockRank::kSession, "test::abba_b");
  OnLockAcquire(&a, LockRank::kSession, "test::abba_a");
  OnLockRelease(&a);
  OnLockRelease(&b);

  const Report* r = FirstOf(Report::Kind::kCycle);
  ASSERT_NE(r, nullptr);
  EXPECT_NE(r->message.find("test::abba_a"), std::string::npos);
  EXPECT_NE(r->message.find("test::abba_b"), std::string::npos);
  // Both sides of the inversion carry an acquisition stack.
  EXPECT_NE(r->message.find("this acquisition stack"), std::string::npos);
  EXPECT_NE(r->message.find("prior acquisition stack"), std::string::npos);
  OnLockDestroy(&a);
  OnLockDestroy(&b);
}

TEST_F(DeadlockTest, CondVarWaitHooksKeepTheHeldStackHonest) {
  int mu = 0;
  OnLockAcquire(&mu, LockRank::kLeaf, "test::cv_mu");
  EXPECT_EQ(HeldLockCount(), 1);
  OnCondVarWaitBegin(&mu);  // the wait releases the lock
  EXPECT_EQ(HeldLockCount(), 0);
  OnCondVarWaitEnd(&mu, LockRank::kLeaf, "test::cv_mu");
  EXPECT_EQ(HeldLockCount(), 1);
  OnLockRelease(&mu);
  OnLockDestroy(&mu);
  EXPECT_TRUE(reports_.empty());
}

// --- instrumented cool::Mutex (detector builds only) -------------------------

#ifdef COOL_DEADLOCK_DETECTOR

TEST_F(DeadlockTest, RealMutexAbbaRegression) {
  // The seeded ABBA deadlock: the same two locks taken in both orders.
  // Sequential on one thread on purpose — the detector's cycle graph
  // flags the *ordering*, no interleaving or actual deadlock required.
  Mutex a{LockRank::kLeaf, "test::real_abba_a"};
  Mutex b{LockRank::kLeaf, "test::real_abba_b"};
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  EXPECT_TRUE(reports_.empty());
  {
    MutexLock lb(b);
    MutexLock la(a);
  }
  const Report* r = FirstOf(Report::Kind::kCycle);
  ASSERT_NE(r, nullptr);
  EXPECT_NE(r->message.find("test::real_abba_a"), std::string::npos);
  EXPECT_NE(r->message.find("test::real_abba_b"), std::string::npos);
  EXPECT_NE(r->message.find("this acquisition stack"), std::string::npos);
  EXPECT_NE(r->message.find("prior acquisition stack"), std::string::npos);
}

TEST_F(DeadlockTest, RealMutexMisRankedAcquireFails) {
  // The intentionally mis-ranked acquire from the acceptance criteria: a
  // kOrb lock taken under a kLeaf lock must trip the runtime detector
  // (its static twin is rule 12 in scripts/check_invariants.py).
  Mutex leaf{LockRank::kLeaf, "test::misrank_leaf"};
  Mutex orb{LockRank::kOrb, "test::misrank_orb"};
  {
    MutexLock inner(leaf);
    MutexLock outer(orb);
  }
  const Report* r = FirstOf(Report::Kind::kRankViolation);
  ASSERT_NE(r, nullptr);
  EXPECT_NE(r->message.find("test::misrank_leaf"), std::string::npos);
  EXPECT_NE(r->message.find("test::misrank_orb"), std::string::npos);
}

TEST_F(DeadlockTest, RealMutexTryLockAddsNoEdgeButLaterAcquiresDo) {
  Mutex a{LockRank::kSession, "test::try_a"};
  Mutex b{LockRank::kSession, "test::try_b"};
  {
    ASSERT_TRUE(a.TryLock());
    MutexLock lb(b);  // blocking acquire under try-locked a: edge a -> b
    a.Unlock();
  }
  {
    MutexLock lb(b);
    MutexLock la(a);  // reverse order: cycle
  }
  EXPECT_TRUE(HasReport(Report::Kind::kCycle));
}

TEST_F(DeadlockTest, CondVarUntimedWaitInReactorContextIsReported) {
  // The reactor-blocking-guard regression: an unbounded CondVar::Wait on a
  // run-to-completion worker. A helper thread notifies us out of the wait
  // once it actually parks (the report fires on entry).
  Mutex mu{LockRank::kLeaf, "test::guard_mu"};
  CondVar cv;
  bool released = false;
  {
    ScopedContext ctx(Context::kReactorCallback);
    MutexLock lock(mu);
    // Started under the lock: the waker cannot flip `released` before this
    // thread is committed to the wait, so Wait() (and its report) always runs.
    Thread waker([&](std::stop_token) {
      MutexLock waker_lock(mu);
      released = true;
      cv.NotifyOne();
    });
    while (!released) cv.Wait(mu);
    waker.join();
  }
  EXPECT_TRUE(HasReport(Report::Kind::kBlockingInContext));
  const Report* r = FirstOf(Report::Kind::kBlockingInContext);
  ASSERT_NE(r, nullptr);
  EXPECT_NE(r->message.find("CondVar::Wait"), std::string::npos);
}

TEST_F(DeadlockTest, CondVarTimedWaitInReactorContextIsLegal) {
  Mutex mu{LockRank::kLeaf, "test::timed_mu"};
  CondVar cv;
  ScopedContext ctx(Context::kDispatchUpcall);
  MutexLock lock(mu);
  (void)cv.WaitFor(mu, milliseconds(1));
  EXPECT_TRUE(reports_.empty());
}

// The default (uninstalled-handler) behaviour is fatal: the guard kills the
// process when a reactor worker blocks. Death test keeps that contract.
using DeadlockDeathTest = DeadlockTest;

TEST_F(DeadlockDeathTest, DefaultHandlerAbortsOnGuardViolation) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        SetReportHandler(nullptr);  // restore the fatal default
        ScopedContext ctx(Context::kReactorCallback);
        AssertBlockingAllowed("CondVar::Wait");
      },
      "unbounded blocking wait");
}

#endif  // COOL_DEADLOCK_DETECTOR

}  // namespace
}  // namespace cool::deadlock
