#include "orb/exceptions.h"

#include <gtest/gtest.h>

namespace cool::orb {
namespace {

TEST(SystemExceptionTest, EncodeDecodeRoundTrip) {
  SystemException ex;
  ex.repo_id = std::string(sysex::kNoResources);
  ex.minor = 7;
  ex.completed = CompletionStatus::kMaybe;

  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian, 0);
  ex.Encode(enc);
  cdr::Decoder dec(enc.buffer().view(), cdr::ByteOrder::kLittleEndian, 0);
  auto decoded = SystemException::Decode(dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->repo_id, sysex::kNoResources);
  EXPECT_EQ(decoded->minor, 7u);
  EXPECT_EQ(decoded->completed, CompletionStatus::kMaybe);
}

TEST(SystemExceptionTest, BadCompletionStatusRejected) {
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian, 0);
  enc.PutString("IDL:x:1.0");
  enc.PutULong(0);
  enc.PutULong(9);  // invalid completion
  cdr::Decoder dec(enc.buffer().view(), cdr::ByteOrder::kLittleEndian, 0);
  EXPECT_FALSE(SystemException::Decode(dec).ok());
}

TEST(SystemExceptionTest, NoResourcesIsTheQosNack) {
  // The paper's NACK uses the standard exception mechanism; our mapping
  // pins NO_RESOURCES <-> kResourceExhausted in both directions.
  const SystemException nack =
      SystemException::FromStatus(ResourceExhaustedError("qos refused"));
  EXPECT_EQ(nack.repo_id, sysex::kNoResources);
  EXPECT_EQ(nack.ToStatus().code(), ErrorCode::kResourceExhausted);
}

TEST(SystemExceptionTest, StatusMappingIsConsistentBothWays) {
  const std::pair<ErrorCode, std::string_view> cases[] = {
      {ErrorCode::kResourceExhausted, sysex::kNoResources},
      {ErrorCode::kNotFound, sysex::kObjectNotExist},
      {ErrorCode::kInvalidArgument, sysex::kBadParam},
      {ErrorCode::kUnavailable, sysex::kCommFailure},
      {ErrorCode::kDeadlineExceeded, sysex::kTimeout},
  };
  for (const auto& [code, repo_id] : cases) {
    const SystemException ex =
        SystemException::FromStatus(Status(code, "x"));
    EXPECT_EQ(ex.repo_id, repo_id);
    EXPECT_EQ(ex.ToStatus().code(), code) << repo_id;
  }
}

TEST(SystemExceptionTest, UnknownCodesFallBackToUnknown) {
  const SystemException ex =
      SystemException::FromStatus(InternalError("bug"));
  EXPECT_EQ(ex.repo_id, sysex::kUnknown);
  EXPECT_EQ(ex.ToStatus().code(), ErrorCode::kInternal);
}

TEST(SystemExceptionTest, UnsupportedMapsToBadOperation) {
  const SystemException ex =
      SystemException::FromStatus(UnsupportedError("no such op"));
  EXPECT_EQ(ex.repo_id, sysex::kBadOperation);
  EXPECT_EQ(ex.ToStatus().code(), ErrorCode::kUnsupported);
}

TEST(SystemExceptionTest, ToStringIncludesMinor) {
  SystemException ex;
  ex.minor = 3;
  EXPECT_NE(ex.ToString().find("minor=3"), std::string::npos);
}

TEST(SystemExceptionTest, StatusMessageNamesTheException) {
  SystemException ex;
  ex.repo_id = std::string(sysex::kNoResources);
  EXPECT_NE(ex.ToStatus().message().find("NO_RESOURCES"),
            std::string::npos);
}

}  // namespace
}  // namespace cool::orb
