// Connection-churn stress for the reactor-driven connection engine
// (runs under the CI TSan job): accept storms, connections closed while
// dispatches are still queued, and connections abandoned mid-setup. The
// invariant throughout: the server ORB neither crashes, hangs, nor stops
// accepting fresh work.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/thread.h"
#include "orb/stub.h"
#include "test_servants.h"

namespace cool::orb {
namespace {

using testing::CalcServant;

bool WaitUntil(const std::function<bool()>& pred,
               Duration timeout = seconds(10)) {
  const TimePoint deadline = DeadlineFor(timeout);
  while (Now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return pred();
}

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = microseconds(50);
  return link;
}

class ConnectionChurnTest : public ::testing::TestWithParam<Protocol> {
 protected:
  void SetUp() override {
    net_ = std::make_unique<sim::Network>(QuickLink());
    server_ = std::make_unique<ORB>(net_.get(), "server");
    servant_ = std::make_shared<CalcServant>();
    auto ref = server_->RegisterServant("calc", servant_, GetParam());
    ASSERT_TRUE(ref.ok());
    ref_ = *ref;
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Shutdown(); }

  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<ORB> server_;
  std::shared_ptr<CalcServant> servant_;
  ObjectRef ref_;
};

// Accept storm: many short-lived clients connect, invoke once, disconnect —
// concurrently. Every invocation must succeed and every connection must be
// accepted, with the server's thread count independent of the storm.
TEST_P(ConnectionChurnTest, AcceptStorm) {
  constexpr int kThreads = 8;
  constexpr int kConnectionsPerThread = 8;
  std::atomic<int> failures{0};
  {
    std::vector<Thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t](std::stop_token) {
        for (int i = 0; i < kConnectionsPerThread; ++i) {
          ORB client(net_.get(), "client-" + std::to_string(t) + "-" +
                                     std::to_string(i));
          Stub stub(&client, ref_);
          cdr::Encoder args = stub.MakeArgsEncoder();
          args.PutLong(t);
          args.PutLong(i);
          auto reply = stub.Invoke("add", args.buffer().view());
          if (!reply.ok()) {
            ++failures;
            continue;
          }
          cdr::Decoder dec = reply->MakeDecoder();
          if (*dec.GetLong() != t + i) ++failures;
        }
      });
    }
  }  // joins
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_->connections_accepted(),
            static_cast<std::uint64_t>(kThreads * kConnectionsPerThread));
}

// Close with queued dispatch: pipeline slow invocations, then drop the
// connection while upcalls are still queued on the shared pool. Teardown
// must not hang on the in-flight work, and the server must keep serving.
TEST_P(ConnectionChurnTest, CloseWithQueuedDispatch) {
  {
    ORB client(net_.get(), "churn-client");
    Stub stub(&client, ref_);
    // Oneway slow invocations queue on the dispatch pool without a reply
    // to wait for; the first one also establishes the binding.
    for (int i = 0; i < 16; ++i) {
      cdr::Encoder args = stub.MakeArgsEncoder();
      args.PutString("queued");
      ASSERT_TRUE(stub.InvokeOneway("slow_echo", args.buffer().view()).ok());
    }
    // Destroying the client ORB closes the channel with work still queued.
  }

  // The engine is intact: a fresh connection serves normally.
  ORB client(net_.get(), "after-churn");
  Stub stub(&client, ref_);
  cdr::Encoder args = stub.MakeArgsEncoder();
  args.PutLong(20);
  args.PutLong(22);
  auto reply = stub.Invoke("add", args.buffer().view());
  ASSERT_TRUE(reply.ok()) << reply.status();
  cdr::Decoder dec = reply->MakeDecoder();
  EXPECT_EQ(*dec.GetLong(), 42);
}

// Cancel during connect: clients open transport channels and abandon them
// immediately — some before invoking, some racing the server's accept.
TEST_P(ConnectionChurnTest, AbandonedConnects) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 8;
  std::atomic<int> open_failures{0};
  {
    std::vector<Thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t](std::stop_token) {
        ORB client(net_.get(), "aborter-" + std::to_string(t));
        for (int i = 0; i < kRounds; ++i) {
          auto channel = client.OpenChannel(ref_, {});
          if (!channel.ok()) {
            // Da CaPo admission may refuse under storm; that is churn too.
            ++open_failures;
            continue;
          }
          if (i % 2 == 0) {
            (*channel)->Close();  // explicit abort before any byte
          }
          // Odd rounds: just drop the channel (destructor closes).
        }
      });
    }
  }  // joins

  // The server shrugs the churn off and still serves a real client.
  ORB client(net_.get(), "post-abort");
  Stub stub(&client, ref_);
  cdr::Encoder args = stub.MakeArgsEncoder();
  args.PutLong(1);
  args.PutLong(2);
  auto reply = stub.Invoke("add", args.buffer().view());
  ASSERT_TRUE(reply.ok()) << reply.status();
}

// Shutdown with live, active connections: the barrier sequence (managers,
// accept regs, per-connection close, pool) must terminate promptly even
// while clients are mid-invocation.
TEST_P(ConnectionChurnTest, ShutdownUnderLoad) {
  std::atomic<bool> stop{false};
  std::vector<Thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t](std::stop_token) {
      ORB client(net_.get(), "load-" + std::to_string(t));
      Stub stub(&client, ref_);
      while (!stop.load()) {
        cdr::Encoder args = stub.MakeArgsEncoder();
        args.PutLong(t);
        args.PutLong(t);
        if (!stub.Invoke("add", args.buffer().view()).ok()) break;
      }
    });
  }
  // Let the load build, then yank the server out from under it.
  std::this_thread::sleep_for(milliseconds(50));
  const Stopwatch timer;
  server_->Shutdown();
  EXPECT_LT(timer.Elapsed(), seconds(30));
  stop = true;
  for (auto& c : clients) c.join();
}

// Sharded-table storm: adopt trains and finish connections from many
// threads at once while a reader sweeps the shards. TSan is the real
// judge here — the assertions only prove the table converges and the
// engine still serves once the storm passes.
TEST(ShardedConnectionTableTest, AdoptFinishStormKeepsTableConsistent) {
  sim::Network net(QuickLink());
  ORB server(&net, "server");
  auto ref = server.RegisterServant("calc", std::make_shared<CalcServant>(),
                                    Protocol::kTcp);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  constexpr int kBatch = 8;  // ids land on many shards per round
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  Thread reader([&](std::stop_token) {
    // Sweeps every shard lock while adopts insert and finishes erase.
    while (!stop.load()) {
      (void)server.connections_live();
      std::this_thread::sleep_for(microseconds(50));
    }
  });
  {
    std::vector<Thread> storm;
    storm.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      storm.emplace_back([&, t](std::stop_token) {
        ORB client(&net, "storm-" + std::to_string(t));
        for (int r = 0; r < kRounds; ++r) {
          std::vector<std::unique_ptr<transport::ComChannel>> batch;
          batch.reserve(kBatch);
          for (int i = 0; i < kBatch; ++i) {
            auto channel = client.OpenChannel(*ref, {});
            if (!channel.ok()) {
              ++failures;
              continue;
            }
            batch.push_back(std::move(*channel));
          }
          // Dropping the batch finishes the freshly adopted train.
        }
        // Each thread ends with a real invocation: the engine must still
        // serve after the churn it caused.
        Stub stub(&client, *ref);
        cdr::Encoder args = stub.MakeArgsEncoder();
        args.PutLong(t);
        args.PutLong(1);
        auto reply = stub.Invoke("add", args.buffer().view());
        if (!reply.ok()) ++failures;
      });
    }
  }  // joins the storm
  stop = true;
  reader.join();
  EXPECT_EQ(failures.load(), 0);
  // Every client is gone, so every shard entry must drain.
  EXPECT_TRUE(WaitUntil([&] { return server.connections_live() == 0; }));
  server.Shutdown();
}

// Idle-timeout reaping: parked connections that never send a byte are
// closed by their reactor deadline, while a connection that keeps
// invoking sails past many timeout periods untouched.
TEST(IdleTimeoutTest, IdleConnectionsReapedWhileActiveOnesSurvive) {
  sim::Network net(QuickLink());
  ORB::Options options;
  options.idle_timeout = milliseconds(100);
  ORB server(&net, "server", options);
  auto ref = server.RegisterServant("calc", std::make_shared<CalcServant>(),
                                    Protocol::kTcp);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(server.Start().ok());

  ORB client(&net, "client");
  constexpr std::size_t kParked = 8;
  std::vector<std::unique_ptr<transport::ComChannel>> parked;
  parked.reserve(kParked);
  for (std::size_t i = 0; i < kParked; ++i) {
    auto channel = client.OpenChannel(*ref, {});
    ASSERT_TRUE(channel.ok());
    parked.push_back(std::move(*channel));  // never sends a byte
  }
  ASSERT_TRUE(WaitUntil(
      [&] { return server.connections_accepted() >= kParked; }));

  // The active connection invokes every ~20 ms — well inside the 100 ms
  // idle window — for several timeout periods.
  Stub stub(&client, *ref);
  const TimePoint end = Now() + milliseconds(400);
  while (Now() < end) {
    cdr::Encoder args = stub.MakeArgsEncoder();
    args.PutLong(20);
    args.PutLong(22);
    auto reply = stub.Invoke("add", args.buffer().view());
    ASSERT_TRUE(reply.ok()) << reply.status();
    std::this_thread::sleep_for(milliseconds(20));
  }

  // All parked connections hit their deadline; only the active one lives.
  EXPECT_TRUE(WaitUntil([&] { return server.connections_live() == 1; }));

  // And it still serves after its neighbours were reaped around it.
  cdr::Encoder args = stub.MakeArgsEncoder();
  args.PutLong(1);
  args.PutLong(2);
  auto reply = stub.Invoke("add", args.buffer().view());
  ASSERT_TRUE(reply.ok()) << reply.status();
  cdr::Decoder dec = reply->MakeDecoder();
  EXPECT_EQ(*dec.GetLong(), 3);
  server.Shutdown();
}

INSTANTIATE_TEST_SUITE_P(AllTransports, ConnectionChurnTest,
                         ::testing::Values(Protocol::kTcp, Protocol::kIpc,
                                           Protocol::kDacapo),
                         [](const auto& info) {
                           return std::string(ProtocolName(info.param));
                         });

}  // namespace
}  // namespace cool::orb
