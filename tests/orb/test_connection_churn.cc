// Connection-churn stress for the reactor-driven connection engine
// (runs under the CI TSan job): accept storms, connections closed while
// dispatches are still queued, and connections abandoned mid-setup. The
// invariant throughout: the server ORB neither crashes, hangs, nor stops
// accepting fresh work.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/thread.h"
#include "orb/stub.h"
#include "test_servants.h"

namespace cool::orb {
namespace {

using testing::CalcServant;

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = microseconds(50);
  return link;
}

class ConnectionChurnTest : public ::testing::TestWithParam<Protocol> {
 protected:
  void SetUp() override {
    net_ = std::make_unique<sim::Network>(QuickLink());
    server_ = std::make_unique<ORB>(net_.get(), "server");
    servant_ = std::make_shared<CalcServant>();
    auto ref = server_->RegisterServant("calc", servant_, GetParam());
    ASSERT_TRUE(ref.ok());
    ref_ = *ref;
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Shutdown(); }

  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<ORB> server_;
  std::shared_ptr<CalcServant> servant_;
  ObjectRef ref_;
};

// Accept storm: many short-lived clients connect, invoke once, disconnect —
// concurrently. Every invocation must succeed and every connection must be
// accepted, with the server's thread count independent of the storm.
TEST_P(ConnectionChurnTest, AcceptStorm) {
  constexpr int kThreads = 8;
  constexpr int kConnectionsPerThread = 8;
  std::atomic<int> failures{0};
  {
    std::vector<Thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t](std::stop_token) {
        for (int i = 0; i < kConnectionsPerThread; ++i) {
          ORB client(net_.get(), "client-" + std::to_string(t) + "-" +
                                     std::to_string(i));
          Stub stub(&client, ref_);
          cdr::Encoder args = stub.MakeArgsEncoder();
          args.PutLong(t);
          args.PutLong(i);
          auto reply = stub.Invoke("add", args.buffer().view());
          if (!reply.ok()) {
            ++failures;
            continue;
          }
          cdr::Decoder dec = reply->MakeDecoder();
          if (*dec.GetLong() != t + i) ++failures;
        }
      });
    }
  }  // joins
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_->connections_accepted(),
            static_cast<std::uint64_t>(kThreads * kConnectionsPerThread));
}

// Close with queued dispatch: pipeline slow invocations, then drop the
// connection while upcalls are still queued on the shared pool. Teardown
// must not hang on the in-flight work, and the server must keep serving.
TEST_P(ConnectionChurnTest, CloseWithQueuedDispatch) {
  {
    ORB client(net_.get(), "churn-client");
    Stub stub(&client, ref_);
    // Oneway slow invocations queue on the dispatch pool without a reply
    // to wait for; the first one also establishes the binding.
    for (int i = 0; i < 16; ++i) {
      cdr::Encoder args = stub.MakeArgsEncoder();
      args.PutString("queued");
      ASSERT_TRUE(stub.InvokeOneway("slow_echo", args.buffer().view()).ok());
    }
    // Destroying the client ORB closes the channel with work still queued.
  }

  // The engine is intact: a fresh connection serves normally.
  ORB client(net_.get(), "after-churn");
  Stub stub(&client, ref_);
  cdr::Encoder args = stub.MakeArgsEncoder();
  args.PutLong(20);
  args.PutLong(22);
  auto reply = stub.Invoke("add", args.buffer().view());
  ASSERT_TRUE(reply.ok()) << reply.status();
  cdr::Decoder dec = reply->MakeDecoder();
  EXPECT_EQ(*dec.GetLong(), 42);
}

// Cancel during connect: clients open transport channels and abandon them
// immediately — some before invoking, some racing the server's accept.
TEST_P(ConnectionChurnTest, AbandonedConnects) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 8;
  std::atomic<int> open_failures{0};
  {
    std::vector<Thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t](std::stop_token) {
        ORB client(net_.get(), "aborter-" + std::to_string(t));
        for (int i = 0; i < kRounds; ++i) {
          auto channel = client.OpenChannel(ref_, {});
          if (!channel.ok()) {
            // Da CaPo admission may refuse under storm; that is churn too.
            ++open_failures;
            continue;
          }
          if (i % 2 == 0) {
            (*channel)->Close();  // explicit abort before any byte
          }
          // Odd rounds: just drop the channel (destructor closes).
        }
      });
    }
  }  // joins

  // The server shrugs the churn off and still serves a real client.
  ORB client(net_.get(), "post-abort");
  Stub stub(&client, ref_);
  cdr::Encoder args = stub.MakeArgsEncoder();
  args.PutLong(1);
  args.PutLong(2);
  auto reply = stub.Invoke("add", args.buffer().view());
  ASSERT_TRUE(reply.ok()) << reply.status();
}

// Shutdown with live, active connections: the barrier sequence (managers,
// accept regs, per-connection close, pool) must terminate promptly even
// while clients are mid-invocation.
TEST_P(ConnectionChurnTest, ShutdownUnderLoad) {
  std::atomic<bool> stop{false};
  std::vector<Thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t](std::stop_token) {
      ORB client(net_.get(), "load-" + std::to_string(t));
      Stub stub(&client, ref_);
      while (!stop.load()) {
        cdr::Encoder args = stub.MakeArgsEncoder();
        args.PutLong(t);
        args.PutLong(t);
        if (!stub.Invoke("add", args.buffer().view()).ok()) break;
      }
    });
  }
  // Let the load build, then yank the server out from under it.
  std::this_thread::sleep_for(milliseconds(50));
  const Stopwatch timer;
  server_->Shutdown();
  EXPECT_LT(timer.Elapsed(), seconds(30));
  stop = true;
  for (auto& c : clients) c.join();
}

INSTANTIATE_TEST_SUITE_P(AllTransports, ConnectionChurnTest,
                         ::testing::Values(Protocol::kTcp, Protocol::kIpc,
                                           Protocol::kDacapo),
                         [](const auto& info) {
                           return std::string(ProtocolName(info.param));
                         });

}  // namespace
}  // namespace cool::orb
