// The invocation modes of the paper's Fig. 8 method list, at the stub
// level: call (two-way), send (one-way), defer/poll (deferred
// synchronous), notify (asynchronous reply) and cancel.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/blocking_queue.h"
#include "orb/stub.h"
#include "test_servants.h"

namespace cool::orb {
namespace {

using testing::CalcServant;

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = microseconds(100);
  return link;
}

class InvocationModesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<sim::Network>(QuickLink());
    server_ = std::make_unique<ORB>(net_.get(), "server");
    client_ = std::make_unique<ORB>(net_.get(), "client");
    servant_ = std::make_shared<CalcServant>();
    auto ref = server_->RegisterServant("calc", servant_);
    ASSERT_TRUE(ref.ok());
    ref_ = *ref;
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Shutdown(); }

  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<ORB> server_;
  std::unique_ptr<ORB> client_;
  std::shared_ptr<CalcServant> servant_;
  ObjectRef ref_;
};

TEST_F(InvocationModesTest, OnewaySend) {
  Stub stub(client_.get(), ref_);
  ASSERT_TRUE(stub.InvokeOneway("oneway_poke", {}).ok());
  ASSERT_TRUE(stub.InvokeOneway("oneway_poke", {}).ok());
  // One-way returns before the server processes; poll for the effect.
  const TimePoint deadline = Now() + seconds(2);
  while (servant_->pokes() < 2 && Now() < deadline) {
    PreciseSleep(milliseconds(1));
  }
  EXPECT_EQ(servant_->pokes(), 2);
}

TEST_F(InvocationModesTest, OnewayColocated) {
  auto local_ref = client_->RegisterServant(
      "local_calc", std::make_shared<CalcServant>());
  ASSERT_TRUE(local_ref.ok());
  auto servant = client_->adapter().Find(local_ref->object_key);
  Stub stub(client_.get(), *local_ref);
  ASSERT_TRUE(stub.InvokeOneway("oneway_poke", {}).ok());
  EXPECT_EQ(dynamic_cast<CalcServant*>(servant.get())->pokes(), 1);
}

TEST_F(InvocationModesTest, DeferredSynchronous) {
  Stub stub(client_.get(), ref_);
  cdr::Encoder args = stub.MakeArgsEncoder();
  args.PutString("deferred-work");
  auto id = stub.InvokeDeferred("slow_echo", args.buffer().view());
  ASSERT_TRUE(id.ok()) << id.status();

  // The client is free to do other work here; then collects the reply.
  auto reply = stub.PollReply(*id, seconds(5));
  ASSERT_TRUE(reply.ok()) << reply.status();
  cdr::Decoder dec = reply->MakeDecoder();
  EXPECT_EQ(*dec.GetString(), "deferred-work");
}

TEST_F(InvocationModesTest, DeferredPollWithoutBindingFails) {
  Stub stub(client_.get(), ref_);
  EXPECT_EQ(stub.PollReply(1).status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST_F(InvocationModesTest, CancelAbandonsDeferredReply) {
  Stub stub(client_.get(), ref_);
  cdr::Encoder args = stub.MakeArgsEncoder();
  args.PutString("never-collected");
  auto id = stub.InvokeDeferred("slow_echo", args.buffer().view());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(stub.CancelRequest(*id).ok());

  // A subsequent synchronous call is not confused by the stale reply.
  cdr::Encoder args2 = stub.MakeArgsEncoder();
  args2.PutLong(5);
  args2.PutLong(6);
  auto reply = stub.Invoke("add", args2.buffer().view(), seconds(5));
  ASSERT_TRUE(reply.ok()) << reply.status();
  cdr::Decoder dec = reply->MakeDecoder();
  EXPECT_EQ(*dec.GetLong(), 11);
}

TEST_F(InvocationModesTest, AsynchronousNotify) {
  Stub stub(client_.get(), ref_);
  BlockingQueue<std::string> results;
  cdr::Encoder args = stub.MakeArgsEncoder();
  args.PutString("async");
  ASSERT_TRUE(stub.InvokeAsync("echo", args.buffer().view(),
                               [&](Result<Stub::ReplyData> reply) {
                                 if (!reply.ok()) {
                                   results.Push(reply.status().ToString());
                                   return;
                                 }
                                 cdr::Decoder dec = reply->MakeDecoder();
                                 auto s = dec.GetString();
                                 results.Push(s.ok() ? *s : "?");
                               })
                  .ok());
  auto got = results.PopFor(seconds(5));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "async");
}

TEST_F(InvocationModesTest, MultipleAsyncCallbacksAllFire) {
  Stub stub(client_.get(), ref_);
  BlockingQueue<corba::Long> results;
  for (int i = 0; i < 5; ++i) {
    cdr::Encoder args = stub.MakeArgsEncoder();
    args.PutLong(i);
    args.PutLong(100);
    ASSERT_TRUE(stub.InvokeAsync("add", args.buffer().view(),
                                 [&](Result<Stub::ReplyData> reply) {
                                   if (!reply.ok()) return;
                                   cdr::Decoder dec = reply->MakeDecoder();
                                   auto v = dec.GetLong();
                                   if (v.ok()) results.Push(*v);
                                 })
                    .ok());
  }
  std::vector<corba::Long> seen;
  for (int i = 0; i < 5; ++i) {
    auto got = results.PopFor(seconds(5));
    ASSERT_TRUE(got.has_value());
    seen.push_back(*got);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<corba::Long>{100, 101, 102, 103, 104}));
}

TEST_F(InvocationModesTest, DeferredOnColocatedObjectUnsupported) {
  auto local_ref = client_->RegisterServant(
      "local2", std::make_shared<CalcServant>());
  ASSERT_TRUE(local_ref.ok());
  Stub stub(client_.get(), *local_ref);
  EXPECT_EQ(stub.InvokeDeferred("echo", {}).status().code(),
            ErrorCode::kUnsupported);
}

TEST_F(InvocationModesTest, InvokeTimeoutSurfaces) {
  // Target an ORB that listens but never answers GIOP: a raw TCP listener.
  auto listener = net_->Listen({"blackhole", 1});
  ASSERT_TRUE(listener.ok());
  ObjectRef dead = ref_;
  dead.endpoint = {"blackhole", 1};
  Stub stub(client_.get(), dead);
  cdr::Encoder args = stub.MakeArgsEncoder();
  args.PutLong(1);
  args.PutLong(1);
  const auto reply = stub.Invoke("add", args.buffer().view(),
                                 milliseconds(200));
  EXPECT_EQ(reply.status().code(), ErrorCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace cool::orb
