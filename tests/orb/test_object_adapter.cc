#include "orb/object_adapter.h"

#include <gtest/gtest.h>

#include "test_servants.h"

namespace cool::orb {
namespace {

using testing::CalcServant;
using testing::LimitedQoSServant;

corba::OctetSeq Key(std::string_view s) { return {s.begin(), s.end()}; }

// Decodes a SYSTEM_EXCEPTION dispatch result back into a Status.
Status DecodeException(const giop::GiopServer::DispatchResult& result) {
  EXPECT_EQ(result.status, giop::ReplyStatus::kSystemException);
  cdr::Decoder dec(result.body.view(), cdr::NativeOrder(), 0);
  auto ex = SystemException::Decode(dec);
  EXPECT_TRUE(ex.ok());
  return ex.ok() ? ex->ToStatus() : ex.status();
}

class ObjectAdapterTest : public ::testing::Test {
 protected:
  giop::GiopServer::DispatchResult Call(
      std::string_view key, std::string_view op,
      const std::function<void(cdr::Encoder&)>& encode_args = {},
      std::vector<qos::QoSParameter> qos = {}) {
    cdr::Encoder args(cdr::NativeOrder(), 0);
    if (encode_args) encode_args(args);
    cdr::Decoder dec(args.buffer().view(), cdr::NativeOrder(), 0);
    return adapter_.DispatchLocal(Key(key), op, qos, dec,
                                  cdr::NativeOrder());
  }

  ObjectAdapter adapter_;
};

TEST_F(ObjectAdapterTest, ActivateAndFind) {
  auto key = adapter_.Activate("calc", std::make_shared<CalcServant>());
  ASSERT_TRUE(key.ok());
  EXPECT_TRUE(adapter_.Exists(*key));
  EXPECT_NE(adapter_.Find(*key), nullptr);
  EXPECT_EQ(adapter_.active_count(), 1u);
}

TEST_F(ObjectAdapterTest, DuplicateActivationRejected) {
  ASSERT_TRUE(adapter_.Activate("x", std::make_shared<CalcServant>()).ok());
  EXPECT_EQ(adapter_.Activate("x", std::make_shared<CalcServant>())
                .status()
                .code(),
            ErrorCode::kAlreadyExists);
}

TEST_F(ObjectAdapterTest, EmptyNameAndNullServantRejected) {
  EXPECT_EQ(adapter_.Activate("", std::make_shared<CalcServant>())
                .status()
                .code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(adapter_.Activate("y", nullptr).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(ObjectAdapterTest, DeactivateRemovesObject) {
  auto key = adapter_.Activate("calc", std::make_shared<CalcServant>());
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(adapter_.Deactivate(*key).ok());
  EXPECT_FALSE(adapter_.Exists(*key));
  EXPECT_EQ(adapter_.Deactivate(*key).code(), ErrorCode::kNotFound);
}

TEST_F(ObjectAdapterTest, DispatchInvokesServant) {
  ASSERT_TRUE(
      adapter_.Activate("calc", std::make_shared<CalcServant>()).ok());
  auto result = Call("calc", "add", [](cdr::Encoder& e) {
    e.PutLong(2);
    e.PutLong(40);
  });
  ASSERT_EQ(result.status, giop::ReplyStatus::kNoException);
  cdr::Decoder dec(result.body.view(), cdr::NativeOrder(), 0);
  EXPECT_EQ(*dec.GetLong(), 42);
}

TEST_F(ObjectAdapterTest, UnknownObjectYieldsObjectNotExist) {
  auto result = Call("ghost", "add");
  EXPECT_EQ(DecodeException(result).code(), ErrorCode::kNotFound);
}

TEST_F(ObjectAdapterTest, UnknownOperationYieldsBadOperation) {
  ASSERT_TRUE(
      adapter_.Activate("calc", std::make_shared<CalcServant>()).ok());
  auto result = Call("calc", "frobnicate");
  EXPECT_EQ(DecodeException(result).code(), ErrorCode::kUnsupported);
}

TEST_F(ObjectAdapterTest, UserExceptionPassesThrough) {
  ASSERT_TRUE(
      adapter_.Activate("calc", std::make_shared<CalcServant>()).ok());
  auto result = Call("calc", "raise_user");
  EXPECT_EQ(result.status, giop::ReplyStatus::kUserException);
  cdr::Decoder dec(result.body.view(), cdr::NativeOrder(), 0);
  EXPECT_EQ(*dec.GetString(), "IDL:test/CalcError:1.0");
}

TEST_F(ObjectAdapterTest, DefaultServantAcceptsAnyQos) {
  ASSERT_TRUE(
      adapter_.Activate("calc", std::make_shared<CalcServant>()).ok());
  auto result = Call(
      "calc", "add",
      [](cdr::Encoder& e) {
        e.PutLong(1);
        e.PutLong(1);
      },
      {qos::RequireThroughputKbps(1'000'000, 999'999)});
  EXPECT_EQ(result.status, giop::ReplyStatus::kNoException);
  EXPECT_EQ(adapter_.qos_nacks(), 0u);
}

TEST_F(ObjectAdapterTest, LimitedServantNacksExcessiveQos) {
  auto servant = std::make_shared<LimitedQoSServant>(/*max_kbps=*/1000);
  ASSERT_TRUE(adapter_.Activate("ltd", servant).ok());
  auto result = Call(
      "ltd", "add",
      [](cdr::Encoder& e) {
        e.PutLong(1);
        e.PutLong(1);
      },
      {qos::RequireThroughputKbps(8000, 4000)});
  EXPECT_EQ(DecodeException(result).code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(adapter_.qos_nacks(), 1u);
  EXPECT_EQ(servant->negotiations(), 1);
  // The operation itself was never performed (aborted per the paper).
  EXPECT_EQ(servant->calls(), 0);
}

TEST_F(ObjectAdapterTest, LimitedServantAcceptsDegradableQos) {
  auto servant = std::make_shared<LimitedQoSServant>(/*max_kbps=*/1000);
  ASSERT_TRUE(adapter_.Activate("ltd", servant).ok());
  auto result = Call(
      "ltd", "add",
      [](cdr::Encoder& e) {
        e.PutLong(20);
        e.PutLong(22);
      },
      {qos::RequireThroughputKbps(8000, 500)});  // floor 500 <= 1000
  ASSERT_EQ(result.status, giop::ReplyStatus::kNoException);
  cdr::Decoder dec(result.body.view(), cdr::NativeOrder(), 0);
  EXPECT_EQ(*dec.GetLong(), 42);
}

TEST_F(ObjectAdapterTest, MalformedQosParamsRejected) {
  ASSERT_TRUE(
      adapter_.Activate("calc", std::make_shared<CalcServant>()).ok());
  qos::QoSParameter inverted;
  inverted.param_type =
      static_cast<corba::ULong>(qos::ParamType::kThroughputKbps);
  inverted.request_value = 15;
  inverted.min_value = 20;
  inverted.max_value = 10;
  auto result = Call("calc", "add",
                     [](cdr::Encoder& e) {
                       e.PutLong(1);
                       e.PutLong(1);
                     },
                     {inverted});
  EXPECT_EQ(DecodeException(result).code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace cool::orb
