// Fig. 7 alternative (ii): GIOP running as a Da CaPo A-module, driven by
// an unchanged GiopClient over a raw session channel.
#include "orb/giop_module.h"

#include <gtest/gtest.h>

#include <thread>

#include "giop/engine.h"
#include "test_servants.h"

namespace cool::orb {
namespace {

using testing::CalcServant;
using testing::LimitedQoSServant;

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = microseconds(100);
  return link;
}

class Alt2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<sim::Network>(QuickLink());
    ASSERT_TRUE(
        adapter_.Activate("calc", std::make_shared<CalcServant>()).ok());
    server_ = std::make_unique<Alt2Server>(
        net_.get(), sim::Address{"server", 7700}, &adapter_);
    ASSERT_TRUE(server_->Start().ok());
  }

  // Connects a raw Da CaPo session (optionally with C modules) and wraps
  // it as a channel for GiopClient.
  std::unique_ptr<SessionComChannel> Connect(
      dacapo::ModuleGraphSpec graph = {}) {
    dacapo::ChannelOptions options;
    options.graph = std::move(graph);
    dacapo::Connector connector(net_.get(), "client");
    auto session = connector.Connect({"server", 7700}, options);
    EXPECT_TRUE(session.ok()) << session.status();
    if (!session.ok()) return nullptr;
    return std::make_unique<SessionComChannel>(std::move(session).value());
  }

  corba::OctetSeq Key(std::string_view s) { return {s.begin(), s.end()}; }

  std::unique_ptr<sim::Network> net_;
  ObjectAdapter adapter_;
  std::unique_ptr<Alt2Server> server_;
};

TEST_F(Alt2Test, InvocationThroughTheModuleGraph) {
  auto channel = Connect();
  ASSERT_NE(channel, nullptr);
  giop::GiopClient client(channel.get(), {});
  cdr::Encoder args = client.MakeArgsEncoder();
  args.PutLong(40);
  args.PutLong(2);
  auto reply = client.Invoke(Key("calc"), "add", args.buffer().view(), {});
  ASSERT_TRUE(reply.ok()) << reply.status();
  cdr::Decoder dec = reply->MakeResultsDecoder();
  EXPECT_EQ(*dec.GetLong(), 42);
  EXPECT_EQ(server_->connections(), 1u);
}

TEST_F(Alt2Test, WorksWithConfiguredCModulesBelowGiop) {
  // GIOP above cipher+checksum modules: the message protocol is literally
  // one more module in the graph.
  dacapo::ModuleGraphSpec graph;
  dacapo::MechanismSpec cipher;
  cipher.name = dacapo::mechanisms::kXorCipher;
  cipher.params["key"] = 99;
  graph.chain = {cipher, {dacapo::mechanisms::kCrc32, {}}};
  auto channel = Connect(graph);
  ASSERT_NE(channel, nullptr);
  giop::GiopClient client(channel.get(), {});
  cdr::Encoder args = client.MakeArgsEncoder();
  args.PutString("via alt2");
  auto reply = client.Invoke(Key("calc"), "echo", args.buffer().view(), {});
  ASSERT_TRUE(reply.ok()) << reply.status();
  cdr::Decoder dec = reply->MakeResultsDecoder();
  EXPECT_EQ(*dec.GetString(), "via alt2");
}

TEST_F(Alt2Test, QosNegotiationStillWorks) {
  ASSERT_TRUE(adapter_
                  .Activate("ltd",
                            std::make_shared<LimitedQoSServant>(1000))
                  .ok());
  auto channel = Connect();
  ASSERT_NE(channel, nullptr);
  giop::GiopClient client(channel.get(), {});
  cdr::Encoder args = client.MakeArgsEncoder();
  args.PutLong(1);
  args.PutLong(1);
  auto reply =
      client.Invoke(Key("ltd"), "add", args.buffer().view(),
                    {qos::RequireThroughputKbps(9000, 5000)});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->header.reply_status,
            giop::ReplyStatus::kSystemException);
}

TEST_F(Alt2Test, LocateRequestAnswered) {
  auto channel = Connect();
  ASSERT_NE(channel, nullptr);
  giop::GiopClient client(channel.get(), {});
  auto here = client.Locate(Key("calc"));
  ASSERT_TRUE(here.ok()) << here.status();
  EXPECT_EQ(*here, giop::LocateStatus::kObjectHere);
  auto gone = client.Locate(Key("nope"));
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(*gone, giop::LocateStatus::kUnknownObject);
}

TEST_F(Alt2Test, LegacyModeRejectsExtendedGiop) {
  ObjectAdapter legacy_adapter;
  ASSERT_TRUE(
      legacy_adapter.Activate("calc", std::make_shared<CalcServant>())
          .ok());
  GiopServerAModule::Options legacy;
  legacy.accept_qos_extension = false;
  Alt2Server legacy_server(net_.get(), sim::Address{"server", 7701},
                           &legacy_adapter, legacy);
  ASSERT_TRUE(legacy_server.Start().ok());

  dacapo::Connector connector(net_.get(), "client");
  auto session = connector.Connect({"server", 7701}, {});
  ASSERT_TRUE(session.ok());
  SessionComChannel channel(std::move(session).value());
  giop::GiopClient client(&channel, {});
  auto reply =
      client.Invoke(Key("calc"), "add", {}, {qos::RequireReliability(1)});
  EXPECT_EQ(reply.status().code(), ErrorCode::kProtocolError);
}

TEST_F(Alt2Test, GarbageGetsMessageError) {
  auto channel = Connect();
  ASSERT_NE(channel, nullptr);
  const std::vector<std::uint8_t> junk = {'n', 'o', 'p', 'e'};
  ASSERT_TRUE(channel->SendMessage(junk).ok());
  auto raw = channel->ReceiveMessage(seconds(2));
  ASSERT_TRUE(raw.ok());
  auto parsed = giop::ParseMessage(raw->view());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header.message_type, giop::MsgType::kMessageError);
}

TEST_F(Alt2Test, ManySequentialInvocations) {
  auto channel = Connect();
  ASSERT_NE(channel, nullptr);
  giop::GiopClient client(channel.get(), {});
  for (int i = 0; i < 50; ++i) {
    cdr::Encoder args = client.MakeArgsEncoder();
    args.PutLong(i);
    args.PutLong(1);
    auto reply =
        client.Invoke(Key("calc"), "add", args.buffer().view(), {});
    ASSERT_TRUE(reply.ok()) << i << ": " << reply.status();
    cdr::Decoder dec = reply->MakeResultsDecoder();
    ASSERT_EQ(*dec.GetLong(), i + 1);
  }
}

}  // namespace
}  // namespace cool::orb
