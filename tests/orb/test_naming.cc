#include "orb/naming.h"

#include <gtest/gtest.h>

#include "test_servants.h"

namespace cool::orb {
namespace {

using testing::CalcServant;

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = microseconds(100);
  return link;
}

TEST(NamingServantTest, LocalBindResolveUnbind) {
  NamingServant naming;
  ASSERT_TRUE(naming.Bind("a", "ior-a").ok());
  EXPECT_EQ(naming.Bind("a", "ior-b").code(), ErrorCode::kAlreadyExists);
  auto resolved = naming.Resolve("a");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, "ior-a");
  ASSERT_TRUE(naming.Rebind("a", "ior-b").ok());
  EXPECT_EQ(*naming.Resolve("a"), "ior-b");
  ASSERT_TRUE(naming.Unbind("a").ok());
  EXPECT_EQ(naming.Unbind("a").code(), ErrorCode::kNotFound);
  EXPECT_EQ(naming.Resolve("a").status().code(), ErrorCode::kNotFound);
}

TEST(NamingServantTest, EmptyNameRejected) {
  NamingServant naming;
  EXPECT_EQ(naming.Bind("", "ior").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(naming.Rebind("", "ior").code(), ErrorCode::kInvalidArgument);
}

TEST(NamingServantTest, ListIsSorted) {
  NamingServant naming;
  ASSERT_TRUE(naming.Bind("zeta", "z").ok());
  ASSERT_TRUE(naming.Bind("alpha", "a").ok());
  ASSERT_TRUE(naming.Bind("mid", "m").ok());
  EXPECT_EQ(naming.List(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

class NamingEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<sim::Network>(QuickLink());
    server_ = std::make_unique<ORB>(net_.get(), "server");
    client_ = std::make_unique<ORB>(net_.get(), "client");
    auto naming_ref = server_->RegisterServant(
        std::string(NamingServant::kObjectName),
        std::make_shared<NamingServant>());
    ASSERT_TRUE(naming_ref.ok());
    calc_ref_ = *server_->RegisterServant("calc",
                                          std::make_shared<CalcServant>());
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Shutdown(); }

  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<ORB> server_;
  std::unique_ptr<ORB> client_;
  ObjectRef calc_ref_;
};

TEST_F(NamingEndToEndTest, BootstrapThroughNameService) {
  // The server publishes its object...
  NamingClient publisher(server_.get(), {"server", 7001});
  ASSERT_TRUE(publisher.Bind("math/calc", calc_ref_).ok());

  // ...and a client that only knows the naming endpoint finds + calls it.
  NamingClient names(client_.get(), {"server", 7001});
  auto resolved = names.Resolve("math/calc");
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_EQ(*resolved, calc_ref_);

  Stub stub(client_.get(), *resolved);
  cdr::Encoder args = stub.MakeArgsEncoder();
  args.PutLong(4);
  args.PutLong(5);
  auto reply = stub.Invoke("add", args.buffer().view());
  ASSERT_TRUE(reply.ok());
  cdr::Decoder dec = reply->MakeDecoder();
  EXPECT_EQ(*dec.GetLong(), 9);
}

TEST_F(NamingEndToEndTest, RemoteErrorsMapToSystemExceptions) {
  NamingClient names(client_.get(), {"server", 7001});
  EXPECT_EQ(names.Resolve("ghost").status().code(), ErrorCode::kNotFound);
  ASSERT_TRUE(names.Bind("x", calc_ref_).ok());
  EXPECT_EQ(names.Bind("x", calc_ref_).code(), ErrorCode::kInternal);
  // (kAlreadyExists has no standard CORBA exception; it arrives as
  // UNKNOWN -> kInternal. Rebind is the supported replace path.)
  EXPECT_TRUE(names.Rebind("x", calc_ref_).ok());
}

TEST_F(NamingEndToEndTest, ListOverTheWire) {
  NamingClient names(client_.get(), {"server", 7001});
  ASSERT_TRUE(names.Bind("b", calc_ref_).ok());
  ASSERT_TRUE(names.Bind("a", calc_ref_).ok());
  auto list = names.List();
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(*list, (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(names.Unbind("a").ok());
  list = names.List();
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(*list, (std::vector<std::string>{"b"}));
}

}  // namespace
}  // namespace cool::orb
