// Shared hand-written servants for the ORB test suites (the kind of code
// Chic-generated skeletons produce; see tests/idl for generated ones).
#pragma once

#include <atomic>
#include <string>

#include "orb/servant.h"
#include "qos/negotiation.h"

namespace cool::orb::testing {

// Operations: add(long,long)->long, echo(string)->string,
// concat(string,long)->string, oneway_poke()->void (counts), fail()->
// BAD_OPERATION via unknown-op path, raise_user()->USER_EXCEPTION.
class CalcServant : public Servant {
 public:
  std::string_view repository_id() const override {
    return "IDL:test/Calc:1.0";
  }

  DispatchOutcome Dispatch(std::string_view operation, cdr::Decoder& args,
                           cdr::Encoder& out) override {
    ++calls_;
    if (operation == "add") {
      auto a = args.GetLong();
      auto b = args.GetLong();
      if (!a.ok() || !b.ok()) {
        return DispatchOutcome::Fail(InvalidArgumentError("bad args"));
      }
      out.PutLong(*a + *b);
      return DispatchOutcome::Ok();
    }
    if (operation == "echo") {
      auto s = args.GetString();
      if (!s.ok()) {
        return DispatchOutcome::Fail(InvalidArgumentError("bad args"));
      }
      out.PutString(*s);
      return DispatchOutcome::Ok();
    }
    if (operation == "concat") {
      auto s = args.GetString();
      auto n = args.GetLong();
      if (!s.ok() || !n.ok()) {
        return DispatchOutcome::Fail(InvalidArgumentError("bad args"));
      }
      out.PutString(*s + ":" + std::to_string(*n));
      return DispatchOutcome::Ok();
    }
    if (operation == "oneway_poke") {
      ++pokes_;
      return DispatchOutcome::Ok();
    }
    if (operation == "slow_echo") {
      auto s = args.GetString();
      if (!s.ok()) {
        return DispatchOutcome::Fail(InvalidArgumentError("bad args"));
      }
      PreciseSleep(milliseconds(30));
      out.PutString(*s);
      return DispatchOutcome::Ok();
    }
    if (operation == "raise_user") {
      out.PutString("IDL:test/CalcError:1.0");
      out.PutLong(13);
      return DispatchOutcome::UserException();
    }
    return DispatchOutcome::Fail(
        UnsupportedError("unknown operation '" + std::string(operation) +
                         "'"));
  }

  int calls() const { return calls_.load(); }
  int pokes() const { return pokes_.load(); }

 private:
  std::atomic<int> calls_{0};
  std::atomic<int> pokes_{0};
};

// An object implementation with limited QoS (the paper's "maximum
// resolution of an image" style constraint): throughput up to
// `max_kbps`, reliability up to level 1, no encryption.
class LimitedQoSServant : public CalcServant {
 public:
  explicit LimitedQoSServant(corba::Long max_kbps) : max_kbps_(max_kbps) {}

  std::string_view repository_id() const override {
    return "IDL:test/LimitedCalc:1.0";
  }

  qos::NegotiationResult NegotiateQoS(
      const qos::QoSSpec& requested) override {
    ++negotiations_;
    qos::Capability capability;
    capability.SetBest(qos::ParamType::kThroughputKbps, max_kbps_);
    capability.SetBest(qos::ParamType::kReliability, 1);
    capability.SetBest(qos::ParamType::kOrdering, 1);
    capability.SetBest(qos::ParamType::kLatencyMicros, 0);
    capability.SetBest(qos::ParamType::kJitterMicros, 0);
    capability.SetBest(qos::ParamType::kLossPermille, 0);
    capability.SetBest(qos::ParamType::kPriority, 255);
    return qos::Negotiate(requested, capability);
  }

  int negotiations() const { return negotiations_.load(); }

 private:
  corba::Long max_kbps_;
  std::atomic<int> negotiations_{0};
};

}  // namespace cool::orb::testing
