// The paper's QoS machinery end-to-end:
//  * setQoSParameter on the stub (per-binding and per-method, §4.1)
//  * extended GIOP 9.9 on the wire iff QoS is in force (§4.2)
//  * bilateral negotiation with NACK via CORBA exception (Fig. 3)
//  * unilateral transport negotiation / rejection (§4.3)
//  * backwards compatibility with an unmodified server
#include <gtest/gtest.h>

#include "orb/stub.h"
#include "test_servants.h"

namespace cool::orb {
namespace {

using testing::CalcServant;
using testing::LimitedQoSServant;

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = microseconds(100);
  return link;
}

qos::QoSSpec Spec(std::vector<qos::QoSParameter> params) {
  auto spec = qos::QoSSpec::FromParameters(std::move(params));
  EXPECT_TRUE(spec.ok());
  return *spec;
}

class QosNegotiationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<sim::Network>(QuickLink());
    ORB::Options server_options;
    server_options.estimate.bandwidth_bps = 100'000'000;
    server_options.estimate.rtt_us = 400;
    server_ = std::make_unique<ORB>(net_.get(), "server", server_options);
    client_ = std::make_unique<ORB>(net_.get(), "client");

    calc_ = std::make_shared<CalcServant>();
    limited_ = std::make_shared<LimitedQoSServant>(/*max_kbps=*/1000);
    auto calc_ref =
        server_->RegisterServant("calc", calc_, Protocol::kDacapo);
    auto limited_ref =
        server_->RegisterServant("limited", limited_, Protocol::kDacapo);
    ASSERT_TRUE(calc_ref.ok());
    ASSERT_TRUE(limited_ref.ok());
    calc_ref_ = *calc_ref;
    limited_ref_ = *limited_ref;
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Shutdown(); }

  Result<corba::Long> CallAdd(Stub& stub, corba::Long a, corba::Long b) {
    cdr::Encoder args = stub.MakeArgsEncoder();
    args.PutLong(a);
    args.PutLong(b);
    COOL_ASSIGN_OR_RETURN(Stub::ReplyData reply,
                          stub.Invoke("add", args.buffer().view()));
    cdr::Decoder dec = reply.MakeDecoder();
    return dec.GetLong();
  }

  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<ORB> server_;
  std::unique_ptr<ORB> client_;
  std::shared_ptr<CalcServant> calc_;
  std::shared_ptr<LimitedQoSServant> limited_;
  ObjectRef calc_ref_;
  ObjectRef limited_ref_;
};

TEST_F(QosNegotiationTest, NoQosMeansPlainGiopAndNoNegotiation) {
  // Paper §4.1: "Never call setQoSParameter: no QoS support is required
  // and standard GIOP can be used."
  Stub stub(client_.get(), calc_ref_);
  auto sum = CallAdd(stub, 1, 2);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 3);
  EXPECT_FALSE(stub.explicit_binding());
  EXPECT_EQ(server_->adapter().qos_nacks(), 0u);
}

TEST_F(QosNegotiationTest, PerBindingQos) {
  // Call setQoSParameter once at the start: every invocation on the
  // binding is served at that QoS.
  Stub stub(client_.get(), calc_ref_);
  ASSERT_TRUE(stub.SetQoSParameter(
                      Spec({qos::RequireThroughputKbps(5000, 1000),
                            qos::RequireReliability(1)}))
                  .ok());
  EXPECT_TRUE(stub.explicit_binding());
  for (int i = 0; i < 3; ++i) {
    auto sum = CallAdd(stub, i, i);
    ASSERT_TRUE(sum.ok()) << sum.status();
  }
  EXPECT_EQ(calc_->calls(), 3);
}

TEST_F(QosNegotiationTest, PerMethodQosChangesBetweenCalls) {
  Stub stub(client_.get(), limited_ref_);
  // First invocation: modest QoS -> accepted.
  ASSERT_TRUE(
      stub.SetQoSParameter(Spec({qos::RequireThroughputKbps(800, 400)}))
          .ok());
  ASSERT_TRUE(CallAdd(stub, 1, 1).ok());

  // Before the next method: raise the floor beyond the object's limit.
  ASSERT_TRUE(
      stub.SetQoSParameter(Spec({qos::RequireThroughputKbps(8000, 4000)}))
          .ok());
  EXPECT_EQ(CallAdd(stub, 2, 2).status().code(),
            ErrorCode::kResourceExhausted);

  // Lower it again: service resumes.
  ASSERT_TRUE(
      stub.SetQoSParameter(Spec({qos::RequireThroughputKbps(500, 100)}))
          .ok());
  EXPECT_TRUE(CallAdd(stub, 3, 3).ok());
  EXPECT_EQ(server_->adapter().qos_nacks(), 1u);
}

TEST_F(QosNegotiationTest, ServerNackAbortsOperation) {
  // Fig. 3-(i): server cannot support the QoS -> NACK, operation aborted.
  Stub stub(client_.get(), limited_ref_);
  ASSERT_TRUE(
      stub.SetQoSParameter(Spec({qos::RequireThroughputKbps(9000, 5000)}))
          .ok());
  EXPECT_EQ(CallAdd(stub, 1, 1).status().code(),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(limited_->calls(), 0);  // never dispatched
  EXPECT_GE(limited_->negotiations(), 1);
}

TEST_F(QosNegotiationTest, DegradableRequestGranted) {
  // Fig. 3-(ii): requested 8000 but floor 500 is within the object's
  // 1000 kbps limit -> Reply, not NACK.
  Stub stub(client_.get(), limited_ref_);
  ASSERT_TRUE(
      stub.SetQoSParameter(Spec({qos::RequireThroughputKbps(8000, 500)}))
          .ok());
  auto sum = CallAdd(stub, 40, 2);
  ASSERT_TRUE(sum.ok()) << sum.status();
  EXPECT_EQ(*sum, 42);
}

TEST_F(QosNegotiationTest, TcpBindingRefusesQosBeforeAnyTraffic) {
  // Paper §4.3: TCP does not implement setQoSParameter. The client learns
  // at specification time, before a Request is ever sent.
  const ObjectRef tcp_ref =
      calc_ref_.WithProtocol(Protocol::kTcp, {"server", 7001});
  Stub stub(client_.get(), tcp_ref);
  EXPECT_EQ(
      stub.SetQoSParameter(Spec({qos::RequireReliability(1)})).code(),
      ErrorCode::kUnsupported);
  // Without QoS the TCP binding works normally.
  ASSERT_TRUE(stub.SetQoSParameter(qos::QoSSpec{}).ok());
  EXPECT_TRUE(CallAdd(stub, 1, 1).ok());
}

TEST_F(QosNegotiationTest, BoundTcpChannelAlsoRefusesRenegotiation) {
  const ObjectRef tcp_ref =
      calc_ref_.WithProtocol(Protocol::kTcp, {"server", 7001});
  Stub stub(client_.get(), tcp_ref);
  ASSERT_TRUE(CallAdd(stub, 1, 1).ok());  // bind first (implicit, no QoS)
  EXPECT_EQ(
      stub.SetQoSParameter(Spec({qos::RequireReliability(1)})).code(),
      ErrorCode::kUnsupported);
}

TEST_F(QosNegotiationTest, TransportRejectsImpossibleQosLocally) {
  // Unilateral negotiation: Da CaPo cannot build a graph for an absurd
  // throughput demand; the exception is raised before contacting the peer.
  Stub stub(client_.get(), calc_ref_);
  ASSERT_TRUE(stub.SetQoSParameter(
                      Spec({qos::RequireThroughputKbps(10'000'000,
                                                       9'000'000)}))
                  .ok());  // spec stored; binding not yet established
  EXPECT_EQ(CallAdd(stub, 1, 1).status().code(),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(calc_->calls(), 0);
  EXPECT_EQ(server_->adapter().qos_nacks(), 0u);  // server never involved
}

TEST_F(QosNegotiationTest, UnmodifiedServerRejectsExtendedGiop) {
  // A server ORB with the extension disabled behaves like stock COOL:
  // 9.9 Requests bounce with MessageError; 1.0 Requests work.
  ORB::Options legacy;
  legacy.enable_qos_extension = false;
  legacy.tcp_port = 7101;
  legacy.ipc_port = 7102;
  legacy.dacapo_port = 7103;
  ORB legacy_server(net_.get(), "legacy", legacy);
  auto ref = legacy_server.RegisterServant(
      "calc", std::make_shared<CalcServant>(), Protocol::kDacapo);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(legacy_server.Start().ok());

  Stub stub(client_.get(), *ref);
  ASSERT_TRUE(
      stub.SetQoSParameter(Spec({qos::RequireReliability(1)})).ok());
  EXPECT_EQ(CallAdd(stub, 1, 1).status().code(), ErrorCode::kProtocolError);

  // Dropping the QoS spec reverts to 1.0 and the call succeeds.
  ASSERT_TRUE(stub.SetQoSParameter(qos::QoSSpec{}).ok());
  EXPECT_TRUE(CallAdd(stub, 1, 1).ok());
  legacy_server.Shutdown();
}

TEST_F(QosNegotiationTest, QosAwareClientAgainstColocatedObject) {
  // Colocation skips the transport, but the bilateral negotiation with the
  // object implementation still happens.
  auto local = std::make_shared<LimitedQoSServant>(/*max_kbps=*/1000);
  auto ref = client_->RegisterServant("local_ltd", local);
  ASSERT_TRUE(ref.ok());
  Stub stub(client_.get(), *ref);
  ASSERT_TRUE(
      stub.SetQoSParameter(Spec({qos::RequireThroughputKbps(9000, 5000)}))
          .ok());
  EXPECT_EQ(CallAdd(stub, 1, 1).status().code(),
            ErrorCode::kResourceExhausted);
  ASSERT_TRUE(
      stub.SetQoSParameter(Spec({qos::RequireThroughputKbps(900, 100)}))
          .ok());
  EXPECT_TRUE(CallAdd(stub, 1, 1).ok());
}

TEST_F(QosNegotiationTest, QosSurvivesRebinding) {
  // The QoS belongs to the stub (the client's specification), not to the
  // connection: after Unbind, the next invocation re-establishes the
  // binding with the same QoS — "request connection with QoS" (Fig. 4).
  Stub stub(client_.get(), limited_ref_);
  ASSERT_TRUE(
      stub.SetQoSParameter(Spec({qos::RequireThroughputKbps(9000, 5000)}))
          .ok());
  EXPECT_EQ(CallAdd(stub, 1, 1).status().code(),
            ErrorCode::kResourceExhausted);
  ASSERT_TRUE(stub.Unbind().ok());
  // Still NACKed after rebinding: the spec persisted.
  EXPECT_EQ(CallAdd(stub, 1, 1).status().code(),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(server_->adapter().qos_nacks(), 2u);
  EXPECT_TRUE(stub.explicit_binding());
}

TEST_F(QosNegotiationTest, DacapoGraphFollowsQosSpec) {
  // The module graph carrying the binding reflects the negotiated QoS.
  Stub stub(client_.get(), calc_ref_);
  ASSERT_TRUE(stub.SetQoSParameter(
                      Spec({qos::RequireEncryption(true),
                            qos::RequireReliability(1)}))
                  .ok());
  ASSERT_TRUE(CallAdd(stub, 1, 1).ok());
  EXPECT_EQ(stub.bound_protocol(), "dacapo");
}

}  // namespace
}  // namespace cool::orb
