// Full-stack integration (the paper's Fig. 4 path): client stub -> GIOP ->
// generic transport -> simulated network -> server ORB -> object adapter ->
// servant, and back. Parameterized over all three transports.
#include <gtest/gtest.h>

#include "common/thread.h"
#include "orb/stub.h"
#include "test_servants.h"

namespace cool::orb {
namespace {

using testing::CalcServant;

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = microseconds(100);
  return link;
}

class EndToEndTest : public ::testing::TestWithParam<Protocol> {
 protected:
  void SetUp() override {
    net_ = std::make_unique<sim::Network>(QuickLink());
    server_ = std::make_unique<ORB>(net_.get(), "server");
    client_ = std::make_unique<ORB>(net_.get(), "client");
    servant_ = std::make_shared<CalcServant>();
    auto ref = server_->RegisterServant("calc", servant_, GetParam());
    ASSERT_TRUE(ref.ok());
    ref_ = *ref;
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    server_->Shutdown();
  }

  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<ORB> server_;
  std::unique_ptr<ORB> client_;
  std::shared_ptr<CalcServant> servant_;
  ObjectRef ref_;
};

TEST_P(EndToEndTest, SynchronousInvocation) {
  Stub stub(client_.get(), ref_);
  cdr::Encoder args = stub.MakeArgsEncoder();
  args.PutLong(40);
  args.PutLong(2);
  auto reply = stub.Invoke("add", args.buffer().view());
  ASSERT_TRUE(reply.ok()) << reply.status();
  cdr::Decoder dec = reply->MakeDecoder();
  EXPECT_EQ(*dec.GetLong(), 42);
  EXPECT_EQ(stub.bound_protocol(), ProtocolName(GetParam()));
}

TEST_P(EndToEndTest, StringsAcrossTheWire) {
  Stub stub(client_.get(), ref_);
  cdr::Encoder args = stub.MakeArgsEncoder();
  args.PutString("middleware");
  args.PutLong(2000);
  auto reply = stub.Invoke("concat", args.buffer().view());
  ASSERT_TRUE(reply.ok()) << reply.status();
  cdr::Decoder dec = reply->MakeDecoder();
  EXPECT_EQ(*dec.GetString(), "middleware:2000");
}

TEST_P(EndToEndTest, RepeatedInvocationsReuseBinding) {
  // Implicit binding: set up during the first method invocation,
  // subsequent invocations use the same connection (paper §2).
  Stub stub(client_.get(), ref_);
  for (int i = 0; i < 10; ++i) {
    cdr::Encoder args = stub.MakeArgsEncoder();
    args.PutLong(i);
    args.PutLong(i);
    auto reply = stub.Invoke("add", args.buffer().view());
    ASSERT_TRUE(reply.ok()) << i << ": " << reply.status();
    cdr::Decoder dec = reply->MakeDecoder();
    EXPECT_EQ(*dec.GetLong(), 2 * i);
  }
  EXPECT_EQ(server_->connections_accepted(), 1u);
  EXPECT_EQ(servant_->calls(), 10);
}

TEST_P(EndToEndTest, SystemExceptionPropagatesToClient) {
  Stub stub(client_.get(), ref_);
  auto reply = stub.Invoke("no_such_operation", {});
  EXPECT_EQ(reply.status().code(), ErrorCode::kUnsupported);
}

TEST_P(EndToEndTest, UserExceptionReachesClientIntact) {
  Stub stub(client_.get(), ref_);
  auto reply = stub.Invoke("raise_user", {});
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status, giop::ReplyStatus::kUserException);
  cdr::Decoder dec = reply->MakeDecoder();
  EXPECT_EQ(*dec.GetString(), "IDL:test/CalcError:1.0");
  EXPECT_EQ(*dec.GetLong(), 13);
}

TEST_P(EndToEndTest, UnknownObjectKey) {
  ObjectRef bad = ref_;
  bad.object_key = {'n', 'o'};
  Stub stub(client_.get(), bad);
  auto reply = stub.Invoke("add", {});
  EXPECT_EQ(reply.status().code(), ErrorCode::kNotFound);
}

TEST_P(EndToEndTest, LocateObject) {
  Stub stub(client_.get(), ref_);
  auto here = stub.LocateObject();
  ASSERT_TRUE(here.ok()) << here.status();
  EXPECT_TRUE(*here);

  ObjectRef bad = ref_;
  bad.object_key = {'n', 'o'};
  Stub ghost(client_.get(), bad);
  auto gone = ghost.LocateObject();
  ASSERT_TRUE(gone.ok());
  EXPECT_FALSE(*gone);
}

TEST_P(EndToEndTest, UnbindAndRebind) {
  Stub stub(client_.get(), ref_);
  cdr::Encoder args = stub.MakeArgsEncoder();
  args.PutLong(1);
  args.PutLong(1);
  ASSERT_TRUE(stub.Invoke("add", args.buffer().view()).ok());
  ASSERT_TRUE(stub.Unbind().ok());
  EXPECT_EQ(stub.bound_protocol(), "");
  cdr::Encoder args2 = stub.MakeArgsEncoder();
  args2.PutLong(2);
  args2.PutLong(3);
  auto reply = stub.Invoke("add", args2.buffer().view());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(server_->connections_accepted(), 2u);
}

TEST_P(EndToEndTest, ConcurrentClientsServedIndependently) {
  constexpr int kClients = 4;
  constexpr int kCallsEach = 5;
  std::vector<cool::Thread> threads;
  std::atomic<int> ok_count{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Stub stub(client_.get(), ref_);
      for (int i = 0; i < kCallsEach; ++i) {
        cdr::Encoder args = stub.MakeArgsEncoder();
        args.PutLong(c);
        args.PutLong(i);
        auto reply = stub.Invoke("add", args.buffer().view());
        if (!reply.ok()) continue;
        cdr::Decoder dec = reply->MakeDecoder();
        if (*dec.GetLong() == c + i) ++ok_count;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kClients * kCallsEach);
}

INSTANTIATE_TEST_SUITE_P(AllTransports, EndToEndTest,
                         ::testing::Values(Protocol::kTcp, Protocol::kIpc,
                                           Protocol::kDacapo),
                         [](const auto& param_info) {
                           return std::string(ProtocolName(param_info.param));
                         });

TEST(LargeMessageTest, HalfMegabyteRepliesOverTcpAndDacapo) {
  // Exercises TcpBuffer reassembly and the Da CaPo channel's
  // fragmentation/reassembly path with GIOP messages far larger than one
  // packet.
  sim::Network net(QuickLink());
  ORB server(&net, "server");
  ORB client(&net, "client");

  class BlobServant : public Servant {
   public:
    std::string_view repository_id() const override {
      return "IDL:test/Blob:1.0";
    }
    DispatchOutcome Dispatch(std::string_view, cdr::Decoder& args,
                             cdr::Encoder& out) override {
      auto n = args.GetULong();
      if (!n.ok()) {
        return DispatchOutcome::Fail(InvalidArgumentError("bad args"));
      }
      corba::OctetSeq blob(*n);
      for (corba::ULong i = 0; i < *n; ++i) {
        blob[i] = static_cast<corba::Octet>(i * 131 + 7);
      }
      out.PutOctetSeq(blob);
      return DispatchOutcome::Ok();
    }
  };

  std::vector<ObjectRef> refs;
  for (const auto proto : {Protocol::kTcp, Protocol::kDacapo}) {
    auto ref = server.RegisterServant(
        "blob_" + std::string(ProtocolName(proto)),
        std::make_shared<BlobServant>(), proto);
    ASSERT_TRUE(ref.ok());
    refs.push_back(*ref);
  }
  ASSERT_TRUE(server.Start().ok());

  constexpr corba::ULong kBytes = 512 * 1024;
  for (const auto& ref : refs) {
    Stub stub(&client, ref);
    cdr::Encoder args = stub.MakeArgsEncoder();
    args.PutULong(kBytes);
    auto reply = stub.Invoke("make_blob", args.buffer().view(), seconds(30));
    ASSERT_TRUE(reply.ok())
        << ProtocolName(ref.protocol) << ": " << reply.status();
    cdr::Decoder dec = reply->MakeDecoder();
    auto blob = dec.GetOctetSeq();
    ASSERT_TRUE(blob.ok());
    ASSERT_EQ(blob->size(), kBytes) << ProtocolName(ref.protocol);
    for (corba::ULong i = 0; i < kBytes; i += 4099) {
      ASSERT_EQ((*blob)[i], static_cast<corba::Octet>(i * 131 + 7));
    }
  }
  server.Shutdown();
}

TEST(FailureInjectionTest, ServerShutdownMidSessionSurfacesCleanly) {
  sim::Network net(QuickLink());
  auto server = std::make_unique<ORB>(&net, "server");
  ORB client(&net, "client");
  auto ref =
      server->RegisterServant("calc", std::make_shared<CalcServant>());
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(server->Start().ok());

  Stub stub(&client, *ref);
  cdr::Encoder args = stub.MakeArgsEncoder();
  args.PutLong(1);
  args.PutLong(2);
  ASSERT_TRUE(stub.Invoke("add", args.buffer().view()).ok());

  server->Shutdown();
  cdr::Encoder args2 = stub.MakeArgsEncoder();
  args2.PutLong(3);
  args2.PutLong(4);
  auto reply = stub.Invoke("add", args2.buffer().view(), seconds(2));
  EXPECT_FALSE(reply.ok());
  EXPECT_TRUE(reply.status().code() == ErrorCode::kUnavailable ||
              reply.status().code() == ErrorCode::kDeadlineExceeded)
      << reply.status();

  // A fresh server instance on the same endsystem serves a rebound stub.
  server = std::make_unique<ORB>(&net, "server");
  auto ref2 =
      server->RegisterServant("calc", std::make_shared<CalcServant>());
  ASSERT_TRUE(ref2.ok());
  ASSERT_TRUE(server->Start().ok());
  ASSERT_TRUE(stub.Unbind().ok());
  cdr::Encoder args3 = stub.MakeArgsEncoder();
  args3.PutLong(5);
  args3.PutLong(6);
  auto recovered = stub.Invoke("add", args3.buffer().view());
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  cdr::Decoder dec = recovered->MakeDecoder();
  EXPECT_EQ(*dec.GetLong(), 11);
  server->Shutdown();
}

TEST(ColocationTest, LocalObjectBypassesTransport) {
  sim::Network net(QuickLink());
  ORB orb(&net, "host");  // never started: no listeners at all
  auto servant = std::make_shared<CalcServant>();
  auto ref = orb.RegisterServant("calc", servant);
  ASSERT_TRUE(ref.ok());

  Stub stub(&orb, *ref);
  cdr::Encoder args = stub.MakeArgsEncoder();
  args.PutLong(20);
  args.PutLong(22);
  auto reply = stub.Invoke("add", args.buffer().view());
  ASSERT_TRUE(reply.ok()) << reply.status();
  cdr::Decoder dec = reply->MakeDecoder();
  EXPECT_EQ(*dec.GetLong(), 42);
  EXPECT_EQ(stub.bound_protocol(), "colocated");
  EXPECT_EQ(orb.connections_accepted(), 0u);
}

TEST(ColocationTest, ExceptionsWorkColocated) {
  sim::Network net(QuickLink());
  ORB orb(&net, "host");
  auto ref = orb.RegisterServant("calc", std::make_shared<CalcServant>());
  ASSERT_TRUE(ref.ok());
  Stub stub(&orb, *ref);
  EXPECT_EQ(stub.Invoke("nope", {}).status().code(),
            ErrorCode::kUnsupported);
}

TEST(IorTest, StubFromStringifiedReference) {
  sim::Network net(QuickLink());
  ORB server(&net, "server");
  ORB client(&net, "client");
  auto ref = server.RegisterServant("calc", std::make_shared<CalcServant>());
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(server.Start().ok());

  // Stringify -> hand to the client as text -> parse -> invoke.
  const std::string ior = ref->ToString();
  auto parsed = ObjectRef::FromString(ior);
  ASSERT_TRUE(parsed.ok());
  Stub stub(&client, *parsed);
  cdr::Encoder args = stub.MakeArgsEncoder();
  args.PutString("via-ior");
  auto reply = stub.Invoke("echo", args.buffer().view());
  ASSERT_TRUE(reply.ok()) << reply.status();
  cdr::Decoder dec = reply->MakeDecoder();
  EXPECT_EQ(*dec.GetString(), "via-ior");
  server.Shutdown();
}

}  // namespace
}  // namespace cool::orb
