#include "orb/object_ref.h"

#include <gtest/gtest.h>

namespace cool::orb {
namespace {

ObjectRef Sample() {
  ObjectRef ref;
  ref.protocol = Protocol::kDacapo;
  ref.endpoint = {"serverA", 7003};
  ref.object_key = {'o', 'b', 'j', 0x01, 0xFF};
  ref.repository_id = "IDL:Media/ImageSource:1.0";
  return ref;
}

TEST(ObjectRefTest, StringifyParseRoundTrip) {
  const ObjectRef ref = Sample();
  const std::string ior = ref.ToString();
  auto parsed = ObjectRef::FromString(ior);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, ref);
}

TEST(ObjectRefTest, StringFormIsReadable) {
  const std::string ior = Sample().ToString();
  EXPECT_TRUE(ior.starts_with("cool-ior:dacapo@serverA:7003/"));
  EXPECT_NE(ior.find("?type=IDL:Media/ImageSource:1.0"), std::string::npos);
}

TEST(ObjectRefTest, AllProtocolsRoundTrip) {
  for (const auto proto :
       {Protocol::kTcp, Protocol::kIpc, Protocol::kDacapo}) {
    ObjectRef ref = Sample();
    ref.protocol = proto;
    auto parsed = ObjectRef::FromString(ref.ToString());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->protocol, proto);
  }
}

TEST(ObjectRefTest, EmptyKeyRoundTrips) {
  ObjectRef ref = Sample();
  ref.object_key.clear();
  auto parsed = ObjectRef::FromString(ref.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->object_key.empty());
}

TEST(ObjectRefTest, RejectsForeignScheme) {
  EXPECT_FALSE(ObjectRef::FromString("corbaloc::host:1/obj").ok());
}

TEST(ObjectRefTest, RejectsUnknownProtocol) {
  EXPECT_FALSE(
      ObjectRef::FromString("cool-ior:carrier-pigeon@h:1/ab?type=x").ok());
}

TEST(ObjectRefTest, RejectsBadPort) {
  EXPECT_FALSE(ObjectRef::FromString("cool-ior:tcp@h:99999/ab?type=x").ok());
  EXPECT_FALSE(ObjectRef::FromString("cool-ior:tcp@h:abc/ab?type=x").ok());
}

TEST(ObjectRefTest, RejectsBadHexKey) {
  EXPECT_FALSE(ObjectRef::FromString("cool-ior:tcp@h:1/xyz?type=x").ok());
  EXPECT_FALSE(ObjectRef::FromString("cool-ior:tcp@h:1/abc?type=x").ok());
}

TEST(ObjectRefTest, RejectsMissingParts) {
  EXPECT_FALSE(ObjectRef::FromString("cool-ior:tcp@h:1/ab").ok());  // no type
  EXPECT_FALSE(ObjectRef::FromString("cool-ior:tcp-h:1/ab?type=x").ok());
}

TEST(ObjectRefTest, WithProtocolRebindsEndpoint) {
  const ObjectRef ref = Sample();
  const ObjectRef tcp_ref =
      ref.WithProtocol(Protocol::kTcp, {"serverA", 7001});
  EXPECT_EQ(tcp_ref.protocol, Protocol::kTcp);
  EXPECT_EQ(tcp_ref.endpoint.port, 7001);
  EXPECT_EQ(tcp_ref.object_key, ref.object_key);  // same object
}

TEST(ProtocolTest, NamesRoundTrip) {
  for (const auto proto :
       {Protocol::kTcp, Protocol::kIpc, Protocol::kDacapo}) {
    auto parsed = ProtocolFromName(ProtocolName(proto));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, proto);
  }
}

}  // namespace
}  // namespace cool::orb
