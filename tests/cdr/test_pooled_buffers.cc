// The pooled marshalling path: an Encoder adopting a leased ByteBuffer
// round-trips at a nonzero base_offset (the GIOP args splice point), and
// repeated encode cycles reuse the same pool storage. Also pins down the
// aliasing contract of the zero-copy Decoder views (GetStringView /
// GetOctetSeqView): they point into the decoder's buffer and die with it —
// see DESIGN.md "Buffer ownership and lifetimes".
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "cdr/decoder.h"
#include "cdr/encoder.h"
#include "common/buffer_pool.h"

namespace cool::cdr {
namespace {

// Message-relative splice point used by GIOP request args (8-aligned,
// past the 12-octet header).
constexpr std::size_t kBaseOffset = 16;

ByteBuffer EncodeSample(BufferPool& pool, ByteOrder order) {
  Encoder enc(order, kBaseOffset, pool.Lease());
  enc.PutOctet(0xAB);
  enc.PutULong(0xDEADBEEF);
  enc.PutString("pooled");
  enc.PutDouble(2.5);
  const corba::OctetSeq blob = {1, 2, 3, 4, 5};
  enc.PutOctetSeq(blob);
  return std::move(enc).TakeBuffer();
}

void DecodeAndCheck(const ByteBuffer& buf, ByteOrder order) {
  Decoder dec(buf.view(), order, kBaseOffset);
  ASSERT_TRUE(dec.GetOctet().ok());
  auto ul = dec.GetULong();
  ASSERT_TRUE(ul.ok());
  EXPECT_EQ(*ul, 0xDEADBEEFu);
  auto s = dec.GetString();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "pooled");
  auto d = dec.GetDouble();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 2.5);
  auto seq = dec.GetOctetSeq();
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq->size(), 5u);
  EXPECT_EQ((*seq)[4], 5u);
}

TEST(PooledEncoderTest, RoundTripsAtSpliceOffsetAndReusesStorage) {
  BufferPool pool;
  constexpr int kRounds = 4;
  for (int i = 0; i < kRounds; ++i) {
    ByteBuffer buf = EncodeSample(pool, ByteOrder::kLittleEndian);
    DecodeAndCheck(buf, ByteOrder::kLittleEndian);
  }  // each round's buffer recycles before the next leases
  const BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kRounds) - 1);
}

TEST(PooledEncoderTest, BigEndianRoundTrip) {
  BufferPool pool;
  ByteBuffer buf = EncodeSample(pool, ByteOrder::kBigEndian);
  DecodeAndCheck(buf, ByteOrder::kBigEndian);
}

TEST(DecoderViewTest, ViewsAliasTheDecodedBuffer) {
  BufferPool pool;
  Encoder enc(NativeOrder(), 0, pool.Lease());
  enc.PutString("alias-me");
  const corba::OctetSeq blob = {9, 8, 7};
  enc.PutOctetSeq(blob);
  const ByteBuffer buf = std::move(enc).TakeBuffer();

  Decoder dec(buf.view(), NativeOrder(), 0);
  auto sv = dec.GetStringView();
  ASSERT_TRUE(sv.ok());
  EXPECT_EQ(*sv, "alias-me");
  auto seq = dec.GetOctetSeqView();
  ASSERT_TRUE(seq.ok());
  ASSERT_EQ(seq->size(), 3u);
  EXPECT_EQ((*seq)[0], 9u);

  // The views are windows into buf's storage, not copies.
  const auto* begin = buf.data();
  const auto* end = buf.data() + buf.size();
  EXPECT_GE(reinterpret_cast<const std::uint8_t*>(sv->data()), begin);
  EXPECT_LT(reinterpret_cast<const std::uint8_t*>(sv->data()), end);
  EXPECT_GE(seq->data(), begin);
  EXPECT_LT(seq->data(), end);
}

TEST(DecoderViewTest, CopyOutBeforeReleasingTheBuffer) {
  BufferPool pool;
  std::string kept;
  {
    Encoder enc(NativeOrder(), 0, pool.Lease());
    enc.PutString("short-lived");
    const ByteBuffer buf = std::move(enc).TakeBuffer();
    Decoder dec(buf.view(), NativeOrder(), 0);
    auto sv = dec.GetStringView();
    ASSERT_TRUE(sv.ok());
    kept.assign(*sv);  // materialize before buf recycles
  }
  EXPECT_EQ(kept, "short-lived");
  EXPECT_EQ(pool.stats().free_buffers, 1u);
}

}  // namespace
}  // namespace cool::cdr
