// CDR alignment rules: every primitive is aligned to its natural size
// relative to the start of the message (CORBA 2.0 §12.3). These tests pin
// the padding bytes and the base_offset mechanism GIOP relies on.
#include <gtest/gtest.h>

#include "cdr/decoder.h"
#include "cdr/encoder.h"

namespace cool::cdr {
namespace {

TEST(CdrAlignmentTest, ShortAfterOctetPadsOneByte) {
  Encoder enc(ByteOrder::kLittleEndian);
  enc.PutOctet(0xFF);
  enc.PutShort(0x0102);
  // 1 octet + 1 pad + 2 short
  EXPECT_EQ(enc.buffer().size(), 4u);
  EXPECT_EQ(enc.buffer().data()[1], 0);  // padding is zeroed
}

TEST(CdrAlignmentTest, LongAfterOctetPadsThreeBytes) {
  Encoder enc(ByteOrder::kLittleEndian);
  enc.PutOctet(1);
  enc.PutLong(2);
  EXPECT_EQ(enc.buffer().size(), 8u);
}

TEST(CdrAlignmentTest, LongLongAligumentIsEight) {
  Encoder enc(ByteOrder::kLittleEndian);
  enc.PutOctet(1);
  enc.PutLongLong(2);
  EXPECT_EQ(enc.buffer().size(), 16u);  // 1 + 7 pad + 8
}

TEST(CdrAlignmentTest, AlignedValueAddsNoPadding) {
  Encoder enc(ByteOrder::kLittleEndian);
  enc.PutULong(1);
  enc.PutULong(2);
  EXPECT_EQ(enc.buffer().size(), 8u);
}

TEST(CdrAlignmentTest, DecoderSkipsSamePadding) {
  Encoder enc(ByteOrder::kLittleEndian);
  enc.PutOctet(9);
  enc.PutLong(-5);
  enc.PutOctet(7);
  enc.PutDouble(1.5);

  Decoder dec(enc.buffer().view(), ByteOrder::kLittleEndian);
  EXPECT_EQ(*dec.GetOctet(), 9);
  EXPECT_EQ(*dec.GetLong(), -5);
  EXPECT_EQ(*dec.GetOctet(), 7);
  EXPECT_EQ(*dec.GetDouble(), 1.5);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CdrAlignmentTest, BaseOffsetShiftsAlignment) {
  // Simulates encoding a body that starts 12 octets into the message (the
  // GIOP header): alignment is message-relative, not buffer-relative.
  Encoder enc(ByteOrder::kLittleEndian, /*base_offset=*/12);
  enc.PutULong(1);  // offset 12 is 4-aligned: no padding
  EXPECT_EQ(enc.buffer().size(), 4u);

  Encoder enc2(ByteOrder::kLittleEndian, /*base_offset=*/13);
  enc2.PutULong(1);  // offset 13 -> pad 3
  EXPECT_EQ(enc2.buffer().size(), 7u);

  Decoder dec(enc2.buffer().view(), ByteOrder::kLittleEndian,
              /*base_offset=*/13);
  EXPECT_EQ(*dec.GetULong(), 1u);
}

TEST(CdrAlignmentTest, BaseOffsetEightForLongLong) {
  Encoder enc(ByteOrder::kLittleEndian, /*base_offset=*/4);
  enc.PutLongLong(7);  // offset 4 -> pad to 8
  EXPECT_EQ(enc.buffer().size(), 12u);
  Decoder dec(enc.buffer().view(), ByteOrder::kLittleEndian, 4);
  EXPECT_EQ(*dec.GetLongLong(), 7);
}

TEST(CdrAlignmentTest, ExplicitAlignMatchesEncoderAndDecoder) {
  Encoder enc(ByteOrder::kLittleEndian);
  enc.PutOctet(1);
  enc.Align(8);
  enc.PutOctet(2);
  EXPECT_EQ(enc.buffer().size(), 9u);

  Decoder dec(enc.buffer().view(), ByteOrder::kLittleEndian);
  EXPECT_EQ(*dec.GetOctet(), 1);
  ASSERT_TRUE(dec.Align(8).ok());
  EXPECT_EQ(*dec.GetOctet(), 2);
}

TEST(CdrAlignmentTest, OffsetTracksLogicalPosition) {
  Encoder enc(ByteOrder::kLittleEndian, 12);
  EXPECT_EQ(enc.offset(), 12u);
  enc.PutULong(5);
  EXPECT_EQ(enc.offset(), 16u);
}

TEST(CdrAlignmentTest, AlignPastEndFailsInDecoder) {
  Encoder enc(ByteOrder::kLittleEndian);
  enc.PutOctet(1);
  Decoder dec(enc.buffer().view(), ByteOrder::kLittleEndian);
  EXPECT_EQ(*dec.GetOctet(), 1);
  // At offset 1 with nothing left, aligning to 8 would need 7 pad octets.
  EXPECT_EQ(dec.Align(8).code(), ErrorCode::kProtocolError);
}

}  // namespace
}  // namespace cool::cdr
