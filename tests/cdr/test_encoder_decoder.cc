#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "cdr/decoder.h"
#include "cdr/encoder.h"
#include "common/rng.h"

namespace cool::cdr {
namespace {

using corba::Octet;

// Round-trip of every primitive, parameterized over both byte orders —
// CDR receivers must handle either, selected by the GIOP byte_order flag.
class CdrRoundTripTest : public ::testing::TestWithParam<ByteOrder> {};

TEST_P(CdrRoundTripTest, Primitives) {
  Encoder enc(GetParam());
  enc.PutBoolean(true);
  enc.PutBoolean(false);
  enc.PutOctet(0xAB);
  enc.PutChar('Z');
  enc.PutShort(-1234);
  enc.PutUShort(54321);
  enc.PutLong(-123456789);
  enc.PutULong(3456789012u);
  enc.PutLongLong(-1234567890123456789LL);
  enc.PutULongLong(12345678901234567890ULL);
  enc.PutFloat(3.25f);
  enc.PutDouble(-2.5e300);

  Decoder dec(enc.buffer().view(), GetParam());
  EXPECT_EQ(*dec.GetBoolean(), true);
  EXPECT_EQ(*dec.GetBoolean(), false);
  EXPECT_EQ(*dec.GetOctet(), 0xAB);
  EXPECT_EQ(*dec.GetChar(), 'Z');
  EXPECT_EQ(*dec.GetShort(), -1234);
  EXPECT_EQ(*dec.GetUShort(), 54321);
  EXPECT_EQ(*dec.GetLong(), -123456789);
  EXPECT_EQ(*dec.GetULong(), 3456789012u);
  EXPECT_EQ(*dec.GetLongLong(), -1234567890123456789LL);
  EXPECT_EQ(*dec.GetULongLong(), 12345678901234567890ULL);
  EXPECT_EQ(*dec.GetFloat(), 3.25f);
  EXPECT_EQ(*dec.GetDouble(), -2.5e300);
  EXPECT_TRUE(dec.AtEnd());
}

TEST_P(CdrRoundTripTest, ExtremeValues) {
  Encoder enc(GetParam());
  enc.PutLong(std::numeric_limits<corba::Long>::min());
  enc.PutLong(std::numeric_limits<corba::Long>::max());
  enc.PutULong(std::numeric_limits<corba::ULong>::max());
  enc.PutLongLong(std::numeric_limits<corba::LongLong>::min());
  enc.PutDouble(std::numeric_limits<corba::Double>::infinity());
  enc.PutFloat(-0.0f);

  Decoder dec(enc.buffer().view(), GetParam());
  EXPECT_EQ(*dec.GetLong(), std::numeric_limits<corba::Long>::min());
  EXPECT_EQ(*dec.GetLong(), std::numeric_limits<corba::Long>::max());
  EXPECT_EQ(*dec.GetULong(), std::numeric_limits<corba::ULong>::max());
  EXPECT_EQ(*dec.GetLongLong(), std::numeric_limits<corba::LongLong>::min());
  EXPECT_EQ(*dec.GetDouble(),
            std::numeric_limits<corba::Double>::infinity());
  const corba::Float f = *dec.GetFloat();
  EXPECT_EQ(f, 0.0f);
  EXPECT_TRUE(std::signbit(f));
}

TEST_P(CdrRoundTripTest, Strings) {
  Encoder enc(GetParam());
  enc.PutString("");
  enc.PutString("hello world");
  enc.PutString(std::string(1000, 'x'));

  Decoder dec(enc.buffer().view(), GetParam());
  EXPECT_EQ(*dec.GetString(), "");
  EXPECT_EQ(*dec.GetString(), "hello world");
  EXPECT_EQ(dec.GetString()->size(), 1000u);
  EXPECT_TRUE(dec.AtEnd());
}

TEST_P(CdrRoundTripTest, OctetSequences) {
  Encoder enc(GetParam());
  enc.PutOctetSeq(corba::OctetSeq{});
  enc.PutOctetSeq(corba::OctetSeq{1, 2, 3});

  Decoder dec(enc.buffer().view(), GetParam());
  EXPECT_TRUE(dec.GetOctetSeq()->empty());
  EXPECT_EQ(*dec.GetOctetSeq(), (corba::OctetSeq{1, 2, 3}));
}

TEST_P(CdrRoundTripTest, RandomizedMixedRoundTrip) {
  Rng rng(2024);
  for (int round = 0; round < 50; ++round) {
    Encoder enc(GetParam());
    std::vector<corba::LongLong> values;
    std::vector<int> kinds;
    for (int i = 0; i < 20; ++i) {
      const int kind = static_cast<int>(rng.NextBelow(4));
      kinds.push_back(kind);
      const auto v = static_cast<corba::LongLong>(rng.NextU64());
      values.push_back(v);
      switch (kind) {
        case 0: enc.PutOctet(static_cast<Octet>(v)); break;
        case 1: enc.PutShort(static_cast<corba::Short>(v)); break;
        case 2: enc.PutLong(static_cast<corba::Long>(v)); break;
        case 3: enc.PutLongLong(v); break;
      }
    }
    Decoder dec(enc.buffer().view(), GetParam());
    for (int i = 0; i < 20; ++i) {
      switch (kinds[static_cast<std::size_t>(i)]) {
        case 0:
          EXPECT_EQ(*dec.GetOctet(),
                    static_cast<Octet>(values[static_cast<std::size_t>(i)]));
          break;
        case 1:
          EXPECT_EQ(*dec.GetShort(),
                    static_cast<corba::Short>(
                        values[static_cast<std::size_t>(i)]));
          break;
        case 2:
          EXPECT_EQ(*dec.GetLong(),
                    static_cast<corba::Long>(
                        values[static_cast<std::size_t>(i)]));
          break;
        case 3:
          EXPECT_EQ(*dec.GetLongLong(), values[static_cast<std::size_t>(i)]);
          break;
      }
    }
    EXPECT_TRUE(dec.AtEnd());
  }
}

INSTANTIATE_TEST_SUITE_P(BothOrders, CdrRoundTripTest,
                         ::testing::Values(ByteOrder::kLittleEndian,
                                           ByteOrder::kBigEndian),
                         [](const auto& param_info) {
                           return param_info.param == ByteOrder::kLittleEndian
                                      ? "LittleEndian"
                                      : "BigEndian";
                         });

TEST(CdrWireFormatTest, LittleEndianLayout) {
  Encoder enc(ByteOrder::kLittleEndian);
  enc.PutULong(0x01020304u);
  ASSERT_EQ(enc.buffer().size(), 4u);
  EXPECT_EQ(enc.buffer().data()[0], 0x04);
  EXPECT_EQ(enc.buffer().data()[3], 0x01);
}

TEST(CdrWireFormatTest, BigEndianLayout) {
  Encoder enc(ByteOrder::kBigEndian);
  enc.PutULong(0x01020304u);
  ASSERT_EQ(enc.buffer().size(), 4u);
  EXPECT_EQ(enc.buffer().data()[0], 0x01);
  EXPECT_EQ(enc.buffer().data()[3], 0x04);
}

TEST(CdrWireFormatTest, StringIncludesNulAndLength) {
  Encoder enc(ByteOrder::kLittleEndian);
  enc.PutString("ab");
  // length 3 (incl. NUL) + 'a' 'b' '\0'
  ASSERT_EQ(enc.buffer().size(), 7u);
  EXPECT_EQ(enc.buffer().data()[0], 3);
  EXPECT_EQ(enc.buffer().data()[4], 'a');
  EXPECT_EQ(enc.buffer().data()[6], 0);
}

TEST(CdrErrorTest, TruncatedIntegralFails) {
  Encoder enc(ByteOrder::kLittleEndian);
  enc.PutULong(1);
  Decoder dec(enc.buffer().view().subspan(0, 3), ByteOrder::kLittleEndian);
  EXPECT_EQ(dec.GetULong().status().code(), ErrorCode::kProtocolError);
}

TEST(CdrErrorTest, StringWithoutNulFails) {
  Encoder enc(ByteOrder::kLittleEndian);
  enc.PutULong(3);
  enc.PutRaw(std::array<Octet, 3>{'a', 'b', 'c'});  // no NUL
  Decoder dec(enc.buffer().view(), ByteOrder::kLittleEndian);
  EXPECT_EQ(dec.GetString().status().code(), ErrorCode::kProtocolError);
}

TEST(CdrErrorTest, ZeroLengthStringIsInvalidCdr) {
  Encoder enc(ByteOrder::kLittleEndian);
  enc.PutULong(0);
  Decoder dec(enc.buffer().view(), ByteOrder::kLittleEndian);
  EXPECT_EQ(dec.GetString().status().code(), ErrorCode::kProtocolError);
}

TEST(CdrErrorTest, BooleanOutOfRangeFails) {
  Encoder enc(ByteOrder::kLittleEndian);
  enc.PutOctet(2);
  Decoder dec(enc.buffer().view(), ByteOrder::kLittleEndian);
  EXPECT_EQ(dec.GetBoolean().status().code(), ErrorCode::kProtocolError);
}

TEST(CdrErrorTest, OctetSeqLengthBeyondBufferFails) {
  Encoder enc(ByteOrder::kLittleEndian);
  enc.PutULong(1000);  // claims 1000 octets, provides none
  Decoder dec(enc.buffer().view(), ByteOrder::kLittleEndian);
  EXPECT_EQ(dec.GetOctetSeq().status().code(), ErrorCode::kProtocolError);
}

// --- bulk primitive sequences -----------------------------------------------

// The bulk path (PutPrimitiveSeq/GetPrimitiveSeq) must produce exactly the
// octets of an element-wise encode, in both byte orders, at every element
// width — the memcpy/byteswap sweep is an optimization, not a format.
template <typename T, typename PutOne>
void ExpectBulkMatchesElementwise(std::span<const T> values, PutOne put_one) {
  for (ByteOrder order : {ByteOrder::kLittleEndian, ByteOrder::kBigEndian}) {
    // Base offset 1: the sequence count and elements must align against
    // the message start, not the buffer start.
    Encoder bulk(order, 1);
    bulk.PutPrimitiveSeq(values);
    Encoder ref(order, 1);
    ref.PutULong(static_cast<corba::ULong>(values.size()));
    for (const T& v : values) put_one(ref, v);
    ASSERT_EQ(bulk.buffer().size(), ref.buffer().size());
    EXPECT_TRUE(std::equal(bulk.buffer().view().begin(),
                           bulk.buffer().view().end(),
                           ref.buffer().view().begin()));

    Decoder dec(bulk.buffer().view(), order, 1);
    std::vector<T> back;
    ASSERT_TRUE(dec.GetPrimitiveSeq(back).ok());
    EXPECT_TRUE(dec.AtEnd());
    ASSERT_EQ(back.size(), values.size());
    EXPECT_TRUE(std::equal(back.begin(), back.end(), values.begin()));
  }
}

TEST(CdrBulkSeqTest, ShortSeqRoundTripsBothOrders) {
  const std::int16_t v[] = {0, 1, -1, 0x1234, -0x1234, 0x7fff, -0x8000};
  ExpectBulkMatchesElementwise<std::int16_t>(
      v, [](Encoder& e, std::int16_t x) { e.PutShort(x); });
}

TEST(CdrBulkSeqTest, LongSeqRoundTripsBothOrders) {
  const std::int32_t v[] = {0, 1, -1, 0x12345678, -0x12345678, 0x7fffffff};
  ExpectBulkMatchesElementwise<std::int32_t>(
      v, [](Encoder& e, std::int32_t x) { e.PutLong(x); });
}

TEST(CdrBulkSeqTest, ULongLongSeqRoundTripsBothOrders) {
  const std::uint64_t v[] = {0, 1, 0x0102030405060708ull,
                             0xffffffffffffffffull};
  ExpectBulkMatchesElementwise<std::uint64_t>(
      v, [](Encoder& e, std::uint64_t x) { e.PutULongLong(x); });
}

TEST(CdrBulkSeqTest, DoubleSeqRoundTripsBothOrders) {
  const double v[] = {0.0, -1.5, 3.14159, std::numeric_limits<double>::max(),
                      std::numeric_limits<double>::infinity()};
  ExpectBulkMatchesElementwise<double>(
      v, [](Encoder& e, double x) { e.PutDouble(x); });
}

TEST(CdrBulkSeqTest, OctetSeqTakesSingleByteFastPath) {
  const std::uint8_t v[] = {1, 2, 3, 254, 255};
  ExpectBulkMatchesElementwise<std::uint8_t>(
      v, [](Encoder& e, std::uint8_t x) { e.PutOctet(x); });
}

TEST(CdrBulkSeqTest, EmptySeqEncodesCountOnly) {
  Encoder enc(ByteOrder::kLittleEndian);
  enc.PutPrimitiveSeq(std::span<const std::int32_t>{});
  EXPECT_EQ(enc.buffer().size(), 4u);
  Decoder dec(enc.buffer().view(), ByteOrder::kLittleEndian);
  std::vector<std::int32_t> back{42};
  ASSERT_TRUE(dec.GetPrimitiveSeq(back).ok());
  EXPECT_TRUE(back.empty());
}

TEST(CdrBulkSeqTest, LargeSwappedSeqCrossesStagingChunks) {
  // > 512 octets of payload forces multiple staging-chunk flushes on the
  // byteswap path.
  std::vector<std::uint32_t> values(301);
  Rng rng(7);
  for (auto& v : values) v = static_cast<std::uint32_t>(rng.NextU64());
  const ByteOrder foreign = NativeOrder() == ByteOrder::kLittleEndian
                                ? ByteOrder::kBigEndian
                                : ByteOrder::kLittleEndian;
  Encoder enc(foreign);
  enc.PutPrimitiveSeq(std::span<const std::uint32_t>(values));
  Decoder dec(enc.buffer().view(), foreign);
  std::vector<std::uint32_t> back;
  ASSERT_TRUE(dec.GetPrimitiveSeq(back).ok());
  EXPECT_EQ(back, values);
}

TEST(CdrBulkSeqTest, HostileCountFailsCleanly) {
  Encoder enc(ByteOrder::kLittleEndian);
  enc.PutULong(0xfffffff0u);  // claims ~4G elements, provides none
  Decoder dec(enc.buffer().view(), ByteOrder::kLittleEndian);
  std::vector<std::uint64_t> back;
  EXPECT_EQ(dec.GetPrimitiveSeq(back).code(), ErrorCode::kProtocolError);
  EXPECT_TRUE(back.empty());
}

TEST(CdrErrorTest, CrossEndianMismatchStillDecodesNumbers) {
  // Writing LE and reading BE is not an error CDR can detect — the value
  // is simply byte-swapped. This documents (and pins) that behaviour.
  Encoder enc(ByteOrder::kLittleEndian);
  enc.PutULong(0x01020304u);
  Decoder dec(enc.buffer().view(), ByteOrder::kBigEndian);
  EXPECT_EQ(*dec.GetULong(), 0x04030201u);
}

}  // namespace
}  // namespace cool::cdr
