// Robustness sweeps: decoders must fail gracefully (never crash, never
// read out of bounds) on arbitrary and truncated input. Deterministic
// PRNG makes failures reproducible by seed.
#include <gtest/gtest.h>

#include "cdr/decoder.h"
#include "cdr/encoder.h"
#include "common/rng.h"
#include "dacapo/graph.h"
#include "giop/message.h"
#include "orb/object_ref.h"
#include "qos/qos.h"

namespace cool {
namespace {

std::vector<std::uint8_t> RandomBytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = rng.NextByte();
  return data;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, CdrDecoderSurvivesRandomBytes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const auto data = RandomBytes(rng, rng.NextBelow(64));
  cdr::Decoder dec(data, cdr::ByteOrder::kLittleEndian);
  // Pull a random sequence of typed reads; each either succeeds or
  // reports a protocol error — no UB, no crash.
  for (int i = 0; i < 16; ++i) {
    switch (rng.NextBelow(7)) {
      case 0: (void)dec.GetOctet(); break;
      case 1: (void)dec.GetBoolean(); break;
      case 2: (void)dec.GetLong(); break;
      case 3: (void)dec.GetULongLong(); break;
      case 4: (void)dec.GetString(); break;
      case 5: (void)dec.GetOctetSeq(); break;
      case 6: (void)dec.GetDouble(); break;
    }
  }
  SUCCEED();
}

TEST_P(FuzzTest, GiopParseMessageSurvivesRandomBytes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  auto data = RandomBytes(rng, rng.NextBelow(128));
  (void)giop::ParseMessage(data);
  // And with a valid magic prefix so parsing gets further.
  if (data.size() >= 4) {
    data[0] = 'G';
    data[1] = 'I';
    data[2] = 'O';
    data[3] = 'P';
    (void)giop::ParseMessage(data);
  }
  SUCCEED();
}

TEST_P(FuzzTest, TruncatedValidRequestAlwaysErrorsCleanly) {
  giop::RequestHeader header;
  header.request_id = 5;
  header.object_key = {'k'};
  header.operation = "op";
  header.qos_params = {qos::RequireReliability(2),
                       qos::RequireThroughputKbps(100, 10)};
  cdr::Encoder args(cdr::NativeOrder(), 0);
  args.PutString("some arguments");
  const ByteBuffer msg =
      giop::BuildRequest(giop::kGiopQos, header, args.buffer().view());

  // Cut at the parameterized length: either ParseMessage rejects the size
  // mismatch, or (at full length) everything parses.
  const std::size_t cut =
      static_cast<std::size_t>(GetParam()) * msg.size() / 50;
  auto parsed = giop::ParseMessage(msg.view().subspan(0, cut));
  if (cut == msg.size()) {
    ASSERT_TRUE(parsed.ok());
    cdr::Decoder dec = parsed->MakeBodyDecoder();
    EXPECT_TRUE(giop::ParseRequestHeader(dec, giop::kGiopQos).ok());
  } else {
    EXPECT_FALSE(parsed.ok());
  }
}

TEST_P(FuzzTest, ModuleGraphSpecDeserializeSurvives) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 17);
  const auto data = RandomBytes(rng, rng.NextBelow(96));
  (void)dacapo::ModuleGraphSpec::Deserialize(data);
  SUCCEED();
}

TEST_P(FuzzTest, QosParamSeqDecodeSurvives) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 613 + 5);
  const auto data = RandomBytes(rng, rng.NextBelow(96));
  cdr::Decoder dec(data, cdr::ByteOrder::kLittleEndian);
  (void)qos::DecodeQoSParameterSeq(dec);
  SUCCEED();
}

TEST_P(FuzzTest, ObjectRefFromRandomStringsSurvives) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 29);
  std::string s = "cool-ior:";
  const std::size_t n = rng.NextBelow(40);
  for (std::size_t i = 0; i < n; ++i) {
    s += static_cast<char>(' ' + rng.NextBelow(95));
  }
  (void)orb::ObjectRef::FromString(s);
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 51));

TEST(FuzzRoundTripTest, MutatedValidMessagesNeverCrashTheParser) {
  // Take a valid extended Request and flip every single byte in turn; the
  // parser must always either succeed or fail cleanly.
  giop::RequestHeader header;
  header.request_id = 9;
  header.object_key = {'x', 'y'};
  header.operation = "mutate";
  header.qos_params = {qos::RequireLatencyMicros(10, 100)};
  const ByteBuffer msg = giop::BuildRequest(giop::kGiopQos, header, {});

  for (std::size_t i = 0; i < msg.size(); ++i) {
    std::vector<std::uint8_t> copy(msg.view().begin(), msg.view().end());
    copy[i] ^= 0xFF;
    auto parsed = giop::ParseMessage(copy);
    if (!parsed.ok()) continue;
    cdr::Decoder dec = parsed->MakeBodyDecoder();
    (void)giop::ParseRequestHeader(dec, parsed->header.version);
  }
  SUCCEED();
}

}  // namespace
}  // namespace cool
