#include "transport/reactor.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "sim/waitset.h"

namespace cool::transport {
namespace {

bool WaitUntil(const std::function<bool()>& pred,
               Duration timeout = seconds(10)) {
  const TimePoint deadline = DeadlineFor(timeout);
  while (Now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return pred();
}

TEST(ReactorTest, ManualRegistrationFiresOnSchedule) {
  Reactor reactor(2);
  std::atomic<int> fired{0};
  const std::uint64_t id = reactor.AddManual([&fired] { ++fired; });
  reactor.Schedule(id);
  EXPECT_TRUE(WaitUntil([&] { return fired.load() >= 1; }));
  reactor.Remove(id);
}

TEST(ReactorTest, AttachedSourceFiresOnProbeAndSignal) {
  Reactor reactor(1);
  sim::Watchable source;
  std::atomic<int> fired{0};
  auto reg = reactor.Add(
      [&source](const sim::WaitSet& set, std::uint64_t token) {
        source.Watch(set, token);
        return true;
      },
      [&fired] { ++fired; });
  ASSERT_TRUE(reg.ok());
  // The attach probe alone delivers one callback.
  EXPECT_TRUE(WaitUntil([&] { return fired.load() >= 1; }));

  const int before = fired.load();
  source.SignalReady();
  EXPECT_TRUE(WaitUntil([&] { return fired.load() > before; }));
  reactor.Remove(*reg);
}

TEST(ReactorTest, AttachFailureReportsUnsupported) {
  Reactor reactor(1);
  auto reg = reactor.Add(
      [](const sim::WaitSet&, std::uint64_t) { return false; }, [] {});
  ASSERT_FALSE(reg.ok());
  EXPECT_EQ(reg.status().code(), ErrorCode::kUnsupported);
}

TEST(ReactorTest, CallbackNeverRunsConcurrentlyWithItself) {
  Reactor reactor(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  std::atomic<int> runs{0};
  const std::uint64_t id = reactor.AddManual([&] {
    const int now = ++in_flight;
    int seen = max_in_flight.load();
    while (now > seen && !max_in_flight.compare_exchange_weak(seen, now)) {
    }
    std::this_thread::sleep_for(microseconds(200));
    --in_flight;
    ++runs;
  });
  // Keep scheduling while callbacks run: coalesced posts still mean the
  // callback fires repeatedly, but never against itself.
  {
    std::vector<Thread> posters;
    for (int t = 0; t < 3; ++t) {
      posters.emplace_back([&](std::stop_token st) {
        while (!st.stop_requested() && runs.load() < 8) {
          reactor.Schedule(id);
          std::this_thread::sleep_for(microseconds(50));
        }
      });
    }
    EXPECT_TRUE(WaitUntil([&] { return runs.load() >= 8; }));
    for (auto& p : posters) p.request_stop();
  }  // joins
  reactor.Remove(id);
  EXPECT_EQ(max_in_flight.load(), 1);
}

TEST(ReactorTest, RemoveIsABarrierAgainstARunningCallback) {
  Reactor reactor(1);
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  const std::uint64_t id = reactor.AddManual([&] {
    entered = true;
    while (!release.load()) std::this_thread::sleep_for(microseconds(100));
  });
  reactor.Schedule(id);
  ASSERT_TRUE(WaitUntil([&] { return entered.load(); }));

  std::atomic<bool> removed{false};
  Thread remover([&](std::stop_token) {
    reactor.Remove(id);
    removed = true;
  });
  std::this_thread::sleep_for(milliseconds(30));
  EXPECT_FALSE(removed.load());  // barrier: callback still mid-flight
  release = true;
  remover.join();
  EXPECT_TRUE(removed.load());
}

TEST(ReactorTest, SelfRemovalFromInsideCallbackDoesNotDeadlock) {
  Reactor reactor(1);
  std::atomic<std::uint64_t> self_id{0};
  std::atomic<int> runs{0};
  const std::uint64_t id = reactor.AddManual([&] {
    ++runs;
    reactor.Remove(self_id.load());
  });
  self_id = id;
  reactor.Schedule(id);
  EXPECT_TRUE(WaitUntil([&] { return runs.load() >= 1; }));
  // A second schedule after self-removal must be a no-op.
  reactor.Schedule(id);
  std::this_thread::sleep_for(milliseconds(30));
  EXPECT_EQ(runs.load(), 1);
}

TEST(ReactorTest, RemoveUnknownIdIsIdempotent) {
  Reactor reactor(1);
  reactor.Remove(424242);  // never registered: must not block or crash
}

TEST(ReactorTest, DispatchCounterAdvances) {
  Reactor reactor(1);
  std::atomic<int> fired{0};
  const std::uint64_t id = reactor.AddManual([&fired] { ++fired; });
  reactor.Schedule(id);
  ASSERT_TRUE(WaitUntil([&] { return fired.load() >= 1; }));
  EXPECT_GE(reactor.dispatches(), 1u);
  reactor.Remove(id);
}

TEST(ReactorTest, KernelFdReadinessFeedsTheSameWorkers) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  // Edge-triggered epoll demands a non-blocking drain loop.
  ASSERT_EQ(fcntl(fds[0], F_SETFL, O_NONBLOCK), 0);

  Reactor reactor(2);
  std::atomic<int> bytes_seen{0};
  auto reg = reactor.AddFd(fds[0], [&] {
    // Edge-triggered: drain everything available.
    char buf[64];
    for (;;) {
      const ssize_t n = read(fds[0], buf, sizeof(buf));
      if (n <= 0) break;
      bytes_seen += static_cast<int>(n);
    }
  });
  ASSERT_TRUE(reg.ok());

  ASSERT_EQ(write(fds[1], "abc", 3), 3);
  EXPECT_TRUE(WaitUntil([&] { return bytes_seen.load() >= 3; }));
  ASSERT_EQ(write(fds[1], "de", 2), 2);
  EXPECT_TRUE(WaitUntil([&] { return bytes_seen.load() >= 5; }));

  reactor.RemoveFd(fds[0], *reg);
  close(fds[0]);
  close(fds[1]);
}

TEST(ReactorTest, PinnedWorkersReportStableWorkerIndex) {
  Reactor::Options options;
  options.workers = 2;
  options.pin_workers = true;  // best-effort; must not change dispatch
  Reactor reactor(options);

  // Off-worker threads are outside every reactor.
  EXPECT_EQ(Reactor::CurrentWorkerIndex(), -1);

  std::atomic<int> runs{0};
  std::atomic<bool> stable{true};
  std::atomic<int> seen_index{-1};
  const std::uint64_t id = reactor.AddManual([&] {
    const int index = Reactor::CurrentWorkerIndex();
    int expected = -1;
    if (!seen_index.compare_exchange_strong(expected, index) &&
        expected != index) {
      stable = false;  // callback migrated between workers
    }
    ++runs;
  });
  for (int i = 0; i < 32; ++i) {
    reactor.Schedule(id);
    std::this_thread::sleep_for(microseconds(200));
  }
  ASSERT_TRUE(WaitUntil([&] { return runs.load() >= 1; }));
  EXPECT_TRUE(stable.load());
  EXPECT_EQ(seen_index.load(),
            static_cast<int>(reactor.WorkerIndexFor(id)));
  reactor.Remove(id);
}

TEST(ReactorTest, AddBatchDefersFiringUntilAttach) {
  Reactor reactor(2);
  constexpr std::size_t kTrain = 5;
  std::array<std::atomic<int>, kTrain> fired{};
  std::vector<Reactor::Callback> cbs;
  for (std::size_t i = 0; i < kTrain; ++i) {
    cbs.push_back([&fired, i] { ++fired[i]; });
  }
  const std::vector<std::uint64_t> ids = reactor.AddBatch(std::move(cbs));
  ASSERT_EQ(ids.size(), kTrain);

  // Phase one installed the callbacks but no readiness source exists yet:
  // a Schedule is dropped by the wait set, nothing may fire.
  for (const std::uint64_t id : ids) reactor.Schedule(id);
  std::this_thread::sleep_for(milliseconds(30));
  for (const auto& f : fired) EXPECT_EQ(f.load(), 0);

  // Phase two binds the sources; the attach probe fires each callback.
  std::array<sim::Watchable, kTrain> sources;
  for (std::size_t i = 0; i < kTrain; ++i) {
    ASSERT_TRUE(reactor.Attach(
        ids[i], [&sources, i](const sim::WaitSet& set, std::uint64_t token) {
          sources[i].Watch(set, token);
          return true;
        }));
  }
  for (std::size_t i = 0; i < kTrain; ++i) {
    EXPECT_TRUE(WaitUntil([&, i] { return fired[i].load() >= 1; }));
  }
  // And readiness keeps flowing afterwards, like a plain Add().
  const int before = fired[2].load();
  sources[2].SignalReady();
  EXPECT_TRUE(WaitUntil([&] { return fired[2].load() > before; }));
  for (const std::uint64_t id : ids) reactor.Remove(id);
}

TEST(ReactorTest, AttachFailureDropsTheBatchRegistration) {
  Reactor reactor(1);
  std::vector<Reactor::Callback> cbs;
  std::atomic<int> fired{0};
  cbs.push_back([&fired] { ++fired; });
  const std::vector<std::uint64_t> ids = reactor.AddBatch(std::move(cbs));
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_FALSE(reactor.Attach(
      ids[0], [](const sim::WaitSet&, std::uint64_t) { return false; }));
  reactor.Schedule(ids[0]);
  std::this_thread::sleep_for(milliseconds(30));
  EXPECT_EQ(fired.load(), 0);
  reactor.Remove(ids[0]);  // idempotent on the already-dropped id
}

TEST(ReactorTest, ScheduleAtFiresAtTheDeadlineNotBefore) {
  Reactor reactor(1);
  std::atomic<int> fired{0};
  const std::uint64_t id = reactor.AddManual([&fired] { ++fired; });
  const Stopwatch sw;
  reactor.ScheduleAt(id, Now() + milliseconds(120));
  std::this_thread::sleep_for(milliseconds(30));
  EXPECT_EQ(fired.load(), 0);  // deadline still in the future
  EXPECT_TRUE(WaitUntil([&] { return fired.load() >= 1; }));
  EXPECT_GE(sw.Elapsed(), milliseconds(100));
  reactor.Remove(id);
}

}  // namespace
}  // namespace cool::transport
