// EgressScheduler: the turnstile that mounts the hierarchical scheduler on
// the Da CaPo transmit path. Grant/release discipline, weighted arbitration
// of parked senders, token-bucket pacing, and the wakeup contracts around
// Unregister/Close.
#include "transport/qos_egress.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/thread.h"

namespace cool::transport {
namespace {

TEST(QosEgressTest, UncontendedAcquireGrantsImmediately) {
  EgressScheduler egress;
  const auto id = EgressScheduler::AllocBindingId();
  egress.RegisterBinding(id, qos::SchedProfile{});
  ASSERT_TRUE(egress.Acquire(id, 100));
  egress.Release();
  ASSERT_TRUE(egress.Acquire(id, 100));
  egress.Release();
  EXPECT_EQ(egress.grants(), 2u);
  EXPECT_EQ(egress.sheds(), 0u);
}

TEST(QosEgressTest, UnregisteredBindingRidesNormalBand) {
  EgressScheduler egress;
  // No RegisterBinding: ad-hoc senders still get the link.
  const auto id = EgressScheduler::AllocBindingId();
  ASSERT_TRUE(egress.Acquire(id, 100));
  egress.Release();
  EXPECT_EQ(egress.grants(), 1u);
}

TEST(QosEgressTest, HolderBlocksSecondSenderUntilRelease) {
  EgressScheduler egress;
  const auto a = EgressScheduler::AllocBindingId();
  const auto b = EgressScheduler::AllocBindingId();
  ASSERT_TRUE(egress.Acquire(a, 100));

  std::atomic<bool> b_granted{false};
  Thread waiter([&] {
    if (egress.Acquire(b, 100)) {
      b_granted.store(true, std::memory_order_release);
      egress.Release();
    }
  });
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(b_granted.load(std::memory_order_acquire));
  egress.Release();
  waiter.join();
  EXPECT_TRUE(b_granted.load());
}

TEST(QosEgressTest, RateCappedBindingIsPaced) {
  EgressScheduler egress;
  const auto id = EgressScheduler::AllocBindingId();
  qos::SchedProfile capped;
  capped.rate_bytes_per_sec = 1'000'000;  // 1 MB/s, 64 KiB default burst
  egress.RegisterBinding(id, capped);

  // First send drains the burst (the bucket may go one send negative);
  // the second must wait for tokens: ~136ms for 200 KB at 1 MB/s.
  const TimePoint start = Now();
  ASSERT_TRUE(egress.Acquire(id, 200'000));
  egress.Release();
  ASSERT_TRUE(egress.Acquire(id, 200'000));
  egress.Release();
  EXPECT_GE(Now() - start, milliseconds(100));
}

TEST(QosEgressTest, WeightedBindingsShareTheLink) {
  EgressScheduler::Options options;
  options.quantum_bytes = 256;  // well under the per-send cost
  options.codel_enabled = false;
  EgressScheduler egress(options);
  const auto heavy = EgressScheduler::AllocBindingId();
  const auto light = EgressScheduler::AllocBindingId();
  qos::SchedProfile hp;
  hp.weight = 4;
  egress.RegisterBinding(heavy, hp);
  egress.RegisterBinding(light, qos::SchedProfile{});

  // Park a full backlog behind a holder, then release and record the grant
  // order. A free-running loop can't test weights: two tickets per binding
  // never hold a backlog, and an emptied flow retires and forfeits its
  // deficit. With 8 + 8 parked and 4:1 weights, DRR serves roughly
  // h,h,h,h,l — heavy dominates the front of the grant sequence.
  const auto holder = EgressScheduler::AllocBindingId();
  ASSERT_TRUE(egress.Acquire(holder, 100));

  constexpr int kPerBinding = 8;
  std::atomic<int> seq{0};
  std::array<std::atomic<int>, 2 * kPerBinding> grant_was_heavy{};
  std::vector<Thread> senders;
  for (int t = 0; t < kPerBinding; ++t) {
    senders.emplace_back([&] {
      ASSERT_TRUE(egress.Acquire(heavy, 1000));
      grant_was_heavy[static_cast<std::size_t>(
                          seq.fetch_add(1, std::memory_order_acq_rel))]
          .store(1, std::memory_order_relaxed);
      egress.Release();
    });
    senders.emplace_back([&] {
      ASSERT_TRUE(egress.Acquire(light, 1000));
      (void)seq.fetch_add(1, std::memory_order_acq_rel);
      egress.Release();
    });
  }
  std::this_thread::sleep_for(milliseconds(100));  // let every sender park
  egress.Release();
  for (auto& t : senders) t.join();

  int heavy_in_first_ten = 0;
  for (int i = 0; i < 10; ++i) {
    heavy_in_first_ten += grant_was_heavy[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  // Ideal 4:1 interleave puts 8 heavy grants in the first 10; allow slack
  // for the arbitration transient while both flows are fresh.
  EXPECT_GE(heavy_in_first_ten, 6) << "heavy grants in first 10: "
                                   << heavy_in_first_ten;
}

TEST(QosEgressTest, UnregisterWakesParkedTicketRefused) {
  EgressScheduler egress;
  const auto a = EgressScheduler::AllocBindingId();
  const auto b = EgressScheduler::AllocBindingId();
  egress.RegisterBinding(b, qos::SchedProfile{});
  ASSERT_TRUE(egress.Acquire(a, 100));  // hold the link

  std::atomic<int> outcome{-1};
  Thread waiter([&] {
    outcome.store(egress.Acquire(b, 100) ? 1 : 0,
                  std::memory_order_release);
  });
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_EQ(outcome.load(std::memory_order_acquire), -1);
  egress.UnregisterBinding(b);
  waiter.join();
  EXPECT_EQ(outcome.load(), 0);  // refused, nothing to release

  // The link holder is unaffected.
  egress.Release();
  ASSERT_TRUE(egress.Acquire(a, 100));
  egress.Release();
}

TEST(QosEgressTest, CloseRefusesParkedAndFutureAcquires) {
  EgressScheduler egress;
  const auto a = EgressScheduler::AllocBindingId();
  const auto b = EgressScheduler::AllocBindingId();
  ASSERT_TRUE(egress.Acquire(a, 100));
  std::atomic<int> outcome{-1};
  Thread waiter([&] {
    outcome.store(egress.Acquire(b, 100) ? 1 : 0,
                  std::memory_order_release);
  });
  std::this_thread::sleep_for(milliseconds(10));
  egress.Close();
  waiter.join();
  EXPECT_EQ(outcome.load(), 0);
  egress.Release();  // releasing after close is safe
  EXPECT_FALSE(egress.Acquire(a, 100));
}

TEST(QosEgressTest, CodelShedsFloodedBindingTickets) {
  EgressScheduler::Options options;
  options.codel_enabled = true;
  options.codel_target = milliseconds(1);
  options.codel_interval = milliseconds(10);
  EgressScheduler egress(options);
  const auto id = EgressScheduler::AllocBindingId();
  egress.RegisterBinding(id, qos::SchedProfile{});

  // Hold the link while a flood of senders parks behind it, long enough
  // that every parked ticket's sojourn breaches the 1ms target for a full
  // interval. On release, CoDel sheds at least one stale ticket.
  const auto holder = EgressScheduler::AllocBindingId();
  ASSERT_TRUE(egress.Acquire(holder, 100));
  std::atomic<std::uint64_t> refused{0};
  std::vector<Thread> senders;
  for (int t = 0; t < 8; ++t) {
    senders.emplace_back([&] {
      if (!egress.Acquire(id, 1000)) {
        refused.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      std::this_thread::sleep_for(milliseconds(30));
      egress.Release();
    });
  }
  std::this_thread::sleep_for(milliseconds(60));
  egress.Release();
  for (auto& t : senders) t.join();
  EXPECT_GT(egress.sheds(), 0u);
  EXPECT_EQ(refused.load(), egress.sheds());
  egress.Close();
}

TEST(QosEgressTest, StatsDescribeBandsAndCounters) {
  EgressScheduler egress;
  const auto id = EgressScheduler::AllocBindingId();
  qos::SchedProfile high;
  high.band = qos::SchedProfile::Band::kHigh;
  egress.RegisterBinding(id, high);
  ASSERT_TRUE(egress.Acquire(id, 100));
  egress.Release();

  const auto stats = egress.StatsSnapshot();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].name, "high");
  EXPECT_EQ(stats[1].name, "normal");
  EXPECT_EQ(stats[2].name, "low");
  const std::string text = egress.DescribeStats();
  EXPECT_NE(text.find("egress:"), std::string::npos);
  EXPECT_NE(text.find("grants=1"), std::string::npos);
}

TEST(QosEgressTest, RebindingMovesBands) {
  EgressScheduler egress;
  const auto id = EgressScheduler::AllocBindingId();
  qos::SchedProfile low;
  low.band = qos::SchedProfile::Band::kLow;
  egress.RegisterBinding(id, low);
  ASSERT_TRUE(egress.Acquire(id, 100));
  egress.Release();

  qos::SchedProfile high;
  high.band = qos::SchedProfile::Band::kHigh;
  egress.RegisterBinding(id, high);  // SetQoSParameter re-registration path
  ASSERT_TRUE(egress.Acquire(id, 100));
  egress.Release();
  // The idle low-band flow state was forgotten on the move.
  const auto stats = egress.StatsSnapshot();
  EXPECT_TRUE(stats[2].flows.empty());
}

}  // namespace
}  // namespace cool::transport
