#include "transport/input_callback.h"

#include <gtest/gtest.h>

#include "common/mutex.h"

namespace cool::transport {
namespace {

TEST(InputCallbackTest, TriggerRunsCallback) {
  InputCallbackDispatcher dispatcher;
  BlockingQueue<int> fired;
  const auto id = dispatcher.Register([&] { fired.Push(1); });
  ASSERT_TRUE(dispatcher.Trigger(id).ok());
  EXPECT_TRUE(fired.PopFor(seconds(2)).has_value());
}

TEST(InputCallbackTest, UnknownIdRejected) {
  InputCallbackDispatcher dispatcher;
  EXPECT_EQ(dispatcher.Trigger(999).code(), ErrorCode::kNotFound);
}

TEST(InputCallbackTest, UnregisterMakesTriggerFail) {
  InputCallbackDispatcher dispatcher;
  const auto id = dispatcher.Register([] {});
  EXPECT_EQ(dispatcher.registered_count(), 1u);
  dispatcher.Unregister(id);
  EXPECT_EQ(dispatcher.registered_count(), 0u);
  EXPECT_EQ(dispatcher.Trigger(id).code(), ErrorCode::kNotFound);
}

TEST(InputCallbackTest, CallbacksRunSerially) {
  InputCallbackDispatcher dispatcher;
  std::vector<int> order;
  cool::Mutex mu;
  const auto a = dispatcher.Register([&] {
    cool::MutexLock lock(mu);
    order.push_back(1);
  });
  const auto b = dispatcher.Register([&] {
    cool::MutexLock lock(mu);
    order.push_back(2);
  });
  BlockingQueue<int> done;
  const auto c = dispatcher.Register([&] { done.Push(0); });
  ASSERT_TRUE(dispatcher.Trigger(a).ok());
  ASSERT_TRUE(dispatcher.Trigger(b).ok());
  ASSERT_TRUE(dispatcher.Trigger(a).ok());
  ASSERT_TRUE(dispatcher.Trigger(c).ok());
  ASSERT_TRUE(done.PopFor(seconds(2)).has_value());
  cool::MutexLock lock(mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1}));
}

TEST(InputCallbackTest, TriggerAfterStopFails) {
  InputCallbackDispatcher dispatcher;
  const auto id = dispatcher.Register([] {});
  dispatcher.Stop();
  EXPECT_EQ(dispatcher.Trigger(id).code(), ErrorCode::kUnavailable);
}

TEST(InputCallbackTest, StopDrainsPendingTriggers) {
  InputCallbackDispatcher dispatcher;
  std::atomic<int> count{0};
  const auto id = dispatcher.Register([&] { ++count; });
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(dispatcher.Trigger(id).ok());
  }
  dispatcher.Stop();
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace cool::transport
