#include "transport/tcp_channel.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "common/blocking_queue.h"
#include "common/thread.h"

namespace cool::transport {
namespace {

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = microseconds(50);
  return link;
}

std::vector<std::uint8_t> Msg(std::string_view s) {
  return {s.begin(), s.end()};
}

struct Rig {
  Rig() : net(QuickLink()), server_mgr(&net, {"server", 7000}) {
    EXPECT_TRUE(server_mgr.Listen().ok());
  }

  std::pair<std::unique_ptr<ComChannel>, std::unique_ptr<ComChannel>>
  Establish() {
    Result<std::unique_ptr<ComChannel>> server_side(
        Status(InternalError("unset")));
    cool::Thread accept([&] { server_side = server_mgr.AcceptChannel(); });
    TcpComManager client_mgr(&net, {"client", 7000});
    auto client_side = client_mgr.OpenChannel({"server", 7000}, {});
    accept.join();
    EXPECT_TRUE(client_side.ok());
    EXPECT_TRUE(server_side.ok());
    return {std::move(client_side).value(), std::move(server_side).value()};
  }

  sim::Network net;
  TcpComManager server_mgr;
};

TEST(TcpBufferTest, ReassemblesAcrossArbitrarySplits) {
  TcpBuffer buf;
  // Message: len=5 "hello", delivered in three fragments.
  const std::vector<std::uint8_t> wire = {5, 0, 0, 0, 'h', 'e', 'l', 'l', 'o'};
  buf.Append({wire.data(), 2});
  auto m = buf.NextMessage();
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->has_value());
  buf.Append({wire.data() + 2, 5});
  m = buf.NextMessage();
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->has_value());
  buf.Append({wire.data() + 7, 2});
  m = buf.NextMessage();
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m->has_value());
  EXPECT_EQ((*m)->ToString(), "hello");
}

TEST(TcpBufferTest, MultipleMessagesInOneChunk) {
  TcpBuffer buf;
  std::vector<std::uint8_t> wire = {1, 0, 0, 0, 'a', 2, 0, 0, 0, 'b', 'c'};
  buf.Append(wire);
  auto m1 = buf.NextMessage();
  ASSERT_TRUE(m1.ok() && m1->has_value());
  EXPECT_EQ((*m1)->ToString(), "a");
  auto m2 = buf.NextMessage();
  ASSERT_TRUE(m2.ok() && m2->has_value());
  EXPECT_EQ((*m2)->ToString(), "bc");
  EXPECT_EQ(buf.buffered_bytes(), 0u);
}

TEST(TcpBufferTest, ZeroLengthMessageAllowed) {
  TcpBuffer buf;
  buf.Append(std::array<std::uint8_t, 4>{0, 0, 0, 0});
  auto m = buf.NextMessage();
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m->has_value());
  EXPECT_TRUE((*m)->empty());
}

TEST(TcpBufferTest, ImplausibleLengthRejected) {
  TcpBuffer buf;
  buf.Append(std::array<std::uint8_t, 4>{0xFF, 0xFF, 0xFF, 0x7F});
  EXPECT_EQ(buf.NextMessage().status().code(), ErrorCode::kProtocolError);
}

TEST(TcpBufferTest, LazyLeaseAndReleaseWhenDrained) {
  TcpBuffer buf;
  // A fresh buffer holds no backing store: 100k parked connections must
  // cost zero receive-buffer bytes.
  EXPECT_TRUE(buf.idle());
  EXPECT_EQ(buf.buffered_bytes(), 0u);
  // ReleaseIfDrained on an idle buffer is a no-op, not a crash.
  buf.ReleaseIfDrained();
  EXPECT_TRUE(buf.idle());

  // First octet leases the store...
  const std::vector<std::uint8_t> wire = {3, 0, 0, 0, 'a', 'b', 'c'};
  buf.Append({wire.data(), 4});
  EXPECT_FALSE(buf.idle());
  // ...and an unfinished message pins the lease through a drain attempt:
  // the remaining prefix octets must survive for the next Append.
  buf.ReleaseIfDrained();
  EXPECT_FALSE(buf.idle());

  buf.Append({wire.data() + 4, 3});
  auto m = buf.NextMessage();
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m->has_value());
  EXPECT_EQ((*m)->size(), 3u);
  EXPECT_EQ(buf.buffered_bytes(), 0u);

  // Fully consumed: the drain hook returns the store to the pool and the
  // connection is back to costing nothing.
  buf.ReleaseIfDrained();
  EXPECT_TRUE(buf.idle());

  // The lease comes back transparently for the next burst.
  buf.Append(wire);
  m = buf.NextMessage();
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m->has_value());
  EXPECT_EQ((*m)->size(), 3u);
}

TEST(TcpChannelTest, MessageRoundTrip) {
  Rig rig;
  auto [client, server] = rig.Establish();
  ASSERT_TRUE(client->SendMessage(Msg("ping")).ok());
  auto got = server->ReceiveMessage(seconds(2));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->ToString(), "ping");
  ASSERT_TRUE(server->SendMessage(Msg("pong")).ok());
  auto back = client->ReceiveMessage(seconds(2));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToString(), "pong");
}

TEST(TcpChannelTest, CallIsSendPlusReceive) {
  Rig rig;
  auto [client, server] = rig.Establish();
  cool::Thread responder([&s = server] {
    auto req = s->ReceiveMessage(seconds(2));
    ASSERT_TRUE(req.ok());
    ASSERT_TRUE(s->Reply(Msg("re:" + req->ToString())).ok());
  });
  auto reply = client->Call(Msg("question"));
  responder.join();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->ToString(), "re:question");
}

TEST(TcpChannelTest, DeferThenPoll) {
  Rig rig;
  auto [client, server] = rig.Establish();
  auto deferred = client->Defer(Msg("later"));
  ASSERT_TRUE(deferred.ok());

  // Second concurrent Defer on the same channel is refused.
  EXPECT_EQ(client->Defer(Msg("again")).status().code(),
            ErrorCode::kFailedPrecondition);

  auto req = server->ReceiveMessage(seconds(2));
  ASSERT_TRUE(req.ok());
  ASSERT_TRUE(server->Reply(Msg("answer")).ok());

  auto reply = client->PollDeferred(*deferred);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->ToString(), "answer");

  // Slot is free again.
  EXPECT_TRUE(client->Defer(Msg("next")).ok());
}

TEST(TcpChannelTest, CancelDeferred) {
  Rig rig;
  auto [client, server] = rig.Establish();
  auto deferred = client->Defer(Msg("doomed"));
  ASSERT_TRUE(deferred.ok());
  ASSERT_TRUE(client->Cancel(*deferred).ok());
  EXPECT_EQ(client->PollDeferred(*deferred).status().code(),
            ErrorCode::kCancelled);
}

TEST(TcpChannelTest, CancelWithoutDeferredFails) {
  Rig rig;
  auto [client, server] = rig.Establish();
  EXPECT_EQ(client->Cancel({1}).code(), ErrorCode::kFailedPrecondition);
}

TEST(TcpChannelTest, NotifyDeliversAsynchronously) {
  Rig rig;
  auto [client, server] = rig.Establish();
  BlockingQueue<std::string> results;
  ASSERT_TRUE(client
                  ->Notify(Msg("async-req"),
                           [&](Result<ByteBuffer> reply) {
                             results.Push(reply.ok() ? reply->ToString()
                                                     : reply.status()
                                                           .ToString());
                           })
                  .ok());
  auto req = server->ReceiveMessage(seconds(2));
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->ToString(), "async-req");
  ASSERT_TRUE(server->Reply(Msg("async-reply")).ok());
  auto got = results.PopFor(seconds(2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "async-reply");
}

TEST(TcpChannelTest, ReceiveTimesOut) {
  Rig rig;
  auto [client, server] = rig.Establish();
  EXPECT_EQ(client->ReceiveMessage(milliseconds(50)).status().code(),
            ErrorCode::kDeadlineExceeded);
}

TEST(TcpChannelTest, PeerCloseSurfacesAsUnavailable) {
  Rig rig;
  auto [client, server] = rig.Establish();
  server->Close();
  EXPECT_EQ(client->ReceiveMessage(seconds(2)).status().code(),
            ErrorCode::kUnavailable);
  EXPECT_FALSE(client->SendMessage(Msg("x")).ok());
}

TEST(TcpChannelTest, QosSpecRefusedByPlainTcp) {
  // Paper §4.3: TCP does not implement setQoSParameter.
  Rig rig;
  auto [client, server] = rig.Establish();
  auto spec = qos::QoSSpec::FromParameters(
      {qos::RequireThroughputKbps(1000, 500)});
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(client->SetQoSParameter(*spec).code(), ErrorCode::kUnsupported);
  // Empty spec (best effort) is fine.
  EXPECT_TRUE(client->SetQoSParameter(qos::QoSSpec{}).ok());
}

TEST(TcpChannelTest, QosOpenRefused) {
  Rig rig;
  TcpComManager client_mgr(&rig.net, {"client", 7000});
  auto spec = qos::QoSSpec::FromParameters(
      {qos::RequireLatencyMicros(100, 1000)});
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(client_mgr.OpenChannel({"server", 7000}, *spec).status().code(),
            ErrorCode::kUnsupported);
}

TEST(TcpChannelTest, CapabilityIsBestEffortOnly) {
  Rig rig;
  auto [client, server] = rig.Establish();
  const qos::Capability cap = client->TransportCapability();
  EXPECT_FALSE(cap.Has(qos::ParamType::kThroughputKbps));
  EXPECT_FALSE(cap.Has(qos::ParamType::kReliability));
}

TEST(TcpChannelTest, LargeMessages) {
  Rig rig;
  auto [client, server] = rig.Establish();
  std::vector<std::uint8_t> big(512 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 7);
  }
  ASSERT_TRUE(client->SendMessage(big).ok());
  auto got = server->ReceiveMessage(seconds(5));
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), big.size());
  EXPECT_EQ(0, std::memcmp(got->data(), big.data(), big.size()));
}

}  // namespace
}  // namespace cool::transport
