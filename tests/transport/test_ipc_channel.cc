#include "transport/ipc_channel.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/thread.h"

namespace cool::transport {
namespace {

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = microseconds(50);
  return link;
}

std::vector<std::uint8_t> Msg(std::string_view s) {
  return {s.begin(), s.end()};
}

struct Rig {
  Rig() : net(QuickLink()), server_mgr(&net, {"server", 7100}) {
    EXPECT_TRUE(server_mgr.Listen().ok());
  }

  std::pair<std::unique_ptr<ComChannel>, std::unique_ptr<ComChannel>>
  Establish() {
    Result<std::unique_ptr<ComChannel>> server_side(
        Status(InternalError("unset")));
    cool::Thread accept([&] { server_side = server_mgr.AcceptChannel(); });
    IpcComManager client_mgr(&net, {"client", 7100});
    auto client_side = client_mgr.OpenChannel({"server", 7100}, {});
    accept.join();
    EXPECT_TRUE(client_side.ok()) << client_side.status();
    EXPECT_TRUE(server_side.ok()) << server_side.status();
    return {std::move(client_side).value(), std::move(server_side).value()};
  }

  sim::Network net;
  IpcComManager server_mgr;
};

TEST(IpcChannelTest, HandshakeAndRoundTrip) {
  Rig rig;
  auto [client, server] = rig.Establish();
  ASSERT_TRUE(client->SendMessage(Msg("chorus")).ok());
  auto got = server->ReceiveMessage(seconds(2));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->ToString(), "chorus");

  ASSERT_TRUE(server->SendMessage(Msg("ipc")).ok());
  auto back = client->ReceiveMessage(seconds(2));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToString(), "ipc");
}

TEST(IpcChannelTest, MultipleConcurrentChannels) {
  Rig rig;
  auto [c1, s1] = rig.Establish();
  auto [c2, s2] = rig.Establish();
  // Distinct port pairs: traffic does not cross channels.
  ASSERT_TRUE(c1->SendMessage(Msg("one")).ok());
  ASSERT_TRUE(c2->SendMessage(Msg("two")).ok());
  auto got1 = s1->ReceiveMessage(seconds(2));
  auto got2 = s2->ReceiveMessage(seconds(2));
  ASSERT_TRUE(got1.ok());
  ASSERT_TRUE(got2.ok());
  EXPECT_EQ(got1->ToString(), "one");
  EXPECT_EQ(got2->ToString(), "two");
}

TEST(IpcChannelTest, ConnectToSilentPeerFails) {
  sim::Network net(QuickLink());
  IpcComManager client_mgr(&net, {"client", 7100});
  const Stopwatch sw;
  auto channel = client_mgr.OpenChannel({"server", 7100}, {});
  EXPECT_EQ(channel.status().code(), ErrorCode::kUnavailable);
  EXPECT_GE(sw.Elapsed(), milliseconds(500));  // 3 retries x 250ms
}

TEST(IpcChannelTest, QosSpecRefused) {
  Rig rig;
  IpcComManager client_mgr(&rig.net, {"client", 7100});
  auto spec =
      qos::QoSSpec::FromParameters({qos::RequireReliability(2)});
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(client_mgr.OpenChannel({"server", 7100}, *spec).status().code(),
            ErrorCode::kUnsupported);
}

TEST(IpcChannelTest, ReceiveTimesOut) {
  Rig rig;
  auto [client, server] = rig.Establish();
  EXPECT_EQ(client->ReceiveMessage(milliseconds(50)).status().code(),
            ErrorCode::kDeadlineExceeded);
}

TEST(IpcChannelTest, CallRoundTrip) {
  Rig rig;
  auto [client, server] = rig.Establish();
  cool::Thread responder([&s = server] {
    auto req = s->ReceiveMessage(seconds(2));
    ASSERT_TRUE(req.ok());
    ASSERT_TRUE(s->Reply(Msg("ok")).ok());
  });
  auto reply = client->Call(Msg("req"));
  responder.join();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->ToString(), "ok");
}

TEST(IpcChannelTest, StrayDatagramsFromOtherPeersIgnored) {
  Rig rig;
  auto [client, server] = rig.Establish();
  // An interloper sends a datagram straight at the server channel's port.
  auto interloper = rig.net.OpenPort({"evil", 1});
  ASSERT_TRUE(interloper.ok());
  auto* ipc_server = dynamic_cast<IpcComChannel*>(server.get());
  ASSERT_NE(ipc_server, nullptr);
  // Deduce server channel port from the client's peer address.
  auto* ipc_client = dynamic_cast<IpcComChannel*>(client.get());
  ASSERT_NE(ipc_client, nullptr);
  ASSERT_TRUE(
      (*interloper)->SendTo(ipc_client->peer(), Msg("spoof")).ok());
  ASSERT_TRUE(client->SendMessage(Msg("real")).ok());
  auto got = server->ReceiveMessage(seconds(2));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->ToString(), "real");  // spoof skipped
}

}  // namespace
}  // namespace cool::transport
