// Da CaPo below the generic transport layer (paper Fig. 7 alternative (i))
// and the unilateral QoS negotiation of §4.3.
#include "transport/dacapo_channel.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "common/thread.h"

namespace cool::transport {
namespace {

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = microseconds(100);
  return link;
}

dacapo::NetworkEstimate Estimate() {
  dacapo::NetworkEstimate est;
  est.bandwidth_bps = 100'000'000;
  est.rtt_us = 400;
  est.transport_reliable = true;
  return est;
}

std::vector<std::uint8_t> Msg(std::string_view s) {
  return {s.begin(), s.end()};
}

qos::QoSSpec Spec(std::vector<qos::QoSParameter> params) {
  auto spec = qos::QoSSpec::FromParameters(std::move(params));
  EXPECT_TRUE(spec.ok());
  return *spec;
}

struct Rig {
  explicit Rig(dacapo::ResourceManager* resources = nullptr)
      : net(QuickLink()),
        server_mgr(&net, {"server", 7200}, Estimate(), resources) {
    EXPECT_TRUE(server_mgr.Listen().ok());
  }

  std::pair<std::unique_ptr<ComChannel>, std::unique_ptr<ComChannel>>
  Establish(const qos::QoSSpec& spec = {}) {
    Result<std::unique_ptr<ComChannel>> server_side(
        Status(InternalError("unset")));
    cool::Thread accept([&] { server_side = server_mgr.AcceptChannel(); });
    DacapoComManager client_mgr(&net, {"client", 7200}, Estimate());
    auto client_side = client_mgr.OpenChannel({"server", 7200}, spec);
    accept.join();
    EXPECT_TRUE(client_side.ok()) << client_side.status();
    EXPECT_TRUE(server_side.ok()) << server_side.status();
    if (!client_side.ok() || !server_side.ok()) return {};
    return {std::move(client_side).value(), std::move(server_side).value()};
  }

  sim::Network net;
  DacapoComManager server_mgr;
};

TEST(DacapoChannelTest, BestEffortRoundTrip) {
  Rig rig;
  auto [client, server] = rig.Establish();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->SendMessage(Msg("over dacapo")).ok());
  auto got = server->ReceiveMessage(seconds(2));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->ToString(), "over dacapo");
}

TEST(DacapoChannelTest, QosAtOpenConfiguresModuleGraph) {
  Rig rig;
  const auto spec = Spec({qos::RequireReliability(1),
                          qos::RequireEncryption(true)});
  auto [client, server] = rig.Establish(spec);
  ASSERT_NE(client, nullptr);

  auto* dch = dynamic_cast<DacapoComChannel*>(client.get());
  ASSERT_NE(dch, nullptr);
  const dacapo::ModuleGraphSpec graph = dch->current_graph();
  bool has_checksum = false;
  bool has_cipher = false;
  for (const auto& m : graph.chain) {
    if (m.name == dacapo::mechanisms::kCrc16 ||
        m.name == dacapo::mechanisms::kCrc32) {
      has_checksum = true;
    }
    if (m.name == dacapo::mechanisms::kXorCipher) has_cipher = true;
  }
  EXPECT_TRUE(has_checksum);
  EXPECT_TRUE(has_cipher);
  EXPECT_EQ(dch->CurrentQoS(), spec);

  // And it still carries traffic.
  ASSERT_TRUE(client->SendMessage(Msg("secure")).ok());
  auto got = server->ReceiveMessage(seconds(2));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->ToString(), "secure");
}

TEST(DacapoChannelTest, SetQoSParameterReconfiguresLive) {
  Rig rig;
  auto [client, server] = rig.Establish();
  ASSERT_NE(client, nullptr);
  auto* dch = dynamic_cast<DacapoComChannel*>(client.get());
  ASSERT_NE(dch, nullptr);
  EXPECT_TRUE(dch->current_graph().chain.empty());

  const auto spec = Spec({qos::RequireEncryption(true)});
  ASSERT_TRUE(client->SetQoSParameter(spec).ok());
  EXPECT_FALSE(dch->current_graph().chain.empty());

  ASSERT_TRUE(client->SendMessage(Msg("reconfigured")).ok());
  auto got = server->ReceiveMessage(seconds(2));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->ToString(), "reconfigured");
}

TEST(DacapoChannelTest, SameGraphSkipsReconfiguration) {
  Rig rig;
  const auto spec = Spec({qos::RequireReliability(1)});
  auto [client, server] = rig.Establish(spec);
  ASSERT_NE(client, nullptr);
  auto* dch = dynamic_cast<DacapoComChannel*>(client.get());
  const auto before = dch->current_graph();
  // Same requirements -> same graph -> no plane rebuild.
  ASSERT_TRUE(client->SetQoSParameter(spec).ok());
  EXPECT_EQ(dch->current_graph(), before);
}

TEST(DacapoChannelTest, ImpossibleQosRefusedBeforeAnyTraffic) {
  Rig rig;
  DacapoComManager client_mgr(&rig.net, {"client", 7200}, Estimate());
  const auto impossible =
      Spec({qos::RequireThroughputKbps(10'000'000, 9'000'000)});
  auto channel = client_mgr.OpenChannel({"server", 7200}, impossible);
  EXPECT_EQ(channel.status().code(), ErrorCode::kResourceExhausted);
}

TEST(DacapoChannelTest, ImpossibleRenegotiationKeepsOldPlaneWorking) {
  Rig rig;
  auto [client, server] = rig.Establish();
  ASSERT_NE(client, nullptr);
  const auto impossible =
      Spec({qos::RequireLatencyMicros(1, 2)});  // sub-RTT latency
  EXPECT_EQ(client->SetQoSParameter(impossible).code(),
            ErrorCode::kResourceExhausted);
  // Old plane unharmed.
  ASSERT_TRUE(client->SendMessage(Msg("still alive")).ok());
  auto got = server->ReceiveMessage(seconds(2));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->ToString(), "still alive");
}

TEST(DacapoChannelTest, CapabilityReflectsEstimate) {
  const qos::Capability cap = DacapoComChannel::CapabilityFor(Estimate());
  EXPECT_EQ(cap.BestFor(qos::ParamType::kThroughputKbps), 100'000);
  EXPECT_EQ(cap.BestFor(qos::ParamType::kLatencyMicros), 200);
  EXPECT_EQ(cap.BestFor(qos::ParamType::kReliability), 2);
  EXPECT_EQ(cap.BestFor(qos::ParamType::kEncryption), 1);
}

TEST(DacapoChannelTest, MessagesLargerThanOnePacketAreFragmented) {
  Rig rig;
  auto [client, server] = rig.Establish();
  ASSERT_NE(client, nullptr);
  // Default packet capacity is 64 KiB; send well past it.
  std::vector<std::uint8_t> big(300 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 13 + 1);
  }
  ASSERT_TRUE(client->SendMessage(big).ok());
  auto got = server->ReceiveMessage(seconds(10));
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_EQ(got->size(), big.size());
  EXPECT_EQ(0, std::memcmp(got->data(), big.data(), big.size()));

  // Message boundaries survive: a small message right behind a big one.
  ASSERT_TRUE(client->SendMessage(Msg("tail")).ok());
  ASSERT_TRUE(client->SendMessage(big).ok());
  auto small = server->ReceiveMessage(seconds(10));
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->ToString(), "tail");
  auto big2 = server->ReceiveMessage(seconds(10));
  ASSERT_TRUE(big2.ok());
  EXPECT_EQ(big2->size(), big.size());
}

TEST(DacapoChannelTest, ServerResourceAdmissionEnforced) {
  dacapo::ResourceManager::Budget budget;
  budget.packet_memory_bytes = 1;
  dacapo::ResourceManager resources(budget);
  Rig rig(&resources);
  DacapoComManager client_mgr(&rig.net, {"client", 7200}, Estimate());
  Result<std::unique_ptr<ComChannel>> server_side(
      Status(InternalError("unset")));
  cool::Thread accept([&] { server_side = rig.server_mgr.AcceptChannel(); });
  auto channel = client_mgr.OpenChannel({"server", 7200}, {});
  accept.join();
  EXPECT_EQ(channel.status().code(), ErrorCode::kResourceExhausted);
}

}  // namespace
}  // namespace cool::transport
