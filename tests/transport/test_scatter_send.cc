// SendMessageV across all three transports: a message sent as scattered
// parts must arrive byte-identical to the same bytes sent as one block.
// The Da CaPo case additionally crosses fragment boundaries mid-part, so
// the cursor-based gather in DacapoChannel::SendMessageV is exercised.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "common/thread.h"
#include "transport/dacapo_channel.h"
#include "transport/ipc_channel.h"
#include "transport/tcp_channel.h"

namespace cool::transport {
namespace {

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = microseconds(50);
  return link;
}

dacapo::NetworkEstimate Estimate() {
  dacapo::NetworkEstimate est;
  est.bandwidth_bps = 100'000'000;
  est.rtt_us = 400;
  est.transport_reliable = true;
  return est;
}

using ChannelPair =
    std::pair<std::unique_ptr<ComChannel>, std::unique_ptr<ComChannel>>;

template <typename Manager>
ChannelPair Establish(Manager& server_mgr, Manager& client_mgr,
                      std::uint16_t port) {
  Result<std::unique_ptr<ComChannel>> server_side(
      Status(InternalError("unset")));
  cool::Thread accept([&] { server_side = server_mgr.AcceptChannel(); });
  auto client_side = client_mgr.OpenChannel({"server", port}, {});
  accept.join();
  EXPECT_TRUE(client_side.ok()) << client_side.status();
  EXPECT_TRUE(server_side.ok()) << server_side.status();
  if (!client_side.ok() || !server_side.ok()) return {};
  return {std::move(client_side).value(), std::move(server_side).value()};
}

std::vector<std::uint8_t> Pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seed + i * 13);
  }
  return v;
}

// Sends `pieces` both gathered (SendMessageV) and pre-joined
// (SendMessage); the receiver must observe two identical messages.
void CheckScatterEqualsJoined(
    ComChannel* sender, ComChannel* receiver,
    const std::vector<std::vector<std::uint8_t>>& pieces) {
  std::vector<std::span<const std::uint8_t>> parts;
  std::vector<std::uint8_t> joined;
  for (const auto& p : pieces) {
    parts.emplace_back(p);
    joined.insert(joined.end(), p.begin(), p.end());
  }

  ASSERT_TRUE(sender->SendMessageV(parts).ok());
  ASSERT_TRUE(sender->SendMessage(joined).ok());

  auto scattered = receiver->ReceiveMessage(seconds(5));
  ASSERT_TRUE(scattered.ok()) << scattered.status();
  auto reference = receiver->ReceiveMessage(seconds(5));
  ASSERT_TRUE(reference.ok()) << reference.status();

  ASSERT_EQ(scattered->size(), joined.size());
  EXPECT_EQ(0, std::memcmp(scattered->data(), joined.data(), joined.size()));
  ASSERT_EQ(reference->size(), joined.size());
  EXPECT_EQ(0, std::memcmp(reference->data(), joined.data(), joined.size()));
}

std::vector<std::vector<std::uint8_t>> HeadAndTails() {
  return {Pattern(20, 1), Pattern(300, 7), Pattern(5, 99)};
}

TEST(ScatterSendTest, TcpGatheredEqualsJoined) {
  sim::Network net(QuickLink());
  TcpComManager server_mgr(&net, {"server", 7300});
  ASSERT_TRUE(server_mgr.Listen().ok());
  TcpComManager client_mgr(&net, {"client", 7300});
  auto [client, server] = Establish(server_mgr, client_mgr, 7300);
  ASSERT_NE(client, nullptr);
  CheckScatterEqualsJoined(client.get(), server.get(), HeadAndTails());
}

TEST(ScatterSendTest, IpcGatheredEqualsJoined) {
  sim::Network net(QuickLink());
  IpcComManager server_mgr(&net, {"server", 7310});
  ASSERT_TRUE(server_mgr.Listen().ok());
  IpcComManager client_mgr(&net, {"client", 7310});
  auto [client, server] = Establish(server_mgr, client_mgr, 7310);
  ASSERT_NE(client, nullptr);
  CheckScatterEqualsJoined(client.get(), server.get(), HeadAndTails());
}

TEST(ScatterSendTest, DacapoGatheredEqualsJoined) {
  sim::Network net(QuickLink());
  DacapoComManager server_mgr(&net, {"server", 7320}, Estimate(), nullptr);
  ASSERT_TRUE(server_mgr.Listen().ok());
  DacapoComManager client_mgr(&net, {"client", 7320}, Estimate());
  auto [client, server] = Establish(server_mgr, client_mgr, 7320);
  ASSERT_NE(client, nullptr);
  CheckScatterEqualsJoined(client.get(), server.get(), HeadAndTails());
}

TEST(ScatterSendTest, DacapoFragmentsAcrossPartBoundaries) {
  // A small head plus a tail far larger than one Da CaPo packet: the
  // gather cursor must carry (part_idx, part_off) across fragments.
  sim::Network net(QuickLink());
  DacapoComManager server_mgr(&net, {"server", 7330}, Estimate(), nullptr);
  ASSERT_TRUE(server_mgr.Listen().ok());
  DacapoComManager client_mgr(&net, {"client", 7330}, Estimate());
  auto [client, server] = Establish(server_mgr, client_mgr, 7330);
  ASSERT_NE(client, nullptr);
  CheckScatterEqualsJoined(
      client.get(), server.get(),
      {Pattern(24, 3), Pattern(32 * 1024, 11), Pattern(777, 42)});
}

TEST(ScatterSendTest, SinglePartAndEmptyParts) {
  sim::Network net(QuickLink());
  TcpComManager server_mgr(&net, {"server", 7340});
  ASSERT_TRUE(server_mgr.Listen().ok());
  TcpComManager client_mgr(&net, {"client", 7340});
  auto [client, server] = Establish(server_mgr, client_mgr, 7340);
  ASSERT_NE(client, nullptr);
  // A lone part behaves like SendMessage.
  CheckScatterEqualsJoined(client.get(), server.get(), {Pattern(64, 5)});
  // Empty parts contribute nothing but must not derail the gather.
  CheckScatterEqualsJoined(client.get(), server.get(),
                           {{}, Pattern(48, 9), {}});
}

}  // namespace
}  // namespace cool::transport
