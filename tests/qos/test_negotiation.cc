// Bilateral negotiation rules (paper §4.2, Fig. 3): requested range vs
// provider capability, per direction, all-or-nothing.
#include "qos/negotiation.h"

#include <gtest/gtest.h>

namespace cool::qos {
namespace {

QoSSpec Spec(std::vector<QoSParameter> params) {
  auto spec = QoSSpec::FromParameters(std::move(params));
  EXPECT_TRUE(spec.ok()) << spec.status();
  return *spec;
}

TEST(NegotiationTest, EmptyRequestAlwaysAccepted) {
  const NegotiationResult r = Negotiate(QoSSpec{}, Capability{});
  EXPECT_TRUE(r.accepted);
  EXPECT_TRUE(r.granted.empty());
}

TEST(NegotiationTest, HigherIsBetterGrantsRequestWhenCapable) {
  Capability cap;
  cap.SetBest(ParamType::kThroughputKbps, 10000);
  const auto r = Negotiate(Spec({RequireThroughputKbps(5000, 1000)}), cap);
  ASSERT_TRUE(r.accepted);
  EXPECT_EQ(r.granted.Find(ParamType::kThroughputKbps)->request_value,
            5000u);
}

TEST(NegotiationTest, HigherIsBetterDegradesToCapabilityWithinRange) {
  Capability cap;
  cap.SetBest(ParamType::kThroughputKbps, 3000);
  // Requested 5000, acceptable down to 1000 -> granted 3000.
  const auto r = Negotiate(Spec({RequireThroughputKbps(5000, 1000)}), cap);
  ASSERT_TRUE(r.accepted);
  EXPECT_EQ(r.granted.Find(ParamType::kThroughputKbps)->request_value,
            3000u);
}

TEST(NegotiationTest, HigherIsBetterNacksBelowFloor) {
  Capability cap;
  cap.SetBest(ParamType::kThroughputKbps, 500);
  const auto r = Negotiate(Spec({RequireThroughputKbps(5000, 1000)}), cap);
  EXPECT_FALSE(r.accepted);
  EXPECT_NE(r.RejectionReason().find("throughput"), std::string::npos);
}

TEST(NegotiationTest, LowerIsBetterGrantsRequestWhenCapable) {
  Capability cap;
  cap.SetBest(ParamType::kLatencyMicros, 100);
  const auto r = Negotiate(Spec({RequireLatencyMicros(500, 2000)}), cap);
  ASSERT_TRUE(r.accepted);
  EXPECT_EQ(r.granted.Find(ParamType::kLatencyMicros)->request_value, 500u);
}

TEST(NegotiationTest, LowerIsBetterDegradesUpToCeiling) {
  Capability cap;
  cap.SetBest(ParamType::kLatencyMicros, 1500);  // can't do better than 1.5ms
  const auto r = Negotiate(Spec({RequireLatencyMicros(500, 2000)}), cap);
  ASSERT_TRUE(r.accepted);
  EXPECT_EQ(r.granted.Find(ParamType::kLatencyMicros)->request_value, 1500u);
}

TEST(NegotiationTest, LowerIsBetterNacksAboveCeiling) {
  Capability cap;
  cap.SetBest(ParamType::kLatencyMicros, 5000);
  const auto r = Negotiate(Spec({RequireLatencyMicros(500, 2000)}), cap);
  EXPECT_FALSE(r.accepted);
}

TEST(NegotiationTest, MissingCapabilityMeansNoFeature) {
  // Reliability absent from the capability map -> best 0 -> a request for
  // level 2 with floor 2 is refused.
  const auto r = Negotiate(Spec({RequireReliability(2)}), Capability{});
  EXPECT_FALSE(r.accepted);
}

TEST(NegotiationTest, AllOrNothing) {
  Capability cap;
  cap.SetBest(ParamType::kThroughputKbps, 10000);
  cap.SetBest(ParamType::kReliability, 0);  // cannot retransmit
  const auto r = Negotiate(
      Spec({RequireThroughputKbps(5000, 1000), RequireReliability(2)}), cap);
  EXPECT_FALSE(r.accepted);
  // Per-parameter outcomes still report the passing parameter as accepted.
  ASSERT_EQ(r.outcomes.size(), 2u);
  EXPECT_TRUE(r.outcomes[0].accepted);
  EXPECT_FALSE(r.outcomes[1].accepted);
}

TEST(NegotiationTest, UnknownParamRejectedByDefault) {
  QoSParameter unknown;
  unknown.param_type = 999;
  unknown.request_value = 1;
  const auto r =
      Negotiate(QoSSpec::Trusted({unknown}), Capability{});
  EXPECT_FALSE(r.accepted);
  EXPECT_NE(r.RejectionReason().find("unknown"), std::string::npos);
}

TEST(NegotiationTest, UnknownParamIgnoredUnderLenientPolicy) {
  QoSParameter unknown;
  unknown.param_type = 999;
  unknown.request_value = 1;
  Capability cap(Capability::UnknownPolicy::kIgnore);
  const auto r = Negotiate(QoSSpec::Trusted({unknown}), cap);
  EXPECT_TRUE(r.accepted);
}

// Property sweep: for every direction and capability the negotiation
// never grants a value outside the requested acceptable range.
class NegotiationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NegotiationPropertyTest, GrantAlwaysWithinAcceptableRange) {
  const int seed = GetParam();
  Capability cap;
  cap.SetBest(::cool::qos::ParamType::kThroughputKbps, (seed * 977) % 10000);
  cap.SetBest(::cool::qos::ParamType::kLatencyMicros, (seed * 131) % 4000);

  const corba::ULong thr_req = 1000 + (seed * 37) % 8000;
  const corba::Long thr_min = static_cast<corba::Long>(thr_req / 2);
  const corba::ULong lat_req = 100 + (seed * 53) % 1000;
  const corba::Long lat_max = static_cast<corba::Long>(lat_req * 3);

  const auto r = Negotiate(Spec({RequireThroughputKbps(thr_req, thr_min),
                                 RequireLatencyMicros(lat_req, lat_max)}),
                           cap);
  if (r.accepted) {
    const auto* thr = r.granted.Find(::cool::qos::ParamType::kThroughputKbps);
    const auto* lat = r.granted.Find(::cool::qos::ParamType::kLatencyMicros);
    ASSERT_NE(thr, nullptr);
    ASSERT_NE(lat, nullptr);
    EXPECT_GE(static_cast<corba::Long>(thr->request_value), thr_min);
    EXPECT_LE(static_cast<corba::Long>(lat->request_value), lat_max);
    // Granted never exceeds the request in the "better" direction.
    EXPECT_LE(thr->request_value, thr_req);
    EXPECT_GE(lat->request_value, lat_req);
  } else {
    EXPECT_FALSE(r.RejectionReason().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, NegotiationPropertyTest,
                         ::testing::Range(0, 50));

TEST(ComposeTest, WeakerSideWinsPerDimension) {
  Capability a;
  a.SetBest(ParamType::kThroughputKbps, 10000);
  a.SetBest(ParamType::kReliability, 2);
  Capability b;
  b.SetBest(ParamType::kThroughputKbps, 4000);
  b.SetBest(ParamType::kReliability, 1);

  const Capability c = Compose(a, b);
  EXPECT_EQ(c.BestFor(ParamType::kThroughputKbps), 4000);
  EXPECT_EQ(c.BestFor(ParamType::kReliability), 1);
}

TEST(ComposeTest, LatencyAddsAlongThePath) {
  Capability a;
  a.SetBest(ParamType::kLatencyMicros, 300);
  Capability b;
  b.SetBest(ParamType::kLatencyMicros, 200);
  EXPECT_EQ(Compose(a, b).BestFor(ParamType::kLatencyMicros), 500);
}

TEST(ComposeTest, MissingDimensionOnOneSideDominates) {
  Capability a;
  a.SetBest(ParamType::kLatencyMicros, 300);
  const Capability c = Compose(a, Capability{});
  // b has no latency bound -> composition has effectively none.
  EXPECT_GT(c.BestFor(ParamType::kLatencyMicros), 1000000);
}

}  // namespace
}  // namespace cool::qos
