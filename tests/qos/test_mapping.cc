// QoS -> protocol-requirement mapping (paper §4.3).
#include "qos/mapping.h"

#include <gtest/gtest.h>

namespace cool::qos {
namespace {

QoSSpec Spec(std::vector<QoSParameter> params) {
  auto spec = QoSSpec::FromParameters(std::move(params));
  EXPECT_TRUE(spec.ok()) << spec.status();
  return *spec;
}

TEST(MappingTest, EmptySpecNeedsNothing) {
  const ProtocolRequirements req = MapToProtocolRequirements(QoSSpec{});
  EXPECT_FALSE(req.need_error_detection);
  EXPECT_FALSE(req.need_retransmission);
  EXPECT_FALSE(req.need_ordering);
  EXPECT_FALSE(req.need_encryption);
  EXPECT_EQ(req.min_throughput_kbps, 0u);
  EXPECT_FALSE(req.HasPerformanceConstraints());
}

TEST(MappingTest, ReliabilityLevelsMapToFunctions) {
  EXPECT_FALSE(MapToProtocolRequirements(Spec({RequireReliability(0)}))
                   .need_error_detection);

  const auto level1 = MapToProtocolRequirements(Spec({RequireReliability(1)}));
  EXPECT_TRUE(level1.need_error_detection);
  EXPECT_FALSE(level1.need_retransmission);

  const auto level2 = MapToProtocolRequirements(Spec({RequireReliability(2)}));
  EXPECT_TRUE(level2.need_error_detection);
  EXPECT_TRUE(level2.need_retransmission);
}

TEST(MappingTest, OrderingAndEncryptionFlags) {
  const auto req = MapToProtocolRequirements(
      Spec({RequireOrdering(true), RequireEncryption(true)}));
  EXPECT_TRUE(req.need_ordering);
  EXPECT_TRUE(req.need_encryption);

  const auto off = MapToProtocolRequirements(
      Spec({RequireOrdering(false), RequireEncryption(false)}));
  EXPECT_FALSE(off.need_ordering);
  EXPECT_FALSE(off.need_encryption);
}

TEST(MappingTest, ThroughputFloorUsesMinAcceptable) {
  // min_value bounded: admission floor is the min, not the request.
  const auto req =
      MapToProtocolRequirements(Spec({RequireThroughputKbps(8000, 2000)}));
  EXPECT_EQ(req.min_throughput_kbps, 2000u);
  EXPECT_TRUE(req.HasPerformanceConstraints());
}

TEST(MappingTest, ThroughputWithoutFloorUsesRequest) {
  QoSParameter p;
  p.param_type = static_cast<corba::ULong>(ParamType::kThroughputKbps);
  p.request_value = 4000;  // both bounds unbounded
  const auto req = MapToProtocolRequirements(QoSSpec::Trusted({p}));
  EXPECT_EQ(req.min_throughput_kbps, 4000u);
}

TEST(MappingTest, LatencyCeilingUsesMaxAcceptable) {
  const auto req =
      MapToProtocolRequirements(Spec({RequireLatencyMicros(500, 2000)}));
  EXPECT_EQ(req.max_latency_us, 2000u);
}

TEST(MappingTest, JitterAndLossCeilings) {
  const auto req = MapToProtocolRequirements(
      Spec({RequireJitterMicros(50, 400), RequireLossPermille(0, 5)}));
  EXPECT_EQ(req.max_jitter_us, 400u);
  EXPECT_EQ(req.max_loss_permille, 5u);
}

TEST(MappingTest, PriorityPassesThrough) {
  EXPECT_EQ(MapToProtocolRequirements(Spec({RequirePriority(200)})).priority,
            200u);
}

TEST(MappingTest, ToStringNamesRequiredFunctions) {
  const auto req = MapToProtocolRequirements(
      Spec({RequireReliability(2), RequireEncryption(true)}));
  const std::string s = req.ToString();
  EXPECT_NE(s.find("error_detection"), std::string::npos);
  EXPECT_NE(s.find("retransmission"), std::string::npos);
  EXPECT_NE(s.find("encryption"), std::string::npos);
}

}  // namespace
}  // namespace cool::qos
