// ClassifyForScheduling: the QoSParameter -> (band, weight, rate) mapping
// table from DESIGN.md §13, exercised bound by bound.
#include "qos/classify.h"

#include <gtest/gtest.h>

#include "giop/dispatch_pool.h"
#include "qos/qos.h"

namespace cool::qos {
namespace {

using Band = SchedProfile::Band;

TEST(ClassifyTest, NoParametersIsUnshapedNormal) {
  const SchedProfile p = ClassifyForScheduling({});
  EXPECT_EQ(p.band, Band::kNormal);
  EXPECT_EQ(p.weight, 1u);
  EXPECT_EQ(p.rate_bytes_per_sec, 0u);
  EXPECT_FALSE(p.latency_sensitive);
}

TEST(ClassifyTest, PriorityBandBoundaries) {
  EXPECT_EQ(ClassifyForScheduling({RequirePriority(255)}).band, Band::kHigh);
  EXPECT_EQ(ClassifyForScheduling({RequirePriority(170)}).band, Band::kHigh);
  EXPECT_EQ(ClassifyForScheduling({RequirePriority(169)}).band, Band::kNormal);
  EXPECT_EQ(ClassifyForScheduling({RequirePriority(85)}).band, Band::kNormal);
  EXPECT_EQ(ClassifyForScheduling({RequirePriority(84)}).band, Band::kLow);
  EXPECT_EQ(ClassifyForScheduling({RequirePriority(0)}).band, Band::kLow);
}

TEST(ClassifyTest, PriorityScalesWeightWithinBand) {
  // Weight = 1 + (value - band_floor) / 11, clamped to [1, 8].
  EXPECT_EQ(ClassifyForScheduling({RequirePriority(170)}).weight, 1u);
  EXPECT_EQ(ClassifyForScheduling({RequirePriority(181)}).weight, 2u);
  EXPECT_EQ(ClassifyForScheduling({RequirePriority(255)}).weight, 8u);
  EXPECT_EQ(ClassifyForScheduling({RequirePriority(85)}).weight, 1u);
  EXPECT_EQ(ClassifyForScheduling({RequirePriority(169)}).weight, 8u);
  EXPECT_EQ(ClassifyForScheduling({RequirePriority(0)}).weight, 1u);
  EXPECT_EQ(ClassifyForScheduling({RequirePriority(84)}).weight, 8u);
}

TEST(ClassifyTest, FirstPriorityWins) {
  const SchedProfile p =
      ClassifyForScheduling({RequirePriority(200), RequirePriority(10)});
  EXPECT_EQ(p.band, Band::kHigh);
}

TEST(ClassifyTest, LatencyBoundPromotesToHigh) {
  const SchedProfile p =
      ClassifyForScheduling({RequireLatencyMicros(500, 2000)});
  EXPECT_EQ(p.band, Band::kHigh);
  EXPECT_TRUE(p.latency_sensitive);
  EXPECT_EQ(p.weight, 8u);  // bound <= 1ms
}

TEST(ClassifyTest, LatencyWeightTiers) {
  EXPECT_EQ(ClassifyForScheduling({RequireLatencyMicros(1'000, 5'000)}).weight,
            8u);
  EXPECT_EQ(ClassifyForScheduling({RequireLatencyMicros(10'000, 50'000)})
                .weight,
            4u);
  EXPECT_EQ(
      ClassifyForScheduling({RequireLatencyMicros(50'000, 100'000)}).weight,
      2u);
}

TEST(ClassifyTest, JitterCountsAsLatencySensitive) {
  const SchedProfile p = ClassifyForScheduling({RequireJitterMicros(200, 800)});
  EXPECT_EQ(p.band, Band::kHigh);
  EXPECT_TRUE(p.latency_sensitive);
  EXPECT_EQ(p.weight, 8u);
}

TEST(ClassifyTest, TightestOfSeveralBoundsSetsWeight) {
  const SchedProfile p = ClassifyForScheduling(
      {RequireLatencyMicros(20'000, 50'000), RequireJitterMicros(800, 2'000)});
  EXPECT_EQ(p.weight, 8u);  // the 800us jitter request is the tightest
}

TEST(ClassifyTest, ExplicitPriorityBeatsLatencyPromotion) {
  const SchedProfile p = ClassifyForScheduling(
      {RequirePriority(40), RequireLatencyMicros(500, 1'000)});
  EXPECT_EQ(p.band, Band::kLow);  // priority decides the band...
  EXPECT_TRUE(p.latency_sensitive);  // ...the sensitivity flag survives
}

TEST(ClassifyTest, BoundedThroughputMaxBecomesRateCap) {
  QoSParameter p;
  p.param_type = static_cast<corba::ULong>(ParamType::kThroughputKbps);
  p.request_value = 1'000;
  p.max_value = 8'000;  // ceiling: 8000 kbit/s = 1 MB/s
  const SchedProfile profile = ClassifyForScheduling({p});
  EXPECT_EQ(profile.rate_bytes_per_sec, 1'000'000u);
  EXPECT_EQ(profile.band, Band::kNormal);
}

TEST(ClassifyTest, UnboundedThroughputNeverShapes) {
  // The helper leaves max_value unbounded (the request is a floor): no cap.
  const SchedProfile p =
      ClassifyForScheduling({RequireThroughputKbps(8'000, 2'000)});
  EXPECT_EQ(p.rate_bytes_per_sec, 0u);
}

TEST(ClassifyTest, BandProjectionMatchesDispatchClassifier) {
  // giop::ClassifyQoS is the historical band-only classifier; the full
  // profile must agree with it on every priority value.
  for (int v = 0; v <= 255; ++v) {
    const auto params = std::vector<QoSParameter>{
        RequirePriority(static_cast<corba::ULong>(v))};
    const SchedProfile p = ClassifyForScheduling(params);
    EXPECT_EQ(static_cast<int>(p.band),
              static_cast<int>(giop::ClassifyQoS(params)))
        << "priority " << v;
  }
}

}  // namespace
}  // namespace cool::qos
