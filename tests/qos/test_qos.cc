#include "qos/qos.h"

#include <gtest/gtest.h>

namespace cool::qos {
namespace {

TEST(QoSParameterTest, WireFormatIsSixteenOctets) {
  // The paper's struct is four 32-bit fields; naturally aligned CDR packs
  // them into exactly 16 octets.
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian);
  EncodeQoSParameter(enc, RequireThroughputKbps(5000, 1000));
  EXPECT_EQ(enc.buffer().size(), 16u);
}

TEST(QoSParameterTest, RoundTrip) {
  QoSParameter p = RequireLatencyMicros(500, 2000);
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian);
  EncodeQoSParameter(enc, p);
  cdr::Decoder dec(enc.buffer().view(), cdr::ByteOrder::kLittleEndian);
  auto decoded = DecodeQoSParameter(dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, p);
}

TEST(QoSParameterTest, SequenceRoundTripBothOrders) {
  std::vector<QoSParameter> params = {
      RequireThroughputKbps(10000, 2000),
      RequireReliability(2),
      RequireEncryption(true),
  };
  for (const auto order :
       {cdr::ByteOrder::kLittleEndian, cdr::ByteOrder::kBigEndian}) {
    cdr::Encoder enc(order);
    EncodeQoSParameterSeq(enc, params);
    cdr::Decoder dec(enc.buffer().view(), order);
    auto decoded = DecodeQoSParameterSeq(dec);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, params);
  }
}

TEST(QoSParameterTest, SequenceCountGuard) {
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian);
  enc.PutULong(1000000);  // absurd count, no payload
  cdr::Decoder dec(enc.buffer().view(), cdr::ByteOrder::kLittleEndian);
  EXPECT_EQ(DecodeQoSParameterSeq(dec).status().code(),
            ErrorCode::kProtocolError);
}

TEST(QoSParameterTest, AcceptsChecksBounds) {
  QoSParameter p;
  p.min_value = 10;
  p.max_value = 20;
  EXPECT_FALSE(p.Accepts(9));
  EXPECT_TRUE(p.Accepts(10));
  EXPECT_TRUE(p.Accepts(15));
  EXPECT_TRUE(p.Accepts(20));
  EXPECT_FALSE(p.Accepts(21));
  EXPECT_FALSE(p.Accepts(-1));
}

TEST(QoSParameterTest, UnboundedEndsAcceptEverything) {
  QoSParameter p;  // both unbounded
  EXPECT_TRUE(p.Accepts(0));
  EXPECT_TRUE(p.Accepts(1 << 30));

  QoSParameter lower_only;
  lower_only.min_value = 5;
  EXPECT_FALSE(lower_only.Accepts(4));
  EXPECT_TRUE(lower_only.Accepts(1 << 30));
}

TEST(QoSParameterTest, DirectionsMatchSemantics) {
  EXPECT_EQ(DirectionOf(ParamType::kThroughputKbps),
            Direction::kHigherIsBetter);
  EXPECT_EQ(DirectionOf(ParamType::kLatencyMicros),
            Direction::kLowerIsBetter);
  EXPECT_EQ(DirectionOf(ParamType::kJitterMicros),
            Direction::kLowerIsBetter);
  EXPECT_EQ(DirectionOf(ParamType::kReliability),
            Direction::kHigherIsBetter);
  EXPECT_EQ(DirectionOf(ParamType::kLossPermille),
            Direction::kLowerIsBetter);
}

TEST(QoSParameterTest, KnownTypeRange) {
  EXPECT_FALSE(IsKnownParamType(0));
  EXPECT_TRUE(IsKnownParamType(1));
  EXPECT_TRUE(IsKnownParamType(8));
  EXPECT_FALSE(IsKnownParamType(9));
}

TEST(QoSParameterTest, ToStringNamesTheParameter) {
  EXPECT_NE(RequireThroughputKbps(100, 50).ToString().find("throughput"),
            std::string::npos);
  QoSParameter unknown;
  unknown.param_type = 77;
  EXPECT_NE(unknown.ToString().find("param#77"), std::string::npos);
}

TEST(QoSSpecTest, RejectsDuplicateTypes) {
  auto spec = QoSSpec::FromParameters(
      {RequireThroughputKbps(100, 50), RequireThroughputKbps(200, 100)});
  EXPECT_EQ(spec.status().code(), ErrorCode::kInvalidArgument);
}

TEST(QoSSpecTest, RejectsInvertedRange) {
  QoSParameter p;
  p.param_type = static_cast<corba::ULong>(ParamType::kThroughputKbps);
  p.request_value = 15;
  p.min_value = 20;
  p.max_value = 10;
  EXPECT_EQ(QoSSpec::FromParameters({p}).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(QoSSpecTest, RejectsRequestOutsideRange) {
  QoSParameter p;
  p.param_type = static_cast<corba::ULong>(ParamType::kLatencyMicros);
  p.request_value = 100;
  p.max_value = 50;  // request 100 > max acceptable 50
  EXPECT_EQ(QoSSpec::FromParameters({p}).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(QoSSpecTest, FindAndSet) {
  auto spec = QoSSpec::FromParameters({RequireThroughputKbps(100, 50)});
  ASSERT_TRUE(spec.ok());
  EXPECT_NE(spec->Find(ParamType::kThroughputKbps), nullptr);
  EXPECT_EQ(spec->Find(ParamType::kLatencyMicros), nullptr);

  spec->Set(RequireLatencyMicros(10, 100));
  EXPECT_EQ(spec->size(), 2u);
  spec->Set(RequireThroughputKbps(500, 200));  // replaces
  EXPECT_EQ(spec->size(), 2u);
  EXPECT_EQ(spec->Find(ParamType::kThroughputKbps)->request_value, 500u);
}

TEST(QoSSpecTest, EmptySpecBehaviour) {
  QoSSpec spec;
  EXPECT_TRUE(spec.empty());
  EXPECT_EQ(spec.ToString(), "[]");
}

TEST(QoSSpecTest, ConvenienceConstructorsProduceValidSpecs) {
  auto spec = QoSSpec::FromParameters({
      RequireThroughputKbps(8000, 2000),
      RequireLatencyMicros(500, 5000),
      RequireJitterMicros(100, 1000),
      RequireReliability(2),
      RequireOrdering(true),
      RequireEncryption(true),
      RequireLossPermille(0, 10),
      RequirePriority(128),
  });
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->size(), 8u);
}

}  // namespace
}  // namespace cool::qos
