// Burst (packet-train) semantics of the module interface, PR 8: batch
// split/truncation at flow-control boundaries, single-call train releases,
// and FIFO delivery through the burst engine's stall queues.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dacapo/module.h"
#include "dacapo/modules.h"
#include "dacapo/runtime.h"

namespace cool::dacapo {
namespace {

// Records every forward, distinguishing batch calls from per-packet calls
// so the tests can assert "this train crossed in ONE hop".
class RecordPort : public ModulePort {
 public:
  explicit RecordPort(PacketArena& arena) : arena_(arena) {}

  void ForwardUp(PacketPtr pkt) override { up.push_back(std::move(pkt)); }
  void ForwardDown(PacketPtr pkt) override { down.push_back(std::move(pkt)); }
  void ForwardUpBatch(std::vector<PacketPtr>& pkts) override {
    ++up_batch_calls;
    for (auto& p : pkts) up.push_back(std::move(p));
    pkts.clear();
  }
  void ForwardDownBatch(std::vector<PacketPtr>& pkts) override {
    ++down_batch_calls;
    for (auto& p : pkts) down.push_back(std::move(p));
    pkts.clear();
  }
  void ControlUp(ControlMsg msg) override { control.push_back(std::move(msg)); }
  void ControlDown(ControlMsg msg) override {
    control.push_back(std::move(msg));
  }
  PacketArena& arena() override { return arena_; }
  std::string_view channel_name() const override { return "test"; }

  std::vector<PacketPtr> up;
  std::vector<PacketPtr> down;
  std::vector<ControlMsg> control;
  int up_batch_calls = 0;
  int down_batch_calls = 0;

 private:
  PacketArena& arena_;
};

PacketPtr Make(PacketArena& arena, std::initializer_list<std::uint8_t> b) {
  auto p = arena.Make(std::vector<std::uint8_t>(b));
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

PacketPtr MakeSized(PacketArena& arena, std::size_t n, std::uint8_t fill) {
  auto p = arena.Make(std::vector<std::uint8_t>(n, fill));
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

void PutU32Le(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t GetU32Le(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

// Builds a packet carrying the ARQ wire image [type:1][seq:4] + payload.
PacketPtr MakeArq(PacketArena& arena, std::uint8_t type, std::uint32_t seq,
                  std::uint8_t payload_byte) {
  PacketPtr p = Make(arena, {payload_byte});
  std::uint8_t header[5];
  header[0] = type;
  PutU32Le(header + 1, seq);
  EXPECT_TRUE(p->PushHeader(header).ok());
  return p;
}

// --- truncation at flow-control boundaries ---------------------------------

TEST(BurstTest, DefaultShimTruncatesWhenModuleNotReady) {
  // IrqModule keeps the default per-packet shim and allows one outstanding
  // packet, so a down-train must truncate after the first slot: the
  // leftover stays in the batch, FIFO order intact, for the engine to
  // stall.
  PacketArena arena(16, 256);
  RecordPort port(arena);
  IrqModule irq;

  PacketBatch batch;
  for (std::uint8_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(batch.PushBack(Make(arena, {i})));
  }
  irq.ProcessBurst(Direction::kDown, batch, port);

  EXPECT_EQ(port.down.size(), 1u);  // the transmitted clone
  EXPECT_FALSE(irq.ReadyForDown());
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i]->Data().back(), static_cast<std::uint8_t>(i + 1));
  }
}

TEST(BurstTest, GoBackNDownBurstTruncatesAtWindow) {
  PacketArena arena(64, 256);
  RecordPort port(arena);
  GoBackNModule::Options opts;
  opts.window = 8;
  GoBackNModule gbn(opts);

  PacketBatch batch;
  for (std::uint8_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(batch.PushBack(Make(arena, {i})));
  }
  gbn.ProcessBurst(Direction::kDown, batch, port);

  EXPECT_EQ(port.down.size(), 8u);  // one clone per window slot
  EXPECT_FALSE(gbn.ReadyForDown());
  ASSERT_EQ(batch.size(), 4u);
  // Leftover keeps FIFO order: payloads 8..11.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i]->Data().back(), static_cast<std::uint8_t>(i + 8));
  }
  // Transmitted clones carry in-order sequence numbers 0..7.
  for (std::size_t i = 0; i < port.down.size(); ++i) {
    const auto data = port.down[i]->Data();
    ASSERT_GE(data.size(), 5u);
    EXPECT_EQ(data[0], 0);  // kArqData
    EXPECT_EQ(GetU32Le(data.data() + 1), static_cast<std::uint32_t>(i));
  }
}

TEST(BurstTest, GoBackNUpBurstAnswersWithOneCumulativeAck) {
  PacketArena arena(64, 256);
  RecordPort port(arena);
  GoBackNModule gbn;

  PacketBatch batch;
  for (std::uint32_t seq = 0; seq < 8; ++seq) {
    ASSERT_TRUE(batch.PushBack(
        MakeArq(arena, /*type=*/0, seq, static_cast<std::uint8_t>(seq))));
  }
  gbn.ProcessBurst(Direction::kUp, batch, port);

  EXPECT_EQ(batch.size(), 0u);  // up bursts are consumed in full
  ASSERT_EQ(port.up.size(), 8u);
  for (std::size_t i = 0; i < port.up.size(); ++i) {
    EXPECT_EQ(port.up[i]->Data().back(), static_cast<std::uint8_t>(i));
  }
  // The whole 8-packet train is answered by exactly ONE cumulative ACK.
  ASSERT_EQ(port.down.size(), 1u);
  const auto ack = port.down[0]->Data();
  ASSERT_EQ(ack.size(), 5u);
  EXPECT_EQ(ack[0], 1);  // kArqAck
  EXPECT_EQ(GetU32Le(ack.data() + 1), 8u);
}

TEST(BurstTest, RateLimiterBurstHoldsFirstUnaffordablePacket) {
  PacketArena arena(16, 256);
  RecordPort port(arena);
  RateLimiterModule::Options opts;
  opts.rate_bytes_per_sec = 1;  // effectively no refill during the test
  opts.burst_bytes = 160;       // affords two 64-octet packets
  RateLimiterModule limiter(opts);

  PacketBatch batch;
  for (std::uint8_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(batch.PushBack(MakeSized(arena, 64, i)));
  }
  limiter.ProcessBurst(Direction::kDown, batch, port);

  EXPECT_EQ(port.down.size(), 2u);
  EXPECT_FALSE(limiter.ReadyForDown());  // third packet held for tokens
  ASSERT_EQ(batch.size(), 2u);           // fourth and fifth left for stall
  EXPECT_EQ(batch[0]->Data().back(), 3);
  EXPECT_EQ(batch[1]->Data().back(), 4);
}

// --- single-hop train releases ----------------------------------------------

TEST(BurstTest, SequencerDownBurstStampsTrainInOneHop) {
  PacketArena arena(16, 256);
  RecordPort port(arena);
  SequencerModule seq;

  PacketBatch batch;
  for (std::uint8_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(batch.PushBack(Make(arena, {i})));
  }
  seq.ProcessBurst(Direction::kDown, batch, port);

  EXPECT_EQ(batch.size(), 0u);
  EXPECT_EQ(port.down_batch_calls, 1);
  ASSERT_EQ(port.down.size(), 5u);
  for (std::size_t i = 0; i < port.down.size(); ++i) {
    const auto data = port.down[i]->Data();
    ASSERT_GE(data.size(), 4u);
    EXPECT_EQ(GetU32Le(data.data()), static_cast<std::uint32_t>(i));
  }
}

TEST(BurstTest, SequencerUpBurstReleasesInOrderRunAsOneTrain) {
  PacketArena arena(16, 256);
  RecordPort port(arena);
  SequencerModule seq;

  auto stamped = [&](std::uint32_t n) {
    PacketPtr p = Make(arena, {static_cast<std::uint8_t>(n)});
    std::uint8_t header[4];
    PutU32Le(header, n);
    EXPECT_TRUE(p->PushHeader(header).ok());
    return p;
  };

  // Seqs {0, 1, 3}: the in-order run {0, 1} releases as one train, 3 is
  // buffered behind the gap.
  PacketBatch first;
  ASSERT_TRUE(first.PushBack(stamped(0)));
  ASSERT_TRUE(first.PushBack(stamped(1)));
  ASSERT_TRUE(first.PushBack(stamped(3)));
  seq.ProcessBurst(Direction::kUp, first, port);

  EXPECT_EQ(port.up_batch_calls, 1);
  ASSERT_EQ(port.up.size(), 2u);
  EXPECT_EQ(port.up[0]->Data().back(), 0);
  EXPECT_EQ(port.up[1]->Data().back(), 1);

  // Seq 2 fills the gap: {2, 3} release together, again as one train.
  PacketBatch second;
  ASSERT_TRUE(second.PushBack(stamped(2)));
  seq.ProcessBurst(Direction::kUp, second, port);

  EXPECT_EQ(port.up_batch_calls, 2);
  ASSERT_EQ(port.up.size(), 4u);
  EXPECT_EQ(port.up[2]->Data().back(), 2);
  EXPECT_EQ(port.up[3]->Data().back(), 3);
}

// --- burst engine integration -----------------------------------------------

// Bottom "T" stand-in: loops every down packet straight back up.
class LoopbackBottomModule : public Module {
 public:
  std::string_view name() const override { return "loopback_bottom"; }
  void HandleData(Direction dir, PacketPtr pkt, ModulePort& port) override {
    if (dir == Direction::kDown) port.ForwardUp(std::move(pkt));
  }
};

TEST(BurstTest, ChainPreservesFifoAcrossInjectedTrains) {
  // 96 distinct payloads injected as trains through a transforming graph:
  // every message must come back, in order, bit-exact.
  auto arena = std::make_shared<PacketArena>(128, 256);
  std::vector<std::unique_ptr<Module>> mods;
  auto a = std::make_unique<AppAModule>();
  AppAModule* a_raw = a.get();
  mods.push_back(std::move(a));
  mods.push_back(
      std::make_unique<ChecksumModule>(ChecksumModule::Algorithm::kCrc32));
  mods.push_back(std::make_unique<XorCipherModule>(0xFEEDFACE));
  mods.push_back(std::make_unique<LoopbackBottomModule>());

  ModuleChain chain("t", std::move(mods), arena);
  ASSERT_TRUE(chain.Start().ok());

  constexpr int kMessages = 96;
  int sent = 0;
  while (sent < kMessages) {
    std::vector<PacketPtr> train;
    for (int i = 0; i < 32 && sent < kMessages; ++i, ++sent) {
      auto p = arena->Make(std::vector<std::uint8_t>{
          static_cast<std::uint8_t>(sent), static_cast<std::uint8_t>(sent >> 8),
          0xAB});
      ASSERT_TRUE(p.ok());
      train.push_back(std::move(p).value());
    }
    ASSERT_TRUE(chain.InjectDownBatch(train));
  }

  for (int i = 0; i < kMessages; ++i) {
    auto msg = a_raw->Receive(seconds(5));
    ASSERT_TRUE(msg.ok()) << "message " << i;
    ASSERT_EQ(msg->size(), 3u);
    const int id = (*msg)[0] | (*msg)[1] << 8;
    EXPECT_EQ(id, i);  // FIFO survived burst walks both ways
    EXPECT_EQ((*msg)[2], 0xAB);
  }
  chain.Stop();
}

TEST(BurstTest, ChainDeliversStalledTrainTailThroughRateLimiter) {
  // The injected train exceeds the limiter's bucket, so the engine must
  // stall the tail and drain it on ticks — nothing may be lost or
  // reordered across the stall boundary.
  auto arena = std::make_shared<PacketArena>(128, 256);
  std::vector<std::unique_ptr<Module>> mods;
  auto a = std::make_unique<AppAModule>();
  AppAModule* a_raw = a.get();
  mods.push_back(std::move(a));
  RateLimiterModule::Options opts;
  opts.rate_bytes_per_sec = 512 * 1024;
  opts.burst_bytes = 256;  // a few packets, then the train stalls
  mods.push_back(std::make_unique<RateLimiterModule>(opts));
  mods.push_back(std::make_unique<LoopbackBottomModule>());

  ModuleChain chain("t", std::move(mods), arena);
  ASSERT_TRUE(chain.Start().ok());

  constexpr int kMessages = 64;
  int sent = 0;
  while (sent < kMessages) {
    std::vector<PacketPtr> train;
    for (int i = 0; i < 32 && sent < kMessages; ++i, ++sent) {
      auto p = arena->Make(
          std::vector<std::uint8_t>(32, static_cast<std::uint8_t>(sent)));
      ASSERT_TRUE(p.ok());
      train.push_back(std::move(p).value());
    }
    ASSERT_TRUE(chain.InjectDownBatch(train));
  }

  for (int i = 0; i < kMessages; ++i) {
    auto msg = a_raw->Receive(seconds(5));
    ASSERT_TRUE(msg.ok()) << "message " << i;
    EXPECT_EQ(msg->front(), static_cast<std::uint8_t>(i));
  }
  chain.Stop();
}

TEST(BurstTest, FragmentTrainLargerThanOneBurstReassembles) {
  // A 250-octet message over an 8-octet MTU yields a fragment train longer
  // than PacketBatch::kCapacity, forcing the fragmenter to emit multiple
  // bursts for one message — reassembly must still produce the exact
  // original.
  auto arena = std::make_shared<PacketArena>(128, 256);
  std::vector<std::unique_ptr<Module>> mods;
  auto a = std::make_unique<AppAModule>();
  AppAModule* a_raw = a.get();
  mods.push_back(std::move(a));
  mods.push_back(std::make_unique<FragmentModule>(8));
  mods.push_back(std::make_unique<LoopbackBottomModule>());

  ModuleChain chain("t", std::move(mods), arena);
  ASSERT_TRUE(chain.Start().ok());

  std::vector<std::uint8_t> message(250);
  for (std::size_t i = 0; i < message.size(); ++i) {
    message[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  auto p = arena->Make(message);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(chain.InjectDown(std::move(p).value()));

  auto got = a_raw->Receive(seconds(5));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, message);
  chain.Stop();
}

}  // namespace
}  // namespace cool::dacapo
