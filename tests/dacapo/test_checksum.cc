#include "dacapo/checksum.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"

namespace cool::dacapo {
namespace {

TEST(ParityTest, EmptyIsZero) {
  EXPECT_EQ(ParityByte({}), 0);
}

TEST(ParityTest, XorOfAllBytes) {
  const std::vector<std::uint8_t> data = {0x01, 0x02, 0x04};
  EXPECT_EQ(ParityByte(data), 0x07);
}

TEST(ParityTest, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data = {1, 2, 3, 4};
  const std::uint8_t before = ParityByte(data);
  data[2] ^= 0x10;
  EXPECT_NE(ParityByte(data), before);
}

TEST(ParityTest, MissesCompensatingFlips) {
  // The known weakness of parity: two identical flips cancel out. Pinned
  // here because it motivates CRC mechanisms in the configuration manager.
  std::vector<std::uint8_t> data = {1, 2, 3, 4};
  const std::uint8_t before = ParityByte(data);
  data[0] ^= 0x10;
  data[1] ^= 0x10;
  EXPECT_EQ(ParityByte(data), before);
}

TEST(Crc16Test, KnownVector) {
  // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
  const std::string s = "123456789";
  EXPECT_EQ(Crc16({reinterpret_cast<const std::uint8_t*>(s.data()),
                   s.size()}),
            0x29B1);
}

TEST(Crc16Test, EmptyIsInit) {
  EXPECT_EQ(Crc16({}), 0xFFFF);
}

TEST(Crc32Test, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926.
  const std::string s = "123456789";
  EXPECT_EQ(Crc32({reinterpret_cast<const std::uint8_t*>(s.data()),
                   s.size()}),
            0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) {
  EXPECT_EQ(Crc32({}), 0u);
}

TEST(Crc32Test, DetectsCompensatingFlipsParityMisses) {
  std::vector<std::uint8_t> data = {1, 2, 3, 4};
  const std::uint32_t before = Crc32(data);
  data[0] ^= 0x10;
  data[1] ^= 0x10;
  EXPECT_NE(Crc32(data), before);
}

TEST(CrcPropertyTest, RandomCorruptionDetected) {
  Rng rng(123);
  for (int round = 0; round < 100; ++round) {
    std::vector<std::uint8_t> data(64);
    for (auto& b : data) b = rng.NextByte();
    const std::uint32_t crc32 = Crc32(data);
    const std::uint16_t crc16 = Crc16(data);
    // Flip one random bit.
    data[rng.NextBelow(64)] ^= static_cast<std::uint8_t>(
        1u << rng.NextBelow(8));
    EXPECT_NE(Crc32(data), crc32);
    EXPECT_NE(Crc16(data), crc16);
  }
}

// --- Kernel equivalence sweeps ---------------------------------------
// The vectorized kernels (slicing-by-8, hardware CRC, wide XOR) must be
// bit-identical to the scalar references for every length 0..4KB and every
// alignment 0..15 — the sweep runs under ASan+UBSan in CI, which also
// proves the word-at-a-time loads never read out of bounds.

class KernelSweep {
 public:
  KernelSweep() : buf_(kAlignMax + kLenMax) {
    Rng rng(20260809);
    for (auto& b : buf_) b = rng.NextByte();
  }

  template <typename Fn>
  void ForEachSlice(Fn&& fn) const {
    for (std::size_t align = 0; align < kAlignMax; ++align) {
      for (std::size_t len = 0; len <= 256; ++len) fn(align, len);
      for (std::size_t len = 257; len <= kLenMax; len += 37) fn(align, len);
    }
  }

  std::span<const std::uint8_t> Slice(std::size_t align,
                                      std::size_t len) const {
    return {buf_.data() + align, len};
  }

  static constexpr std::size_t kAlignMax = 16;
  static constexpr std::size_t kLenMax = 4096;

 private:
  std::vector<std::uint8_t> buf_;
};

TEST(Crc32KernelTest, Slicing8MatchesScalarAllSizesAndAlignments) {
  const KernelSweep sweep;
  sweep.ForEachSlice([&](std::size_t align, std::size_t len) {
    const auto s = sweep.Slice(align, len);
    ASSERT_EQ(Crc32Slicing8(s), Crc32Scalar(s))
        << "align=" << align << " len=" << len;
  });
}

TEST(Crc32KernelTest, HardwareMatchesScalarAllSizesAndAlignments) {
  if (!Crc32HwAvailable()) {
    GTEST_SKIP() << "no CRC32 hardware path on this machine";
  }
  const KernelSweep sweep;
  sweep.ForEachSlice([&](std::size_t align, std::size_t len) {
    const auto s = sweep.Slice(align, len);
    ASSERT_EQ(Crc32Hw(s), Crc32Scalar(s))
        << "align=" << align << " len=" << len;
  });
}

TEST(Crc32KernelTest, DispatchedMatchesScalarAllSizesAndAlignments) {
  const KernelSweep sweep;
  sweep.ForEachSlice([&](std::size_t align, std::size_t len) {
    const auto s = sweep.Slice(align, len);
    ASSERT_EQ(Crc32(s), Crc32Scalar(s))
        << "align=" << align << " len=" << len;
  });
}

TEST(Crc32KernelTest, KnownVectorOnEveryKernel) {
  const std::string s = "123456789";
  const std::span<const std::uint8_t> bytes{
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
  EXPECT_EQ(Crc32Scalar(bytes), 0xCBF43926u);
  EXPECT_EQ(Crc32Slicing8(bytes), 0xCBF43926u);
  if (Crc32HwAvailable()) {
    EXPECT_EQ(Crc32Hw(bytes), 0xCBF43926u);
  }
}

TEST(XorCipherKernelTest, WideMatchesScalarAllSizesAndAlignments) {
  const KernelSweep sweep;
  std::vector<std::uint8_t> wide;
  std::vector<std::uint8_t> scalar;
  sweep.ForEachSlice([&](std::size_t align, std::size_t len) {
    const auto s = sweep.Slice(align, len);
    wide.assign(s.begin(), s.end());
    scalar.assign(s.begin(), s.end());
    XorCipher(wide, 0x5EEDCAFEF00DULL);
    XorCipherScalar(scalar, 0x5EEDCAFEF00DULL);
    ASSERT_EQ(wide, scalar) << "align=" << align << " len=" << len;
    XorCipher(wide, 0x5EEDCAFEF00DULL);
    ASSERT_TRUE(std::equal(wide.begin(), wide.end(), s.begin()))
        << "round trip failed: align=" << align << " len=" << len;
  });
}

TEST(XorCipherTest, RoundTripRestoresPlaintext) {
  std::vector<std::uint8_t> data(100);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  const std::vector<std::uint8_t> original = data;
  XorCipher(data, 0xDEADBEEF);
  EXPECT_NE(data, original);
  XorCipher(data, 0xDEADBEEF);
  EXPECT_EQ(data, original);
}

TEST(XorCipherTest, DifferentKeysProduceDifferentCiphertext) {
  std::vector<std::uint8_t> a(32, 0);
  std::vector<std::uint8_t> b(32, 0);
  XorCipher(a, 1);
  XorCipher(b, 2);
  EXPECT_NE(a, b);
}

TEST(XorCipherTest, WrongKeyDoesNotDecrypt) {
  std::vector<std::uint8_t> data(32, 0x55);
  const std::vector<std::uint8_t> original = data;
  XorCipher(data, 7);
  XorCipher(data, 8);
  EXPECT_NE(data, original);
}

TEST(XorCipherTest, EmptyAndTinyInputs) {
  std::vector<std::uint8_t> empty;
  XorCipher(empty, 1);  // must not crash
  std::vector<std::uint8_t> one = {0xAB};
  XorCipher(one, 1);
  XorCipher(one, 1);
  EXPECT_EQ(one[0], 0xAB);
}

}  // namespace
}  // namespace cool::dacapo
