#include "dacapo/mailbox.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/thread.h"

namespace cool::dacapo {
namespace {

PacketPtr MakePacket(PacketArena& arena, std::uint8_t tag) {
  auto p = arena.Make(std::vector<std::uint8_t>{tag});
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

class MailboxTest : public ::testing::Test {
 protected:
  PacketArena arena_{32, 64};
};

TEST_F(MailboxTest, TimeoutWhenEmpty) {
  Mailbox mb;
  const auto r = mb.PopNext(true, milliseconds(20));
  EXPECT_EQ(r.kind, Mailbox::PopResult::Kind::kTimeout);
}

TEST_F(MailboxTest, ControlBeatsData) {
  Mailbox mb;
  mb.PushUp(MakePacket(arena_, 1));
  ASSERT_TRUE(mb.PushDown(MakePacket(arena_, 2)));
  ControlMsg msg;
  msg.kind = ControlMsg::Kind::kError;
  msg.text = "x";
  mb.PushControl(Direction::kUp, msg);

  auto r = mb.PopNext(true, milliseconds(10));
  ASSERT_EQ(r.kind, Mailbox::PopResult::Kind::kControl);
  EXPECT_EQ(r.control.text, "x");
  EXPECT_EQ(r.control_dir, Direction::kUp);
}

TEST_F(MailboxTest, UpBeatsDown) {
  Mailbox mb;
  ASSERT_TRUE(mb.PushDown(MakePacket(arena_, 2)));
  mb.PushUp(MakePacket(arena_, 1));

  auto r1 = mb.PopNext(true, milliseconds(10));
  ASSERT_EQ(r1.kind, Mailbox::PopResult::Kind::kData);
  EXPECT_EQ(r1.data.dir, Direction::kUp);
  EXPECT_EQ(r1.data.pkt->Data()[0], 1);

  auto r2 = mb.PopNext(true, milliseconds(10));
  ASSERT_EQ(r2.kind, Mailbox::PopResult::Kind::kData);
  EXPECT_EQ(r2.data.dir, Direction::kDown);
}

TEST_F(MailboxTest, DownGatedByAcceptFlag) {
  Mailbox mb;
  ASSERT_TRUE(mb.PushDown(MakePacket(arena_, 1)));
  // accept_down = false: the down packet is invisible.
  auto r = mb.PopNext(false, milliseconds(20));
  EXPECT_EQ(r.kind, Mailbox::PopResult::Kind::kTimeout);
  // ...but up traffic still flows.
  mb.PushUp(MakePacket(arena_, 2));
  r = mb.PopNext(false, milliseconds(20));
  ASSERT_EQ(r.kind, Mailbox::PopResult::Kind::kData);
  EXPECT_EQ(r.data.dir, Direction::kUp);
  // Re-enabling down releases the queued packet.
  r = mb.PopNext(true, milliseconds(20));
  ASSERT_EQ(r.kind, Mailbox::PopResult::Kind::kData);
  EXPECT_EQ(r.data.dir, Direction::kDown);
}

TEST_F(MailboxTest, BoundedDownBlocksAndBackpressures) {
  Mailbox mb(/*down_capacity=*/2);
  ASSERT_TRUE(mb.PushDown(MakePacket(arena_, 1)));
  ASSERT_TRUE(mb.PushDown(MakePacket(arena_, 2)));
  EXPECT_EQ(mb.down_size(), 2u);

  std::atomic<bool> third_pushed{false};
  cool::Thread pusher([&] {
    ASSERT_TRUE(mb.PushDown(MakePacket(arena_, 3)));
    third_pushed = true;
  });
  std::this_thread::sleep_for(milliseconds(30));
  EXPECT_FALSE(third_pushed.load());  // full: pusher is blocked

  auto r = mb.PopNext(true, milliseconds(10));
  ASSERT_EQ(r.kind, Mailbox::PopResult::Kind::kData);
  pusher.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST_F(MailboxTest, CloseWakesBlockedPusher) {
  Mailbox mb(1);
  ASSERT_TRUE(mb.PushDown(MakePacket(arena_, 1)));
  cool::Thread pusher([&] {
    EXPECT_FALSE(mb.PushDown(MakePacket(arena_, 2)));
  });
  std::this_thread::sleep_for(milliseconds(20));
  mb.Close();
  pusher.join();
}

TEST_F(MailboxTest, CloseReportsClosedAndDropsQueued) {
  Mailbox mb;
  ASSERT_TRUE(mb.PushDown(MakePacket(arena_, 1)));
  mb.Close();
  EXPECT_EQ(mb.PopNext(true, milliseconds(10)).kind,
            Mailbox::PopResult::Kind::kClosed);
  // Dropped packets returned to the arena.
  EXPECT_EQ(arena_.in_flight(), 0u);
}

TEST_F(MailboxTest, PushAfterCloseIsNoOp) {
  Mailbox mb;
  mb.Close();
  EXPECT_FALSE(mb.PushDown(MakePacket(arena_, 1)));
  mb.PushUp(MakePacket(arena_, 2));        // silently dropped
  mb.PushControl(Direction::kUp, ControlMsg{});
  EXPECT_EQ(mb.PopNext(true, milliseconds(5)).kind,
            Mailbox::PopResult::Kind::kClosed);
  EXPECT_EQ(arena_.in_flight(), 0u);
}

TEST_F(MailboxTest, FifoWithinEachQueue) {
  Mailbox mb;
  for (std::uint8_t i = 0; i < 5; ++i) mb.PushUp(MakePacket(arena_, i));
  for (std::uint8_t i = 0; i < 5; ++i) {
    auto r = mb.PopNext(true, milliseconds(5));
    ASSERT_EQ(r.kind, Mailbox::PopResult::Kind::kData);
    EXPECT_EQ(r.data.pkt->Data()[0], i);
  }
}

TEST_F(MailboxTest, WakesSleepingPopper) {
  Mailbox mb;
  cool::Thread popper([&] {
    auto r = mb.PopNext(true, seconds(5));
    ASSERT_EQ(r.kind, Mailbox::PopResult::Kind::kData);
    EXPECT_EQ(r.data.pkt->Data()[0], 42);
  });
  std::this_thread::sleep_for(milliseconds(20));
  mb.PushUp(MakePacket(arena_, 42));
  popper.join();
}

}  // namespace
}  // namespace cool::dacapo
