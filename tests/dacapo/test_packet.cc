#include "dacapo/packet.h"

#include <gtest/gtest.h>

#include "common/thread.h"

namespace cool::dacapo {
namespace {

std::vector<std::uint8_t> Bytes(std::initializer_list<std::uint8_t> list) {
  return {list};
}

TEST(PacketTest, SetPayloadAndRead) {
  Packet p(1024);
  ASSERT_TRUE(p.SetPayload(Bytes({1, 2, 3})).ok());
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.Data()[0], 1);
  EXPECT_EQ(p.Data()[2], 3);
}

TEST(PacketTest, PayloadTooLargeFails) {
  Packet p(4);
  std::vector<std::uint8_t> big(5);
  EXPECT_EQ(p.SetPayload(big).code(), ErrorCode::kInvalidArgument);
}

TEST(PacketTest, PushPopHeader) {
  Packet p(64);
  ASSERT_TRUE(p.SetPayload(Bytes({9, 9})).ok());
  ASSERT_TRUE(p.PushHeader(Bytes({0xAA, 0xBB})).ok());
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.Data()[0], 0xAA);

  auto header = p.PopHeader(2);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ((*header)[0], 0xAA);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.Data()[0], 9);
}

TEST(PacketTest, HeaderStackNests) {
  Packet p(64);
  ASSERT_TRUE(p.SetPayload(Bytes({1})).ok());
  ASSERT_TRUE(p.PushHeader(Bytes({2})).ok());  // inner
  ASSERT_TRUE(p.PushHeader(Bytes({3})).ok());  // outer
  EXPECT_EQ((*p.PopHeader(1))[0], 3);
  EXPECT_EQ((*p.PopHeader(1))[0], 2);
  EXPECT_EQ(p.Data()[0], 1);
}

TEST(PacketTest, HeadroomExhaustionFails) {
  Packet p(16);
  std::vector<std::uint8_t> huge(Packet::kHeadroom + 1);
  EXPECT_EQ(p.PushHeader(huge).code(), ErrorCode::kResourceExhausted);
}

TEST(PacketTest, PopHeaderUnderrunFails) {
  Packet p(16);
  ASSERT_TRUE(p.SetPayload(Bytes({1})).ok());
  EXPECT_EQ(p.PopHeader(2).status().code(), ErrorCode::kProtocolError);
}

TEST(PacketTest, PushPopTrailer) {
  Packet p(16);
  ASSERT_TRUE(p.SetPayload(Bytes({5})).ok());
  ASSERT_TRUE(p.PushTrailer(Bytes({0xCC, 0xDD})).ok());
  EXPECT_EQ(p.size(), 3u);
  auto trailer = p.PopTrailer(2);
  ASSERT_TRUE(trailer.ok());
  EXPECT_EQ((*trailer)[0], 0xCC);
  EXPECT_EQ(p.size(), 1u);
}

TEST(PacketTest, TrailerOverflowFails) {
  Packet p(4);
  ASSERT_TRUE(p.SetPayload(Bytes({1, 2, 3, 4})).ok());
  EXPECT_EQ(p.PushTrailer(Bytes({9})).code(), ErrorCode::kResourceExhausted);
}

TEST(ArenaTest, AllocateUpToCapacity) {
  PacketArena arena(3, 64);
  EXPECT_EQ(arena.capacity(), 3u);
  auto p1 = arena.Allocate();
  auto p2 = arena.Allocate();
  auto p3 = arena.Allocate();
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  ASSERT_TRUE(p3.ok());
  EXPECT_EQ(arena.in_flight(), 3u);
  EXPECT_EQ(arena.Allocate().status().code(),
            ErrorCode::kResourceExhausted);
}

TEST(ArenaTest, ReleaseReturnsToPool) {
  PacketArena arena(1, 64);
  {
    auto p = arena.Allocate();
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(arena.in_flight(), 1u);
  }
  EXPECT_EQ(arena.in_flight(), 0u);
  EXPECT_TRUE(arena.Allocate().ok());
}

TEST(ArenaTest, ReusedPacketIsReset) {
  PacketArena arena(1, 64);
  {
    auto p = arena.Allocate();
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE((*p)->SetPayload(Bytes({1, 2, 3})).ok());
    ASSERT_TRUE((*p)->PushHeader(Bytes({9})).ok());
  }
  auto p = arena.Allocate();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->size(), 0u);
}

TEST(ArenaTest, MakeCopiesPayload) {
  PacketArena arena(2, 64);
  auto data = Bytes({7, 8});
  auto p = arena.Make(data);
  ASSERT_TRUE(p.ok());
  data[0] = 0;
  EXPECT_EQ((*p)->Data()[0], 7);
}

TEST(ArenaTest, CloneIsDeepAndKeepsTimestamp) {
  PacketArena arena(2, 64);
  auto p = arena.Make(Bytes({1, 2}));
  ASSERT_TRUE(p.ok());
  auto clone = arena.Clone(**p);
  ASSERT_TRUE(clone.ok());
  EXPECT_EQ((*clone)->created_at(), (*p)->created_at());
  (*p)->Data()[0] = 99;
  EXPECT_EQ((*clone)->Data()[0], 1);
}

TEST(ArenaTest, CloneCopiesHeadersToo) {
  // Clone duplicates the current Data() view — including pushed headers.
  PacketArena arena(2, 64);
  auto p = arena.Make(Bytes({1}));
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE((*p)->PushHeader(Bytes({0xEE})).ok());
  auto clone = arena.Clone(**p);
  ASSERT_TRUE(clone.ok());
  ASSERT_EQ((*clone)->size(), 2u);
  EXPECT_EQ((*clone)->Data()[0], 0xEE);
}

TEST(ArenaTest, ConcurrentAllocateRelease) {
  PacketArena arena(16, 64);
  std::vector<cool::Thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        auto p = arena.Allocate();
        if (!p.ok()) {
          ++failures;
          continue;
        }
        (void)(*p)->SetPayload(Bytes({1}));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(arena.in_flight(), 0u);
  EXPECT_EQ(failures.load(), 0);  // 4 threads, 16 packets: never exhausted
}

}  // namespace
}  // namespace cool::dacapo
