// Configuration management: QoS requirements + network estimate -> module
// graph, with cost-model admission (paper §5.1 / §4.3).
#include "dacapo/config_manager.h"

#include <gtest/gtest.h>

namespace cool::dacapo {
namespace {

bool HasMechanism(const ModuleGraphSpec& spec, std::string_view name) {
  for (const MechanismSpec& m : spec.chain) {
    if (m.name == name) return true;
  }
  return false;
}

NetworkEstimate Lan() {
  NetworkEstimate net;
  net.bandwidth_bps = 100'000'000;
  net.rtt_us = 1000;
  net.loss_rate = 0.0;
  net.typical_packet_bytes = 8 * 1024;
  return net;
}

TEST(ConfigManagerTest, NoRequirementsYieldsEmptyGraph) {
  ConfigurationManager mgr;
  auto graph = mgr.Configure(qos::ProtocolRequirements{}, Lan());
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_TRUE(graph->spec.chain.empty());
  EXPECT_GT(graph->predicted_throughput_kbps, 0.0);
}

TEST(ConfigManagerTest, ErrorDetectionSelectsAChecksum) {
  ConfigurationManager mgr;
  qos::ProtocolRequirements req;
  req.need_error_detection = true;
  auto graph = mgr.Configure(req, Lan());
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(HasMechanism(graph->spec, mechanisms::kCrc16) ||
              HasMechanism(graph->spec, mechanisms::kCrc32));
}

TEST(ConfigManagerTest, StrictLossBoundPrefersCrc32) {
  ConfigurationManager mgr;
  qos::ProtocolRequirements req;
  req.need_error_detection = true;
  req.max_loss_permille = 0;
  auto graph = mgr.Configure(req, Lan());
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(HasMechanism(graph->spec, mechanisms::kCrc32));
}

TEST(ConfigManagerTest, RetransmissionWithoutThroughputUsesIrq) {
  ConfigurationManager mgr;
  qos::ProtocolRequirements req;
  req.need_retransmission = true;
  req.need_error_detection = true;
  auto graph = mgr.Configure(req, Lan());
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(HasMechanism(graph->spec, mechanisms::kIrq));
  EXPECT_FALSE(HasMechanism(graph->spec, mechanisms::kGoBackN));
}

TEST(ConfigManagerTest, ThroughputDemandSelectsGoBackN) {
  ConfigurationManager mgr;
  qos::ProtocolRequirements req;
  req.need_retransmission = true;
  req.min_throughput_kbps = 50'000;  // way above stop-and-wait capacity
  auto graph = mgr.Configure(req, Lan());
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_TRUE(HasMechanism(graph->spec, mechanisms::kGoBackN));
}

TEST(ConfigManagerTest, EncryptionAddsCipherOnTop) {
  ConfigurationManager mgr;
  qos::ProtocolRequirements req;
  req.need_encryption = true;
  req.need_error_detection = true;
  auto graph = mgr.Configure(req, Lan());
  ASSERT_TRUE(graph.ok());
  ASSERT_GE(graph->spec.chain.size(), 2u);
  // Cipher above (before) the checksum so the checksum covers ciphertext.
  EXPECT_EQ(graph->spec.chain.front().name, mechanisms::kXorCipher);
  EXPECT_NE(graph->spec.chain.back().name, mechanisms::kXorCipher);
}

TEST(ConfigManagerTest, OrderingWithoutArqUsesSequencer) {
  ConfigurationManager mgr;
  qos::ProtocolRequirements req;
  req.need_ordering = true;
  NetworkEstimate net = Lan();
  net.transport_reliable = false;
  auto graph = mgr.Configure(req, net);
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(HasMechanism(graph->spec, mechanisms::kSequencer));
}

TEST(ConfigManagerTest, ArqSubsumesOrdering) {
  ConfigurationManager mgr;
  qos::ProtocolRequirements req;
  req.need_ordering = true;
  req.need_retransmission = true;
  auto graph = mgr.Configure(req, Lan());
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(HasMechanism(graph->spec, mechanisms::kSequencer));
}

TEST(ConfigManagerTest, ReliableTransportSkipsSequencer) {
  ConfigurationManager mgr;
  qos::ProtocolRequirements req;
  req.need_ordering = true;
  NetworkEstimate net = Lan();
  net.transport_reliable = true;
  auto graph = mgr.Configure(req, net);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(HasMechanism(graph->spec, mechanisms::kSequencer));
}

TEST(ConfigManagerTest, LossForcesArqWhenToleranceStrict) {
  ConfigurationManager mgr;
  qos::ProtocolRequirements req;
  req.max_loss_permille = 1;  // 0.1% tolerated
  NetworkEstimate net = Lan();
  net.loss_rate = 0.05;  // 5% raw loss
  auto graph = mgr.Configure(req, net);
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(HasMechanism(graph->spec, mechanisms::kIrq) ||
              HasMechanism(graph->spec, mechanisms::kGoBackN));
}

TEST(ConfigManagerTest, LossWithinToleranceNeedsNoArq) {
  ConfigurationManager mgr;
  qos::ProtocolRequirements req;
  req.max_loss_permille = 100;  // 10% tolerated
  NetworkEstimate net = Lan();
  net.loss_rate = 0.05;
  auto graph = mgr.Configure(req, net);
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph->spec.chain.empty());
}

TEST(ConfigManagerTest, ImpossibleThroughputRefused) {
  ConfigurationManager mgr;
  qos::ProtocolRequirements req;
  req.min_throughput_kbps = 10'000'000;  // 10 Gbit over a 100 Mbit link
  auto graph = mgr.Configure(req, Lan());
  EXPECT_EQ(graph.status().code(), ErrorCode::kResourceExhausted);
}

TEST(ConfigManagerTest, ImpossibleLatencyRefused) {
  ConfigurationManager mgr;
  qos::ProtocolRequirements req;
  req.max_latency_us = 10;  // 10us over a 1ms-RTT link
  auto graph = mgr.Configure(req, Lan());
  EXPECT_EQ(graph.status().code(), ErrorCode::kResourceExhausted);
}

TEST(ConfigManagerTest, GoBackNWindowScalesWithBdp) {
  ConfigurationManager mgr;
  qos::ProtocolRequirements req;
  req.need_retransmission = true;
  req.min_throughput_kbps = 50'000;

  NetworkEstimate slow = Lan();
  slow.rtt_us = 2000;
  NetworkEstimate fast = Lan();
  fast.rtt_us = 20000;  // 10x the RTT -> bigger window needed

  auto g_slow = mgr.Configure(req, slow);
  auto g_fast = mgr.Configure(req, fast);
  ASSERT_TRUE(g_slow.ok());
  ASSERT_TRUE(g_fast.ok());
  std::int64_t w_slow = 0;
  std::int64_t w_fast = 0;
  for (const auto& m : g_slow->spec.chain) {
    if (m.name == mechanisms::kGoBackN) w_slow = m.ParamOr("window", 0);
  }
  for (const auto& m : g_fast->spec.chain) {
    if (m.name == mechanisms::kGoBackN) w_fast = m.ParamOr("window", 0);
  }
  EXPECT_GT(w_fast, w_slow);
}

TEST(CostModelTest, IrqThroughputBoundByPacketPerRtt) {
  ConfigurationManager mgr;
  ModuleGraphSpec spec;
  spec.chain.push_back({mechanisms::kIrq, {}});
  NetworkEstimate net = Lan();
  net.rtt_us = 10000;  // 10 ms
  net.typical_packet_bytes = 1024;
  // Stop-and-wait: 1 KiB per 10ms = 100 KiB/s = ~819 kbit/s.
  const double kbps = mgr.EstimateThroughputKbps(spec, net);
  EXPECT_NEAR(kbps, 819.2, 50.0);
}

TEST(CostModelTest, EmptyGraphApproachesWireRate) {
  ConfigurationManager mgr;
  const double kbps = mgr.EstimateThroughputKbps(ModuleGraphSpec{}, Lan());
  EXPECT_GT(kbps, 0.9 * 100'000);
  EXPECT_LE(kbps, 100'000);
}

TEST(CostModelTest, LatencyIncludesPropagationAndSerialization) {
  ConfigurationManager mgr;
  NetworkEstimate net = Lan();
  const double us = mgr.EstimateLatencyMicros(ModuleGraphSpec{}, net);
  EXPECT_GT(us, net.rtt_us / 2.0);             // at least propagation
  EXPECT_GT(us, 8.0 * 8192 / 100.0 - 1);       // plus ~655us serialization
}

TEST(CostModelTest, MoreModulesMoreLatency) {
  ConfigurationManager mgr;
  ModuleGraphSpec shallow;
  shallow.chain.push_back({mechanisms::kCrc32, {}});
  ModuleGraphSpec deep = shallow;
  deep.chain.push_back({mechanisms::kXorCipher, {}});
  deep.chain.push_back({mechanisms::kSequencer, {}});
  EXPECT_GT(mgr.EstimateLatencyMicros(deep, Lan()),
            mgr.EstimateLatencyMicros(shallow, Lan()));
}

}  // namespace
}  // namespace cool::dacapo
