// ModuleChain runtime: thread-per-module wiring, injection at both ends,
// control routing, shutdown.

#include "dacapo/runtime.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/blocking_queue.h"
#include "common/thread.h"
#include "dacapo/modules.h"

namespace cool::dacapo {
namespace {

// Bottom "T" stand-in: loops every down packet straight back up, as if the
// peer echoed it instantly.
class LoopbackBottomModule : public Module {
 public:
  std::string_view name() const override { return "loopback_bottom"; }
  void HandleData(Direction dir, PacketPtr pkt, ModulePort& port) override {
    if (dir == Direction::kDown) port.ForwardUp(std::move(pkt));
  }
};

// Bottom module that counts what reaches it (packets leaving the node).
class SinkBottomModule : public Module {
 public:
  explicit SinkBottomModule(BlockingQueue<std::vector<std::uint8_t>>* out)
      : out_(out) {}
  std::string_view name() const override { return "sink_bottom"; }
  void HandleData(Direction dir, PacketPtr pkt, ModulePort&) override {
    if (dir != Direction::kDown) return;
    const auto data = pkt->Data();
    out_->Push(std::vector<std::uint8_t>(data.begin(), data.end()));
  }

 private:
  BlockingQueue<std::vector<std::uint8_t>>* out_;
};

std::shared_ptr<PacketArena> MakeArena() {
  return std::make_shared<PacketArena>(64, 256);
}

PacketPtr Make(PacketArena& arena, std::initializer_list<std::uint8_t> b) {
  auto p = arena.Make(std::vector<std::uint8_t>(b));
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

TEST(ModuleChainTest, EmptyChainRefusesToStart) {
  ModuleChain chain("t", {}, MakeArena());
  EXPECT_EQ(chain.Start().code(), ErrorCode::kFailedPrecondition);
}

TEST(ModuleChainTest, DoubleStartFails) {
  std::vector<std::unique_ptr<Module>> mods;
  mods.push_back(std::make_unique<DummyModule>());
  ModuleChain chain("t", std::move(mods), MakeArena());
  ASSERT_TRUE(chain.Start().ok());
  EXPECT_EQ(chain.Start().code(), ErrorCode::kFailedPrecondition);
  chain.Stop();
}

TEST(ModuleChainTest, DownTraffigTraversesAllModules) {
  auto arena = MakeArena();
  BlockingQueue<std::vector<std::uint8_t>> sink;
  std::vector<std::unique_ptr<Module>> mods;
  auto a = std::make_unique<AppAModule>();
  AppAModule* a_raw = a.get();
  mods.push_back(std::move(a));
  for (int i = 0; i < 5; ++i) mods.push_back(std::make_unique<DummyModule>());
  mods.push_back(std::make_unique<SinkBottomModule>(&sink));

  ModuleChain chain("t", std::move(mods), arena);
  ASSERT_TRUE(chain.Start().ok());
  ASSERT_TRUE(chain.InjectDown(Make(*arena, {1, 2, 3})));

  auto got = sink.PopFor(seconds(2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(a_raw->snapshot().packets_tx, 1u);
  chain.Stop();
}

TEST(ModuleChainTest, UpTrafficReachesAModule) {
  auto arena = MakeArena();
  std::vector<std::unique_ptr<Module>> mods;
  auto a = std::make_unique<AppAModule>();
  AppAModule* a_raw = a.get();
  mods.push_back(std::move(a));
  mods.push_back(std::make_unique<DummyModule>());

  ModuleChain chain("t", std::move(mods), arena);
  ASSERT_TRUE(chain.Start().ok());
  chain.InjectUp(Make(*arena, {5, 6}));

  auto msg = a_raw->Receive(seconds(2));
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(*msg, (std::vector<std::uint8_t>{5, 6}));
  chain.Stop();
}

TEST(ModuleChainTest, ChecksumPairAcrossLoopback) {
  // A -> crc32 -> loopback-bottom: the same module verifies what it
  // generated (exercises real threaded hand-off both directions).
  auto arena = MakeArena();
  std::vector<std::unique_ptr<Module>> mods;
  auto a = std::make_unique<AppAModule>();
  AppAModule* a_raw = a.get();
  mods.push_back(std::move(a));
  mods.push_back(
      std::make_unique<ChecksumModule>(ChecksumModule::Algorithm::kCrc32));
  mods.push_back(std::make_unique<LoopbackBottomModule>());

  ModuleChain chain("t", std::move(mods), arena);
  ASSERT_TRUE(chain.Start().ok());
  ASSERT_TRUE(chain.InjectDown(Make(*arena, {'a', 'b'})));
  auto msg = a_raw->Receive(seconds(2));
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(*msg, (std::vector<std::uint8_t>{'a', 'b'}));
  chain.Stop();
}

TEST(ModuleChainTest, ControlErrorReachesSink) {
  auto arena = MakeArena();
  std::vector<std::unique_ptr<Module>> mods;
  mods.push_back(std::make_unique<DummyModule>());
  ModuleChain chain("t", std::move(mods), arena);

  BlockingQueue<ControlMsg> control;
  chain.SetControlSink([&](ControlMsg msg) { control.Push(std::move(msg)); });
  ASSERT_TRUE(chain.Start().ok());

  ControlMsg err;
  err.kind = ControlMsg::Kind::kError;
  err.text = "boom";
  chain.InjectControlUp(err);

  auto got = control.PopFor(seconds(2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->text, "boom");
  chain.Stop();
}

TEST(ModuleChainTest, UpSinkReceivesPastTopModule) {
  auto arena = MakeArena();
  std::vector<std::unique_ptr<Module>> mods;
  mods.push_back(std::make_unique<DummyModule>());  // top forwards up
  ModuleChain chain("t", std::move(mods), arena);

  BlockingQueue<std::vector<std::uint8_t>> sink;
  chain.SetUpSink([&](PacketPtr pkt) {
    const auto data = pkt->Data();
    sink.Push(std::vector<std::uint8_t>(data.begin(), data.end()));
  });
  ASSERT_TRUE(chain.Start().ok());
  chain.InjectUp(Make(*arena, {0xEE}));
  auto got = sink.PopFor(seconds(2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ((*got)[0], 0xEE);
  chain.Stop();
}

TEST(ModuleChainTest, StopIsIdempotentAndInjectFailsAfter) {
  auto arena = MakeArena();
  std::vector<std::unique_ptr<Module>> mods;
  mods.push_back(std::make_unique<DummyModule>());
  ModuleChain chain("t", std::move(mods), arena);
  ASSERT_TRUE(chain.Start().ok());
  chain.Stop();
  chain.Stop();
  EXPECT_FALSE(chain.InjectDown(Make(*arena, {1})));
}

TEST(ModuleChainTest, ManyPacketsThroughDeepChainInOrder) {
  auto arena = std::make_shared<PacketArena>(256, 64);
  BlockingQueue<std::vector<std::uint8_t>> sink;
  std::vector<std::unique_ptr<Module>> mods;
  mods.push_back(std::make_unique<AppAModule>());
  for (int i = 0; i < 20; ++i) {
    mods.push_back(std::make_unique<DummyModule>());
  }
  mods.push_back(std::make_unique<SinkBottomModule>(&sink));
  ModuleChain chain("deep", std::move(mods), arena);
  ASSERT_TRUE(chain.Start().ok());

  constexpr int kCount = 200;
  cool::Thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      auto p = arena->Make(std::vector<std::uint8_t>{
          static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i >> 8)});
      while (!p.ok()) {  // arena backpressure
        std::this_thread::sleep_for(microseconds(100));
        p = arena->Make(std::vector<std::uint8_t>{
            static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i >> 8)});
      }
      ASSERT_TRUE(chain.InjectDown(std::move(p).value()));
    }
  });

  for (int i = 0; i < kCount; ++i) {
    auto got = sink.PopFor(seconds(5));
    ASSERT_TRUE(got.has_value()) << "packet " << i << " missing";
    const int value = (*got)[0] | (*got)[1] << 8;
    EXPECT_EQ(value, i);  // FIFO through the whole chain
  }
  producer.join();
  chain.Stop();
}

TEST(ModuleChainTest, DestructorStopsCleanly) {
  auto arena = MakeArena();
  std::vector<std::unique_ptr<Module>> mods;
  mods.push_back(std::make_unique<AppAModule>());
  mods.push_back(std::make_unique<DummyModule>());
  auto chain = std::make_unique<ModuleChain>("t", std::move(mods), arena);
  ASSERT_TRUE(chain->Start().ok());
  chain->InjectUp(Make(*arena, {1}));
  chain.reset();  // must join all threads without hanging
  SUCCEED();
}

}  // namespace
}  // namespace cool::dacapo
