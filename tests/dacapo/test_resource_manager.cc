#include "dacapo/resource_manager.h"

#include <gtest/gtest.h>

namespace cool::dacapo {
namespace {

ResourceManager::Budget SmallBudget() {
  ResourceManager::Budget b;
  b.bandwidth_kbps = 10'000;
  b.max_connections = 2;
  b.packet_memory_bytes = 1024;
  return b;
}

qos::ProtocolRequirements NeedKbps(corba::ULong kbps) {
  qos::ProtocolRequirements req;
  req.min_throughput_kbps = kbps;
  return req;
}

TEST(ResourceManagerTest, AdmitsWithinBudget) {
  ResourceManager mgr(SmallBudget());
  auto r = mgr.Admit(NeedKbps(6000), 512);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(mgr.reserved_bandwidth_kbps(), 6000u);
  EXPECT_EQ(mgr.active_connections(), 1u);
  EXPECT_EQ(mgr.reserved_memory_bytes(), 512u);
}

TEST(ResourceManagerTest, BandwidthOversubscriptionRefused) {
  ResourceManager mgr(SmallBudget());
  auto r1 = mgr.Admit(NeedKbps(6000), 0);
  ASSERT_TRUE(r1.ok());
  auto r2 = mgr.Admit(NeedKbps(6000), 0);
  EXPECT_EQ(r2.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(mgr.active_connections(), 1u);  // failed admit reserves nothing
}

TEST(ResourceManagerTest, ConnectionSlotsEnforced) {
  ResourceManager mgr(SmallBudget());
  auto r1 = mgr.Admit(NeedKbps(0), 0);
  auto r2 = mgr.Admit(NeedKbps(0), 0);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(mgr.Admit(NeedKbps(0), 0).status().code(),
            ErrorCode::kResourceExhausted);
}

TEST(ResourceManagerTest, MemoryBudgetEnforced) {
  ResourceManager mgr(SmallBudget());
  EXPECT_EQ(mgr.Admit(NeedKbps(0), 2048).status().code(),
            ErrorCode::kResourceExhausted);
}

TEST(ResourceManagerTest, ReleaseOnDestruction) {
  ResourceManager mgr(SmallBudget());
  {
    auto r = mgr.Admit(NeedKbps(8000), 100);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(mgr.reserved_bandwidth_kbps(), 8000u);
  }
  EXPECT_EQ(mgr.reserved_bandwidth_kbps(), 0u);
  EXPECT_EQ(mgr.active_connections(), 0u);
  EXPECT_EQ(mgr.reserved_memory_bytes(), 0u);
  // Freed capacity is admittable again.
  EXPECT_TRUE(mgr.Admit(NeedKbps(9000), 0).ok());
}

TEST(ResourceManagerTest, ExplicitReleaseIsIdempotent) {
  ResourceManager mgr(SmallBudget());
  auto r = mgr.Admit(NeedKbps(1000), 0);
  ASSERT_TRUE(r.ok());
  r->Release();
  r->Release();
  EXPECT_EQ(mgr.reserved_bandwidth_kbps(), 0u);
  EXPECT_FALSE(r->active());
}

TEST(ResourceManagerTest, MoveTransfersOwnership) {
  ResourceManager mgr(SmallBudget());
  auto r = mgr.Admit(NeedKbps(1000), 0);
  ASSERT_TRUE(r.ok());
  ResourceManager::Reservation moved = std::move(r).value();
  EXPECT_TRUE(moved.active());
  EXPECT_EQ(mgr.reserved_bandwidth_kbps(), 1000u);
  moved.Release();
  EXPECT_EQ(mgr.reserved_bandwidth_kbps(), 0u);
}

TEST(ResourceManagerTest, MoveAssignReleasesPrevious) {
  ResourceManager mgr(SmallBudget());
  auto r1 = mgr.Admit(NeedKbps(4000), 0);
  auto r2 = mgr.Admit(NeedKbps(5000), 0);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  *r1 = std::move(*r2);  // r1's 4000 released, now holds 5000
  EXPECT_EQ(mgr.reserved_bandwidth_kbps(), 5000u);
}

TEST(ResourceManagerTest, BestEffortReservesOnlyASlot) {
  ResourceManager mgr(SmallBudget());
  auto r = mgr.Admit(qos::ProtocolRequirements{}, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(mgr.reserved_bandwidth_kbps(), 0u);
  EXPECT_EQ(mgr.active_connections(), 1u);
}

TEST(ResourceManagerTest, ExactBudgetBoundaryAdmits) {
  ResourceManager mgr(SmallBudget());
  EXPECT_TRUE(mgr.Admit(NeedKbps(10'000), 1024).ok());
}

}  // namespace
}  // namespace cool::dacapo
