// Batch operations of the Mailbox (PushUpBatch / PushDownBatch / PopBatch):
// priority ordering, FIFO within a class, backpressure accounting, close
// behaviour, and a producer/consumer stress pairing batched pushes with a
// batched popper (run under TSan in CI).
#include "dacapo/mailbox.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/thread.h"

namespace cool::dacapo {
namespace {

PacketPtr MakePacket(PacketArena& arena, std::uint8_t tag) {
  auto p = arena.Make(std::vector<std::uint8_t>{tag});
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

ControlMsg MakeControl(std::string text) {
  ControlMsg msg;
  msg.kind = ControlMsg::Kind::kError;
  msg.text = std::move(text);
  return msg;
}

class MailboxBatchTest : public ::testing::Test {
 protected:
  PacketArena arena_{256, 64};
};

TEST_F(MailboxBatchTest, EmptyTimesOut) {
  Mailbox mb;
  std::vector<Mailbox::PopResult> out;
  EXPECT_EQ(mb.PopBatch(true, 8, milliseconds(20), out),
            Mailbox::BatchStatus::kTimeout);
  EXPECT_TRUE(out.empty());
}

TEST_F(MailboxBatchTest, ZeroMaxIsImmediateTimeout) {
  Mailbox mb;
  mb.PushUp(MakePacket(arena_, 1));
  std::vector<Mailbox::PopResult> out;
  EXPECT_EQ(mb.PopBatch(true, 0, seconds(10), out),
            Mailbox::BatchStatus::kTimeout);
  EXPECT_TRUE(out.empty());
}

TEST_F(MailboxBatchTest, PriorityControlThenUpThenDown) {
  Mailbox mb;
  ASSERT_TRUE(mb.PushDown(MakePacket(arena_, 30)));
  mb.PushUp(MakePacket(arena_, 20));
  mb.PushControl(Direction::kUp, MakeControl("c"));

  std::vector<Mailbox::PopResult> out;
  ASSERT_EQ(mb.PopBatch(true, 8, milliseconds(20), out),
            Mailbox::BatchStatus::kItems);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].kind, Mailbox::PopResult::Kind::kControl);
  EXPECT_EQ(out[0].control.text, "c");
  ASSERT_EQ(out[1].kind, Mailbox::PopResult::Kind::kData);
  EXPECT_EQ(out[1].data.dir, Direction::kUp);
  EXPECT_EQ(out[1].data.pkt->Data()[0], 20);
  ASSERT_EQ(out[2].kind, Mailbox::PopResult::Kind::kData);
  EXPECT_EQ(out[2].data.dir, Direction::kDown);
  EXPECT_EQ(out[2].data.pkt->Data()[0], 30);
}

TEST_F(MailboxBatchTest, FifoWithinEachClass) {
  Mailbox mb;
  std::vector<PacketPtr> ups;
  for (std::uint8_t i = 0; i < 5; ++i) ups.push_back(MakePacket(arena_, i));
  mb.PushUpBatch(ups);
  EXPECT_TRUE(ups.empty());
  std::vector<PacketPtr> downs;
  for (std::uint8_t i = 10; i < 15; ++i) {
    downs.push_back(MakePacket(arena_, i));
  }
  ASSERT_TRUE(mb.PushDownBatch(downs));
  EXPECT_TRUE(downs.empty());

  std::vector<Mailbox::PopResult> out;
  ASSERT_EQ(mb.PopBatch(true, 64, milliseconds(20), out),
            Mailbox::BatchStatus::kItems);
  ASSERT_EQ(out.size(), 10u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].data.dir, Direction::kUp);
    EXPECT_EQ(out[i].data.pkt->Data()[0], static_cast<std::uint8_t>(i));
  }
  for (std::size_t i = 5; i < 10; ++i) {
    EXPECT_EQ(out[i].data.dir, Direction::kDown);
    EXPECT_EQ(out[i].data.pkt->Data()[0], static_cast<std::uint8_t>(5 + i));
  }
}

TEST_F(MailboxBatchTest, MaxNTruncatesAndKeepsRemainder) {
  Mailbox mb;
  std::vector<PacketPtr> ups;
  for (std::uint8_t i = 0; i < 6; ++i) ups.push_back(MakePacket(arena_, i));
  mb.PushUpBatch(ups);

  std::vector<Mailbox::PopResult> out;
  ASSERT_EQ(mb.PopBatch(true, 4, milliseconds(20), out),
            Mailbox::BatchStatus::kItems);
  ASSERT_EQ(out.size(), 4u);
  ASSERT_EQ(mb.PopBatch(true, 4, milliseconds(20), out),
            Mailbox::BatchStatus::kItems);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].data.pkt->Data()[0], 4);
  EXPECT_EQ(out[1].data.pkt->Data()[0], 5);
}

TEST_F(MailboxBatchTest, DownGatedByAcceptFlag) {
  Mailbox mb;
  ASSERT_TRUE(mb.PushDown(MakePacket(arena_, 1)));
  mb.PushUp(MakePacket(arena_, 2));

  std::vector<Mailbox::PopResult> out;
  ASSERT_EQ(mb.PopBatch(false, 8, milliseconds(20), out),
            Mailbox::BatchStatus::kItems);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].data.dir, Direction::kUp);

  ASSERT_EQ(mb.PopBatch(true, 8, milliseconds(20), out),
            Mailbox::BatchStatus::kItems);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].data.dir, Direction::kDown);
}

// Draining a batch must release every blocked producer: one space_ wakeup
// per drained down-item, not one per batch.
TEST_F(MailboxBatchTest, BatchDrainReleasesAllBlockedProducers) {
  Mailbox mb(/*down_capacity=*/2);
  ASSERT_TRUE(mb.PushDown(MakePacket(arena_, 0)));
  ASSERT_TRUE(mb.PushDown(MakePacket(arena_, 1)));

  std::atomic<int> delivered{0};
  std::vector<Thread> producers;
  for (int i = 0; i < 2; ++i) {
    producers.emplace_back([this, &mb, &delivered, i](std::stop_token) {
      ASSERT_TRUE(mb.PushDown(MakePacket(arena_, static_cast<std::uint8_t>(2 + i))));
      delivered.fetch_add(1);
    });
  }
  PreciseSleep(milliseconds(20));
  EXPECT_EQ(delivered.load(), 0);  // both producers blocked on the full queue

  // One batched pop drains both slots; both producers must proceed.
  std::vector<Mailbox::PopResult> out;
  ASSERT_EQ(mb.PopBatch(true, 64, milliseconds(100), out),
            Mailbox::BatchStatus::kItems);
  EXPECT_EQ(out.size(), 2u);
  for (auto& t : producers) t.join();
  EXPECT_EQ(delivered.load(), 2);
  EXPECT_EQ(mb.down_size(), 2u);
}

TEST_F(MailboxBatchTest, CloseDrainsThenReportsClosed) {
  Mailbox mb;
  mb.PushUp(MakePacket(arena_, 1));
  mb.Close();  // queued items are dropped by Close
  std::vector<Mailbox::PopResult> out;
  EXPECT_EQ(mb.PopBatch(true, 8, milliseconds(20), out),
            Mailbox::BatchStatus::kClosed);
  EXPECT_TRUE(out.empty());
}

TEST_F(MailboxBatchTest, CloseWhileBatchedPopBlocks) {
  Mailbox mb;
  Thread closer([&mb](std::stop_token) {
    PreciseSleep(milliseconds(30));
    mb.Close();
  });
  std::vector<Mailbox::PopResult> out;
  EXPECT_EQ(mb.PopBatch(true, 8, seconds(10), out),
            Mailbox::BatchStatus::kClosed);
  closer.join();
}

TEST_F(MailboxBatchTest, CloseWhilePushDownBatchBlocked) {
  Mailbox mb(/*down_capacity=*/1);
  ASSERT_TRUE(mb.PushDown(MakePacket(arena_, 0)));
  Thread closer([&mb](std::stop_token) {
    PreciseSleep(milliseconds(30));
    mb.Close();
  });
  std::vector<PacketPtr> batch;
  batch.push_back(MakePacket(arena_, 1));
  batch.push_back(MakePacket(arena_, 2));
  EXPECT_FALSE(mb.PushDownBatch(batch));  // woke up into the closed mailbox
  EXPECT_TRUE(batch.empty());
  closer.join();
  EXPECT_EQ(arena_.in_flight(), 0u);  // every packet returned to the arena
}

TEST_F(MailboxBatchTest, PushBatchesOnClosedMailboxDropPackets) {
  Mailbox mb;
  mb.Close();
  std::vector<PacketPtr> ups;
  ups.push_back(MakePacket(arena_, 1));
  mb.PushUpBatch(ups);
  EXPECT_TRUE(ups.empty());
  std::vector<PacketPtr> downs;
  downs.push_back(MakePacket(arena_, 2));
  EXPECT_FALSE(mb.PushDownBatch(downs));
  EXPECT_TRUE(downs.empty());
  EXPECT_EQ(arena_.in_flight(), 0u);
}

// Stress: batched producers in both directions against one batched
// consumer, with a bounded down queue forcing backpressure. Exercises the
// space_/cv_ interplay of PushDownBatch and PopBatch under TSan.
TEST_F(MailboxBatchTest, StressBatchedProducersBatchedConsumer) {
  constexpr int kPerProducer = 400;
  constexpr int kProducers = 2;  // one up, one down
  // The up queue is unbounded, so in the worst case every up packet is in
  // flight at once; size the arena for that plus the bounded down window.
  PacketArena arena(kPerProducer * kProducers + 32, 64);
  Mailbox mb(/*down_capacity=*/8);

  Thread up_producer([&arena, &mb](std::stop_token) {
    std::vector<PacketPtr> batch;
    for (int i = 0; i < kPerProducer; ++i) {
      batch.push_back(MakePacket(arena, static_cast<std::uint8_t>(i)));
      if (batch.size() == 7 || i + 1 == kPerProducer) mb.PushUpBatch(batch);
    }
  });
  Thread down_producer([&arena, &mb](std::stop_token) {
    std::vector<PacketPtr> batch;
    for (int i = 0; i < kPerProducer; ++i) {
      batch.push_back(MakePacket(arena, static_cast<std::uint8_t>(i)));
      if (batch.size() == 5 || i + 1 == kPerProducer) {
        ASSERT_TRUE(mb.PushDownBatch(batch));
      }
    }
  });

  int got_up = 0;
  int got_down = 0;
  std::uint32_t next_up = 0;
  std::uint32_t next_down = 0;
  std::vector<Mailbox::PopResult> out;
  while (got_up + got_down < kPerProducer * kProducers) {
    const auto st = mb.PopBatch(true, 16, seconds(10), out);
    ASSERT_EQ(st, Mailbox::BatchStatus::kItems);
    for (auto& r : out) {
      ASSERT_EQ(r.kind, Mailbox::PopResult::Kind::kData);
      // FIFO per class: tags cycle 0..255 in push order.
      if (r.data.dir == Direction::kUp) {
        EXPECT_EQ(r.data.pkt->Data()[0],
                  static_cast<std::uint8_t>(next_up++));
        ++got_up;
      } else {
        EXPECT_EQ(r.data.pkt->Data()[0],
                  static_cast<std::uint8_t>(next_down++));
        ++got_down;
      }
    }
  }
  up_producer.join();
  down_producer.join();
  out.clear();  // release the last batch back to the arena
  EXPECT_EQ(got_up, kPerProducer);
  EXPECT_EQ(got_down, kPerProducer);
  EXPECT_EQ(arena.in_flight(), 0u);
}

// PacketCache allocations interleaved with direct arena traffic: the cache
// must hand out valid packets and flush its remainder back on destruction.
TEST_F(MailboxBatchTest, PacketCacheRefillsAndFlushes) {
  {
    PacketCache cache(arena_, /*batch_size=*/8);
    std::vector<PacketPtr> held;
    for (int i = 0; i < 20; ++i) {
      auto p = cache.Allocate();
      ASSERT_TRUE(p.ok());
      held.push_back(std::move(p).value());
    }
    // 20 live + up to 4 cached free packets are away from the arena.
    EXPECT_GE(arena_.in_flight(), 20u);
    held.clear();
  }
  EXPECT_EQ(arena_.in_flight(), 0u);  // destruction flushed the cache
}

TEST_F(MailboxBatchTest, PacketCacheExhaustionSurfacesAsResourceExhausted) {
  PacketArena tiny(2, 64);
  PacketCache cache(tiny, /*batch_size=*/8);
  auto a = cache.Allocate();
  auto b = cache.Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = cache.Allocate();
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), ErrorCode::kResourceExhausted);
}

}  // namespace
}  // namespace cool::dacapo
