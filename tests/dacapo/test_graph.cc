#include "dacapo/graph.h"

#include <gtest/gtest.h>

#include "dacapo/modules.h"

namespace cool::dacapo {
namespace {

TEST(MechanismSpecTest, ParamOrFallsBack) {
  MechanismSpec m;
  m.name = "irq";
  m.params["rto_us"] = 5000;
  EXPECT_EQ(m.ParamOr("rto_us", 1), 5000);
  EXPECT_EQ(m.ParamOr("missing", 42), 42);
}

TEST(MechanismSpecTest, ToStringIncludesParams) {
  MechanismSpec m;
  m.name = "go_back_n";
  m.params["window"] = 8;
  EXPECT_EQ(m.ToString(), "go_back_n(window=8)");
}

TEST(ModuleGraphSpecTest, SerializeDeserializeRoundTrip) {
  ModuleGraphSpec spec;
  MechanismSpec a;
  a.name = "xor_cipher";
  a.params["key"] = 123456789;
  MechanismSpec b;
  b.name = "go_back_n";
  b.params["window"] = 16;
  b.params["rto_us"] = 4000;
  spec.chain = {a, b};

  auto bytes = spec.Serialize();
  auto decoded = ModuleGraphSpec::Deserialize(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, spec);
}

TEST(ModuleGraphSpecTest, EmptyGraphRoundTrips) {
  ModuleGraphSpec spec;
  auto decoded = ModuleGraphSpec::Deserialize(spec.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->chain.empty());
}

TEST(ModuleGraphSpecTest, NegativeParamsSurvive) {
  ModuleGraphSpec spec;
  MechanismSpec m;
  m.name = "xor_cipher";
  m.params["key"] = -77;
  spec.chain = {m};
  auto decoded = ModuleGraphSpec::Deserialize(spec.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->chain[0].params.at("key"), -77);
}

TEST(ModuleGraphSpecTest, GarbageRejected) {
  std::vector<corba::Octet> garbage = {0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3};
  EXPECT_FALSE(ModuleGraphSpec::Deserialize(garbage).ok());
}

TEST(ModuleGraphSpecTest, ToStringShowsChainOrder) {
  ModuleGraphSpec spec;
  spec.chain.push_back({"crc16", {}});
  spec.chain.push_back({"irq", {}});
  EXPECT_EQ(spec.ToString(), "[crc16 -> irq]");
}

TEST(RegistryTest, BuiltinsPresent) {
  auto& reg = MechanismRegistry::Global();
  for (const char* name :
       {mechanisms::kDummy, mechanisms::kParity, mechanisms::kCrc16,
        mechanisms::kCrc32, mechanisms::kXorCipher, mechanisms::kSequencer,
        mechanisms::kIrq, mechanisms::kGoBackN, mechanisms::kRateLimiter}) {
    EXPECT_NE(reg.Properties(name), nullptr) << name;
  }
}

TEST(RegistryTest, PropertiesReflectFunctions) {
  auto& reg = MechanismRegistry::Global();
  EXPECT_EQ(reg.Properties(mechanisms::kCrc32)->function,
            ProtocolFunction::kErrorDetection);
  EXPECT_EQ(reg.Properties(mechanisms::kIrq)->function,
            ProtocolFunction::kRetransmission);
  EXPECT_TRUE(reg.Properties(mechanisms::kIrq)->window_limited);
  EXPECT_EQ(reg.Properties(mechanisms::kIrq)->window_packets, 1u);
  EXPECT_TRUE(reg.Properties(mechanisms::kXorCipher)->provides_encryption);
  EXPECT_TRUE(reg.Properties(mechanisms::kGoBackN)->provides_ordering);
}

TEST(RegistryTest, UnknownMechanismFails) {
  auto& reg = MechanismRegistry::Global();
  EXPECT_EQ(reg.Properties("teleport"), nullptr);
  MechanismSpec m;
  m.name = "teleport";
  EXPECT_EQ(reg.Create(m).status().code(), ErrorCode::kNotFound);
}

TEST(RegistryTest, CreateAppliesParams) {
  auto& reg = MechanismRegistry::Global();
  MechanismSpec m;
  m.name = mechanisms::kIrq;
  m.params["rto_us"] = 1234;
  auto module = reg.Create(m);
  ASSERT_TRUE(module.ok());
  EXPECT_EQ((*module)->name(), "irq");
  EXPECT_EQ((*module)->TickInterval(), microseconds(617));  // rto / 2
}

TEST(RegistryTest, CreateChainInstantiatesAllOrNothing) {
  auto& reg = MechanismRegistry::Global();
  ModuleGraphSpec good;
  good.chain.push_back({mechanisms::kCrc16, {}});
  good.chain.push_back({mechanisms::kSequencer, {}});
  auto modules = reg.CreateChain(good);
  ASSERT_TRUE(modules.ok());
  EXPECT_EQ(modules->size(), 2u);

  ModuleGraphSpec bad = good;
  bad.chain.push_back({"bogus", {}});
  EXPECT_FALSE(reg.CreateChain(bad).ok());
}

TEST(RegistryTest, DuplicateRegistrationRejected) {
  auto& reg = MechanismRegistry::Global();
  const Status s = reg.Register(
      mechanisms::kDummy, MechanismProperties{},
      [](const MechanismSpec&) -> Result<std::unique_ptr<Module>> {
        return Status(InternalError("unused"));
      });
  EXPECT_EQ(s.code(), ErrorCode::kAlreadyExists);
}

TEST(RegistryTest, CustomMechanismRegistersAndCreates) {
  auto& reg = MechanismRegistry::Global();
  MechanismProperties props;
  props.function = ProtocolFunction::kForwarding;
  ASSERT_TRUE(reg.Register("test_custom_fwd", props,
                           [](const MechanismSpec&)
                               -> Result<std::unique_ptr<Module>> {
                             return std::unique_ptr<Module>(
                                 std::make_unique<DummyModule>());
                           })
                  .ok());
  MechanismSpec m;
  m.name = "test_custom_fwd";
  EXPECT_TRUE(reg.Create(m).ok());
  EXPECT_FALSE(reg.Names().empty());
}

}  // namespace
}  // namespace cool::dacapo
