// Shutdown races: sessions are torn down while packets are still in
// flight, from another thread, or concurrently with a reconfiguration.
// These are the teardown scenarios the concurrency model (DESIGN.md) has
// to survive; CI runs them under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/thread.h"
#include "dacapo/session.h"

namespace cool::dacapo {
namespace {

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = microseconds(100);
  return link;
}

ModuleGraphSpec GraphOf(std::initializer_list<const char*> names) {
  ModuleGraphSpec spec;
  for (const char* n : names) spec.chain.push_back({n, {}});
  return spec;
}

std::vector<std::uint8_t> Msg(std::string_view s) {
  return {s.begin(), s.end()};
}

struct Rig {
  explicit Rig(std::uint16_t port) : net(QuickLink()), port_(port),
                                     acceptor(&net, {"server", port}) {
    EXPECT_TRUE(acceptor.Listen().ok());
  }

  std::pair<std::unique_ptr<Session>, std::unique_ptr<Session>> Establish(
      ChannelOptions options) {
    Result<std::unique_ptr<Session>> server_side(
        Status(InternalError("unset")));
    Thread accept_thread([&] {
      server_side = acceptor.Accept(AppAModule::DeliveryMode::kQueue);
    });
    Connector connector(&net, "client");
    auto client_side = connector.Connect({"server", port_}, options);
    accept_thread.join();
    EXPECT_TRUE(client_side.ok()) << client_side.status();
    EXPECT_TRUE(server_side.ok()) << server_side.status();
    if (!client_side.ok() || !server_side.ok()) return {};
    return {std::move(client_side).value(), std::move(server_side).value()};
  }

  sim::Network net;
  std::uint16_t port_;
  Acceptor acceptor;
};

// Receiver closes (then destroys) its session while the sender is still
// pumping packets through a full module graph.
TEST(SessionShutdownRaceTest, CloseWhilePeerIsSending) {
  for (int round = 0; round < 5; ++round) {
    Rig rig(6100);
    ChannelOptions options;
    options.graph = GraphOf({mechanisms::kSequencer, mechanisms::kCrc32});
    auto [client, server] = rig.Establish(options);
    ASSERT_NE(client, nullptr);

    std::atomic<bool> stop{false};
    Thread sender([&client, &stop](std::stop_token) {
      int i = 0;
      while (!stop.load()) {
        // Errors are expected once the peer is gone; sends must fail
        // cleanly, not crash or hang.
        if (!client->Send(Msg("frame" + std::to_string(i++))).ok()) return;
      }
    });

    // Let some traffic flow, then yank the receiving side mid-stream.
    (void)server->Receive(milliseconds(50));
    server->Close();
    server.reset();

    stop = true;
    sender.join();
    client->Close();
  }
}

// Both ends close simultaneously while both are sending.
TEST(SessionShutdownRaceTest, BothEndsCloseConcurrently) {
  for (int round = 0; round < 5; ++round) {
    Rig rig(6200);
    ChannelOptions options;
    options.graph = GraphOf({mechanisms::kCrc16});
    auto [client, server] = rig.Establish(options);
    ASSERT_NE(client, nullptr);

    std::vector<Thread> threads;
    for (Session* s : {client.get(), server.get()}) {
      threads.emplace_back([s] {
        for (int i = 0; i < 50; ++i) {
          if (!s->Send(Msg("x")).ok()) break;
        }
        s->Close();
      });
    }
    threads.clear();  // join
    client.reset();
    server.reset();
  }
}

// Close() racing Receive() on the same session from another thread: the
// blocked receive must wake with an error, never hang past its deadline.
TEST(SessionShutdownRaceTest, CloseWakesBlockedReceive) {
  Rig rig(6300);
  auto [client, server] = rig.Establish(ChannelOptions{});
  ASSERT_NE(client, nullptr);

  Thread closer([&server](std::stop_token) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server->Close();
  });
  const Stopwatch sw;
  auto got = server->Receive(seconds(30));
  EXPECT_FALSE(got.ok());
  EXPECT_LT(sw.Elapsed(), seconds(10));  // woke via Close, not deadline
  closer.join();
  client->Close();
}

// Reconfiguration racing shutdown: one thread drives Reconfigure while the
// peer tears the session down. Either outcome (reconfigured, or a clean
// error) is acceptable; lost packets are not the subject here — absence of
// data races and deadlocks is.
TEST(SessionShutdownRaceTest, ReconfigureRacesPeerShutdown) {
  for (int round = 0; round < 5; ++round) {
    Rig rig(6400);
    ChannelOptions options;
    options.graph = GraphOf({mechanisms::kCrc16});
    auto [client, server] = rig.Establish(options);
    ASSERT_NE(client, nullptr);

    Thread reconfigurer([&client](std::stop_token) {
      (void)client->Reconfigure(
          GraphOf({mechanisms::kXorCipher, mechanisms::kCrc32}));
    });
    Thread killer([&server](std::stop_token) {
      server->Close();
      server.reset();
    });
    reconfigurer.join();
    killer.join();
    client->Close();
  }
}

}  // namespace
}  // namespace cool::dacapo
