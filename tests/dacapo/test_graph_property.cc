// Property sweep for the paper's composition claim: "The unified module
// interface allows free and unconstrained combination of modules to
// protocols." Random mechanism subsets in random order must still deliver
// every message intact and in order over a reliable T service — and over a
// lossy datagram service whenever the graph contains an ARQ mechanism.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "common/thread.h"
#include "dacapo/session.h"

namespace cool::dacapo {
namespace {

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = microseconds(100);
  return link;
}

// Candidate mechanisms with safe parameters.
MechanismSpec Candidate(std::size_t index) {
  switch (index) {
    case 0: {
      MechanismSpec m;
      m.name = mechanisms::kXorCipher;
      m.params["key"] = 1234;
      return m;
    }
    case 1:
      return {mechanisms::kSequencer, {}};
    case 2: {
      MechanismSpec m;
      m.name = mechanisms::kIrq;
      m.params["rto_us"] = 3000;
      m.params["max_retries"] = 200;
      return m;
    }
    case 3: {
      MechanismSpec m;
      m.name = mechanisms::kGoBackN;
      m.params["rto_us"] = 3000;
      m.params["window"] = 8;
      m.params["max_retries"] = 200;
      return m;
    }
    case 4:
      return {mechanisms::kCrc16, {}};
    case 5:
      return {mechanisms::kCrc32, {}};
    case 6:
      return {mechanisms::kParity, {}};
    case 7: {
      MechanismSpec m;
      m.name = mechanisms::kFragment;
      m.params["mtu"] = 700;
      return m;
    }
    case 8: {
      MechanismSpec m;
      m.name = mechanisms::kRateLimiter;
      m.params["rate_bytes_per_sec"] = 100'000'000;
      m.params["burst_bytes"] = 1 << 20;
      return m;
    }
    default:
      return {mechanisms::kDummy, {}};
  }
}

ModuleGraphSpec RandomGraph(Rng& rng, bool force_arq) {
  ModuleGraphSpec spec;
  std::vector<std::size_t> picks;
  const std::size_t count = rng.NextBelow(5);  // 0..4 mechanisms
  bool has_arq = false;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t pick = rng.NextBelow(10);
    if (pick == 2 || pick == 3) {
      if (has_arq) continue;  // one ARQ instance per graph
      has_arq = true;
    }
    picks.push_back(pick);
  }
  if (force_arq && !has_arq) {
    picks.insert(picks.begin() + static_cast<std::ptrdiff_t>(
                                     rng.NextBelow(picks.size() + 1)),
                 2 + rng.NextBelow(2));
  }
  for (const std::size_t p : picks) spec.chain.push_back(Candidate(p));
  return spec;
}

std::vector<std::vector<std::uint8_t>> RandomMessages(Rng& rng, int count) {
  std::vector<std::vector<std::uint8_t>> messages;
  messages.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    std::vector<std::uint8_t> msg(1 + rng.NextBelow(2000));
    for (auto& b : msg) b = rng.NextByte();
    messages.push_back(std::move(msg));
  }
  return messages;
}

void RunExchange(sim::Network& net, const ModuleGraphSpec& graph,
                 ChannelOptions::Transport transport,
                 const std::vector<std::vector<std::uint8_t>>& messages) {
  Acceptor acceptor(&net, {"server", 6950});
  ASSERT_TRUE(acceptor.Listen().ok());
  ChannelOptions options;
  options.transport = transport;
  options.graph = graph;
  options.packet_capacity = 4096;

  Result<std::unique_ptr<Session>> rx(Status(InternalError("unset")));
  cool::Thread accept_thread([&] { rx = acceptor.Accept(); });
  Connector connector(&net, "client");
  auto tx = connector.Connect({"server", 6950}, options);
  accept_thread.join();
  ASSERT_TRUE(tx.ok()) << graph.ToString() << ": " << tx.status();
  ASSERT_TRUE(rx.ok());

  cool::Thread sender([&] {
    for (const auto& msg : messages) {
      ASSERT_TRUE((*tx)->Send(msg).ok()) << graph.ToString();
    }
  });
  for (std::size_t i = 0; i < messages.size(); ++i) {
    auto got = (*rx)->Receive(seconds(20));
    ASSERT_TRUE(got.ok()) << graph.ToString() << " at msg " << i << ": "
                          << got.status();
    ASSERT_EQ(*got, messages[i]) << graph.ToString() << " at msg " << i;
  }
  sender.join();
}

class GraphPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphPropertyTest, AnyCombinationDeliversInOrderOverStream) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 11);
  const ModuleGraphSpec graph = RandomGraph(rng, /*force_arq=*/false);
  sim::Network net(QuickLink());
  RunExchange(net, graph, ChannelOptions::Transport::kStream,
              RandomMessages(rng, 15));
}

TEST_P(GraphPropertyTest, ArqCombinationsSurviveLossyDatagrams) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 9973 + 3);
  const ModuleGraphSpec graph = RandomGraph(rng, /*force_arq=*/true);
  sim::LinkProperties lossy = QuickLink();
  lossy.loss_rate = 0.1;
  sim::Network net(lossy, /*rng_seed=*/static_cast<std::uint64_t>(
                       GetParam() + 1));
  RunExchange(net, graph, ChannelOptions::Transport::kDatagram,
              RandomMessages(rng, 10));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPropertyTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace cool::dacapo
