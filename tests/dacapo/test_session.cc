// Connection management integration: CONFIG handshake, data transfer over
// stream and datagram transports, NAK paths, reconfiguration, teardown.
#include "common/thread.h"
#include "dacapo/session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace cool::dacapo {
namespace {

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = microseconds(100);
  return link;
}

ModuleGraphSpec GraphOf(std::initializer_list<const char*> names) {
  ModuleGraphSpec spec;
  for (const char* n : names) spec.chain.push_back({n, {}});
  return spec;
}

struct Rig {
  explicit Rig(sim::LinkProperties link = QuickLink(),
               ResourceManager* resources = nullptr)
      : net(link), acceptor(&net, {"server", 6000}, resources) {
    EXPECT_TRUE(acceptor.Listen().ok());
  }

  // Runs Connect and Accept concurrently (both block on the handshake).
  std::pair<std::unique_ptr<Session>, std::unique_ptr<Session>> Establish(
      ChannelOptions options,
      AppAModule::DeliveryMode delivery = AppAModule::DeliveryMode::kQueue) {
    Result<std::unique_ptr<Session>> server_side(
        Status(InternalError("unset")));
    cool::Thread accept_thread(
        [&] { server_side = acceptor.Accept(delivery); });
    Connector connector(&net, "client");
    auto client_side = connector.Connect({"server", 6000}, options);
    accept_thread.join();
    EXPECT_TRUE(client_side.ok()) << client_side.status();
    EXPECT_TRUE(server_side.ok()) << server_side.status();
    if (!client_side.ok() || !server_side.ok()) return {};
    return {std::move(client_side).value(), std::move(server_side).value()};
  }

  sim::Network net;
  Acceptor acceptor;
};

std::vector<std::uint8_t> Msg(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(SessionTest, EmptyGraphOverStreamDelivers) {
  Rig rig;
  ChannelOptions options;
  auto [client, server] = rig.Establish(options);
  ASSERT_NE(client, nullptr);

  ASSERT_TRUE(client->Send(Msg("hello dacapo")).ok());
  auto got = server->Receive(seconds(2));
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, Msg("hello dacapo"));

  // And the reverse direction.
  ASSERT_TRUE(server->Send(Msg("yo")).ok());
  auto back = client->Receive(seconds(2));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, Msg("yo"));
}

TEST(SessionTest, FullGraphOverStream) {
  Rig rig;
  ChannelOptions options;
  options.graph = GraphOf({mechanisms::kXorCipher, mechanisms::kSequencer,
                           mechanisms::kCrc32});
  auto [client, server] = rig.Establish(options);
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(server->graph(), options.graph);  // peer built a matching stack

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client->Send(Msg("msg" + std::to_string(i))).ok());
  }
  for (int i = 0; i < 20; ++i) {
    auto got = server->Receive(seconds(2));
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, Msg("msg" + std::to_string(i)));
  }
}

TEST(SessionTest, DatagramTransportWithArqSurvivesLoss) {
  sim::LinkProperties lossy = QuickLink();
  lossy.loss_rate = 0.2;
  Rig rig(lossy);
  ChannelOptions options;
  options.transport = ChannelOptions::Transport::kDatagram;
  MechanismSpec arq;
  arq.name = mechanisms::kGoBackN;
  arq.params["rto_us"] = 3000;
  options.graph.chain = {arq, {mechanisms::kCrc16, {}}};

  auto [client, server] = rig.Establish(options);
  ASSERT_NE(client, nullptr);

  constexpr int kCount = 30;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(client->Send(Msg("p" + std::to_string(i))).ok());
  }
  for (int i = 0; i < kCount; ++i) {
    auto got = server->Receive(seconds(10));
    ASSERT_TRUE(got.ok()) << "at " << i << ": " << got.status();
    EXPECT_EQ(*got, Msg("p" + std::to_string(i)));
  }
}

TEST(SessionTest, UnknownMechanismIsNakked) {
  Rig rig;
  ChannelOptions options;
  options.graph.chain.push_back({"warp_drive", {}});
  Result<std::unique_ptr<Session>> server_side(
      Status(InternalError("unset")));
  cool::Thread accept_thread([&] {
    server_side = rig.acceptor.Accept();
  });
  Connector connector(&rig.net, "client");
  auto client_side = connector.Connect({"server", 6000}, options);
  accept_thread.join();
  EXPECT_EQ(client_side.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_FALSE(server_side.ok());
}

TEST(SessionTest, AdmissionHookCanRefuse) {
  Rig rig;
  rig.acceptor.SetAdmissionHook([](const ModuleGraphSpec& spec) -> Status {
    if (!spec.chain.empty()) {
      return ResourceExhaustedError("server refuses configured graphs");
    }
    return Status::Ok();
  });

  ChannelOptions refused;
  refused.graph = GraphOf({mechanisms::kCrc16});
  Result<std::unique_ptr<Session>> server_side(
      Status(InternalError("unset")));
  cool::Thread accept_thread([&] { server_side = rig.acceptor.Accept(); });
  Connector connector(&rig.net, "client");
  auto client_side = connector.Connect({"server", 6000}, refused);
  accept_thread.join();
  EXPECT_EQ(client_side.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(client_side.status().message().find("refuses"),
            std::string::npos);
}

TEST(SessionTest, ResourceAdmissionRefusesWhenExhausted) {
  ResourceManager::Budget budget;
  budget.max_connections = 64;
  budget.packet_memory_bytes = 1;  // nothing fits
  ResourceManager resources(budget);
  Rig rig(QuickLink(), &resources);

  ChannelOptions options;
  Result<std::unique_ptr<Session>> server_side(
      Status(InternalError("unset")));
  cool::Thread accept_thread([&] { server_side = rig.acceptor.Accept(); });
  Connector connector(&rig.net, "client");
  auto client_side = connector.Connect({"server", 6000}, options);
  accept_thread.join();
  EXPECT_EQ(client_side.status().code(), ErrorCode::kResourceExhausted);
}

TEST(SessionTest, OversizedMessageRejectedLocally) {
  Rig rig;
  ChannelOptions options;
  options.packet_capacity = 128;
  auto [client, server] = rig.Establish(options);
  ASSERT_NE(client, nullptr);
  std::vector<std::uint8_t> big(256);
  EXPECT_EQ(client->Send(big).code(), ErrorCode::kInvalidArgument);
}

TEST(SessionTest, ReceiveTimesOutQuietChannel) {
  Rig rig;
  auto [client, server] = rig.Establish(ChannelOptions{});
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(server->Receive(milliseconds(50)).status().code(),
            ErrorCode::kDeadlineExceeded);
}

TEST(SessionTest, StatsCountTraffic) {
  Rig rig;
  auto [client, server] = rig.Establish(ChannelOptions{});
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Send(Msg("abcd")).ok());
  ASSERT_TRUE(server->Receive(seconds(2)).ok());
  EXPECT_EQ(client->stats().packets_tx, 1u);
  EXPECT_EQ(client->stats().bytes_tx, 4u);
  EXPECT_EQ(server->stats().packets_rx, 1u);
  EXPECT_EQ(server->stats().bytes_rx, 4u);
  client->ResetStats();
  EXPECT_EQ(client->stats().packets_tx, 0u);
}

TEST(SessionTest, ReconfigureSwapsGraphOnBothSides) {
  Rig rig;
  ChannelOptions options;
  options.graph = GraphOf({mechanisms::kCrc16});
  auto [client, server] = rig.Establish(options);
  ASSERT_NE(client, nullptr);

  ASSERT_TRUE(client->Send(Msg("before")).ok());
  ASSERT_TRUE(server->Receive(seconds(2)).ok());

  const ModuleGraphSpec new_graph =
      GraphOf({mechanisms::kXorCipher, mechanisms::kCrc32});
  ASSERT_TRUE(client->Reconfigure(new_graph).ok());
  EXPECT_EQ(client->graph(), new_graph);

  // Traffic flows over the rebuilt plane (both sides must have swapped).
  ASSERT_TRUE(client->Send(Msg("after")).ok());
  auto got = server->Receive(seconds(2));
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, Msg("after"));
  EXPECT_EQ(server->graph(), new_graph);
}

TEST(SessionTest, ReconfigureOnDatagramTransport) {
  Rig rig;
  ChannelOptions options;
  options.transport = ChannelOptions::Transport::kDatagram;
  options.graph = GraphOf({mechanisms::kGoBackN});
  auto [client, server] = rig.Establish(options);
  ASSERT_NE(client, nullptr);

  const ModuleGraphSpec new_graph =
      GraphOf({mechanisms::kGoBackN, mechanisms::kCrc32});
  ASSERT_TRUE(client->Reconfigure(new_graph).ok());
  ASSERT_TRUE(client->Send(Msg("post-reconf")).ok());
  auto got = server->Receive(seconds(5));
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, Msg("post-reconf"));
}

TEST(SessionTest, ResponderCannotDriveReconfiguration) {
  Rig rig;
  auto [client, server] = rig.Establish(ChannelOptions{});
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(server->Reconfigure(GraphOf({mechanisms::kCrc16})).code(),
            ErrorCode::kFailedPrecondition);
}

TEST(SessionTest, CloseUnblocksPeerReceive) {
  Rig rig;
  auto [client, server] = rig.Establish(ChannelOptions{});
  ASSERT_NE(client, nullptr);
  cool::Thread receiver([&] {
    auto got = server->Receive(seconds(5));
    EXPECT_FALSE(got.ok());
  });
  std::this_thread::sleep_for(milliseconds(50));
  client->Close();
  receiver.join();
  // Peer learns about the close via signalling.
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_FALSE(server->last_error().ok());
}

TEST(SessionTest, DescribeGraphReportsModuleStats) {
  sim::LinkProperties lossy = QuickLink();
  lossy.loss_rate = 0.3;
  Rig rig(lossy);
  ChannelOptions options;
  options.transport = ChannelOptions::Transport::kDatagram;
  MechanismSpec arq;
  arq.name = mechanisms::kIrq;
  arq.params["rto_us"] = 2000;
  options.graph.chain = {arq};

  auto [client, server] = rig.Establish(options);
  ASSERT_NE(client, nullptr);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client->Send(Msg("m" + std::to_string(i))).ok());
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(server->Receive(seconds(10)).ok());
  }

  const std::vector<std::string> lines = client->DescribeGraph();
  // app_a, irq, t_datagram — top to bottom.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_TRUE(lines[0].starts_with("app_a{tx=10")) << lines[0];
  EXPECT_TRUE(lines[1].starts_with("irq{retransmissions=")) << lines[1];
  EXPECT_EQ(lines[2], "t_datagram");
  // With 30% loss over 10 packets, at least one retransmission is all but
  // certain (seeded network: deterministic).
  EXPECT_NE(lines[1], "irq{retransmissions=0}");
}

TEST(SessionTest, SendAfterCloseFails) {
  Rig rig;
  auto [client, server] = rig.Establish(ChannelOptions{});
  ASSERT_NE(client, nullptr);
  client->Close();
  EXPECT_FALSE(client->Send(Msg("zombie")).ok());
}

// Regression: a short-quantum receive poller (the GIOP reply demultiplexer
// polls at 50 ms) must ride out plane swaps. The adoption grace window
// used to be clipped by the caller's deadline, so a swap landing near the
// end of a poll quantum surfaced as kUnavailable — which a demultiplexer
// rightly treats as a terminal connection error.
TEST(SessionTest, ShortTimeoutPollerSurvivesReconfiguration) {
  Rig rig;
  ChannelOptions options;
  options.graph = GraphOf({mechanisms::kCrc16});
  auto [client, server] = rig.Establish(options);
  ASSERT_NE(client, nullptr);

  std::atomic<bool> stop{false};
  std::atomic<bool> finished{false};
  Status bad = Status::Ok();
  Result<std::vector<std::uint8_t>> got(Status(InternalError("unset")));
  cool::Thread poller([&] {
    while (!stop.load()) {
      // Tighter than the GIOP demultiplexer's 50 ms: the swap must land
      // after this quantum's deadline to exercise the grace window.
      auto r = server->Receive(milliseconds(1));
      if (r.ok() || r.status().code() != ErrorCode::kDeadlineExceeded) {
        if (r.ok()) {
          got = std::move(r);
        } else {
          bad = r.status();
        }
        break;
      }
    }
    finished.store(true);
  });

  // Swap the responder's plane repeatedly under the poller.
  for (int i = 0; i < 3; ++i) {
    const ModuleGraphSpec g =
        (i % 2 == 0) ? GraphOf({mechanisms::kXorCipher, mechanisms::kCrc32})
                     : GraphOf({mechanisms::kCrc16});
    ASSERT_TRUE(client->Reconfigure(g).ok());
    std::this_thread::sleep_for(milliseconds(20));
  }
  ASSERT_TRUE(client->Send(Msg("post-reconf")).ok());

  const TimePoint deadline = Now() + seconds(5);
  while (!finished.load() && Now() < deadline) {
    std::this_thread::sleep_for(milliseconds(5));
  }
  stop.store(true);
  poller.join();
  EXPECT_TRUE(bad.ok()) << "poller saw terminal error: " << bad;
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, Msg("post-reconf"));
}

// PR 8 companion to the poller test above: trains are sent under the plane
// reader lock, so a reconfiguration (writer) can never tear a train in
// half, and a Close() landing while the sender is mid-train must surface
// as a clean error on the next allocation instead of a hang or a leak.
TEST(SessionTest, TrainSendSurvivesPlaneSwapAndCloseMidStream) {
  Rig rig;
  ChannelOptions options;
  options.graph = GraphOf({mechanisms::kCrc32});
  auto [client, server] = rig.Establish(options);
  ASSERT_NE(client, nullptr);

  std::atomic<bool> stop{false};
  std::atomic<int> received{0};
  cool::Thread drain([&] {
    while (!stop.load()) {
      if (server->Receive(milliseconds(10)).ok()) received.fetch_add(1);
    }
  });

  std::atomic<int> trains_ok{0};
  std::atomic<bool> saw_clean_failure{false};
  cool::Thread sender([&] {
    const std::vector<std::uint8_t> payload(48, 0x77);
    for (;;) {
      Status s = client->SendTrainWith(
          64, [&](std::size_t) { return payload.size(); },
          [&](std::size_t, std::span<std::uint8_t> out) {
            std::copy(payload.begin(), payload.end(), out.begin());
            return Status::Ok();
          });
      if (!s.ok()) {
        saw_clean_failure.store(true);
        break;  // close landed: the train send fails cleanly, no hang
      }
      trains_ok.fetch_add(1);
      // Yield between trains so the reconfiguring writer can take the
      // plane lock (reader-preferring rwlocks can otherwise starve it).
      std::this_thread::sleep_for(milliseconds(1));
    }
  });

  // Swap the plane under the train sender: the writer lock serializes
  // against in-flight trains, so every accepted train is all-or-nothing.
  for (int i = 0; i < 3; ++i) {
    const ModuleGraphSpec g =
        (i % 2 == 0) ? GraphOf({mechanisms::kXorCipher, mechanisms::kCrc32})
                     : GraphOf({mechanisms::kCrc16});
    ASSERT_TRUE(client->Reconfigure(g).ok());
    std::this_thread::sleep_for(milliseconds(10));
  }

  // Let a few whole trains through after the last swap, then close while
  // the sender is (almost certainly) mid-train.
  const TimePoint deadline = Now() + seconds(5);
  while (trains_ok.load() < 3 && Now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_GE(trains_ok.load(), 3);
  client->Close();
  sender.join();  // must terminate: no deadlock on a torn train
  EXPECT_TRUE(saw_clean_failure.load());

  const TimePoint drain_deadline = Now() + seconds(2);
  while (received.load() == 0 && Now() < drain_deadline) {
    std::this_thread::sleep_for(milliseconds(5));
  }
  stop.store(true);
  drain.join();
  EXPECT_GT(received.load(), 0);
}

}  // namespace
}  // namespace cool::dacapo
