// Unit tests for the layer-C protocol modules, driven synchronously
// through a fake port (no threads): each test hands packets to
// HandleData/OnTick and inspects what the module forwarded.
#include "dacapo/modules.h"

#include <gtest/gtest.h>

#include <deque>
#include <thread>

namespace cool::dacapo {
namespace {

class FakePort : public ModulePort {
 public:
  explicit FakePort(PacketArena* arena) : arena_(arena) {}

  void ForwardUp(PacketPtr pkt) override { up.push_back(std::move(pkt)); }
  void ForwardDown(PacketPtr pkt) override { down.push_back(std::move(pkt)); }
  void ControlUp(ControlMsg msg) override {
    control_up.push_back(std::move(msg));
  }
  void ControlDown(ControlMsg msg) override {
    control_down.push_back(std::move(msg));
  }
  PacketArena& arena() override { return *arena_; }
  std::string_view channel_name() const override { return "test"; }

  PacketPtr TakeDown() {
    EXPECT_FALSE(down.empty());
    PacketPtr p = std::move(down.front());
    down.pop_front();
    return p;
  }
  PacketPtr TakeUp() {
    EXPECT_FALSE(up.empty());
    PacketPtr p = std::move(up.front());
    up.pop_front();
    return p;
  }

  std::deque<PacketPtr> up;
  std::deque<PacketPtr> down;
  std::vector<ControlMsg> control_up;
  std::vector<ControlMsg> control_down;

 private:
  PacketArena* arena_;
};

class ModuleTestBase : public ::testing::Test {
 protected:
  PacketPtr Make(std::initializer_list<std::uint8_t> bytes) {
    auto p = arena_.Make(std::vector<std::uint8_t>(bytes));
    EXPECT_TRUE(p.ok());
    return std::move(p).value();
  }

  PacketArena arena_{64, 256};
  FakePort port_{&arena_};
};

// --- DummyModule -------------------------------------------------------------

using DummyModuleTest = ModuleTestBase;

TEST_F(DummyModuleTest, ForwardsBothDirectionsUnchanged) {
  DummyModule dummy;
  dummy.HandleData(Direction::kDown, Make({1, 2}), port_);
  dummy.HandleData(Direction::kUp, Make({3}), port_);
  ASSERT_EQ(port_.down.size(), 1u);
  ASSERT_EQ(port_.up.size(), 1u);
  EXPECT_EQ(port_.down.front()->Data()[0], 1);
  EXPECT_EQ(port_.up.front()->Data()[0], 3);
}

// --- ChecksumModule ----------------------------------------------------------

using ChecksumModuleTest = ModuleTestBase;

TEST_F(ChecksumModuleTest, RoundTripAllAlgorithms) {
  for (const auto algo :
       {ChecksumModule::Algorithm::kParity, ChecksumModule::Algorithm::kCrc16,
        ChecksumModule::Algorithm::kCrc32}) {
    ChecksumModule tx(algo);
    ChecksumModule rx(algo);
    tx.HandleData(Direction::kDown, Make({10, 20, 30}), port_);
    PacketPtr wire = port_.TakeDown();
    EXPECT_GT(wire->size(), 3u);  // trailer added
    rx.HandleData(Direction::kUp, std::move(wire), port_);
    PacketPtr delivered = port_.TakeUp();
    ASSERT_EQ(delivered->size(), 3u);  // trailer stripped
    EXPECT_EQ(delivered->Data()[1], 20);
  }
}

TEST_F(ChecksumModuleTest, CorruptPacketDroppedNotForwarded) {
  ChecksumModule tx(ChecksumModule::Algorithm::kCrc32);
  ChecksumModule rx(ChecksumModule::Algorithm::kCrc32);
  tx.HandleData(Direction::kDown, Make({1, 2, 3}), port_);
  PacketPtr wire = port_.TakeDown();
  wire->Data()[1] ^= 0xFF;  // corrupt in flight
  rx.HandleData(Direction::kUp, std::move(wire), port_);
  EXPECT_TRUE(port_.up.empty());
  EXPECT_EQ(rx.corrupted_dropped(), 1u);
}

TEST_F(ChecksumModuleTest, TruncatedPacketDropped) {
  ChecksumModule rx(ChecksumModule::Algorithm::kCrc32);
  rx.HandleData(Direction::kUp, Make({1, 2}), port_);  // < trailer size
  EXPECT_TRUE(port_.up.empty());
  EXPECT_EQ(rx.corrupted_dropped(), 1u);
}

TEST_F(ChecksumModuleTest, MismatchedAlgorithmsDetected) {
  ChecksumModule tx(ChecksumModule::Algorithm::kCrc16);
  ChecksumModule rx(ChecksumModule::Algorithm::kCrc32);
  tx.HandleData(Direction::kDown, Make({1, 2, 3, 4, 5}), port_);
  rx.HandleData(Direction::kUp, port_.TakeDown(), port_);
  EXPECT_TRUE(port_.up.empty());
}

// --- XorCipherModule ---------------------------------------------------------

using XorCipherModuleTest = ModuleTestBase;

TEST_F(XorCipherModuleTest, EncryptsOnWireDecryptsOnDelivery) {
  XorCipherModule tx(0x1234);
  XorCipherModule rx(0x1234);
  tx.HandleData(Direction::kDown, Make({'s', 'e', 'c'}), port_);
  PacketPtr wire = port_.TakeDown();
  EXPECT_NE(wire->Data()[0], 's');  // ciphertext differs
  rx.HandleData(Direction::kUp, std::move(wire), port_);
  PacketPtr delivered = port_.TakeUp();
  EXPECT_EQ(delivered->Data()[0], 's');
}

TEST_F(XorCipherModuleTest, WrongKeyYieldsGarbage) {
  XorCipherModule tx(1);
  XorCipherModule rx(2);
  tx.HandleData(Direction::kDown, Make({'s', 'e', 'c'}), port_);
  rx.HandleData(Direction::kUp, port_.TakeDown(), port_);
  EXPECT_NE(port_.TakeUp()->Data()[0], 's');
}

// --- SequencerModule ---------------------------------------------------------

using SequencerModuleTest = ModuleTestBase;

TEST_F(SequencerModuleTest, InOrderPassThrough) {
  SequencerModule tx;
  SequencerModule rx;
  for (std::uint8_t i = 0; i < 3; ++i) {
    tx.HandleData(Direction::kDown, Make({i}), port_);
    rx.HandleData(Direction::kUp, port_.TakeDown(), port_);
    EXPECT_EQ(port_.TakeUp()->Data()[0], i);
  }
  EXPECT_EQ(rx.reordered(), 0u);
}

TEST_F(SequencerModuleTest, ReordersOutOfOrderArrivals) {
  SequencerModule tx;
  SequencerModule rx;
  tx.HandleData(Direction::kDown, Make({0}), port_);
  tx.HandleData(Direction::kDown, Make({1}), port_);
  tx.HandleData(Direction::kDown, Make({2}), port_);
  PacketPtr w0 = port_.TakeDown();
  PacketPtr w1 = port_.TakeDown();
  PacketPtr w2 = port_.TakeDown();

  rx.HandleData(Direction::kUp, std::move(w2), port_);  // early
  EXPECT_TRUE(port_.up.empty());
  rx.HandleData(Direction::kUp, std::move(w0), port_);
  ASSERT_EQ(port_.up.size(), 1u);
  rx.HandleData(Direction::kUp, std::move(w1), port_);
  // 1 arrives -> releases 1 and buffered 2.
  ASSERT_EQ(port_.up.size(), 3u);
  EXPECT_EQ(port_.up[0]->Data()[0], 0);
  EXPECT_EQ(port_.up[1]->Data()[0], 1);
  EXPECT_EQ(port_.up[2]->Data()[0], 2);
  EXPECT_EQ(rx.reordered(), 1u);
}

TEST_F(SequencerModuleTest, DuplicatesDropped) {
  SequencerModule tx;
  SequencerModule rx;
  tx.HandleData(Direction::kDown, Make({7}), port_);
  PacketPtr wire = port_.TakeDown();
  auto dup = arena_.Clone(*wire);
  ASSERT_TRUE(dup.ok());
  rx.HandleData(Direction::kUp, std::move(wire), port_);
  rx.HandleData(Direction::kUp, std::move(dup).value(), port_);
  EXPECT_EQ(port_.up.size(), 1u);
}

TEST_F(SequencerModuleTest, GapSkippedOnTimeout) {
  SequencerModule tx(/*gap_timeout=*/milliseconds(10));
  SequencerModule rx(/*gap_timeout=*/milliseconds(10));
  tx.HandleData(Direction::kDown, Make({0}), port_);
  tx.HandleData(Direction::kDown, Make({1}), port_);
  (void)port_.TakeDown();  // packet 0 lost in the network
  PacketPtr w1 = port_.TakeDown();
  rx.HandleData(Direction::kUp, std::move(w1), port_);
  EXPECT_TRUE(port_.up.empty());  // waiting for 0
  std::this_thread::sleep_for(milliseconds(20));
  rx.OnTick(port_);
  ASSERT_EQ(port_.up.size(), 1u);  // gave up on 0, released 1
  EXPECT_EQ(port_.up[0]->Data()[0], 1);
  EXPECT_EQ(rx.skipped(), 1u);
}

// --- IrqModule -----------------------------------------------------------------

using IrqModuleTest = ModuleTestBase;

TEST_F(IrqModuleTest, StopAndWaitWindowOfOne) {
  IrqModule sender;
  EXPECT_TRUE(sender.ReadyForDown());
  sender.HandleData(Direction::kDown, Make({1}), port_);
  EXPECT_EQ(port_.down.size(), 1u);  // transmitted
  EXPECT_FALSE(sender.ReadyForDown());  // nothing more until ACK
}

TEST_F(IrqModuleTest, DataAckRoundTrip) {
  IrqModule sender;
  IrqModule receiver;
  sender.HandleData(Direction::kDown, Make({42}), port_);
  PacketPtr wire = port_.TakeDown();

  receiver.HandleData(Direction::kUp, std::move(wire), port_);
  // Receiver delivered the payload up and sent an ACK down.
  ASSERT_EQ(port_.up.size(), 1u);
  EXPECT_EQ(port_.up.front()->Data()[0], 42);
  ASSERT_EQ(port_.down.size(), 1u);

  PacketPtr ack = port_.TakeDown();
  sender.HandleData(Direction::kUp, std::move(ack), port_);
  EXPECT_TRUE(sender.ReadyForDown());  // window reopened
}

TEST_F(IrqModuleTest, DuplicateDataReAckedNotRedelivered) {
  IrqModule sender;
  IrqModule receiver;
  sender.HandleData(Direction::kDown, Make({1}), port_);
  PacketPtr wire = port_.TakeDown();
  auto dup = arena_.Clone(*wire);
  ASSERT_TRUE(dup.ok());

  receiver.HandleData(Direction::kUp, std::move(wire), port_);
  (void)port_.TakeUp();
  (void)port_.TakeDown();  // first ACK
  receiver.HandleData(Direction::kUp, std::move(dup).value(), port_);
  EXPECT_TRUE(port_.up.empty());       // no duplicate delivery
  EXPECT_EQ(port_.down.size(), 1u);    // but re-ACKed
}

TEST_F(IrqModuleTest, RetransmitsOnTimeout) {
  IrqModule::Options opts;
  opts.rto = milliseconds(5);
  IrqModule sender(opts);
  sender.HandleData(Direction::kDown, Make({1}), port_);
  (void)port_.TakeDown();  // first transmission lost
  std::this_thread::sleep_for(milliseconds(10));
  sender.OnTick(port_);
  EXPECT_EQ(port_.down.size(), 1u);  // retransmitted
  EXPECT_EQ(sender.retransmissions(), 1u);
}

TEST_F(IrqModuleTest, GivesUpAfterMaxRetries) {
  IrqModule::Options opts;
  opts.rto = milliseconds(1);
  opts.max_retries = 2;
  IrqModule sender(opts);
  sender.HandleData(Direction::kDown, Make({1}), port_);
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(milliseconds(3));
    sender.OnTick(port_);
  }
  EXPECT_TRUE(sender.ReadyForDown());  // gave up, window open again
  ASSERT_FALSE(port_.control_up.empty());
  EXPECT_EQ(port_.control_up.front().kind, ControlMsg::Kind::kError);
}

TEST_F(IrqModuleTest, StaleAckIgnored) {
  IrqModule sender;
  IrqModule receiver;
  // Exchange one packet completely.
  sender.HandleData(Direction::kDown, Make({1}), port_);
  receiver.HandleData(Direction::kUp, port_.TakeDown(), port_);
  (void)port_.TakeUp();
  PacketPtr ack0 = port_.TakeDown();
  auto stale = arena_.Clone(*ack0);
  ASSERT_TRUE(stale.ok());
  sender.HandleData(Direction::kUp, std::move(ack0), port_);

  // Second packet in flight; a stale ACK for #0 must not open the window.
  sender.HandleData(Direction::kDown, Make({2}), port_);
  (void)port_.TakeDown();
  sender.HandleData(Direction::kUp, std::move(stale).value(), port_);
  EXPECT_FALSE(sender.ReadyForDown());
}

// --- GoBackNModule --------------------------------------------------------------

using GoBackNModuleTest = ModuleTestBase;

TEST_F(GoBackNModuleTest, WindowAllowsMultipleInFlight) {
  GoBackNModule::Options opts;
  opts.window = 3;
  GoBackNModule sender(opts);
  for (std::uint8_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(sender.ReadyForDown());
    sender.HandleData(Direction::kDown, Make({i}), port_);
  }
  EXPECT_FALSE(sender.ReadyForDown());  // window full
  EXPECT_EQ(port_.down.size(), 3u);
}

TEST_F(GoBackNModuleTest, CumulativeAckSlidesWindow) {
  GoBackNModule::Options opts;
  opts.window = 2;
  GoBackNModule sender(opts);
  GoBackNModule receiver(opts);

  sender.HandleData(Direction::kDown, Make({0}), port_);
  sender.HandleData(Direction::kDown, Make({1}), port_);
  PacketPtr w0 = port_.TakeDown();
  PacketPtr w1 = port_.TakeDown();

  receiver.HandleData(Direction::kUp, std::move(w0), port_);
  receiver.HandleData(Direction::kUp, std::move(w1), port_);
  ASSERT_EQ(port_.up.size(), 2u);
  ASSERT_EQ(port_.down.size(), 2u);  // two cumulative ACKs
  (void)port_.TakeDown();
  PacketPtr ack = port_.TakeDown();  // the later one covers both
  sender.HandleData(Direction::kUp, std::move(ack), port_);
  EXPECT_TRUE(sender.ReadyForDown());
}

TEST_F(GoBackNModuleTest, OutOfOrderDiscardedAndDupAcked) {
  GoBackNModule sender;
  GoBackNModule receiver;
  sender.HandleData(Direction::kDown, Make({0}), port_);
  sender.HandleData(Direction::kDown, Make({1}), port_);
  (void)port_.TakeDown();  // packet 0 lost
  PacketPtr w1 = port_.TakeDown();
  receiver.HandleData(Direction::kUp, std::move(w1), port_);
  EXPECT_TRUE(port_.up.empty());      // go-back-N: not buffered
  EXPECT_EQ(port_.down.size(), 1u);   // duplicate ACK telling "still at 0"
}

TEST_F(GoBackNModuleTest, TimeoutRetransmitsWholeWindow) {
  GoBackNModule::Options opts;
  opts.window = 4;
  opts.rto = milliseconds(5);
  GoBackNModule sender(opts);
  for (std::uint8_t i = 0; i < 3; ++i) {
    sender.HandleData(Direction::kDown, Make({i}), port_);
  }
  port_.down.clear();  // all lost
  std::this_thread::sleep_for(milliseconds(10));
  sender.OnTick(port_);
  EXPECT_EQ(port_.down.size(), 3u);  // full window retransmitted
  EXPECT_EQ(sender.retransmissions(), 3u);
}

TEST_F(GoBackNModuleTest, EndToEndOverLossyDelivery) {
  // Drop every third wire packet; the module pair must still deliver all
  // payloads in order via retransmission.
  GoBackNModule::Options opts;
  opts.window = 4;
  opts.rto = milliseconds(2);
  GoBackNModule sender(opts);
  GoBackNModule receiver(opts);

  std::vector<std::uint8_t> delivered;
  int wire_count = 0;
  int to_send = 0;
  const int kTotal = 10;

  for (int round = 0; round < 400 && delivered.size() < kTotal; ++round) {
    if (to_send < kTotal && sender.ReadyForDown()) {
      sender.HandleData(Direction::kDown,
                        Make({static_cast<std::uint8_t>(to_send)}), port_);
      ++to_send;
    }
    // Move "wire" packets: sender.down -> receiver, receiver.down -> sender.
    while (!port_.down.empty()) {
      PacketPtr p = port_.TakeDown();
      if (++wire_count % 3 == 0) continue;  // lost
      // Heuristic: ACKs come from the receiver; DATA from the sender. The
      // first octet of the ARQ header distinguishes them.
      if (p->Data()[0] == 0) {
        receiver.HandleData(Direction::kUp, std::move(p), port_);
      } else {
        sender.HandleData(Direction::kUp, std::move(p), port_);
      }
    }
    while (!port_.up.empty()) {
      delivered.push_back(port_.TakeUp()->Data()[0]);
    }
    std::this_thread::sleep_for(milliseconds(1));
    sender.OnTick(port_);
  }

  ASSERT_EQ(delivered.size(), static_cast<std::size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) {
    EXPECT_EQ(delivered[static_cast<std::size_t>(i)], i);
  }
}

// --- RateLimiterModule -----------------------------------------------------------

using RateLimiterModuleTest = ModuleTestBase;

TEST_F(RateLimiterModuleTest, WithinBurstPassesImmediately) {
  RateLimiterModule::Options opts;
  opts.rate_bytes_per_sec = 1000;
  opts.burst_bytes = 100;
  RateLimiterModule limiter(opts);
  limiter.HandleData(Direction::kDown, Make({1, 2, 3}), port_);
  EXPECT_EQ(port_.down.size(), 1u);
  EXPECT_TRUE(limiter.ReadyForDown());
}

TEST_F(RateLimiterModuleTest, HoldsWhenTokensExhausted) {
  RateLimiterModule::Options opts;
  // Low rate so the bucket needs ~40ms to refill: sanitizer builds can
  // spend whole milliseconds between the two HandleData calls, and the
  // second packet must still find the bucket empty.
  opts.rate_bytes_per_sec = 100;
  opts.burst_bytes = 4;
  RateLimiterModule limiter(opts);
  limiter.HandleData(Direction::kDown, Make({1, 2, 3, 4}), port_);
  EXPECT_EQ(port_.down.size(), 1u);
  limiter.HandleData(Direction::kDown, Make({5, 6, 7, 8}), port_);
  EXPECT_EQ(port_.down.size(), 1u);  // held
  EXPECT_FALSE(limiter.ReadyForDown());
  std::this_thread::sleep_for(milliseconds(60));  // refills > 4 tokens
  limiter.OnTick(port_);
  EXPECT_EQ(port_.down.size(), 2u);
  EXPECT_TRUE(limiter.ReadyForDown());
}

TEST_F(RateLimiterModuleTest, UpTrafficUnthrottled) {
  RateLimiterModule::Options opts;
  opts.rate_bytes_per_sec = 1;
  opts.burst_bytes = 1;
  RateLimiterModule limiter(opts);
  limiter.HandleData(Direction::kUp, Make({1, 2, 3}), port_);
  EXPECT_EQ(port_.up.size(), 1u);
}

// --- FragmentModule -----------------------------------------------------------------

class FragmentModuleTest : public ModuleTestBase {
 protected:
  PacketPtr MakeBytes(std::size_t n, std::uint8_t seed = 0) {
    std::vector<std::uint8_t> data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = static_cast<std::uint8_t>(i + seed);
    }
    auto p = arena_.Make(data);
    EXPECT_TRUE(p.ok());
    return std::move(p).value();
  }
};

TEST_F(FragmentModuleTest, SmallPacketSingleFragmentRoundTrip) {
  FragmentModule tx(16);
  FragmentModule rx(16);
  tx.HandleData(Direction::kDown, MakeBytes(10), port_);
  ASSERT_EQ(port_.down.size(), 1u);
  rx.HandleData(Direction::kUp, port_.TakeDown(), port_);
  ASSERT_EQ(port_.up.size(), 1u);
  EXPECT_EQ(port_.TakeUp()->size(), 10u);
  EXPECT_EQ(tx.fragmented(), 0u);  // no split needed
}

TEST_F(FragmentModuleTest, LargeMessageSplitsAndReassembles) {
  FragmentModule tx(16);
  FragmentModule rx(16);
  tx.HandleData(Direction::kDown, MakeBytes(50), port_);
  EXPECT_EQ(port_.down.size(), 4u);  // 16+16+16+2
  EXPECT_EQ(tx.fragmented(), 1u);
  while (!port_.down.empty()) {
    rx.HandleData(Direction::kUp, port_.TakeDown(), port_);
  }
  ASSERT_EQ(port_.up.size(), 1u);
  PacketPtr whole = port_.TakeUp();
  ASSERT_EQ(whole->size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(whole->Data()[i], static_cast<std::uint8_t>(i)) << i;
  }
}

TEST_F(FragmentModuleTest, BackToBackMessagesKeepBoundaries) {
  FragmentModule tx(8);
  FragmentModule rx(8);
  tx.HandleData(Direction::kDown, MakeBytes(20, 0), port_);
  tx.HandleData(Direction::kDown, MakeBytes(12, 100), port_);
  while (!port_.down.empty()) {
    rx.HandleData(Direction::kUp, port_.TakeDown(), port_);
  }
  ASSERT_EQ(port_.up.size(), 2u);
  EXPECT_EQ(port_.up[0]->size(), 20u);
  EXPECT_EQ(port_.up[1]->size(), 12u);
  EXPECT_EQ(port_.up[1]->Data()[0], 100);
}

TEST_F(FragmentModuleTest, MissingHeadFragmentDropsTail) {
  FragmentModule tx(8);
  FragmentModule rx(8);
  tx.HandleData(Direction::kDown, MakeBytes(20), port_);
  (void)port_.TakeDown();  // head lost
  while (!port_.down.empty()) {
    rx.HandleData(Direction::kUp, port_.TakeDown(), port_);
  }
  EXPECT_TRUE(port_.up.empty());
  EXPECT_GE(rx.dropped(), 1u);
}

TEST_F(FragmentModuleTest, TornMessageRestartsOnNextHead) {
  FragmentModule tx(8);
  FragmentModule rx(8);
  tx.HandleData(Direction::kDown, MakeBytes(20, 0), port_);
  // Deliver only the head of message 0, then a complete message 1.
  PacketPtr head0 = port_.TakeDown();
  port_.down.clear();  // rest of message 0 lost
  rx.HandleData(Direction::kUp, std::move(head0), port_);

  tx.HandleData(Direction::kDown, MakeBytes(12, 50), port_);
  while (!port_.down.empty()) {
    rx.HandleData(Direction::kUp, port_.TakeDown(), port_);
  }
  ASSERT_EQ(port_.up.size(), 1u);  // only message 1 delivered
  EXPECT_EQ(port_.up[0]->size(), 12u);
  EXPECT_EQ(port_.up[0]->Data()[0], 50);
  EXPECT_GE(rx.dropped(), 1u);
}

// --- AppAModule -------------------------------------------------------------------

using AppAModuleTest = ModuleTestBase;

TEST_F(AppAModuleTest, CountsTxAndForwards) {
  AppAModule a;
  a.HandleData(Direction::kDown, Make({1, 2, 3}), port_);
  EXPECT_EQ(port_.down.size(), 1u);
  const auto stats = a.snapshot();
  EXPECT_EQ(stats.packets_tx, 1u);
  EXPECT_EQ(stats.bytes_tx, 3u);
}

TEST_F(AppAModuleTest, QueueModeDeliversToApplication) {
  AppAModule a(AppAModule::DeliveryMode::kQueue);
  a.HandleData(Direction::kUp, Make({9, 8}), port_);
  auto msg = a.Receive(milliseconds(100));
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(*msg, (std::vector<std::uint8_t>{9, 8}));
}

TEST_F(AppAModuleTest, CountOnlyModeReleasesBuffers) {
  AppAModule a(AppAModule::DeliveryMode::kCountOnly);
  a.HandleData(Direction::kUp, Make({1}), port_);
  a.HandleData(Direction::kUp, Make({2, 3}), port_);
  const auto stats = a.snapshot();
  EXPECT_EQ(stats.packets_rx, 2u);
  EXPECT_EQ(stats.bytes_rx, 3u);
  // Buffers released back to the arena (the paper's measuring A-module).
  EXPECT_EQ(arena_.in_flight(), 0u);
  // Nothing queued for the app.
  EXPECT_EQ(a.Receive(milliseconds(10)).status().code(),
            ErrorCode::kDeadlineExceeded);
}

TEST_F(AppAModuleTest, TracksFirstAndLastArrival) {
  AppAModule a(AppAModule::DeliveryMode::kCountOnly);
  a.HandleData(Direction::kUp, Make({1}), port_);
  std::this_thread::sleep_for(milliseconds(10));
  a.HandleData(Direction::kUp, Make({2}), port_);
  const auto stats = a.snapshot();
  EXPECT_GE(stats.last_rx - stats.first_rx, milliseconds(8));
}

TEST_F(AppAModuleTest, ResetStatsClearsCounters) {
  AppAModule a(AppAModule::DeliveryMode::kCountOnly);
  a.HandleData(Direction::kUp, Make({1}), port_);
  a.ResetStats();
  EXPECT_EQ(a.snapshot().packets_rx, 0u);
}

TEST_F(AppAModuleTest, ReceiveAfterStopReportsClosed) {
  AppAModule a(AppAModule::DeliveryMode::kQueue);
  a.OnStop(port_);
  EXPECT_EQ(a.Receive(milliseconds(10)).status().code(),
            ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace cool::dacapo
