#include "sim/network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "common/thread.h"

namespace cool::sim {
namespace {

LinkProperties FastLink() {
  LinkProperties link;
  link.bandwidth_bps = 0;  // no pacing: keep unit tests quick
  link.latency = Duration::zero();
  return link;
}

TEST(AddressTest, ToStringAndEquality) {
  Address a{"hostA", 80};
  EXPECT_EQ(a.ToString(), "hostA:80");
  EXPECT_EQ(a, (Address{"hostA", 80}));
  EXPECT_NE(a, (Address{"hostA", 81}));
  EXPECT_NE(a, (Address{"hostB", 80}));
}

TEST(NetworkTest, ConnectToNobodyIsRefused) {
  Network net(FastLink());
  auto socket = net.Connect("client", {"server", 9});
  EXPECT_EQ(socket.status().code(), ErrorCode::kUnavailable);
}

TEST(NetworkTest, ListenTwiceOnSameAddressFails) {
  Network net(FastLink());
  auto l1 = net.Listen({"server", 9});
  ASSERT_TRUE(l1.ok());
  EXPECT_EQ(net.Listen({"server", 9}).status().code(),
            ErrorCode::kAlreadyExists);
}

TEST(NetworkTest, AddressReusableAfterListenerDies) {
  Network net(FastLink());
  {
    auto l1 = net.Listen({"server", 9});
    ASSERT_TRUE(l1.ok());
  }
  EXPECT_TRUE(net.Listen({"server", 9}).ok());
}

TEST(NetworkTest, StreamRoundTrip) {
  Network net(FastLink());
  auto listener = net.Listen({"server", 9});
  ASSERT_TRUE(listener.ok());

  cool::Thread server([&] {
    auto sock = (*listener)->Accept();
    ASSERT_TRUE(sock.ok());
    std::uint8_t buf[5];
    ASSERT_TRUE((*sock)->RecvExact(buf).ok());
    EXPECT_EQ(std::string(buf, buf + 5), "hello");
    ASSERT_TRUE((*sock)->Send(std::array<std::uint8_t, 2>{'o', 'k'}).ok());
  });

  auto client = net.Connect("client", {"server", 9});
  ASSERT_TRUE(client.ok());
  const std::string msg = "hello";
  ASSERT_TRUE((*client)
                  ->Send(std::span<const std::uint8_t>(
                      reinterpret_cast<const std::uint8_t*>(msg.data()),
                      msg.size()))
                  .ok());
  std::uint8_t reply[2];
  ASSERT_TRUE((*client)->RecvExact(reply).ok());
  EXPECT_EQ(reply[0], 'o');
  server.join();
}

TEST(NetworkTest, StreamDeliversLargeTransfersIntact) {
  Network net(FastLink());
  auto listener = net.Listen({"server", 9});
  ASSERT_TRUE(listener.ok());

  constexpr std::size_t kTotal = 1 << 20;
  cool::Thread server([&] {
    auto sock = (*listener)->Accept();
    ASSERT_TRUE(sock.ok());
    std::vector<std::uint8_t> received(kTotal);
    ASSERT_TRUE((*sock)->RecvExact(received).ok());
    for (std::size_t i = 0; i < kTotal; ++i) {
      ASSERT_EQ(received[i], static_cast<std::uint8_t>(i * 31 + 7)) << i;
    }
  });

  auto client = net.Connect("client", {"server", 9});
  ASSERT_TRUE(client.ok());
  std::vector<std::uint8_t> data(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  // Send in odd-sized pieces to exercise chunk reassembly.
  std::size_t sent = 0;
  while (sent < kTotal) {
    const std::size_t n = std::min<std::size_t>(40961, kTotal - sent);
    ASSERT_TRUE((*client)->Send({data.data() + sent, n}).ok());
    sent += n;
  }
  server.join();
}

TEST(NetworkTest, CloseUnblocksReader) {
  Network net(FastLink());
  auto listener = net.Listen({"server", 9});
  ASSERT_TRUE(listener.ok());
  auto client = net.Connect("client", {"server", 9});
  ASSERT_TRUE(client.ok());
  auto server_sock = (*listener)->Accept();
  ASSERT_TRUE(server_sock.ok());

  cool::Thread reader([&] {
    std::uint8_t buf[1];
    EXPECT_EQ((*server_sock)->Recv(buf).status().code(),
              ErrorCode::kUnavailable);
  });
  std::this_thread::sleep_for(milliseconds(20));
  (*client)->Close();
  reader.join();
}

TEST(NetworkTest, RecvForTimesOut) {
  Network net(FastLink());
  auto listener = net.Listen({"server", 9});
  ASSERT_TRUE(listener.ok());
  auto client = net.Connect("client", {"server", 9});
  ASSERT_TRUE(client.ok());
  std::uint8_t buf[1];
  const Stopwatch sw;
  EXPECT_EQ((*client)->RecvFor(buf, milliseconds(40)).status().code(),
            ErrorCode::kDeadlineExceeded);
  EXPECT_GE(sw.Elapsed(), milliseconds(35));
}

TEST(NetworkTest, AcceptForTimesOut) {
  Network net(FastLink());
  auto listener = net.Listen({"server", 9});
  ASSERT_TRUE(listener.ok());
  EXPECT_EQ((*listener)->AcceptFor(milliseconds(30)).status().code(),
            ErrorCode::kDeadlineExceeded);
}

TEST(NetworkTest, LatencyDelaysDelivery) {
  LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = milliseconds(30);
  Network net(link);
  auto listener = net.Listen({"server", 9});
  ASSERT_TRUE(listener.ok());

  const Stopwatch total;
  auto client = net.Connect("client", {"server", 9});
  ASSERT_TRUE(client.ok());
  // Handshake alone costs one RTT = 2 * latency.
  EXPECT_GE(total.Elapsed(), milliseconds(55));

  auto server_sock = (*listener)->Accept();
  ASSERT_TRUE(server_sock.ok());
  const Stopwatch sw;
  ASSERT_TRUE((*client)->Send(std::array<std::uint8_t, 1>{42}).ok());
  std::uint8_t buf[1];
  ASSERT_TRUE((*server_sock)->RecvExact(buf).ok());
  EXPECT_GE(sw.Elapsed(), milliseconds(25));  // one-way latency
}

TEST(NetworkTest, BandwidthPacesThroughput) {
  LinkProperties link;
  link.bandwidth_bps = 8'000'000;  // 1 MB/s
  link.latency = Duration::zero();
  Network net(link);
  auto listener = net.Listen({"server", 9});
  ASSERT_TRUE(listener.ok());
  auto client = net.Connect("client", {"server", 9});
  ASSERT_TRUE(client.ok());
  auto server_sock = (*listener)->Accept();
  ASSERT_TRUE(server_sock.ok());

  cool::Thread drain([&] {
    std::vector<std::uint8_t> buf(200 * 1024);
    (void)(*server_sock)->RecvExact(buf);
  });
  std::vector<std::uint8_t> data(200 * 1024);  // 200 KiB at 1 MB/s ~ 200 ms
  const Stopwatch sw;
  ASSERT_TRUE((*client)->Send(data).ok());
  const double elapsed = sw.ElapsedSeconds();
  drain.join();
  EXPECT_GT(elapsed, 0.15);
  EXPECT_LT(elapsed, 0.5);
}

TEST(NetworkTest, LoopbackIsUnpaced) {
  LinkProperties slow;
  slow.bandwidth_bps = 1000;  // absurdly slow default...
  slow.latency = seconds(1);
  Network net(slow);
  auto listener = net.Listen({"same", 9});
  ASSERT_TRUE(listener.ok());
  const Stopwatch sw;
  auto client = net.Connect("same", {"same", 9});  // ...loopback ignores it
  ASSERT_TRUE(client.ok());
  EXPECT_LT(sw.Elapsed(), milliseconds(100));
}

TEST(NetworkTest, PerHostPairLinkOverride) {
  Network net(FastLink());
  LinkProperties slow;
  slow.latency = milliseconds(25);
  slow.bandwidth_bps = 0;
  net.SetLink("a", "b", slow);

  EXPECT_EQ(net.LinkBetween("a", "b").latency, milliseconds(25));
  EXPECT_EQ(net.LinkBetween("b", "a").latency, milliseconds(25));
  EXPECT_EQ(net.LinkBetween("a", "c").latency, Duration::zero());
}

TEST(DatagramTest, BasicSendReceive) {
  Network net(FastLink());
  auto rx = net.OpenPort({"server", 5});
  ASSERT_TRUE(rx.ok());
  auto tx = net.OpenPort({"client", 5});
  ASSERT_TRUE(tx.ok());

  ASSERT_TRUE(
      (*tx)->SendTo({"server", 5}, std::array<std::uint8_t, 3>{1, 2, 3}).ok());
  auto dgram = (*rx)->RecvFor(seconds(1));
  ASSERT_TRUE(dgram.has_value());
  EXPECT_EQ(dgram->payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(dgram->from, (Address{"client", 5}));
}

TEST(DatagramTest, OversizedDatagramRejected) {
  LinkProperties link = FastLink();
  link.mtu = 16;
  Network net(link);
  auto tx = net.OpenPort({"client", 5});
  ASSERT_TRUE(tx.ok());
  std::vector<std::uint8_t> big(17);
  EXPECT_EQ((*tx)->SendTo({"server", 5}, big).code(),
            ErrorCode::kInvalidArgument);
}

TEST(DatagramTest, SendToUnknownPortIsSilentlyDropped) {
  Network net(FastLink());
  auto tx = net.OpenPort({"client", 5});
  ASSERT_TRUE(tx.ok());
  EXPECT_TRUE(
      (*tx)->SendTo({"nowhere", 5}, std::array<std::uint8_t, 1>{1}).ok());
}

TEST(DatagramTest, LossDropsApproximatelyConfiguredFraction) {
  LinkProperties link = FastLink();
  link.loss_rate = 0.5;
  Network net(link, /*rng_seed=*/7);
  auto rx = net.OpenPort({"server", 5});
  ASSERT_TRUE(rx.ok());
  auto tx = net.OpenPort({"client", 5});
  ASSERT_TRUE(tx.ok());

  constexpr int kSent = 400;
  for (int i = 0; i < kSent; ++i) {
    ASSERT_TRUE(
        (*tx)->SendTo({"server", 5}, std::array<std::uint8_t, 1>{1}).ok());
  }
  int received = 0;
  while ((*rx)->RecvFor(milliseconds(50)).has_value()) ++received;
  EXPECT_GT(received, kSent / 4);
  EXPECT_LT(received, 3 * kSent / 4);
}

TEST(DatagramTest, RecvUnblocksOnClose) {
  Network net(FastLink());
  auto rx = net.OpenPort({"server", 5});
  ASSERT_TRUE(rx.ok());
  cool::Thread receiver([&] { EXPECT_EQ((*rx)->Recv(), std::nullopt); });
  std::this_thread::sleep_for(milliseconds(20));
  (*rx)->Close();
  receiver.join();
}

TEST(DatagramTest, PortReusableAfterClose) {
  Network net(FastLink());
  {
    auto p = net.OpenPort({"h", 5});
    ASSERT_TRUE(p.ok());
  }
  EXPECT_TRUE(net.OpenPort({"h", 5}).ok());
}

TEST(DatagramTest, DeterministicLossWithSameSeed) {
  auto run = [](std::uint64_t seed) {
    LinkProperties link;
    link.bandwidth_bps = 0;
    link.latency = Duration::zero();
    link.loss_rate = 0.3;
    Network net(link, seed);
    auto rx = net.OpenPort({"s", 5});
    auto tx = net.OpenPort({"c", 5});
    std::vector<bool> delivered;
    for (int i = 0; i < 100; ++i) {
      (void)(*tx)->SendTo({"s", 5}, std::array<std::uint8_t, 1>{1});
      delivered.push_back((*rx)->RecvFor(milliseconds(5)).has_value());
    }
    return delivered;
  };
  EXPECT_EQ(run(11), run(11));
}

TEST(DatagramTest, JitterCanReorder) {
  LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = milliseconds(1);
  link.jitter = milliseconds(20);
  Network net(link, /*rng_seed=*/3);
  auto rx = net.OpenPort({"s", 5});
  ASSERT_TRUE(rx.ok());
  auto tx = net.OpenPort({"c", 5});
  ASSERT_TRUE(tx.ok());

  for (std::uint8_t i = 0; i < 20; ++i) {
    ASSERT_TRUE((*tx)->SendTo({"s", 5}, std::array<std::uint8_t, 1>{i}).ok());
  }
  std::vector<std::uint8_t> order;
  for (int i = 0; i < 20; ++i) {
    auto d = (*rx)->RecvFor(milliseconds(500));
    ASSERT_TRUE(d.has_value());
    order.push_back(d->payload[0]);
  }
  // All 20 delivered exactly once...
  std::vector<std::uint8_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint8_t i = 0; i < 20; ++i) EXPECT_EQ(sorted[i], i);
  // ...and with 20ms jitter over 1ms latency, not in send order.
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
}

}  // namespace
}  // namespace cool::sim
