#include "sim/waitset.h"

#include <gtest/gtest.h>

#include <array>
#include <thread>

#include "common/thread.h"
#include "sim/network.h"

namespace cool::sim {
namespace {

LinkProperties FastLink() {
  LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = Duration::zero();
  return link;
}

TEST(WaitSetTest, WatchPostsImmediateProbe) {
  WaitSet set;
  ASSERT_TRUE(set.Add(7));
  Watchable source;
  source.Watch(set, 7);  // the attach probe alone must wake the waiter

  std::array<WaitSet::ReadyEvent, 4> out{};
  const std::size_t n = set.Wait(out, milliseconds(200));
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(out[0].token, 7u);
}

TEST(WaitSetTest, DuplicateAddRejected) {
  WaitSet set;
  EXPECT_TRUE(set.Add(1));
  EXPECT_FALSE(set.Add(1));
}

TEST(WaitSetTest, PostForUnregisteredTokenIsDropped) {
  WaitSet set;
  ASSERT_TRUE(set.Add(1));
  set.Post(99);  // never registered
  std::array<WaitSet::ReadyEvent, 4> out{};
  EXPECT_EQ(set.Wait(out, milliseconds(20)), 0u);
}

TEST(WaitSetTest, DueEntriesForOneTokenCollapse) {
  WaitSet set;
  ASSERT_TRUE(set.Add(3));
  Watchable source;
  source.Watch(set, 3);
  source.SignalReady();
  source.SignalReady();
  source.SignalReady();

  std::array<WaitSet::ReadyEvent, 8> out{};
  const std::size_t n = set.Wait(out, milliseconds(200));
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(out[0].token, 3u);
  // Nothing left behind once the due entries are harvested.
  EXPECT_EQ(set.Wait(out, milliseconds(20)), 0u);
}

TEST(WaitSetTest, FutureEntryWakesAtItsDueTime) {
  WaitSet set;
  ASSERT_TRUE(set.Add(5));
  Watchable source;
  source.Watch(set, 5);
  std::array<WaitSet::ReadyEvent, 4> out{};
  ASSERT_EQ(set.Wait(out, milliseconds(50)), 1u);  // drain the attach probe

  const TimePoint due = Now() + milliseconds(60);
  source.SignalReady(due);
  // Not yet due: a short wait must time out instead of delivering early.
  EXPECT_EQ(set.Wait(out, milliseconds(5)), 0u);
  // Long enough: the entry fires once its delivery time arrives.
  ASSERT_EQ(set.Wait(out, seconds(5)), 1u);
  EXPECT_EQ(out[0].token, 5u);
  EXPECT_GE(Now(), due);
}

TEST(WaitSetTest, PostAtDeliversAtTheDeadline) {
  WaitSet set;
  ASSERT_TRUE(set.Add(9));
  const TimePoint due = Now() + milliseconds(60);
  set.PostAt(9, due);  // the reactor's timer primitive
  std::array<WaitSet::ReadyEvent, 4> out{};
  // Not yet due: a short wait must time out instead of delivering early.
  EXPECT_EQ(set.Wait(out, milliseconds(5)), 0u);
  ASSERT_EQ(set.Wait(out, seconds(5)), 1u);
  EXPECT_EQ(out[0].token, 9u);
  EXPECT_GE(Now(), due);
}

TEST(WaitSetTest, PostAtEntriesAreLazilyCancelledByRemove) {
  WaitSet set;
  ASSERT_TRUE(set.Add(6));
  set.PostAt(6, Now() + milliseconds(10));
  set.Remove(6);  // pending timer entry goes stale, never delivered
  std::array<WaitSet::ReadyEvent, 4> out{};
  EXPECT_EQ(set.Wait(out, milliseconds(60)), 0u);
}

TEST(WaitSetTest, CoalescedNotifiesLoseNoWakeups) {
  // Post -> Wait -> Post -> Wait: the notify_pending coalescing flag must
  // be reset by each Wait pass, or the second post's wakeup is swallowed.
  WaitSet set;
  ASSERT_TRUE(set.Add(12));
  std::array<WaitSet::ReadyEvent, 4> out{};
  for (int round = 0; round < 3; ++round) {
    set.Post(12);
    ASSERT_EQ(set.Wait(out, seconds(5)), 1u) << "round " << round;
    EXPECT_EQ(out[0].token, 12u);
  }
}

TEST(WaitSetTest, CrossThreadPostWakesBlockedWaiter) {
  WaitSet set;
  ASSERT_TRUE(set.Add(11));
  Thread poster([&set](std::stop_token) {
    std::this_thread::sleep_for(milliseconds(20));
    set.Post(11);
  });
  std::array<WaitSet::ReadyEvent, 1> out{};
  const std::size_t n = set.Wait(out, seconds(10));
  poster.join();
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(out[0].token, 11u);
}

TEST(WaitSetTest, RemoveDiscardsPendingEntries) {
  WaitSet set;
  ASSERT_TRUE(set.Add(2));
  set.Post(2);
  set.Remove(2);
  std::array<WaitSet::ReadyEvent, 4> out{};
  EXPECT_EQ(set.Wait(out, milliseconds(20)), 0u);
}

TEST(WaitSetTest, CloseWakesWaiter) {
  WaitSet set;
  ASSERT_TRUE(set.Add(1));
  Thread closer([&set](std::stop_token) {
    std::this_thread::sleep_for(milliseconds(20));
    set.Close();
  });
  std::array<WaitSet::ReadyEvent, 1> out{};
  EXPECT_EQ(set.Wait(out, seconds(10)), 0u);
  EXPECT_TRUE(set.closed());
  closer.join();
}

TEST(WaitSetTest, SignalAfterWaitSetDestructionIsSafe) {
  Watchable source;
  {
    WaitSet set;
    ASSERT_TRUE(set.Add(4));
    source.Watch(set, 4);
  }
  source.SignalReady();  // must not touch the dead set
  EXPECT_TRUE(source.watched());
}

TEST(WaitSetTest, ReattachReplacesFirstWaitSet) {
  WaitSet first;
  WaitSet second;
  ASSERT_TRUE(first.Add(1));
  ASSERT_TRUE(second.Add(2));
  Watchable source;
  source.Watch(first, 1);
  std::array<WaitSet::ReadyEvent, 2> out{};
  ASSERT_EQ(first.Wait(out, milliseconds(200)), 1u);  // attach probe

  source.Watch(second, 2);
  ASSERT_EQ(second.Wait(out, milliseconds(200)), 1u);  // attach probe
  source.SignalReady();
  ASSERT_EQ(second.Wait(out, milliseconds(200)), 1u);
  EXPECT_EQ(out[0].token, 2u);
  EXPECT_EQ(first.Wait(out, milliseconds(20)), 0u);  // detached: no signal
}

// --- integration with the simulated network -------------------------------

TEST(WaitSetNetworkTest, StreamDataArrivalWakesWaitSet) {
  Network net(FastLink());
  auto listener = net.Listen({"server", 9});
  ASSERT_TRUE(listener.ok());
  auto client = net.Connect("client", {"server", 9});
  ASSERT_TRUE(client.ok());
  auto accepted = (*listener)->Accept();
  ASSERT_TRUE(accepted.ok());

  WaitSet set;
  ASSERT_TRUE(set.Add(1));
  (*accepted)->WatchRecv(set, 1);
  std::array<WaitSet::ReadyEvent, 2> out{};
  (void)set.Wait(out, milliseconds(50));  // drain the attach probe

  const std::array<std::uint8_t, 3> payload{1, 2, 3};
  ASSERT_TRUE((*client)->Send(payload).ok());

  ASSERT_EQ(set.Wait(out, seconds(10)), 1u);
  EXPECT_EQ(out[0].token, 1u);
  std::array<std::uint8_t, 8> buf{};
  auto got = (*accepted)->TryRecv(buf);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 3u);
}

TEST(WaitSetNetworkTest, PendingConnectWakesAcceptWatch) {
  Network net(FastLink());
  auto listener = net.Listen({"server", 9});
  ASSERT_TRUE(listener.ok());

  WaitSet set;
  ASSERT_TRUE(set.Add(1));
  (*listener)->WatchAccept(set, 1);
  std::array<WaitSet::ReadyEvent, 2> out{};
  (void)set.Wait(out, milliseconds(50));  // attach probe (nothing pending)

  auto client = net.Connect("client", {"server", 9});
  ASSERT_TRUE(client.ok());

  ASSERT_EQ(set.Wait(out, seconds(10)), 1u);
  auto accepted = (*listener)->TryAccept();
  ASSERT_TRUE(accepted.ok());
  EXPECT_NE(*accepted, nullptr);
}

}  // namespace
}  // namespace cool::sim
