// End-to-end test of chic-GENERATED code: examples/idl/media.idl is
// compiled by the chic tool at build time (see tests/CMakeLists.txt); the
// generated stub/skeleton pair is exercised over the full ORB stack,
// including the generated setQoSParameter hook and user exceptions.
#include <gtest/gtest.h>

#include <atomic>

#include "media.h"  // chic-generated from examples/idl/media.idl
#include "orb/orb.h"

namespace {

using namespace cool;  // NOLINT: test file exercising generated code

class TestImageSource : public Media::ImageSourceSkeleton {
 public:
  ::cool::Result<std::vector<corba::Octet>> fetch_frame(
      corba::Long width, corba::Long height, Media::Format format,
      Media::FrameInfo& info) override {
    if (width <= 0 || height <= 0) {
      Media::NotAvailable ex;
      ex.reason = "non-positive dimensions";
      RaiseException(ex);
      return std::vector<corba::Octet>{};
    }
    info.width = width;
    info.height = height;
    info.format = format;
    info.seq_no = ++seq_;
    std::vector<corba::Octet> pixels(
        static_cast<std::size_t>(width) * static_cast<std::size_t>(height));
    for (std::size_t i = 0; i < pixels.size(); ++i) {
      pixels[i] = static_cast<corba::Octet>(i);
    }
    return pixels;
  }

  ::cool::Result<corba::Long> frame_count() override { return 128; }

  ::cool::Status prefetch(corba::Long count) override {
    prefetched_ += count;
    return ::cool::Status::Ok();
  }

  corba::Long prefetched() const { return prefetched_.load(); }

 private:
  corba::ULong seq_ = 0;
  // Written by the server dispatch thread, polled by the test thread.
  std::atomic<corba::Long> prefetched_{0};
};

class GeneratedRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::LinkProperties link;
    link.bandwidth_bps = 0;
    link.latency = microseconds(100);
    net_ = std::make_unique<sim::Network>(link);
    server_ = std::make_unique<orb::ORB>(net_.get(), "server");
    client_ = std::make_unique<orb::ORB>(net_.get(), "client");
    servant_ = std::make_shared<TestImageSource>();
    auto ref = server_->RegisterServant("imgs", servant_);
    ASSERT_TRUE(ref.ok());
    ref_ = *ref;
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Shutdown(); }

  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<orb::ORB> server_;
  std::unique_ptr<orb::ORB> client_;
  std::shared_ptr<TestImageSource> servant_;
  orb::ObjectRef ref_;
};

TEST_F(GeneratedRuntimeTest, RepositoryIdMatchesIdl) {
  EXPECT_EQ(servant_->repository_id(), "IDL:Media/ImageSource:1.0");
  EXPECT_STREQ(Media::ImageSourceStub::kRepoId, "IDL:Media/ImageSource:1.0");
}

TEST_F(GeneratedRuntimeTest, TypedInvocationWithOutParam) {
  Media::ImageSourceStub stub(client_.get(), ref_);
  Media::FrameInfo info;
  auto pixels = stub.fetch_frame(8, 4, Media::Format::RGB24, &info);
  ASSERT_TRUE(pixels.ok()) << pixels.status();
  EXPECT_EQ(pixels->size(), 32u);
  EXPECT_EQ((*pixels)[5], 5);
  EXPECT_EQ(info.width, 8);
  EXPECT_EQ(info.height, 4);
  EXPECT_EQ(info.format, Media::Format::RGB24);
  EXPECT_EQ(info.seq_no, 1u);

  // Sequence number advances per call (server-side state).
  auto again = stub.fetch_frame(1, 1, Media::Format::GRAY8, &info);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(info.seq_no, 2u);
}

TEST_F(GeneratedRuntimeTest, SimpleReturn) {
  Media::ImageSourceStub stub(client_.get(), ref_);
  auto count = stub.frame_count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 128);
}

TEST_F(GeneratedRuntimeTest, UserExceptionSurfacesAsStatus) {
  Media::ImageSourceStub stub(client_.get(), ref_);
  Media::FrameInfo info;
  auto pixels = stub.fetch_frame(-1, 4, Media::Format::GRAY8, &info);
  ASSERT_FALSE(pixels.ok());
  EXPECT_EQ(pixels.status().code(), ErrorCode::kFailedPrecondition);
  EXPECT_NE(pixels.status().message().find("IDL:Media/NotAvailable:1.0"),
            std::string::npos);
}

TEST_F(GeneratedRuntimeTest, GeneratedOneway) {
  Media::ImageSourceStub stub(client_.get(), ref_);
  ASSERT_TRUE(stub.prefetch(16).ok());
  ASSERT_TRUE(stub.prefetch(4).ok());
  const TimePoint deadline = Now() + seconds(2);
  while (servant_->prefetched() < 20 && Now() < deadline) {
    PreciseSleep(milliseconds(1));
  }
  EXPECT_EQ(servant_->prefetched(), 20);
}

TEST_F(GeneratedRuntimeTest, GeneratedStubHasSetQoSParameter) {
  // The paper's Chic modification: the stub template carries
  // setQoSParameter. (Over TCP a non-empty spec is refused, which proves
  // the call is wired through to the transport negotiation.)
  Media::ImageSourceStub stub(client_.get(), ref_);
  auto spec = qos::QoSSpec::FromParameters({qos::RequireReliability(1)});
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(stub.setQoSParameter(*spec).code(), ErrorCode::kUnsupported);
  EXPECT_TRUE(stub.setQoSParameter(qos::QoSSpec{}).ok());
}

TEST_F(GeneratedRuntimeTest, GeneratedTypesRoundTripViaCdr) {
  Media::FrameInfo info;
  info.width = 640;
  info.height = 480;
  info.format = Media::Format::YUV420;
  info.seq_no = 99;

  cdr::Encoder enc(cdr::ByteOrder::kBigEndian, 0);
  Media::Encode(enc, info);
  cdr::Decoder dec(enc.buffer().view(), cdr::ByteOrder::kBigEndian, 0);
  Media::FrameInfo decoded;
  ASSERT_TRUE(Media::Decode(dec, decoded).ok());
  EXPECT_EQ(decoded, info);
}

TEST_F(GeneratedRuntimeTest, GeneratedEnumRejectsOutOfRange) {
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian, 0);
  enc.PutULong(17);
  cdr::Decoder dec(enc.buffer().view(), cdr::ByteOrder::kLittleEndian, 0);
  Media::Format f;
  EXPECT_EQ(Media::Decode(dec, f).code(), ErrorCode::kProtocolError);
}

TEST_F(GeneratedRuntimeTest, WorksColocatedToo) {
  auto local = std::make_shared<TestImageSource>();
  auto ref = client_->RegisterServant("local_imgs", local);
  ASSERT_TRUE(ref.ok());
  Media::ImageSourceStub stub(client_.get(), *ref);
  auto count = stub.frame_count();
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(*count, 128);
  EXPECT_EQ(stub.bound_protocol(), "colocated");
}

}  // namespace
