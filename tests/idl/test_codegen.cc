// Code generator: structural checks on the emitted C++ (the generated
// code's *behaviour* is tested in test_generated_runtime.cc, which runs a
// chic-compiled interface end-to-end).
#include "idl/codegen.h"

#include <gtest/gtest.h>

namespace cool::idl {
namespace {

constexpr const char* kSample = R"idl(
module Demo {
  enum Mode { FAST, SAFE };
  struct Pair { long a; long b; };
  exception Oops { string what; };
  interface Svc {
    long add(in Pair p) raises (Oops);
    oneway void hint(in Mode m);
    void swap(inout long x, out long y);
  };
};
)idl";

std::string Gen() {
  auto out = CompileIdl(kSample, {.guard_name = "demo"});
  EXPECT_TRUE(out.ok()) << out.status();
  return out.value_or("");
}

TEST(CodegenTest, RepositoryIdFormat) {
  EXPECT_EQ(RepositoryId("Media", "Source"), "IDL:Media/Source:1.0");
}

TEST(CodegenTest, CppTypeNames) {
  Type t;
  t.kind = Type::Kind::kULong;
  EXPECT_EQ(CppTypeName(t), "::cool::corba::ULong");
  t.kind = Type::Kind::kString;
  EXPECT_EQ(CppTypeName(t), "::cool::corba::String");
  Type seq;
  seq.kind = Type::Kind::kSequence;
  seq.element = std::make_shared<Type>(t);
  EXPECT_EQ(CppTypeName(seq), "std::vector<::cool::corba::String>");
  Type named;
  named.kind = Type::Kind::kNamed;
  named.name = "Pair";
  EXPECT_EQ(CppTypeName(named), "Pair");
}

TEST(CodegenTest, GuardAndNamespace) {
  const std::string out = Gen();
  EXPECT_NE(out.find("#ifndef COOL_IDL_GEN_DEMO_H"), std::string::npos);
  EXPECT_NE(out.find("namespace Demo {"), std::string::npos);
}

TEST(CodegenTest, EnumEmitted) {
  const std::string out = Gen();
  EXPECT_NE(out.find("enum class Mode : ::cool::corba::ULong"),
            std::string::npos);
  EXPECT_NE(out.find("FAST = 0"), std::string::npos);
  EXPECT_NE(out.find("SAFE = 1"), std::string::npos);
}

TEST(CodegenTest, StructWithCodecs) {
  const std::string out = Gen();
  EXPECT_NE(out.find("struct Pair {"), std::string::npos);
  EXPECT_NE(out.find("inline void Encode(::cool::cdr::Encoder& _e, "
                     "const Pair& _v)"),
            std::string::npos);
  EXPECT_NE(out.find("inline ::cool::Status Decode(::cool::cdr::Decoder& "
                     "_d, Pair& _v)"),
            std::string::npos);
}

TEST(CodegenTest, ExceptionCarriesRepoId) {
  const std::string out = Gen();
  EXPECT_NE(out.find("\"IDL:Demo/Oops:1.0\""), std::string::npos);
}

TEST(CodegenTest, StubInheritsOrbStubAndCarriesSetQoSParameter) {
  // The paper's key generated artifact: every stub carries the QoS hook.
  const std::string out = Gen();
  EXPECT_NE(out.find("class SvcStub : public ::cool::orb::Stub"),
            std::string::npos);
  EXPECT_NE(out.find("setQoSParameter"), std::string::npos);
}

TEST(CodegenTest, StubMethodSignatures) {
  const std::string out = Gen();
  EXPECT_NE(out.find("::cool::Result<::cool::corba::Long> add(const Pair& "
                     "p)"),
            std::string::npos);
  EXPECT_NE(out.find("::cool::Status hint(Mode m)"), std::string::npos);
  EXPECT_NE(out.find("::cool::Status swap(::cool::corba::Long* x, "
                     "::cool::corba::Long* y)"),
            std::string::npos);
}

TEST(CodegenTest, OnewayUsesInvokeOneway) {
  const std::string out = Gen();
  EXPECT_NE(out.find("return InvokeOneway(\"hint\""), std::string::npos);
}

TEST(CodegenTest, SkeletonDispatchesAllOperations) {
  const std::string out = Gen();
  EXPECT_NE(out.find("class SvcSkeleton : public ::cool::orb::Servant"),
            std::string::npos);
  EXPECT_NE(out.find("if (_op == \"add\")"), std::string::npos);
  EXPECT_NE(out.find("if (_op == \"hint\")"), std::string::npos);
  EXPECT_NE(out.find("if (_op == \"swap\")"), std::string::npos);
  EXPECT_NE(out.find("repository_id"), std::string::npos);
  EXPECT_NE(out.find("\"IDL:Demo/Svc:1.0\""), std::string::npos);
}

TEST(CodegenTest, SkeletonEmitsRaiseHelper) {
  const std::string out = Gen();
  EXPECT_NE(out.find("void RaiseException(const Oops& _ex)"),
            std::string::npos);
}

TEST(CodegenTest, TypedefAndConstEmitted) {
  auto out = CompileIdl(R"(module M {
    const long kLimit = 99;
    typedef sequence<octet> Blob;
    struct S { Blob data; };
  };)",
                        {.guard_name = "tdc"});
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("inline constexpr ::cool::corba::Long kLimit = 99;"),
            std::string::npos);
  EXPECT_NE(out->find("using Blob = std::vector<::cool::corba::Octet>;"),
            std::string::npos);
  // The typedef precedes the struct that uses it (source order).
  EXPECT_LT(out->find("using Blob"), out->find("struct S"));
}

TEST(CodegenTest, ParseErrorsPropagate) {
  EXPECT_FALSE(CompileIdl("module {", {}).ok());
}

TEST(CodegenTest, GeneratedCodeHasNoPlaceholders) {
  const std::string out = Gen();
  EXPECT_EQ(out.find("/*bad type*/"), std::string::npos);
}

}  // namespace
}  // namespace cool::idl
