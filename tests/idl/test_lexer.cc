#include "idl/lexer.h"

#include <gtest/gtest.h>

namespace cool::idl {
namespace {

TEST(LexerTest, EmptyInputYieldsEof) {
  auto tokens = Tokenize("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ(tokens->front().kind, TokenKind::kEof);
}

TEST(LexerTest, KeywordsVsIdentifiers) {
  auto tokens = Tokenize("module interface myName _under score9");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "module");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kKeyword);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[2].text, "myName");
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kIdentifier);
}

TEST(LexerTest, Punctuation) {
  auto tokens = Tokenize("{ } ( ) < > , ; : :: =");
  ASSERT_TRUE(tokens.ok());
  const TokenKind expected[] = {
      TokenKind::kLBrace, TokenKind::kRBrace,    TokenKind::kLParen,
      TokenKind::kRParen, TokenKind::kLAngle,    TokenKind::kRAngle,
      TokenKind::kComma,  TokenKind::kSemicolon, TokenKind::kColon,
      TokenKind::kScope,  TokenKind::kEquals,    TokenKind::kEof,
  };
  ASSERT_EQ(tokens->size(), std::size(expected));
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ((*tokens)[i].kind, expected[i]) << i;
  }
}

TEST(LexerTest, ScopeIsOneToken) {
  auto tokens = Tokenize("A::B");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);  // A :: B eof
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kScope);
}

TEST(LexerTest, IntegerLiterals) {
  auto tokens = Tokenize("123 0");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIntegerLiteral);
  EXPECT_EQ((*tokens)[0].text, "123");
  EXPECT_EQ((*tokens)[1].text, "0");
}

TEST(LexerTest, LineCommentsSkipped) {
  auto tokens = Tokenize("module // a comment\nM");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[1].text, "M");
  EXPECT_EQ((*tokens)[1].line, 2);
}

TEST(LexerTest, BlockCommentsSkippedAndLinesCounted) {
  auto tokens = Tokenize("module /* multi\nline\ncomment */ M");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[1].text, "M");
  EXPECT_EQ((*tokens)[1].line, 3);
}

TEST(LexerTest, UnterminatedBlockCommentFails) {
  EXPECT_FALSE(Tokenize("module /* oops").ok());
}

TEST(LexerTest, PreprocessorLinesSkipped) {
  auto tokens = Tokenize("#include <orb.idl>\nmodule M");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "module");
}

TEST(LexerTest, StrayCharacterFailsWithLineNumber) {
  auto tokens = Tokenize("module M\n$");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("line 2"), std::string::npos);
}

TEST(LexerTest, LineNumbersTracked) {
  auto tokens = Tokenize("a\nb\n\nc");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[2].line, 4);
}

TEST(LexerTest, AllKeywordsRecognized) {
  for (const char* kw :
       {"module", "interface", "struct", "enum", "exception", "oneway",
        "raises", "in", "out", "inout", "void", "boolean", "octet", "char",
        "short", "long", "unsigned", "float", "double", "string",
        "sequence"}) {
    EXPECT_TRUE(IsIdlKeyword(kw)) << kw;
  }
  EXPECT_FALSE(IsIdlKeyword("qos"));
  EXPECT_FALSE(IsIdlKeyword("Module"));  // case sensitive
}

}  // namespace
}  // namespace cool::idl
