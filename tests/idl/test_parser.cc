#include "idl/parser.h"

#include <gtest/gtest.h>

namespace cool::idl {
namespace {

constexpr const char* kMedia = R"idl(
module Media {
  enum Format { GRAY8, RGB24 };
  struct Frame {
    long width;
    long height;
    Format format;
    sequence<octet> pixels;
  };
  exception NotAvailable { string reason; };
  interface Source {
    Frame fetch(in long index) raises (NotAvailable);
    long count();
    oneway void prefetch(in long n);
    void resize(in long w, inout long h, out long area);
  };
};
)idl";

TEST(ParserTest, ParsesFullModule) {
  auto file = Parse(kMedia);
  ASSERT_TRUE(file.ok()) << file.status();
  ASSERT_EQ(file->modules.size(), 1u);
  const ModuleDef& m = file->modules[0];
  EXPECT_EQ(m.name, "Media");
  ASSERT_EQ(m.enums.size(), 1u);
  ASSERT_EQ(m.structs.size(), 1u);
  ASSERT_EQ(m.exceptions.size(), 1u);
  ASSERT_EQ(m.interfaces.size(), 1u);

  const EnumDef& e = m.enums[0];
  EXPECT_EQ(e.enumerators, (std::vector<std::string>{"GRAY8", "RGB24"}));

  const StructDef& s = m.structs[0];
  ASSERT_EQ(s.fields.size(), 4u);
  EXPECT_EQ(s.fields[2].type.kind, Type::Kind::kNamed);
  EXPECT_EQ(s.fields[2].type.name, "Format");
  EXPECT_EQ(s.fields[3].type.kind, Type::Kind::kSequence);
  EXPECT_EQ(s.fields[3].type.element->kind, Type::Kind::kOctet);

  const InterfaceDef& iface = m.interfaces[0];
  ASSERT_EQ(iface.operations.size(), 4u);
  EXPECT_EQ(iface.operations[0].raises,
            (std::vector<std::string>{"NotAvailable"}));
  EXPECT_TRUE(iface.operations[2].oneway);
  const Operation& resize = iface.operations[3];
  EXPECT_EQ(resize.params[0].dir, ParamDir::kIn);
  EXPECT_EQ(resize.params[1].dir, ParamDir::kInOut);
  EXPECT_EQ(resize.params[2].dir, ParamDir::kOut);
}

TEST(ParserTest, UnsignedTypeForms) {
  auto file = Parse(R"(module M { struct S {
    unsigned short a;
    unsigned long b;
    unsigned long long c;
    long long d;
  }; };)");
  ASSERT_TRUE(file.ok()) << file.status();
  const auto& fields = file->modules[0].structs[0].fields;
  EXPECT_EQ(fields[0].type.kind, Type::Kind::kUShort);
  EXPECT_EQ(fields[1].type.kind, Type::Kind::kULong);
  EXPECT_EQ(fields[2].type.kind, Type::Kind::kULongLong);
  EXPECT_EQ(fields[3].type.kind, Type::Kind::kLongLong);
}

TEST(ParserTest, NestedSequences) {
  auto file = Parse(
      "module M { struct S { sequence<sequence<long>> grid; }; };");
  ASSERT_TRUE(file.ok()) << file.status();
  const Type& t = file->modules[0].structs[0].fields[0].type;
  EXPECT_EQ(t.kind, Type::Kind::kSequence);
  EXPECT_EQ(t.element->kind, Type::Kind::kSequence);
  EXPECT_EQ(t.element->element->kind, Type::Kind::kLong);
}

TEST(ParserTest, MultipleModules) {
  auto file = Parse("module A { enum E { X }; }; module B { enum F { Y }; };");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->modules.size(), 2u);
}

TEST(ParserTest, UseBeforeDefinitionRejected) {
  EXPECT_FALSE(
      Parse("module M { struct S { Later l; }; struct Later { long x; }; };")
          .ok());
}

TEST(ParserTest, DuplicateTypeNameRejected) {
  EXPECT_FALSE(
      Parse("module M { enum E { X }; struct E { long x; }; };").ok());
}

TEST(ParserTest, DuplicateFieldRejected) {
  EXPECT_FALSE(Parse("module M { struct S { long a; long a; }; };").ok());
}

TEST(ParserTest, DuplicateOperationRejected) {
  EXPECT_FALSE(
      Parse("module M { interface I { void f(); void f(); }; };").ok());
}

TEST(ParserTest, EmptyStructRejected) {
  EXPECT_FALSE(Parse("module M { struct S { }; };").ok());
}

TEST(ParserTest, OnewayMustReturnVoid) {
  EXPECT_FALSE(
      Parse("module M { interface I { oneway long f(); }; };").ok());
}

TEST(ParserTest, OnewayInParamsOnly) {
  EXPECT_FALSE(
      Parse("module M { interface I { oneway void f(out long x); }; };")
          .ok());
}

TEST(ParserTest, OnewayCannotRaise) {
  EXPECT_FALSE(Parse(R"(module M {
    exception E { string why; };
    interface I { oneway void f() raises (E); };
  };)")
                   .ok());
}

TEST(ParserTest, RaisesUnknownExceptionRejected) {
  EXPECT_FALSE(
      Parse("module M { interface I { void f() raises (Ghost); }; };").ok());
}

TEST(ParserTest, VoidParameterRejected) {
  EXPECT_FALSE(
      Parse("module M { interface I { void f(in void x); }; };").ok());
}

TEST(ParserTest, MissingDirectionRejected) {
  EXPECT_FALSE(
      Parse("module M { interface I { void f(long x); }; };").ok());
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto file = Parse("module M {\n  struct S {\n    bogus x;\n  };\n};");
  ASSERT_FALSE(file.ok());
  EXPECT_NE(file.status().message().find("line 3"), std::string::npos);
}

TEST(ParserTest, EmptyFileRejected) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("// only a comment").ok());
}

TEST(ParserTest, TypedefDefinesAUsableName) {
  auto file = Parse(R"(module M {
    typedef sequence<octet> Blob;
    typedef long Handle;
    struct S { Blob data; Handle h; };
  };)");
  ASSERT_TRUE(file.ok()) << file.status();
  ASSERT_EQ(file->modules[0].typedefs.size(), 2u);
  EXPECT_EQ(file->modules[0].typedefs[0].name, "Blob");
  EXPECT_EQ(file->modules[0].typedefs[0].type.kind, Type::Kind::kSequence);
  // The struct references the typedef as a named type.
  EXPECT_EQ(file->modules[0].structs[0].fields[0].type.kind,
            Type::Kind::kNamed);
  EXPECT_EQ(file->modules[0].structs[0].fields[0].type.name, "Blob");
}

TEST(ParserTest, TypedefOfVoidRejected) {
  EXPECT_FALSE(Parse("module M { typedef void V; };").ok());
}

TEST(ParserTest, TypedefDuplicateNameRejected) {
  EXPECT_FALSE(
      Parse("module M { typedef long A; typedef short A; };").ok());
}

TEST(ParserTest, ConstIntegral) {
  auto file = Parse(R"(module M {
    const long kMax = 42;
    const unsigned short kPort = 7001;
  };)");
  ASSERT_TRUE(file.ok()) << file.status();
  ASSERT_EQ(file->modules[0].consts.size(), 2u);
  EXPECT_EQ(file->modules[0].consts[0].name, "kMax");
  EXPECT_EQ(file->modules[0].consts[0].value, "42");
  EXPECT_EQ(file->modules[0].consts[1].type.kind, Type::Kind::kUShort);
}

TEST(ParserTest, ConstNonIntegralRejected) {
  EXPECT_FALSE(Parse("module M { const string kName = 1; };").ok());
  EXPECT_FALSE(Parse("module M { const float kPi = 3; };").ok());
}

TEST(ParserTest, SourceOrderIsRecorded) {
  auto file = Parse(R"(module M {
    enum E { A };
    typedef long T;
    struct S { T t; };
  };)");
  ASSERT_TRUE(file.ok());
  using DefKind = ModuleDef::DefKind;
  const auto& order = file->modules[0].order;
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].first, DefKind::kEnum);
  EXPECT_EQ(order[1].first, DefKind::kTypedef);
  EXPECT_EQ(order[2].first, DefKind::kStruct);
}

TEST(ParserTest, AttributesDesugarToOperations) {
  auto file = Parse(R"(module M {
    interface I {
      attribute long level;
      readonly attribute string name;
    };
  };)");
  ASSERT_TRUE(file.ok()) << file.status();
  const auto& ops = file->modules[0].interfaces[0].operations;
  ASSERT_EQ(ops.size(), 3u);  // _get_level, _set_level, _get_name
  EXPECT_EQ(ops[0].name, "_get_level");
  EXPECT_EQ(ops[0].return_type.kind, Type::Kind::kLong);
  EXPECT_TRUE(ops[0].params.empty());
  EXPECT_EQ(ops[1].name, "_set_level");
  EXPECT_TRUE(ops[1].return_type.IsVoid());
  ASSERT_EQ(ops[1].params.size(), 1u);
  EXPECT_EQ(ops[1].params[0].dir, ParamDir::kIn);
  EXPECT_EQ(ops[2].name, "_get_name");
  EXPECT_EQ(ops[2].return_type.kind, Type::Kind::kString);
}

TEST(ParserTest, DuplicateAttributeRejected) {
  EXPECT_FALSE(Parse(R"(module M { interface I {
    attribute long x;
    attribute short x;
  }; };)")
                   .ok());
}

TEST(ParserTest, AttributeOfVoidRejected) {
  EXPECT_FALSE(
      Parse("module M { interface I { attribute void v; }; };").ok());
}

TEST(ParserTest, InterfaceTypeVisibleAsName) {
  // Interfaces register their name; a later struct can't reuse it.
  EXPECT_FALSE(
      Parse("module M { interface I { }; struct I { long x; }; };").ok());
}

}  // namespace
}  // namespace cool::idl
