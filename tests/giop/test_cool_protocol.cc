// The proprietary COOL message protocol (the second protocol of the
// generic message layer, paper Fig. 1) — wire codecs and engines.

#include "giop/cool_protocol.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/thread.h"
#include "transport/tcp_channel.h"

namespace cool::coolproto {
namespace {

corba::OctetSeq Key(std::string_view s) { return {s.begin(), s.end()}; }

Request SampleRequest() {
  Request r;
  r.id = 7;
  r.object_key = Key("obj");
  r.operation = "render";
  r.qos_params = {qos::RequireThroughputKbps(1000, 100)};
  r.args = {1, 2, 3, 4};
  return r;
}

TEST(CoolProtocolTest, RequestRoundTrip) {
  const Request request = SampleRequest();
  const ByteBuffer wire = EncodeRequest(request);
  auto decoded = DecodeRequest(wire.view());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->id, request.id);
  EXPECT_EQ(decoded->response_expected, true);
  EXPECT_EQ(decoded->object_key, request.object_key);
  EXPECT_EQ(decoded->operation, request.operation);
  EXPECT_EQ(decoded->qos_params, request.qos_params);
  EXPECT_EQ(decoded->args, request.args);
}

TEST(CoolProtocolTest, ReplyRoundTrip) {
  Reply reply;
  reply.id = 9;
  reply.status = giop::ReplyStatus::kUserException;
  reply.results = {9, 8, 7};
  auto decoded = DecodeReply(EncodeReply(reply).view());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, 9u);
  EXPECT_EQ(decoded->status, giop::ReplyStatus::kUserException);
  EXPECT_EQ(decoded->results, (std::vector<std::uint8_t>{9, 8, 7}));
}

TEST(CoolProtocolTest, MoreCompactThanGiopForSameInvocation) {
  // The reason a vendor protocol existed: same logical request, fewer
  // bytes on the wire than GIOP (no contexts, no principal, no padding).
  const Request request = SampleRequest();
  const ByteBuffer cool_wire = EncodeRequest(request);

  giop::RequestHeader giop_request;
  giop_request.request_id = request.id;
  giop_request.object_key = request.object_key;
  giop_request.operation = request.operation;
  giop_request.qos_params = request.qos_params;
  const ByteBuffer giop_wire =
      giop::BuildRequest(giop::kGiopQos, giop_request, request.args);

  EXPECT_LT(cool_wire.size(), giop_wire.size());
}

TEST(CoolProtocolTest, MalformedInputRejected) {
  EXPECT_FALSE(DecodeRequest(std::vector<std::uint8_t>{}).ok());
  EXPECT_FALSE(
      DecodeRequest(std::vector<std::uint8_t>{'C', 'O', 'O', 'L'}).ok());
  ByteBuffer wire = EncodeRequest(SampleRequest());
  wire.data()[0] = 'X';
  EXPECT_FALSE(DecodeRequest(wire.view()).ok());
  // Truncations of a valid message never crash and never succeed.
  const ByteBuffer full = EncodeRequest(SampleRequest());
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    EXPECT_FALSE(DecodeRequest(full.view().subspan(0, cut)).ok()) << cut;
  }
}

TEST(CoolProtocolTest, TypeConfusionRejected) {
  const ByteBuffer req = EncodeRequest(SampleRequest());
  EXPECT_FALSE(DecodeReply(req.view()).ok());
  Reply reply;
  EXPECT_FALSE(DecodeRequest(EncodeReply(reply).view()).ok());
}

class CoolEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::LinkProperties link;
    link.bandwidth_bps = 0;
    link.latency = microseconds(50);
    net_ = std::make_unique<sim::Network>(link);
    server_mgr_ = std::make_unique<transport::TcpComManager>(
        net_.get(), sim::Address{"server", 7900});
    ASSERT_TRUE(server_mgr_->Listen().ok());
    Result<std::unique_ptr<transport::ComChannel>> accepted(
        Status(InternalError("unset")));
    cool::Thread accept([&] { accepted = server_mgr_->AcceptChannel(); });
    transport::TcpComManager client_mgr(net_.get(),
                                        sim::Address{"client", 7900});
    auto opened = client_mgr.OpenChannel({"server", 7900}, {});
    accept.join();
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(accepted.ok());
    client_channel_ = std::move(opened).value();
    server_channel_ = std::move(accepted).value();
  }

  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<transport::TcpComManager> server_mgr_;
  std::unique_ptr<transport::ComChannel> client_channel_;
  std::unique_ptr<transport::ComChannel> server_channel_;
};

TEST_F(CoolEngineTest, InvokeRoundTrip) {
  CoolClient client(client_channel_.get());
  CoolServer server(server_channel_.get(),
                    [](const Request& request, cdr::Decoder& args) {
                      giop::GiopServer::DispatchResult result;
                      cdr::Encoder out(cdr::ByteOrder::kLittleEndian, 0);
                      auto v = args.GetLong();
                      out.PutLong(v.ok() ? *v * 2 : -1);
                      out.PutString(request.operation);
                      result.body = std::move(out).TakeBuffer();
                      return result;
                    });
  cool::Thread server_thread([&] { (void)server.ServeOne(seconds(5)); });

  cdr::Encoder args(cdr::ByteOrder::kLittleEndian, 0);
  args.PutLong(21);
  auto reply = client.Invoke(Key("obj"), "double", args.buffer().view(), {});
  server_thread.join();
  ASSERT_TRUE(reply.ok()) << reply.status();
  cdr::Decoder dec(reply->results, cdr::ByteOrder::kLittleEndian, 0);
  EXPECT_EQ(*dec.GetLong(), 42);
  EXPECT_EQ(*dec.GetString(), "double");
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST_F(CoolEngineTest, QosParamsTravelNatively) {
  CoolClient client(client_channel_.get());
  CoolServer server(server_channel_.get(),
                    [](const Request& request, cdr::Decoder&) {
                      giop::GiopServer::DispatchResult result;
                      cdr::Encoder out(cdr::ByteOrder::kLittleEndian, 0);
                      out.PutULong(static_cast<corba::ULong>(
                          request.qos_params.size()));
                      result.body = std::move(out).TakeBuffer();
                      return result;
                    });
  cool::Thread server_thread([&] { (void)server.ServeOne(seconds(5)); });
  auto reply = client.Invoke(Key("obj"), "op", {},
                             {qos::RequireReliability(2),
                              qos::RequireOrdering(true)});
  server_thread.join();
  ASSERT_TRUE(reply.ok());
  cdr::Decoder dec(reply->results, cdr::ByteOrder::kLittleEndian, 0);
  EXPECT_EQ(*dec.GetULong(), 2u);
}

TEST_F(CoolEngineTest, OnewayServed) {
  CoolClient client(client_channel_.get());
  std::atomic<int> pokes{0};
  CoolServer server(server_channel_.get(),
                    [&](const Request& request, cdr::Decoder&) {
                      EXPECT_FALSE(request.response_expected);
                      ++pokes;
                      return giop::GiopServer::DispatchResult{};
                    });
  cool::Thread server_thread([&] { (void)server.ServeOne(seconds(5)); });
  ASSERT_TRUE(client.InvokeOneway(Key("obj"), "poke", {}, {}).ok());
  server_thread.join();
  EXPECT_EQ(pokes.load(), 1);
}

TEST_F(CoolEngineTest, GarbageAnsweredWithErrorMessage) {
  CoolServer server(server_channel_.get(),
                    [](const Request&, cdr::Decoder&) {
                      return giop::GiopServer::DispatchResult{};
                    });
  cool::Thread server_thread([&] { (void)server.ServeOne(seconds(5)); });
  ASSERT_TRUE(client_channel_
                  ->SendMessage(std::vector<std::uint8_t>{'b', 'a', 'd'})
                  .ok());
  auto raw = client_channel_->ReceiveMessage(seconds(5));
  server_thread.join();
  ASSERT_TRUE(raw.ok());
  auto type = PeekType(raw->view());
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, MsgType::kError);
}

}  // namespace
}  // namespace cool::coolproto
