// DispatchPool scheduling semantics: hierarchical WFQ/DRR arbitration,
// the anti-starvation floor the flat scan never had, CoDel shedding via
// DropDispatchJob, cancel/detach under the tree, and a TSan-aimed stress
// mix with churning runners against live reconfiguration.
#include "giop/dispatch_pool.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/thread.h"

namespace cool::giop {
namespace {

DispatchJob MakeJob(corba::ULong id) {
  DispatchJob job;
  job.header.request_id = id;
  job.header.response_expected = false;
  job.msg.buffer = ByteBuffer(std::vector<std::uint8_t>(kHeaderSize));
  job.args_offset = kHeaderSize;
  return job;
}

// Records run order and drop counts. A job whose id equals `gate_id` spins
// until Open() — the way these tests freeze the single worker while they
// shape the backlog behind it.
class Recorder : public DispatchRunner {
 public:
  static constexpr corba::ULong kGateId = 0xFFFF0000;

  void RunDispatchJob(const DispatchJob& job) override {
    started_.fetch_add(1, std::memory_order_acq_rel);
    if (job.header.request_id == kGateId) {
      while (!open_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(microseconds(50));
      }
    }
    if (work_ > Duration::zero()) std::this_thread::sleep_for(work_);
    order_[n_.fetch_add(1, std::memory_order_acq_rel) % order_.size()] =
        job.header.request_id;
  }

  void DropDispatchJob(const DispatchJob&) override {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }

  void Open() { open_.store(true, std::memory_order_release); }
  void set_work(Duration d) { work_ = d; }

  std::size_t runs() const { return n_.load(std::memory_order_acquire); }
  std::size_t started() const {
    return started_.load(std::memory_order_acquire);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  corba::ULong at(std::size_t i) const { return order_[i]; }
  bool Ran(corba::ULong id) const {
    const std::size_t n = std::min(runs(), order_.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (order_[i] == id) return true;
    }
    return false;
  }

 private:
  std::atomic<bool> open_{false};
  std::atomic<std::size_t> started_{0};
  std::atomic<std::uint64_t> dropped_{0};
  Duration work_ = Duration::zero();
  std::atomic<std::size_t> n_{0};
  std::array<corba::ULong, 1024> order_{};
};

DispatchPool::Options OneWorker(DispatchScheduler scheduler) {
  DispatchPool::Options o;
  o.workers = 1;
  o.scheduler = scheduler;
  return o;
}

void WaitFor(const std::function<bool()>& done, Duration timeout) {
  const TimePoint deadline = Now() + timeout;
  while (!done() && Now() < deadline) {
    std::this_thread::sleep_for(microseconds(200));
  }
}

TEST(DispatchSchedTest, HierarchicalServesHighBandFirst) {
  DispatchPool pool(OneWorker(DispatchScheduler::kHierarchical));
  Recorder r;
  const auto id = DispatchPool::AllocRunnerId();
  ASSERT_TRUE(pool.Submit(&r, id, DispatchClass::kNormal,
                          MakeJob(Recorder::kGateId)));
  WaitFor([&] { return r.started() >= 1; }, seconds(10));
  ASSERT_TRUE(pool.Submit(&r, id, DispatchClass::kLow, MakeJob(2)));
  ASSERT_TRUE(pool.Submit(&r, id, DispatchClass::kHigh, MakeJob(3)));
  r.Open();
  pool.Close();
  ASSERT_EQ(r.runs(), 3u);
  EXPECT_EQ(r.at(0), Recorder::kGateId);
  EXPECT_EQ(r.at(1), 3u);
  EXPECT_EQ(r.at(2), 2u);
}

TEST(DispatchSchedTest, FlatPriorityStillOrdersBands) {
  DispatchPool pool(OneWorker(DispatchScheduler::kFlatPriority));
  Recorder r;
  const auto id = DispatchPool::AllocRunnerId();
  ASSERT_TRUE(pool.Submit(&r, id, DispatchClass::kNormal,
                          MakeJob(Recorder::kGateId)));
  WaitFor([&] { return r.started() >= 1; }, seconds(10));
  ASSERT_TRUE(pool.Submit(&r, id, DispatchClass::kLow, MakeJob(2)));
  ASSERT_TRUE(pool.Submit(&r, id, DispatchClass::kHigh, MakeJob(3)));
  r.Open();
  pool.Close();
  ASSERT_EQ(r.runs(), 3u);
  EXPECT_EQ(r.at(1), 3u);
  EXPECT_EQ(r.at(2), 2u);
}

// The starvation regression the hierarchical scheduler fixes: under a
// sustained high-band flood, low-band work still progresses (the WFQ
// weights give the low band a guaranteed 1/13 floor; the flat scan would
// hold it at zero until the flood stopped).
TEST(DispatchSchedTest, LowBandProgressesUnderHighFlood) {
  DispatchPool pool(OneWorker(DispatchScheduler::kHierarchical));
  Recorder flooder;
  flooder.set_work(microseconds(100));
  Recorder low;
  const auto flooder_id = DispatchPool::AllocRunnerId();
  const auto low_id = DispatchPool::AllocRunnerId();

  std::atomic<bool> stop{false};
  Thread flood([&] {
    corba::ULong id = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!pool.Submit(&flooder, flooder_id, DispatchClass::kHigh,
                       MakeJob(id++))) {
        return;
      }
    }
  });

  for (corba::ULong id = 0; id < 10; ++id) {
    ASSERT_TRUE(pool.Submit(&low, low_id, DispatchClass::kLow, MakeJob(id)));
  }
  // All ten low jobs must finish *while* the flood is still running.
  WaitFor([&] { return low.runs() >= 10; }, seconds(10));
  EXPECT_EQ(low.runs(), 10u);
  EXPECT_FALSE(stop.load());
  stop.store(true);
  pool.Close();
  flood.join();
}

TEST(DispatchSchedTest, CodelShedsThroughDropHook) {
  DispatchPool::Options options = OneWorker(DispatchScheduler::kHierarchical);
  options.codel_enabled = true;
  options.codel_target = milliseconds(1);
  options.codel_interval = milliseconds(10);
  DispatchPool pool(options);
  Recorder r;
  r.set_work(milliseconds(2));
  const auto id = DispatchPool::AllocRunnerId();
  for (corba::ULong i = 0; i < 300; ++i) {
    ASSERT_TRUE(pool.Submit(&r, id, DispatchClass::kNormal, MakeJob(i)));
  }
  // 2ms of service per job against a 1ms sojourn target: the queue's
  // standing delay breaches immediately and drops must begin once the
  // 10ms interval elapses.
  WaitFor([&] { return r.runs() + r.dropped() >= 300; }, seconds(30));
  EXPECT_GT(r.dropped(), 0u);
  EXPECT_EQ(r.dropped(), pool.jobs_shed());
  EXPECT_EQ(r.runs() + r.dropped(), 300u);
  const auto stats = pool.StatsSnapshot();
  EXPECT_EQ(stats[1].dropped, pool.jobs_shed());  // all Normal band
  pool.Close();
}

TEST(DispatchSchedTest, CancelQueuedKillsOnlyUnstartedJobs) {
  DispatchPool pool(OneWorker(DispatchScheduler::kHierarchical));
  Recorder r;
  const auto id = DispatchPool::AllocRunnerId();
  ASSERT_TRUE(pool.Submit(&r, id, DispatchClass::kNormal,
                          MakeJob(Recorder::kGateId)));
  ASSERT_TRUE(pool.Submit(&r, id, DispatchClass::kNormal, MakeJob(10)));
  ASSERT_TRUE(pool.Submit(&r, id, DispatchClass::kNormal, MakeJob(11)));
  ASSERT_TRUE(pool.Submit(&r, id, DispatchClass::kNormal, MakeJob(12)));
  EXPECT_TRUE(pool.CancelQueued(id, 11));
  EXPECT_FALSE(pool.CancelQueued(id, 999));  // never submitted
  r.Open();
  pool.Close();
  EXPECT_EQ(r.runs(), 3u);  // gate + 10 + 12
  EXPECT_TRUE(r.Ran(10));
  EXPECT_FALSE(r.Ran(11));
  EXPECT_TRUE(r.Ran(12));
}

TEST(DispatchSchedTest, DetachRunnerDropsQueuedAndRefusesNew) {
  DispatchPool pool(OneWorker(DispatchScheduler::kHierarchical));
  Recorder gate;
  Recorder victim;
  const auto gate_id = DispatchPool::AllocRunnerId();
  const auto victim_id = DispatchPool::AllocRunnerId();
  ASSERT_TRUE(pool.Submit(&gate, gate_id, DispatchClass::kHigh,
                          MakeJob(Recorder::kGateId)));
  for (corba::ULong i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        pool.Submit(&victim, victim_id, DispatchClass::kNormal, MakeJob(i)));
  }
  pool.DetachRunner(victim_id);
  EXPECT_FALSE(
      pool.Submit(&victim, victim_id, DispatchClass::kNormal, MakeJob(99)));
  gate.Open();
  pool.Close();
  EXPECT_EQ(victim.runs(), 0u);
  EXPECT_EQ(gate.runs(), 1u);
}

TEST(DispatchSchedTest, SubmitAfterCloseFails) {
  DispatchPool pool(OneWorker(DispatchScheduler::kHierarchical));
  Recorder r;
  const auto id = DispatchPool::AllocRunnerId();
  pool.Close();
  EXPECT_FALSE(pool.Submit(&r, id, DispatchClass::kNormal, MakeJob(1)));
}

TEST(DispatchSchedTest, BackpressureBlocksThenDrains) {
  DispatchPool::Options options = OneWorker(DispatchScheduler::kHierarchical);
  options.queue_capacity = 4;
  DispatchPool pool(options);
  Recorder r;
  const auto id = DispatchPool::AllocRunnerId();
  ASSERT_TRUE(pool.Submit(&r, id, DispatchClass::kNormal,
                          MakeJob(Recorder::kGateId)));
  std::atomic<bool> producer_done{false};
  Thread producer([&] {
    for (corba::ULong i = 1; i <= 10; ++i) {
      if (!pool.Submit(&r, id, DispatchClass::kNormal, MakeJob(i))) return;
    }
    producer_done.store(true);
  });
  // Capacity 4 with the worker gated: the producer must be stuck.
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(producer_done.load());
  r.Open();
  WaitFor([&] { return producer_done.load(); }, seconds(10));
  EXPECT_TRUE(producer_done.load());
  pool.Close();
  producer.join();
  EXPECT_EQ(r.runs(), 11u);
}

TEST(DispatchSchedTest, StatsSnapshotCountsPerBand) {
  DispatchPool pool(OneWorker(DispatchScheduler::kHierarchical));
  Recorder r;
  const auto id = DispatchPool::AllocRunnerId();
  qos::SchedProfile high;
  high.band = qos::SchedProfile::Band::kHigh;
  qos::SchedProfile low;
  low.band = qos::SchedProfile::Band::kLow;
  for (corba::ULong i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.Submit(&r, id, high, MakeJob(i)));
  }
  ASSERT_TRUE(pool.Submit(&r, id, low, MakeJob(100)));
  WaitFor([&] { return r.runs() >= 5; }, seconds(10));
  const auto stats = pool.StatsSnapshot();
  EXPECT_EQ(stats[0].name, "high");
  EXPECT_EQ(stats[1].name, "normal");
  EXPECT_EQ(stats[2].name, "low");
  EXPECT_EQ(stats[0].dispatched, 4u);
  EXPECT_EQ(stats[2].dispatched, 1u);
  EXPECT_EQ(stats[0].enqueued, 4u);
  const std::string text = pool.DescribeStats();
  EXPECT_NE(text.find("class high"), std::string::npos);
  EXPECT_NE(text.find("class low"), std::string::npos);
  pool.Close();
}

TEST(DispatchSchedTest, FlatModeReportsStatsToo) {
  DispatchPool pool(OneWorker(DispatchScheduler::kFlatPriority));
  Recorder r;
  const auto id = DispatchPool::AllocRunnerId();
  for (corba::ULong i = 0; i < 3; ++i) {
    ASSERT_TRUE(pool.Submit(&r, id, DispatchClass::kNormal, MakeJob(i)));
  }
  WaitFor([&] { return r.runs() >= 3; }, seconds(10));
  const auto stats = pool.StatsSnapshot();
  EXPECT_EQ(stats[1].enqueued, 3u);
  EXPECT_EQ(stats[1].dispatched, 3u);
  pool.Close();
}

// TSan target: churning runners (register/flood/detach) racing live
// reconfiguration (SetClassWeight / SetCodel) and cancels. The assertions
// are deliberately weak — the point is the interleavings.
TEST(DispatchSchedTest, ConcurrentChurnAgainstLiveReconfig) {
  DispatchPool::Options options;
  options.workers = 4;
  options.codel_enabled = true;
  options.codel_target = milliseconds(2);
  options.codel_interval = milliseconds(20);
  DispatchPool pool(options);

  constexpr int kProducers = 4;
  constexpr int kJobsPerRunner = 60;
  constexpr int kRunnersPerProducer = 6;
  std::atomic<bool> stop{false};

  Thread tuner([&] {
    std::uint32_t w = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      pool.SetClassWeight(DispatchClass::kHigh, 1 + (w % 8));
      pool.SetClassWeight(DispatchClass::kLow, 1 + ((w + 3) % 8));
      pool.SetCodel(w % 2 == 0, milliseconds(1 + w % 5), milliseconds(20));
      ++w;
      std::this_thread::sleep_for(microseconds(500));
    }
  });

  std::vector<Thread> producers;
  std::array<std::atomic<std::uint64_t>, kProducers> submitted{};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int r = 0; r < kRunnersPerProducer; ++r) {
        Recorder runner;
        runner.set_work(microseconds(50));
        const auto id = DispatchPool::AllocRunnerId();
        qos::SchedProfile profile;
        profile.band = static_cast<qos::SchedProfile::Band>((p + r) % 3);
        profile.weight = 1 + static_cast<std::uint32_t>(r);
        if (r % 2 == 0) profile.rate_bytes_per_sec = 200'000;
        for (corba::ULong i = 0; i < kJobsPerRunner; ++i) {
          if (pool.Submit(&runner, id, profile, MakeJob(i))) {
            submitted[p].fetch_add(1, std::memory_order_relaxed);
          }
          if (i % 16 == 0) {
            (void)pool.CancelQueued(id, i / 2);
            // Brief pause so workers interleave with the churn instead of
            // the producers submitting and detaching everything unserved.
            std::this_thread::sleep_for(microseconds(200));
          }
        }
        // The detach barrier makes destroying `runner` safe right here,
        // mid-flood, with its jobs queued and in flight.
        pool.DetachRunner(id);
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true);
  tuner.join();

  // Settle phase: after all the churn the pool must still dispatch. A
  // fresh runner with no detach/cancel races proves the workers survived
  // the reconfiguration storm.
  Recorder settle;
  const auto settle_id = DispatchPool::AllocRunnerId();
  constexpr corba::ULong kSettleJobs = 32;
  for (corba::ULong i = 0; i < kSettleJobs; ++i) {
    ASSERT_TRUE(pool.Submit(&settle, settle_id, qos::SchedProfile{},
                            MakeJob(i)));
  }
  WaitFor([&] { return settle.runs() >= kSettleJobs; }, seconds(10));
  ASSERT_GE(settle.runs(), kSettleJobs);
  pool.DetachRunner(settle_id);

  pool.Close();
  std::uint64_t total = 0;
  for (const auto& s : submitted) total += s.load();
  EXPECT_GT(total, 0u);
  EXPECT_GE(pool.jobs_run(), kSettleJobs);
}

}  // namespace
}  // namespace cool::giop
