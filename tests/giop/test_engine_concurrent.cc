// Concurrency stress for the multiplexed GIOP engines: N client threads ×
// M pipelined requests over ONE channel against a deliberately out-of-order,
// variable-latency servant; cancel-under-load; connection teardown with
// requests in flight; QoS priority classification. These run under TSan in
// CI (sanitizers matrix) — keep the sleeps short but real, so schedules
// actually interleave.

#include "giop/engine.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/thread.h"
#include "transport/tcp_channel.h"

namespace cool::giop {
namespace {

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = microseconds(50);
  return link;
}

corba::OctetSeq Key(std::string_view s) { return {s.begin(), s.end()}; }

struct Rig {
  Rig() : net(QuickLink()), server_mgr(&net, {"server", 7310}) {
    EXPECT_TRUE(server_mgr.Listen().ok());
    Result<std::unique_ptr<transport::ComChannel>> accepted(
        Status(InternalError("unset")));
    cool::Thread accept([&] { accepted = server_mgr.AcceptChannel(); });
    transport::TcpComManager client_mgr(&net, {"client", 7310});
    auto opened = client_mgr.OpenChannel({"server", 7310}, {});
    accept.join();
    EXPECT_TRUE(opened.ok());
    EXPECT_TRUE(accepted.ok());
    client_channel = std::move(opened).value();
    server_channel = std::move(accepted).value();
  }

  sim::Network net;
  transport::TcpComManager server_mgr;
  std::unique_ptr<transport::ComChannel> client_channel;
  std::unique_ptr<transport::ComChannel> server_channel;
};

// Variable-latency echo: sleeps 0..3 ms keyed off the argument, so replies
// come back out of order whenever more than one worker runs. Echoes the
// argument so each caller can verify it got ITS reply, not someone else's.
GiopServer::DispatchResult SlowEcho(const RequestHeader& header,
                                    cdr::Decoder& args) {
  GiopServer::DispatchResult result;
  const auto value = args.GetLong();
  const corba::Long v = value.ok() ? *value : -1;
  std::this_thread::sleep_for(microseconds((v % 4) * 750));
  cdr::Encoder body(cdr::NativeOrder(), 0);
  body.PutLong(v);
  body.PutString(header.operation);
  result.body = std::move(body).TakeBuffer();
  return result;
}

TEST(GiopConcurrentTest, ThreadsTimesPipelineDepthOverOneChannel) {
  Rig rig;
  GiopClient client(rig.client_channel.get(), {});
  GiopServer::Options opts;
  opts.worker_threads = 4;
  GiopServer server(rig.server_channel.get(), SlowEcho, opts);
  cool::Thread server_thread([&] { (void)server.Serve(); });

  constexpr int kThreads = 4;
  constexpr int kDepth = 8;
  std::atomic<int> failures{0};
  {
    std::vector<cool::Thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        // Each thread keeps kDepth requests in flight: issue the window
        // deferred, then poll oldest / refill until every reply checked.
        std::deque<std::pair<corba::ULong, corba::Long>> window;
        int issued = 0;
        constexpr int kTotal = 3 * kDepth;
        while (issued < kTotal || !window.empty()) {
          while (issued < kTotal && window.size() < kDepth) {
            const corba::Long arg = t * 1000 + issued;
            cdr::Encoder args = client.MakeArgsEncoder();
            args.PutLong(arg);
            auto id = client.InvokeDeferred(Key("obj"), "stress",
                                            args.buffer().view(), {});
            if (!id.ok()) {
              ++failures;
              return;
            }
            window.emplace_back(*id, arg);
            ++issued;
          }
          auto [id, expect] = window.front();
          window.pop_front();
          auto reply = client.PollReply(id, seconds(20));
          if (!reply.ok()) {
            ++failures;
            continue;
          }
          cdr::Decoder dec = reply->MakeResultsDecoder();
          const auto got = dec.GetLong();
          if (!got.ok() || *got != expect) ++failures;
        }
      });
    }
  }  // joins all client threads
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(), kThreads * 3u * kDepth);
  EXPECT_EQ(client.in_flight(), 0u);

  rig.client_channel->Close();
  server_thread.join();
}

TEST(GiopConcurrentTest, SynchronousInvokesPipelineToo) {
  // Plain Invoke from many threads: no caller-visible pipelining API, but
  // the demux must still interleave them over the one channel.
  Rig rig;
  GiopClient client(rig.client_channel.get(), {});
  GiopServer::Options opts;
  opts.worker_threads = 4;
  GiopServer server(rig.server_channel.get(), SlowEcho, opts);
  cool::Thread server_thread([&] { (void)server.Serve(); });

  std::atomic<int> failures{0};
  {
    std::vector<cool::Thread> threads;
    for (int t = 0; t < 6; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 10; ++i) {
          const corba::Long arg = t * 100 + i;
          cdr::Encoder args = client.MakeArgsEncoder();
          args.PutLong(arg);
          auto reply =
              client.Invoke(Key("obj"), "sync", args.buffer().view(), {});
          if (!reply.ok()) {
            ++failures;
            continue;
          }
          cdr::Decoder dec = reply->MakeResultsDecoder();
          const auto got = dec.GetLong();
          if (!got.ok() || *got != arg) ++failures;
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(), 60u);

  rig.client_channel->Close();
  server_thread.join();
}

TEST(GiopConcurrentTest, CancelUnderLoad) {
  Rig rig;
  GiopClient client(rig.client_channel.get(), {});
  GiopServer::Options opts;
  opts.worker_threads = 2;
  GiopServer server(rig.server_channel.get(), SlowEcho, opts);
  cool::Thread server_thread([&] { (void)server.Serve(); });

  constexpr int kRounds = 40;
  std::atomic<int> failures{0};
  {
    std::vector<cool::Thread> threads;
    // One thread streams normal invokes...
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        cdr::Encoder args = client.MakeArgsEncoder();
        args.PutLong(i);
        auto reply =
            client.Invoke(Key("obj"), "keep", args.buffer().view(), {});
        if (!reply.ok()) {
          ++failures;
          continue;
        }
        cdr::Decoder dec = reply->MakeResultsDecoder();
        const auto got = dec.GetLong();
        if (!got.ok() || *got != i) ++failures;
      }
    });
    // ...while another defers and immediately cancels. Every outcome is
    // legal (reply raced the cancel) EXCEPT a hang or a cross-wired reply.
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        cdr::Encoder args = client.MakeArgsEncoder();
        args.PutLong(1000 + i);
        auto id = client.InvokeDeferred(Key("obj"), "doomed",
                                        args.buffer().view(), {});
        if (!id.ok()) {
          ++failures;
          continue;
        }
        if (!client.Cancel(*id).ok()) ++failures;
        auto polled = client.PollReply(*id, milliseconds(100));
        if (polled.ok()) ++failures;  // cancelled id must never yield a reply
      }
    });
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(client.in_flight(), 0u);

  rig.client_channel->Close();
  server_thread.join();
}

TEST(GiopConcurrentTest, CloseConnectionWithRequestsInFlight) {
  Rig rig;
  GiopClient client(rig.client_channel.get(), {});
  GiopServer::Options opts;
  opts.worker_threads = 2;
  GiopServer server(rig.server_channel.get(), SlowEcho, opts);
  cool::Thread server_thread([&] { (void)server.Serve(); });

  std::atomic<int> finished{0};
  {
    std::vector<cool::Thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 20; ++i) {
          cdr::Encoder args = client.MakeArgsEncoder();
          args.PutLong(t * 100 + i);
          // Errors expected once the channel drops mid-burst; the only
          // failure mode is hanging past the timeout.
          (void)client.Invoke(Key("obj"), "op", args.buffer().view(), {},
                              seconds(5));
        }
        ++finished;
      });
    }
    std::this_thread::sleep_for(milliseconds(5));
    rig.client_channel->Close();
  }  // all caller threads must join without hanging
  EXPECT_EQ(finished.load(), 4);
  EXPECT_EQ(client.in_flight(), 0u);
  server_thread.join();

  // The connection is terminal from the client's point of view.
  EXPECT_FALSE(client.Invoke(Key("obj"), "post-close", {}, {}).ok());
}

TEST(GiopConcurrentTest, QosPriorityMapsToDispatchClass) {
  EXPECT_EQ(ClassifyQoS({}), DispatchClass::kNormal);
  EXPECT_EQ(ClassifyQoS({qos::QoSParameter{
                static_cast<corba::ULong>(qos::ParamType::kPriority), 200,
                qos::kUnbounded, qos::kUnbounded}}),
            DispatchClass::kHigh);
  EXPECT_EQ(ClassifyQoS({qos::QoSParameter{
                static_cast<corba::ULong>(qos::ParamType::kPriority), 10,
                qos::kUnbounded, qos::kUnbounded}}),
            DispatchClass::kLow);
  EXPECT_EQ(ClassifyQoS({qos::QoSParameter{
                static_cast<corba::ULong>(qos::ParamType::kPriority), 100,
                qos::kUnbounded, qos::kUnbounded}}),
            DispatchClass::kNormal);
  // A latency bound without an explicit priority is latency-sensitive.
  EXPECT_EQ(ClassifyQoS({qos::QoSParameter{
                static_cast<corba::ULong>(qos::ParamType::kLatencyMicros),
                500, qos::kUnbounded, qos::kUnbounded}}),
            DispatchClass::kHigh);
  // Throughput alone has no scheduling implication.
  EXPECT_EQ(ClassifyQoS({qos::QoSParameter{
                static_cast<corba::ULong>(qos::ParamType::kThroughputKbps),
                8000, qos::kUnbounded, qos::kUnbounded}}),
            DispatchClass::kNormal);
}

TEST(GiopConcurrentTest, HighPriorityOvertakesQueuedLowPriority) {
  // Single worker + a slow head job: while it runs, one low- and one
  // high-priority request queue up; the high one must be served first.
  Rig rig;
  GiopClient client(rig.client_channel.get(), {});
  std::vector<std::string> order;
  Mutex order_mu;
  GiopServer::Options opts;
  opts.worker_threads = 1;
  GiopServer server(
      rig.server_channel.get(),
      [&](const RequestHeader& header, cdr::Decoder&) {
        if (header.operation == "head") {
          // Hold the single worker long enough for both rivals to queue.
          std::this_thread::sleep_for(milliseconds(40));
        }
        {
          MutexLock lock(order_mu);
          order.push_back(header.operation);
        }
        return GiopServer::DispatchResult{};
      },
      opts);
  cool::Thread server_thread([&] { (void)server.Serve(); });

  auto head = client.InvokeDeferred(Key("obj"), "head", {}, {});
  ASSERT_TRUE(head.ok());
  std::this_thread::sleep_for(milliseconds(5));  // head reaches the worker
  auto low = client.InvokeDeferred(
      Key("obj"), "low", {},
      {qos::QoSParameter{static_cast<corba::ULong>(qos::ParamType::kPriority),
                         10, qos::kUnbounded, qos::kUnbounded}});
  ASSERT_TRUE(low.ok());
  std::this_thread::sleep_for(milliseconds(5));  // low queued before high
  auto high = client.InvokeDeferred(
      Key("obj"), "high", {},
      {qos::QoSParameter{static_cast<corba::ULong>(qos::ParamType::kPriority),
                         200, qos::kUnbounded, qos::kUnbounded}});
  ASSERT_TRUE(high.ok());

  EXPECT_TRUE(client.PollReply(*head, seconds(5)).ok());
  EXPECT_TRUE(client.PollReply(*low, seconds(5)).ok());
  EXPECT_TRUE(client.PollReply(*high, seconds(5)).ok());

  {
    MutexLock lock(order_mu);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "head");
    EXPECT_EQ(order[1], "high");  // overtook the earlier-queued "low"
    EXPECT_EQ(order[2], "low");
  }
  rig.client_channel->Close();
  server_thread.join();
}

TEST(GiopConcurrentTest, CancelKillsQueuedButUnstartedDispatch) {
  // Single worker pinned by a slow head job; a queued request is cancelled
  // before the worker reaches it — it must never be dispatched.
  Rig rig;
  GiopClient client(rig.client_channel.get(), {});
  std::atomic<bool> doomed_ran{false};
  GiopServer::Options opts;
  opts.worker_threads = 1;
  GiopServer server(
      rig.server_channel.get(),
      [&](const RequestHeader& header, cdr::Decoder&) {
        if (header.operation == "head") {
          std::this_thread::sleep_for(milliseconds(30));
        }
        if (header.operation == "doomed") doomed_ran = true;
        return GiopServer::DispatchResult{};
      },
      opts);
  cool::Thread server_thread([&] { (void)server.Serve(); });

  auto head = client.InvokeDeferred(Key("obj"), "head", {}, {});
  ASSERT_TRUE(head.ok());
  std::this_thread::sleep_for(milliseconds(5));
  auto doomed = client.InvokeDeferred(Key("obj"), "doomed", {}, {});
  ASSERT_TRUE(doomed.ok());
  std::this_thread::sleep_for(milliseconds(5));  // queued behind "head"
  ASSERT_TRUE(client.Cancel(*doomed).ok());

  EXPECT_TRUE(client.PollReply(*head, seconds(5)).ok());
  EXPECT_FALSE(doomed_ran.load());
  EXPECT_EQ(server.requests_cancelled(), 1u);

  rig.client_channel->Close();
  server_thread.join();
}

TEST(GiopConcurrentTest, InlineModeStillServesSerially) {
  // worker_threads = 0 is the historical inline mode: dispatch runs on the
  // receive loop, no pool threads are ever started.
  Rig rig;
  GiopClient client(rig.client_channel.get(), {});
  GiopServer::Options opts;
  opts.worker_threads = 0;
  GiopServer server(rig.server_channel.get(), SlowEcho, opts);
  cool::Thread server_thread([&] {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(server.ServeOne(seconds(5)).ok());
    }
  });
  for (int i = 0; i < 5; ++i) {
    cdr::Encoder args = client.MakeArgsEncoder();
    args.PutLong(i);
    auto reply = client.Invoke(Key("obj"), "inline", args.buffer().view(), {});
    ASSERT_TRUE(reply.ok()) << reply.status();
  }
  server_thread.join();
  EXPECT_EQ(server.requests_served(), 5u);
}

}  // namespace
}  // namespace cool::giop
