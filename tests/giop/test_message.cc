// GIOP wire format: the seven standard messages, the 12-octet header, and
// the paper's extension — version 9.9 Request carrying qos_params.
#include "giop/message.h"

#include <gtest/gtest.h>

namespace cool::giop {
namespace {

corba::OctetSeq Key(std::string_view s) { return {s.begin(), s.end()}; }

RequestHeader SampleRequest() {
  RequestHeader h;
  h.request_id = 42;
  h.response_expected = true;
  h.object_key = Key("obj-1");
  h.operation = "render";
  h.requesting_principal = Key("user");
  return h;
}

TEST(GiopHeaderTest, MagicAndLayout) {
  const ByteBuffer msg = BuildCloseConnection(kGiop10);
  ASSERT_EQ(msg.size(), kHeaderSize);  // header only
  EXPECT_EQ(msg.data()[0], 'G');
  EXPECT_EQ(msg.data()[1], 'I');
  EXPECT_EQ(msg.data()[2], 'O');
  EXPECT_EQ(msg.data()[3], 'P');
  EXPECT_EQ(msg.data()[4], 1);  // major
  EXPECT_EQ(msg.data()[5], 0);  // minor
  EXPECT_EQ(msg.data()[7],
            static_cast<corba::Octet>(MsgType::kCloseConnection));
}

TEST(GiopHeaderTest, VersionFieldDistinguishesExtension) {
  // Paper §4.2: "We use the version field in the GIOP message header to
  // inform the receiver ... whether standard GIOP (major 1, minor 0) or
  // our QoS extension (major 9, minor 9) is used."
  const ByteBuffer std_msg = BuildRequest(kGiop10, SampleRequest(), {});
  const ByteBuffer qos_msg = BuildRequest(kGiopQos, SampleRequest(), {});
  EXPECT_EQ(std_msg.data()[4], 1);
  EXPECT_EQ(std_msg.data()[5], 0);
  EXPECT_EQ(qos_msg.data()[4], 9);
  EXPECT_EQ(qos_msg.data()[5], 9);
}

TEST(GiopHeaderTest, MessageSizeMatchesBody) {
  const ByteBuffer msg = BuildRequest(kGiop10, SampleRequest(), {});
  auto header = ParseHeader(msg.view());
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->message_size, msg.size() - kHeaderSize);
}

TEST(GiopHeaderTest, BadMagicRejected) {
  ByteBuffer msg = BuildCloseConnection(kGiop10);
  msg.data()[0] = 'X';
  EXPECT_EQ(ParseHeader(msg.view()).status().code(),
            ErrorCode::kProtocolError);
}

TEST(GiopHeaderTest, TruncatedHeaderRejected) {
  const ByteBuffer msg = BuildCloseConnection(kGiop10);
  EXPECT_EQ(ParseHeader(msg.view().subspan(0, 11)).status().code(),
            ErrorCode::kProtocolError);
}

TEST(GiopHeaderTest, UnknownMessageTypeRejected) {
  ByteBuffer msg = BuildCloseConnection(kGiop10);
  msg.data()[7] = 99;
  EXPECT_EQ(ParseHeader(msg.view()).status().code(),
            ErrorCode::kProtocolError);
}

TEST(GiopHeaderTest, SizeMismatchRejectedByParseMessage) {
  ByteBuffer msg = BuildRequest(kGiop10, SampleRequest(), {});
  msg.AppendByte(0);  // trailing garbage
  EXPECT_EQ(ParseMessage(msg.view()).status().code(),
            ErrorCode::kProtocolError);
}

class RequestRoundTripTest
    : public ::testing::TestWithParam<cdr::ByteOrder> {};

TEST_P(RequestRoundTripTest, StandardGiop) {
  const RequestHeader request = SampleRequest();
  cdr::Encoder args(GetParam(), 0);
  args.PutLong(7);
  args.PutString("argument");
  const ByteBuffer msg =
      BuildRequest(kGiop10, request, args.buffer().view(), GetParam());

  auto parsed = ParseMessage(msg.view());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header.message_type, MsgType::kRequest);
  EXPECT_EQ(parsed->header.version, kGiop10);

  cdr::Decoder dec = parsed->MakeBodyDecoder();
  auto header = ParseRequestHeader(dec, parsed->header.version);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->request_id, 42u);
  EXPECT_EQ(header->operation, "render");
  EXPECT_EQ(header->object_key, Key("obj-1"));
  EXPECT_TRUE(header->qos_params.empty());

  // Arguments decode from the same position they were spliced at.
  EXPECT_EQ(*dec.GetLong(), 7);
  EXPECT_EQ(*dec.GetString(), "argument");
}

TEST_P(RequestRoundTripTest, ExtendedGiopCarriesQosParams) {
  RequestHeader request = SampleRequest();
  request.qos_params = {qos::RequireThroughputKbps(5000, 1000),
                        qos::RequireLatencyMicros(500, 2000)};
  cdr::Encoder args(GetParam(), 0);
  args.PutDouble(1.25);
  const ByteBuffer msg =
      BuildRequest(kGiopQos, request, args.buffer().view(), GetParam());

  auto parsed = ParseMessage(msg.view());
  ASSERT_TRUE(parsed.ok());
  cdr::Decoder dec = parsed->MakeBodyDecoder();
  auto header = ParseRequestHeader(dec, parsed->header.version);
  ASSERT_TRUE(header.ok());
  ASSERT_EQ(header->qos_params.size(), 2u);
  EXPECT_EQ(header->qos_params[0], request.qos_params[0]);
  EXPECT_EQ(header->qos_params[1], request.qos_params[1]);
  EXPECT_EQ(*dec.GetDouble(), 1.25);
}

INSTANTIATE_TEST_SUITE_P(BothOrders, RequestRoundTripTest,
                         ::testing::Values(cdr::ByteOrder::kLittleEndian,
                                           cdr::ByteOrder::kBigEndian),
                         [](const auto& param_info) {
                           return param_info.param ==
                                          cdr::ByteOrder::kLittleEndian
                                      ? "LittleEndian"
                                      : "BigEndian";
                         });

TEST(RequestWireTest, QosParamsOnlyOnWireInVersion99) {
  // A 1.0 Request must be byte-identical whether or not the header struct
  // holds qos_params (they are not marshalled): backwards compatibility.
  RequestHeader with_qos = SampleRequest();
  with_qos.qos_params = {qos::RequireReliability(2)};
  const ByteBuffer plain = BuildRequest(kGiop10, SampleRequest(), {});
  const ByteBuffer still_plain = BuildRequest(kGiop10, with_qos, {});
  EXPECT_EQ(plain, still_plain);

  const ByteBuffer extended = BuildRequest(kGiopQos, with_qos, {});
  EXPECT_GT(extended.size(), plain.size());
}

TEST(RequestWireTest, ExtensionCostsExactlySeqHeaderPlusParams) {
  // sequence<QoSParameter>: 4-octet count + 16 octets per parameter.
  RequestHeader h = SampleRequest();
  const ByteBuffer zero = BuildRequest(kGiopQos, h, {});
  h.qos_params = {qos::RequireReliability(2)};
  const ByteBuffer one = BuildRequest(kGiopQos, h, {});
  h.qos_params.push_back(qos::RequireOrdering(true));
  const ByteBuffer two = BuildRequest(kGiopQos, h, {});
  EXPECT_EQ(one.size() - zero.size(), 16u);
  EXPECT_EQ(two.size() - one.size(), 16u);
}

TEST(RequestWireTest, ServiceContextRoundTrip) {
  RequestHeader h = SampleRequest();
  h.service_context = {{7, {1, 2, 3}}, {9, {}}};
  const ByteBuffer msg = BuildRequest(kGiop10, h, {});
  auto parsed = ParseMessage(msg.view());
  ASSERT_TRUE(parsed.ok());
  cdr::Decoder dec = parsed->MakeBodyDecoder();
  auto decoded = ParseRequestHeader(dec, kGiop10);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->service_context, h.service_context);
}

TEST(ReplyTest, RoundTripAllStatuses) {
  for (const auto status :
       {ReplyStatus::kNoException, ReplyStatus::kUserException,
        ReplyStatus::kSystemException, ReplyStatus::kLocationForward}) {
    ReplyHeader h;
    h.request_id = 77;
    h.reply_status = status;
    cdr::Encoder body(cdr::NativeOrder(), 0);
    body.PutULong(123);
    const ByteBuffer msg = BuildReply(kGiop10, h, body.buffer().view());
    auto parsed = ParseMessage(msg.view());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->header.message_type, MsgType::kReply);
    cdr::Decoder dec = parsed->MakeBodyDecoder();
    auto decoded = ParseReplyHeader(dec);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->request_id, 77u);
    EXPECT_EQ(decoded->reply_status, status);
    EXPECT_EQ(*dec.GetULong(), 123u);
  }
}

TEST(CancelRequestTest, RoundTrip) {
  const ByteBuffer msg = BuildCancelRequest(kGiop10, {55});
  auto parsed = ParseMessage(msg.view());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header.message_type, MsgType::kCancelRequest);
  cdr::Decoder dec = parsed->MakeBodyDecoder();
  auto decoded = ParseCancelRequestHeader(dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->request_id, 55u);
}

TEST(LocateTest, RequestAndReplyRoundTrip) {
  LocateRequestHeader req;
  req.request_id = 3;
  req.object_key = Key("where");
  auto parsed = ParseMessage(BuildLocateRequest(kGiop10, req).view());
  ASSERT_TRUE(parsed.ok());
  cdr::Decoder dec = parsed->MakeBodyDecoder();
  auto decoded = ParseLocateRequestHeader(dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->object_key, Key("where"));

  LocateReplyHeader reply;
  reply.request_id = 3;
  reply.locate_status = LocateStatus::kObjectHere;
  auto parsed_reply = ParseMessage(BuildLocateReply(kGiop10, reply).view());
  ASSERT_TRUE(parsed_reply.ok());
  cdr::Decoder rdec = parsed_reply->MakeBodyDecoder();
  auto rdecoded = ParseLocateReplyHeader(rdec);
  ASSERT_TRUE(rdecoded.ok());
  EXPECT_EQ(rdecoded->locate_status, LocateStatus::kObjectHere);
}

TEST(MessageTypeTest, AllSevenMessagesBuildAndParse) {
  // The paper: "OMG's standard GIOP uses seven messages".
  const ByteBuffer msgs[] = {
      BuildRequest(kGiop10, SampleRequest(), {}),
      BuildReply(kGiop10, {}, {}),
      BuildCancelRequest(kGiop10, {1}),
      BuildLocateRequest(kGiop10, {2, Key("k")}),
      BuildLocateReply(kGiop10, {2, LocateStatus::kObjectHere}),
      BuildCloseConnection(kGiop10),
      BuildMessageError(kGiop10),
  };
  const MsgType kinds[] = {
      MsgType::kRequest,        MsgType::kReply,
      MsgType::kCancelRequest,  MsgType::kLocateRequest,
      MsgType::kLocateReply,    MsgType::kCloseConnection,
      MsgType::kMessageError,
  };
  for (std::size_t i = 0; i < 7; ++i) {
    auto parsed = ParseMessage(msgs[i].view());
    ASSERT_TRUE(parsed.ok()) << MsgTypeName(kinds[i]);
    EXPECT_EQ(parsed->header.message_type, kinds[i]);
  }
}

TEST(MessageTypeTest, NamesAreHumanReadable) {
  EXPECT_EQ(MsgTypeName(MsgType::kRequest), "Request");
  EXPECT_EQ(MsgTypeName(MsgType::kMessageError), "MessageError");
}

TEST(VersionTest, KnownVersions) {
  EXPECT_TRUE(IsKnownVersion(kGiop10));
  EXPECT_TRUE(IsKnownVersion(kGiopQos));
  EXPECT_FALSE(IsKnownVersion(Version{2, 0}));
}

TEST(PreambleTest, RequestPreamblePlusTailEqualsBuildRequest) {
  // The scatter-gather send path assembles preamble + args as separate
  // spans; the wire bytes must be identical to the monolithic builder's.
  for (const auto order :
       {cdr::ByteOrder::kLittleEndian, cdr::ByteOrder::kBigEndian}) {
    const RequestHeader h = SampleRequest();
    cdr::Encoder args(order, 0);
    args.PutLong(7);
    args.PutString("argument");
    const auto tail = args.buffer().view();

    RequestHeaderView view;
    view.request_id = h.request_id;
    view.response_expected = h.response_expected;
    view.object_key = h.object_key;
    view.operation = h.operation;
    view.requesting_principal = h.requesting_principal;
    ByteBuffer assembled =
        BuildRequestPreamble(kGiop10, view, tail.size(), order, {});
    assembled.Append(tail);

    EXPECT_EQ(assembled, BuildRequest(kGiop10, h, tail, order));
  }
}

TEST(PreambleTest, QosRequestPreamblePlusTailEqualsBuildRequest) {
  RequestHeader h = SampleRequest();
  h.qos_params = {qos::RequireReliability(1),
                  qos::RequireThroughputKbps(5000, 1000)};
  h.service_context = {{7, {1, 2, 3}}};
  cdr::Encoder args(cdr::NativeOrder(), 0);
  args.PutDouble(1.25);
  const auto tail = args.buffer().view();

  RequestHeaderView view;
  view.service_context = &h.service_context;
  view.request_id = h.request_id;
  view.response_expected = h.response_expected;
  view.object_key = h.object_key;
  view.operation = h.operation;
  view.requesting_principal = h.requesting_principal;
  view.qos_params = &h.qos_params;
  ByteBuffer assembled = BuildRequestPreamble(kGiopQos, view, tail.size(),
                                              cdr::NativeOrder(), {});
  assembled.Append(tail);

  EXPECT_EQ(assembled, BuildRequest(kGiopQos, h, tail, cdr::NativeOrder()));
}

TEST(PreambleTest, ReplyPreamblePlusTailEqualsBuildReply) {
  ReplyHeader h;
  h.request_id = 77;
  h.reply_status = ReplyStatus::kUserException;
  cdr::Encoder body(cdr::NativeOrder(), 0);
  body.PutULong(123);
  body.PutString("payload");
  const auto tail = body.buffer().view();

  ByteBuffer assembled =
      BuildReplyPreamble(kGiop10, h, tail.size(), cdr::NativeOrder(), {});
  assembled.Append(tail);

  EXPECT_EQ(assembled, BuildReply(kGiop10, h, tail, cdr::NativeOrder()));
}

TEST(PreambleTest, EmptyTailStillParses) {
  RequestHeaderView view;
  view.request_id = 5;
  const ByteBuffer msg =
      BuildRequestPreamble(kGiop10, view, 0, cdr::NativeOrder(), {});
  auto parsed = ParseMessage(msg.view());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header.message_size, msg.size() - kHeaderSize);
}

TEST(RequestWireTest, CorruptQosCountRejected) {
  RequestHeader h = SampleRequest();
  h.qos_params = {qos::RequireReliability(1)};
  ByteBuffer msg = BuildRequest(kGiopQos, h, {});
  auto parsed = ParseMessage(msg.view());
  ASSERT_TRUE(parsed.ok());
  // Find and corrupt the qos_params count (last 20 octets are count+param).
  // Instead of byte surgery, truncate the body: count says 1, params gone.
  const auto body = parsed->body();
  const auto truncated = body.first(body.size() - 8);
  cdr::Decoder dec(truncated, parsed->header.byte_order, kHeaderSize);
  EXPECT_FALSE(ParseRequestHeader(dec, kGiopQos).ok());
}

}  // namespace
}  // namespace cool::giop
