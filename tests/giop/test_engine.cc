// GIOP client/server engines over a real transport channel: invocation
// modes, reply matching, version gating (backwards compatibility with
// unmodified GIOP 1.0 peers), cancel semantics.

#include "giop/engine.h"

#include <gtest/gtest.h>

#include <optional>
#include <thread>

#include "common/clock.h"
#include "common/thread.h"
#include "transport/reactor.h"
#include "transport/tcp_channel.h"

namespace cool::giop {
namespace {

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = microseconds(50);
  return link;
}

corba::OctetSeq Key(std::string_view s) { return {s.begin(), s.end()}; }

// Echo dispatcher: returns the request's operation name and its one long
// argument + 1.
GiopServer::DispatchResult EchoDispatch(const RequestHeader& header,
                                        cdr::Decoder& args) {
  GiopServer::DispatchResult result;
  cdr::Encoder body(cdr::NativeOrder(), 0);
  body.PutString(header.operation);
  auto value = args.GetLong();
  body.PutLong(value.ok() ? *value + 1 : -1);
  body.PutULong(static_cast<corba::ULong>(header.qos_params.size()));
  result.body = std::move(body).TakeBuffer();
  return result;
}

struct Rig {
  Rig() : net(QuickLink()), server_mgr(&net, {"server", 7300}) {
    EXPECT_TRUE(server_mgr.Listen().ok());
    Result<std::unique_ptr<transport::ComChannel>> accepted(
        Status(InternalError("unset")));
    cool::Thread accept([&] { accepted = server_mgr.AcceptChannel(); });
    transport::TcpComManager client_mgr(&net, {"client", 7300});
    auto opened = client_mgr.OpenChannel({"server", 7300}, {});
    accept.join();
    EXPECT_TRUE(opened.ok());
    EXPECT_TRUE(accepted.ok());
    client_channel = std::move(opened).value();
    server_channel = std::move(accepted).value();
  }

  // Serves exactly `n` incoming messages on a background thread.
  cool::Thread Serve(GiopServer& server, int n) {
    return cool::Thread([&server, n] {
      for (int i = 0; i < n; ++i) {
        const Status s = server.ServeOne(seconds(5));
        if (!s.ok() && s.code() != ErrorCode::kProtocolError) return;
      }
    });
  }

  sim::Network net;
  transport::TcpComManager server_mgr;
  std::unique_ptr<transport::ComChannel> client_channel;
  std::unique_ptr<transport::ComChannel> server_channel;
};

TEST(GiopEngineTest, SynchronousInvoke) {
  Rig rig;
  GiopClient client(rig.client_channel.get(), {});
  GiopServer server(rig.server_channel.get(), EchoDispatch,
                    GiopServer::Options{});
  auto server_thread = rig.Serve(server, 1);

  cdr::Encoder args = client.MakeArgsEncoder();
  args.PutLong(41);
  auto reply = client.Invoke(Key("obj"), "ping", args.buffer().view(), {});
  server_thread.join();
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->header.reply_status, ReplyStatus::kNoException);

  cdr::Decoder dec = reply->MakeResultsDecoder();
  EXPECT_EQ(*dec.GetString(), "ping");
  EXPECT_EQ(*dec.GetLong(), 42);
  EXPECT_EQ(*dec.GetULong(), 0u);  // no qos params seen by the server
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(GiopEngineTest, QosParamsReachTheServerInVersion99) {
  Rig rig;
  GiopClient client(rig.client_channel.get(), {});
  GiopServer server(rig.server_channel.get(), EchoDispatch,
                    GiopServer::Options{});
  auto server_thread = rig.Serve(server, 1);

  cdr::Encoder args = client.MakeArgsEncoder();
  args.PutLong(1);
  const std::vector<qos::QoSParameter> qos = {
      qos::RequireThroughputKbps(1000, 100), qos::RequireReliability(2)};
  auto reply = client.Invoke(Key("obj"), "op", args.buffer().view(), qos);
  server_thread.join();
  ASSERT_TRUE(reply.ok());
  cdr::Decoder dec = reply->MakeResultsDecoder();
  (void)dec.GetString();
  (void)dec.GetLong();
  EXPECT_EQ(*dec.GetULong(), 2u);  // server saw both qos params
}

TEST(GiopEngineTest, UnmodifiedServerRejects99WithMessageError) {
  // Paper backwards compatibility: a server without the extension answers
  // a 9.9 Request with MessageError; the client surfaces a protocol error.
  Rig rig;
  GiopClient client(rig.client_channel.get(), {});
  GiopServer::Options legacy;
  legacy.accept_qos_extension = false;
  GiopServer server(rig.server_channel.get(), EchoDispatch, legacy);
  auto server_thread = rig.Serve(server, 1);

  auto reply = client.Invoke(Key("obj"), "op", {},
                             {qos::RequireReliability(1)});
  server_thread.join();
  EXPECT_EQ(reply.status().code(), ErrorCode::kProtocolError);
  EXPECT_EQ(server.requests_served(), 0u);
}

TEST(GiopEngineTest, LegacyServerStillServes10AfterRejecting99) {
  Rig rig;
  GiopClient client(rig.client_channel.get(), {});
  GiopServer::Options legacy;
  legacy.accept_qos_extension = false;
  GiopServer server(rig.server_channel.get(), EchoDispatch, legacy);
  auto server_thread = rig.Serve(server, 2);

  auto rejected = client.Invoke(Key("obj"), "op", {},
                                {qos::RequireReliability(1)});
  EXPECT_FALSE(rejected.ok());
  // Plain 1.0 request on the same connection still succeeds.
  cdr::Encoder args = client.MakeArgsEncoder();
  args.PutLong(1);
  auto accepted = client.Invoke(Key("obj"), "op", args.buffer().view(), {});
  server_thread.join();
  EXPECT_TRUE(accepted.ok()) << accepted.status();
}

TEST(GiopEngineTest, ClientWithoutExtensionNeverSends99) {
  Rig rig;
  GiopClient::Options opts;
  opts.use_qos_extension = false;
  GiopClient client(rig.client_channel.get(), opts);
  GiopServer server(
      rig.server_channel.get(),
      [](const RequestHeader& header, cdr::Decoder&) {
        GiopServer::DispatchResult r;
        cdr::Encoder body(cdr::NativeOrder(), 0);
        body.PutULong(static_cast<corba::ULong>(header.qos_params.size()));
        r.body = std::move(body).TakeBuffer();
        return r;
      },
      GiopServer::Options{});
  auto server_thread = rig.Serve(server, 1);

  // QoS params supplied but extension off -> silently stripped (pure 1.0).
  auto reply =
      client.Invoke(Key("obj"), "op", {}, {qos::RequireReliability(1)});
  server_thread.join();
  ASSERT_TRUE(reply.ok());
  cdr::Decoder dec = reply->MakeResultsDecoder();
  EXPECT_EQ(*dec.GetULong(), 0u);
}

TEST(GiopEngineTest, OnewayDoesNotWaitForReply) {
  Rig rig;
  GiopClient client(rig.client_channel.get(), {});
  std::atomic<int> served{0};
  GiopServer server(
      rig.server_channel.get(),
      [&](const RequestHeader& header, cdr::Decoder&) {
        ++served;
        EXPECT_FALSE(header.response_expected);
        return GiopServer::DispatchResult{};
      },
      GiopServer::Options{});
  auto server_thread = rig.Serve(server, 1);
  ASSERT_TRUE(client.InvokeOneway(Key("obj"), "notify", {}, {}).ok());
  server_thread.join();
  server.Close();  // drain the worker pool before asserting the upcall ran
  EXPECT_EQ(served.load(), 1);
}

TEST(GiopEngineTest, DeferredInvokeAndPoll) {
  Rig rig;
  GiopClient client(rig.client_channel.get(), {});
  GiopServer server(rig.server_channel.get(), EchoDispatch,
                    GiopServer::Options{});
  auto server_thread = rig.Serve(server, 1);

  cdr::Encoder args = client.MakeArgsEncoder();
  args.PutLong(10);
  auto id = client.InvokeDeferred(Key("obj"), "later", args.buffer().view(),
                                  {});
  ASSERT_TRUE(id.ok());
  auto reply = client.PollReply(*id);
  server_thread.join();
  ASSERT_TRUE(reply.ok());
  cdr::Decoder dec = reply->MakeResultsDecoder();
  EXPECT_EQ(*dec.GetString(), "later");
  EXPECT_EQ(*dec.GetLong(), 11);
}

TEST(GiopEngineTest, CancelledReplyIsDiscarded) {
  Rig rig;
  GiopClient client(rig.client_channel.get(), {});
  GiopServer server(rig.server_channel.get(), EchoDispatch,
                    GiopServer::Options{});
  // Server will handle the deferred request AND the cancel AND the next
  // invoke (cancel may arrive after the reply was already sent).
  auto server_thread = rig.Serve(server, 3);

  cdr::Encoder args = client.MakeArgsEncoder();
  args.PutLong(1);
  auto id = client.InvokeDeferred(Key("obj"), "doomed", args.buffer().view(),
                                  {});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client.Cancel(*id).ok());

  // A later invocation must not be confused by the stale reply.
  cdr::Encoder args2 = client.MakeArgsEncoder();
  args2.PutLong(100);
  auto reply = client.Invoke(Key("obj"), "fresh", args2.buffer().view(), {});
  ASSERT_TRUE(reply.ok()) << reply.status();
  cdr::Decoder dec = reply->MakeResultsDecoder();
  EXPECT_EQ(*dec.GetString(), "fresh");
  EXPECT_EQ(*dec.GetLong(), 101);

  rig.client_channel->Close();
  server_thread.join();
}

TEST(GiopEngineTest, LocateRequestUsesLocator) {
  Rig rig;
  GiopClient client(rig.client_channel.get(), {});
  GiopServer server(rig.server_channel.get(), EchoDispatch,
                    GiopServer::Options{});
  server.SetLocator(
      [](const corba::OctetSeq& key) { return key == Key("exists"); });
  auto server_thread = rig.Serve(server, 2);

  auto here = client.Locate(Key("exists"));
  ASSERT_TRUE(here.ok());
  EXPECT_EQ(*here, LocateStatus::kObjectHere);
  auto gone = client.Locate(Key("missing"));
  server_thread.join();
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(*gone, LocateStatus::kUnknownObject);
}

TEST(GiopEngineTest, CloseConnectionEndsServeLoop) {
  Rig rig;
  GiopClient client(rig.client_channel.get(), {});
  GiopServer server(rig.server_channel.get(), EchoDispatch,
                    GiopServer::Options{});
  cool::Thread server_thread([&] {
    EXPECT_EQ(server.Serve().code(), ErrorCode::kCancelled);
  });
  ASSERT_TRUE(client.SendClose().ok());
  server_thread.join();
}

TEST(GiopEngineTest, GarbageTriggersMessageErrorButConnectionSurvives) {
  Rig rig;
  GiopClient client(rig.client_channel.get(), {});
  GiopServer server(rig.server_channel.get(), EchoDispatch,
                    GiopServer::Options{});
  auto server_thread = rig.Serve(server, 2);

  // Raw garbage straight into the channel.
  const std::vector<std::uint8_t> junk = {'J', 'U', 'N', 'K', 0, 0,
                                          0,   0,   0,   0,   0, 0};
  ASSERT_TRUE(rig.client_channel->SendMessage(junk).ok());
  // The server answers MessageError; the engine-level receive on the
  // client side reports it as a protocol error on the next receive...
  auto err = rig.client_channel->ReceiveMessage(seconds(2));
  ASSERT_TRUE(err.ok());
  auto parsed = ParseMessage(err->view());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header.message_type, MsgType::kMessageError);

  // ...and a well-formed request still goes through afterwards.
  cdr::Encoder args = client.MakeArgsEncoder();
  args.PutLong(5);
  auto reply = client.Invoke(Key("obj"), "op", args.buffer().view(), {});
  server_thread.join();
  EXPECT_TRUE(reply.ok()) << reply.status();
}

TEST(GiopEngineTest, RequestIdsIncrease) {
  Rig rig;
  GiopClient client(rig.client_channel.get(), {});
  GiopServer server(rig.server_channel.get(), EchoDispatch,
                    GiopServer::Options{});
  auto server_thread = rig.Serve(server, 3);
  for (int i = 0; i < 3; ++i) {
    cdr::Encoder args = client.MakeArgsEncoder();
    args.PutLong(i);
    ASSERT_TRUE(
        client.Invoke(Key("obj"), "op", args.buffer().view(), {}).ok());
  }
  server_thread.join();
  EXPECT_EQ(client.last_request_id(), 3u);
}

// Regression: the demux reader used to sit out a full poll quantum in
// ReceiveMessage after the channel was closed, so client destruction
// stalled for up to reader_poll. A close must interrupt the wait and the
// destructor must join the reader promptly.
TEST(GiopEngineTest, CloseInterruptsIdleReaderImmediately) {
  Rig rig;
  GiopClient::Options copts;
  copts.reader_poll = seconds(30);  // a leaked quantum would hang the test
  std::optional<GiopClient> client(std::in_place, rig.client_channel.get(),
                                   copts);
  GiopServer server(rig.server_channel.get(), EchoDispatch,
                    GiopServer::Options{});
  auto server_thread = rig.Serve(server, 1);

  // One round trip spins up the reader thread, which then goes idle.
  cdr::Encoder args = client->MakeArgsEncoder();
  args.PutLong(1);
  ASSERT_TRUE(client->Invoke(Key("obj"), "op", args.buffer().view(), {}).ok());
  server_thread.join();

  Stopwatch timer;
  rig.client_channel->Close();
  client.reset();  // joins the reader
  EXPECT_LT(timer.Elapsed(), seconds(5));
}

// The reactor-demux client: replies arrive via a reactor callback instead
// of a dedicated reader thread, and teardown barriers the registration out.
TEST(GiopEngineTest, ReactorDemuxInvokeAndTeardown) {
  Rig rig;
  transport::Reactor reactor(2);
  GiopClient::Options copts;
  copts.reactor = &reactor;
  std::optional<GiopClient> client(std::in_place, rig.client_channel.get(),
                                   copts);
  GiopServer server(rig.server_channel.get(), EchoDispatch,
                    GiopServer::Options{});

  auto server_thread = rig.Serve(server, 2);
  for (int i = 0; i < 2; ++i) {
    cdr::Encoder args = client->MakeArgsEncoder();
    args.PutLong(41);
    auto reply =
        client->Invoke(Key("obj"), "ping", args.buffer().view(), {});
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(reply->header.reply_status, ReplyStatus::kNoException);
    cdr::Decoder dec = reply->MakeResultsDecoder();
    EXPECT_EQ(*dec.GetString(), "ping");
    EXPECT_EQ(*dec.GetLong(), 42);
  }
  server_thread.join();

  Stopwatch timer;
  rig.client_channel->Close();
  client.reset();  // Remove() barrier, no thread to join
  EXPECT_LT(timer.Elapsed(), seconds(5));
}

}  // namespace
}  // namespace cool::giop
