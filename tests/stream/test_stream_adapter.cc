// Stream object adapter end-to-end: ORB-mediated flow setup, bilateral
// flow-QoS negotiation, data over a QoS-configured Da CaPo session,
// receiver stats via the control interface.
#include "stream/stream_adapter.h"

#include <gtest/gtest.h>

#include <thread>

namespace cool::stream {
namespace {

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = microseconds(100);
  return link;
}

qos::Capability MediaCapability(corba::Long max_kbps) {
  qos::Capability cap;
  cap.SetBest(qos::ParamType::kThroughputKbps, max_kbps);
  cap.SetBest(qos::ParamType::kReliability, 2);
  cap.SetBest(qos::ParamType::kOrdering, 1);
  cap.SetBest(qos::ParamType::kEncryption, 1);
  cap.SetBest(qos::ParamType::kLatencyMicros, 0);
  cap.SetBest(qos::ParamType::kJitterMicros, 0);
  cap.SetBest(qos::ParamType::kLossPermille, 0);
  cap.SetBest(qos::ParamType::kPriority, 255);
  return cap;
}

class StreamAdapterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<sim::Network>(QuickLink());
    server_ = std::make_unique<orb::ORB>(net_.get(), "media-server");
    client_ = std::make_unique<orb::ORB>(net_.get(), "viewer");
    estimate_.bandwidth_bps = 100'000'000;
    estimate_.rtt_us = 400;
    service_ = std::make_shared<StreamService>(
        net_.get(), "media-server", estimate_, MediaCapability(50'000));
    auto ref = server_->RegisterServant("tv", service_);
    ASSERT_TRUE(ref.ok());
    ref_ = *ref;
    ASSERT_TRUE(server_->Start().ok());
    stub_ = std::make_unique<orb::Stub>(client_.get(), ref_);
  }

  void TearDown() override {
    stub_.reset();
    server_->Shutdown();
  }

  FlowSpec FastSpec() {
    FlowSpec spec;
    spec.frame_rate_hz = 200.0;  // 5ms period: quick to accumulate frames
    spec.frame_bytes = 1024;
    return spec;
  }

  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<orb::ORB> server_;
  std::unique_ptr<orb::ORB> client_;
  dacapo::NetworkEstimate estimate_;
  std::shared_ptr<StreamService> service_;
  orb::ObjectRef ref_;
  std::unique_ptr<orb::Stub> stub_;
};

TEST_F(StreamAdapterTest, OpenStreamAndDeliverFrames) {
  auto flow = FlowConnection::Open(stub_.get(), net_.get(), "viewer",
                                   FastSpec(), estimate_);
  ASSERT_TRUE(flow.ok()) << flow.status();
  EXPECT_EQ(service_->active_flows(), 1u);

  ASSERT_TRUE((*flow)->source().Start().ok());
  std::this_thread::sleep_for(milliseconds(300));
  (*flow)->source().Stop();
  std::this_thread::sleep_for(milliseconds(100));

  auto stats = (*flow)->RemoteStats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->frames_received, 20u);
  EXPECT_NEAR(stats->measured_fps, 200.0, 80.0);

  ASSERT_TRUE((*flow)->Close().ok());
  EXPECT_EQ(service_->active_flows(), 0u);
}

TEST_F(StreamAdapterTest, ExcessiveFlowQosNacked) {
  FlowSpec greedy = FastSpec();
  greedy.frame_rate_hz = 1000.0;
  greedy.frame_bytes = 64 * 1024;  // ~512 Mbit/s >> capability 50 Mbit/s
  auto flow = FlowConnection::Open(stub_.get(), net_.get(), "viewer",
                                   greedy, estimate_);
  EXPECT_EQ(flow.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(service_->active_flows(), 0u);
}

TEST_F(StreamAdapterTest, FlowQosConfiguresDataGraph) {
  FlowSpec spec = FastSpec();
  spec.qos = *qos::QoSSpec::FromParameters(
      {qos::RequireReliability(2), qos::RequireEncryption(true)});
  auto flow = FlowConnection::Open(stub_.get(), net_.get(), "viewer", spec,
                                   estimate_);
  ASSERT_TRUE(flow.ok()) << flow.status();
  const dacapo::ModuleGraphSpec graph = (*flow)->data_graph();
  bool has_arq = false;
  bool has_cipher = false;
  for (const auto& m : graph.chain) {
    if (m.name == dacapo::mechanisms::kIrq ||
        m.name == dacapo::mechanisms::kGoBackN) {
      has_arq = true;
    }
    if (m.name == dacapo::mechanisms::kXorCipher) has_cipher = true;
  }
  EXPECT_TRUE(has_arq);
  EXPECT_TRUE(has_cipher);
  ASSERT_TRUE((*flow)->Close().ok());
}

TEST_F(StreamAdapterTest, ReliableFlowSurvivesLossyLink) {
  // 10% datagram loss between viewer and server; a flow with a loss bound
  // of 0 gets an ARQ graph and must deliver every frame.
  sim::LinkProperties lossy = QuickLink();
  lossy.loss_rate = 0.10;
  net_->SetLink("viewer", "media-server", lossy);

  FlowSpec spec = FastSpec();
  spec.frame_rate_hz = 100.0;
  spec.qos = *qos::QoSSpec::FromParameters(
      {qos::RequireLossPermille(0, 0)});
  dacapo::NetworkEstimate est = estimate_;
  est.loss_rate = lossy.loss_rate;
  auto flow =
      FlowConnection::Open(stub_.get(), net_.get(), "viewer", spec, est);
  ASSERT_TRUE(flow.ok()) << flow.status();

  ASSERT_TRUE((*flow)->source().Start().ok());
  std::this_thread::sleep_for(milliseconds(400));
  (*flow)->source().Stop();
  std::this_thread::sleep_for(milliseconds(200));

  auto stats = (*flow)->RemoteStats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->frames_received, 10u);
  EXPECT_EQ(stats->frames_lost, 0u);  // ARQ recovered every loss
  ASSERT_TRUE((*flow)->Close().ok());
}

TEST_F(StreamAdapterTest, StatsForUnknownFlowFails) {
  cdr::Encoder args = stub_->MakeArgsEncoder();
  args.PutULong(777);
  auto reply = stub_->Invoke("flow_stats", args.buffer().view());
  EXPECT_EQ(reply.status().code(), ErrorCode::kNotFound);
}

TEST_F(StreamAdapterTest, CloseUnknownFlowFails) {
  cdr::Encoder args = stub_->MakeArgsEncoder();
  args.PutULong(777);
  auto reply = stub_->Invoke("close_flow", args.buffer().view());
  EXPECT_EQ(reply.status().code(), ErrorCode::kNotFound);
}

TEST_F(StreamAdapterTest, MultipleConcurrentFlows) {
  auto flow1 = FlowConnection::Open(stub_.get(), net_.get(), "viewer",
                                    FastSpec(), estimate_);
  auto flow2 = FlowConnection::Open(stub_.get(), net_.get(), "viewer",
                                    FastSpec(), estimate_);
  ASSERT_TRUE(flow1.ok());
  ASSERT_TRUE(flow2.ok());
  EXPECT_NE((*flow1)->flow_id(), (*flow2)->flow_id());
  EXPECT_EQ(service_->active_flows(), 2u);
  ASSERT_TRUE((*flow1)->source().Start().ok());
  ASSERT_TRUE((*flow2)->source().Start().ok());
  std::this_thread::sleep_for(milliseconds(200));
  (*flow1)->source().Stop();
  (*flow2)->source().Stop();
  std::this_thread::sleep_for(milliseconds(100));
  auto s1 = (*flow1)->RemoteStats();
  auto s2 = (*flow2)->RemoteStats();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_GT(s1->frames_received, 5u);
  EXPECT_GT(s2->frames_received, 5u);
}

TEST_F(StreamAdapterTest, ResourceManagerBoundsAggregateFlows) {
  dacapo::ResourceManager::Budget budget;
  budget.bandwidth_kbps = 3000;
  budget.packet_memory_bytes = 1 << 30;
  dacapo::ResourceManager resources(budget);
  auto limited_service = std::make_shared<StreamService>(
      net_.get(), "media-server", estimate_, MediaCapability(50'000),
      &resources);
  auto ref = server_->RegisterServant("tv2", limited_service);
  ASSERT_TRUE(ref.ok());
  orb::Stub stub(client_.get(), *ref);

  FlowSpec spec = FastSpec();  // 200 fps x 1 KiB = 1638 kbps nominal
  auto flow1 =
      FlowConnection::Open(&stub, net_.get(), "viewer", spec, estimate_);
  ASSERT_TRUE(flow1.ok()) << flow1.status();
  // Second flow would exceed the 3000 kbps aggregate budget.
  auto flow2 =
      FlowConnection::Open(&stub, net_.get(), "viewer", spec, estimate_);
  EXPECT_EQ(flow2.status().code(), ErrorCode::kResourceExhausted);
  // Releasing the first frees the budget.
  ASSERT_TRUE((*flow1)->Close().ok());
  auto flow3 =
      FlowConnection::Open(&stub, net_.get(), "viewer", spec, estimate_);
  EXPECT_TRUE(flow3.ok()) << flow3.status();
}

}  // namespace
}  // namespace cool::stream
