#include "stream/flow.h"

#include <gtest/gtest.h>

#include <thread>

namespace cool::stream {
namespace {

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = microseconds(100);
  return link;
}

TEST(FlowSpecTest, CdrRoundTrip) {
  FlowSpec spec;
  spec.frame_rate_hz = 30.0;
  spec.frame_bytes = 4096;
  spec.qos = *qos::QoSSpec::FromParameters(
      {qos::RequireLossPermille(0, 0), qos::RequireOrdering(true)});

  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian, 0);
  spec.Encode(enc);
  cdr::Decoder dec(enc.buffer().view(), cdr::ByteOrder::kLittleEndian, 0);
  auto decoded = FlowSpec::Decode(dec);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, spec);
}

TEST(FlowSpecTest, RejectsImplausibleRate) {
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian, 0);
  enc.PutDouble(-5.0);
  enc.PutULong(100);
  enc.PutULong(0);
  cdr::Decoder dec(enc.buffer().view(), cdr::ByteOrder::kLittleEndian, 0);
  EXPECT_FALSE(FlowSpec::Decode(dec).ok());
}

TEST(FlowSpecTest, DerivedQuantities) {
  FlowSpec spec;
  spec.frame_rate_hz = 25.0;
  spec.frame_bytes = 10'000;
  EXPECT_EQ(spec.NominalKbps(), 2000u);  // 25 * 10k * 8 / 1000
  EXPECT_EQ(spec.FramePeriod(), milliseconds(40));
}

TEST(FlowStatsTest, CdrRoundTrip) {
  FlowStats s;
  s.frames_received = 100;
  s.frames_lost = 3;
  s.frames_reordered = 1;
  s.measured_fps = 24.7;
  s.throughput_kbps = 1980.5;
  s.mean_jitter_us = 140.0;
  s.p95_jitter_us = 900.0;
  cdr::Encoder enc(cdr::ByteOrder::kBigEndian, 0);
  s.EncodeStats(enc);
  cdr::Decoder dec(enc.buffer().view(), cdr::ByteOrder::kBigEndian, 0);
  auto decoded = FlowStats::DecodeStats(dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->frames_received, 100u);
  EXPECT_EQ(decoded->p95_jitter_us, 900.0);
}

class FlowPipeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<sim::Network>(QuickLink());
    acceptor_ = std::make_unique<dacapo::Acceptor>(
        net_.get(), sim::Address{"rx", 6700});
    ASSERT_TRUE(acceptor_->Listen().ok());

    dacapo::ChannelOptions options;
    options.transport = dacapo::ChannelOptions::Transport::kDatagram;
    Result<std::unique_ptr<dacapo::Session>> rx(
        Status(InternalError("unset")));
    std::thread accept_thread([&] { rx = acceptor_->Accept(); });
    dacapo::Connector connector(net_.get(), "tx");
    auto tx = connector.Connect({"rx", 6700}, options);
    accept_thread.join();
    ASSERT_TRUE(tx.ok());
    ASSERT_TRUE(rx.ok());
    tx_session_ = std::move(tx).value();
    rx_session_ = std::move(rx).value();
  }

  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<dacapo::Acceptor> acceptor_;
  std::unique_ptr<dacapo::Session> tx_session_;
  std::unique_ptr<dacapo::Session> rx_session_;
};

TEST_F(FlowPipeTest, SourcePacesToFrameRate) {
  FlowSpec spec;
  spec.frame_rate_hz = 100.0;  // 10ms period
  spec.frame_bytes = 512;
  StreamSource source(tx_session_.get(), spec);
  StreamSink sink(rx_session_.get());
  ASSERT_TRUE(sink.Start().ok());
  ASSERT_TRUE(source.Start().ok());
  std::this_thread::sleep_for(milliseconds(500));
  source.Stop();
  std::this_thread::sleep_for(milliseconds(50));
  sink.Stop();

  const FlowStats stats = sink.stats();
  // ~50 frames in 500ms; allow generous slack for CI machines.
  EXPECT_GT(stats.frames_received, 30u);
  EXPECT_LT(stats.frames_received, 70u);
  EXPECT_NEAR(stats.measured_fps, 100.0, 25.0);
  EXPECT_EQ(stats.frames_lost, 0u);
}

TEST_F(FlowPipeTest, SinkCountsLossBySequenceGap) {
  // Drive the sink directly with frames that skip sequence numbers.
  StreamSink sink(rx_session_.get());
  ASSERT_TRUE(sink.Start().ok());
  auto send_frame = [&](std::uint32_t seq) {
    std::vector<std::uint8_t> frame(64);
    frame[0] = static_cast<std::uint8_t>(seq);
    frame[1] = static_cast<std::uint8_t>(seq >> 8);
    frame[2] = static_cast<std::uint8_t>(seq >> 16);
    frame[3] = static_cast<std::uint8_t>(seq >> 24);
    ASSERT_TRUE(tx_session_->Send(frame).ok());
  };
  send_frame(0);
  send_frame(1);
  send_frame(4);  // 2 and 3 lost
  send_frame(5);
  std::this_thread::sleep_for(milliseconds(100));
  sink.Stop();
  const FlowStats stats = sink.stats();
  EXPECT_EQ(stats.frames_received, 4u);
  EXPECT_EQ(stats.frames_lost, 2u);
}

TEST_F(FlowPipeTest, DoubleStartRefused) {
  FlowSpec spec;
  StreamSource source(tx_session_.get(), spec);
  ASSERT_TRUE(source.Start().ok());
  EXPECT_EQ(source.Start().code(), ErrorCode::kFailedPrecondition);
  source.Stop();

  StreamSink sink(rx_session_.get());
  ASSERT_TRUE(sink.Start().ok());
  EXPECT_EQ(sink.Start().code(), ErrorCode::kFailedPrecondition);
  sink.Stop();
}

TEST_F(FlowPipeTest, TinyFrameRejected) {
  FlowSpec spec;
  spec.frame_bytes = 2;  // smaller than the 4-byte header
  StreamSource source(tx_session_.get(), spec);
  EXPECT_EQ(source.Start().code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace cool::stream
