// Ablation A6 — "controlled delay jitter": the MULTE QoS dimension the
// paper's introduction names alongside low latency and high throughput.
//
// One 50 fps / 4 KiB media flow crosses a link with loss and jitter under
// four protocol configurations. Measures receiver-side frame loss and
// delay jitter per configuration:
//
//   raw            — empty graph (loss and network jitter pass through)
//   sequencer      — ordering only (reorder fixed, loss remains)
//   irq            — stop-and-wait ARQ (lossless, but bursty delivery)
//   go_back_n      — windowed ARQ (lossless, smoother than IRQ)
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "common/thread.h"
#include "stream/flow.h"

namespace {

using namespace cool;

dacapo::ModuleGraphSpec Graph(std::initializer_list<const char*> names) {
  dacapo::ModuleGraphSpec spec;
  for (const char* n : names) {
    dacapo::MechanismSpec m;
    m.name = n;
    if (m.name == dacapo::mechanisms::kIrq ||
        m.name == dacapo::mechanisms::kGoBackN) {
      m.params["rto_us"] = 6000;
    }
    spec.chain.push_back(std::move(m));
  }
  return spec;
}

struct RunResult {
  stream::FlowStats stats;
  std::uint64_t frames_sent = 0;
};

RunResult RunFlow(const dacapo::ModuleGraphSpec& graph, Duration duration) {
  sim::LinkProperties link;
  link.bandwidth_bps = 50'000'000;
  link.latency = milliseconds(1);
  link.jitter = microseconds(500);
  link.loss_rate = 0.05;
  sim::Network net(link, /*rng_seed=*/42);

  dacapo::Acceptor acceptor(&net, {"rx", 6800});
  if (!acceptor.Listen().ok()) return {};
  dacapo::ChannelOptions options;
  options.transport = dacapo::ChannelOptions::Transport::kDatagram;
  options.graph = graph;
  options.packet_capacity = 8 * 1024;

  Result<std::unique_ptr<dacapo::Session>> rx(
      Status(InternalError("unset")));
  cool::Thread accept_thread([&] { rx = acceptor.Accept(); });
  dacapo::Connector connector(&net, "tx");
  auto tx = connector.Connect({"rx", 6800}, options);
  accept_thread.join();
  if (!tx.ok() || !rx.ok()) return {};

  stream::FlowSpec spec;
  spec.frame_rate_hz = 50.0;
  spec.frame_bytes = 4 * 1024;
  stream::StreamSource source(tx->get(), spec);
  stream::StreamSink sink(rx->get());
  if (!sink.Start().ok() || !source.Start().ok()) return {};
  std::this_thread::sleep_for(duration);
  source.Stop();
  std::this_thread::sleep_for(milliseconds(250));
  sink.Stop();

  RunResult result;
  result.stats = sink.stats();
  result.frames_sent = source.frames_sent();
  (*tx)->Close();
  (*rx)->Close();
  return result;
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation A6: controlled delay jitter per protocol "
      "configuration ===\n"
      "link: 50 Mbit/s, 1 ms +/- 0.5 ms jitter, 5%% datagram loss;\n"
      "flow: 50 fps x 4 KiB frames for 2 s\n\n");

  struct Config {
    const char* name;
    cool::dacapo::ModuleGraphSpec graph;
  };
  const Config kConfigs[] = {
      {"raw (empty graph)", Graph({})},
      {"sequencer", Graph({cool::dacapo::mechanisms::kSequencer})},
      {"irq + crc16", Graph({cool::dacapo::mechanisms::kIrq,
                             cool::dacapo::mechanisms::kCrc16})},
      {"go_back_n + crc16", Graph({cool::dacapo::mechanisms::kGoBackN,
                                   cool::dacapo::mechanisms::kCrc16})},
  };

  cool::bench::Table table({"configuration", "sent", "received", "lost",
                            "fps", "jitter mean us", "jitter p95 us"});
  for (const Config& config : kConfigs) {
    const RunResult r = RunFlow(config.graph, cool::seconds(2));
    table.AddRow({config.name, std::to_string(r.frames_sent),
                  std::to_string(r.stats.frames_received),
                  std::to_string(r.stats.frames_lost),
                  cool::bench::Fmt("%.1f", r.stats.measured_fps),
                  cool::bench::Fmt("%.0f", r.stats.mean_jitter_us),
                  cool::bench::Fmt("%.0f", r.stats.p95_jitter_us)});
    std::fflush(stdout);
  }
  table.Print();

  std::printf(
      "\nshape check: raw loses ~5%% of frames, and every loss tears a\n"
      "frame-period-sized hole in the arrival process (high jitter);\n"
      "the sequencer makes that worse — head-of-line blocking stalls on\n"
      "each gap and then bursts. The ARQ graphs deliver every frame and\n"
      "fill the holes within an RTO, giving both zero loss AND the lowest\n"
      "delay jitter. Picking the graph per flow from its QoS spec IS the\n"
      "paper's flexible-QoS argument.\n");
  return 0;
}
