// Ablation A2: dynamic (re)configuration — the "configure protocols on the
// fly" step the paper names as the next prototype milestone. Measures
//  (a) the configuration manager's graph selection time,
//  (b) full connection setup (CONFIG handshake + chain instantiation), and
//  (c) live reconfiguration of an established session,
// as a function of module-graph depth.
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "common/thread.h"
#include "dacapo/config_manager.h"
#include "dacapo/session.h"

namespace {

using namespace cool;
using dacapo::ChannelOptions;
using dacapo::ModuleGraphSpec;

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;  // isolate protocol costs from pacing
  link.latency = microseconds(200);
  return link;
}

ModuleGraphSpec DummyChain(int count) {
  ModuleGraphSpec spec;
  for (int i = 0; i < count; ++i) {
    spec.chain.push_back({dacapo::mechanisms::kDummy, {}});
  }
  return spec;
}

double MeasureSetupMs(const ModuleGraphSpec& graph) {
  sim::Network net(QuickLink());
  dacapo::Acceptor acceptor(&net, {"server", 6200});
  if (!acceptor.Listen().ok()) return -1;
  Result<std::unique_ptr<dacapo::Session>> server_side(
      Status(InternalError("unset")));
  cool::Thread accept_thread([&] { server_side = acceptor.Accept(); });

  ChannelOptions options;
  options.graph = graph;
  dacapo::Connector connector(&net, "client");
  const Stopwatch sw;
  auto client_side = connector.Connect({"server", 6200}, options);
  const double ms = ToMillis(sw.Elapsed());
  accept_thread.join();
  if (!client_side.ok()) return -1;
  (*client_side)->Close();
  return ms;
}

double MeasureReconfigMs(const ModuleGraphSpec& from,
                         const ModuleGraphSpec& to) {
  sim::Network net(QuickLink());
  dacapo::Acceptor acceptor(&net, {"server", 6200});
  if (!acceptor.Listen().ok()) return -1;
  Result<std::unique_ptr<dacapo::Session>> server_side(
      Status(InternalError("unset")));
  cool::Thread accept_thread([&] { server_side = acceptor.Accept(); });
  ChannelOptions options;
  options.graph = from;
  dacapo::Connector connector(&net, "client");
  auto client_side = connector.Connect({"server", 6200}, options);
  accept_thread.join();
  if (!client_side.ok() || !server_side.ok()) return -1;

  const Stopwatch sw;
  if (!(*client_side)->Reconfigure(to).ok()) return -1;
  const double ms = ToMillis(sw.Elapsed());
  (*client_side)->Close();
  return ms;
}

}  // namespace

int main() {
  std::printf("=== Ablation A2: configuration & reconfiguration cost ===\n\n");

  // (a) configuration manager selection time (pure computation).
  {
    dacapo::ConfigurationManager mgr;
    dacapo::NetworkEstimate net;
    qos::ProtocolRequirements req;
    req.need_retransmission = true;
    req.need_encryption = true;
    req.min_throughput_kbps = 10'000;
    constexpr int kRounds = 10000;
    const Stopwatch sw;
    for (int i = 0; i < kRounds; ++i) {
      auto graph = mgr.Configure(req, net);
      if (!graph.ok()) return 1;
    }
    std::printf("graph selection (configuration manager): %.2f us/call\n\n",
                ToMicros(sw.Elapsed()) / kRounds);
  }

  // (b) connection setup vs graph depth.
  {
    cool::bench::Table table({"C modules", "setup ms (median of 5)"});
    for (const int depth : {0, 5, 10, 20, 40}) {
      std::vector<double> runs;
      for (int r = 0; r < 5; ++r) {
        runs.push_back(MeasureSetupMs(DummyChain(depth)));
      }
      std::sort(runs.begin(), runs.end());
      table.AddRow({std::to_string(depth),
                    cool::bench::Fmt("%.2f", runs[runs.size() / 2])});
    }
    std::printf("connection setup (CONFIG handshake + chain build):\n");
    table.Print();
  }

  // (c) live reconfiguration vs new graph depth.
  {
    cool::bench::Table table({"new graph", "reconfig ms (median of 5)"});
    struct Case {
      const char* name;
      cool::dacapo::ModuleGraphSpec to;
    };
    cool::dacapo::ModuleGraphSpec crypto;
    crypto.chain.push_back({cool::dacapo::mechanisms::kXorCipher, {}});
    crypto.chain.push_back({cool::dacapo::mechanisms::kCrc32, {}});
    const Case kCases[] = {
        {"5 dummies", DummyChain(5)},
        {"20 dummies", DummyChain(20)},
        {"cipher+crc32", crypto},
    };
    for (const Case& c : kCases) {
      std::vector<double> runs;
      for (int r = 0; r < 5; ++r) {
        runs.push_back(MeasureReconfigMs(DummyChain(0), c.to));
      }
      std::sort(runs.begin(), runs.end());
      table.AddRow({c.name, cool::bench::Fmt("%.2f", runs[runs.size() / 2])});
    }
    std::printf("\nlive reconfiguration (RECONF handshake + plane swap):\n");
    table.Print();
  }

  std::printf(
      "\nshape check: selection is microseconds; setup/reconfig are\n"
      "dominated by the signalling round-trip plus the chain engine-thread\n"
      "spawn (grows mildly with depth).\n");
  return 0;
}
