// Reproduction of the paper's §6 response-time comparison: "In order to
// compare the runtime efficiency of the original GIOP implementation and
// our extended version, we analyze the response times of remote
// invocations in both versions. ... The results of these measurements show
// no differences in response time for both versions."
//
// Four variants of the same remote invocation, all over the Da CaPo
// transport so only the message layer differs:
//   1. unmodified ORB            — server extension off, plain GIOP 1.0
//   2. extended ORB, QoS unused  — extension on, no setQoSParameter call
//                                  (wire is still byte-identical GIOP 1.0)
//   3. extended ORB, 1 QoS param — GIOP 9.9 Request with qos_params
//   4. extended ORB, 4 QoS params
//
// The variants are *interleaved* round-robin over the same wall-clock
// window so scheduler drift hits all of them equally.
//
// Expected shape: (1) == (2) within noise; (3) and (4) add only the
// microseconds of marshalling 16 bytes per parameter.
#include <cstdio>

#include "bench_util.h"
#include "orb/stub.h"

namespace {

using namespace cool;

sim::LinkProperties TestbedLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 90'000'000;
  link.latency = microseconds(400);
  return link;
}

class PingServant : public orb::Servant {
 public:
  std::string_view repository_id() const override {
    return "IDL:bench/Ping:1.0";
  }
  orb::DispatchOutcome Dispatch(std::string_view, cdr::Decoder& args,
                                cdr::Encoder& out) override {
    auto v = args.GetLong();
    out.PutLong(v.ok() ? *v : 0);
    return orb::DispatchOutcome::Ok();
  }
};

struct Variant {
  const char* name;
  bool server_extension;
  int qos_params;
  std::uint16_t port_base;

  std::unique_ptr<orb::ORB> server;
  std::unique_ptr<orb::Stub> stub;
  std::vector<double> samples_us;
};

// Performance-neutral QoS parameters: no protocol functions required, so
// the Da CaPo graph stays identical across variants and only the GIOP
// message layer differs.
qos::QoSSpec NeutralSpec(int count) {
  std::vector<qos::QoSParameter> params = {
      qos::RequireThroughputKbps(1000, 0),
      qos::RequireLatencyMicros(5000, 1'000'000),
      qos::RequireLossPermille(1000, 1000),
      qos::RequirePriority(10),
  };
  params.resize(static_cast<std::size_t>(count));
  auto spec = qos::QoSSpec::FromParameters(std::move(params));
  return spec.ok() ? *spec : qos::QoSSpec{};
}

}  // namespace

int main() {
  std::printf(
      "=== Section 6: response time of remote invocations, original vs "
      "extended GIOP ===\n"
      "link: 90 Mbit/s, 400 us one-way (RTT floor: 800 us); variants "
      "interleaved\n\n");

  sim::Network net(TestbedLink());
  orb::ORB client(&net, "client");

  Variant variants[] = {
      {"original GIOP 1.0 (extension off)", false, 0, 7500, {}, {}, {}},
      {"extended ORB, QoS unused (wire = 1.0)", true, 0, 7510, {}, {}, {}},
      {"extended ORB, 1 QoS param (wire = 9.9)", true, 1, 7520, {}, {}, {}},
      {"extended ORB, 4 QoS params (wire = 9.9)", true, 4, 7530, {}, {}, {}},
  };

  for (Variant& v : variants) {
    orb::ORB::Options options;
    options.enable_qos_extension = v.server_extension;
    options.tcp_port = v.port_base;
    options.ipc_port = static_cast<std::uint16_t>(v.port_base + 1);
    options.dacapo_port = static_cast<std::uint16_t>(v.port_base + 2);
    v.server = std::make_unique<orb::ORB>(
        &net, "server" + std::to_string(v.port_base), options);
    auto ref = v.server->RegisterServant(
        "ping", std::make_shared<PingServant>(), orb::Protocol::kDacapo);
    if (!ref.ok() || !v.server->Start().ok()) {
      std::fprintf(stderr, "setup failed for %s\n", v.name);
      return 1;
    }
    v.stub = std::make_unique<orb::Stub>(&client, *ref);
    if (v.qos_params > 0) {
      if (Status s = v.stub->SetQoSParameter(NeutralSpec(v.qos_params));
          !s.ok()) {
        std::fprintf(stderr, "setQoSParameter failed for %s: %s\n", v.name,
                     s.ToString().c_str());
        return 1;
      }
    }
  }

  constexpr int kIterations = 300;
  constexpr int kWarmup = 20;
  for (int i = -kWarmup; i < kIterations; ++i) {
    for (Variant& v : variants) {
      cool::cdr::Encoder args = v.stub->MakeArgsEncoder();
      args.PutLong(i);
      const cool::Stopwatch sw;
      auto reply = v.stub->Invoke("ping", args.buffer().view());
      const double us = cool::ToMicros(sw.Elapsed());
      if (!reply.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", v.name,
                     reply.status().ToString().c_str());
        return 1;
      }
      if (i >= 0) v.samples_us.push_back(us);
    }
  }

  cool::bench::Table table(
      {"variant", "mean us", "p50 us", "p95 us", "min us"});
  double baseline_p50 = 0;
  for (Variant& v : variants) {
    const auto stats = cool::bench::Summarize(std::move(v.samples_us));
    if (baseline_p50 == 0) baseline_p50 = stats.p50_us;
    table.AddRow({v.name, cool::bench::Fmt("%.1f", stats.mean_us),
                  cool::bench::Fmt("%.1f", stats.p50_us),
                  cool::bench::Fmt("%.1f", stats.p95_us),
                  cool::bench::Fmt("%.1f", stats.min_us)});
  }
  table.Print();
  std::printf(
      "\nshape check (paper §6): all variants within noise of each other —\n"
      "\"QoS negotiation at the message layer does not introduce\n"
      "performance degradation\". The 9.9 rows carry 16 extra wire bytes\n"
      "per parameter, invisible next to the ~%0.0f us round trip.\n",
      baseline_p50);
  for (Variant& v : variants) v.server->Shutdown();
  return 0;
}
