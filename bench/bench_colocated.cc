// Ablation A3: the Object Adapter's colocation optimization (paper §2:
// "The Object Adapter is designed to optimize colocated scenarios, where
// client and server runs on the same endsystem"). Compares invocation
// latency colocated vs remote over each transport.
#include <cstdio>

#include "bench_util.h"
#include "orb/stub.h"

namespace {

using namespace cool;

sim::LinkProperties TestbedLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 90'000'000;
  link.latency = microseconds(400);
  return link;
}

class EchoServant : public orb::Servant {
 public:
  std::string_view repository_id() const override {
    return "IDL:bench/Echo:1.0";
  }
  orb::DispatchOutcome Dispatch(std::string_view, cdr::Decoder& args,
                                cdr::Encoder& out) override {
    auto s = args.GetString();
    out.PutString(s.ok() ? *s : "");
    return orb::DispatchOutcome::Ok();
  }
};

bench::LatencyStats MeasureStub(orb::Stub& stub, int iterations) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(iterations));
  for (int i = -20; i < iterations; ++i) {
    cdr::Encoder args = stub.MakeArgsEncoder();
    args.PutString("payload-123");
    const Stopwatch sw;
    auto reply = stub.Invoke("echo", args.buffer().view());
    if (!reply.ok()) {
      std::fprintf(stderr, "invoke failed: %s\n",
                   reply.status().ToString().c_str());
      return {};
    }
    if (i >= 0) samples.push_back(ToMicros(sw.Elapsed()));
  }
  return bench::Summarize(std::move(samples));
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation A3: colocated vs remote invocation latency ===\n\n");

  constexpr int kIterations = 300;
  cool::bench::Table table({"binding", "mean us", "p50 us", "p95 us"});

  sim::Network net(TestbedLink());
  orb::ORB server(&net, "server");
  auto servant = std::make_shared<EchoServant>();

  // Colocated: object registered in the *same* ORB the stub uses.
  {
    auto ref = server.RegisterServant("echo_local", servant);
    if (!ref.ok()) return 1;
    orb::Stub stub(&server, *ref);
    const auto stats = MeasureStub(stub, kIterations);
    table.AddRow({"colocated", cool::bench::Fmt("%.2f", stats.mean_us),
                  cool::bench::Fmt("%.2f", stats.p50_us),
                  cool::bench::Fmt("%.2f", stats.p95_us)});
  }

  // Remote over each transport.
  orb::ORB client(&net, "client");
  const orb::Protocol kProtocols[] = {
      orb::Protocol::kTcp, orb::Protocol::kIpc, orb::Protocol::kDacapo};
  std::vector<orb::ObjectRef> refs;
  for (const auto proto : kProtocols) {
    auto ref = server.RegisterServant(
        "echo_" + std::string(orb::ProtocolName(proto)), servant, proto);
    if (!ref.ok()) return 1;
    refs.push_back(*ref);
  }
  if (!server.Start().ok()) return 1;
  for (const auto& ref : refs) {
    orb::Stub stub(&client, ref);
    const auto stats = MeasureStub(stub, kIterations);
    table.AddRow({std::string("remote/") +
                      std::string(orb::ProtocolName(ref.protocol)),
                  cool::bench::Fmt("%.2f", stats.mean_us),
                  cool::bench::Fmt("%.2f", stats.p50_us),
                  cool::bench::Fmt("%.2f", stats.p95_us)});
  }

  table.Print();
  std::printf(
      "\nshape check: colocated skips marshalling to the wire, GIOP and\n"
      "both network traversals — it should be orders of magnitude below\n"
      "the remote rows, which are dominated by the 800 us RTT.\n");
  server.Shutdown();
  return 0;
}
