// Reproduction of the paper's Figure 9: "Measurements of throughput for
// different protocol configurations using different packet sizes ...
// the numbers are given in Mbps."
//
// Setup mirrors the paper: "protocol stacks with the measuring A module
// which sends dummy packets from a pre-allocated buffer on the sender
// side, on the receiver side received packets per time interval is
// counted, the packet buffers are released. The T module used encapsulates
// TCP. The C modules is an idle-repeat-request (IRQ) module and dummy
// modules that just forward the packets without altering the packets."
//
// Expected shape (paper §6):
//  * throughput increases with packet size for a given stack,
//  * throughput for a given packet size is little affected when the dummy
//    count grows from 0 to 40,
//  * the IRQ configuration is far lower — "caused by the ineffective flow
//    control of the idle-repeat-request protocol".
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "dacapo/session.h"

namespace {

using namespace cool;
using dacapo::ChannelOptions;
using dacapo::ModuleGraphSpec;

// Testbed stand-in: ~90 Mbit/s of usable rate (155 Mb/s ATM minus overhead,
// the right order for the paper's era) and campus-scale latency.
sim::LinkProperties TestbedLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 90'000'000;
  link.latency = microseconds(400);
  return link;
}

ModuleGraphSpec DummyChain(int count) {
  ModuleGraphSpec spec;
  for (int i = 0; i < count; ++i) {
    spec.chain.push_back({dacapo::mechanisms::kDummy, {}});
  }
  return spec;
}

ModuleGraphSpec IrqChain() {
  ModuleGraphSpec spec;
  dacapo::MechanismSpec irq;
  irq.name = dacapo::mechanisms::kIrq;
  irq.params["rto_us"] = 10'000;
  spec.chain.push_back(irq);
  return spec;
}

// Runs one configuration at one packet size; returns measured Mbps at the
// receiving A module.
double MeasureMbps(const ModuleGraphSpec& graph, std::size_t packet_bytes,
                   Duration duration) {
  sim::Network net(TestbedLink());
  dacapo::Acceptor acceptor(&net, {"receiver", 6100});
  if (!acceptor.Listen().ok()) return -1;

  ChannelOptions options;
  options.transport = ChannelOptions::Transport::kStream;
  options.graph = graph;
  options.packet_capacity = 64 * 1024;
  options.arena_packets = 512;

  Result<std::unique_ptr<dacapo::Session>> rx_session(
      Status(InternalError("unset")));
  std::thread accept_thread([&] {
    // The paper's measuring A module: count and release.
    rx_session = acceptor.Accept(dacapo::AppAModule::DeliveryMode::kCountOnly);
  });
  dacapo::Connector connector(&net, "sender");
  auto tx_session = connector.Connect({"receiver", 6100}, options);
  accept_thread.join();
  if (!tx_session.ok() || !rx_session.ok()) return -1;

  // Pre-allocated send buffer, as in the paper.
  const std::vector<std::uint8_t> payload(packet_bytes, 0xA5);

  const TimePoint end = Now() + duration;
  while (Now() < end) {
    if (!(*tx_session)->Send(payload).ok()) break;
  }
  // Let in-flight packets drain.
  std::this_thread::sleep_for(milliseconds(120));

  const dacapo::AppAModule::Stats stats = (*rx_session)->stats();
  (*tx_session)->Close();
  (*rx_session)->Close();
  if (stats.packets_rx < 2) return 0.0;
  const double seconds = ToSeconds(stats.last_rx - stats.first_rx);
  if (seconds <= 0) return 0.0;
  return static_cast<double>(stats.bytes_rx) * 8.0 / seconds / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = cool::bench::BenchArgs::Parse(argc, argv);
  std::printf(
      "=== Figure 9: Da CaPo throughput (Mbps) vs packet size ===\n"
      "link: 90 Mbit/s, 400 us one-way; T module encapsulates TCP%s\n\n",
      args.smoke ? " (smoke mode)" : "");

  // Smoke mode: corner sizes and the cheap configs only, shorter windows.
  const std::vector<std::size_t> packet_sizes =
      args.smoke ? std::vector<std::size_t>{1024, 16384, 65536}
                 : std::vector<std::size_t>{1024, 2048, 4096, 8192, 16384,
                                            32768, 65536};
  struct Config {
    const char* name;
    cool::dacapo::ModuleGraphSpec graph;
  };
  std::vector<Config> configs;
  configs.push_back({"0 dummy", DummyChain(0)});
  configs.push_back({"10 dummy", DummyChain(10)});
  if (!args.smoke) {
    configs.push_back({"20 dummy", DummyChain(20)});
    configs.push_back({"40 dummy", DummyChain(40)});
  }
  configs.push_back({"IRQ", IrqChain()});
  const cool::Duration window =
      args.smoke ? cool::milliseconds(120) : cool::milliseconds(250);

  std::vector<std::string> headers = {"packet"};
  for (const Config& config : configs) headers.push_back(config.name);
  cool::bench::Table table(std::move(headers));
  std::vector<cool::bench::BenchRecord> records;
  for (const std::size_t size : packet_sizes) {
    std::vector<std::string> row;
    row.push_back(std::to_string(size / 1024) + " KiB");
    for (const Config& config : configs) {
      const double mbps = MeasureMbps(config.graph, size, window);
      row.push_back(cool::bench::Fmt("%.1f", mbps));
      std::fflush(stdout);
      cool::bench::BenchRecord rec;
      rec.name = std::string(config.name) + " / " +
                 std::to_string(size / 1024) + " KiB";
      rec.mbps = mbps;
      rec.msgs_per_sec =
          mbps * 1e6 / 8.0 / static_cast<double>(size);  // packets/s
      records.push_back(std::move(rec));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  if (!args.json_path.empty() &&
      !cool::bench::WriteJson(args.json_path, records)) {
    return 1;
  }

  std::printf(
      "\nshape checks (paper §6):\n"
      "  * columns 0..40 dummy should be close to each other per row\n"
      "    (module interfaces + packet forwarding cost little),\n"
      "  * every column should grow with packet size,\n"
      "  * IRQ should sit far below the dummy configurations\n"
      "    (stop-and-wait: ~packet_size/RTT).\n");
  return 0;
}
