// Ablation A8 — the paper's Fig. 7 design choice: Da CaPo below the
// generic transport layer (alternative (i), what the paper implemented)
// vs the message protocol wrapped as a Da CaPo module (alternative (ii),
// which the paper only designed). Same servant, same link, same GIOP
// client; measures invocation RTT.
//
// Expected shape: (ii) shaves the generic-transport hop and the dedicated
// per-connection server thread (the A-module thread dispatches directly),
// so it should be equal or slightly faster — supporting the paper's remark
// that (i) was chosen for engineering convenience ("follows the generic
// communication framework in COOL and is easier to implement"), not
// performance.
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "orb/giop_module.h"
#include "orb/stub.h"

namespace {

using namespace cool;

sim::LinkProperties TestbedLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 90'000'000;
  link.latency = microseconds(400);
  return link;
}

class PingServant : public orb::Servant {
 public:
  std::string_view repository_id() const override {
    return "IDL:bench/Ping:1.0";
  }
  orb::DispatchOutcome Dispatch(std::string_view, cdr::Decoder& args,
                                cdr::Encoder& out) override {
    auto v = args.GetLong();
    out.PutLong(v.ok() ? *v : 0);
    return orb::DispatchOutcome::Ok();
  }
};

corba::OctetSeq Key(std::string_view s) { return {s.begin(), s.end()}; }

bench::LatencyStats MeasureClient(giop::GiopClient& client,
                                  const corba::OctetSeq& key,
                                  int iterations) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(iterations));
  for (int i = -20; i < iterations; ++i) {
    cdr::Encoder args = client.MakeArgsEncoder();
    args.PutLong(i);
    const Stopwatch sw;
    auto reply = client.Invoke(key, "ping", args.buffer().view(), {});
    if (!reply.ok()) {
      std::fprintf(stderr, "invoke failed: %s\n",
                   reply.status().ToString().c_str());
      return {};
    }
    if (i >= 0) samples.push_back(ToMicros(sw.Elapsed()));
  }
  return bench::Summarize(std::move(samples));
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation A8: Fig. 7 integration alternatives ===\n"
      "link: 90 Mbit/s, 400 us one-way; same servant, same GIOP client\n\n");

  constexpr int kIterations = 300;
  sim::Network net(TestbedLink());
  cool::bench::Table table({"integration", "mean us", "p50 us", "p95 us"});

  // Alternative (i): the full ORB stack — generic transport layer with the
  // DacapoComChannel, per-connection GIOP server thread.
  {
    orb::ORB server(&net, "server-alt1");
    orb::ORB client_orb(&net, "client");
    auto ref = server.RegisterServant("ping", std::make_shared<PingServant>(),
                                      orb::Protocol::kDacapo);
    if (!ref.ok() || !server.Start().ok()) return 1;
    orb::Stub stub(&client_orb, *ref);

    std::vector<double> samples;
    for (int i = -20; i < kIterations; ++i) {
      cdr::Encoder args = stub.MakeArgsEncoder();
      args.PutLong(i);
      const Stopwatch sw;
      auto reply = stub.Invoke("ping", args.buffer().view());
      if (!reply.ok()) return 1;
      if (i >= 0) samples.push_back(ToMicros(sw.Elapsed()));
    }
    const auto stats = cool::bench::Summarize(std::move(samples));
    table.AddRow({"(i) below generic transport",
                  cool::bench::Fmt("%.1f", stats.mean_us),
                  cool::bench::Fmt("%.1f", stats.p50_us),
                  cool::bench::Fmt("%.1f", stats.p95_us)});
    server.Shutdown();
  }

  // Alternative (ii): GIOP as the A module of the graph.
  {
    orb::ObjectAdapter adapter;
    if (!adapter.Activate("ping", std::make_shared<PingServant>()).ok()) {
      return 1;
    }
    orb::Alt2Server server(&net, {"server-alt2", 7800}, &adapter);
    if (!server.Start().ok()) return 1;

    dacapo::Connector connector(&net, "client");
    auto session = connector.Connect({"server-alt2", 7800}, {});
    if (!session.ok()) return 1;
    orb::SessionComChannel channel(std::move(session).value());
    giop::GiopClient client(&channel, {});
    const auto stats = MeasureClient(client, Key("ping"), kIterations);
    table.AddRow({"(ii) GIOP as Da CaPo A-module",
                  cool::bench::Fmt("%.1f", stats.mean_us),
                  cool::bench::Fmt("%.1f", stats.p50_us),
                  cool::bench::Fmt("%.1f", stats.p95_us)});
    server.Shutdown();
  }

  table.Print();
  std::printf(
      "\nshape check: both within the same RTT-bound envelope; (ii) saves\n"
      "the generic-transport hop and the dedicated dispatcher thread, so\n"
      "it should not be slower — the paper picked (i) for engineering\n"
      "convenience, not performance, and this measurement backs that.\n");
  return 0;
}
