// Ablation A4: the three transports under COOL's generic transport layer
// compared on the same request/reply workload — TCP, Chorus-IPC-like
// messaging, and Da CaPo (empty graph and a configured QoS graph).
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "common/thread.h"
#include "transport/dacapo_channel.h"
#include "transport/ipc_channel.h"
#include "transport/tcp_channel.h"

namespace {

using namespace cool;

sim::LinkProperties TestbedLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 90'000'000;
  link.latency = microseconds(400);
  return link;
}

std::vector<std::uint8_t> Payload(std::size_t n) {
  return std::vector<std::uint8_t>(n, 0x5A);
}

// Builds the helper thread through a function return rather than a direct
// local: constructing the jthread in place trips a GCC 12
// -Wmaybe-uninitialized false positive in std::stop_source's self-reference.
template <typename F>
cool::Thread Spawn(F&& f) {
  return cool::Thread(std::forward<F>(f));
}

// Measures request/reply RTT over an established channel pair.
bench::LatencyStats MeasureRtt(transport::ComChannel& client,
                               transport::ComChannel& server,
                               int iterations) {
  cool::Thread echo = Spawn([&server](std::stop_token st) {
    while (!st.stop_requested()) {
      auto req = server.ReceiveMessage(milliseconds(200));
      if (!req.ok()) continue;
      (void)server.Reply(req->view());
    }
  });

  const auto payload = Payload(256);
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(iterations));
  for (int i = -10; i < iterations; ++i) {
    const Stopwatch sw;
    auto reply = client.Call(payload, seconds(5));
    if (!reply.ok()) break;
    if (i >= 0) samples.push_back(ToMicros(sw.Elapsed()));
  }
  echo.request_stop();
  echo.join();
  return bench::Summarize(std::move(samples));
}

// One-directional bulk throughput over an established channel pair.
double MeasureMbps(transport::ComChannel& client,
                   transport::ComChannel& server, std::size_t message_bytes,
                   Duration duration) {
  std::atomic<std::uint64_t> received{0};
  cool::Thread drain = Spawn([&server, &received](std::stop_token st) {
    while (!st.stop_requested()) {
      auto msg = server.ReceiveMessage(milliseconds(200));
      if (msg.ok()) received += msg->size();
    }
  });

  const auto payload = Payload(message_bytes);
  const Stopwatch sw;
  const TimePoint end = Now() + duration;
  while (Now() < end) {
    if (!client.SendMessage(payload).ok()) break;
  }
  std::this_thread::sleep_for(milliseconds(100));
  drain.request_stop();
  drain.join();
  const double seconds = ToSeconds(sw.Elapsed());
  return static_cast<double>(received.load()) * 8.0 / seconds / 1e6;
}

struct ChannelPair {
  std::unique_ptr<transport::ComChannel> client;
  std::unique_ptr<transport::ComChannel> server;
};

ChannelPair Establish(transport::ComManager& client_mgr,
                      transport::ComManager& server_mgr,
                      const sim::Address& remote,
                      const qos::QoSSpec& spec = {}) {
  Result<std::unique_ptr<transport::ComChannel>> accepted(
      Status(InternalError("unset")));
  cool::Thread accept([&] { accepted = server_mgr.AcceptChannel(); });
  auto opened = client_mgr.OpenChannel(remote, spec);
  accept.join();
  if (!opened.ok() || !accepted.ok()) {
    std::fprintf(stderr, "establish failed: %s / %s\n",
                 opened.status().ToString().c_str(),
                 accepted.status().ToString().c_str());
    return {};
  }
  return {std::move(opened).value(), std::move(accepted).value()};
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation A4: transports under the generic transport layer ===\n"
      "link: 90 Mbit/s, 400 us one-way; 256 B request/reply, 16 KiB bulk\n\n");

  sim::Network net(TestbedLink());
  constexpr int kIterations = 150;
  cool::bench::Table table({"transport", "rtt mean us", "rtt p95 us",
                            "bulk Mbps"});

  dacapo::NetworkEstimate estimate;
  estimate.bandwidth_bps = 90'000'000;
  estimate.rtt_us = 800;
  estimate.transport_reliable = true;

  {
    transport::TcpComManager server_mgr(&net, {"server", 7400});
    transport::TcpComManager client_mgr(&net, {"client", 7400});
    if (!server_mgr.Listen().ok()) return 1;
    auto pair = Establish(client_mgr, server_mgr, {"server", 7400});
    if (pair.client == nullptr) return 1;
    const auto rtt = MeasureRtt(*pair.client, *pair.server, kIterations);
    const double mbps =
        MeasureMbps(*pair.client, *pair.server, 16 * 1024,
                    cool::milliseconds(300));
    table.AddRow({"tcp", cool::bench::Fmt("%.1f", rtt.mean_us),
                  cool::bench::Fmt("%.1f", rtt.p95_us),
                  cool::bench::Fmt("%.1f", mbps)});
  }
  {
    transport::IpcComManager server_mgr(&net, {"server", 7401});
    transport::IpcComManager client_mgr(&net, {"client", 7401});
    if (!server_mgr.Listen().ok()) return 1;
    auto pair = Establish(client_mgr, server_mgr, {"server", 7401});
    if (pair.client == nullptr) return 1;
    const auto rtt = MeasureRtt(*pair.client, *pair.server, kIterations);
    const double mbps =
        MeasureMbps(*pair.client, *pair.server, 16 * 1024,
                    cool::milliseconds(300));
    table.AddRow({"ipc", cool::bench::Fmt("%.1f", rtt.mean_us),
                  cool::bench::Fmt("%.1f", rtt.p95_us),
                  cool::bench::Fmt("%.1f", mbps)});
  }
  {
    transport::DacapoComManager server_mgr(&net, {"server", 7402}, estimate);
    transport::DacapoComManager client_mgr(&net, {"client", 7402}, estimate);
    if (!server_mgr.Listen().ok()) return 1;
    auto pair = Establish(client_mgr, server_mgr, {"server", 7402});
    if (pair.client == nullptr) return 1;
    const auto rtt = MeasureRtt(*pair.client, *pair.server, kIterations);
    const double mbps =
        MeasureMbps(*pair.client, *pair.server, 16 * 1024,
                    cool::milliseconds(300));
    table.AddRow({"dacapo (empty graph)",
                  cool::bench::Fmt("%.1f", rtt.mean_us),
                  cool::bench::Fmt("%.1f", rtt.p95_us),
                  cool::bench::Fmt("%.1f", mbps)});
  }
  {
    transport::DacapoComManager server_mgr(&net, {"server", 7403}, estimate);
    transport::DacapoComManager client_mgr(&net, {"client", 7403}, estimate);
    if (!server_mgr.Listen().ok()) return 1;
    auto spec = qos::QoSSpec::FromParameters(
        {qos::RequireReliability(1), qos::RequireEncryption(true)});
    if (!spec.ok()) return 1;
    auto pair = Establish(client_mgr, server_mgr, {"server", 7403}, *spec);
    if (pair.client == nullptr) return 1;
    const auto rtt = MeasureRtt(*pair.client, *pair.server, kIterations);
    const double mbps =
        MeasureMbps(*pair.client, *pair.server, 16 * 1024,
                    cool::milliseconds(300));
    table.AddRow({"dacapo (crc+cipher)",
                  cool::bench::Fmt("%.1f", rtt.mean_us),
                  cool::bench::Fmt("%.1f", rtt.p95_us),
                  cool::bench::Fmt("%.1f", mbps)});
  }

  table.Print();
  std::printf(
      "\nshape check: all transports are within the same order (RTT-bound);\n"
      "dacapo adds per-module queue hops, the configured graph adds\n"
      "checksum+cipher work per octet — visible but small at this scale.\n");
  return 0;
}
