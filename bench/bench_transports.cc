// Ablation A4: the three transports under COOL's generic transport layer
// compared on the same request/reply workload — TCP, Chorus-IPC-like
// messaging, and Da CaPo (empty graph and a configured QoS graph).
//
// Two link regimes:
//  * testbed link (90 Mbit/s, 400 us): the paper-era WAN shape, where all
//    transports are RTT/bandwidth-bound and should sit close together;
//  * fast link (no pacing, no propagation): CPU-bound, where the ORB's own
//    data path — mailbox hops, wakeups, copies — is the bottleneck. The
//    msgs/s column of this regime is the headline number tracked across
//    PRs by scripts/run_benchmarks.py.
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "common/thread.h"
#include "transport/dacapo_channel.h"
#include "transport/ipc_channel.h"
#include "transport/tcp_channel.h"

namespace {

using namespace cool;

sim::LinkProperties TestbedLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 90'000'000;
  link.latency = microseconds(400);
  return link;
}

// No serialization pacing, no propagation delay: the benchmark measures
// the ORB data path itself rather than the simulated wire.
sim::LinkProperties FastLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;
  link.latency = Duration::zero();
  link.jitter = Duration::zero();
  return link;
}

std::vector<std::uint8_t> Payload(std::size_t n) {
  return std::vector<std::uint8_t>(n, 0x5A);
}

// Builds the helper thread through a function return rather than a direct
// local: constructing the jthread in place trips a GCC 12
// -Wmaybe-uninitialized false positive in std::stop_source's self-reference.
template <typename F>
cool::Thread Spawn(F&& f) {
  return cool::Thread(std::forward<F>(f));
}

// Measures request/reply RTT over an established channel pair.
bench::LatencyStats MeasureRtt(transport::ComChannel& client,
                               transport::ComChannel& server,
                               int iterations) {
  cool::Thread echo = Spawn([&server](std::stop_token st) {
    while (!st.stop_requested()) {
      auto req = server.ReceiveMessage(milliseconds(200));
      if (!req.ok()) continue;
      (void)server.Reply(req->view());
    }
  });

  const auto payload = Payload(256);
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(iterations));
  for (int i = -10; i < iterations; ++i) {
    const Stopwatch sw;
    auto reply = client.Call(payload, seconds(5));
    if (!reply.ok()) break;
    if (i >= 0) samples.push_back(ToMicros(sw.Elapsed()));
  }
  echo.request_stop();
  echo.join();
  return bench::Summarize(std::move(samples));
}

// One-directional bulk throughput over an established channel pair.
double MeasureMbps(transport::ComChannel& client,
                   transport::ComChannel& server, std::size_t message_bytes,
                   Duration duration) {
  std::atomic<std::uint64_t> received{0};
  cool::Thread drain = Spawn([&server, &received](std::stop_token st) {
    while (!st.stop_requested()) {
      auto msg = server.ReceiveMessage(milliseconds(200));
      if (msg.ok()) received += msg->size();
    }
  });

  const auto payload = Payload(message_bytes);
  const Stopwatch sw;
  const TimePoint end = Now() + duration;
  while (Now() < end) {
    if (!client.SendMessage(payload).ok()) break;
  }
  std::this_thread::sleep_for(milliseconds(100));
  drain.request_stop();
  drain.join();
  const double seconds = ToSeconds(sw.Elapsed());
  return static_cast<double>(received.load()) * 8.0 / seconds / 1e6;
}

// One-directional small-message rate: how many messages per second survive
// the full data path (channel -> session -> module chain -> wire -> chain
// -> channel). Small payloads make the per-message costs — locks, wakeups,
// copies — dominate, which is exactly what the batching work targets.
double MeasureMsgsPerSec(transport::ComChannel& client,
                         transport::ComChannel& server,
                         std::size_t message_bytes, Duration duration) {
  // The dacapo data plane is pipelined: SendMessage injects into the
  // module chain and returns, and the chain keeps delivering after the
  // send loop stops. Start from quiescence so messages left in flight by
  // a previous window can't inflate this one.
  while (server.ReceiveMessage(milliseconds(50)).ok()) {
  }

  std::atomic<bool> counting{false};
  std::atomic<std::uint64_t> received{0};
  cool::Thread drain = Spawn([&server, &counting, &received](
                                 std::stop_token st) {
    while (!st.stop_requested()) {
      auto msg = server.ReceiveMessage(milliseconds(200));
      if (msg.ok() && counting.load(std::memory_order_relaxed)) received += 1;
    }
  });

  const auto payload = Payload(message_bytes);
  // Warm-up: fill the pipeline so the counted window sees steady state.
  const TimePoint warm_end = Now() + milliseconds(40);
  while (Now() < warm_end) {
    if (!client.SendMessage(payload).ok()) break;
  }
  // Count arrivals over exactly the send window: messages in flight at
  // the start stand in for the ones still in flight at the end, so the
  // ratio estimates sustained throughput without a grace-period fudge.
  counting.store(true, std::memory_order_relaxed);
  const Stopwatch sw;
  const TimePoint end = Now() + duration;
  while (Now() < end) {
    if (!client.SendMessage(payload).ok()) break;
  }
  counting.store(false, std::memory_order_relaxed);
  const double seconds = ToSeconds(sw.Elapsed());
  drain.request_stop();
  drain.join();
  return static_cast<double>(received.load()) / seconds;
}

struct ChannelPair {
  std::unique_ptr<transport::ComChannel> client;
  std::unique_ptr<transport::ComChannel> server;
};

ChannelPair Establish(transport::ComManager& client_mgr,
                      transport::ComManager& server_mgr,
                      const sim::Address& remote,
                      const qos::QoSSpec& spec = {}) {
  Result<std::unique_ptr<transport::ComChannel>> accepted(
      Status(InternalError("unset")));
  cool::Thread accept([&] { accepted = server_mgr.AcceptChannel(); });
  auto opened = client_mgr.OpenChannel(remote, spec);
  accept.join();
  if (!opened.ok() || !accepted.ok()) {
    std::fprintf(stderr, "establish failed: %s / %s\n",
                 opened.status().ToString().c_str(),
                 accepted.status().ToString().c_str());
    return {};
  }
  return {std::move(opened).value(), std::move(accepted).value()};
}

// Runs the full measurement set over one established pair and records both
// the human-readable row and the machine-readable entry. The msgs/s metric
// is median-of-N with the (max-min)/median spread recorded alongside: the
// benchmark machine is shared, and the earlier best-of-N estimator let a
// single lucky window move the trajectory rows by double digits run to
// run. The median is robust to one interfered window in either direction,
// and the spread column makes a noisy run visible instead of silently
// feeding a distorted number into the cross-PR trajectory.
bool MeasurePair(const char* name, ChannelPair& pair, int iterations,
                 Duration duration, int reps, cool::bench::Table& table,
                 std::vector<bench::BenchRecord>& records) {
  if (pair.client == nullptr) return false;
  const auto rtt = MeasureRtt(*pair.client, *pair.server, iterations);
  const double mbps =
      MeasureMbps(*pair.client, *pair.server, 16 * 1024, duration);
  std::vector<double> runs;
  runs.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    runs.push_back(
        MeasureMsgsPerSec(*pair.client, *pair.server, 256, duration));
  }
  std::sort(runs.begin(), runs.end());
  const double msgs = runs[runs.size() / 2];
  const double spread =
      msgs > 0 ? (runs.back() - runs.front()) / msgs * 100.0 : 0;
  table.AddRow({name, cool::bench::Fmt("%.1f", rtt.mean_us),
                cool::bench::Fmt("%.1f", rtt.p95_us),
                cool::bench::Fmt("%.1f", mbps),
                cool::bench::Fmt("%.0f", msgs),
                cool::bench::Fmt("%.1f%%", spread)});
  bench::BenchRecord rec;
  rec.name = name;
  rec.msgs_per_sec = msgs;
  rec.mbps = mbps;
  rec.p50_us = rtt.p50_us;
  rec.p99_us = rtt.p99_us;
  rec.spread_pct = spread;
  records.push_back(std::move(rec));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = cool::bench::BenchArgs::Parse(argc, argv);
  const int iterations = args.smoke ? 40 : 150;
  // Odd rep counts keep the median an actual sample rather than standing
  // between two; the full-mode window is long enough (600 ms) that one
  // scheduler hiccup can no longer dominate a measurement.
  const int reps = args.smoke ? 3 : 5;
  const Duration duration =
      args.smoke ? cool::milliseconds(120) : cool::milliseconds(600);

  std::printf(
      "=== Ablation A4: transports under the generic transport layer ===\n"
      "testbed link: 90 Mbit/s, 400 us one-way; 256 B request/reply,\n"
      "16 KiB bulk, 256 B message-rate%s\n\n",
      args.smoke ? " (smoke mode)" : "");

  dacapo::NetworkEstimate estimate;
  estimate.bandwidth_bps = 90'000'000;
  estimate.rtt_us = 800;
  estimate.transport_reliable = true;

  std::vector<cool::bench::BenchRecord> records;
  cool::bench::Table table({"transport", "rtt mean us", "rtt p95 us",
                            "bulk Mbps", "msgs/s", "spread"});
  {
    sim::Network net(TestbedLink());
    {
      transport::TcpComManager server_mgr(&net, {"server", 7400});
      transport::TcpComManager client_mgr(&net, {"client", 7400});
      if (!server_mgr.Listen().ok()) return 1;
      auto pair = Establish(client_mgr, server_mgr, {"server", 7400});
      if (!MeasurePair("tcp", pair, iterations, duration, reps, table, records)) {
        return 1;
      }
    }
    {
      transport::IpcComManager server_mgr(&net, {"server", 7401});
      transport::IpcComManager client_mgr(&net, {"client", 7401});
      if (!server_mgr.Listen().ok()) return 1;
      auto pair = Establish(client_mgr, server_mgr, {"server", 7401});
      if (!MeasurePair("ipc", pair, iterations, duration, reps, table, records)) {
        return 1;
      }
    }
    {
      transport::DacapoComManager server_mgr(&net, {"server", 7402},
                                             estimate);
      transport::DacapoComManager client_mgr(&net, {"client", 7402},
                                             estimate);
      if (!server_mgr.Listen().ok()) return 1;
      auto pair = Establish(client_mgr, server_mgr, {"server", 7402});
      if (!MeasurePair("dacapo (empty graph)", pair, iterations, duration,
                       reps, table, records)) {
        return 1;
      }
    }
    {
      transport::DacapoComManager server_mgr(&net, {"server", 7403},
                                             estimate);
      transport::DacapoComManager client_mgr(&net, {"client", 7403},
                                             estimate);
      if (!server_mgr.Listen().ok()) return 1;
      auto spec = qos::QoSSpec::FromParameters(
          {qos::RequireReliability(1), qos::RequireEncryption(true)});
      if (!spec.ok()) return 1;
      auto pair = Establish(client_mgr, server_mgr, {"server", 7403}, *spec);
      if (!MeasurePair("dacapo (crc+cipher)", pair, iterations, duration,
                       reps, table, records)) {
        return 1;
      }
    }
  }
  {
    // CPU-bound regime: the default (empty) Da CaPo stream graph over an
    // unconstrained link. This row is the batching/zero-copy headline.
    sim::Network fast_net(FastLink());
    dacapo::NetworkEstimate fast_estimate;
    fast_estimate.bandwidth_bps = 0;
    fast_estimate.rtt_us = 1;
    fast_estimate.transport_reliable = true;
    transport::DacapoComManager server_mgr(&fast_net, {"server", 7404},
                                           fast_estimate);
    transport::DacapoComManager client_mgr(&fast_net, {"client", 7404},
                                           fast_estimate);
    if (!server_mgr.Listen().ok()) return 1;
    auto pair = Establish(client_mgr, server_mgr, {"server", 7404});
    if (!MeasurePair("dacapo (fast link)", pair, iterations, duration, reps,
                     table, records)) {
      return 1;
    }
  }

  table.Print();
  std::printf(
      "\nshape check: on the testbed link all transports are within the\n"
      "same order (RTT-bound); dacapo adds per-module queue hops, the\n"
      "configured graph adds checksum+cipher work per octet. The fast-link\n"
      "row is CPU-bound and tracks the data-path cost itself.\n");

  if (!args.json_path.empty() &&
      !cool::bench::WriteJson(args.json_path, records)) {
    return 1;
  }
  return 0;
}
