// Ablation A1: wire-level cost of the GIOP extension — Request build and
// parse time and message size, as a function of the number of QoS
// parameters (0 = standard GIOP 1.0). google-benchmark micro harness.
#include <benchmark/benchmark.h>

#include "giop/message.h"

namespace {

using namespace cool;

giop::RequestHeader MakeHeader(int qos_params) {
  giop::RequestHeader h;
  h.request_id = 1;
  h.response_expected = true;
  h.object_key = {'b', 'e', 'n', 'c', 'h'};
  h.operation = "render_frame";
  for (int i = 0; i < qos_params; ++i) {
    h.qos_params.push_back(
        qos::RequireThroughputKbps(1000 + static_cast<corba::ULong>(i), 100));
  }
  return h;
}

std::vector<corba::Octet> MakeArgs() {
  cdr::Encoder enc(cdr::NativeOrder(), 0);
  enc.PutLong(640);
  enc.PutLong(480);
  enc.PutString("a modest argument payload");
  const auto view = enc.buffer().view();
  return {view.begin(), view.end()};
}

void BM_BuildRequestGiop10(benchmark::State& state) {
  const giop::RequestHeader header = MakeHeader(0);
  const auto args = MakeArgs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(giop::BuildRequest(giop::kGiop10, header, args));
  }
}
BENCHMARK(BM_BuildRequestGiop10);

void BM_BuildRequestGiop99(benchmark::State& state) {
  const giop::RequestHeader header =
      MakeHeader(static_cast<int>(state.range(0)));
  const auto args = MakeArgs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        giop::BuildRequest(giop::kGiopQos, header, args));
  }
  state.SetLabel("qos_params=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_BuildRequestGiop99)->Arg(0)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_ParseRequestGiop10(benchmark::State& state) {
  const ByteBuffer msg =
      giop::BuildRequest(giop::kGiop10, MakeHeader(0), MakeArgs());
  for (auto _ : state) {
    auto parsed = giop::ParseMessage(msg.view());
    cdr::Decoder dec = parsed->MakeBodyDecoder();
    benchmark::DoNotOptimize(
        giop::ParseRequestHeader(dec, parsed->header.version));
  }
}
BENCHMARK(BM_ParseRequestGiop10);

void BM_ParseRequestGiop99(benchmark::State& state) {
  const ByteBuffer msg = giop::BuildRequest(
      giop::kGiopQos, MakeHeader(static_cast<int>(state.range(0))),
      MakeArgs());
  for (auto _ : state) {
    auto parsed = giop::ParseMessage(msg.view());
    cdr::Decoder dec = parsed->MakeBodyDecoder();
    benchmark::DoNotOptimize(
        giop::ParseRequestHeader(dec, parsed->header.version));
  }
  state.SetLabel("qos_params=" + std::to_string(state.range(0)) +
                 " wire_bytes=" + std::to_string(msg.size()));
}
BENCHMARK(BM_ParseRequestGiop99)->Arg(0)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_BuildReply(benchmark::State& state) {
  giop::ReplyHeader header;
  header.request_id = 1;
  cdr::Encoder body(cdr::NativeOrder(), 0);
  body.PutString("result payload");
  const auto view = body.buffer().view();
  const std::vector<corba::Octet> body_bytes(view.begin(), view.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        giop::BuildReply(giop::kGiop10, header, body_bytes));
  }
}
BENCHMARK(BM_BuildReply);

// Size comparison printed once at exit via a pseudo-benchmark.
void BM_WireSizes(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(state.range(0));
  }
  const ByteBuffer v10 =
      giop::BuildRequest(giop::kGiop10, MakeHeader(0), MakeArgs());
  const ByteBuffer v99 = giop::BuildRequest(
      giop::kGiopQos, MakeHeader(static_cast<int>(state.range(0))),
      MakeArgs());
  state.SetLabel("giop1.0=" + std::to_string(v10.size()) + "B giop9.9=" +
                 std::to_string(v99.size()) + "B");
}
BENCHMARK(BM_WireSizes)->Arg(0)->Arg(1)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
