// Ablation A1: wire-level cost of the GIOP extension — Request build and
// parse throughput and allocations per operation, as a function of the
// number of QoS parameters (0 = standard GIOP 1.0). Uses the repo's
// --smoke/--json protocol so the marshalling hot path shows up in the
// benchmark trajectory (scripts/run_benchmarks.py) with allocs_per_op.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "alloc_hook.h"
#include "bench_util.h"
#include "common/clock.h"
#include "giop/message.h"

namespace {

using namespace cool;

giop::RequestHeader MakeHeader(int qos_params) {
  giop::RequestHeader h;
  h.request_id = 1;
  h.response_expected = true;
  h.object_key = {'b', 'e', 'n', 'c', 'h'};
  h.operation = "render_frame";
  for (int i = 0; i < qos_params; ++i) {
    h.qos_params.push_back(
        qos::RequireThroughputKbps(1000 + static_cast<corba::ULong>(i), 100));
  }
  return h;
}

std::vector<corba::Octet> MakeArgs() {
  cdr::Encoder enc(cdr::NativeOrder(), 0);
  enc.PutLong(640);
  enc.PutLong(480);
  enc.PutString("a modest argument payload");
  const auto view = enc.buffer().view();
  return {view.begin(), view.end()};
}

// Runs `op` for `iters` iterations and returns a record carrying ops/s and
// the allocation-counter delta per iteration. Timing is best-of-3 passes
// (the benchmark machine is shared; the max over short passes estimates
// the uncontended rate); the alloc counter is deterministic, so its delta
// spans all passes.
cool::bench::BenchRecord Measure(const std::string& name, std::size_t iters,
                                 const std::function<void()>& op) {
  constexpr int kPasses = 3;
  // Warm-up: let lazy pools/arenas reach steady state before counting.
  for (int i = 0; i < 64; ++i) op();
  const std::uint64_t allocs0 = cool::bench::AllocCount();
  double best_elapsed = 0;
  for (int pass = 0; pass < kPasses; ++pass) {
    const Stopwatch sw;
    for (std::size_t i = 0; i < iters; ++i) op();
    const double elapsed = sw.ElapsedSeconds();
    if (best_elapsed == 0 || elapsed < best_elapsed) best_elapsed = elapsed;
  }
  const std::uint64_t allocs1 = cool::bench::AllocCount();

  cool::bench::BenchRecord rec;
  rec.name = name;
  rec.msgs_per_sec = static_cast<double>(iters) / best_elapsed;
  rec.allocs_per_op = static_cast<double>(allocs1 - allocs0) /
                      static_cast<double>(iters) / kPasses;
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = cool::bench::BenchArgs::Parse(argc, argv);
  const std::size_t iters = args.smoke ? 20'000 : 200'000;

  std::printf("=== GIOP marshalling: build/parse cost vs QoS params ===%s\n\n",
              args.smoke ? " (smoke mode)" : "");

  const std::vector<corba::Octet> cdr_args = MakeArgs();
  std::vector<cool::bench::BenchRecord> records;

  records.push_back(Measure("build request giop1.0", iters, [&] {
    ByteBuffer msg = giop::BuildRequest(giop::kGiop10, MakeHeader(0), cdr_args);
    (void)msg;
  }));
  for (const int q : {0, 4, 16}) {
    char name[48];
    std::snprintf(name, sizeof name, "build request giop9.9 q%d", q);
    records.push_back(Measure(name, iters, [&, q] {
      ByteBuffer msg =
          giop::BuildRequest(giop::kGiopQos, MakeHeader(q), cdr_args);
      (void)msg;
    }));
  }

  const ByteBuffer msg10 =
      giop::BuildRequest(giop::kGiop10, MakeHeader(0), cdr_args);
  records.push_back(Measure("parse request giop1.0", iters, [&] {
    auto parsed = giop::ParseMessage(msg10.view());
    cdr::Decoder dec = parsed->MakeBodyDecoder();
    (void)giop::ParseRequestHeader(dec, parsed->header.version);
  }));
  const ByteBuffer msg99 =
      giop::BuildRequest(giop::kGiopQos, MakeHeader(4), cdr_args);
  records.push_back(Measure("parse request giop9.9 q4", iters, [&] {
    auto parsed = giop::ParseMessage(msg99.view());
    cdr::Decoder dec = parsed->MakeBodyDecoder();
    (void)giop::ParseRequestHeader(dec, parsed->header.version);
  }));

  giop::ReplyHeader reply_header;
  reply_header.request_id = 1;
  cdr::Encoder body(cdr::NativeOrder(), 0);
  body.PutString("result payload");
  const auto body_view = body.buffer().view();
  const std::vector<corba::Octet> body_bytes(body_view.begin(),
                                             body_view.end());
  records.push_back(Measure("build reply", iters, [&] {
    ByteBuffer msg = giop::BuildReply(giop::kGiop10, reply_header, body_bytes);
    (void)msg;
  }));

  cool::bench::Table table({"operation", "ops/s", "allocs/op"});
  for (const auto& rec : records) {
    table.AddRow({rec.name, cool::bench::Fmt("%.0f", rec.msgs_per_sec),
                  cool::bench::Fmt("%.2f", rec.allocs_per_op)});
  }
  table.Print();

  std::printf("\nwire sizes: giop1.0=%zuB giop9.9(q4)=%zuB\n", msg10.size(),
              msg99.size());

  if (!args.json_path.empty() &&
      !cool::bench::WriteJson(args.json_path, records)) {
    return 1;
  }
  return 0;
}
