// Process-wide allocation counter for the benchmarks. alloc_hook.cc
// replaces the global operator new/delete family with counting versions;
// linking it into a bench binary (cool_add_bench does this) makes
// AllocCount() advance by one per heap allocation on any thread. Divide a
// counter delta by operations completed to get allocs_per_op for the
// benchmark-trajectory JSON.
#pragma once

#include <cstdint>

namespace cool::bench {

// Total operator-new calls (all variants, all threads) since process start.
std::uint64_t AllocCount();

}  // namespace cool::bench
