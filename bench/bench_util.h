// Shared helpers for the reproduction benchmarks: latency statistics and
// aligned table printing in the style of the paper's figures.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/clock.h"

namespace cool::bench {

struct LatencyStats {
  double mean_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double min_us = 0;
  double max_us = 0;
};

inline LatencyStats Summarize(std::vector<double> samples_us) {
  LatencyStats s;
  if (samples_us.empty()) return s;
  std::sort(samples_us.begin(), samples_us.end());
  double sum = 0;
  for (double v : samples_us) sum += v;
  s.mean_us = sum / static_cast<double>(samples_us.size());
  s.p50_us = samples_us[samples_us.size() / 2];
  s.p95_us = samples_us[samples_us.size() * 95 / 100];
  s.min_us = samples_us.front();
  s.max_us = samples_us.back();
  return s;
}

// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("  ");
      for (std::size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::vector<std::string> rule;
    rule.reserve(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      rule.push_back(std::string(widths[c], '-'));
    }
    print_row(rule);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, value);
  return buf;
}

}  // namespace cool::bench
