// Shared helpers for the reproduction benchmarks: latency statistics,
// aligned table printing in the style of the paper's figures, and the
// smoke/JSON harness used by scripts/run_benchmarks.py to record the
// benchmark trajectory across PRs.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/clock.h"

namespace cool::bench {

struct LatencyStats {
  double mean_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double min_us = 0;
  double max_us = 0;
};

inline LatencyStats Summarize(std::vector<double> samples_us) {
  LatencyStats s;
  if (samples_us.empty()) return s;
  std::sort(samples_us.begin(), samples_us.end());
  double sum = 0;
  for (double v : samples_us) sum += v;
  s.mean_us = sum / static_cast<double>(samples_us.size());
  s.p50_us = samples_us[samples_us.size() / 2];
  s.p95_us = samples_us[samples_us.size() * 95 / 100];
  s.p99_us = samples_us[samples_us.size() * 99 / 100];
  s.p999_us = samples_us[std::min(samples_us.size() - 1,
                                  samples_us.size() * 999 / 1000)];
  s.min_us = samples_us.front();
  s.max_us = samples_us.back();
  return s;
}

// Jain's fairness index over per-flow throughputs (or any share metric):
// (sum x)^2 / (n * sum x^2). 1.0 = perfectly equal shares; 1/n = one flow
// took everything.
inline double JainIndex(const std::vector<double>& shares) {
  if (shares.empty()) return 1.0;
  double sum = 0;
  double sum_sq = 0;
  for (double v : shares) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq <= 0) return 1.0;
  return sum * sum / (static_cast<double>(shares.size()) * sum_sq);
}

// --- smoke/JSON harness ------------------------------------------------------

// Common flags for benchmark binaries:
//   --smoke        shrink durations/iterations so CI finishes in seconds
//   --json <path>  append machine-readable results to <path>
//   --conns <n>    restrict a connection-scaling bench to one point
struct BenchArgs {
  bool smoke = false;
  std::string json_path;
  // 0 = sweep the binary's default curve; otherwise measure only this
  // connection count (bench_connection_scaling).
  std::size_t conns = 0;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--smoke") == 0) {
        args.smoke = true;
      } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        args.json_path = argv[++i];
      } else if (std::strcmp(argv[i], "--conns") == 0 && i + 1 < argc) {
        args.conns = static_cast<std::size_t>(std::strtoull(
            argv[++i], nullptr, 10));
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      }
    }
    return args;
  }
};

// One named measurement; unset metrics (< 0) are omitted from the JSON.
struct BenchRecord {
  std::string name;
  double msgs_per_sec = -1;
  double mbps = -1;
  double p50_us = -1;
  double p99_us = -1;
  double p999_us = -1;
  // Jain's fairness index of the per-flow shares a scenario produced
  // (bench_qos_fairness's headline metric; 1.0 = perfectly fair).
  double jain = -1;
  // Heap allocations per operation (bench/alloc_hook.h counter delta over
  // operations completed). Only meaningful in binaries linking alloc_hook.cc.
  double allocs_per_op = -1;
  // Process thread count at steady state (bench_connection_scaling: the
  // flat-curve acceptance metric for the event-driven connection engine).
  double threads = -1;
  // Run-to-run spread of the headline metric, (max - min) / median * 100,
  // across the in-process repetitions. Rows with > ~10% deserve suspicion.
  double spread_pct = -1;
  // Resident-set growth per connection (RSS delta / connections held) and
  // the absolute RSS at steady state — bench_connection_scaling's memory
  // acceptance metrics for the 100k-connection engine.
  double bytes_per_conn = -1;
  double rss_mb = -1;
  // Accept-to-adopted throughput of the batched accept path.
  double accepts_per_sec = -1;
};

// Writes records as a JSON array of objects. Overwrites `path`; the
// aggregation across binaries/runs happens in scripts/run_benchmarks.py.
inline bool WriteJson(const std::string& path,
                      const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f, "  {\"name\": \"%s\"", r.name.c_str());
    if (r.msgs_per_sec >= 0) {
      std::fprintf(f, ", \"msgs_per_sec\": %.1f", r.msgs_per_sec);
    }
    if (r.mbps >= 0) std::fprintf(f, ", \"mbps\": %.2f", r.mbps);
    if (r.p50_us >= 0) std::fprintf(f, ", \"p50_us\": %.1f", r.p50_us);
    if (r.p99_us >= 0) std::fprintf(f, ", \"p99_us\": %.1f", r.p99_us);
    if (r.p999_us >= 0) std::fprintf(f, ", \"p999_us\": %.1f", r.p999_us);
    if (r.jain >= 0) std::fprintf(f, ", \"jain\": %.4f", r.jain);
    if (r.allocs_per_op >= 0) {
      std::fprintf(f, ", \"allocs_per_op\": %.2f", r.allocs_per_op);
    }
    if (r.threads >= 0) std::fprintf(f, ", \"threads\": %.0f", r.threads);
    if (r.spread_pct >= 0) {
      std::fprintf(f, ", \"spread_pct\": %.1f", r.spread_pct);
    }
    if (r.bytes_per_conn >= 0) {
      std::fprintf(f, ", \"bytes_per_conn\": %.0f", r.bytes_per_conn);
    }
    if (r.rss_mb >= 0) std::fprintf(f, ", \"rss_mb\": %.1f", r.rss_mb);
    if (r.accepts_per_sec >= 0) {
      std::fprintf(f, ", \"accepts_per_sec\": %.0f", r.accepts_per_sec);
    }
    std::fprintf(f, "}%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  return true;
}

// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("  ");
      for (std::size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::vector<std::string> rule;
    rule.reserve(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      rule.push_back(std::string(widths[c], '-'));
    }
    print_row(rule);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, value);
  return buf;
}

}  // namespace cool::bench
