// Connection-scaling curve for the reactor-driven connection engine: ONE
// server ORB accepting 1 -> 100k simulated client connections. Most
// connections are parked (accepted, registered with the reactor, idle);
// a fixed active subset keeps invoking throughout, so the curve shows
// whether idle connections cost server threads, memory, or active-path
// throughput. With the old thread-per-channel engine the server thread
// count grew linearly with connections; with the reactor it must stay
// flat — the "threads" column is the acceptance number for that claim,
// and "B/conn" (RSS growth per parked connection) is the acceptance
// number for the per-connection memory diet.
#include <cstdio>
#include <memory>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "bench_util.h"
#include "common/thread.h"
#include "giop/engine.h"
#include "orb/orb.h"
#include "transport/reactor.h"
#include "transport/tcp_channel.h"

namespace {

using namespace cool;

sim::LinkProperties QuickLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 0;  // unconstrained: measure the engine, not the wire
  link.latency = microseconds(20);
  return link;
}

// add(long,long)->long, the minimal two-way upcall.
class AddServant : public orb::Servant {
 public:
  std::string_view repository_id() const override {
    return "IDL:bench/Add:1.0";
  }
  orb::DispatchOutcome Dispatch(std::string_view operation,
                                cdr::Decoder& args,
                                cdr::Encoder& out) override {
    if (operation != "add") {
      return orb::DispatchOutcome::Fail(UnsupportedError("unknown op"));
    }
    auto a = args.GetLong();
    auto b = args.GetLong();
    if (!a.ok() || !b.ok()) {
      return orb::DispatchOutcome::Fail(InvalidArgumentError("bad args"));
    }
    out.PutLong(*a + *b);
    return orb::DispatchOutcome::Ok();
  }
};

// Live thread count of this process (server + clients + harness): the
// flat-curve claim is that it does not grow with the connection count.
int ProcessThreads() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  int threads = -1;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "Threads:\t%d", &threads) == 1) break;
  }
  std::fclose(f);
  return threads;
}

long ReadRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "VmRSS:\t%ld", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

// RSS with allocator caches returned to the kernel first, so successive
// measurement runs in one process do not inherit each other's freed-arena
// footprint and the delta reflects live per-connection state.
long SampleRssKb() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
  return ReadRssKb();
}

struct Sample {
  double accept_ms = 0;        // opening + accepting all connections
  double accepts_per_sec = 0;  // conns / accept time
  double msgs_per_sec = 0;     // aggregate over the active subset
  double p50_us = 0;
  double p99_us = 0;
  int threads = -1;          // process thread count at steady state
  double bytes_per_conn = -1;  // RSS growth per parked connection
  double rss_mb = -1;          // absolute RSS with all connections parked
};

bool MeasureConns(std::size_t conns, Duration duration, Sample& out) {
  sim::Network net(QuickLink());
  orb::ORB server(&net, "server");
  auto ref = server.RegisterServant("add", std::make_shared<AddServant>(),
                                    orb::Protocol::kTcp);
  if (!ref.ok() || !server.Start().ok()) return false;

  // Open every connection from one client manager, then wait for the
  // server's reactor to have accepted and registered them all. The RSS
  // delta across this window, divided by the connection count, is the
  // marginal cost of one parked connection (client channel + both pipe
  // ends + server-side Connection, measured identically across PRs).
  const long rss_before_kb = SampleRssKb();
  transport::TcpComManager client_mgr(&net, sim::Address{"client", 7001});
  const Stopwatch setup;
  std::vector<std::unique_ptr<transport::ComChannel>> parked;
  parked.reserve(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    auto channel = client_mgr.OpenChannel(ref->endpoint, {});
    if (!channel.ok()) return false;
    parked.push_back(std::move(*channel));
  }
  while (server.connections_accepted() < conns) {
    if (setup.Elapsed() > seconds(120)) return false;
    std::this_thread::sleep_for(milliseconds(1));
  }
  out.accept_ms = ToSeconds(setup.Elapsed()) * 1e3;
  out.accepts_per_sec =
      static_cast<double>(conns) / ToSeconds(setup.Elapsed());
  const long rss_parked_kb = SampleRssKb();
  if (rss_before_kb >= 0 && rss_parked_kb >= rss_before_kb) {
    out.bytes_per_conn = static_cast<double>(rss_parked_kb - rss_before_kb) *
                         1024.0 / static_cast<double>(conns);
    out.rss_mb = static_cast<double>(rss_parked_kb) / 1024.0;
  }

  // Fixed active subset: its size never varies with `conns`, so any
  // throughput droop at high connection counts is engine overhead, not a
  // heavier offered load. Reply demux rides a shared two-worker reactor —
  // client-side threads stay flat too.
  transport::Reactor client_reactor(2);
  const std::size_t active = conns < 8 ? conns : 8;
  std::vector<std::unique_ptr<giop::GiopClient>> clients;
  clients.reserve(active);
  for (std::size_t i = 0; i < active; ++i) {
    giop::GiopClient::Options copts;
    copts.reactor = &client_reactor;
    clients.push_back(
        std::make_unique<giop::GiopClient>(parked[i].get(), copts));
  }

  std::atomic<std::uint64_t> total{0};
  std::atomic<int> steady_threads{-1};
  std::vector<std::vector<double>> lat(active);
  const Stopwatch sw;
  const TimePoint end = Now() + duration;
  {
    std::vector<cool::Thread> callers;
    callers.reserve(active);
    for (std::size_t i = 0; i < active; ++i) {
      callers.emplace_back([&, i] {
        giop::GiopClient& client = *clients[i];
        std::vector<double>& samples = lat[i];
        corba::Long seq = 0;
        while (Now() < end) {
          cdr::Encoder args = client.MakeArgsEncoder();
          args.PutLong(seq);
          args.PutLong(1);
          const Stopwatch one;
          auto reply = client.Invoke(ref->object_key, "add",
                                     args.buffer().view(), {});
          if (!reply.ok()) return;
          samples.push_back(ToSeconds(one.Elapsed()) * 1e6);
          ++seq;
          ++total;
        }
      });
    }
    // Sample the thread count mid-window, with callers, reactors, and the
    // dispatch pool all live.
    std::this_thread::sleep_for(duration / 2);
    steady_threads = ProcessThreads();
  }  // joins
  const double elapsed = ToSeconds(sw.Elapsed());

  out.msgs_per_sec = static_cast<double>(total.load()) / elapsed;
  out.threads = steady_threads.load();
  std::vector<double> merged;
  for (auto& v : lat) merged.insert(merged.end(), v.begin(), v.end());
  const bench::LatencyStats stats = bench::Summarize(std::move(merged));
  out.p50_us = stats.p50_us;
  out.p99_us = stats.p99_us;

  clients.clear();  // before the channels they invoke over
  for (auto& channel : parked) channel->Close();
  server.Shutdown();
  return total.load() > 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = cool::bench::BenchArgs::Parse(argc, argv);
  std::vector<std::size_t> counts =
      args.smoke ? std::vector<std::size_t>{1, 10, 50}
                 : std::vector<std::size_t>{1, 10, 100, 1000, 10000, 100000};
  if (args.conns > 0) counts = {args.conns};
  const Duration duration =
      args.smoke ? cool::milliseconds(100) : cool::milliseconds(250);

  std::printf(
      "=== Connection scaling: one server ORB, 1 -> %zu connections ===\n"
      "parked connections idle on the reactor; 8 stay active; flat threads\n"
      "and flat B/conn are the connection engine's acceptance numbers%s\n\n",
      counts.back(), args.smoke ? " (smoke mode)" : "");

  std::vector<cool::bench::BenchRecord> records;
  cool::bench::Table table({"conns", "accept ms", "acc/s", "msgs/s", "p50 us",
                            "p99 us", "threads", "rss MB", "B/conn"});
  std::size_t base_conns = 0;
  int threads_at_base = -1;
  int threads_at_max = -1;
  for (const std::size_t conns : counts) {
    Sample s;
    if (!MeasureConns(conns, duration, s)) {
      std::fprintf(stderr, "measurement failed at %zu connections\n", conns);
      return 1;
    }
    // Baseline for the flat-curve claim: the first count whose active
    // subset is already saturated, so caller threads match across points.
    if (threads_at_base < 0 && conns >= 8) {
      base_conns = conns;
      threads_at_base = s.threads;
    }
    threads_at_max = s.threads;
    char name[32];
    std::snprintf(name, sizeof name, "tcp conns %zu", conns);
    table.AddRow({std::to_string(conns), cool::bench::Fmt("%.1f", s.accept_ms),
                  cool::bench::Fmt("%.0f", s.accepts_per_sec),
                  cool::bench::Fmt("%.0f", s.msgs_per_sec),
                  cool::bench::Fmt("%.1f", s.p50_us),
                  cool::bench::Fmt("%.1f", s.p99_us),
                  std::to_string(s.threads),
                  cool::bench::Fmt("%.1f", s.rss_mb),
                  cool::bench::Fmt("%.0f", s.bytes_per_conn)});
    cool::bench::BenchRecord rec;
    rec.name = name;
    rec.msgs_per_sec = s.msgs_per_sec;
    rec.p50_us = s.p50_us;
    rec.p99_us = s.p99_us;
    rec.threads = s.threads;
    rec.bytes_per_conn = s.bytes_per_conn;
    rec.rss_mb = s.rss_mb;
    rec.accepts_per_sec = s.accepts_per_sec;
    records.push_back(std::move(rec));
  }

  table.Print();
  std::printf(
      "\nshape check: threads at %zu conns (%d) vs at %zu (%d) — the delta\n"
      "must be ~0: accepted-but-idle connections are reactor registrations,\n"
      "not threads.\n",
      base_conns, threads_at_base, counts.back(), threads_at_max);

  if (!args.json_path.empty() &&
      !cool::bench::WriteJson(args.json_path, records)) {
    return 1;
  }
  return 0;
}
