// Ablation A9 — the generic message protocol layer's two protocols
// (paper Fig. 1): standard GIOP vs the compact proprietary COOL protocol.
// Same logical invocation; compares wire size and codec cost.
#include <benchmark/benchmark.h>

#include "giop/cool_protocol.h"
#include "giop/message.h"

namespace {

using namespace cool;

std::vector<std::uint8_t> SampleArgs() {
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian, 0);
  enc.PutLong(640);
  enc.PutLong(480);
  enc.PutString("sample argument payload");
  const auto view = enc.buffer().view();
  return {view.begin(), view.end()};
}

std::vector<qos::QoSParameter> SampleQos(int n) {
  std::vector<qos::QoSParameter> qos;
  for (int i = 0; i < n; ++i) {
    qos.push_back(qos::RequireThroughputKbps(
        1000 + static_cast<corba::ULong>(i), 100));
  }
  return qos;
}

void BM_GiopRequestBuild(benchmark::State& state) {
  giop::RequestHeader h;
  h.request_id = 1;
  h.object_key = {'o', 'b', 'j'};
  h.operation = "render";
  h.qos_params = SampleQos(static_cast<int>(state.range(0)));
  const auto args = SampleArgs();
  const giop::Version version =
      state.range(0) == 0 ? giop::kGiop10 : giop::kGiopQos;
  std::size_t wire = 0;
  for (auto _ : state) {
    const ByteBuffer msg = giop::BuildRequest(version, h, args);
    wire = msg.size();
    benchmark::DoNotOptimize(msg.size());
  }
  state.SetLabel("wire=" + std::to_string(wire) + "B");
}
BENCHMARK(BM_GiopRequestBuild)->Arg(0)->Arg(2);

void BM_CoolRequestBuild(benchmark::State& state) {
  coolproto::Request r;
  r.id = 1;
  r.object_key = {'o', 'b', 'j'};
  r.operation = "render";
  r.qos_params = SampleQos(static_cast<int>(state.range(0)));
  r.args = SampleArgs();
  std::size_t wire = 0;
  for (auto _ : state) {
    const ByteBuffer msg = coolproto::EncodeRequest(r);
    wire = msg.size();
    benchmark::DoNotOptimize(msg.size());
  }
  state.SetLabel("wire=" + std::to_string(wire) + "B");
}
BENCHMARK(BM_CoolRequestBuild)->Arg(0)->Arg(2);

void BM_GiopRequestParse(benchmark::State& state) {
  giop::RequestHeader h;
  h.request_id = 1;
  h.object_key = {'o', 'b', 'j'};
  h.operation = "render";
  h.qos_params = SampleQos(static_cast<int>(state.range(0)));
  const giop::Version version =
      state.range(0) == 0 ? giop::kGiop10 : giop::kGiopQos;
  const ByteBuffer msg = giop::BuildRequest(version, h, SampleArgs());
  for (auto _ : state) {
    auto parsed = giop::ParseMessage(msg.view());
    cdr::Decoder dec = parsed->MakeBodyDecoder();
    benchmark::DoNotOptimize(
        giop::ParseRequestHeader(dec, parsed->header.version));
  }
}
BENCHMARK(BM_GiopRequestParse)->Arg(0)->Arg(2);

void BM_CoolRequestParse(benchmark::State& state) {
  coolproto::Request r;
  r.id = 1;
  r.object_key = {'o', 'b', 'j'};
  r.operation = "render";
  r.qos_params = SampleQos(static_cast<int>(state.range(0)));
  r.args = SampleArgs();
  const ByteBuffer msg = coolproto::EncodeRequest(r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coolproto::DecodeRequest(msg.view()));
  }
}
BENCHMARK(BM_CoolRequestParse)->Arg(0)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
