// Multiplexed-GIOP benchmark: aggregate request/reply rate of ONE binding
// carrying many in-flight invocations, swept over client threads × pipeline
// depth × transports on the paper-era testbed link (90 Mbit/s, 400 us
// one-way). With a serial engine every exchange pays the full RTT; with the
// demultiplexed client and the server worker pool, t threads × d deep keep
// t*d requests on the wire and the RTT amortizes across the window. The
// "tcp t8 d8" row is the headline tracked by scripts/run_benchmarks.py,
// and its ratio to "tcp t1 d1" is this PR's acceptance number.
#include <cstdio>
#include <deque>

#include "alloc_hook.h"
#include "bench_util.h"
#include "common/thread.h"
#include "giop/engine.h"
#include "transport/dacapo_channel.h"
#include "transport/ipc_channel.h"
#include "transport/tcp_channel.h"

namespace {

using namespace cool;

sim::LinkProperties TestbedLink() {
  sim::LinkProperties link;
  link.bandwidth_bps = 90'000'000;
  link.latency = microseconds(400);
  return link;
}

corba::OctetSeq Key(std::string_view s) { return {s.begin(), s.end()}; }

// Trivial echo upcall: the benchmark measures the engines and the wire,
// not servant work. The body rides in a pooled buffer, the same way the
// object adapter encodes dispatch results.
giop::GiopServer::DispatchResult Echo(const giop::RequestHeader&,
                                      cdr::Decoder& args) {
  giop::GiopServer::DispatchResult result;
  cdr::Encoder body(cdr::NativeOrder(), 0, BufferPool::Default().Lease());
  auto value = args.GetLong();
  body.PutLong(value.ok() ? *value : -1);
  result.body = std::move(body).TakeBuffer();
  return result;
}

struct ChannelPair {
  std::unique_ptr<transport::ComChannel> client;
  std::unique_ptr<transport::ComChannel> server;
};

ChannelPair Establish(transport::ComManager& client_mgr,
                      transport::ComManager& server_mgr,
                      const sim::Address& remote) {
  Result<std::unique_ptr<transport::ComChannel>> accepted(
      Status(InternalError("unset")));
  cool::Thread accept([&] { accepted = server_mgr.AcceptChannel(); });
  auto opened = client_mgr.OpenChannel(remote, {});
  accept.join();
  if (!opened.ok() || !accepted.ok()) {
    std::fprintf(stderr, "establish failed: %s / %s\n",
                 opened.status().ToString().c_str(),
                 accepted.status().ToString().c_str());
    return {};
  }
  return {std::move(opened).value(), std::move(accepted).value()};
}

// One client thread keeping `depth` requests in flight until `end`, then
// draining its window. Returns completed request/reply exchanges.
std::uint64_t RunWindow(giop::GiopClient& client, std::size_t depth,
                        TimePoint end) {
  const corba::OctetSeq key = Key("bench");
  std::deque<corba::ULong> window;
  std::uint64_t completed = 0;
  corba::Long seq = 0;
  bool ok = true;
  while (ok && Now() < end) {
    while (ok && window.size() < depth) {
      cdr::Encoder args = client.MakeArgsEncoder();
      args.PutLong(seq++);
      auto id = client.InvokeDeferred(key, "echo", args.buffer().view(), {});
      if (!id.ok()) {
        ok = false;
        break;
      }
      window.push_back(*id);
    }
    if (window.empty()) break;
    auto reply = client.PollReply(window.front(), seconds(5));
    window.pop_front();
    if (!reply.ok()) break;
    ++completed;
  }
  for (const corba::ULong id : window) {
    if (client.PollReply(id, seconds(5)).ok()) ++completed;
  }
  return completed;
}

struct Measurement {
  double msgs_per_sec = 0;
  double allocs_per_op = -1;
};

// One measurement: `threads` caller threads × `depth` pipelined requests
// over a single channel pair, for `duration`. Returns aggregate msgs/s and
// whole-process heap allocations per completed exchange (client marshal,
// both engines, transport, server dispatch and reply combined).
Measurement MeasureConfig(ChannelPair& pair, int threads, std::size_t depth,
                          Duration duration) {
  giop::GiopClient client(pair.client.get(), {});
  giop::GiopServer::Options server_opts;
  server_opts.worker_threads = 4;
  giop::GiopServer server(pair.server.get(), Echo, server_opts);
  cool::Thread server_thread([&server] { (void)server.Serve(); });

  std::atomic<std::uint64_t> total{0};
  const std::uint64_t allocs0 = cool::bench::AllocCount();
  const Stopwatch sw;
  const TimePoint end = Now() + duration;
  {
    std::vector<cool::Thread> callers;
    callers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      callers.emplace_back(
          [&client, &total, depth, end] { total += RunWindow(client, depth, end); });
    }
  }  // joins all callers (window drain included)
  const double elapsed = ToSeconds(sw.Elapsed());
  const std::uint64_t allocs1 = cool::bench::AllocCount();

  (void)client.SendClose();  // ends the server's Serve loop cleanly
  server_thread.join();
  Measurement m;
  m.msgs_per_sec = static_cast<double>(total.load()) / elapsed;
  if (total.load() > 0) {
    m.allocs_per_op = static_cast<double>(allocs1 - allocs0) /
                      static_cast<double>(total.load());
  }
  return m;
}

struct Transport {
  const char* name;
  std::uint16_t port;
};

// Constructs a listening server manager + client manager of the concrete
// transport type (Listen lives on the concrete managers, not the base).
template <typename Mgr, typename... Extra>
bool MakeManagers(sim::Network* net, std::uint16_t port,
                  std::unique_ptr<transport::ComManager>& server,
                  std::unique_ptr<transport::ComManager>& client,
                  const Extra&... extra) {
  auto s = std::make_unique<Mgr>(net, sim::Address{"server", port}, extra...);
  if (!s->Listen().ok()) return false;
  server = std::move(s);
  client = std::make_unique<Mgr>(net, sim::Address{"client", port}, extra...);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = cool::bench::BenchArgs::Parse(argc, argv);
  // Acceptance protocol: best-of-5 full runs; smoke keeps CI in seconds.
  const int reps = args.smoke ? 2 : 5;
  const Duration duration =
      args.smoke ? cool::milliseconds(150) : cool::milliseconds(400);
  const std::vector<std::pair<int, std::size_t>> configs =
      args.smoke ? std::vector<std::pair<int, std::size_t>>{{1, 1}, {8, 8}}
                 : std::vector<std::pair<int, std::size_t>>{
                       {1, 1}, {8, 1}, {1, 8}, {8, 8}};

  std::printf(
      "=== Multiplexed GIOP: threads x pipeline depth x transports ===\n"
      "testbed link (90 Mbit/s, 400 us one-way); one binding per config;\n"
      "serial baseline is t1 d1%s\n\n",
      args.smoke ? " (smoke mode)" : "");

  dacapo::NetworkEstimate estimate;
  estimate.bandwidth_bps = 90'000'000;
  estimate.rtt_us = 800;
  estimate.transport_reliable = true;

  std::vector<cool::bench::BenchRecord> records;
  cool::bench::Table table(
      {"config", "msgs/s", "allocs/op", "speedup vs t1 d1"});

  for (const Transport& tr :
       {Transport{"tcp", 7500}, Transport{"ipc", 7510},
        Transport{"dacapo", 7520}}) {
    sim::Network net(TestbedLink());
    double serial = 0;
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const auto [threads, depth] = configs[c];
      Measurement best;
      for (int r = 0; r < reps; ++r) {
        // Fresh managers/channels per rep: each MeasureConfig closes its
        // connection to stop the server loop.
        const std::uint16_t port =
            static_cast<std::uint16_t>(tr.port + c * 100 + r);
        std::unique_ptr<transport::ComManager> server_mgr;
        std::unique_ptr<transport::ComManager> client_mgr;
        bool up = false;
        if (std::string_view(tr.name) == "tcp") {
          up = MakeManagers<transport::TcpComManager>(&net, port, server_mgr,
                                                      client_mgr);
        } else if (std::string_view(tr.name) == "ipc") {
          up = MakeManagers<transport::IpcComManager>(&net, port, server_mgr,
                                                      client_mgr);
        } else {
          up = MakeManagers<transport::DacapoComManager>(
              &net, port, server_mgr, client_mgr, estimate);
        }
        if (!up) return 1;
        auto pair = Establish(*client_mgr, *server_mgr,
                              sim::Address{"server", port});
        if (pair.client == nullptr) return 1;
        const Measurement m = MeasureConfig(pair, threads, depth, duration);
        if (m.msgs_per_sec > best.msgs_per_sec) best = m;
      }
      if (threads == 1 && depth == 1) serial = best.msgs_per_sec;

      char name[64];
      std::snprintf(name, sizeof name, "%s t%d d%zu", tr.name, threads,
                    depth);
      table.AddRow({name, cool::bench::Fmt("%.0f", best.msgs_per_sec),
                    best.allocs_per_op >= 0
                        ? cool::bench::Fmt("%.1f", best.allocs_per_op)
                        : "-",
                    serial > 0
                        ? cool::bench::Fmt("%.2fx", best.msgs_per_sec / serial)
                        : "-"});
      cool::bench::BenchRecord rec;
      rec.name = name;
      rec.msgs_per_sec = best.msgs_per_sec;
      rec.allocs_per_op = best.allocs_per_op;
      records.push_back(std::move(rec));
    }
  }

  table.Print();
  std::printf(
      "\nshape check: t1 d1 is RTT-bound (~1/0.8 ms); raising depth or\n"
      "thread count multiplies in-flight requests per binding, so msgs/s\n"
      "scales until the link or the single-core dispatch path saturates.\n");

  if (!args.json_path.empty() &&
      !cool::bench::WriteJson(args.json_path, records)) {
    return 1;
  }
  return 0;
}
