// Ablation A7 — mechanism choice within one protocol function: the paper
// closes Fig. 9's discussion with "careful evaluation of protocol
// functionality is needed". This bench quantifies that for the
// retransmission function: throughput of IRQ (stop-and-wait) vs go-back-N
// with several window sizes, over a datagram link with increasing loss.
//
// Expected shape: IRQ is RTT-bound regardless of loss; go-back-N scales
// with its window until loss-triggered retransmission rounds eat the win;
// bigger windows help on the clean link and hurt less than expected under
// loss (the whole window retransmits, but progress per round is larger).
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "common/thread.h"
#include "dacapo/session.h"

namespace {

using namespace cool;
using dacapo::ChannelOptions;
using dacapo::ModuleGraphSpec;

ModuleGraphSpec ArqGraph(const char* mech, int window) {
  ModuleGraphSpec spec;
  dacapo::MechanismSpec m;
  m.name = mech;
  m.params["rto_us"] = 8000;
  if (window > 0) m.params["window"] = window;
  spec.chain.push_back(std::move(m));
  spec.chain.push_back({dacapo::mechanisms::kCrc16, {}});
  return spec;
}

double MeasureMbps(const ModuleGraphSpec& graph, double loss_rate,
                   Duration duration) {
  sim::LinkProperties link;
  link.bandwidth_bps = 50'000'000;
  link.latency = milliseconds(1);
  link.loss_rate = loss_rate;
  sim::Network net(link, /*rng_seed=*/7);

  dacapo::Acceptor acceptor(&net, {"rx", 6900});
  if (!acceptor.Listen().ok()) return -1;
  ChannelOptions options;
  options.transport = ChannelOptions::Transport::kDatagram;
  options.graph = graph;
  options.packet_capacity = 8 * 1024;

  Result<std::unique_ptr<dacapo::Session>> rx(
      Status(InternalError("unset")));
  cool::Thread accept_thread([&] {
    rx = acceptor.Accept(dacapo::AppAModule::DeliveryMode::kCountOnly);
  });
  dacapo::Connector connector(&net, "tx");
  auto tx = connector.Connect({"rx", 6900}, options);
  accept_thread.join();
  if (!tx.ok() || !rx.ok()) return -1;

  const std::vector<std::uint8_t> payload(4096, 0x3C);
  const TimePoint end = Now() + duration;
  while (Now() < end) {
    if (!(*tx)->Send(payload).ok()) break;
  }
  std::this_thread::sleep_for(milliseconds(200));
  const auto stats = (*rx)->stats();
  (*tx)->Close();
  (*rx)->Close();
  if (stats.packets_rx < 2) return 0;
  const double secs = ToSeconds(stats.last_rx - stats.first_rx);
  return secs > 0 ? static_cast<double>(stats.bytes_rx) * 8.0 / secs / 1e6
                  : 0;
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation A7: retransmission mechanism choice (Mbps) ===\n"
      "link: 50 Mbit/s, 1 ms one-way, 4 KiB packets, varying datagram "
      "loss\n\n");

  struct Config {
    const char* name;
    cool::dacapo::ModuleGraphSpec graph;
  };
  const Config kConfigs[] = {
      {"irq (w=1)", ArqGraph(cool::dacapo::mechanisms::kIrq, 0)},
      {"go_back_n w=4", ArqGraph(cool::dacapo::mechanisms::kGoBackN, 4)},
      {"go_back_n w=16", ArqGraph(cool::dacapo::mechanisms::kGoBackN, 16)},
      {"go_back_n w=64", ArqGraph(cool::dacapo::mechanisms::kGoBackN, 64)},
  };
  const double kLossRates[] = {0.0, 0.01, 0.05, 0.10};

  cool::bench::Table table(
      {"mechanism", "loss 0%", "loss 1%", "loss 5%", "loss 10%"});
  for (const Config& config : kConfigs) {
    std::vector<std::string> row{config.name};
    for (const double loss : kLossRates) {
      row.push_back(cool::bench::Fmt(
          "%.1f", MeasureMbps(config.graph, loss, cool::milliseconds(400))));
      std::fflush(stdout);
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf(
      "\nshape check: IRQ is packet-per-RTT bound far below the link rate,\n"
      "nearly independent of loss; moderate go-back-N windows multiply the\n"
      "clean-link rate and degrade gracefully; an oversized window (w=64)\n"
      "collapses under loss because every drop retransmits the whole\n"
      "window. The right mechanism+parameters depend on the requested QoS\n"
      "and the network — exactly what the configuration manager decides.\n");
  return 0;
}
