// Counting replacements for the global allocation functions. These are the
// standard replaceable forms ([new.delete]), so defining them here swaps
// the allocator for the whole benchmark binary; the library code under test
// is untouched. Counting is a single relaxed fetch_add — cheap enough that
// throughput numbers stay comparable with and without the hook.
#include "alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};

void* Counted(std::size_t size) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

void* CountedAligned(std::size_t size, std::size_t align) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : 1) != 0) return nullptr;
  return p;
}

}  // namespace

namespace cool::bench {

std::uint64_t AllocCount() {
  return g_allocs.load(std::memory_order_relaxed);
}

}  // namespace cool::bench

void* operator new(std::size_t size) {
  void* p = Counted(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = Counted(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return Counted(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return Counted(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = CountedAligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = CountedAligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
