// Ablation: cost of QoS negotiation (paper Fig. 3 scenarios made
// measurable). Microbenchmarks the negotiation engine itself and measures
// the end-to-end cost of an accepted invocation vs a NACKed one.
#include <benchmark/benchmark.h>

#include "qos/negotiation.h"

namespace {

using namespace cool;

qos::QoSSpec MakeSpec(int params) {
  std::vector<qos::QoSParameter> p;
  const qos::QoSParameter all[] = {
      qos::RequireThroughputKbps(5000, 1000),
      qos::RequireLatencyMicros(500, 5000),
      qos::RequireJitterMicros(100, 2000),
      qos::RequireReliability(2),
      qos::RequireOrdering(true),
      qos::RequireEncryption(true),
      qos::RequireLossPermille(0, 10),
      qos::RequirePriority(99),
  };
  for (int i = 0; i < params && i < 8; ++i) p.push_back(all[i]);
  auto spec = qos::QoSSpec::FromParameters(std::move(p));
  return spec.ok() ? *spec : qos::QoSSpec{};
}

qos::Capability RichCapability() {
  qos::Capability cap;
  cap.SetBest(qos::ParamType::kThroughputKbps, 100'000);
  cap.SetBest(qos::ParamType::kLatencyMicros, 200);
  cap.SetBest(qos::ParamType::kJitterMicros, 50);
  cap.SetBest(qos::ParamType::kReliability, 2);
  cap.SetBest(qos::ParamType::kOrdering, 1);
  cap.SetBest(qos::ParamType::kEncryption, 1);
  cap.SetBest(qos::ParamType::kLossPermille, 0);
  cap.SetBest(qos::ParamType::kPriority, 255);
  return cap;
}

qos::Capability PoorCapability() {
  qos::Capability cap;
  cap.SetBest(qos::ParamType::kThroughputKbps, 10);
  cap.SetBest(qos::ParamType::kLatencyMicros, 1'000'000);
  return cap;
}

void BM_NegotiateAccept(benchmark::State& state) {
  const qos::QoSSpec spec = MakeSpec(static_cast<int>(state.range(0)));
  const qos::Capability cap = RichCapability();
  for (auto _ : state) {
    benchmark::DoNotOptimize(qos::Negotiate(spec, cap));
  }
  state.SetLabel("params=" + std::to_string(state.range(0)) + " accept");
}
BENCHMARK(BM_NegotiateAccept)->Arg(1)->Arg(4)->Arg(8);

void BM_NegotiateNack(benchmark::State& state) {
  const qos::QoSSpec spec = MakeSpec(static_cast<int>(state.range(0)));
  const qos::Capability cap = PoorCapability();
  for (auto _ : state) {
    benchmark::DoNotOptimize(qos::Negotiate(spec, cap));
  }
  state.SetLabel("params=" + std::to_string(state.range(0)) + " nack");
}
BENCHMARK(BM_NegotiateNack)->Arg(1)->Arg(4)->Arg(8);

void BM_ComposeCapabilities(benchmark::State& state) {
  const qos::Capability a = RichCapability();
  const qos::Capability b = PoorCapability();
  for (auto _ : state) {
    benchmark::DoNotOptimize(qos::Compose(a, b));
  }
}
BENCHMARK(BM_ComposeCapabilities);

void BM_SpecValidation(benchmark::State& state) {
  std::vector<qos::QoSParameter> params;
  for (int i = 0; i < state.range(0) && i < 8; ++i) {
    params.push_back(MakeSpec(8).parameters()[static_cast<std::size_t>(i)]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(qos::QoSSpec::FromParameters(params));
  }
}
BENCHMARK(BM_SpecValidation)->Arg(1)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
