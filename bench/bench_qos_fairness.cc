// Adversarial fairness benchmark for the hierarchical QoS scheduler
// (common/qos_sched.h): drives the server dispatch pool and the Da CaPo
// egress arbiter with hostile traffic mixes and records Jain's fairness
// index plus per-class sojourn percentiles (p50/p99/p99.9).
//
// Scenarios:
//   dispatch_equal          N identical flooding bindings, equal weights —
//                           Jain over per-binding service counts (>= 0.9
//                           is the acceptance floor; DRR should land ~1).
//   dispatch_weighted       weights 4:2:1 — Jain over weight-normalized
//                           shares (1.0 = shares track weights exactly).
//   dispatch_flood_victim_* one paced, well-behaved high-QoS binding vs a
//                           flooding binding in the SAME class, measured
//                           under the hierarchical tree and the legacy
//                           flat-priority scan in the same run. The
//                           victim's p99 sojourn is the tentpole metric:
//                           per-binding DRR isolates it from the flood,
//                           the flat FIFO buries it behind the backlog.
//   dispatch_rate_cap       a token-bucket-capped binding vs an uncapped
//                           one — the cap must hold under pressure.
//   egress_equal/weighted   the same fairness probes against the
//                           EgressScheduler turnstile.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/thread.h"
#include "giop/dispatch_pool.h"
#include "qos/classify.h"
#include "transport/qos_egress.h"

namespace cool::bench {
namespace {

giop::DispatchJob MakeJob(corba::ULong id) {
  giop::DispatchJob job;
  job.header.request_id = id;
  job.header.response_expected = false;
  job.msg.buffer = ByteBuffer(std::vector<std::uint8_t>(giop::kHeaderSize));
  job.args_offset = giop::kHeaderSize;
  return job;
}

void SpinFor(Duration d) {
  const TimePoint end = Now() + d;
  while (Now() < end) {
  }
}

// A binding: counts its completed upcalls and burns a fixed servant cost
// per job so the workers, not the producers, are the bottleneck.
class CountingRunner : public giop::DispatchRunner {
 public:
  explicit CountingRunner(Duration work) : work_(work) {}

  void RunDispatchJob(const giop::DispatchJob&) override {
    SpinFor(work_);
    done_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t done() const { return done_.load(std::memory_order_relaxed); }

 private:
  Duration work_;
  std::atomic<std::uint64_t> done_{0};
};

// The flood victim: every submitted job carries its submit timestamp, the
// upcall records offered-to-served latency.
class LatencyRunner : public giop::DispatchRunner {
 public:
  LatencyRunner(Duration work, std::size_t max_jobs)
      : work_(work), submit_at_(max_jobs), latency_us_(max_jobs) {}

  corba::ULong NextId() {
    const corba::ULong id = next_++;
    submit_at_[id] = Now();
    return id;
  }

  void RunDispatchJob(const giop::DispatchJob& job) override {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        Now() - submit_at_[job.header.request_id])
                        .count();
    latency_us_[job.header.request_id] = static_cast<double>(us);
    served_.fetch_add(1, std::memory_order_relaxed);
    SpinFor(work_);
  }

  std::vector<double> TakeLatencies() const {
    return {latency_us_.begin(), latency_us_.begin() + served_.load()};
  }

 private:
  Duration work_;
  corba::ULong next_ = 0;
  std::vector<TimePoint> submit_at_;
  // Indexed by request id: distinct slots, so concurrent upcalls of
  // different jobs never race.
  std::vector<double> latency_us_;
  std::atomic<std::size_t> served_{0};
};

struct FloodResult {
  LatencyStats victim;
  double victim_served = 0;
};

// One paced high-band victim against one flooding high-band aggressor,
// under the given scheduler.
FloodResult RunFloodScenario(giop::DispatchScheduler scheduler,
                             Duration run_for) {
  giop::DispatchPool::Options options;
  options.workers = 1;  // sharp contention: one upcall lane
  options.scheduler = scheduler;
  giop::DispatchPool pool(options);

  const Duration work = microseconds(20);
  CountingRunner flooder(work);
  const std::uint64_t flooder_id = giop::DispatchPool::AllocRunnerId();
  LatencyRunner victim(work, 1 << 20);
  const std::uint64_t victim_id = giop::DispatchPool::AllocRunnerId();

  qos::SchedProfile high;
  high.band = qos::SchedProfile::Band::kHigh;

  std::atomic<bool> stop{false};
  Thread flood_thread([&](std::stop_token) {
    corba::ULong id = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!pool.Submit(&flooder, flooder_id, high, MakeJob(id++))) return;
    }
  });
  Thread victim_thread([&](std::stop_token) {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!pool.Submit(&victim, victim_id, high, MakeJob(victim.NextId()))) {
        return;
      }
      std::this_thread::sleep_for(microseconds(500));
    }
  });

  std::this_thread::sleep_for(run_for);
  stop.store(true, std::memory_order_relaxed);
  pool.Close();  // wakes backpressured Submits, drains, joins workers
  flood_thread.join();
  victim_thread.join();

  FloodResult result;
  std::vector<double> lat = victim.TakeLatencies();
  result.victim_served = static_cast<double>(lat.size());
  result.victim = Summarize(std::move(lat));
  return result;
}

// `weights[i]` flooding bindings share the pool; returns per-binding
// service counts.
std::vector<double> RunShareScenario(const std::vector<std::uint32_t>& weights,
                                     const std::vector<std::uint64_t>& rates,
                                     Duration run_for,
                                     LatencyStats* class_sojourn) {
  giop::DispatchPool::Options options;
  options.workers = 2;
  // Each producer caps its own inflight below, keeping every flow's
  // backlog standing without ever tripping the pool-wide backpressure
  // gate — otherwise the Submit wakeup order, not the scheduler, would
  // set the shares.
  constexpr std::size_t kInflight = 1000;
  options.queue_capacity = weights.size() * (kInflight + 64);
  giop::DispatchPool pool(options);

  const Duration work = microseconds(10);
  std::vector<std::unique_ptr<CountingRunner>> runners;
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    runners.push_back(std::make_unique<CountingRunner>(work));
    ids.push_back(giop::DispatchPool::AllocRunnerId());
  }

  std::atomic<bool> stop{false};
  std::vector<Thread> producers;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    producers.emplace_back([&, i](std::stop_token) {
      qos::SchedProfile profile;
      profile.weight = weights[i];
      profile.rate_bytes_per_sec = rates[i];
      corba::ULong id = 0;
      std::uint64_t submitted = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (submitted - runners[i]->done() >= kInflight) {
          std::this_thread::sleep_for(microseconds(100));
          continue;
        }
        if (!pool.Submit(runners[i].get(), ids[i], profile, MakeJob(id++))) {
          return;
        }
        ++submitted;
      }
    });
  }

  std::this_thread::sleep_for(run_for);
  stop.store(true, std::memory_order_relaxed);
  // Harvest before Close(): the shutdown drain serves the backlog with
  // shaping and AQM bypassed, which would credit capped/light flows for
  // ~a full queue of free jobs and smear the steady-state percentiles.
  std::vector<double> counts;
  for (const auto& r : runners) {
    counts.push_back(static_cast<double>(r->done()));
  }
  if (class_sojourn != nullptr) {
    const auto stats = pool.StatsSnapshot();
    const auto& normal = stats[1];  // Normal band (all profiles above)
    class_sojourn->p50_us = static_cast<double>(normal.sojourn_p50_us);
    class_sojourn->p99_us = static_cast<double>(normal.sojourn_p99_us);
    class_sojourn->p999_us = static_cast<double>(normal.sojourn_p999_us);
  }
  pool.Close();
  for (auto& t : producers) t.join();
  return counts;
}

// Egress turnstile fairness: each binding contends for the link with the
// given weight via `pipeline` concurrent senders (a binding with a single
// in-flight send can never hold a backlog, and DRR weights only bite on
// standing backlogs); returns per-binding grant counts.
std::vector<double> RunEgressScenario(const std::vector<std::uint32_t>& weights,
                                      std::size_t pipeline, Duration run_for) {
  transport::EgressScheduler::Options options;
  // A quantum well under the per-send cost (1000 + kMessageBaseCost), so
  // grants-per-rotation track the weights instead of whole backlogs
  // draining in one visit.
  options.quantum_bytes = 256;
  transport::EgressScheduler egress(options);
  std::vector<std::uint64_t> ids;
  for (const std::uint32_t w : weights) {
    const std::uint64_t id = transport::EgressScheduler::AllocBindingId();
    qos::SchedProfile profile;
    profile.weight = w;
    egress.RegisterBinding(id, profile);
    ids.push_back(id);
  }

  std::atomic<bool> stop{false};
  std::vector<std::atomic<std::uint64_t>> grants(weights.size());
  std::vector<Thread> senders;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    for (std::size_t p = 0; p < pipeline; ++p) {
      senders.emplace_back([&, i](std::stop_token) {
        while (!stop.load(std::memory_order_relaxed)) {
          if (!egress.Acquire(ids[i], 1000)) return;
          SpinFor(microseconds(3));  // the "transmit"
          egress.Release();
          grants[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }

  std::this_thread::sleep_for(run_for);
  stop.store(true, std::memory_order_relaxed);
  egress.Close();  // refuses parked tickets
  for (auto& t : senders) t.join();

  std::vector<double> counts;
  for (const auto& g : grants) {
    counts.push_back(static_cast<double>(g.load()));
  }
  return counts;
}

int Run(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const Duration run_for = args.smoke ? milliseconds(250) : milliseconds(1500);
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(run_for)
          .count();

  std::vector<BenchRecord> records;
  Table table({"scenario", "jain", "p50us", "p99us", "p999us", "note"});

  {  // --- equal-weight fairness across 8 flooding bindings ---
    LatencyStats sojourn;
    const std::vector<double> counts = RunShareScenario(
        std::vector<std::uint32_t>(8, 1), std::vector<std::uint64_t>(8, 0),
        run_for, &sojourn);
    double total = 0;
    for (double c : counts) total += c;
    BenchRecord r;
    r.name = "dispatch_equal";
    r.jain = JainIndex(counts);
    r.msgs_per_sec = total / secs;
    r.p50_us = sojourn.p50_us;
    r.p99_us = sojourn.p99_us;
    r.p999_us = sojourn.p999_us;
    records.push_back(r);
    table.AddRow({r.name, Fmt("%.4f", r.jain), Fmt("%.0f", r.p50_us),
                  Fmt("%.0f", r.p99_us), Fmt("%.0f", r.p999_us),
                  Fmt("%.0f jobs/s", r.msgs_per_sec)});
  }

  {  // --- 4:2:1 weighted shares ---
    const std::vector<std::uint32_t> weights{4, 2, 1};
    const std::vector<double> counts = RunShareScenario(
        weights, std::vector<std::uint64_t>(weights.size(), 0), run_for,
        nullptr);
    std::vector<double> normalized;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      normalized.push_back(counts[i] / static_cast<double>(weights[i]));
    }
    BenchRecord r;
    r.name = "dispatch_weighted";
    r.jain = JainIndex(normalized);
    records.push_back(r);
    table.AddRow({r.name, Fmt("%.4f", r.jain), "-", "-", "-",
                  Fmt("%.2f:", counts[0] / counts[2]) +
                      Fmt("%.2f:1 (want 4:2:1)", counts[1] / counts[2])});
  }

  double hier_p99 = 0;
  double flat_p99 = 0;
  {  // --- flood isolation, hierarchical vs flat in the same run ---
    const FloodResult hier =
        RunFloodScenario(giop::DispatchScheduler::kHierarchical, run_for);
    const FloodResult flat =
        RunFloodScenario(giop::DispatchScheduler::kFlatPriority, run_for);
    hier_p99 = hier.victim.p99_us;
    flat_p99 = flat.victim.p99_us;
    BenchRecord rh;
    rh.name = "dispatch_flood_victim_hier";
    rh.p50_us = hier.victim.p50_us;
    rh.p99_us = hier.victim.p99_us;
    rh.p999_us = hier.victim.p999_us;
    rh.msgs_per_sec = hier.victim_served / secs;
    records.push_back(rh);
    BenchRecord rf;
    rf.name = "dispatch_flood_victim_flat";
    rf.p50_us = flat.victim.p50_us;
    rf.p99_us = flat.victim.p99_us;
    rf.p999_us = flat.victim.p999_us;
    rf.msgs_per_sec = flat.victim_served / secs;
    records.push_back(rf);
    table.AddRow({rh.name, "-", Fmt("%.0f", rh.p50_us), Fmt("%.0f", rh.p99_us),
                  Fmt("%.0f", rh.p999_us), "victim vs same-class flood"});
    table.AddRow({rf.name, "-", Fmt("%.0f", rf.p50_us), Fmt("%.0f", rf.p99_us),
                  Fmt("%.0f", rf.p999_us),
                  Fmt("flat/hier p99 = %.1fx", flat_p99 / hier_p99)});
  }

  {  // --- token-bucket rate cap holds under pressure ---
    // Binding 0 capped at 1 MB/s of scheduling cost, binding 1 uncapped.
    constexpr std::uint64_t kCap = 1'000'000;
    const std::vector<double> counts =
        RunShareScenario({1, 1}, {kCap, 0}, run_for, nullptr);
    const double capped_bps =
        counts[0] * static_cast<double>(giop::DispatchPool::kJobBaseCost +
                                        giop::kHeaderSize) /
        secs;
    BenchRecord r;
    r.name = "dispatch_rate_cap";
    r.mbps = capped_bps * 8 / 1e6;
    records.push_back(r);
    table.AddRow({r.name, "-", "-", "-", "-",
                  Fmt("capped flow %.2f Mbit/s", r.mbps) +
                      Fmt(" (cap %.2f)", kCap * 8 / 1e6)});
  }

  {  // --- egress turnstile: equal and 4:2:1 ---
    const std::vector<double> equal =
        RunEgressScenario(std::vector<std::uint32_t>(4, 1), 1, run_for);
    BenchRecord re;
    re.name = "egress_equal";
    re.jain = JainIndex(equal);
    records.push_back(re);
    table.AddRow({re.name, Fmt("%.4f", re.jain), "-", "-", "-", "4 bindings"});

    const std::vector<std::uint32_t> weights{4, 2, 1};
    const std::vector<double> shares = RunEgressScenario(weights, 4, run_for);
    std::vector<double> normalized;
    for (std::size_t i = 0; i < shares.size(); ++i) {
      normalized.push_back(shares[i] / static_cast<double>(weights[i]));
    }
    BenchRecord rw;
    rw.name = "egress_weighted";
    rw.jain = JainIndex(normalized);
    records.push_back(rw);
    table.AddRow({rw.name, Fmt("%.4f", rw.jain), "-", "-", "-",
                  Fmt("%.2f:", shares[0] / shares[2]) +
                      Fmt("%.2f:1 (want 4:2:1)", shares[1] / shares[2])});
  }

  std::printf("bench_qos_fairness (%s)\n", args.smoke ? "smoke" : "full");
  table.Print();
  std::printf("  flood victim p99: flat %.0fus / hier %.0fus = %.1fx\n",
              flat_p99, hier_p99, flat_p99 / hier_p99);

  if (!args.json_path.empty() && !WriteJson(args.json_path, records)) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace cool::bench

int main(int argc, char** argv) { return cool::bench::Run(argc, argv); }
