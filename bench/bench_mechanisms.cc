// Mechanism microbenchmarks: the per-octet and per-packet kernels the PR 8
// vectorization targets, measured in isolation so regressions in one
// kernel are visible without the noise of the full data path.
//
//   * CRC32: scalar byte-at-a-time vs slicing-by-8 vs the hardware path
//     (PCLMUL / ARMv8 CRC), plus the runtime-dispatched entry point.
//   * XOR keystream cipher: scalar octet loop vs word-at-a-time.
//   * Sequencing: SequencerModule in-order release, per-packet HandleData
//     vs whole-train ProcessBurst (the burst engine's hot path).
//
// Acceptance (ISSUE PR 8): dispatched/vectorized CRC32 >= 2x scalar.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "dacapo/checksum.h"
#include "dacapo/modules.h"
#include "dacapo/packet.h"

namespace {

using namespace cool;
using namespace cool::dacapo;

// Measures a byte-churning kernel in MB/s: run `fn(buf)` until `window`
// elapses, count octets processed.
template <typename Fn>
double MeasureMBps(std::span<const std::uint8_t> buf, Duration window,
                   Fn&& fn) {
  // Warm-up round primes caches and (for the dispatched CRC) runs the
  // one-time kernel self-check outside the timed window.
  fn(buf);
  std::uint64_t bytes = 0;
  const Stopwatch sw;
  const TimePoint end = Now() + window;
  while (Now() < end) {
    for (int i = 0; i < 16; ++i) fn(buf);
    bytes += 16 * buf.size();
  }
  return static_cast<double>(bytes) / ToSeconds(sw.Elapsed()) / 1e6;
}

// Port double for the sequencing benchmark: collects releases, recycles
// nothing, never blocks.
class CollectPort : public ModulePort {
 public:
  explicit CollectPort(PacketArena& arena) : arena_(arena) {}

  void ForwardUp(PacketPtr pkt) override { up_.push_back(std::move(pkt)); }
  void ForwardDown(PacketPtr pkt) override { up_.push_back(std::move(pkt)); }
  void ForwardUpBatch(std::vector<PacketPtr>& pkts) override {
    for (auto& p : pkts) up_.push_back(std::move(p));
    pkts.clear();
  }
  void ForwardDownBatch(std::vector<PacketPtr>& pkts) override {
    ForwardUpBatch(pkts);
  }
  void ControlUp(ControlMsg) override {}
  void ControlDown(ControlMsg) override {}
  PacketArena& arena() override { return arena_; }
  std::string_view channel_name() const override { return "bench"; }

  std::vector<PacketPtr>& released() { return up_; }

 private:
  PacketArena& arena_;
  std::vector<PacketPtr> up_;
};

void PutSeq(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

// Sequencer in-order receive rate, packets/s. `batched` drives the module
// through ProcessBurst in trains of 32; otherwise one HandleData per
// packet. Packets are recycled: after release, the next sequence header is
// pushed back on and the packet re-enters.
double MeasureSequencing(bool batched, Duration window) {
  constexpr std::size_t kTrain = 32;
  PacketArena arena(kTrain + 4, 256);
  SequencerModule seq;
  CollectPort port(arena);

  std::vector<PacketPtr> pool;
  const std::uint8_t payload[64] = {0x5A};
  for (std::size_t i = 0; i < kTrain; ++i) {
    auto pkt = arena.Make(payload);
    if (!pkt.ok()) return 0;
    pool.push_back(std::move(pkt).value());
  }

  std::uint32_t next_seq = 0;
  std::uint64_t processed = 0;
  const Stopwatch sw;
  const TimePoint end = Now() + window;
  while (Now() < end) {
    // Stamp the train in order.
    for (auto& pkt : pool) {
      std::uint8_t header[4];
      PutSeq(header, next_seq++);
      if (!pkt->PushHeader(header).ok()) return 0;
    }
    if (batched) {
      PacketBatch batch;
      for (auto& pkt : pool) batch.PushBack(std::move(pkt));
      pool.clear();
      seq.ProcessBurst(Direction::kUp, batch, port);
    } else {
      for (auto& pkt : pool) {
        seq.HandleData(Direction::kUp, std::move(pkt), port);
      }
      pool.clear();
    }
    processed += kTrain;
    // Everything was in order, so everything was released; recycle.
    pool.swap(port.released());
    if (pool.size() != kTrain) return 0;  // lost packets: invalid run
  }
  return static_cast<double>(processed) / ToSeconds(sw.Elapsed());
}

void AddRow(cool::bench::Table& table, std::vector<bench::BenchRecord>& recs,
            const char* name, double mbps) {
  table.AddRow({name, cool::bench::Fmt("%.0f", mbps)});
  bench::BenchRecord rec;
  rec.name = name;
  rec.mbps = mbps;
  recs.push_back(std::move(rec));
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = cool::bench::BenchArgs::Parse(argc, argv);
  const Duration window =
      args.smoke ? cool::milliseconds(30) : cool::milliseconds(200);

  std::printf("=== Mechanism microbenchmarks (PR 8 kernels) ===%s\n\n",
              args.smoke ? " (smoke mode)" : "");

  // 4 KiB blocks: large enough that per-call dispatch amortizes away and
  // the per-octet kernel dominates; the paper's mechanisms see packets in
  // the hundreds of octets to tens of KiB.
  std::vector<std::uint8_t> buf(4096);
  Rng rng(0x9E3779B9);
  for (auto& b : buf) b = rng.NextByte();

  std::vector<cool::bench::BenchRecord> records;
  cool::bench::Table table({"kernel", "MB/s"});

  volatile std::uint32_t sink32 = 0;
  AddRow(table, records, "crc32 scalar 4k",
         MeasureMBps(buf, window, [&](std::span<const std::uint8_t> b) {
           sink32 = sink32 ^ cool::dacapo::Crc32Scalar(b);
         }));
  AddRow(table, records, "crc32 slicing8 4k",
         MeasureMBps(buf, window, [&](std::span<const std::uint8_t> b) {
           sink32 = sink32 ^ cool::dacapo::Crc32Slicing8(b);
         }));
  if (cool::dacapo::Crc32HwAvailable()) {
    AddRow(table, records, "crc32 hw 4k",
           MeasureMBps(buf, window, [&](std::span<const std::uint8_t> b) {
             sink32 = sink32 ^ cool::dacapo::Crc32Hw(b);
           }));
  } else {
    std::printf("  (no CRC32 hardware path on this machine)\n");
  }
  AddRow(table, records, "crc32 dispatch 4k",
         MeasureMBps(buf, window, [&](std::span<const std::uint8_t> b) {
           sink32 = sink32 ^ cool::dacapo::Crc32(b);
         }));

  std::vector<std::uint8_t> xbuf = buf;
  AddRow(table, records, "xor scalar 4k",
         MeasureMBps(xbuf, window, [&](std::span<const std::uint8_t>) {
           cool::dacapo::XorCipherScalar(xbuf, 0x0123456789ABCDEFull);
         }));
  AddRow(table, records, "xor wide 4k",
         MeasureMBps(xbuf, window, [&](std::span<const std::uint8_t>) {
           cool::dacapo::XorCipher(xbuf, 0x0123456789ABCDEFull);
         }));

  const double seq_unbatched = MeasureSequencing(false, window);
  const double seq_batched = MeasureSequencing(true, window);
  table.AddRow({"seq unbatched", cool::bench::Fmt("%.0f pkt/s", seq_unbatched)});
  table.AddRow({"seq batched", cool::bench::Fmt("%.0f pkt/s", seq_batched)});
  {
    cool::bench::BenchRecord rec;
    rec.name = "seq unbatched";
    rec.msgs_per_sec = seq_unbatched;
    records.push_back(std::move(rec));
  }
  {
    cool::bench::BenchRecord rec;
    rec.name = "seq batched";
    rec.msgs_per_sec = seq_batched;
    records.push_back(std::move(rec));
  }

  table.Print();

  // The acceptance ratio, spelled out so a regression is obvious in logs.
  double slicing = 0, scalar = 0;
  for (const auto& r : records) {
    if (r.name == "crc32 slicing8 4k") slicing = r.mbps;
    if (r.name == "crc32 scalar 4k") scalar = r.mbps;
  }
  if (scalar > 0) {
    std::printf("\ncrc32 slicing8/scalar speedup: %.2fx (target >= 2x)\n",
                slicing / scalar);
  }

  if (!args.json_path.empty() &&
      !cool::bench::WriteJson(args.json_path, records)) {
    return 1;
  }
  return 0;
}
