#!/usr/bin/env bash
# Regenerates every table/figure of EXPERIMENTS.md: runs the full test
# suite and every benchmark binary, teeing output next to the repo root.
set -u
cd "$(dirname "$0")/.."

BUILD=${BUILD_DIR:-build}

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt

: > bench_output.txt
for b in "$BUILD"/bench/*; do
  [ -x "$b" ] || continue
  echo "==================================================================="
  echo ">>> $b"
  echo "==================================================================="
  "$b"
done 2>&1 | tee -a bench_output.txt
