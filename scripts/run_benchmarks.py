#!/usr/bin/env python3
"""Benchmark-trajectory harness.

Runs the benchmark binaries that support the --smoke/--json protocol (see
bench/bench_util.h) and aggregates their records into one JSON file, keyed
by a label, so before/after numbers for a change live side by side:

    scripts/run_benchmarks.py --smoke --label before --build-dir build-pre
    scripts/run_benchmarks.py --smoke --label after  --build-dir build
    -> BENCH_PR4.json: {"meta": ..., "before": {...}, "after": {...}}

The output file is merged, not overwritten: re-running with a different
label adds a section, re-running with the same label replaces it. CI runs
the smoke mode on every push and uploads the JSON as an artifact, giving
the repo a benchmark trajectory across PRs without gating merges on noisy
thresholds.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Binaries implementing the --smoke/--json protocol, with the metric that
# headlines each one in the summary printout.
BENCHES = [
    {"binary": "bench_transports", "headline": "dacapo (fast link)"},
    {"binary": "bench_fig9_throughput", "headline": "0 dummy / 64 KiB"},
    {"binary": "bench_concurrent_invocations", "headline": "tcp t8 d8"},
    {"binary": "bench_marshal", "headline": "build request giop1.0"},
    {"binary": "bench_connection_scaling", "headline": "tcp conns 10"},
    {"binary": "bench_mechanisms", "headline": "crc32 dispatch 4k"},
    {"binary": "bench_qos_fairness", "headline": "dispatch_equal"},
]

# Rows whose allocs_per_op trajectory is tracked in the before/after delta
# printout (PR 5 acceptance: "tcp t1 d1" allocs/op down >= 50%).
ALLOC_ROWS = [
    ("bench_concurrent_invocations", "tcp t1 d1"),
    ("bench_marshal", "build request giop1.0"),
]


def run_bench(build_dir: Path, binary: str, smoke: bool,
              timeout_s: int) -> list[dict]:
    exe = build_dir / "bench" / binary
    if not exe.exists():
        print(f"  {binary}: missing ({exe}), skipped")
        return []
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        tmp_path = Path(tmp.name)
    try:
        cmd = [str(exe), "--json", str(tmp_path)]
        if smoke:
            cmd.append("--smoke")
        print(f"  {binary}{' --smoke' if smoke else ''} ...", flush=True)
        proc = subprocess.run(cmd, cwd=REPO, timeout=timeout_s,
                              capture_output=True, text=True)
        if proc.returncode != 0:
            print(f"  {binary}: exit {proc.returncode}")
            sys.stderr.write(proc.stdout[-2000:] + proc.stderr[-2000:])
            return []
        return json.loads(tmp_path.read_text())
    finally:
        tmp_path.unlink(missing_ok=True)


def median(values: list[float]) -> float:
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def merge_repeats(runs: list[list[dict]]) -> list[dict]:
    """Collapses repeated runs of one binary into per-row medians.

    Rate and latency metrics take the median across runs (robust to one
    interfered run); allocs_per_op takes the min (the counter is
    deterministic, warm-up only ever adds); spread_pct becomes the
    cross-run spread of the primary rate metric when it exceeds whatever
    a single run reported internally.
    """
    runs = [r for r in runs if r]
    if len(runs) <= 1:
        return runs[0] if runs else []
    by_name: dict[str, list[dict]] = {}
    order: list[str] = []
    for records in runs:
        for rec in records:
            name = rec.get("name")
            if name not in by_name:
                by_name[name] = []
                order.append(name)
            by_name[name].append(rec)
    merged = []
    for name in order:
        samples = by_name[name]
        rec = dict(samples[0])
        for key in ("msgs_per_sec", "mbps", "p50_us", "p99_us", "p999_us",
                    "jain", "threads", "bytes_per_conn", "rss_mb",
                    "accepts_per_sec"):
            vals = [s[key] for s in samples if key in s]
            if vals:
                rec[key] = median(vals)
        allocs = [s["allocs_per_op"] for s in samples if "allocs_per_op" in s]
        if allocs:
            rec["allocs_per_op"] = min(allocs)
        primary = "msgs_per_sec" if "msgs_per_sec" in rec else "mbps"
        vals = [s[primary] for s in samples if primary in s]
        if len(vals) > 1 and median(vals) > 0:
            cross = (max(vals) - min(vals)) / median(vals) * 100.0
            rec["spread_pct"] = max(rec.get("spread_pct", 0.0), cross)
        merged.append(rec)
    return merged


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="short windows; what CI runs")
    parser.add_argument("--label", default="after",
                        help="section name in the output JSON "
                             "(e.g. before/after; default: after)")
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory containing bench/")
    parser.add_argument("--output", default="BENCH_PR10.json",
                        help="aggregated output path (merged, not clobbered)")
    parser.add_argument("--timeout", type=int, default=600,
                        help="per-binary timeout in seconds")
    parser.add_argument("--repeat", type=int, default=1,
                        help="run each binary N times and keep the per-row "
                             "median of every rate metric; the cross-run "
                             "spread lands in spread_pct so noisy rows are "
                             "visible in the JSON")
    parser.add_argument("--merge-max", action="store_true",
                        help="when the label already exists in the output, "
                             "keep the per-row max of msgs_per_sec (and min "
                             "of allocs_per_op) instead of replacing the "
                             "section; re-run before/after alternately so "
                             "machine drift hits both labels equally")
    args = parser.parse_args()

    build_dir = (REPO / args.build_dir).resolve() \
        if not Path(args.build_dir).is_absolute() else Path(args.build_dir)
    out_path = (REPO / args.output).resolve() \
        if not Path(args.output).is_absolute() else Path(args.output)

    print(f"run_benchmarks: label={args.label} build={build_dir}")
    section: dict[str, object] = {
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "smoke": args.smoke,
        "benches": {},
    }
    ran_any = False
    for bench in BENCHES:
        records = merge_repeats([
            run_bench(build_dir, bench["binary"], args.smoke, args.timeout)
            for _ in range(max(1, args.repeat))
        ])
        if records:
            ran_any = True
        section["benches"][bench["binary"]] = records
        for rec in records:
            if rec.get("name") == bench["headline"]:
                mps = rec.get("msgs_per_sec")
                mbps = rec.get("mbps")
                if mps is not None:
                    print(f"    headline [{rec['name']}]: "
                          f"{mps:,.0f} msgs/s")
                elif mbps is not None:
                    print(f"    headline [{rec['name']}]: "
                          f"{mbps:,.0f} MB/s")
    if not ran_any:
        print("run_benchmarks: no benchmark produced records")
        return 1

    merged: dict[str, object] = {}
    if out_path.exists():
        try:
            merged = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            print(f"  {out_path.name}: unreadable, starting fresh")
    merged["meta"] = {
        "machine": platform.machine(),
        "system": platform.system(),
        "note": "smoke numbers are CI-grade (short windows, shared "
                "runners); compare labels within one file only",
    }
    if args.merge_max and args.label in merged:
        old_benches = merged[args.label].get("benches", {})
        for binary, records in section["benches"].items():
            prior = {r.get("name"): r for r in old_benches.get(binary, [])}
            for rec in records:
                old = prior.get(rec.get("name"))
                if old is None:
                    continue
                # Max over runs estimates the least-interfered rate; the
                # alloc counter is deterministic, so take its min (warm-up
                # effects only ever add allocations).
                if old.get("msgs_per_sec", 0) > rec.get("msgs_per_sec", 0):
                    rec["msgs_per_sec"] = old["msgs_per_sec"]
                old_allocs = old.get("allocs_per_op")
                new_allocs = rec.get("allocs_per_op")
                if old_allocs is not None and (new_allocs is None
                                               or old_allocs < new_allocs):
                    rec["allocs_per_op"] = old_allocs
    merged[args.label] = section
    out_path.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"run_benchmarks: wrote {out_path}")

    # Before/after convenience: when both sections exist, print the delta
    # for each headline metric and for the tracked allocs_per_op rows.
    if "before" in merged and "after" in merged:
        def metric(section_name: str, binary: str, row: str,
                   key: str) -> float | None:
            recs = merged[section_name]["benches"].get(binary, [])
            for rec in recs:
                if rec.get("name") == row:
                    return rec.get(key)
            return None
        for bench in BENCHES:
            for key, unit in (("msgs_per_sec", "msgs/s"), ("mbps", "MB/s")):
                b = metric("before", bench["binary"], bench["headline"], key)
                a = metric("after", bench["binary"], bench["headline"], key)
                if b and a:
                    print(f"  {bench['binary']} [{bench['headline']}]: "
                          f"{b:,.0f} -> {a:,.0f} {unit} "
                          f"({(a / b - 1) * 100:+.1f}%)")
                    break
        for binary, row in ALLOC_ROWS:
            b = metric("before", binary, row, "allocs_per_op")
            a = metric("after", binary, row, "allocs_per_op")
            if b is not None and a is not None and b > 0:
                print(f"  {binary} [{row}]: {b:.1f} -> {a:.1f} allocs/op "
                      f"({(a / b - 1) * 100:+.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
