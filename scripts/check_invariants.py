#!/usr/bin/env python3
"""Repo-specific invariant linter.

Enforces the concurrency and memory-safety conventions documented in
DESIGN.md ("Concurrency model") over src/, tests/, bench/ and examples/:

  1. No raw synchronization or thread primitives outside src/common/ —
     everything goes through the annotated cool::Mutex / cool::CondVar /
     cool::Thread wrappers so Clang's -Wthread-safety sees every lock.
  2. No memcpy / reinterpret_cast outside src/common/ and src/cdr/ — raw
     byte reinterpretation is confined to the buffer and CDR layers.
  3. CDR decoder primitives must bounds-check: every function in
     cdr/decoder.h that touches data_ must call remaining() or Underrun.
  4. Condition variables are notified with the lock held (destruction
     safety): every CondVar Notify call must be lexically preceded by a
     MutexLock/WriterMutexLock in the same function.
  5. The include graph between src/ layer directories must respect the
     layer order (no upward or cyclic includes).
  6. No bare new/delete outside an allowlist of factory functions; heap
     objects are owned by unique_ptr/shared_ptr from birth.
  7. No NotifyAll on the data path (src/dacapo, src/transport, src/giop,
     src/orb, src/stream) outside shutdown functions (Close/Stop/Shutdown
     and destructors). Mailboxes and queues there are single-consumer:
     hot-path wakeups must be NotifyOne so a push wakes exactly one
     thread; broadcasts are reserved for teardown.
  8. No blocking Receive/Recv-family call while a MutexLock is live, in
     src/giop and src/orb: a lock held across channel I/O serializes every
     caller behind one in-flight exchange, which is exactly what the
     multiplexed GIOP engines exist to avoid. Locks must be released (or
     scoped out) before draining the channel.
  9. No begin()/end() buffer copies on the invocation hot path (src/giop,
     src/orb): constructs like std::vector<...>(view.begin(), view.end())
     or seq.assign(v.begin(), v.end()) re-materialize a buffer the pooled
     zero-copy path already owns. Encode into a BufferPool lease, pass
     spans, or move the ByteBuffer instead. Cold-path exceptions live in
     BUFFER_COPY_ALLOWLIST.
  10. The reactor owns event-driven I/O in src/transport and src/giop: no
     new thread spawns and no blocking ReceiveMessage call sites outside
     the allowlisted machinery (reactor/epoll workers, the shared dispatch
     pool, and the documented blocking fallbacks). A connection must cost
     a reactor registration, not a thread — additions go through
     Reactor::Add or get an allowlist entry with a justification.
  11. No raw std::condition_variable and no this_thread::sleep_for /
     sleep_until in reactor- or dispatch-callback territory (src/transport,
     src/giop): reactor callbacks and pool upcalls run to completion on
     shared workers, so a sleep or an unannotated wait there stalls every
     connection pinned to that worker. Timed waits go through
     cool::CondVar::WaitUntil; deliberate blocking sites are marked with
     deadlock::ScopedBlockingAllowed and reviewed.
  12. Lock-rank cross-check: the LockRank enum (src/common/lock_rank.h),
     the machine-readable table (scripts/lock_order.yaml), and the actual
     Mutex/SharedMutex member declarations in src/ must agree. Every named
     mutex must be constructed with {LockRank::kX, "ns::Class::member"},
     appear in the yaml with the same rank, and any COOL_ACQUIRED_BEFORE /
     COOL_ACQUIRED_AFTER annotation must be consistent with the ranks
     (an acquired_after(x) lock may not out-rank x). The runtime detector
     (COOL_DEADLOCK_DETECTOR=ON) enforces the same order dynamically.
  15. Per-connection memory diet (DESIGN.md §14): the connection-state
     headers (src/orb/orb.h, src/transport/*_channel.h) may not grow new
     std::unordered_map / std::deque members (eager per-instance heap) or
     raw std::vector<std::uint8_t> buffers (bypass the BufferPool lease)
     without a PER_CONN_WAIVER comment.

Exit status 0 when clean; 1 with findings on stdout otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

CODE_DIRS = ["src", "tests", "bench", "examples"]

# Layer ranks: an #include from directory A to directory B is legal iff
# rank[B] <= rank[A]. Derived from the actual dependency structure (common
# at the bottom, stream at the top); keep in sync with DESIGN.md.
LAYER_RANK = {
    "common": 0,
    "cdr": 1,
    "sim": 1,
    "qos": 2,
    "idl": 2,
    "dacapo": 3,
    "transport": 4,
    "giop": 5,
    "orb": 6,
    "stream": 7,
}

# Raw primitives that must not appear outside src/common/ (rule 1).
RAW_SYNC = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?|thread|jthread|lock_guard|unique_lock|"
    r"scoped_lock|shared_lock)\b"
)

# Raw byte reinterpretation (rule 2).
RAW_BYTES = re.compile(r"\b(memcpy|reinterpret_cast)\b")

# new/delete allowlist (rule 6): file -> substring that must appear on the
# offending line for it to pass. These are private-constructor factories
# (std::make_unique cannot reach the constructor) and one leaky singleton.
NEW_ALLOWLIST = {
    "src/dacapo/graph.cc": ["new MechanismRegistry()"],  # leaky singleton
    "src/dacapo/session.cc": ["new Session("],  # private ctor, factory-wrapped
    "src/stream/stream_adapter.cc": ["new FlowConnection("],  # same pattern
    "src/common/buffer_pool.cc": ["new BufferPool()"],  # leaky singleton
    "src/transport/reactor.cc": ["new Reactor()"],  # leaky singleton
    "src/common/deadlock.cc": ["new State()"],  # leaky singleton (detector)
}

# Whole files exempt from rule 6: the benchmark allocation hook *defines*
# the global operator new/delete overloads it counts with.
NEW_DELETE_EXEMPT_FILES = {"bench/alloc_hook.cc"}

NEW_RE = re.compile(r"\bnew\b\s+[A-Za-z_]")
DELETE_RE = re.compile(r"\bdelete\b\s+[A-Za-z_*(]|\bdelete\[\]")


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments, KEEPING string literals.

    Needed wherever the rule inspects quoted text — e.g. the #include path
    in the layering check, which strip_comments_and_strings would erase.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                j += 1
            j = min(j + 1, n)
            out.append(text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                j += 1
            i = min(j + 1, n)
        else:
            out.append(c)
            i += 1
    return "".join(out)


def code_files() -> list[Path]:
    files = []
    for d in CODE_DIRS:
        root = REPO / d
        if root.is_dir():
            files.extend(sorted(root.rglob("*.h")))
            files.extend(sorted(root.rglob("*.cc")))
    return files


def rel(path: Path) -> str:
    return str(path.relative_to(REPO))


def check_raw_sync(path: Path, clean: str, findings: list[str]) -> None:
    if rel(path).startswith("src/common/"):
        return
    for lineno, line in enumerate(clean.splitlines(), 1):
        m = RAW_SYNC.search(line)
        if m:
            findings.append(
                f"{rel(path)}:{lineno}: raw std::{m.group(1)} outside "
                f"src/common/ — use the annotated cool:: wrappers "
                f"(common/mutex.h, common/thread.h)"
            )


# Rule 2 covers bench/ and examples/ too; tests keep latitude for
# byte-level assertions. Justified exceptions only.
RAW_BYTES_ALLOWLIST = {
    # Paper-faithful char*-API example: casts a std::string payload to the
    # byte span the transport takes; no aliasing beyond char <-> uint8_t.
    "examples/adaptive_protocol.cpp": ["msg.data()"],
    # Word-at-a-time / SIMD checksum+cipher kernels: memcpy is the
    # alignment-safe unaligned load/store idiom, and the PCLMUL path casts
    # byte pointers to __m128i* for _mm_loadu_si128 (an unaligned-load
    # intrinsic, so the cast carries no alignment assumption).
    "src/dacapo/checksum.cc": ["memcpy(", "reinterpret_cast"],
}


def check_raw_bytes(path: Path, clean: str, findings: list[str]) -> None:
    r = rel(path)
    if r.startswith(("src/common/", "src/cdr/", "tests/")):
        return
    allow = RAW_BYTES_ALLOWLIST.get(r, [])
    for lineno, line in enumerate(clean.splitlines(), 1):
        m = RAW_BYTES.search(line)
        if m and not any(a in line for a in allow):
            findings.append(
                f"{r}:{lineno}: {m.group(1)} outside src/common/ and "
                f"src/cdr/ — raw byte reinterpretation is confined to the "
                f"buffer/CDR layers"
            )


def check_decoder_bounds(findings: list[str]) -> None:
    """Every decoder.h function body that reads data_ must bounds-check."""
    path = SRC / "cdr" / "decoder.h"
    if not path.exists():
        findings.append("src/cdr/decoder.h: missing (decoder bounds rule)")
        return
    clean = strip_comments_and_strings(path.read_text())
    # Split on function definitions at brace level of the class body; a
    # lightweight scan is enough for this file's uniform formatting.
    func_re = re.compile(r"^\s*(?:[\w:<>,&*\s]+?)\s(\w+)\s*\([^;]*\)\s*(?:const\s*)?{", re.M)
    lines = clean.splitlines()
    text = "\n".join(lines)
    for m in func_re.finditer(text):
        name = m.group(1)
        if name in ("if", "for", "while", "switch", "catch", "return"):
            continue
        # Extract the brace-balanced body.
        start = m.end() - 1
        depth, i = 0, start
        while i < len(text):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        body = text[start : i + 1]
        if "data_" not in body:
            continue
        if name in ("Decoder", "MakeBodyDecoder"):  # constructors/forwarders
            continue
        checked = (
            "remaining()" in body
            or "Underrun" in body
            or "CheckAvail" in body
            # Delegating primitives: every Get* helper is itself checked.
            or re.search(r"\bGet\w+\(", body)
            or "Align(" in body
        )
        if not checked:
            lineno = text.count("\n", 0, m.start()) + 1
            findings.append(
                f"src/cdr/decoder.h:{lineno}: {name}() touches data_ "
                f"without a remaining()/Underrun bounds check"
            )


def check_notify_under_lock(path: Path, clean: str, findings: list[str]) -> None:
    """Heuristic: a Notify call must follow a lock acquisition in-function."""
    if "Notify" not in clean:
        return
    lines = clean.splitlines()
    for lineno, line in enumerate(lines, 1):
        if not re.search(r"\.\s*Notify(One|All)\s*\(", line):
            continue
        # Scan backwards to the start of the enclosing function for a lock.
        held = False
        for back in range(lineno - 1, max(0, lineno - 60), -1):
            prev = lines[back - 1]
            if re.search(r"\b(MutexLock|WriterMutexLock|ReaderMutexLock)\b", prev):
                held = True
                break
            if re.search(r"\bCOOL_REQUIRES\s*\(", prev):
                held = True  # caller holds the lock by contract
                break
            if re.match(r"^\S.*\)\s*(const\s*)?({)?\s*$", prev) and "(" in prev:
                break  # hit a function signature at column 0
        if not held:
            findings.append(
                f"{rel(path)}:{lineno}: CondVar Notify without a visible "
                f"MutexLock in the enclosing function (notify-under-lock "
                f"rule, see DESIGN.md)"
            )


# Data-path directories where broadcast wakeups are banned outside
# teardown (rule 7). src/common/ and src/sim/ are exempt: their primitives
# (BlockingQueue, the simulated network) are multi-consumer by design.
DATA_PATH_DIRS = (
    "src/dacapo/",
    "src/transport/",
    "src/giop/",
    "src/orb/",
    "src/stream/",
)

def check_no_broadcast_on_data_path(
    path: Path, clean: str, findings: list[str]
) -> None:
    """Rule 7: NotifyAll in data-path dirs only inside shutdown functions."""
    r = rel(path)
    if not r.startswith(DATA_PATH_DIRS):
        return
    if "NotifyAll" not in clean:
        return
    lines = clean.splitlines()
    for lineno, line in enumerate(lines, 1):
        if not re.search(r"\.\s*NotifyAll\s*\(", line):
            continue
        # Scan backwards for the enclosing function definition; same
        # lightweight approach as check_notify_under_lock.
        in_shutdown = False
        for back in range(lineno - 1, 0, -1):
            prev = lines[back - 1]
            m = re.search(r"\b([~\w]+)\s*\([^;]*\)\s*(?:const\s*)?(?:{)?\s*$", prev)
            if m and not re.match(
                r"\s*(if|for|while|switch|catch|return)\b", prev
            ):
                name = m.group(1)
                in_shutdown = bool(
                    re.fullmatch(r"~\w+|Close|Stop|Shutdown|Drain\w*", name)
                )
                break
        if not in_shutdown:
            findings.append(
                f"{r}:{lineno}: NotifyAll on the data path outside a "
                f"shutdown function — single-consumer queues take "
                f"NotifyOne; broadcasts are reserved for "
                f"Close/Stop/Shutdown (rule 7, see DESIGN.md)"
            )


# Directories where a lock held across blocking channel I/O is banned
# (rule 8): the GIOP engines and the ORB above them must pipeline, so
# nothing may wait on the wire while holding a mutex.
NO_RECV_UNDER_LOCK_DIRS = ("src/giop/", "src/orb/")

RECV_CALL_RE = re.compile(r"(?:\.|->)\s*(Receive|Recv)\w*\s*\(")


def check_no_recv_under_lock(
    path: Path, clean: str, findings: list[str]
) -> None:
    """Rule 8: no Receive/Recv call below a still-live MutexLock."""
    r = rel(path)
    if not r.startswith(NO_RECV_UNDER_LOCK_DIRS):
        return
    lines = clean.splitlines()
    for lineno, line in enumerate(lines, 1):
        m = RECV_CALL_RE.search(line)
        if not m:
            continue
        # Scan backwards to the enclosing function definition, tracking
        # brace balance so a lock whose scope already closed (net `}` seen
        # on the way up) does not count as live at the receive point.
        closed = 0
        held = False
        for back in range(lineno - 1, 0, -1):
            prev = lines[back - 1]
            if back != lineno:
                closed += prev.count("}") - prev.count("{")
            if (
                re.search(r"\b(MutexLock|WriterMutexLock|ReaderMutexLock)\b", prev)
                and closed <= 0
            ):
                held = True
                break
            if re.search(r"\bCOOL_REQUIRES\s*\(", prev):
                held = True  # caller holds the lock by contract
                break
            if re.match(r"^\S.*\)\s*(const\s*)?({)?\s*$", prev) and "(" in prev:
                break  # hit a function signature at column 0
        if held:
            findings.append(
                f"{r}:{lineno}: blocking {m.group(1)}* call with a "
                f"MutexLock live in the enclosing function — release the "
                f"lock before waiting on the channel (rule 8, see "
                f"DESIGN.md)"
            )


INCLUDE_RE = re.compile(r'^\s*#include\s+"([^"]+)"', re.M)


def check_layering(findings: list[str]) -> None:
    for path in sorted(SRC.rglob("*.h")) + sorted(SRC.rglob("*.cc")):
        src_dir = path.relative_to(SRC).parts[0]
        if src_dir not in LAYER_RANK:
            continue
        # Comments-only strip: the include path IS a string literal, so the
        # combined stripper would blank it and silently disable this rule.
        text = strip_comments(path.read_text())
        for m in INCLUDE_RE.finditer(text):
            inc = m.group(1)
            inc_dir = inc.split("/", 1)[0]
            if inc_dir not in LAYER_RANK:
                continue
            if LAYER_RANK[inc_dir] > LAYER_RANK[src_dir]:
                lineno = text.count("\n", 0, m.start()) + 1
                findings.append(
                    f"{rel(path)}:{lineno}: layer violation — "
                    f"{src_dir}/ (rank {LAYER_RANK[src_dir]}) includes "
                    f"{inc} (rank {LAYER_RANK[inc_dir]}); the layer order "
                    f"is {', '.join(sorted(LAYER_RANK, key=LAYER_RANK.get))}"
                )


def check_new_delete(path: Path, clean: str, findings: list[str]) -> None:
    r = rel(path)
    # src/ plus bench/ and examples/ — tests keep latitude for fixtures.
    if r.startswith("tests/") or r in NEW_DELETE_EXEMPT_FILES:
        return
    allow = NEW_ALLOWLIST.get(r, [])
    for lineno, line in enumerate(clean.splitlines(), 1):
        if DELETE_RE.search(line) and "= delete" not in line:
            findings.append(
                f"{r}:{lineno}: bare delete — heap objects must be owned "
                f"by smart pointers from birth"
            )
        m = NEW_RE.search(line)
        if not m:
            continue
        if any(a in line for a in allow):
            continue
        # Placement-like or smart-pointer-wrapped news on the same line are
        # still flagged: make_unique/make_shared are the sanctioned forms.
        findings.append(
            f"{r}:{lineno}: bare new outside the factory allowlist — use "
            f"std::make_unique/std::make_shared, or extend the allowlist "
            f"in scripts/check_invariants.py with a justification"
        )


# --- rule 9: no begin()/end() buffer copies on the hot path ------------------
# The pooled invocation path moves ByteBuffers and passes spans end to end;
# a `Container(x.begin(), x.end())` construction or `.assign(x.begin(),
# x.end())` in src/giop or src/orb silently reintroduces the copy the pool
# exists to remove. Cold paths (connection setup, registration) are
# allowlisted with a justification.

BUFFER_COPY_DIRS = ("src/giop/", "src/orb/")

BUFFER_COPY_EXEMPT_FILES = {
    # The COOL wire protocol is the ablation baseline GIOP is measured
    # against (bench_message_protocols); it is deliberately copy-based and
    # not on the pooled invocation path.
    "src/giop/cool_protocol.cc",
}

BUFFER_COPY_ALLOWLIST = {
    # Servant registration: one copy of the object key at activation time.
    "src/orb/object_adapter.cc": ["name.begin(), name.end()"],
    # Deferred invocation: the one sanctioned copy that keeps the caller's
    # args alive for the async worker (see stub.cc InvokeAsync).
    "src/orb/stub.cc": ["args.begin(), args.end()"],
}

# Same identifier on both sides of `.begin(), X.end()`.
BUFFER_COPY_RE = re.compile(
    r"([A-Za-z_][\w.\->]*)\s*\.\s*begin\(\)\s*,\s*"
    r"([A-Za-z_][\w.\->]*)\s*\.\s*end\(\)"
)


def check_no_buffer_copies(path: Path, clean: str,
                           findings: list[str]) -> None:
    r = rel(path)
    if not r.startswith(BUFFER_COPY_DIRS) or r in BUFFER_COPY_EXEMPT_FILES:
        return
    allow = BUFFER_COPY_ALLOWLIST.get(r, [])
    for lineno, line in enumerate(clean.splitlines(), 1):
        m = BUFFER_COPY_RE.search(line)
        if not m or m.group(1) != m.group(2):
            continue
        # std::copy gathers into already-owned storage (stack headers,
        # preallocated frames) — that is the zero-copy idiom, not a fresh
        # buffer materialization.
        if "std::copy" in line:
            continue
        if any(a in line for a in allow):
            continue
        findings.append(
            f"{r}:{lineno}: begin()/end() buffer copy on the invocation "
            f"path — move the ByteBuffer, pass a span, or encode into a "
            f"BufferPool lease (rule 9, see DESIGN.md); cold paths may be "
            f"allowlisted in scripts/check_invariants.py"
        )


# --- rule 10: reactor-owned I/O in src/transport and src/giop ----------------
# The event-driven connection engine exists so that connections cost reactor
# registrations, not threads. New thread spawns and new blocking-receive
# call sites in these directories bypass it; each allowed site is the
# machinery itself or a documented fallback.

REACTOR_DIRS = ("src/transport/", "src/giop/")

# Thread construction from a lambda: the cool::Thread wrapper as a
# temporary/member init (`Thread([`), a named local (`Thread t([`), or an
# in-place vector<Thread> emplace.
THREAD_SPAWN_RE = re.compile(
    r"\bThread\s*\(\s*\[|\bThread\s+\w+\s*\(\s*\[|\bemplace_back\s*\(\s*\[")

THREAD_SPAWN_ALLOWLIST = {
    "src/transport/reactor.cc": ["WorkerLoop"],  # the reactor's own workers
    "src/transport/epoll_poller.cc": ["Loop(stop)"],  # kernel-fd poll loop
    # Legacy input-callback utility (paper §5 callback API), pre-reactor.
    "src/transport/input_callback.cc": ["Run(st)"],
    # Fallback reader thread when no reactor is configured, and the
    # private worker pool of pool-less GiopServers.
    "src/giop/engine.cc": ["ReaderLoop(stop)", "WorkerLoop()"],
    "src/giop/dispatch_pool.cc": ["WorkerLoop()"],  # the shared pool itself
}

# Blocking receive call sites (TryReceiveMessage is the non-blocking
# reactor path and stays legal). `::`-qualified definitions are excluded
# by the lookbehind; declarations are skipped below.
BLOCKING_RECV_RE = re.compile(r"(?<![\w:])ReceiveMessage\s*\(")

BLOCKING_RECV_ALLOWLIST = {
    # The synchronous convenience API on the ComChannel base (SendReceive
    # and the legacy input-callback pump) — explicitly blocking by contract.
    "src/transport/com_channel.cc": ["ReceiveMessage(timeout)",
                                     "ReceiveMessage(seconds(30))"],
    # ReaderLoop's poll quantum (reactor fallback) and the blocking
    # ServeOne used by transports without a non-blocking receive path.
    "src/giop/engine.cc": ["options_.reader_poll", "ReceiveMessage(timeout)"],
    # COOL wire protocol: the deliberately simple ablation baseline.
    "src/giop/cool_protocol.cc": ["ReceiveMessage(timeout)"],
}


def check_reactor_owns_io(path: Path, clean: str,
                          findings: list[str]) -> None:
    r = rel(path)
    if not r.startswith(REACTOR_DIRS):
        return
    spawn_allow = THREAD_SPAWN_ALLOWLIST.get(r, [])
    recv_allow = BLOCKING_RECV_ALLOWLIST.get(r, [])
    for lineno, line in enumerate(clean.splitlines(), 1):
        if THREAD_SPAWN_RE.search(line):
            if not any(a in line for a in spawn_allow):
                findings.append(
                    f"{r}:{lineno}: thread spawn in reactor-owned territory "
                    f"— connections cost reactor registrations, not "
                    f"threads; dispatch through Reactor::Add or extend "
                    f"THREAD_SPAWN_ALLOWLIST with a justification (rule 10)"
                )
        m = BLOCKING_RECV_RE.search(line)
        if m:
            # Skip declarations (virtual/override/pure) — the rule targets
            # call sites, not the interface.
            if ("virtual" in line or "override" in line or "= 0" in line):
                continue
            if not any(a in line for a in recv_allow):
                findings.append(
                    f"{r}:{lineno}: blocking ReceiveMessage call site — "
                    f"use TryReceiveMessage behind a reactor registration, "
                    f"or extend BLOCKING_RECV_ALLOWLIST with a "
                    f"justification (rule 10)"
                )


# --- rule 11: no sleeps or raw condvars in reactor/dispatch territory --------
# Reactor callbacks and dispatch-pool upcalls run to completion on shared
# workers; a sleep there stalls every connection pinned to the worker. Raw
# condition variables additionally dodge the deadlock detector's hooks.
# (Rule 1 already bans std::condition_variable repo-wide outside common/;
# this rule makes the reactor dirs explicit and adds the sleep ban.)

SLEEP_RE = re.compile(
    r"std::this_thread::sleep_(for|until)\s*\(|"
    r"(?<!std::this_thread::)\bsleep_(for|until)\s*\(|"
    r"\bcondition_variable\b"
)


def check_no_sleep_in_reactor_dirs(path: Path, clean: str,
                                   findings: list[str]) -> None:
    r = rel(path)
    if not r.startswith(REACTOR_DIRS):
        return
    for lineno, line in enumerate(clean.splitlines(), 1):
        m = SLEEP_RE.search(line)
        if m:
            findings.append(
                f"{r}:{lineno}: {m.group(0).strip('(').strip()} in reactor-"
                f"owned territory — callbacks and upcalls run to completion "
                f"on shared workers; use CondVar::WaitUntil with a deadline "
                f"or restructure around the reactor (rule 11, DESIGN.md §11)"
            )


# --- rule 13: the data path drives modules in bursts --------------------------
# The burst engine (DESIGN.md §12) walks packet trains through
# Module::ProcessBurst; the only per-packet HandleData loop lives in the
# base-class shim (src/dacapo/module.h). A new HandleData call site in the
# chain drivers or the channel seam quietly reintroduces
# one-packet-at-a-time processing — one queue hop, wakeup and virtual call
# per packet — which is exactly the overhead PR 8 removed.

BURST_DRIVER_FILES = (
    "src/dacapo/runtime.cc",
    "src/dacapo/runtime.h",
    "src/dacapo/session.cc",
    "src/dacapo/session.h",
    "src/transport/dacapo_channel.cc",
)

HANDLE_DATA_CALL_RE = re.compile(r"(?:->|\.)\s*HandleData\s*\(")


def check_burst_data_path(path: Path, clean: str,
                          findings: list[str]) -> None:
    r = rel(path)
    if r not in BURST_DRIVER_FILES:
        return
    for lineno, line in enumerate(clean.splitlines(), 1):
        if HANDLE_DATA_CALL_RE.search(line):
            findings.append(
                f"{r}:{lineno}: per-packet HandleData call on the data path "
                f"— hand the train to Module::ProcessBurst instead; the only "
                f"per-packet loop is the base-class shim in module.h "
                f"(rule 13, DESIGN.md §12)"
            )


# --- rule 14: all dispatch/egress work enters through the scheduler ----------
# The hierarchical QoS scheduler (common/qos_sched.h, DESIGN.md §13) is
# only fair if every job and every egress ticket passes through its
# accounting: DispatchPool::Submit and EgressScheduler::Acquire. A direct
# push onto the pool's queues (flat_queues_), a stray TrafficClassTree on
# the data path, or a raw tree Enqueue outside the owning implementations
# bypasses WFQ/DRR/CoDel and silently reintroduces
# first-grabbed-lock-wins.

SCHED_OWNER_FILES = {
    "src/common/qos_sched.h",
    "src/giop/dispatch_pool.h",
    "src/giop/dispatch_pool.cc",
    "src/transport/qos_egress.h",
    "src/transport/qos_egress.cc",
}

SCHED_BYPASS_RE = re.compile(
    r"\bflat_queues_\b|\bTrafficClassTree\s*<|\btree_\s*\.\s*Enqueue\s*\("
)


def check_scheduler_owns_queues(path: Path, clean: str,
                                findings: list[str]) -> None:
    r = rel(path)
    if r in SCHED_OWNER_FILES or not r.startswith("src/"):
        return
    for lineno, line in enumerate(clean.splitlines(), 1):
        if SCHED_BYPASS_RE.search(line):
            findings.append(
                f"{r}:{lineno}: dispatch/egress queue access outside the "
                f"scheduler — route the work through DispatchPool::Submit / "
                f"EgressScheduler::Acquire so WFQ/DRR/CoDel see it "
                f"(rule 14, DESIGN.md §13)"
            )


# --- rule 15: per-connection memory diet -------------------------------------
# The 100k-connection engine budgets a few hundred bytes per parked
# connection (DESIGN.md §14). A std::unordered_map or std::deque member in
# the connection-state headers eagerly allocates buckets/nodes per instance
# (libstdc++'s empty deque alone costs ~576 heap bytes), and a raw
# std::vector<std::uint8_t> receive buffer bypasses the BufferPool lease
# discipline. New members of these types in the files below need a
# PER_CONN_WAIVER comment (same line or the line above) explaining why the
# state is not per-connection or why the cost is accepted.

PER_CONN_FILES = (
    "src/orb/orb.h",
    "src/transport/tcp_channel.h",
    "src/transport/ipc_channel.h",
    "src/transport/dacapo_channel.h",
    "src/transport/com_channel.h",
)

PER_CONN_BANNED_RE = re.compile(
    r"\bstd::(unordered_map|deque)\s*<|\bstd::vector<std::uint8_t>\s+\w+_?\s*[;{=]"
)


def check_per_conn_memory(findings: list[str]) -> None:
    for r in PER_CONN_FILES:
        path = REPO / r
        if not path.exists():
            continue
        # Raw text, not the stripped view: the waiver lives in a comment.
        lines = path.read_text().splitlines()
        for lineno, line in enumerate(lines, 1):
            if line.lstrip().startswith(("//", "#")):
                continue
            if not PER_CONN_BANNED_RE.search(line):
                continue
            context = lines[max(0, lineno - 4):lineno]
            if any("PER_CONN_WAIVER" in c for c in context):
                continue
            findings.append(
                f"{r}:{lineno}: per-connection container member — empty "
                f"unordered_map/deque members eagerly allocate per instance "
                f"and raw byte vectors bypass the BufferPool lease; use "
                f"lazily-allocated pooled state, or add a PER_CONN_WAIVER "
                f"comment with a justification (rule 15, DESIGN.md §14)"
            )


# --- rule 12: lock-rank cross-check ------------------------------------------
# Three artifacts must agree: the LockRank enum (src/common/lock_rank.h),
# the machine-readable table (scripts/lock_order.yaml), and the Mutex /
# SharedMutex member declarations across src/. The runtime detector
# (COOL_DEADLOCK_DETECTOR=ON) enforces the same order dynamically; this
# pass catches drift at review time without a detector build.

LOCK_ORDER_YAML = REPO / "scripts" / "lock_order.yaml"
LOCK_RANK_H = SRC / "common" / "lock_rank.h"

# Files that define (rather than use) the lock machinery.
LOCK_RANK_EXEMPT = {
    "src/common/mutex.h",
    "src/common/lock_rank.h",
    "src/common/deadlock.h",
    "src/common/deadlock.cc",
    "src/common/graph_cycles.h",
    "src/common/graph_cycles.cc",
}

# A named mutex member declaration, optionally annotated and optionally
# rank-constructed, possibly spanning lines:
#   [mutable] Mutex name [COOL_ACQUIRED_*(...)] [{LockRank::kX, "ns::C::m"}];
MUTEX_DECL_RE = re.compile(
    r"\b(?:Mutex|SharedMutex)\s+(\w+)\s*"
    r"((?:COOL_ACQUIRED_(?:BEFORE|AFTER)\s*\([^)]*\)\s*)*)"
    r"(?:\{\s*LockRank::(k\w+)\s*,\s*\"([^\"]+)\"\s*\})?\s*;"
)

ENUM_RANK_RE = re.compile(r"\b(k\w+)\s*=\s*(-?\d+)")

YAML_RANK_RE = re.compile(r"^\s{2}(k\w+):\s*(-?\d+)\s*$")
YAML_ROW_RE = re.compile(
    r"^\s*-\s*\{\s*file:\s*(\S+?),\s*name:\s*\"([^\"]+)\",\s*"
    r"rank:\s*(k\w+)\s*\}\s*$"
)


def parse_lock_order_yaml() -> tuple[dict[str, int], list[tuple[str, str, str]]]:
    """Minimal parser for the constrained lock_order.yaml format."""
    ranks: dict[str, int] = {}
    rows: list[tuple[str, str, str]] = []
    section = None
    for line in LOCK_ORDER_YAML.read_text().splitlines():
        bare = line.split("#", 1)[0].rstrip()
        if not bare:
            continue
        if bare == "ranks:":
            section = "ranks"
            continue
        if bare == "mutexes:":
            section = "mutexes"
            continue
        if section == "ranks":
            m = YAML_RANK_RE.match(bare)
            if m:
                ranks[m.group(1)] = int(m.group(2))
        elif section == "mutexes":
            m = YAML_ROW_RE.match(bare)
            if m:
                rows.append((m.group(1), m.group(2), m.group(3)))
    return ranks, rows


def check_lock_ranks(findings: list[str]) -> None:
    if not LOCK_ORDER_YAML.exists():
        findings.append("scripts/lock_order.yaml: missing (rule 12)")
        return
    if not LOCK_RANK_H.exists():
        findings.append("src/common/lock_rank.h: missing (rule 12)")
        return

    # Enum <-> yaml rank tables must match exactly.
    enum_text = strip_comments(LOCK_RANK_H.read_text())
    enum_ranks = {m.group(1): int(m.group(2))
                  for m in ENUM_RANK_RE.finditer(enum_text)}
    yaml_ranks, yaml_rows = parse_lock_order_yaml()
    for name, value in sorted(enum_ranks.items()):
        if name not in yaml_ranks:
            findings.append(
                f"scripts/lock_order.yaml: rank {name} (= {value}) is in "
                f"lock_rank.h but missing from the yaml ranks table (rule 12)"
            )
        elif yaml_ranks[name] != value:
            findings.append(
                f"scripts/lock_order.yaml: rank {name} is {yaml_ranks[name]} "
                f"in the yaml but {value} in lock_rank.h (rule 12)"
            )
    for name in sorted(set(yaml_ranks) - set(enum_ranks)):
        findings.append(
            f"scripts/lock_order.yaml: rank {name} is not in the LockRank "
            f"enum (rule 12)"
        )

    # Collect every mutex member declaration in src/.
    declared: dict[str, tuple[str, str]] = {}  # qualified name -> (file, rank)
    by_file_member: dict[tuple[str, str], str] = {}  # (file, member) -> rank
    annotations: list[tuple[str, int, str, str, str, str]] = []
    for path in sorted(SRC.rglob("*.h")) + sorted(SRC.rglob("*.cc")):
        r = rel(path)
        if r in LOCK_RANK_EXEMPT:
            continue
        # Keep string literals: the lock *name* is one.
        text = strip_comments(path.read_text())
        for m in MUTEX_DECL_RE.finditer(text):
            member, anno, rank, qual = m.groups()
            lineno = text.count("\n", 0, m.start()) + 1
            if rank is None or qual is None:
                findings.append(
                    f"{r}:{lineno}: mutex {member} has no "
                    f"{{LockRank::kX, \"ns::Class::member\"}} initializer — "
                    f"every named lock in src/ carries an explicit rank "
                    f"(rule 12; pick from scripts/lock_order.yaml)"
                )
                continue
            if rank not in enum_ranks:
                findings.append(
                    f"{r}:{lineno}: mutex {member} uses unknown rank {rank} "
                    f"(rule 12)"
                )
                continue
            declared[qual] = (r, rank)
            by_file_member[(r, member)] = rank
            for am in re.finditer(
                r"COOL_ACQUIRED_(BEFORE|AFTER)\s*\(([^)]*)\)", anno or ""
            ):
                for arg in am.group(2).split(","):
                    arg = arg.strip()
                    if arg:
                        annotations.append(
                            (r, lineno, member, rank, am.group(1), arg)
                        )

    # Declarations <-> yaml rows must match one-for-one.
    yaml_by_name = {name: (file, rank) for file, name, rank in yaml_rows}
    for qual, (file, rank) in sorted(declared.items()):
        if qual not in yaml_by_name:
            findings.append(
                f"{file}: lock \"{qual}\" (rank {rank}) is declared in code "
                f"but missing from scripts/lock_order.yaml (rule 12)"
            )
            continue
        yfile, yrank = yaml_by_name[qual]
        if yrank != rank:
            findings.append(
                f"{file}: lock \"{qual}\" is rank {rank} in code but "
                f"{yrank} in scripts/lock_order.yaml (rule 12)"
            )
        if yfile != file:
            findings.append(
                f"scripts/lock_order.yaml: lock \"{qual}\" points at "
                f"{yfile} but is declared in {file} (rule 12)"
            )
    for name in sorted(set(yaml_by_name) - set(declared)):
        findings.append(
            f"scripts/lock_order.yaml: stale row \"{name}\" — no matching "
            f"declaration in src/ (rule 12)"
        )

    # COOL_ACQUIRED_BEFORE/AFTER must agree with the ranks. Resolve the
    # argument against the same file first, then a unique global basename.
    basename_ranks: dict[str, set[str]] = {}
    for (file, member), rank in by_file_member.items():
        basename_ranks.setdefault(member, set()).add(rank)
    for file, lineno, member, rank, direction, arg in annotations:
        arg_member = arg.split(".")[-1].split("->")[-1]
        other = by_file_member.get((file, arg_member))
        if other is None:
            # The annotated-against lock may live in another header (e.g. a
            # base class); only use the global basename if unambiguous.
            candidates = basename_ranks.get(arg_member, set())
            if len(candidates) != 1:
                continue
            other = next(iter(candidates))
        rv, ov = enum_ranks[rank], enum_ranks[other]
        ok = rv <= ov if direction == "AFTER" else rv >= ov
        if not ok:
            findings.append(
                f"{file}:{lineno}: {member} (rank {rank} = {rv}) is "
                f"COOL_ACQUIRED_{direction}({arg}) but {arg_member} has rank "
                f"{other} = {ov} — annotation contradicts the declared "
                f"hierarchy (rule 12, scripts/lock_order.yaml)"
            )


def main() -> int:
    findings: list[str] = []
    for path in code_files():
        clean = strip_comments_and_strings(path.read_text())
        check_raw_sync(path, clean, findings)
        check_raw_bytes(path, clean, findings)
        check_notify_under_lock(path, clean, findings)
        check_no_broadcast_on_data_path(path, clean, findings)
        check_no_recv_under_lock(path, clean, findings)
        check_new_delete(path, clean, findings)
        check_no_buffer_copies(path, clean, findings)
        check_reactor_owns_io(path, clean, findings)
        check_no_sleep_in_reactor_dirs(path, clean, findings)
        check_burst_data_path(path, clean, findings)
        check_scheduler_owns_queues(path, clean, findings)
    check_decoder_bounds(findings)
    check_layering(findings)
    check_lock_ranks(findings)
    check_per_conn_memory(findings)

    if findings:
        print(f"check_invariants: {len(findings)} violation(s)")
        for f in findings:
            print("  " + f)
        return 1
    print("check_invariants: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
