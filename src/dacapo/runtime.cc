#include "dacapo/runtime.h"

#include <deque>

#include "common/logging.h"

namespace cool::dacapo {

ModuleChain::ModuleChain(std::string name,
                         std::vector<std::unique_ptr<Module>> modules,
                         std::shared_ptr<PacketArena> arena)
    : name_(std::move(name)), arena_(std::move(arena)) {
  entries_.reserve(modules.size());
  for (auto& m : modules) {
    entries_.push_back(std::make_unique<Entry>(std::move(m)));
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    entries_[i]->port = std::make_unique<Port>(this, i);
  }
}

ModuleChain::~ModuleChain() { Stop(); }

Status ModuleChain::Start() {
  if (entries_.empty()) {
    return FailedPreconditionError("empty module chain");
  }
  if (started_.exchange(true)) {
    return FailedPreconditionError("chain already started");
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    entries_[i]->thread = Thread(
        [this, i](std::stop_token st) { RunModule(i, st); });
  }
  return Status::Ok();
}

void ModuleChain::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  for (auto& e : entries_) e->mailbox.Close();
  for (auto& e : entries_) {
    e->thread.request_stop();
    if (e->thread.joinable()) e->thread.join();
  }
}

bool ModuleChain::InjectDown(PacketPtr pkt) {
  if (entries_.empty() || stopped_.load()) return false;
  return entries_.front()->mailbox.PushDown(std::move(pkt));
}

void ModuleChain::InjectUp(PacketPtr pkt) {
  if (entries_.empty() || stopped_.load()) return;
  entries_.back()->mailbox.PushUp(std::move(pkt));
}

void ModuleChain::InjectControlUp(ControlMsg msg) {
  if (entries_.empty() || stopped_.load()) return;
  entries_.back()->mailbox.PushControl(Direction::kUp, std::move(msg));
}

std::vector<std::string> ModuleChain::DescribeModules() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    std::string line(e->module->name());
    const std::string stats = e->module->DescribeStats();
    if (!stats.empty()) {
      line += "{" + stats + "}";
    }
    out.push_back(std::move(line));
  }
  return out;
}

void ModuleChain::InjectControlDown(ControlMsg msg) {
  if (entries_.empty() || stopped_.load()) return;
  entries_.front()->mailbox.PushControl(Direction::kDown, std::move(msg));
}

void ModuleChain::Port::ForwardUp(PacketPtr pkt) {
  if (index_ == 0) {
    if (chain_->up_sink_) {
      chain_->up_sink_(std::move(pkt));
    } else {
      COOL_LOG(kWarn, "dacapo")
          << chain_->name_ << ": packet forwarded past top module dropped";
    }
    return;
  }
  chain_->entries_[index_ - 1]->mailbox.PushUp(std::move(pkt));
}

void ModuleChain::Port::ForwardDown(PacketPtr pkt) {
  if (index_ + 1 >= chain_->entries_.size()) {
    COOL_LOG(kWarn, "dacapo")
        << chain_->name_ << ": packet forwarded past bottom module dropped";
    return;
  }
  chain_->entries_[index_ + 1]->mailbox.PushDown(std::move(pkt));
}

void ModuleChain::Port::ForwardUpBatch(std::vector<PacketPtr>& pkts) {
  if (pkts.empty()) return;
  if (index_ == 0) {
    // The up-sink is per-packet by contract; the batch saving was already
    // realized on the mailbox hops below this point.
    for (auto& p : pkts) ForwardUp(std::move(p));
    pkts.clear();
    return;
  }
  chain_->entries_[index_ - 1]->mailbox.PushUpBatch(pkts);
}

void ModuleChain::Port::ForwardDownBatch(std::vector<PacketPtr>& pkts) {
  if (pkts.empty()) return;
  if (index_ + 1 >= chain_->entries_.size()) {
    COOL_LOG(kWarn, "dacapo")
        << chain_->name_ << ": " << pkts.size()
        << " packet(s) forwarded past bottom module dropped";
    pkts.clear();
    return;
  }
  chain_->entries_[index_ + 1]->mailbox.PushDownBatch(pkts);
}

void ModuleChain::Port::ControlUp(ControlMsg msg) {
  if (index_ == 0) {
    if (chain_->control_sink_) chain_->control_sink_(std::move(msg));
    return;
  }
  chain_->entries_[index_ - 1]->mailbox.PushControl(Direction::kUp,
                                                    std::move(msg));
}

void ModuleChain::Port::ControlDown(ControlMsg msg) {
  if (index_ + 1 >= chain_->entries_.size()) return;  // consumed at bottom
  chain_->entries_[index_ + 1]->mailbox.PushControl(Direction::kDown,
                                                    std::move(msg));
}

void ModuleChain::RunModule(std::size_t index, std::stop_token stop) {
  Entry& e = *entries_[index];
  Module& m = *e.module;
  ModulePort& port = *e.port;

  if (Status s = m.OnStart(port); !s.ok()) {
    COOL_LOG(kError, "dacapo")
        << name_ << "/" << m.name() << " failed to start: " << s;
    ControlMsg err;
    err.kind = ControlMsg::Kind::kError;
    err.text = std::string(m.name()) + ": " + s.ToString();
    port.ControlUp(std::move(err));
    return;
  }

  TimePoint last_tick = Now();
  const Duration kDefaultWait = milliseconds(50);

  // Pop in batches (one mailbox lock per train), dispatch per packet. A
  // batch may outlive the module's readiness for down-data: HandleData on
  // the first down-packet can close an ARQ window, making ReadyForDown()
  // false for the rest of the train. Such packets wait in `deferred` —
  // still FIFO ahead of anything in the mailbox, because accept_down stays
  // false until the stash drains. The extra in-flight down-data is bounded
  // by kPopBatchMax.
  constexpr std::size_t kPopBatchMax = 32;
  std::vector<Mailbox::PopResult> batch;
  batch.reserve(kPopBatchMax);
  std::deque<PacketPtr> deferred;

  while (!stop.stop_requested()) {
    const Duration tick_interval =
        m.TickInterval().value_or(kDefaultWait);
    while (!deferred.empty() && m.ReadyForDown()) {
      PacketPtr p = std::move(deferred.front());
      deferred.pop_front();
      m.HandleData(Direction::kDown, std::move(p), port);
    }
    const bool accept_down = deferred.empty() && m.ReadyForDown();
    const auto st =
        e.mailbox.PopBatch(accept_down, kPopBatchMax, tick_interval, batch);
    if (st == Mailbox::BatchStatus::kClosed) {
      m.OnStop(port);
      return;
    }
    for (auto& r : batch) {
      switch (r.kind) {
        case Mailbox::PopResult::Kind::kControl:
          m.HandleControl(r.control_dir, std::move(r.control), port);
          break;
        case Mailbox::PopResult::Kind::kData:
          if (r.data.dir == Direction::kDown && !m.ReadyForDown()) {
            deferred.push_back(std::move(r.data.pkt));
          } else {
            m.HandleData(r.data.dir, std::move(r.data.pkt), port);
          }
          break;
        case Mailbox::PopResult::Kind::kTimeout:
        case Mailbox::PopResult::Kind::kClosed:
          break;  // PopBatch reports these via its status, not items
      }
    }
    batch.clear();
    // Timer service even under continuous traffic.
    if (m.TickInterval().has_value() &&
        Now() - last_tick >= *m.TickInterval()) {
      m.OnTick(port);
      last_tick = Now();
    }
  }
  m.OnStop(port);
}

}  // namespace cool::dacapo
