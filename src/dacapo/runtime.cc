#include "dacapo/runtime.h"

#include <algorithm>

#include "common/logging.h"

namespace cool::dacapo {

ModuleChain::ModuleChain(std::string name,
                         std::vector<std::unique_ptr<Module>> modules,
                         std::shared_ptr<PacketArena> arena,
                         std::size_t burst_size)
    : name_(std::move(name)),
      arena_(std::move(arena)),
      modules_(std::move(modules)),
      burst_size_(std::clamp<std::size_t>(burst_size, 1,
                                          PacketBatch::kCapacity)) {
  ports_.reserve(modules_.size());
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    ports_.push_back(std::make_unique<Port>(this, i));
  }
  stall_.resize(modules_.size());
  last_tick_.resize(modules_.size());
  walking_.assign(modules_.size(), 0);
  popped_.reserve(burst_size_);
}

ModuleChain::~ModuleChain() { Stop(); }

Status ModuleChain::Start() {
  if (modules_.empty()) {
    return FailedPreconditionError("empty module chain");
  }
  if (started_.exchange(true)) {
    return FailedPreconditionError("chain already started");
  }
  engine_ = Thread([this](std::stop_token st) { RunEngine(st); });
  return Status::Ok();
}

void ModuleChain::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  mailbox_.Close();
  engine_.request_stop();
  if (engine_.joinable()) engine_.join();
}

bool ModuleChain::InjectDown(PacketPtr pkt) {
  if (modules_.empty() || stopped_.load()) return false;
  return mailbox_.PushDown(std::move(pkt), 0);
}

bool ModuleChain::InjectDownBatch(std::vector<PacketPtr>& pkts) {
  if (modules_.empty() || stopped_.load()) {
    pkts.clear();
    return false;
  }
  return mailbox_.PushDownBatch(pkts, 0);
}

void ModuleChain::InjectUp(PacketPtr pkt) {
  if (modules_.empty() || stopped_.load()) return;
  mailbox_.PushUp(std::move(pkt), modules_.size() - 1);
}

void ModuleChain::InjectControlUp(ControlMsg msg) {
  if (modules_.empty() || stopped_.load()) return;
  mailbox_.PushControl(Direction::kUp, std::move(msg), modules_.size() - 1);
}

void ModuleChain::InjectControlDown(ControlMsg msg) {
  if (modules_.empty() || stopped_.load()) return;
  mailbox_.PushControl(Direction::kDown, std::move(msg), 0);
}

std::vector<std::string> ModuleChain::DescribeModules() const {
  std::vector<std::string> out;
  out.reserve(modules_.size());
  for (const auto& m : modules_) {
    std::string line(m->name());
    const std::string stats = m->DescribeStats();
    if (!stats.empty()) {
      line += "{" + stats + "}";
    }
    out.push_back(std::move(line));
  }
  return out;
}

void ModuleChain::DeliverUpSink(PacketPtr pkt) {
  if (up_sink_) {
    up_sink_(std::move(pkt));
    return;
  }
  COOL_LOG(kWarn, "dacapo")
      << name_ << ": packet forwarded past top module dropped";
}

// --- thread-safe Port (OnStart/OnStop captures, T receive thread) ----------

void ModuleChain::Port::ForwardUp(PacketPtr pkt) {
  if (index_ == 0) {
    chain_->DeliverUpSink(std::move(pkt));
    return;
  }
  chain_->mailbox_.PushUp(std::move(pkt), index_ - 1);
}

void ModuleChain::Port::ForwardDown(PacketPtr pkt) {
  if (index_ + 1 >= chain_->modules_.size()) {
    COOL_LOG(kWarn, "dacapo")
        << chain_->name_ << ": packet forwarded past bottom module dropped";
    return;
  }
  chain_->mailbox_.PushDown(std::move(pkt), index_ + 1);
}

void ModuleChain::Port::ForwardUpBatch(std::vector<PacketPtr>& pkts) {
  if (pkts.empty()) return;
  if (index_ == 0) {
    // The up-sink is per-packet by contract; the batch saving was already
    // realized on the mailbox hop below this point.
    for (auto& p : pkts) chain_->DeliverUpSink(std::move(p));
    pkts.clear();
    return;
  }
  chain_->mailbox_.PushUpBatch(pkts, index_ - 1);
}

void ModuleChain::Port::ForwardDownBatch(std::vector<PacketPtr>& pkts) {
  if (pkts.empty()) return;
  if (index_ + 1 >= chain_->modules_.size()) {
    COOL_LOG(kWarn, "dacapo")
        << chain_->name_ << ": " << pkts.size()
        << " packet(s) forwarded past bottom module dropped";
    pkts.clear();
    return;
  }
  chain_->mailbox_.PushDownBatch(pkts, index_ + 1);
}

void ModuleChain::Port::ControlUp(ControlMsg msg) {
  if (index_ == 0) {
    if (chain_->control_sink_) chain_->control_sink_(std::move(msg));
    return;
  }
  chain_->mailbox_.PushControl(Direction::kUp, std::move(msg), index_ - 1);
}

void ModuleChain::Port::ControlDown(ControlMsg msg) {
  if (index_ + 1 >= chain_->modules_.size()) return;  // consumed at bottom
  chain_->mailbox_.PushControl(Direction::kDown, std::move(msg), index_ + 1);
}

// --- BurstPort (engine thread, synchronous run-to-completion) --------------

void ModuleChain::BurstPort::ForwardUp(PacketPtr pkt) {
  up_.push_back(std::move(pkt));
  if (up_.size() >= chain_->burst_size_) FlushUp();
}

void ModuleChain::BurstPort::ForwardDown(PacketPtr pkt) {
  down_.push_back(std::move(pkt));
  if (down_.size() >= chain_->burst_size_) FlushDown();
}

void ModuleChain::BurstPort::ForwardUpBatch(std::vector<PacketPtr>& pkts) {
  if (pkts.empty()) return;
  if (up_.empty()) {
    up_.swap(pkts);
  } else {
    for (auto& p : pkts) up_.push_back(std::move(p));
    pkts.clear();
  }
  FlushUp();
}

void ModuleChain::BurstPort::ForwardDownBatch(std::vector<PacketPtr>& pkts) {
  if (pkts.empty()) return;
  if (down_.empty()) {
    down_.swap(pkts);
  } else {
    for (auto& p : pkts) down_.push_back(std::move(p));
    pkts.clear();
  }
  FlushDown();
}

void ModuleChain::BurstPort::ControlUp(ControlMsg msg) {
  Flush();  // control may not overtake data already emitted through us
  chain_->RouteControlUpFrom(index_, std::move(msg));
}

void ModuleChain::BurstPort::ControlDown(ControlMsg msg) {
  Flush();
  if (index_ + 1 >= chain_->modules_.size()) return;  // consumed at bottom
  chain_->WalkControl(Direction::kDown, index_ + 1, std::move(msg));
}

void ModuleChain::BurstPort::WaitArena(Duration d) {
  // Push out whatever this module already emitted (their buffers return to
  // the arena once the bottom releases them), let the engine service
  // up-traffic (ACKs opening windows below), then back off.
  Flush();
  chain_->PumpWhileWaiting();
  PreciseSleep(d);
}

void ModuleChain::BurstPort::Flush() {
  FlushDown();
  FlushUp();
}

void ModuleChain::BurstPort::FlushDown() {
  if (down_.empty()) return;
  std::vector<PacketPtr> local;
  local.swap(down_);
  chain_->WalkDown(index_ + 1, local);
}

void ModuleChain::BurstPort::FlushUp() {
  if (up_.empty()) return;
  std::vector<PacketPtr> local;
  local.swap(up_);
  if (index_ == 0) {
    for (auto& p : local) chain_->DeliverUpSink(std::move(p));
    return;
  }
  chain_->WalkUp(index_ - 1, local);
}

// --- engine ---------------------------------------------------------------

void ModuleChain::WalkDown(std::size_t index, std::vector<PacketPtr>& pkts) {
  if (pkts.empty()) return;
  if (index >= modules_.size()) {
    COOL_LOG(kWarn, "dacapo")
        << name_ << ": " << pkts.size()
        << " packet(s) forwarded past bottom module dropped";
    pkts.clear();
    return;
  }
  auto& stall = stall_[index];
  if (!stall.empty() || walking_[index]) {
    // FIFO: new down-traffic may not overtake packets already stalled at
    // (or in flight through) this module.
    for (auto& p : pkts) stall.push_back(std::move(p));
    pkts.clear();
    return;
  }
  Module& m = *modules_[index];
  walking_[index] = 1;
  std::size_t cursor = 0;
  while (cursor < pkts.size() && m.ReadyForDown()) {
    PacketBatch batch;
    while (cursor < pkts.size() && batch.size() < burst_size_) {
      batch.PushBack(std::move(pkts[cursor++]));
    }
    BurstPort port(this, index);
    m.ProcessBurst(Direction::kDown, batch, port);
    port.Flush();
    if (!batch.empty()) {
      // Truncated burst: the unconsumed tail stalls, FIFO ahead of
      // everything that arrives later.
      for (auto& p : batch) stall.push_back(std::move(p));
      batch.Clear();
      break;
    }
  }
  walking_[index] = 0;
  for (; cursor < pkts.size(); ++cursor) {
    stall.push_back(std::move(pkts[cursor]));
  }
  pkts.clear();
}

void ModuleChain::WalkUp(std::size_t index, std::vector<PacketPtr>& pkts) {
  if (pkts.empty()) return;
  if (index >= modules_.size()) {
    pkts.clear();
    return;
  }
  Module& m = *modules_[index];
  std::size_t cursor = 0;
  while (cursor < pkts.size()) {
    PacketBatch batch;
    while (cursor < pkts.size() && batch.size() < burst_size_) {
      batch.PushBack(std::move(pkts[cursor++]));
    }
    BurstPort port(this, index);
    m.ProcessBurst(Direction::kUp, batch, port);
    port.Flush();
    if (!batch.empty()) {
      // Up bursts must be consumed in full (no flow control upward).
      COOL_LOG(kWarn, "dacapo")
          << name_ << "/" << m.name() << ": " << batch.size()
          << " unconsumed up packet(s) dropped";
      batch.Clear();
    }
  }
  pkts.clear();
}

void ModuleChain::WalkControl(Direction dir, std::size_t index,
                              ControlMsg msg) {
  if (index >= modules_.size()) return;
  BurstPort port(this, index);
  modules_[index]->HandleControl(dir, std::move(msg), port);
  port.Flush();
}

void ModuleChain::RouteControlUpFrom(std::size_t index, ControlMsg msg) {
  if (index == 0) {
    if (control_sink_) control_sink_(std::move(msg));
    return;
  }
  WalkControl(Direction::kUp, index - 1, std::move(msg));
}

void ModuleChain::DrainStalls() {
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    auto& stall = stall_[i];
    if (stall.empty() || walking_[i] || !modules_[i]->ReadyForDown()) {
      continue;
    }
    std::vector<PacketPtr> run;
    run.reserve(stall.size());
    while (!stall.empty()) {
      run.push_back(std::move(stall.front()));
      stall.pop_front();
    }
    WalkDown(i, run);
  }
}

bool ModuleChain::StallsEmpty() const {
  for (const auto& s : stall_) {
    if (!s.empty()) return false;
  }
  return true;
}

void ModuleChain::ServiceTicks() {
  const TimePoint now = Now();
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    const auto interval = modules_[i]->TickInterval();
    if (!interval.has_value()) continue;
    if (now - last_tick_[i] < *interval) continue;
    BurstPort port(this, i);
    modules_[i]->OnTick(port);
    port.Flush();
    last_tick_[i] = Now();
  }
}

Duration ModuleChain::PopWait() const {
  Duration wait = milliseconds(50);
  for (const auto& m : modules_) {
    if (const auto interval = m->TickInterval();
        interval.has_value() && *interval < wait) {
      wait = *interval;
    }
  }
  return wait;
}

void ModuleChain::DispatchPopped(std::vector<Mailbox::PopResult>& popped,
                                 std::vector<PacketPtr>& run) {
  std::size_t i = 0;
  while (i < popped.size()) {
    auto& r = popped[i];
    if (r.kind == Mailbox::PopResult::Kind::kControl) {
      WalkControl(r.control_dir, r.control_origin, std::move(r.control));
      ++i;
      continue;
    }
    if (r.kind != Mailbox::PopResult::Kind::kData) {
      ++i;  // PopBatch reports timeout/closed via its status, not items
      continue;
    }
    const Direction dir = r.data.dir;
    const std::size_t origin = r.data.origin;
    run.clear();
    while (i < popped.size() &&
           popped[i].kind == Mailbox::PopResult::Kind::kData &&
           popped[i].data.dir == dir && popped[i].data.origin == origin) {
      run.push_back(std::move(popped[i].data.pkt));
      ++i;
    }
    if (dir == Direction::kDown) {
      WalkDown(origin, run);
    } else {
      WalkUp(origin, run);
    }
  }
}

void ModuleChain::PumpWhileWaiting() {
  // Service control and up-traffic only (never new down-data: the waiter
  // is mid-burst on the down path), then re-feed any stalls that opened.
  // Local scratch: the engine's popped_ may be mid-iteration above us.
  std::vector<Mailbox::PopResult> popped;
  const auto st = mailbox_.PopBatch(/*accept_down=*/false, burst_size_,
                                    Duration{}, popped);
  if (st == Mailbox::BatchStatus::kItems) {
    std::vector<PacketPtr> run;
    DispatchPopped(popped, run);
  }
  DrainStalls();
}

void ModuleChain::RunEngine(std::stop_token stop) {
  std::size_t started_count = 0;
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    if (Status s = modules_[i]->OnStart(*ports_[i]); !s.ok()) {
      COOL_LOG(kError, "dacapo")
          << name_ << "/" << modules_[i]->name() << " failed to start: " << s;
      ControlMsg err;
      err.kind = ControlMsg::Kind::kError;
      err.text = std::string(modules_[i]->name()) + ": " + s.ToString();
      RouteControlUpFrom(i, std::move(err));
      // A chain with a hole in it cannot carry traffic: wind down what
      // already started and refuse service (injection fails from here on).
      mailbox_.Close();
      for (std::size_t j = 0; j < started_count; ++j) {
        modules_[j]->OnStop(*ports_[j]);
      }
      return;
    }
    ++started_count;
    last_tick_[i] = Now();
  }

  std::vector<PacketPtr> run;
  while (!stop.stop_requested()) {
    DrainStalls();
    // While anything is stalled the engine accepts no new down-data, so
    // stalled packets stay FIFO ahead of the mailbox.
    const bool accept_down = StallsEmpty();
    const auto st =
        mailbox_.PopBatch(accept_down, burst_size_, PopWait(), popped_);
    if (st == Mailbox::BatchStatus::kClosed) break;
    if (st == Mailbox::BatchStatus::kItems) {
      DispatchPopped(popped_, run);
    }
    // Timer service even under continuous traffic.
    ServiceTicks();
  }

  for (std::size_t i = 0; i < modules_.size(); ++i) {
    modules_[i]->OnStop(*ports_[i]);
  }
}

}  // namespace cool::dacapo
