// Da CaPo packets and the shared packet arena (paper Fig. 6: "The packets
// are situated in shared memory accessible by Da CaPo modules"; modules
// exchange *pointers* to packets over message queues).
//
// A Packet is a fixed-capacity buffer with headroom: C-modules prepend
// their protocol headers in place on the way down (PushHeader) and strip
// them on the way up (PopHeader), so payload bytes are written once by the
// A-module and never copied again inside the chain.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"

namespace cool::dacapo {

class PacketArena;

class Packet {
 public:
  // Headroom for stacked module headers; 16 modules x 8 bytes fits easily.
  static constexpr std::size_t kHeadroom = 128;

  explicit Packet(std::size_t payload_capacity)
      : buf_(kHeadroom + payload_capacity),
        data_off_(kHeadroom),
        data_len_(0) {}

  // --- payload ------------------------------------------------------------
  // Replaces the packet content (resets any pushed headers).
  Status SetPayload(std::span<const std::uint8_t> payload) {
    if (payload.size() > buf_.size() - kHeadroom) {
      return InvalidArgumentError("payload exceeds packet capacity");
    }
    data_off_ = kHeadroom;
    data_len_ = payload.size();
    std::copy(payload.begin(), payload.end(),
              buf_.begin() + static_cast<std::ptrdiff_t>(data_off_));
    return Status::Ok();
  }

  std::span<std::uint8_t> Data() noexcept {
    return {buf_.data() + data_off_, data_len_};
  }
  std::span<const std::uint8_t> Data() const noexcept {
    return {buf_.data() + data_off_, data_len_};
  }
  std::size_t size() const noexcept { return data_len_; }

  // --- header stack ---------------------------------------------------------
  Status PushHeader(std::span<const std::uint8_t> header) {
    if (header.size() > data_off_) {
      return ResourceExhaustedError("packet headroom exhausted");
    }
    data_off_ -= header.size();
    data_len_ += header.size();
    std::copy(header.begin(), header.end(),
              buf_.begin() + static_cast<std::ptrdiff_t>(data_off_));
    return Status::Ok();
  }

  // Exposes the first n octets and removes them from the packet view.
  Result<std::span<const std::uint8_t>> PopHeader(std::size_t n) {
    if (n > data_len_) return Status(ProtocolError("header pop underrun"));
    std::span<const std::uint8_t> header{buf_.data() + data_off_, n};
    data_off_ += n;
    data_len_ -= n;
    return header;
  }

  // Extends the packet at the tail (trailers, e.g. checksums).
  Status PushTrailer(std::span<const std::uint8_t> trailer) {
    if (data_off_ + data_len_ + trailer.size() > buf_.size()) {
      return ResourceExhaustedError("packet tailroom exhausted");
    }
    std::copy(trailer.begin(), trailer.end(),
              buf_.begin() +
                  static_cast<std::ptrdiff_t>(data_off_ + data_len_));
    data_len_ += trailer.size();
    return Status::Ok();
  }

  Result<std::span<const std::uint8_t>> PopTrailer(std::size_t n) {
    if (n > data_len_) return Status(ProtocolError("trailer pop underrun"));
    data_len_ -= n;
    return std::span<const std::uint8_t>{
        buf_.data() + data_off_ + data_len_, n};
  }

  // --- metadata --------------------------------------------------------------
  TimePoint created_at() const noexcept { return created_at_; }
  void set_created_at(TimePoint t) noexcept { created_at_ = t; }

  std::size_t capacity() const noexcept { return buf_.size() - kHeadroom; }

 private:
  friend class PacketArena;

  void Reset() noexcept {
    data_off_ = kHeadroom;
    data_len_ = 0;
    created_at_ = TimePoint{};
  }

  std::vector<std::uint8_t> buf_;
  std::size_t data_off_;
  std::size_t data_len_;
  TimePoint created_at_{};
};

// Deleter that returns packets to their arena instead of freeing them.
struct PacketReturner {
  PacketArena* arena = nullptr;
  void operator()(Packet* p) const noexcept;
};

using PacketPtr = std::unique_ptr<Packet, PacketReturner>;

// Pool of reusable packets ("shared memory" of the original system). The
// arena bounds total packet memory: Allocate fails with kResourceExhausted
// when the pool is fully in flight, which the resource manager uses as the
// memory-admission backstop.
class PacketArena {
 public:
  PacketArena(std::size_t packet_count, std::size_t payload_capacity);
  ~PacketArena();

  PacketArena(const PacketArena&) = delete;
  PacketArena& operator=(const PacketArena&) = delete;

  // Pops a packet from the free list.
  Result<PacketPtr> Allocate();

  // Allocates a packet carrying `payload`.
  Result<PacketPtr> Make(std::span<const std::uint8_t> payload);

  // Deep copy (used by ARQ modules to keep retransmission copies).
  Result<PacketPtr> Clone(const Packet& src);

  std::size_t capacity() const noexcept { return all_.size(); }
  std::size_t in_flight() const;
  std::size_t payload_capacity() const noexcept { return payload_capacity_; }

 private:
  friend struct PacketReturner;
  void Return(Packet* p) noexcept;

  const std::size_t payload_capacity_;
  mutable Mutex mu_;
  std::vector<std::unique_ptr<Packet>> all_;  // immutable after construction
  std::vector<Packet*> free_ COOL_GUARDED_BY(mu_);
};

}  // namespace cool::dacapo
