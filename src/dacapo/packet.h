// Da CaPo packets and the shared packet arena (paper Fig. 6: "The packets
// are situated in shared memory accessible by Da CaPo modules"; modules
// exchange *pointers* to packets over message queues).
//
// A Packet is a fixed-capacity buffer with headroom: C-modules prepend
// their protocol headers in place on the way down (PushHeader) and strip
// them on the way up (PopHeader), so payload bytes are written once by the
// A-module and never copied again inside the chain.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"

namespace cool::dacapo {

class PacketArena;

class Packet {
 public:
  // Headroom for stacked module headers; 16 modules x 8 bytes fits easily.
  static constexpr std::size_t kHeadroom = 128;

  explicit Packet(std::size_t payload_capacity)
      : buf_(kHeadroom + payload_capacity),
        data_off_(kHeadroom),
        data_len_(0) {}

  // --- payload ------------------------------------------------------------
  // Replaces the packet content (resets any pushed headers).
  Status SetPayload(std::span<const std::uint8_t> payload) {
    if (payload.size() > buf_.size() - kHeadroom) {
      return InvalidArgumentError("payload exceeds packet capacity");
    }
    data_off_ = kHeadroom;
    data_len_ = payload.size();
    std::copy(payload.begin(), payload.end(),
              buf_.begin() + static_cast<std::ptrdiff_t>(data_off_));
    return Status::Ok();
  }

  // Zero-copy fill seam: resets the packet (like SetPayload) to an
  // *uninitialized* payload of `n` octets and exposes it for writing, so
  // transports can receive and encoders can marshal directly into arena
  // packet memory instead of staging through an intermediate buffer.
  Result<std::span<std::uint8_t>> WritablePayload(std::size_t n) {
    if (n > buf_.size() - kHeadroom) {
      return Status(InvalidArgumentError("payload exceeds packet capacity"));
    }
    data_off_ = kHeadroom;
    data_len_ = n;
    return std::span<std::uint8_t>{buf_.data() + data_off_, data_len_};
  }

  std::span<std::uint8_t> Data() noexcept {
    return {buf_.data() + data_off_, data_len_};
  }
  std::span<const std::uint8_t> Data() const noexcept {
    return {buf_.data() + data_off_, data_len_};
  }
  std::size_t size() const noexcept { return data_len_; }

  // --- header stack ---------------------------------------------------------
  Status PushHeader(std::span<const std::uint8_t> header) {
    if (header.size() > data_off_) {
      return ResourceExhaustedError("packet headroom exhausted");
    }
    data_off_ -= header.size();
    data_len_ += header.size();
    std::copy(header.begin(), header.end(),
              buf_.begin() + static_cast<std::ptrdiff_t>(data_off_));
    return Status::Ok();
  }

  // Exposes the first n octets and removes them from the packet view.
  Result<std::span<const std::uint8_t>> PopHeader(std::size_t n) {
    if (n > data_len_) return Status(ProtocolError("header pop underrun"));
    std::span<const std::uint8_t> header{buf_.data() + data_off_, n};
    data_off_ += n;
    data_len_ -= n;
    return header;
  }

  // Extends the packet at the tail (trailers, e.g. checksums; also the
  // in-place assembly seam: append message pieces one after another).
  // Subtraction form: data_off_ + data_len_ <= buf_.size() by invariant,
  // but a huge trailer must not wrap the sum past the bounds test.
  Status PushTrailer(std::span<const std::uint8_t> trailer) {
    if (trailer.size() > buf_.size() - data_off_ - data_len_) {
      return ResourceExhaustedError("packet tailroom exhausted");
    }
    std::copy(trailer.begin(), trailer.end(),
              buf_.begin() +
                  static_cast<std::ptrdiff_t>(data_off_ + data_len_));
    data_len_ += trailer.size();
    return Status::Ok();
  }

  Result<std::span<const std::uint8_t>> PopTrailer(std::size_t n) {
    if (n > data_len_) return Status(ProtocolError("trailer pop underrun"));
    data_len_ -= n;
    return std::span<const std::uint8_t>{
        buf_.data() + data_off_ + data_len_, n};
  }

  // --- metadata --------------------------------------------------------------
  TimePoint created_at() const noexcept { return created_at_; }
  void set_created_at(TimePoint t) noexcept { created_at_ = t; }

  std::size_t capacity() const noexcept { return buf_.size() - kHeadroom; }

 private:
  friend class PacketArena;
  friend class PacketCache;

  void Reset() noexcept {
    data_off_ = kHeadroom;
    data_len_ = 0;
    created_at_ = TimePoint{};
  }

  std::vector<std::uint8_t> buf_;
  std::size_t data_off_;
  std::size_t data_len_;
  TimePoint created_at_{};
};

// Deleter that returns packets to their arena instead of freeing them.
struct PacketReturner {
  PacketArena* arena = nullptr;
  void operator()(Packet* p) const noexcept;
};

using PacketPtr = std::unique_ptr<Packet, PacketReturner>;

// Pool of reusable packets ("shared memory" of the original system). The
// arena bounds total packet memory: Allocate fails with kResourceExhausted
// when the pool is fully in flight, which the resource manager uses as the
// memory-admission backstop.
class PacketArena {
 public:
  PacketArena(std::size_t packet_count, std::size_t payload_capacity);
  ~PacketArena();

  PacketArena(const PacketArena&) = delete;
  PacketArena& operator=(const PacketArena&) = delete;

  // Pops a packet from the free list.
  Result<PacketPtr> Allocate();

  // Allocates a packet carrying `payload`.
  Result<PacketPtr> Make(std::span<const std::uint8_t> payload);

  // Deep copy (used by ARQ modules to keep retransmission copies).
  Result<PacketPtr> Clone(const Packet& src);

  std::size_t capacity() const noexcept { return all_.size(); }
  std::size_t in_flight() const;
  std::size_t payload_capacity() const noexcept { return payload_capacity_; }

 private:
  friend struct PacketReturner;
  friend class PacketCache;
  void Return(Packet* p) noexcept;

  // Batch refill/flush used by PacketCache: up to `n` free packets move
  // into / all of `batch` moves out of the free list under one lock
  // acquisition. The raw pointers stay owned by all_.
  std::size_t TakeFreeBatch(std::size_t n, std::vector<Packet*>& out);
  void PutFreeBatch(std::vector<Packet*>& batch);

  const std::size_t payload_capacity_;
  mutable Mutex mu_{LockRank::kLeaf, "dacapo::PacketArena::mu_"};
  std::vector<std::unique_ptr<Packet>> all_;  // immutable after construction
  std::vector<Packet*> free_ COOL_GUARDED_BY(mu_);
};

// A small cache of free packets in front of a shared PacketArena, refilled
// and flushed in batches so one arena-mutex acquisition covers `batch_size`
// allocations. One cache per data-path endpoint (the application send seam,
// a T module's receive loop) keeps the hot allocation path off the shared
// free-list lock. Packets allocated here still carry the arena deleter, so
// they may be released anywhere, any time, without touching the cache.
// The arena must outlive the cache (it does: caches live in modules or
// planes, both owned by the chain that owns the arena).
class PacketCache {
 public:
  explicit PacketCache(PacketArena& arena, std::size_t batch_size = 16)
      : arena_(&arena), batch_size_(batch_size) {
    local_.reserve(batch_size_);
  }
  ~PacketCache() { Flush(); }

  PacketCache(const PacketCache&) = delete;
  PacketCache& operator=(const PacketCache&) = delete;

  // As PacketArena::Allocate, refilling from the arena in batches.
  Result<PacketPtr> Allocate();
  // As PacketArena::Make.
  Result<PacketPtr> Make(std::span<const std::uint8_t> payload);

  // Returns every cached free packet to the arena.
  void Flush();

  PacketArena& arena() noexcept { return *arena_; }

 private:
  PacketArena* const arena_;
  const std::size_t batch_size_;
  Mutex mu_{LockRank::kLeaf, "dacapo::PacketCache::mu_"};
  std::vector<Packet*> local_ COOL_GUARDED_BY(mu_);
};

}  // namespace cool::dacapo
