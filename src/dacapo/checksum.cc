#include "dacapo/checksum.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define COOL_CRC32_PCLMUL 1
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#define COOL_CRC32_ARM 1
#endif

namespace cool::dacapo {

std::uint8_t ParityByte(std::span<const std::uint8_t> data) noexcept {
  std::uint8_t p = 0;
  for (std::uint8_t b : data) p ^= b;
  return p;
}

std::uint16_t Crc16(std::span<const std::uint8_t> data) noexcept {
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t b : data) {
    crc ^= static_cast<std::uint16_t>(b) << 8;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x8000) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                           : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

namespace {

constexpr bool kBigEndian = __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__;

// Alignment-safe little-endian word loads: memcpy compiles to a plain
// (unaligned-tolerant) load on every target we build for, without the UB
// of a misaligned pointer cast. checksum.cc is rule-2-allowlisted for
// exactly these kernels (scripts/check_invariants.py).
inline std::uint32_t LoadLe32(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  if constexpr (kBigEndian) v = __builtin_bswap32(v);
  return v;
}

// Eight slicing tables: t[0] is the classic byte-at-a-time table; t[k]
// advances a byte seen k positions earlier through k additional zero
// bytes, so eight lookups retire eight input octets per step.
struct Crc32Tables {
  std::uint32_t t[8][256];
};

const Crc32Tables& SlicingTables() noexcept {
  static const Crc32Tables tables = [] {
    Crc32Tables tb{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      tb.t[0][i] = c;
    }
    for (int k = 1; k < 8; ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        const std::uint32_t prev = tb.t[k - 1][i];
        tb.t[k][i] = (prev >> 8) ^ tb.t[0][prev & 0xFF];
      }
    }
    return tb;
  }();
  return tables;
}

// All Update kernels take and return the raw CRC state (pre/post inversion
// is the public wrappers' job), so they compose for hardware-head +
// scalar-tail splits.
std::uint32_t ScalarUpdate(const std::uint8_t* p, std::size_t n,
                           std::uint32_t c) noexcept {
  const auto& t = SlicingTables().t;
  for (std::size_t i = 0; i < n; ++i) {
    c = t[0][(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c;
}

std::uint32_t Slicing8Update(const std::uint8_t* p, std::size_t n,
                             std::uint32_t c) noexcept {
  const auto& t = SlicingTables().t;
  while (n >= 8) {
    const std::uint32_t lo = c ^ LoadLe32(p);
    const std::uint32_t hi = LoadLe32(p + 4);
    c = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
        t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
  }
  return c;
}

#if defined(COOL_CRC32_PCLMUL)

// CRC-32 (IEEE, reflected) via PCLMULQDQ carry-less-multiply folding — the
// zlib/Chromium crc32_simd scheme: fold four 128-bit lanes per 64-byte
// block with k1/k2, collapse lanes with k3/k4, reduce 128 -> 64 bits with
// k5, then Barrett-reduce to the 32-bit remainder. Requires n >= 64 and
// n % 16 == 0; the dispatcher feeds tails to slicing-by-8.
__attribute__((target("pclmul,sse4.1"))) std::uint32_t PclmulBlocks(
    const std::uint8_t* buf, std::size_t len, std::uint32_t crc) noexcept {
  const __m128i k1k2 =
      _mm_set_epi64x(0x01c6e41596, 0x0154442bd4);  // x^(4*128+64), x^(4*128)
  const __m128i k3k4 =
      _mm_set_epi64x(0x00ccaa009e, 0x01751997d0);  // x^(128+64), x^128
  const __m128i k5 = _mm_set_epi64x(0, 0x0163cd6124);       // x^64
  const __m128i poly = _mm_set_epi64x(0x01f7011641, 0x01db710641);

  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
  __m128i x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  __m128i x0 = k1k2;
  buf += 64;
  len -= 64;

  while (len >= 64) {
    __m128i x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    __m128i x6 = _mm_clmulepi64_si128(x2, x0, 0x00);
    __m128i x7 = _mm_clmulepi64_si128(x3, x0, 0x00);
    __m128i x8 = _mm_clmulepi64_si128(x4, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x2 = _mm_clmulepi64_si128(x2, x0, 0x11);
    x3 = _mm_clmulepi64_si128(x3, x0, 0x11);
    x4 = _mm_clmulepi64_si128(x4, x0, 0x11);
    x1 = _mm_xor_si128(
        _mm_xor_si128(x1, x5),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00)));
    x2 = _mm_xor_si128(
        _mm_xor_si128(x2, x6),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10)));
    x3 = _mm_xor_si128(
        _mm_xor_si128(x3, x7),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20)));
    x4 = _mm_xor_si128(
        _mm_xor_si128(x4, x8),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30)));
    buf += 64;
    len -= 64;
  }

  // Collapse the four lanes into one 128-bit accumulator.
  x0 = k3k4;
  __m128i x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), x5);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), x5);

  while (len >= 16) {
    x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf));
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
    buf += 16;
    len -= 16;
  }

  // Fold 128 -> 64 bits.
  x2 = _mm_clmulepi64_si128(x1, x0, 0x10);
  x3 = _mm_setr_epi32(~0, 0, ~0, 0);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, x2);
  x0 = k5;
  x2 = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, x3);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);

  // Barrett reduction to the 32-bit remainder.
  x0 = poly;
  x2 = _mm_and_si128(x1, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x10);
  x2 = _mm_and_si128(x2, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);
  return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

bool HwProbe() noexcept {
  return __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
}

std::uint32_t HwUpdate(const std::uint8_t* p, std::size_t n,
                       std::uint32_t c) noexcept {
  if (n >= 64) {
    const std::size_t chunk = n & ~static_cast<std::size_t>(15);
    c = PclmulBlocks(p, chunk, c);
    p += chunk;
    n -= chunk;
  }
  return Slicing8Update(p, n, c);
}

#elif defined(COOL_CRC32_ARM)

bool HwProbe() noexcept { return true; }  // guaranteed by __ARM_FEATURE_CRC32

std::uint32_t HwUpdate(const std::uint8_t* p, std::size_t n,
                       std::uint32_t c) noexcept {
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, sizeof w);
    if constexpr (kBigEndian) w = __builtin_bswap64(w);
    c = __crc32d(c, w);
    p += 8;
    n -= 8;
  }
  while (n-- > 0) c = __crc32b(c, *p++);
  return c;
}

#else

bool HwProbe() noexcept { return false; }

std::uint32_t HwUpdate(const std::uint8_t* p, std::size_t n,
                       std::uint32_t c) noexcept {
  return Slicing8Update(p, n, c);
}

#endif

using Crc32Fn = std::uint32_t (*)(const std::uint8_t*, std::size_t,
                                  std::uint32_t) noexcept;

// Picks the kernel once per process. The hardware path must reproduce
// slicing-by-8 on a self-check sweep (several lengths and alignments over
// a pseudo-random buffer) before it is trusted; a mismatch means a broken
// fold-constant table or an emulator without the instruction semantics we
// expect, and the portable kernel takes over silently.
Crc32Fn PickCrc32() noexcept {
  if (!HwProbe()) return &Slicing8Update;
  std::uint8_t buf[512];
  std::uint32_t lcg = 0x1234567u;
  for (auto& b : buf) {
    lcg = lcg * 1664525u + 1013904223u;
    b = static_cast<std::uint8_t>(lcg >> 24);
  }
  for (std::size_t offset : {std::size_t{0}, std::size_t{1}, std::size_t{5}}) {
    for (std::size_t len :
         {std::size_t{64}, std::size_t{96}, std::size_t{251},
          std::size_t{sizeof buf} - offset}) {
      const std::uint32_t want = Slicing8Update(buf + offset, len, 0xFFFFFFFFu);
      if (HwUpdate(buf + offset, len, 0xFFFFFFFFu) != want) {
        return &Slicing8Update;
      }
    }
  }
  return &HwUpdate;
}

}  // namespace

std::uint32_t Crc32Scalar(std::span<const std::uint8_t> data) noexcept {
  return ~ScalarUpdate(data.data(), data.size(), 0xFFFFFFFFu);
}

std::uint32_t Crc32Slicing8(std::span<const std::uint8_t> data) noexcept {
  return ~Slicing8Update(data.data(), data.size(), 0xFFFFFFFFu);
}

bool Crc32HwAvailable() noexcept {
  static const bool available = HwProbe();
  return available;
}

std::uint32_t Crc32Hw(std::span<const std::uint8_t> data) noexcept {
  return ~HwUpdate(data.data(), data.size(), 0xFFFFFFFFu);
}

std::uint32_t Crc32(std::span<const std::uint8_t> data) noexcept {
  static const Crc32Fn fn = PickCrc32();
  return ~fn(data.data(), data.size(), 0xFFFFFFFFu);
}

namespace {

constexpr std::uint64_t kXorSeedMix = 0x2545F4914F6CDD1DULL;

inline std::uint64_t XorShiftStep(std::uint64_t s) noexcept {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

}  // namespace

void XorCipherScalar(std::span<std::uint8_t> data,
                     std::uint64_t key) noexcept {
  // xorshift64 keystream; one state step yields 8 keystream octets.
  std::uint64_t state = key ^ kXorSeedMix;
  std::size_t i = 0;
  while (i < data.size()) {
    state = XorShiftStep(state);
    std::uint64_t ks = state;
    for (int k = 0; k < 8 && i < data.size(); ++k, ++i) {
      data[i] ^= static_cast<std::uint8_t>(ks);
      ks >>= 8;
    }
  }
}

void XorCipher(std::span<std::uint8_t> data, std::uint64_t key) noexcept {
  // Word-at-a-time: the keystream octets are the state low-byte-first, so
  // on a little-endian host one 64-bit XOR applies a whole state step; big
  // endian swaps the keystream word, not the data.
  std::uint64_t state = key ^ kXorSeedMix;
  std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    state = XorShiftStep(state);
    std::uint64_t w;
    std::memcpy(&w, p, sizeof w);
    if constexpr (kBigEndian) {
      w ^= __builtin_bswap64(state);
    } else {
      w ^= state;
    }
    std::memcpy(p, &w, sizeof w);
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    state = XorShiftStep(state);
    std::uint64_t ks = state;
    while (n-- > 0) {
      *p++ ^= static_cast<std::uint8_t>(ks);
      ks >>= 8;
    }
  }
}

}  // namespace cool::dacapo
