#include "dacapo/checksum.h"

#include <array>

namespace cool::dacapo {

std::uint8_t ParityByte(std::span<const std::uint8_t> data) noexcept {
  std::uint8_t p = 0;
  for (std::uint8_t b : data) p ^= b;
  return p;
}

std::uint16_t Crc16(std::span<const std::uint8_t> data) noexcept {
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t b : data) {
    crc ^= static_cast<std::uint16_t>(b) << 8;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x8000) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                           : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

namespace {

std::array<std::uint32_t, 256> MakeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(std::span<const std::uint8_t> data) noexcept {
  static const std::array<std::uint32_t, 256> kTable = MakeCrc32Table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) {
    c = kTable[(c ^ b) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void XorCipher(std::span<std::uint8_t> data, std::uint64_t key) noexcept {
  // xorshift64 keystream; one state step yields 8 keystream octets.
  std::uint64_t state = key ^ 0x2545F4914F6CDD1DULL;
  std::size_t i = 0;
  while (i < data.size()) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    std::uint64_t ks = state;
    for (int k = 0; k < 8 && i < data.size(); ++k, ++i) {
      data[i] ^= static_cast<std::uint8_t>(ks);
      ks >>= 8;
    }
  }
}

}  // namespace cool::dacapo
