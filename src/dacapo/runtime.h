// Module-graph runtime: instantiates a configured chain of modules and
// drives it with one run-to-completion engine thread (BESS-style bursts,
// DESIGN.md §12). The engine pops a packet train from the single
// chain-level mailbox and walks it through every module — ProcessBurst at
// each hop, emissions flushed synchronously to the next hop — before
// touching the queue again, so a train crosses the whole chain with one
// queue round-trip instead of one per module (the paper's Fig. 6 design,
// then PR 3's per-module batched mailboxes).
//
// Chain layout is top (application / layer A side) to bottom (transport /
// layer T side):   [0] A-module, [1..n-2] C-modules, [n-1] T-module.
// Degenerate chains (no A, or no T during unit tests) are supported via the
// up-sink and by injecting packets at either end.
//
// Threads other than the engine (the T module's receive loop, application
// senders) enter the chain through the thread-safe ModulePorts / Inject
// methods, which push origin-tagged items into the chain mailbox.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread.h"
#include "dacapo/module.h"

namespace cool::dacapo {

class ModuleChain {
 public:
  using UpSink = std::function<void(PacketPtr)>;
  using ControlSink = std::function<void(ControlMsg)>;

  ModuleChain(std::string name, std::vector<std::unique_ptr<Module>> modules,
              std::shared_ptr<PacketArena> arena,
              std::size_t burst_size = PacketBatch::kCapacity);
  ~ModuleChain();

  ModuleChain(const ModuleChain&) = delete;
  ModuleChain& operator=(const ModuleChain&) = delete;

  // Receives packets the *top* module forwards up (unset: dropped + warn).
  void SetUpSink(UpSink sink) { up_sink_ = std::move(sink); }
  // Receives control messages the top module sends up (errors, notifies).
  void SetControlSink(ControlSink sink) { control_sink_ = std::move(sink); }

  // Starts the engine thread; modules are OnStarted on it, top to bottom.
  // OnStart failures surface through the control sink.
  Status Start();

  // Closes the mailbox and joins the engine. Idempotent.
  void Stop();

  bool started() const noexcept { return started_.load(); }

  // Application-side injection: hands a packet to the top module as
  // down-travelling data. Blocks on backpressure; false once stopped.
  bool InjectDown(PacketPtr pkt);
  // Train variant: the whole batch enters under one mailbox acquisition
  // and crosses the chain as one burst. Empties `pkts` either way.
  bool InjectDownBatch(std::vector<PacketPtr>& pkts);

  // Transport-side injection: hands a packet to the bottom module as
  // up-travelling data (used by tests and callback-driven transports).
  void InjectUp(PacketPtr pkt);
  void InjectControlUp(ControlMsg msg);
  // Sends a control message down the chain starting at the top module.
  void InjectControlDown(ControlMsg msg);

  PacketArena& arena() noexcept { return *arena_; }
  std::shared_ptr<PacketArena> arena_ptr() const { return arena_; }

  std::size_t size() const noexcept { return modules_.size(); }
  Module& module(std::size_t i) { return *modules_[i]; }
  const std::string& name() const noexcept { return name_; }
  std::size_t burst_size() const noexcept { return burst_size_; }

  // Monitoring (paper Fig. 5 management): one "name{counters}" line per
  // module, top to bottom. Reads only atomic module counters.
  std::vector<std::string> DescribeModules() const;

 private:
  // Thread-safe ModulePort handed to OnStart/OnStop; it may be captured
  // (the T module keeps it for its receive thread). Data and control enter
  // the chain mailbox tagged with the neighbour that handles them first.
  class Port : public ModulePort {
   public:
    Port(ModuleChain* chain, std::size_t index)
        : chain_(chain), index_(index) {}

    void ForwardUp(PacketPtr pkt) override;
    void ForwardDown(PacketPtr pkt) override;
    void ForwardUpBatch(std::vector<PacketPtr>& pkts) override;
    void ForwardDownBatch(std::vector<PacketPtr>& pkts) override;
    void ControlUp(ControlMsg msg) override;
    void ControlDown(ControlMsg msg) override;
    PacketArena& arena() override { return chain_->arena(); }
    std::string_view channel_name() const override { return chain_->name_; }

   private:
    ModuleChain* chain_;
    std::size_t index_;
  };

  // Engine-thread-only ModulePort: buffers a module's emissions and
  // flushes them *synchronously* into the neighbouring walk (recursion),
  // so a burst runs to completion — down-emissions reach the wire, and the
  // packets they release return to the arena, while the emitter is still
  // on the stack. Constructed on the stack around each ProcessBurst /
  // HandleControl / OnTick call.
  class BurstPort : public ModulePort {
   public:
    BurstPort(ModuleChain* chain, std::size_t index)
        : chain_(chain), index_(index) {}
    ~BurstPort() override { Flush(); }

    void ForwardUp(PacketPtr pkt) override;
    void ForwardDown(PacketPtr pkt) override;
    void ForwardUpBatch(std::vector<PacketPtr>& pkts) override;
    void ForwardDownBatch(std::vector<PacketPtr>& pkts) override;
    void ControlUp(ControlMsg msg) override;
    void ControlDown(ControlMsg msg) override;
    PacketArena& arena() override { return chain_->arena(); }
    void WaitArena(Duration d) override;
    std::string_view channel_name() const override { return chain_->name_; }

    void Flush();

   private:
    void FlushDown();
    void FlushUp();

    ModuleChain* chain_;
    std::size_t index_;
    std::vector<PacketPtr> down_;
    std::vector<PacketPtr> up_;
  };

  void RunEngine(std::stop_token stop);

  // Dispatches one popped mailbox train: consecutive same-(direction,
  // origin) data items form one run that enters the chain as one burst.
  void DispatchPopped(std::vector<Mailbox::PopResult>& popped,
                      std::vector<PacketPtr>& run);

  // Walks a train through the chain starting at `index` (the module that
  // processes it next). Engine thread only.
  void WalkDown(std::size_t index, std::vector<PacketPtr>& pkts);
  void WalkUp(std::size_t index, std::vector<PacketPtr>& pkts);
  void WalkControl(Direction dir, std::size_t index, ControlMsg msg);
  void RouteControlUpFrom(std::size_t index, ControlMsg msg);

  // Re-feeds stalled down-packets to modules that became ready again.
  void DrainStalls();
  bool StallsEmpty() const;
  void ServiceTicks();
  Duration PopWait() const;
  void DeliverUpSink(PacketPtr pkt);

  // Services up/control traffic + stalls while a module waits for arena
  // space mid-burst (BurstPort::WaitArena).
  void PumpWhileWaiting();

  const std::string name_;
  std::shared_ptr<PacketArena> arena_;
  std::vector<std::unique_ptr<Module>> modules_;
  std::vector<std::unique_ptr<Port>> ports_;
  const std::size_t burst_size_;
  Mailbox mailbox_;

  // Engine-thread state: per-module stash of down-packets the module was
  // not ready for. While any stall is non-empty the engine pops no new
  // down-data, so stalled packets stay FIFO ahead of the mailbox.
  std::vector<std::deque<PacketPtr>> stall_;
  std::vector<TimePoint> last_tick_;
  std::vector<char> walking_;  // re-entrancy guard per module
  std::vector<Mailbox::PopResult> popped_;  // PopBatch scratch
  Thread engine_;

  UpSink up_sink_;
  ControlSink control_sink_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace cool::dacapo
