// Module-graph runtime: instantiates a configured chain of modules, gives
// each its own thread and mailbox (paper §5.1: "Each module in Da CaPo is
// executed by a single thread"), and wires neighbouring modules together.
//
// Chain layout is top (application / layer A side) to bottom (transport /
// layer T side):   [0] A-module, [1..n-2] C-modules, [n-1] T-module.
// Degenerate chains (no A, or no T during unit tests) are supported via the
// up-sink and by injecting packets at either end.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread.h"
#include "dacapo/module.h"

namespace cool::dacapo {

class ModuleChain {
 public:
  using UpSink = std::function<void(PacketPtr)>;
  using ControlSink = std::function<void(ControlMsg)>;

  ModuleChain(std::string name, std::vector<std::unique_ptr<Module>> modules,
              std::shared_ptr<PacketArena> arena);
  ~ModuleChain();

  ModuleChain(const ModuleChain&) = delete;
  ModuleChain& operator=(const ModuleChain&) = delete;

  // Receives packets the *top* module forwards up (unset: dropped + warn).
  void SetUpSink(UpSink sink) { up_sink_ = std::move(sink); }
  // Receives control messages the top module sends up (errors, notifies).
  void SetControlSink(ControlSink sink) { control_sink_ = std::move(sink); }

  // Starts one thread per module, top to bottom. OnStart failures surface
  // through the control sink (module threads own their modules).
  Status Start();

  // Closes all mailboxes and joins all threads. Idempotent.
  void Stop();

  bool started() const noexcept { return started_.load(); }

  // Application-side injection: hands a packet to the top module as
  // down-travelling data. Blocks on backpressure; false once stopped.
  bool InjectDown(PacketPtr pkt);

  // Transport-side injection: hands a packet to the bottom module as
  // up-travelling data (used by tests and callback-driven transports).
  void InjectUp(PacketPtr pkt);
  void InjectControlUp(ControlMsg msg);
  // Sends a control message down the chain starting at the top module.
  void InjectControlDown(ControlMsg msg);

  PacketArena& arena() noexcept { return *arena_; }
  std::shared_ptr<PacketArena> arena_ptr() const { return arena_; }

  std::size_t size() const noexcept { return entries_.size(); }
  Module& module(std::size_t i) { return *entries_[i]->module; }
  const std::string& name() const noexcept { return name_; }

  // Monitoring (paper Fig. 5 management): one "name{counters}" line per
  // module, top to bottom. Reads only atomic module counters.
  std::vector<std::string> DescribeModules() const;

 private:
  struct Entry;

  // ModulePort implementation for the module at one chain position.
  class Port : public ModulePort {
   public:
    Port(ModuleChain* chain, std::size_t index)
        : chain_(chain), index_(index) {}

    void ForwardUp(PacketPtr pkt) override;
    void ForwardDown(PacketPtr pkt) override;
    void ForwardUpBatch(std::vector<PacketPtr>& pkts) override;
    void ForwardDownBatch(std::vector<PacketPtr>& pkts) override;
    void ControlUp(ControlMsg msg) override;
    void ControlDown(ControlMsg msg) override;
    PacketArena& arena() override { return chain_->arena(); }
    std::string_view channel_name() const override { return chain_->name_; }

   private:
    ModuleChain* chain_;
    std::size_t index_;
  };

  struct Entry {
    explicit Entry(std::unique_ptr<Module> m) : module(std::move(m)) {}
    std::unique_ptr<Module> module;
    Mailbox mailbox;
    std::unique_ptr<Port> port;
    Thread thread;
  };

  void RunModule(std::size_t index, std::stop_token stop);

  const std::string name_;
  std::shared_ptr<PacketArena> arena_;
  std::vector<std::unique_ptr<Entry>> entries_;
  UpSink up_sink_;
  ControlSink control_sink_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace cool::dacapo
