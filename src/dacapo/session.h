// Connection management (paper Fig. 5): establishes Da CaPo connections
// between endsystems, negotiating the module graph over a signalling
// channel so both peers instantiate matching protocol stacks.
//
// Wire protocol on the signalling stream (4-octet LE length prefix frames):
//   CONFIG      {transport kind, module graph spec, initiator data port}
//   CONFIG_ACK  {responder data port}
//   CONFIG_NAK  {reason}                      -- admission/validation failed
//   RECONF      {module graph spec, initiator data port}
//   RECONF_ACK  {responder data port}
//   RECONF_NAK  {reason}
//   CLOSE       {}
//
// Data travels over a separate channel: a second stream connection or a
// pair of datagram ports, owned by the T module of the local chain. A QoS
// re-negotiation rebuilds the data plane ("changes in QoS requirements
// have to be reflected in reconfigurations of the transport connection",
// paper §4.2) while the signalling channel persists.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/blocking_queue.h"
#include "common/mutex.h"
#include "common/thread.h"
#include "dacapo/config_manager.h"
#include "dacapo/graph.h"
#include "dacapo/modules.h"
#include "dacapo/resource_manager.h"
#include "dacapo/runtime.h"
#include "sim/network.h"
#include "sim/waitset.h"

namespace cool::dacapo {

struct ChannelOptions {
  enum class Transport { kStream, kDatagram };

  Transport transport = Transport::kStream;
  ModuleGraphSpec graph;  // C modules, top to bottom
  AppAModule::DeliveryMode delivery = AppAModule::DeliveryMode::kQueue;
  std::size_t arena_packets = 512;
  std::size_t packet_capacity = 64 * 1024;
  // Packet-train size of the data plane's burst engine: how many packets
  // the engine walks through the chain per mailbox round-trip (clamped to
  // [1, PacketBatch::kCapacity]). 1 degenerates to per-packet processing.
  std::size_t burst_size = PacketBatch::kCapacity;

  // Custom layer-A module (paper Fig. 7 alternative (ii): "message
  // protocols are seen as ordinary Da CaPo modules"). When set, the chain
  // is built around this module instead of an AppAModule; Send/Receive on
  // the Session are then unavailable — the A module owns the application
  // interface.
  std::function<std::unique_ptr<Module>()> a_module_factory;
};

// An application-held received message: the arena packet itself, plus a
// shared reference that pins the arena. PacketPtr's deleter keeps only a
// raw arena pointer, and a reconfiguration may retire the plane (and its
// arena) while the application still holds the message — the pinned
// shared_ptr makes the late release safe.
class ReceivedMessage {
 public:
  ReceivedMessage() = default;
  ReceivedMessage(std::shared_ptr<PacketArena> arena, PacketPtr pkt)
      : arena_(std::move(arena)), pkt_(std::move(pkt)) {}

  std::span<const std::uint8_t> data() const noexcept { return pkt_->Data(); }
  std::size_t size() const noexcept { return pkt_ ? pkt_->size() : 0; }
  explicit operator bool() const noexcept { return pkt_ != nullptr; }

 private:
  std::shared_ptr<PacketArena> arena_;
  PacketPtr pkt_;  // declared after arena_: released first on destruction
};

// A live Da CaPo connection endpoint. Thread-safe for concurrent Send /
// Receive; Reconfigure must not race with Send on the same side.
class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Sends one application message (<= packet_capacity minus header room).
  // Blocks under backpressure from the module graph.
  Status Send(std::span<const std::uint8_t> payload);

  // Zero-copy send seam: allocates an arena packet sized `n` and calls
  // `fill(span)` to write the payload directly into packet memory — no
  // staging buffer, no copy. `fill` returns Status; a failure drops the
  // packet back into the arena and surfaces the status. Blocks like Send
  // under arena/chain backpressure.
  template <typename Fill>
  Status SendWith(std::size_t n, Fill&& fill) {
    if (n > options_.packet_capacity) {
      return InvalidArgumentError("message exceeds channel packet capacity");
    }
    ReaderMutexLock lock(plane_mu_);
    if (plane_.chain == nullptr || !plane_.chain->started()) {
      return FailedPreconditionError("session has no active data plane");
    }
    // Arena exhaustion is transient backpressure: wait for packets in
    // flight to return rather than failing the application call.
    const TimePoint deadline = Now() + seconds(10);
    for (;;) {
      auto pkt = plane_.tx_cache->Allocate();
      if (pkt.ok()) {
        auto out = (*pkt)->WritablePayload(n);
        if (!out.ok()) return out.status();
        if (Status s = fill(*out); !s.ok()) return s;
        if (!plane_.chain->InjectDown(std::move(pkt).value())) {
          return UnavailableError("data plane closed");
        }
        return Status::Ok();
      }
      if (pkt.status().code() != ErrorCode::kResourceExhausted) {
        return pkt.status();
      }
      if (Now() >= deadline) return pkt.status();
      PreciseSleep(microseconds(200));
    }
  }

  // Zero-copy *train* send seam: allocates `count` packets, sized by
  // `size(i)` and written by `fill(i, span)`, and injects them into the
  // chain in bursts of up to the plane's burst size — one mailbox
  // acquisition and one chain walk per burst instead of one per packet.
  // Calls strictly alternate size(0), fill(0), size(1), fill(1), ... so
  // the callbacks may share a sequential cursor. On arena backpressure the
  // packets cut so far are released into the chain first (they are the
  // traffic whose completion frees arena slots), then the wait begins.
  template <typename SizeFn, typename Fill>
  Status SendTrainWith(std::size_t count, SizeFn&& size, Fill&& fill) {
    ReaderMutexLock lock(plane_mu_);
    if (plane_.chain == nullptr || !plane_.chain->started()) {
      return FailedPreconditionError("session has no active data plane");
    }
    const std::size_t burst = plane_.chain->burst_size();
    std::vector<PacketPtr> train;
    train.reserve(std::min(count, burst));
    const TimePoint deadline = Now() + seconds(10);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t n = size(i);
      if (n > options_.packet_capacity) {
        return InvalidArgumentError("message exceeds channel packet capacity");
      }
      for (;;) {
        auto pkt = plane_.tx_cache->Allocate();
        if (pkt.ok()) {
          auto out = (*pkt)->WritablePayload(n);
          if (!out.ok()) return out.status();
          if (Status s = fill(i, *out); !s.ok()) return s;
          train.push_back(std::move(pkt).value());
          break;
        }
        if (pkt.status().code() != ErrorCode::kResourceExhausted) {
          return pkt.status();
        }
        if (!train.empty() && !plane_.chain->InjectDownBatch(train)) {
          return UnavailableError("data plane closed");
        }
        if (Now() >= deadline) return pkt.status();
        PreciseSleep(microseconds(200));
      }
      if (train.size() >= burst && !plane_.chain->InjectDownBatch(train)) {
        return UnavailableError("data plane closed");
      }
    }
    if (!train.empty() && !plane_.chain->InjectDownBatch(train)) {
      return UnavailableError("data plane closed");
    }
    return Status::Ok();
  }

  // Receives one application message (kQueue delivery mode) without
  // copying it out of the arena. The message pins the plane's arena, so
  // holding it past a reconfiguration is safe (it does hold one packet of
  // the retired plane's pool until released).
  Result<ReceivedMessage> ReceivePacket(Duration timeout);

  // Receives one application message (kQueue delivery mode). Thin copying
  // wrapper over ReceivePacket.
  Result<std::vector<std::uint8_t>> Receive(Duration timeout);

  // Non-blocking receive: a falsy ReceivedMessage when nothing is queued
  // right now (including mid-reconfiguration), kUnavailable once the
  // session is closed. Pair with WatchRx for reactor-driven delivery.
  Result<ReceivedMessage> TryReceivePacket();

  // Attaches receive readiness to `set` under `token`: signalled on every
  // upward delivery, on close, and across plane swaps (the watch outlives
  // reconfigurations; the underlying A module changes, the watch does not).
  void WatchRx(const sim::WaitSet& set, std::uint64_t token);

  // Measurement counters of the local A module.
  AppAModule::Stats stats() const;
  void ResetStats();

  // Initiator-side re-negotiation: agree on a new module graph with the
  // peer and rebuild the data plane. Traffic must be quiesced by the
  // caller; queued but undelivered packets may be lost (the reliable
  // mechanisms of the *new* graph do not cover the old graph's flight).
  Status Reconfigure(const ModuleGraphSpec& new_graph);

  // First unrecovered protocol error reported by the module graph, if any.
  Status last_error() const;

  ModuleGraphSpec graph() const;
  // Largest payload one Send() accepts (callers above fragment to this).
  std::size_t packet_capacity() const noexcept {
    return options_.packet_capacity;
  }

  // Monitoring: per-module counter lines of the live data plane (paper
  // Fig. 5: the management component monitors the module graph).
  std::vector<std::string> DescribeGraph() const;
  ChannelOptions::Transport transport() const noexcept {
    return options_.transport;
  }

  void Close();

 private:
  friend class Connector;
  friend class Acceptor;

  struct DataPlane {
    std::shared_ptr<PacketArena> arena;
    std::unique_ptr<ModuleChain> chain;
    // Send-side allocation cache (batch refills off the arena free list).
    // Declared after arena/chain so it flushes before the arena dies.
    std::unique_ptr<PacketCache> tx_cache;
    AppAModule* a_module = nullptr;  // owned by chain
    ModuleGraphSpec graph;
  };

  Session(sim::Network* net, std::string local_host,
          std::unique_ptr<sim::StreamSocket> signalling,
          ChannelOptions options, bool initiator,
          ResourceManager::Reservation reservation);

  // Builds a chain (A + C... + T) around a ready transport endpoint.
  static Result<DataPlane> BuildPlane(
      const ChannelOptions& options, const ModuleGraphSpec& graph,
      std::unique_ptr<sim::StreamSocket> stream_transport,
      std::unique_ptr<sim::DatagramPort> dgram_transport,
      sim::Address dgram_peer, Session* owner);

  void AdoptPlane(DataPlane plane);
  void SignallingLoop(std::stop_token stop);
  void HandleReconfRequest(std::span<const std::uint8_t> body);
  void ReportError(Status error);

  sim::Network* net_;
  std::string local_host_;
  std::unique_ptr<sim::StreamSocket> signalling_;
  ChannelOptions options_;
  const bool initiator_;
  ResourceManager::Reservation reservation_;

  mutable SharedMutex plane_mu_{LockRank::kSession, "dacapo::Session::plane_mu_"};
  DataPlane plane_ COOL_GUARDED_BY(plane_mu_);

  // Responses to our own signalling requests (RECONF_ACK/NAK frames).
  BlockingQueue<std::vector<std::uint8_t>> responses_;

  mutable Mutex error_mu_{LockRank::kSession, "dacapo::Session::error_mu_"};
  Status error_ COOL_GUARDED_BY(error_mu_);

  Thread signalling_thread_;
  std::atomic<bool> closed_{false};

  // Receive-readiness watch. Lives on the Session (not the plane) so a
  // reactor registration survives reconfigurations; internally
  // synchronised.
  sim::Watchable rx_watch_;
};

// Active opener.
class Connector {
 public:
  // `local_host` names this endsystem in the simulated network.
  Connector(sim::Network* net, std::string local_host)
      : net_(net), local_host_(std::move(local_host)) {}

  // Connects to an Acceptor at `remote`, negotiates `options.graph`, and
  // returns a ready session. NAK from the peer surfaces as
  // kResourceExhausted with the peer's reason.
  Result<std::unique_ptr<Session>> Connect(const sim::Address& remote,
                                           ChannelOptions options);

 private:
  sim::Network* net_;
  std::string local_host_;
};

// Passive opener with admission control.
class Acceptor {
 public:
  // Admission hook: called with the requested graph before ACK; a non-OK
  // return is sent to the initiator as a NAK. Defaults to accept-all.
  using AdmissionHook = std::function<Status(const ModuleGraphSpec&)>;

  // `resources` may be nullptr (no resource admission).
  Acceptor(sim::Network* net, sim::Address listen_addr,
           ResourceManager* resources = nullptr);

  Status Listen();

  // Serves one connection setup: blocks for a signalling connection,
  // validates, builds the responder plane. The returned session delivers
  // into an AppAModule with `delivery` mode.
  Result<std::unique_ptr<Session>> Accept(
      AppAModule::DeliveryMode delivery = AppAModule::DeliveryMode::kQueue);

  // Non-blocking accept: a null session (no error) when no signalling
  // connection is pending, kUnavailable once closed. When a connection IS
  // pending this still runs the (short, bounded) setup handshake inline —
  // the initiator sends CONFIG immediately after connecting.
  Result<std::unique_ptr<Session>> TryAccept(
      AppAModule::DeliveryMode delivery = AppAModule::DeliveryMode::kQueue);

  // Attaches accept readiness to `set` under `token`. Returns false when
  // not listening.
  bool WatchAccept(const sim::WaitSet& set, std::uint64_t token);

  void SetAdmissionHook(AdmissionHook hook) { admission_ = std::move(hook); }

  // Custom layer-A module for accepted sessions (Fig. 7 alternative (ii));
  // overrides the delivery-mode AppAModule.
  void SetAModuleFactory(std::function<std::unique_ptr<Module>()> factory) {
    a_module_factory_ = std::move(factory);
  }

  const sim::Address& address() const noexcept { return addr_; }

  void Close();

 private:
  // Runs the CONFIG handshake and plane construction over an accepted
  // signalling socket (shared by Accept and TryAccept).
  Result<std::unique_ptr<Session>> Establish(
      std::unique_ptr<sim::StreamSocket> signalling,
      AppAModule::DeliveryMode delivery);

  sim::Network* net_;
  sim::Address addr_;
  ResourceManager* resources_;
  AdmissionHook admission_;
  std::function<std::unique_ptr<Module>()> a_module_factory_;
  std::unique_ptr<sim::Listener> listener_;
};

// Signalling frame types (exposed for protocol tests).
namespace wire {
inline constexpr std::uint8_t kConfig = 1;
inline constexpr std::uint8_t kConfigAck = 2;
inline constexpr std::uint8_t kConfigNak = 3;
inline constexpr std::uint8_t kReconf = 4;
inline constexpr std::uint8_t kReconfAck = 5;
inline constexpr std::uint8_t kReconfNak = 6;
inline constexpr std::uint8_t kClose = 7;

// Frame helpers shared by Session/Connector/Acceptor (length-prefixed).
Status SendFrame(sim::StreamSocket& socket, std::uint8_t type,
                 std::span<const std::uint8_t> body);
// Returns {type, body}.
Result<std::pair<std::uint8_t, std::vector<std::uint8_t>>> RecvFrame(
    sim::StreamSocket& socket);
// As RecvFrame, but gives up with kDeadlineExceeded after `timeout`. Used
// for the connection-setup handshake, where the peer may never answer (it
// can vanish, or its listener may close with the connect still queued).
Result<std::pair<std::uint8_t, std::vector<std::uint8_t>>> RecvFrameFor(
    sim::StreamSocket& socket, Duration timeout);
}  // namespace wire

}  // namespace cool::dacapo
