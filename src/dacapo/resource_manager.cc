#include "dacapo/resource_manager.h"

namespace cool::dacapo {

void ResourceManager::Reservation::Release() {
  if (mgr_ == nullptr) return;
  mgr_->Release(bandwidth_kbps_, memory_bytes_);
  mgr_ = nullptr;
}

Result<ResourceManager::Reservation> ResourceManager::Admit(
    const qos::ProtocolRequirements& req, std::size_t packet_memory_bytes) {
  const std::uint64_t bandwidth_ask = req.min_throughput_kbps;

  MutexLock lock(mu_);
  if (connections_ >= budget_.max_connections) {
    return Status(ResourceExhaustedError("connection budget exhausted"));
  }
  if (reserved_bandwidth_kbps_ + bandwidth_ask > budget_.bandwidth_kbps) {
    return Status(ResourceExhaustedError(
        "bandwidth budget exhausted: " +
        std::to_string(reserved_bandwidth_kbps_) + " + " +
        std::to_string(bandwidth_ask) + " > " +
        std::to_string(budget_.bandwidth_kbps) + " kbps"));
  }
  if (reserved_memory_bytes_ + packet_memory_bytes >
      budget_.packet_memory_bytes) {
    return Status(ResourceExhaustedError("packet memory budget exhausted"));
  }

  reserved_bandwidth_kbps_ += bandwidth_ask;
  reserved_memory_bytes_ += packet_memory_bytes;
  ++connections_;
  return Reservation(this, bandwidth_ask, packet_memory_bytes);
}

void ResourceManager::Release(std::uint64_t bandwidth_kbps,
                              std::size_t memory_bytes) {
  MutexLock lock(mu_);
  reserved_bandwidth_kbps_ -= bandwidth_kbps;
  reserved_memory_bytes_ -= memory_bytes;
  --connections_;
}

std::uint64_t ResourceManager::reserved_bandwidth_kbps() const {
  MutexLock lock(mu_);
  return reserved_bandwidth_kbps_;
}

std::size_t ResourceManager::active_connections() const {
  MutexLock lock(mu_);
  return connections_;
}

std::size_t ResourceManager::reserved_memory_bytes() const {
  MutexLock lock(mu_);
  return reserved_memory_bytes_;
}

}  // namespace cool::dacapo
