// Checksum / cipher primitives backing the error-detection and encryption
// protocol mechanisms (paper §5.1: "the function error detection can be
// performed by mechanisms like parity bit, CRC16, CRC32, etc.").
#pragma once

#include <cstdint>
#include <span>

namespace cool::dacapo {

// Longitudinal parity over all octets (the paper's "parity bit" mechanism,
// widened to a byte so it is wire-representable on its own).
std::uint8_t ParityByte(std::span<const std::uint8_t> data) noexcept;

// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF).
std::uint16_t Crc16(std::span<const std::uint8_t> data) noexcept;

// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320).
std::uint32_t Crc32(std::span<const std::uint8_t> data) noexcept;

// Symmetric keystream cipher (xorshift keystream seeded by `key`): stands in
// for the paper's en-/decryption protocol function. In-place; applying it
// twice with the same key restores the input.
void XorCipher(std::span<std::uint8_t> data, std::uint64_t key) noexcept;

}  // namespace cool::dacapo
