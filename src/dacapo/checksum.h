// Checksum / cipher primitives backing the error-detection and encryption
// protocol mechanisms (paper §5.1: "the function error detection can be
// performed by mechanisms like parity bit, CRC16, CRC32, etc.").
//
// The hot primitives (CRC-32, XOR keystream) come in two tiers:
//
//  * a byte-at-a-time scalar reference (`Crc32Scalar`, `XorCipherScalar`)
//    that defines the semantics and anchors the equivalence tests, and
//  * wide kernels — slicing-by-8 CRC32, a hardware CRC32 path (PCLMULQDQ
//    folding on x86, the CRC32 instructions on ARMv8), and a
//    word-at-a-time keystream XOR — selected once at startup behind
//    `Crc32` / `XorCipher`.
//
// The hardware path is validated against slicing-by-8 on first use and
// disabled on mismatch, so a dispatch bug degrades to the portable kernel
// instead of corrupting traffic (DESIGN.md §12, SIMD dispatch policy).
#pragma once

#include <cstdint>
#include <span>

namespace cool::dacapo {

// Longitudinal parity over all octets (the paper's "parity bit" mechanism,
// widened to a byte so it is wire-representable on its own).
std::uint8_t ParityByte(std::span<const std::uint8_t> data) noexcept;

// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF).
std::uint16_t Crc16(std::span<const std::uint8_t> data) noexcept;

// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320): runtime-dispatched to
// the fastest kernel whose self-check passed on this machine.
std::uint32_t Crc32(std::span<const std::uint8_t> data) noexcept;

// Scalar reference (single-table byte-at-a-time) — the semantic anchor for
// the kernels below; also the "scalar" row of bench_mechanisms.
std::uint32_t Crc32Scalar(std::span<const std::uint8_t> data) noexcept;

// Slicing-by-8 (eight 256-entry tables, 8 input octets per step): the
// portable fast path.
std::uint32_t Crc32Slicing8(std::span<const std::uint8_t> data) noexcept;

// Hardware kernel: PCLMULQDQ folding (x86) or the ARMv8 CRC32 extension.
// Only callable when Crc32HwAvailable(); falls back to slicing-by-8 for
// short tails either way.
bool Crc32HwAvailable() noexcept;
std::uint32_t Crc32Hw(std::span<const std::uint8_t> data) noexcept;

// Symmetric keystream cipher (xorshift keystream seeded by `key`): stands in
// for the paper's en-/decryption protocol function. In-place; applying it
// twice with the same key restores the input. Dispatches to a
// word-at-a-time kernel (8 keystream octets applied per 64-bit XOR).
void XorCipher(std::span<std::uint8_t> data, std::uint64_t key) noexcept;

// Byte-at-a-time reference with identical output.
void XorCipherScalar(std::span<std::uint8_t> data,
                     std::uint64_t key) noexcept;

}  // namespace cool::dacapo
