// Layer-T modules: the bottom of every module graph, encapsulating the
// transport infrastructure (paper: "The T module used encapsulates TCP").
// Two mechanisms are provided:
//
//  * TStreamModule   — reliable byte stream (sim "TCP"); frames packets
//                      with a 4-octet length prefix.
//  * TDatagramModule — unreliable datagrams (raw network / Chorus-IPC-like
//                      service); one packet per datagram, may be lost or
//                      reordered, which is what the ARQ C-modules exist for.
#pragma once

#include <atomic>
#include <memory>

#include "common/thread.h"

#include "dacapo/module.h"
#include "sim/network.h"

namespace cool::dacapo {

class TStreamModule : public Module {
 public:
  explicit TStreamModule(std::unique_ptr<sim::StreamSocket> socket)
      : socket_(std::move(socket)) {}

  std::string_view name() const override { return "t_stream"; }

  Status OnStart(ModulePort& port) override;
  void OnStop(ModulePort& port) override;
  void HandleData(Direction dir, PacketPtr pkt, ModulePort& port) override;
  // Burst: gathers every length prefix and body of the train into one
  // vectored send — one socket call per burst instead of two per packet.
  void ProcessBurst(Direction dir, PacketBatch& batch,
                    ModulePort& port) override;
  std::string DescribeStats() const override;

 private:
  void RxLoop(ModulePort& port, std::stop_token stop);

  std::unique_ptr<sim::StreamSocket> socket_;
  Thread rx_thread_;
  std::atomic<std::uint64_t> rx_drops_{0};
};

class TDatagramModule : public Module {
 public:
  TDatagramModule(std::unique_ptr<sim::DatagramPort> port, sim::Address peer)
      : dgram_(std::move(port)), peer_(std::move(peer)) {}

  std::string_view name() const override { return "t_datagram"; }

  Status OnStart(ModulePort& port) override;
  void OnStop(ModulePort& port) override;
  void HandleData(Direction dir, PacketPtr pkt, ModulePort& port) override;
  std::string DescribeStats() const override;

 private:
  void RxLoop(ModulePort& port, std::stop_token stop);

  std::unique_ptr<sim::DatagramPort> dgram_;
  sim::Address peer_;
  Thread rx_thread_;
  std::atomic<std::uint64_t> rx_drops_{0};
};

}  // namespace cool::dacapo
