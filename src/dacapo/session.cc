#include "dacapo/session.h"

#include <atomic>

#include "cdr/decoder.h"
#include "cdr/encoder.h"
#include "common/logging.h"
#include "dacapo/t_modules.h"

namespace cool::dacapo {

namespace {

// Tail slack so checksum trailers fit behind a full-size payload.
constexpr std::size_t kTrailerSlack = 64;

// Bound on every connection-setup handshake wait (CONFIG, ACK, and the
// data-plane accept). A peer that stalls or vanishes mid-setup must fail
// the connect, not wedge the caller.
constexpr Duration kHandshakeTimeout = seconds(10);

// Process-wide data-port allocator (ephemeral range of the simulation).
std::uint16_t AllocDataPort() {
  static std::atomic<std::uint16_t> next{50000};
  return next.fetch_add(1);
}

struct ConfigRequest {
  ChannelOptions::Transport transport = ChannelOptions::Transport::kStream;
  ModuleGraphSpec graph;
  std::uint16_t initiator_data_port = 0;
};

std::vector<std::uint8_t> EncodeConfig(const ConfigRequest& req) {
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian);
  const auto graph_bytes = req.graph.Serialize();
  enc.Reserve(1 + 4 + 4 + graph_bytes.size() + 4 + 8);  // fields + padding
  enc.PutOctet(static_cast<std::uint8_t>(req.transport));
  enc.PutOctetSeq(graph_bytes);
  enc.PutULong(req.initiator_data_port);
  const auto view = enc.buffer().view();
  return {view.begin(), view.end()};
}

Result<ConfigRequest> DecodeConfig(std::span<const std::uint8_t> body) {
  cdr::Decoder dec(body, cdr::ByteOrder::kLittleEndian);
  ConfigRequest req;
  COOL_ASSIGN_OR_RETURN(corba::Octet transport, dec.GetOctet());
  if (transport > 1) return Status(ProtocolError("bad transport kind"));
  req.transport = static_cast<ChannelOptions::Transport>(transport);
  COOL_ASSIGN_OR_RETURN(corba::OctetSeq graph_bytes, dec.GetOctetSeq());
  COOL_ASSIGN_OR_RETURN(req.graph, ModuleGraphSpec::Deserialize(graph_bytes));
  COOL_ASSIGN_OR_RETURN(corba::ULong port, dec.GetULong());
  req.initiator_data_port = static_cast<std::uint16_t>(port);
  return req;
}

std::vector<std::uint8_t> EncodeAck(std::uint16_t data_port) {
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian);
  enc.PutULong(data_port);
  const auto view = enc.buffer().view();
  return {view.begin(), view.end()};
}

Result<std::uint16_t> DecodeAck(std::span<const std::uint8_t> body) {
  cdr::Decoder dec(body, cdr::ByteOrder::kLittleEndian);
  COOL_ASSIGN_OR_RETURN(corba::ULong port, dec.GetULong());
  return static_cast<std::uint16_t>(port);
}

std::vector<std::uint8_t> EncodeNak(const std::string& reason) {
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian);
  enc.Reserve(4 + reason.size() + 1);
  enc.PutString(reason);
  const auto view = enc.buffer().view();
  return {view.begin(), view.end()};
}

std::string DecodeNak(std::span<const std::uint8_t> body) {
  cdr::Decoder dec(body, cdr::ByteOrder::kLittleEndian);
  auto reason = dec.GetString();
  return reason.ok() ? *reason : std::string("unreadable NAK reason");
}

}  // namespace

namespace wire {

Status SendFrame(sim::StreamSocket& socket, std::uint8_t type,
                 std::span<const std::uint8_t> body) {
  const std::uint32_t len = static_cast<std::uint32_t>(body.size()) + 1;
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + len);
  frame.push_back(static_cast<std::uint8_t>(len));
  frame.push_back(static_cast<std::uint8_t>(len >> 8));
  frame.push_back(static_cast<std::uint8_t>(len >> 16));
  frame.push_back(static_cast<std::uint8_t>(len >> 24));
  frame.push_back(type);
  frame.insert(frame.end(), body.begin(), body.end());
  return socket.Send(frame);
}

Result<std::pair<std::uint8_t, std::vector<std::uint8_t>>> RecvFrame(
    sim::StreamSocket& socket) {
  std::uint8_t prefix[4];
  COOL_RETURN_IF_ERROR(socket.RecvExact(prefix));
  const std::uint32_t len = static_cast<std::uint32_t>(prefix[0]) |
                            static_cast<std::uint32_t>(prefix[1]) << 8 |
                            static_cast<std::uint32_t>(prefix[2]) << 16 |
                            static_cast<std::uint32_t>(prefix[3]) << 24;
  if (len == 0 || len > 1024 * 1024) {
    return Status(ProtocolError("bad signalling frame length"));
  }
  std::vector<std::uint8_t> data(len);
  COOL_RETURN_IF_ERROR(socket.RecvExact(data));
  const std::uint8_t type = data.front();
  data.erase(data.begin());
  return std::make_pair(type, std::move(data));
}

namespace {

Status RecvExactBy(sim::StreamSocket& socket, std::span<std::uint8_t> out,
                   TimePoint deadline) {
  std::size_t got = 0;
  while (got < out.size()) {
    const TimePoint now = Now();
    if (now >= deadline) {
      return Status(DeadlineExceededError("signalling handshake timed out"));
    }
    COOL_ASSIGN_OR_RETURN(std::size_t n,
                          socket.RecvFor(out.subspan(got), deadline - now));
    got += n;
  }
  return Status::Ok();
}

}  // namespace

Result<std::pair<std::uint8_t, std::vector<std::uint8_t>>> RecvFrameFor(
    sim::StreamSocket& socket, Duration timeout) {
  // Handshake wait (seconds-scale timeout): never legal on a reactor
  // worker or dispatch upcall — it would pin the worker for the whole
  // handshake window of one connection.
  COOL_DETECTOR_HOOK(
      deadlock::AssertBlockingAllowed("dacapo::wire::RecvFrameFor"));
  const TimePoint deadline = DeadlineFor(timeout);
  std::uint8_t prefix[4];
  COOL_RETURN_IF_ERROR(RecvExactBy(socket, prefix, deadline));
  const std::uint32_t len = static_cast<std::uint32_t>(prefix[0]) |
                            static_cast<std::uint32_t>(prefix[1]) << 8 |
                            static_cast<std::uint32_t>(prefix[2]) << 16 |
                            static_cast<std::uint32_t>(prefix[3]) << 24;
  if (len == 0 || len > 1024 * 1024) {
    return Status(ProtocolError("bad signalling frame length"));
  }
  std::vector<std::uint8_t> data(len);
  COOL_RETURN_IF_ERROR(RecvExactBy(socket, data, deadline));
  const std::uint8_t type = data.front();
  data.erase(data.begin());
  return std::make_pair(type, std::move(data));
}

}  // namespace wire

// --- Session -----------------------------------------------------------------

Session::Session(sim::Network* net, std::string local_host,
                 std::unique_ptr<sim::StreamSocket> signalling,
                 ChannelOptions options, bool initiator,
                 ResourceManager::Reservation reservation)
    : net_(net),
      local_host_(std::move(local_host)),
      signalling_(std::move(signalling)),
      options_(std::move(options)),
      initiator_(initiator),
      reservation_(std::move(reservation)) {}

Session::~Session() { Close(); }

Result<Session::DataPlane> Session::BuildPlane(
    const ChannelOptions& options, const ModuleGraphSpec& graph,
    std::unique_ptr<sim::StreamSocket> stream_transport,
    std::unique_ptr<sim::DatagramPort> dgram_transport,
    sim::Address dgram_peer, Session* owner) {
  DataPlane plane;
  plane.graph = graph;
  plane.arena = std::make_shared<PacketArena>(
      options.arena_packets, options.packet_capacity + kTrailerSlack);

  std::vector<std::unique_ptr<Module>> modules;
  AppAModule* a_raw = nullptr;
  if (options.a_module_factory) {
    modules.push_back(options.a_module_factory());
  } else {
    auto a_module = std::make_unique<AppAModule>(options.delivery);
    a_raw = a_module.get();
    modules.push_back(std::move(a_module));
  }

  COOL_ASSIGN_OR_RETURN(std::vector<std::unique_ptr<Module>> c_modules,
                        MechanismRegistry::Global().CreateChain(graph));
  for (auto& m : c_modules) modules.push_back(std::move(m));

  if (options.transport == ChannelOptions::Transport::kStream) {
    if (stream_transport == nullptr) {
      return Status(InternalError("stream plane without stream socket"));
    }
    modules.push_back(
        std::make_unique<TStreamModule>(std::move(stream_transport)));
  } else {
    if (dgram_transport == nullptr) {
      return Status(InternalError("datagram plane without port"));
    }
    modules.push_back(std::make_unique<TDatagramModule>(
        std::move(dgram_transport), std::move(dgram_peer)));
  }

  plane.chain = std::make_unique<ModuleChain>(
      "dacapo", std::move(modules), plane.arena, options.burst_size);
  plane.tx_cache = std::make_unique<PacketCache>(*plane.arena);
  plane.a_module = a_raw;
  if (owner != nullptr) {
    if (a_raw != nullptr) {
      // Receive readiness feeds the session-level watch so a reactor
      // registration survives plane swaps.
      a_raw->SetRxNotify([owner] { owner->rx_watch_.SignalReady(); });
    }
    plane.chain->SetControlSink([owner](ControlMsg msg) {
      if (msg.kind == ControlMsg::Kind::kError) {
        owner->ReportError(InternalError(msg.text));
      } else if (msg.kind == ControlMsg::Kind::kPeerClosed) {
        owner->ReportError(UnavailableError("peer closed data channel"));
      }
    });
  }
  COOL_RETURN_IF_ERROR(plane.chain->Start());
  return plane;
}

void Session::AdoptPlane(DataPlane plane) {
  {
    ReaderMutexLock lock(plane_mu_);
    if (plane_.chain != nullptr) plane_.chain->Stop();
  }
  DataPlane old;
  {
    WriterMutexLock lock(plane_mu_);
    // Move the old plane out whole instead of assigning over it: a direct
    // member-wise move-assignment would replace `arena` (freeing it) before
    // `tx_cache`, whose destructor flushes into that arena.
    old = std::move(plane_);
    plane_ = std::move(plane);
  }
  // `old` dies here, outside the lock, in reverse declaration order:
  // tx_cache flushes, then the chain and the arena go.

  // Wake any reactor waiting on the old (now torn down) plane so it
  // re-polls against the new one.
  rx_watch_.SignalReady();
}

Status Session::Send(std::span<const std::uint8_t> payload) {
  return SendWith(payload.size(), [payload](std::span<std::uint8_t> out) {
    std::copy(payload.begin(), payload.end(), out.begin());
    return Status::Ok();
  });
}

Result<ReceivedMessage> Session::ReceivePacket(Duration timeout) {
  const TimePoint deadline = DeadlineFor(timeout);
  for (;;) {
    AppAModule* a = nullptr;
    std::shared_ptr<PacketArena> arena;
    Result<PacketPtr> got(Status(UnavailableError("data plane torn down")));
    {
      // The blocking receive runs UNDER the shared lock: AdoptPlane stops
      // the old chain while itself holding only a shared lock (which wakes
      // us with kUnavailable) and needs the exclusive lock to destroy it,
      // so the module cannot be freed while we are still inside it.
      ReaderMutexLock lock(plane_mu_);
      a = plane_.a_module;
      if (a == nullptr) {
        return Status(
            FailedPreconditionError("session has no active data plane"));
      }
      arena = plane_.arena;
      got = a->ReceivePacket(deadline - Now());
    }
    if (got.ok()) {
      return ReceivedMessage(std::move(arena), std::move(got).value());
    }
    if (got.status().code() != ErrorCode::kUnavailable) {
      return got.status();
    }
    // The plane we were blocked on was torn down. If a reconfiguration
    // swapped in a new plane, keep receiving from it; if the session is
    // closed, surface the error. AdoptPlane stops the old chain slightly
    // before swapping the plane pointer in, so allow a short grace window
    // for the swap to land. The window is NOT capped by the caller's
    // deadline: a short-quantum poller (the GIOP reply demultiplexer)
    // interrupted by a swap must come back with kDeadlineExceeded
    // (retryable) rather than kUnavailable (terminal).
    const TimePoint grace_end = Now() + milliseconds(200);
    bool swapped = false;
    while (!closed_.load() && Now() < grace_end) {
      AppAModule* now_active = nullptr;
      {
        ReaderMutexLock lock(plane_mu_);
        now_active = plane_.a_module;
      }
      if (now_active != a) {
        swapped = true;  // new plane adopted: retry the receive on it
        break;
      }
      PreciseSleep(milliseconds(1));
    }
    if (!swapped) return got.status();  // genuinely closed, no replacement
  }
}

Result<std::vector<std::uint8_t>> Session::Receive(Duration timeout) {
  COOL_ASSIGN_OR_RETURN(ReceivedMessage msg, ReceivePacket(timeout));
  const auto data = msg.data();
  return std::vector<std::uint8_t>(data.begin(), data.end());
}

Result<ReceivedMessage> Session::TryReceivePacket() {
  ReaderMutexLock lock(plane_mu_);
  AppAModule* a = plane_.a_module;
  if (a == nullptr) {
    if (closed_.load()) return Status(UnavailableError("session closed"));
    return Status(
        FailedPreconditionError("session has no active data plane"));
  }
  Result<PacketPtr> got = a->TryReceivePacket();
  if (!got.ok()) {
    if (got.status().code() == ErrorCode::kUnavailable && !closed_.load()) {
      // Reconfiguration in flight: the old plane is stopped but its
      // replacement has not landed yet. Nothing deliverable right now;
      // AdoptPlane signals the watch once the swap completes.
      return ReceivedMessage{};
    }
    return got.status();
  }
  if (*got == nullptr) return ReceivedMessage{};  // nothing queued
  return ReceivedMessage(plane_.arena, std::move(got).value());
}

void Session::WatchRx(const sim::WaitSet& set, std::uint64_t token) {
  rx_watch_.Watch(set, token);
}

AppAModule::Stats Session::stats() const {
  ReaderMutexLock lock(plane_mu_);
  return plane_.a_module != nullptr ? plane_.a_module->snapshot()
                                    : AppAModule::Stats{};
}

void Session::ResetStats() {
  ReaderMutexLock lock(plane_mu_);
  if (plane_.a_module != nullptr) plane_.a_module->ResetStats();
}

std::vector<std::string> Session::DescribeGraph() const {
  ReaderMutexLock lock(plane_mu_);
  if (plane_.chain == nullptr) return {};
  return plane_.chain->DescribeModules();
}

ModuleGraphSpec Session::graph() const {
  ReaderMutexLock lock(plane_mu_);
  return plane_.graph;
}

Status Session::last_error() const {
  MutexLock lock(error_mu_);
  return error_;
}

void Session::ReportError(Status error) {
  MutexLock lock(error_mu_);
  if (error_.ok()) error_ = std::move(error);
}

Status Session::Reconfigure(const ModuleGraphSpec& new_graph) {
  if (!initiator_) {
    return FailedPreconditionError(
        "only the connection initiator drives reconfiguration");
  }

  // Prepare the local side of the new data plane.
  std::unique_ptr<sim::DatagramPort> new_port;
  std::uint16_t local_data_port = 0;
  if (options_.transport == ChannelOptions::Transport::kDatagram) {
    local_data_port = AllocDataPort();
    COOL_ASSIGN_OR_RETURN(
        new_port, net_->OpenPort({local_host_, local_data_port}));
  }

  ConfigRequest req;
  req.transport = options_.transport;
  req.graph = new_graph;
  req.initiator_data_port = local_data_port;
  COOL_RETURN_IF_ERROR(
      wire::SendFrame(*signalling_, wire::kReconf, EncodeConfig(req)));

  auto response = responses_.PopFor(seconds(10));
  if (!response.has_value()) {
    return DeadlineExceededError("reconfiguration response timed out");
  }
  const std::uint8_t type = response->front();
  const std::span<const std::uint8_t> body{response->data() + 1,
                                           response->size() - 1};
  if (type == wire::kReconfNak) {
    return ResourceExhaustedError("peer rejected reconfiguration: " +
                                  DecodeNak(body));
  }
  if (type != wire::kReconfAck) {
    return ProtocolError("unexpected reconfiguration response");
  }
  COOL_ASSIGN_OR_RETURN(std::uint16_t peer_port, DecodeAck(body));

  DataPlane plane;
  if (options_.transport == ChannelOptions::Transport::kStream) {
    COOL_ASSIGN_OR_RETURN(
        std::unique_ptr<sim::StreamSocket> data_sock,
        net_->Connect(local_host_, {signalling_->remote().host, peer_port}));
    COOL_ASSIGN_OR_RETURN(
        plane, BuildPlane(options_, new_graph, std::move(data_sock), nullptr,
                          {}, this));
  } else {
    COOL_ASSIGN_OR_RETURN(
        plane, BuildPlane(options_, new_graph, nullptr, std::move(new_port),
                          {signalling_->remote().host, peer_port}, this));
  }
  AdoptPlane(std::move(plane));
  options_.graph = new_graph;
  return Status::Ok();
}

void Session::HandleReconfRequest(std::span<const std::uint8_t> body) {
  auto nak = [&](const std::string& reason) {
    (void)wire::SendFrame(*signalling_, wire::kReconfNak, EncodeNak(reason));
  };

  auto req = DecodeConfig(body);
  if (!req.ok()) {
    nak(req.status().ToString());
    return;
  }
  if (req->transport != options_.transport) {
    nak("reconfiguration cannot change the transport kind");
    return;
  }

  if (options_.transport == ChannelOptions::Transport::kStream) {
    const std::uint16_t port = AllocDataPort();
    auto data_listener = net_->Listen({local_host_, port});
    if (!data_listener.ok()) {
      nak(data_listener.status().ToString());
      return;
    }
    if (!wire::SendFrame(*signalling_, wire::kReconfAck, EncodeAck(port))
             .ok()) {
      return;
    }
    auto data_sock = (*data_listener)->AcceptFor(seconds(10));
    if (!data_sock.ok()) {
      ReportError(data_sock.status());
      return;
    }
    auto plane = BuildPlane(options_, req->graph,
                            std::move(data_sock).value(), nullptr, {}, this);
    if (!plane.ok()) {
      ReportError(plane.status());
      return;
    }
    AdoptPlane(std::move(plane).value());
  } else {
    const std::uint16_t port = AllocDataPort();
    auto dgram = net_->OpenPort({local_host_, port});
    if (!dgram.ok()) {
      nak(dgram.status().ToString());
      return;
    }
    auto plane = BuildPlane(
        options_, req->graph, nullptr, std::move(dgram).value(),
        {signalling_->remote().host, req->initiator_data_port}, this);
    if (!plane.ok()) {
      nak(plane.status().ToString());
      return;
    }
    if (!wire::SendFrame(*signalling_, wire::kReconfAck, EncodeAck(port))
             .ok()) {
      return;
    }
    AdoptPlane(std::move(plane).value());
  }
  options_.graph = req->graph;
}

void Session::SignallingLoop(std::stop_token stop) {
  while (!stop.stop_requested()) {
    auto frame = wire::RecvFrame(*signalling_);
    if (!frame.ok()) {
      if (!closed_.load()) {
        ReportError(UnavailableError("signalling channel lost"));
      }
      return;
    }
    const auto& [type, body] = *frame;
    switch (type) {
      case wire::kReconf:
        HandleReconfRequest(body);
        break;
      case wire::kReconfAck:
      case wire::kReconfNak: {
        std::vector<std::uint8_t> tagged;
        tagged.reserve(body.size() + 1);
        tagged.push_back(type);
        tagged.insert(tagged.end(), body.begin(), body.end());
        responses_.Push(std::move(tagged));
        break;
      }
      case wire::kClose:
        ReportError(UnavailableError("peer closed the connection"));
        {
          ReaderMutexLock lock(plane_mu_);
          if (plane_.chain != nullptr) plane_.chain->Stop();
        }
        return;
      default:
        COOL_LOG(kWarn, "dacapo")
            << "unknown signalling frame type " << int{type};
        break;
    }
  }
}

void Session::Close() {
  if (closed_.exchange(true)) return;
  (void)wire::SendFrame(*signalling_, wire::kClose, {});
  signalling_->Close();  // wakes the signalling thread
  responses_.Close();
  {
    ReaderMutexLock lock(plane_mu_);
    if (plane_.chain != nullptr) plane_.chain->Stop();
  }
  rx_watch_.SignalReady();
  if (signalling_thread_.joinable() &&
      signalling_thread_.get_id() != std::this_thread::get_id()) {
    signalling_thread_.request_stop();
    signalling_thread_.join();
  }
}

// --- Connector ---------------------------------------------------------------

Result<std::unique_ptr<Session>> Connector::Connect(
    const sim::Address& remote, ChannelOptions options) {
  COOL_ASSIGN_OR_RETURN(std::unique_ptr<sim::StreamSocket> signalling,
                        net_->Connect(local_host_, remote));

  std::unique_ptr<sim::DatagramPort> dgram;
  std::uint16_t local_data_port = 0;
  if (options.transport == ChannelOptions::Transport::kDatagram) {
    local_data_port = AllocDataPort();
    COOL_ASSIGN_OR_RETURN(dgram,
                          net_->OpenPort({local_host_, local_data_port}));
  }

  ConfigRequest req;
  req.transport = options.transport;
  req.graph = options.graph;
  req.initiator_data_port = local_data_port;
  COOL_RETURN_IF_ERROR(
      wire::SendFrame(*signalling, wire::kConfig, EncodeConfig(req)));

  COOL_ASSIGN_OR_RETURN(auto frame,
                        wire::RecvFrameFor(*signalling, kHandshakeTimeout));
  const auto& [type, body] = frame;
  if (type == wire::kConfigNak) {
    return Status(ResourceExhaustedError("peer rejected configuration: " +
                                         DecodeNak(body)));
  }
  if (type != wire::kConfigAck) {
    return Status(ProtocolError("unexpected connection setup response"));
  }
  COOL_ASSIGN_OR_RETURN(std::uint16_t peer_port, DecodeAck(body));

  auto session = std::unique_ptr<Session>(
      new Session(net_, local_host_, std::move(signalling), options,
                  /*initiator=*/true, ResourceManager::Reservation{}));

  Session::DataPlane plane;
  if (options.transport == ChannelOptions::Transport::kStream) {
    COOL_ASSIGN_OR_RETURN(
        std::unique_ptr<sim::StreamSocket> data_sock,
        net_->Connect(local_host_, {remote.host, peer_port}));
    COOL_ASSIGN_OR_RETURN(
        plane, Session::BuildPlane(options, options.graph,
                                   std::move(data_sock), nullptr, {},
                                   session.get()));
  } else {
    COOL_ASSIGN_OR_RETURN(
        plane, Session::BuildPlane(options, options.graph, nullptr,
                                   std::move(dgram),
                                   {remote.host, peer_port}, session.get()));
  }
  session->AdoptPlane(std::move(plane));
  session->signalling_thread_ = Thread(
      [s = session.get()](std::stop_token st) { s->SignallingLoop(st); });
  return session;
}

// --- Acceptor ------------------------------------------------------------------

Acceptor::Acceptor(sim::Network* net, sim::Address listen_addr,
                   ResourceManager* resources)
    : net_(net), addr_(std::move(listen_addr)), resources_(resources) {}

Status Acceptor::Listen() {
  COOL_ASSIGN_OR_RETURN(listener_, net_->Listen(addr_));
  return Status::Ok();
}

void Acceptor::Close() {
  if (listener_ != nullptr) listener_->Close();
}

Result<std::unique_ptr<Session>> Acceptor::Accept(
    AppAModule::DeliveryMode delivery) {
  if (listener_ == nullptr) {
    return Status(FailedPreconditionError("acceptor is not listening"));
  }
  COOL_ASSIGN_OR_RETURN(std::unique_ptr<sim::StreamSocket> signalling,
                        listener_->Accept());
  return Establish(std::move(signalling), delivery);
}

Result<std::unique_ptr<Session>> Acceptor::TryAccept(
    AppAModule::DeliveryMode delivery) {
  if (listener_ == nullptr) {
    return Status(FailedPreconditionError("acceptor is not listening"));
  }
  COOL_ASSIGN_OR_RETURN(std::unique_ptr<sim::StreamSocket> signalling,
                        listener_->TryAccept());
  if (signalling == nullptr) return std::unique_ptr<Session>();
  // A connection is pending: the setup handshake runs inline. It is short
  // and bounded — the initiator sends CONFIG immediately after connecting.
  return Establish(std::move(signalling), delivery);
}

bool Acceptor::WatchAccept(const sim::WaitSet& set, std::uint64_t token) {
  if (listener_ == nullptr) return false;
  listener_->WatchAccept(set, token);
  return true;
}

Result<std::unique_ptr<Session>> Acceptor::Establish(
    std::unique_ptr<sim::StreamSocket> signalling,
    AppAModule::DeliveryMode delivery) {
  COOL_ASSIGN_OR_RETURN(auto frame,
                        wire::RecvFrameFor(*signalling, kHandshakeTimeout));
  const auto& [type, body] = frame;
  if (type != wire::kConfig) {
    return Status(ProtocolError("expected CONFIG as first frame"));
  }
  auto req = DecodeConfig(body);
  if (!req.ok()) {
    (void)wire::SendFrame(*signalling, wire::kConfigNak,
                          EncodeNak(req.status().ToString()));
    return req.status();
  }

  ChannelOptions options;
  options.transport = req->transport;
  options.graph = req->graph;
  options.delivery = delivery;
  options.a_module_factory = a_module_factory_;

  auto nak_and_fail = [&](Status reason) -> Result<std::unique_ptr<Session>> {
    (void)wire::SendFrame(*signalling, wire::kConfigNak,
                          EncodeNak(reason.ToString()));
    return reason;
  };

  // Validate every requested mechanism exists before committing resources.
  for (const MechanismSpec& m : req->graph.chain) {
    if (MechanismRegistry::Global().Properties(m.name) == nullptr) {
      return nak_and_fail(NotFoundError("unknown mechanism: " + m.name));
    }
  }
  if (admission_) {
    if (Status s = admission_(req->graph); !s.ok()) return nak_and_fail(s);
  }
  ResourceManager::Reservation reservation;
  if (resources_ != nullptr) {
    auto admitted = resources_->Admit(
        qos::ProtocolRequirements{},
        options.arena_packets * (options.packet_capacity + kTrailerSlack));
    if (!admitted.ok()) return nak_and_fail(admitted.status());
    reservation = std::move(admitted).value();
  }

  auto session = std::unique_ptr<Session>(
      new Session(net_, addr_.host, std::move(signalling), options,
                  /*initiator=*/false, std::move(reservation)));

  Session::DataPlane plane;
  if (options.transport == ChannelOptions::Transport::kStream) {
    const std::uint16_t port = AllocDataPort();
    COOL_ASSIGN_OR_RETURN(std::unique_ptr<sim::Listener> data_listener,
                          net_->Listen({addr_.host, port}));
    COOL_RETURN_IF_ERROR(
        wire::SendFrame(*session->signalling_, wire::kConfigAck,
                        EncodeAck(port)));
    COOL_ASSIGN_OR_RETURN(std::unique_ptr<sim::StreamSocket> data_sock,
                          data_listener->AcceptFor(kHandshakeTimeout));
    COOL_ASSIGN_OR_RETURN(
        plane, Session::BuildPlane(options, options.graph,
                                   std::move(data_sock), nullptr, {},
                                   session.get()));
  } else {
    const std::uint16_t port = AllocDataPort();
    COOL_ASSIGN_OR_RETURN(std::unique_ptr<sim::DatagramPort> dgram,
                          net_->OpenPort({addr_.host, port}));
    COOL_ASSIGN_OR_RETURN(
        plane,
        Session::BuildPlane(options, options.graph, nullptr,
                            std::move(dgram),
                            {session->signalling_->remote().host,
                             req->initiator_data_port},
                            session.get()));
    COOL_RETURN_IF_ERROR(wire::SendFrame(*session->signalling_,
                                         wire::kConfigAck, EncodeAck(port)));
  }
  session->AdoptPlane(std::move(plane));
  session->signalling_thread_ = Thread(
      [s = session.get()](std::stop_token st) { s->SignallingLoop(st); });
  return session;
}

}  // namespace cool::dacapo
