// The layer-C protocol module library. Each class realizes one protocol
// *mechanism*; the configuration manager assembles them into module graphs
// that satisfy a requested QoS (paper §5.1):
//
//   function          mechanisms here
//   ----------------  ------------------------------------------
//   forwarding        DummyModule (the paper's no-op dummy)
//   error detection   ChecksumModule (parity | CRC16 | CRC32)
//   retransmission    IrqModule (idle-repeat-request / stop-and-wait),
//                     GoBackNModule (sliding window)
//   ordering          SequencerModule
//   encryption        XorCipherModule
//   flow control      RateLimiterModule (token bucket)
//   layer A           AppAModule (app queue + measurement counters)
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/blocking_queue.h"
#include "common/mutex.h"
#include "common/status.h"
#include "dacapo/module.h"

namespace cool::dacapo {

// ---------------------------------------------------------------------------
// DummyModule: forwards every packet unchanged. Used by the Fig. 9 benchmark
// to measure pure module-interface / queue-hop overhead.
class DummyModule : public Module {
 public:
  std::string_view name() const override { return "dummy"; }
  void HandleData(Direction dir, PacketPtr pkt, ModulePort& port) override {
    ForwardOnward(dir, std::move(pkt), port);
  }
  void ProcessBurst(Direction dir, PacketBatch& batch,
                    ModulePort& port) override;

 private:
  std::vector<PacketPtr> scratch_;  // burst staging
};

// ---------------------------------------------------------------------------
// ChecksumModule: appends a checksum trailer on the way down, verifies and
// strips it on the way up. Corrupt packets are dropped and reported via a
// control message (an ARQ module above recovers them by retransmission).
class ChecksumModule : public Module {
 public:
  enum class Algorithm { kParity, kCrc16, kCrc32 };

  explicit ChecksumModule(Algorithm algo) : algo_(algo) {}

  std::string_view name() const override;
  void HandleData(Direction dir, PacketPtr pkt, ModulePort& port) override;
  void ProcessBurst(Direction dir, PacketBatch& batch,
                    ModulePort& port) override;

  std::uint64_t corrupted_dropped() const noexcept {
    return corrupted_dropped_.load(std::memory_order_relaxed);
  }
  std::string DescribeStats() const override;

 private:
  std::size_t TrailerSize() const noexcept;
  // Returns false when the packet must be dropped (error already reported
  // / counted).
  bool AppendChecksum(Packet& pkt, ModulePort& port);
  bool VerifyAndStrip(Packet& pkt, ModulePort& port);

  const Algorithm algo_;
  std::atomic<std::uint64_t> corrupted_dropped_{0};
  std::vector<PacketPtr> scratch_;  // burst staging
};

// ---------------------------------------------------------------------------
// XorCipherModule: encrypts downwards, decrypts upwards, with a shared
// symmetric key agreed out of band (connection setup).
class XorCipherModule : public Module {
 public:
  explicit XorCipherModule(std::uint64_t key) : key_(key) {}

  std::string_view name() const override { return "xor_cipher"; }
  void HandleData(Direction dir, PacketPtr pkt, ModulePort& port) override;
  void ProcessBurst(Direction dir, PacketBatch& batch,
                    ModulePort& port) override;

 private:
  const std::uint64_t key_;
  std::vector<PacketPtr> scratch_;  // burst staging
};

// ---------------------------------------------------------------------------
// SequencerModule: stamps a 4-octet sequence number downwards; upwards it
// releases packets in order, buffering out-of-order arrivals. A gap that
// does not fill within `gap_timeout` is skipped (the mechanism provides
// ordering, not reliability).
class SequencerModule : public Module {
 public:
  explicit SequencerModule(Duration gap_timeout = milliseconds(50),
                           std::size_t max_buffer = 64)
      : gap_timeout_(gap_timeout), max_buffer_(max_buffer) {}

  std::string_view name() const override { return "sequencer"; }
  void HandleData(Direction dir, PacketPtr pkt, ModulePort& port) override;
  // Burst: stamps a whole down-train before one downstream hop; releases a
  // whole in-order up-run as one train.
  void ProcessBurst(Direction dir, PacketBatch& batch,
                    ModulePort& port) override;
  std::optional<Duration> TickInterval() const override {
    return gap_timeout_ / 2;
  }
  void OnTick(ModulePort& port) override;

  std::uint64_t reordered() const noexcept {
    return reordered_.load(std::memory_order_relaxed);
  }
  std::uint64_t skipped() const noexcept {
    return skipped_.load(std::memory_order_relaxed);
  }
  std::string DescribeStats() const override;

 private:
  // Moves the in-order run at the head of rx_buffer_ into release_scratch_
  // (no forwarding — bursts release once per train).
  void CollectInOrder();
  void FlushInOrder(ModulePort& port);
  void SkipGap(ModulePort& port);

  const Duration gap_timeout_;
  const std::size_t max_buffer_;

  std::uint32_t tx_seq_ = 0;
  std::uint32_t rx_expected_ = 0;
  std::map<std::uint32_t, PacketPtr> rx_buffer_;
  std::vector<PacketPtr> release_scratch_;  // in-order release staging
  std::vector<PacketPtr> tx_scratch_;       // down-train staging
  TimePoint oldest_buffered_at_{};
  std::atomic<std::uint64_t> reordered_{0};
  std::atomic<std::uint64_t> skipped_{0};
};

// ---------------------------------------------------------------------------
// IrqModule: the paper's idle-repeat-request mechanism — stop-and-wait ARQ.
// At most one packet is outstanding; the next down packet is only accepted
// after the ACK arrives (ReadyForDown backpressure). This is deliberately
// the *ineffective flow control* the paper measures in Fig. 9.
class IrqModule : public Module {
 public:
  struct Options {
    Duration rto = milliseconds(20);
    int max_retries = 10;
  };

  IrqModule() : options_() {}
  explicit IrqModule(Options options) : options_(options) {}

  std::string_view name() const override { return "irq"; }
  void HandleData(Direction dir, PacketPtr pkt, ModulePort& port) override;
  bool ReadyForDown() const override { return !outstanding_.has_value(); }
  std::optional<Duration> TickInterval() const override {
    return options_.rto / 2;
  }
  void OnTick(ModulePort& port) override;

  std::uint64_t retransmissions() const noexcept {
    return retransmissions_.load(std::memory_order_relaxed);
  }
  std::string DescribeStats() const override;

 private:
  struct Outstanding {
    PacketPtr master;  // header already pushed; clones are transmitted
    std::uint32_t seq = 0;
    TimePoint last_tx{};
    int retries = 0;
  };

  void Transmit(Outstanding& o, ModulePort& port);
  void SendAck(std::uint32_t seq, ModulePort& port);

  const Options options_;
  std::uint32_t tx_seq_ = 0;
  std::uint32_t rx_expected_ = 0;
  std::optional<Outstanding> outstanding_;
  std::atomic<std::uint64_t> retransmissions_{0};
};

// ---------------------------------------------------------------------------
// GoBackNModule: sliding-window ARQ with cumulative ACKs — the efficient
// retransmission mechanism the configuration manager prefers for
// throughput-sensitive QoS.
class GoBackNModule : public Module {
 public:
  struct Options {
    std::size_t window = 32;
    Duration rto = milliseconds(20);
    int max_retries = 10;
  };

  GoBackNModule() : options_() {}
  explicit GoBackNModule(Options options) : options_(options) {}

  std::string_view name() const override { return "go_back_n"; }
  void HandleData(Direction dir, PacketPtr pkt, ModulePort& port) override;
  // Burst: stamps/transmits while the window has room (truncating the
  // rest), and answers a whole up-train with ONE cumulative ACK.
  void ProcessBurst(Direction dir, PacketBatch& batch,
                    ModulePort& port) override;
  bool ReadyForDown() const override {
    return window_.size() < options_.window;
  }
  std::optional<Duration> TickInterval() const override {
    return options_.rto / 2;
  }
  void OnTick(ModulePort& port) override;

  std::uint64_t retransmissions() const noexcept {
    return retransmissions_.load(std::memory_order_relaxed);
  }
  std::string DescribeStats() const override;

 private:
  void TransmitClone(const Packet& master, ModulePort& port);
  void SendAck(ModulePort& port);

  const Options options_;
  std::uint32_t tx_next_ = 0;
  std::uint32_t rx_expected_ = 0;
  std::map<std::uint32_t, PacketPtr> window_;  // unacked masters, by seq
  TimePoint last_progress_{};
  int retry_round_ = 0;
  std::atomic<std::uint64_t> retransmissions_{0};
};

// ---------------------------------------------------------------------------
// RateLimiterModule: token-bucket flow control on the down path.
class RateLimiterModule : public Module {
 public:
  struct Options {
    std::uint64_t rate_bytes_per_sec = 1'000'000;
    std::uint64_t burst_bytes = 64 * 1024;
  };

  explicit RateLimiterModule(Options options)
      : options_(options),
        tokens_(static_cast<double>(options.burst_bytes)),
        last_refill_(Now()) {}

  std::string_view name() const override { return "rate_limiter"; }
  void HandleData(Direction dir, PacketPtr pkt, ModulePort& port) override;
  // Burst: one Refill per train; consumes while tokens last, holds the
  // first unaffordable packet and truncates the rest.
  void ProcessBurst(Direction dir, PacketBatch& batch,
                    ModulePort& port) override;
  bool ReadyForDown() const override { return held_ == nullptr; }
  std::optional<Duration> TickInterval() const override {
    return milliseconds(1);
  }
  void OnTick(ModulePort& port) override;

 private:
  void Refill();
  void TryRelease(ModulePort& port);

  const Options options_;
  double tokens_;
  TimePoint last_refill_;
  PacketPtr held_;  // one packet waiting for tokens
  std::vector<PacketPtr> scratch_;  // burst staging
};

// ---------------------------------------------------------------------------
// FragmentModule: splits down-travelling packets into fragments of at most
// `mtu` payload octets and reassembles them on the way up. Placed above
// mechanisms whose service unit is the network packet (ARQ, checksums) so
// that application messages larger than the T service's MTU still fit.
// Reassembly relies on in-order delivery below (stream T or an ARQ
// mechanism); an interleaved or missing fragment aborts the current
// reassembly and drops the message (counted).
class FragmentModule : public Module {
 public:
  explicit FragmentModule(std::size_t mtu) : mtu_(mtu) {}

  std::string_view name() const override { return "fragment"; }
  void HandleData(Direction dir, PacketPtr pkt, ModulePort& port) override;

  std::uint64_t fragmented() const noexcept {
    return fragmented_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::string DescribeStats() const override;

 private:
  // Header: [flags:1][msg_id:4][index:2]; flags bit0 = last fragment.
  static constexpr std::size_t kHeaderSize = 7;

  const std::size_t mtu_;
  std::uint32_t tx_msg_id_ = 0;
  std::atomic<std::uint64_t> fragmented_{0};
  std::atomic<std::uint64_t> dropped_{0};

  // Reassembly state (single message at a time; below-us delivery is in
  // order by construction).
  std::uint32_t rx_msg_id_ = 0;
  std::uint16_t rx_next_index_ = 0;
  std::vector<std::uint8_t> rx_buffer_;
  bool rx_active_ = false;
};

// ---------------------------------------------------------------------------
// AppAModule: the layer-A module. Downwards it counts transmitted traffic;
// upwards it either queues payloads for the application or (kCountOnly, the
// paper's measuring A-module) releases the buffers immediately and only
// counts — "on the receiver side received packets pr time interval is
// counted, the packet buffers are released".
class AppAModule : public Module {
 public:
  enum class DeliveryMode { kQueue, kCountOnly };

  struct Stats {
    std::uint64_t packets_tx = 0;
    std::uint64_t bytes_tx = 0;
    std::uint64_t packets_rx = 0;
    std::uint64_t bytes_rx = 0;
    TimePoint first_rx{};
    TimePoint last_rx{};
  };

  explicit AppAModule(DeliveryMode mode = DeliveryMode::kQueue)
      : mode_(mode) {}

  std::string_view name() const override { return "app_a"; }
  void HandleData(Direction dir, PacketPtr pkt, ModulePort& port) override;
  // Burst: one stats-lock acquisition and one rx-queue push per train.
  void ProcessBurst(Direction dir, PacketBatch& batch,
                    ModulePort& port) override;
  void OnStop(ModulePort& port) override;

  // Application receive side (kQueue mode). Blocks up to `timeout`. The
  // packet variant hands out the arena packet itself (zero-copy); the
  // vector variant is a thin copying wrapper kept for convenience. Held
  // PacketPtrs count against the arena, so a slow application now exerts
  // memory backpressure instead of growing an unbounded copy queue.
  Result<PacketPtr> ReceivePacket(Duration timeout);
  Result<std::vector<std::uint8_t>> Receive(Duration timeout);

  // Non-blocking receive: a null PacketPtr when nothing is queued right
  // now, kUnavailable once the queue is closed and drained.
  Result<PacketPtr> TryReceivePacket();

  // Called after each upward delivery (and on close) so a reactor-attached
  // session can be signalled without the application parking a thread in
  // ReceivePacket. Set before the chain starts; not synchronised against
  // concurrent delivery.
  void SetRxNotify(std::function<void()> notify) {
    rx_notify_ = std::move(notify);
  }

  Stats snapshot() const;
  void ResetStats();
  std::string DescribeStats() const override;

 private:
  const DeliveryMode mode_;
  mutable Mutex stats_mu_{LockRank::kLeaf, "dacapo::AppAModule::stats_mu_"};
  Stats stats_ COOL_GUARDED_BY(stats_mu_);
  BlockingQueue<PacketPtr> rx_queue_;
  std::function<void()> rx_notify_;
  std::vector<PacketPtr> scratch_;  // burst staging
};

}  // namespace cool::dacapo
