#include "dacapo/packet.h"

namespace cool::dacapo {

void PacketReturner::operator()(Packet* p) const noexcept {
  if (p != nullptr && arena != nullptr) arena->Return(p);
}

PacketArena::PacketArena(std::size_t packet_count,
                         std::size_t payload_capacity)
    : payload_capacity_(payload_capacity) {
  all_.reserve(packet_count);
  free_.reserve(packet_count);
  for (std::size_t i = 0; i < packet_count; ++i) {
    all_.push_back(std::make_unique<Packet>(payload_capacity));
    free_.push_back(all_.back().get());
  }
}

PacketArena::~PacketArena() = default;

Result<PacketPtr> PacketArena::Allocate() {
  MutexLock lock(mu_);
  if (free_.empty()) {
    return Status(ResourceExhaustedError("packet arena exhausted"));
  }
  Packet* p = free_.back();
  free_.pop_back();
  p->Reset();
  p->set_created_at(Now());
  return PacketPtr(p, PacketReturner{this});
}

Result<PacketPtr> PacketArena::Make(std::span<const std::uint8_t> payload) {
  COOL_ASSIGN_OR_RETURN(PacketPtr p, Allocate());
  COOL_RETURN_IF_ERROR(p->SetPayload(payload));
  return p;
}

Result<PacketPtr> PacketArena::Clone(const Packet& src) {
  COOL_ASSIGN_OR_RETURN(PacketPtr p, Allocate());
  COOL_RETURN_IF_ERROR(p->SetPayload(src.Data()));
  p->set_created_at(src.created_at());
  return p;
}

std::size_t PacketArena::in_flight() const {
  MutexLock lock(mu_);
  return all_.size() - free_.size();
}

void PacketArena::Return(Packet* p) noexcept {
  MutexLock lock(mu_);
  free_.push_back(p);
}

}  // namespace cool::dacapo
