#include "dacapo/packet.h"

namespace cool::dacapo {

void PacketReturner::operator()(Packet* p) const noexcept {
  if (p != nullptr && arena != nullptr) arena->Return(p);
}

PacketArena::PacketArena(std::size_t packet_count,
                         std::size_t payload_capacity)
    : payload_capacity_(payload_capacity) {
  all_.reserve(packet_count);
  free_.reserve(packet_count);
  for (std::size_t i = 0; i < packet_count; ++i) {
    all_.push_back(std::make_unique<Packet>(payload_capacity));
    free_.push_back(all_.back().get());
  }
}

PacketArena::~PacketArena() = default;

Result<PacketPtr> PacketArena::Allocate() {
  MutexLock lock(mu_);
  if (free_.empty()) {
    return Status(ResourceExhaustedError("packet arena exhausted"));
  }
  Packet* p = free_.back();
  free_.pop_back();
  p->Reset();
  p->set_created_at(Now());
  return PacketPtr(p, PacketReturner{this});
}

Result<PacketPtr> PacketArena::Make(std::span<const std::uint8_t> payload) {
  COOL_ASSIGN_OR_RETURN(PacketPtr p, Allocate());
  COOL_RETURN_IF_ERROR(p->SetPayload(payload));
  return p;
}

Result<PacketPtr> PacketArena::Clone(const Packet& src) {
  COOL_ASSIGN_OR_RETURN(PacketPtr p, Allocate());
  COOL_RETURN_IF_ERROR(p->SetPayload(src.Data()));
  p->set_created_at(src.created_at());
  return p;
}

std::size_t PacketArena::in_flight() const {
  MutexLock lock(mu_);
  return all_.size() - free_.size();
}

void PacketArena::Return(Packet* p) noexcept {
  MutexLock lock(mu_);
  free_.push_back(p);
}

std::size_t PacketArena::TakeFreeBatch(std::size_t n,
                                       std::vector<Packet*>& out) {
  MutexLock lock(mu_);
  const std::size_t take = std::min(n, free_.size());
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(free_.back());
    free_.pop_back();
  }
  return take;
}

void PacketArena::PutFreeBatch(std::vector<Packet*>& batch) {
  if (batch.empty()) return;
  MutexLock lock(mu_);
  free_.insert(free_.end(), batch.begin(), batch.end());
  batch.clear();
}

// --- PacketCache ------------------------------------------------------------

Result<PacketPtr> PacketCache::Allocate() {
  Packet* p = nullptr;
  {
    MutexLock lock(mu_);
    if (local_.empty()) {
      (void)arena_->TakeFreeBatch(batch_size_, local_);
    }
    if (!local_.empty()) {
      p = local_.back();
      local_.pop_back();
    }
  }
  if (p == nullptr) {
    return Status(ResourceExhaustedError("packet arena exhausted"));
  }
  p->Reset();
  p->set_created_at(Now());
  return PacketPtr(p, PacketReturner{arena_});
}

Result<PacketPtr> PacketCache::Make(std::span<const std::uint8_t> payload) {
  COOL_ASSIGN_OR_RETURN(PacketPtr p, Allocate());
  COOL_RETURN_IF_ERROR(p->SetPayload(payload));
  return p;
}

void PacketCache::Flush() {
  MutexLock lock(mu_);
  arena_->PutFreeBatch(local_);
}

}  // namespace cool::dacapo
