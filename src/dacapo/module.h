// Da CaPo module interface (paper §5.1): "The Da CaPo modules are C++
// objects inheriting a base class, the modules implement the packet
// handling methods for data and control information." Modules talk to
// their neighbours exclusively through their ModulePort.
//
// Since PR 8 the chain runs BESS-style: one engine thread per chain pops a
// packet train from the chain mailbox and walks it through every module
// run-to-completion (DESIGN.md §12). The primary data entry point is
// ProcessBurst(PacketBatch&); HandleData remains the per-packet workhorse
// that the default ProcessBurst shim loops over, so existing modules and
// test doubles keep working unchanged.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "dacapo/mailbox.h"
#include "dacapo/packet.h"

namespace cool::dacapo {

// A train of packets moving through the chain together: fixed-capacity
// inline storage so a burst never allocates. Ownership of every slot
// belongs to the batch; a module consumes a packet with Take(i) (nulling
// the slot) and calls Compact() to close the gaps. Whatever remains in the
// batch when ProcessBurst returns is the *unconsumed leftover* — for the
// down direction the engine re-queues it, FIFO, ahead of later traffic
// (flow-control modules truncate a burst this way); up bursts must be
// consumed in full.
class PacketBatch {
 public:
  static constexpr std::size_t kCapacity = 32;

  bool PushBack(PacketPtr pkt) {
    if (count_ >= kCapacity) return false;
    slots_[count_++] = std::move(pkt);
    return true;
  }

  PacketPtr Take(std::size_t i) { return std::move(slots_[i]); }

  // Drops null (taken) slots, preserving the order of the rest.
  void Compact() {
    std::size_t w = 0;
    for (std::size_t r = 0; r < count_; ++r) {
      if (slots_[r]) {
        if (w != r) slots_[w] = std::move(slots_[r]);
        ++w;
      }
    }
    count_ = w;
  }

  void Clear() {
    for (std::size_t i = 0; i < count_; ++i) slots_[i].reset();
    count_ = 0;
  }

  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  bool full() const noexcept { return count_ >= kCapacity; }
  PacketPtr& operator[](std::size_t i) { return slots_[i]; }
  const PacketPtr& operator[](std::size_t i) const { return slots_[i]; }

  PacketPtr* begin() noexcept { return slots_.data(); }
  PacketPtr* end() noexcept { return slots_.data() + count_; }

 private:
  std::array<PacketPtr, kCapacity> slots_;
  std::size_t count_ = 0;
};

// The runtime-provided view a module has of its surroundings. ForwardDown
// may block (bounded queues, backpressure); ForwardUp never blocks.
class ModulePort {
 public:
  virtual ~ModulePort() = default;

  // Pass a packet to the next module toward the application (layer A).
  virtual void ForwardUp(PacketPtr pkt) = 0;
  // Pass a packet to the next module toward the transport (layer T).
  virtual void ForwardDown(PacketPtr pkt) = 0;

  // Batch variants: forward a whole train of packets, FIFO, emptying `pkts`.
  // The runtime overrides these with single-lock mailbox pushes; the default
  // is a per-packet loop so test doubles keep working unchanged.
  virtual void ForwardUpBatch(std::vector<PacketPtr>& pkts) {
    for (auto& p : pkts) ForwardUp(std::move(p));
    pkts.clear();
  }
  virtual void ForwardDownBatch(std::vector<PacketPtr>& pkts) {
    for (auto& p : pkts) ForwardDown(std::move(p));
    pkts.clear();
  }

  virtual void ControlUp(ControlMsg msg) = 0;
  virtual void ControlDown(ControlMsg msg) = 0;

  // Shared packet memory of this connection.
  virtual PacketArena& arena() = 0;

  // Arena-backpressure wait point: a module that must allocate (e.g. the
  // fragmenter cutting a large message) calls this between retries instead
  // of sleeping directly. The engine override services up-traffic and
  // control while waiting, so the packets whose release we are waiting for
  // (ACKs opening a window below us) can still flow; the default is a
  // plain sleep for test doubles.
  virtual void WaitArena(Duration d) { PreciseSleep(d); }

  // Connection name, for logs.
  virtual std::string_view channel_name() const = 0;
};

class Module {
 public:
  virtual ~Module() = default;

  virtual std::string_view name() const = 0;

  // Called on the module's own thread before any packet handling. The port
  // stays valid until after OnStop returns and may be captured (the T
  // module keeps it for its receive path).
  virtual Status OnStart(ModulePort& port) {
    (void)port;
    return Status::Ok();
  }

  // Called on the module's thread after the last packet; queues are closed.
  virtual void OnStop(ModulePort& port) { (void)port; }

  // Handle one data packet travelling in direction `dir`. A transparent
  // module forwards it onward; protocol modules transform, consume, or
  // generate packets via the port.
  virtual void HandleData(Direction dir, PacketPtr pkt, ModulePort& port) = 0;

  // Primary data entry point: handle a whole train travelling in `dir`.
  // The module owns every slot; it consumes packets via Take/Compact and
  // may split the train (forwarding parts via the port) or truncate it by
  // leaving unconsumed packets in the batch — those the engine stalls,
  // FIFO, until ReadyForDown() turns true again (down direction only; up
  // bursts must be consumed in full). The default shim loops HandleData
  // and stops at the first packet the module is not ready for, so
  // per-packet modules inherit correct truncation semantics.
  virtual void ProcessBurst(Direction dir, PacketBatch& batch,
                            ModulePort& port) {
    std::size_t i = 0;
    for (; i < batch.size(); ++i) {
      if (dir == Direction::kDown && !ReadyForDown()) break;
      HandleData(dir, batch.Take(i), port);
    }
    batch.Compact();
  }

  // Handle a control message travelling in `dir`. Default: pass it along.
  virtual void HandleControl(Direction dir, ControlMsg msg, ModulePort& port) {
    if (dir == Direction::kDown) {
      port.ControlDown(std::move(msg));
    } else {
      port.ControlUp(std::move(msg));
    }
  }

  // Backpressure hook: while false, the runtime will not hand this module
  // down-travelling data packets (up-travelling packets and control still
  // flow). ARQ modules use this to bound their in-flight window.
  virtual bool ReadyForDown() const { return true; }

  // If set, OnTick is invoked at least this often (retransmission timers,
  // token refill, ...).
  virtual std::optional<Duration> TickInterval() const { return std::nullopt; }
  virtual void OnTick(ModulePort& port) { (void)port; }

  // Monitoring hook (the paper's management component monitors the module
  // graph): a short human-readable counter summary, e.g. "retx=3".
  // Called from outside the module's thread — implementations must only
  // read atomic counters here. Default: no stats.
  virtual std::string DescribeStats() const { return ""; }
};

// Forwards a packet onward in its current travel direction.
inline void ForwardOnward(Direction dir, PacketPtr pkt, ModulePort& port) {
  if (dir == Direction::kDown) {
    port.ForwardDown(std::move(pkt));
  } else {
    port.ForwardUp(std::move(pkt));
  }
}

// Batch counterpart: forwards a whole train onward, emptying `pkts`.
inline void ForwardBatchOnward(Direction dir, std::vector<PacketPtr>& pkts,
                               ModulePort& port) {
  if (dir == Direction::kDown) {
    port.ForwardDownBatch(pkts);
  } else {
    port.ForwardUpBatch(pkts);
  }
}

}  // namespace cool::dacapo
