// Da CaPo module interface (paper §5.1): "The Da CaPo modules are C++
// objects inheriting a base class, the modules implement the packet
// handling methods for data and control information." Each module runs on
// its own thread (the re-designed multithreaded Da CaPo) and talks to its
// neighbours exclusively through its ModulePort.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "dacapo/mailbox.h"
#include "dacapo/packet.h"

namespace cool::dacapo {

// The runtime-provided view a module has of its surroundings. ForwardDown
// may block (bounded queues, backpressure); ForwardUp never blocks.
class ModulePort {
 public:
  virtual ~ModulePort() = default;

  // Pass a packet to the next module toward the application (layer A).
  virtual void ForwardUp(PacketPtr pkt) = 0;
  // Pass a packet to the next module toward the transport (layer T).
  virtual void ForwardDown(PacketPtr pkt) = 0;

  // Batch variants: forward a whole train of packets, FIFO, emptying `pkts`.
  // The runtime overrides these with single-lock mailbox pushes; the default
  // is a per-packet loop so test doubles keep working unchanged.
  virtual void ForwardUpBatch(std::vector<PacketPtr>& pkts) {
    for (auto& p : pkts) ForwardUp(std::move(p));
    pkts.clear();
  }
  virtual void ForwardDownBatch(std::vector<PacketPtr>& pkts) {
    for (auto& p : pkts) ForwardDown(std::move(p));
    pkts.clear();
  }

  virtual void ControlUp(ControlMsg msg) = 0;
  virtual void ControlDown(ControlMsg msg) = 0;

  // Shared packet memory of this connection.
  virtual PacketArena& arena() = 0;

  // Connection name, for logs.
  virtual std::string_view channel_name() const = 0;
};

class Module {
 public:
  virtual ~Module() = default;

  virtual std::string_view name() const = 0;

  // Called on the module's own thread before any packet handling. The port
  // stays valid until after OnStop returns and may be captured (the T
  // module keeps it for its receive path).
  virtual Status OnStart(ModulePort& port) {
    (void)port;
    return Status::Ok();
  }

  // Called on the module's thread after the last packet; queues are closed.
  virtual void OnStop(ModulePort& port) { (void)port; }

  // Handle one data packet travelling in direction `dir`. A transparent
  // module forwards it onward; protocol modules transform, consume, or
  // generate packets via the port.
  virtual void HandleData(Direction dir, PacketPtr pkt, ModulePort& port) = 0;

  // Handle a control message travelling in `dir`. Default: pass it along.
  virtual void HandleControl(Direction dir, ControlMsg msg, ModulePort& port) {
    if (dir == Direction::kDown) {
      port.ControlDown(std::move(msg));
    } else {
      port.ControlUp(std::move(msg));
    }
  }

  // Backpressure hook: while false, the runtime will not hand this module
  // down-travelling data packets (up-travelling packets and control still
  // flow). ARQ modules use this to bound their in-flight window.
  virtual bool ReadyForDown() const { return true; }

  // If set, OnTick is invoked at least this often (retransmission timers,
  // token refill, ...).
  virtual std::optional<Duration> TickInterval() const { return std::nullopt; }
  virtual void OnTick(ModulePort& port) { (void)port; }

  // Monitoring hook (the paper's management component monitors the module
  // graph): a short human-readable counter summary, e.g. "retx=3".
  // Called from outside the module's thread — implementations must only
  // read atomic counters here. Default: no stats.
  virtual std::string DescribeStats() const { return ""; }
};

// Forwards a packet onward in its current travel direction.
inline void ForwardOnward(Direction dir, PacketPtr pkt, ModulePort& port) {
  if (dir == Direction::kDown) {
    port.ForwardDown(std::move(pkt));
  } else {
    port.ForwardUp(std::move(pkt));
  }
}

}  // namespace cool::dacapo
