#include "dacapo/t_modules.h"

#include <array>
#include <span>
#include <vector>

#include "common/logging.h"

namespace cool::dacapo {

namespace {

void NotifyPeerClosed(ModulePort& port) {
  ControlMsg msg;
  msg.kind = ControlMsg::Kind::kPeerClosed;
  msg.text = "transport closed";
  port.ControlUp(std::move(msg));
}

std::array<std::uint8_t, 4> LengthPrefix(std::size_t n) {
  return {static_cast<std::uint8_t>(n), static_cast<std::uint8_t>(n >> 8),
          static_cast<std::uint8_t>(n >> 16),
          static_cast<std::uint8_t>(n >> 24)};
}

}  // namespace

// --- TStreamModule ----------------------------------------------------------

Status TStreamModule::OnStart(ModulePort& port) {
  rx_thread_ = Thread(
      [this, &port](std::stop_token st) { RxLoop(port, st); });
  return Status::Ok();
}

void TStreamModule::OnStop(ModulePort& port) {
  (void)port;
  socket_->Close();  // wakes the rx thread out of Recv
  rx_thread_.request_stop();
  if (rx_thread_.joinable()) rx_thread_.join();
}

void TStreamModule::HandleData(Direction dir, PacketPtr pkt,
                               ModulePort& port) {
  if (dir == Direction::kUp) return;  // nothing below us
  const auto prefix = LengthPrefix(pkt->size());
  const std::span<const std::uint8_t> parts[] = {prefix, pkt->Data()};
  if (Status s = socket_->SendV(parts); !s.ok()) {
    NotifyPeerClosed(port);
  }
}

void TStreamModule::ProcessBurst(Direction dir, PacketBatch& batch,
                                 ModulePort& port) {
  if (dir == Direction::kUp) {  // nothing below us
    batch.Clear();
    return;
  }
  // Gather the whole train into one vectored send: a 32-packet burst costs
  // one socket call (one pacing/enqueue round-trip) instead of 64.
  std::array<std::array<std::uint8_t, 4>, PacketBatch::kCapacity> prefixes;
  std::array<std::span<const std::uint8_t>, 2 * PacketBatch::kCapacity> parts;
  const std::size_t n = batch.size();
  for (std::size_t i = 0; i < n; ++i) {
    prefixes[i] = LengthPrefix(batch[i]->size());
    parts[2 * i] = prefixes[i];
    parts[2 * i + 1] = batch[i]->Data();
  }
  if (Status s = socket_->SendV({parts.data(), 2 * n}); !s.ok()) {
    NotifyPeerClosed(port);
  }
  batch.Clear();
}

void TStreamModule::RxLoop(ModulePort& port, std::stop_token stop) {
  PacketCache cache(port.arena());  // this loop is the only rx allocator
  std::vector<PacketPtr> train;
  bool closed = false;
  while (!stop.stop_requested() && !closed) {
    train.clear();
    // Block for the first frame, then drain whatever is already deliverable
    // (up to a burst) so the train crosses the mailbox as one push and the
    // engine walks it as one burst.
    while (train.size() < PacketBatch::kCapacity) {
      std::array<std::uint8_t, 4> prefix;
      if (train.empty()) {
        if (!socket_->RecvExact(prefix).ok()) {
          closed = true;
          break;
        }
      } else {
        auto got = socket_->TryRecv(prefix);
        if (!got.ok()) {
          closed = true;
          break;
        }
        if (*got == 0) break;  // nothing more pending: flush what we have
        if (*got < prefix.size() &&
            !socket_->RecvExact(std::span(prefix).subspan(*got)).ok()) {
          closed = true;
          break;
        }
      }
      const std::uint32_t len = static_cast<std::uint32_t>(prefix[0]) |
                                static_cast<std::uint32_t>(prefix[1]) << 8 |
                                static_cast<std::uint32_t>(prefix[2]) << 16 |
                                static_cast<std::uint32_t>(prefix[3]) << 24;
      if (len > port.arena().payload_capacity()) {
        COOL_LOG(kError, "dacapo")
            << port.channel_name() << "/t_stream: oversized frame " << len;
        closed = true;
        break;
      }
      auto pkt = cache.Allocate();
      if (!pkt.ok()) {
        // Receive buffer exhaustion: drain the frame and drop it, as a NIC
        // with no receive descriptors would. Logging backs off
        // exponentially — a saturating sender can drop thousands of frames
        // per second, and a formatted WARN per frame throttles the very
        // receive loop that needs to catch up (the count lives on in
        // DescribeStats).
        std::vector<std::uint8_t> sink(len);
        if (!socket_->RecvExact(sink).ok()) {
          closed = true;
          break;
        }
        const std::uint64_t n =
            rx_drops_.fetch_add(1, std::memory_order_relaxed) + 1;
        if ((n & (n - 1)) == 0) {
          COOL_LOG(kWarn, "dacapo")
              << port.channel_name()
              << "/t_stream: arena full, frame dropped (" << n << " total)";
        }
        continue;
      }
      // Read directly into packet memory (no staging vector).
      PacketPtr p = std::move(pkt).value();
      auto body = p->WritablePayload(len);
      if (!body.ok()) continue;  // unreachable: len checked against capacity
      if (!socket_->RecvExact(*body).ok()) {
        closed = true;
        break;
      }
      train.push_back(std::move(p));
    }
    if (!train.empty()) port.ForwardUpBatch(train);
  }
  if (!stop.stop_requested()) NotifyPeerClosed(port);
}

std::string TStreamModule::DescribeStats() const {
  const std::uint64_t n = rx_drops_.load(std::memory_order_relaxed);
  return n == 0 ? "" : "rx_drops=" + std::to_string(n);
}

// --- TDatagramModule --------------------------------------------------------

Status TDatagramModule::OnStart(ModulePort& port) {
  rx_thread_ = Thread(
      [this, &port](std::stop_token st) { RxLoop(port, st); });
  return Status::Ok();
}

void TDatagramModule::OnStop(ModulePort& port) {
  (void)port;
  dgram_->Close();
  rx_thread_.request_stop();
  if (rx_thread_.joinable()) rx_thread_.join();
}

void TDatagramModule::HandleData(Direction dir, PacketPtr pkt,
                                 ModulePort& port) {
  if (dir == Direction::kUp) return;
  if (Status s = dgram_->SendTo(peer_, pkt->Data()); !s.ok()) {
    COOL_LOG(kWarn, "dacapo") << port.channel_name()
                              << "/t_datagram send failed: " << s;
  }
}

void TDatagramModule::RxLoop(ModulePort& port, std::stop_token stop) {
  PacketCache cache(port.arena());
  std::vector<PacketPtr> train;
  while (!stop.stop_requested()) {
    // Block for the first datagram, drain any backlog non-blocking, and
    // forward the lot as one train.
    auto dgram = dgram_->Recv();
    if (!dgram.has_value()) break;  // port closed
    train.clear();
    for (;;) {
      auto pkt = cache.Make(dgram->payload);
      if (!pkt.ok()) {
        const std::uint64_t n =
            rx_drops_.fetch_add(1, std::memory_order_relaxed) + 1;
        if ((n & (n - 1)) == 0) {
          COOL_LOG(kWarn, "dacapo")
              << port.channel_name() << "/t_datagram: arena full, drop ("
              << n << " total)";
        }
      } else {
        train.push_back(std::move(pkt).value());
      }
      if (train.size() >= PacketBatch::kCapacity) break;
      dgram = dgram_->TryRecv();
      if (!dgram.has_value()) break;
    }
    if (!train.empty()) port.ForwardUpBatch(train);
  }
  if (!stop.stop_requested()) NotifyPeerClosed(port);
}

std::string TDatagramModule::DescribeStats() const {
  const std::uint64_t n = rx_drops_.load(std::memory_order_relaxed);
  return n == 0 ? "" : "rx_drops=" + std::to_string(n);
}

}  // namespace cool::dacapo
