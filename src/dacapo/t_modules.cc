#include "dacapo/t_modules.h"

#include <array>

#include "common/logging.h"

namespace cool::dacapo {

namespace {

void NotifyPeerClosed(ModulePort& port) {
  ControlMsg msg;
  msg.kind = ControlMsg::Kind::kPeerClosed;
  msg.text = "transport closed";
  port.ControlUp(std::move(msg));
}

std::array<std::uint8_t, 4> LengthPrefix(std::size_t n) {
  return {static_cast<std::uint8_t>(n), static_cast<std::uint8_t>(n >> 8),
          static_cast<std::uint8_t>(n >> 16),
          static_cast<std::uint8_t>(n >> 24)};
}

}  // namespace

// --- TStreamModule ----------------------------------------------------------

Status TStreamModule::OnStart(ModulePort& port) {
  rx_thread_ = Thread(
      [this, &port](std::stop_token st) { RxLoop(port, st); });
  return Status::Ok();
}

void TStreamModule::OnStop(ModulePort& port) {
  (void)port;
  socket_->Close();  // wakes the rx thread out of Recv
  rx_thread_.request_stop();
  if (rx_thread_.joinable()) rx_thread_.join();
}

void TStreamModule::HandleData(Direction dir, PacketPtr pkt,
                               ModulePort& port) {
  if (dir == Direction::kUp) return;  // nothing below us
  const auto prefix = LengthPrefix(pkt->size());
  if (Status s = socket_->Send(prefix); !s.ok()) {
    NotifyPeerClosed(port);
    return;
  }
  if (Status s = socket_->Send(pkt->Data()); !s.ok()) {
    NotifyPeerClosed(port);
  }
}

void TStreamModule::RxLoop(ModulePort& port, std::stop_token stop) {
  PacketCache cache(port.arena());  // this loop is the only rx allocator
  while (!stop.stop_requested()) {
    std::array<std::uint8_t, 4> prefix;
    if (!socket_->RecvExact(prefix).ok()) break;
    const std::uint32_t len = static_cast<std::uint32_t>(prefix[0]) |
                              static_cast<std::uint32_t>(prefix[1]) << 8 |
                              static_cast<std::uint32_t>(prefix[2]) << 16 |
                              static_cast<std::uint32_t>(prefix[3]) << 24;
    if (len > port.arena().payload_capacity()) {
      COOL_LOG(kError, "dacapo")
          << port.channel_name() << "/t_stream: oversized frame " << len;
      break;
    }
    auto pkt = cache.Allocate();
    if (!pkt.ok()) {
      // Receive buffer exhaustion: drain the frame and drop it, as a NIC
      // with no receive descriptors would.
      std::vector<std::uint8_t> sink(len);
      if (!socket_->RecvExact(sink).ok()) break;
      COOL_LOG(kWarn, "dacapo")
          << port.channel_name() << "/t_stream: arena full, frame dropped";
      continue;
    }
    // Read directly into packet memory (no staging vector).
    PacketPtr p = std::move(pkt).value();
    auto body = p->WritablePayload(len);
    if (!body.ok()) continue;  // unreachable: len checked against capacity
    if (!socket_->RecvExact(*body).ok()) break;
    port.ForwardUp(std::move(p));
  }
  if (!stop.stop_requested()) NotifyPeerClosed(port);
}

// --- TDatagramModule --------------------------------------------------------

Status TDatagramModule::OnStart(ModulePort& port) {
  rx_thread_ = Thread(
      [this, &port](std::stop_token st) { RxLoop(port, st); });
  return Status::Ok();
}

void TDatagramModule::OnStop(ModulePort& port) {
  (void)port;
  dgram_->Close();
  rx_thread_.request_stop();
  if (rx_thread_.joinable()) rx_thread_.join();
}

void TDatagramModule::HandleData(Direction dir, PacketPtr pkt,
                                 ModulePort& port) {
  if (dir == Direction::kUp) return;
  if (Status s = dgram_->SendTo(peer_, pkt->Data()); !s.ok()) {
    COOL_LOG(kWarn, "dacapo") << port.channel_name()
                              << "/t_datagram send failed: " << s;
  }
}

void TDatagramModule::RxLoop(ModulePort& port, std::stop_token stop) {
  PacketCache cache(port.arena());
  while (!stop.stop_requested()) {
    auto dgram = dgram_->Recv();
    if (!dgram.has_value()) break;  // port closed
    auto pkt = cache.Make(dgram->payload);
    if (!pkt.ok()) {
      COOL_LOG(kWarn, "dacapo")
          << port.channel_name() << "/t_datagram: arena full, drop";
      continue;
    }
    port.ForwardUp(std::move(pkt).value());
  }
  if (!stop.stop_requested()) NotifyPeerClosed(port);
}

}  // namespace cool::dacapo
