// Resource management (paper Fig. 5): admission control over the local
// endsystem's budgets. The paper defers full OS resource reservation to
// later work; this manager implements the admission interface Da CaPo's
// connection setup calls — bandwidth, connection slots and packet memory —
// so that over-subscription is refused with kResourceExhausted (which the
// ORB maps to a QoS exception toward the client).
#pragma once

#include <cstdint>

#include "common/mutex.h"
#include "common/status.h"
#include "qos/mapping.h"

namespace cool::dacapo {

class ResourceManager {
 public:
  struct Budget {
    std::uint64_t bandwidth_kbps = 100'000;   // schedulable send capacity
    std::size_t max_connections = 64;
    std::size_t packet_memory_bytes = 256 * 1024 * 1024;
  };

  // Move-only RAII grant; releasing (destroying) it returns the resources.
  class Reservation {
   public:
    Reservation() = default;
    Reservation(Reservation&& other) noexcept { *this = std::move(other); }
    Reservation& operator=(Reservation&& other) noexcept {
      Release();
      mgr_ = other.mgr_;
      bandwidth_kbps_ = other.bandwidth_kbps_;
      memory_bytes_ = other.memory_bytes_;
      other.mgr_ = nullptr;
      return *this;
    }
    ~Reservation() { Release(); }

    Reservation(const Reservation&) = delete;
    Reservation& operator=(const Reservation&) = delete;

    bool active() const noexcept { return mgr_ != nullptr; }
    std::uint64_t bandwidth_kbps() const noexcept { return bandwidth_kbps_; }
    std::size_t memory_bytes() const noexcept { return memory_bytes_; }

    void Release();

   private:
    friend class ResourceManager;
    Reservation(ResourceManager* mgr, std::uint64_t bandwidth_kbps,
                std::size_t memory_bytes)
        : mgr_(mgr),
          bandwidth_kbps_(bandwidth_kbps),
          memory_bytes_(memory_bytes) {}

    ResourceManager* mgr_ = nullptr;
    std::uint64_t bandwidth_kbps_ = 0;
    std::size_t memory_bytes_ = 0;
  };

  explicit ResourceManager(Budget budget) : budget_(budget) {}

  // Admits one connection with the given requirements. A requirement
  // without a throughput floor reserves nothing bandwidth-wise (best
  // effort) but still consumes a connection slot and packet memory.
  Result<Reservation> Admit(const qos::ProtocolRequirements& req,
                            std::size_t packet_memory_bytes);

  std::uint64_t reserved_bandwidth_kbps() const;
  std::size_t active_connections() const;
  std::size_t reserved_memory_bytes() const;

 private:
  friend class Reservation;
  void Release(std::uint64_t bandwidth_kbps, std::size_t memory_bytes);

  const Budget budget_;
  mutable Mutex mu_{LockRank::kSession, "dacapo::ResourceManager::mu_"};
  std::uint64_t reserved_bandwidth_kbps_ COOL_GUARDED_BY(mu_) = 0;
  std::size_t connections_ COOL_GUARDED_BY(mu_) = 0;
  std::size_t reserved_memory_bytes_ COOL_GUARDED_BY(mu_) = 0;
};

}  // namespace cool::dacapo
