// Protocol graphs and the mechanism registry (paper §5.1): layer C is
// decomposed into protocol *functions* (error detection, acknowledgment,
// flow control, de-/encryption, ...); each function can be realized by
// alternative *mechanisms* ("parity bit, CRC16, CRC32, etc."), implemented
// as modules. "The unified module interface allows free and unconstrained
// combination of modules to protocols."
//
// A ModuleGraphSpec names the concrete mechanism chain of one connection
// (top/A-side first). It serializes to CDR for the connection-setup
// handshake so both peers instantiate matching stacks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cdr/types.h"
#include "common/mutex.h"
#include "common/status.h"
#include "dacapo/module.h"

namespace cool::dacapo {

enum class ProtocolFunction {
  kForwarding,      // no-op (dummy)
  kErrorDetection,  // checksums
  kRetransmission,  // ARQ
  kOrdering,        // sequencing
  kEncryption,      // ciphers
  kFlowControl,     // rate limiting
  kFragmentation,   // segmentation and reassembly
};

std::string_view ProtocolFunctionName(ProtocolFunction f) noexcept;

// One concrete mechanism choice, with its tuning parameters.
struct MechanismSpec {
  std::string name;
  std::map<std::string, std::int64_t> params;

  std::int64_t ParamOr(const std::string& key,
                       std::int64_t fallback) const {
    const auto it = params.find(key);
    return it != params.end() ? it->second : fallback;
  }

  std::string ToString() const;
  friend bool operator==(const MechanismSpec&, const MechanismSpec&) = default;
};

// The C-module chain of a connection, topmost (A-side) first. T and A
// modules are chosen by the session layer, not by the graph spec.
struct ModuleGraphSpec {
  std::vector<MechanismSpec> chain;

  std::string ToString() const;

  // CDR wire form, used inside the connection-setup CONFIG message.
  corba::OctetSeq Serialize() const;
  static Result<ModuleGraphSpec> Deserialize(
      std::span<const corba::Octet> bytes);

  friend bool operator==(const ModuleGraphSpec&,
                         const ModuleGraphSpec&) = default;
};

// Static properties the configuration manager's cost model needs. The CPU
// costs are per-mechanism calibration constants (rough, order-of-magnitude;
// the *measured* benchmarks are what the evaluation reports).
struct MechanismProperties {
  ProtocolFunction function = ProtocolFunction::kForwarding;
  std::size_t header_bytes = 0;   // per-packet wire overhead
  double per_packet_us = 0.5;     // processing cost per packet
  double per_byte_ns = 0.0;       // processing cost per payload octet
  int reliability_level = 0;      // 0 none, 1 detect, 2 detect+retransmit
  bool provides_ordering = false;
  bool provides_encryption = false;
  // Stop-and-wait-like mechanisms bound throughput to window/RTT.
  bool window_limited = false;
  std::size_t window_packets = 0;  // 0 = not window limited
};

// Name -> (properties, factory). Process-global, pre-populated with the
// built-in mechanisms; tests and extensions may register more.
class MechanismRegistry {
 public:
  using Factory =
      std::function<Result<std::unique_ptr<Module>>(const MechanismSpec&)>;

  // The global registry with all built-in mechanisms registered.
  static MechanismRegistry& Global();

  Status Register(const std::string& name, MechanismProperties properties,
                  Factory factory);

  // nullptr when unknown.
  const MechanismProperties* Properties(const std::string& name) const;

  Result<std::unique_ptr<Module>> Create(const MechanismSpec& spec) const;

  // Instantiates every C module of a graph spec, top to bottom.
  Result<std::vector<std::unique_ptr<Module>>> CreateChain(
      const ModuleGraphSpec& spec) const;

  std::vector<std::string> Names() const;

 private:
  struct Entry {
    MechanismProperties properties;
    Factory factory;
  };

  mutable Mutex mu_{LockRank::kLeaf, "dacapo::MechanismRegistry::mu_"};
  std::map<std::string, Entry> entries_ COOL_GUARDED_BY(mu_);
};

// Built-in mechanism names (the registry keys).
namespace mechanisms {
inline constexpr const char* kDummy = "dummy";
inline constexpr const char* kParity = "parity";
inline constexpr const char* kCrc16 = "crc16";
inline constexpr const char* kCrc32 = "crc32";
inline constexpr const char* kXorCipher = "xor_cipher";
inline constexpr const char* kSequencer = "sequencer";
inline constexpr const char* kIrq = "irq";
inline constexpr const char* kGoBackN = "go_back_n";
inline constexpr const char* kRateLimiter = "rate_limiter";
inline constexpr const char* kFragment = "fragment";
}  // namespace mechanisms

}  // namespace cool::dacapo
