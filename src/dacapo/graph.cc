#include "dacapo/graph.h"

#include <sstream>

#include "cdr/decoder.h"
#include "cdr/encoder.h"
#include "dacapo/modules.h"

namespace cool::dacapo {

std::string_view ProtocolFunctionName(ProtocolFunction f) noexcept {
  switch (f) {
    case ProtocolFunction::kForwarding: return "forwarding";
    case ProtocolFunction::kErrorDetection: return "error_detection";
    case ProtocolFunction::kRetransmission: return "retransmission";
    case ProtocolFunction::kOrdering: return "ordering";
    case ProtocolFunction::kEncryption: return "encryption";
    case ProtocolFunction::kFlowControl: return "flow_control";
    case ProtocolFunction::kFragmentation: return "fragmentation";
  }
  return "unknown";
}

std::string MechanismSpec::ToString() const {
  std::ostringstream os;
  os << name;
  if (!params.empty()) {
    os << "(";
    bool first = true;
    for (const auto& [k, v] : params) {
      if (!first) os << ",";
      first = false;
      os << k << "=" << v;
    }
    os << ")";
  }
  return os.str();
}

std::string ModuleGraphSpec::ToString() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (i != 0) os << " -> ";
    os << chain[i].ToString();
  }
  os << "]";
  return os.str();
}

corba::OctetSeq ModuleGraphSpec::Serialize() const {
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian);
  enc.PutULong(static_cast<corba::ULong>(chain.size()));
  for (const MechanismSpec& m : chain) {
    enc.PutString(m.name);
    enc.PutULong(static_cast<corba::ULong>(m.params.size()));
    for (const auto& [k, v] : m.params) {
      enc.PutString(k);
      enc.PutLongLong(v);
    }
  }
  const auto view = enc.buffer().view();
  return corba::OctetSeq(view.begin(), view.end());
}

Result<ModuleGraphSpec> ModuleGraphSpec::Deserialize(
    std::span<const corba::Octet> bytes) {
  cdr::Decoder dec(bytes, cdr::ByteOrder::kLittleEndian);
  ModuleGraphSpec spec;
  COOL_ASSIGN_OR_RETURN(corba::ULong count, dec.GetULong());
  if (count > 1024) {
    return Status(ProtocolError("implausible module graph size"));
  }
  for (corba::ULong i = 0; i < count; ++i) {
    MechanismSpec m;
    COOL_ASSIGN_OR_RETURN(m.name, dec.GetString());
    COOL_ASSIGN_OR_RETURN(corba::ULong nparams, dec.GetULong());
    if (nparams > 256) {
      return Status(ProtocolError("implausible mechanism param count"));
    }
    for (corba::ULong j = 0; j < nparams; ++j) {
      COOL_ASSIGN_OR_RETURN(corba::String key, dec.GetString());
      COOL_ASSIGN_OR_RETURN(corba::LongLong value, dec.GetLongLong());
      m.params[key] = value;
    }
    spec.chain.push_back(std::move(m));
  }
  return spec;
}

namespace {

void RegisterBuiltins(MechanismRegistry& reg) {
  using Algorithm = ChecksumModule::Algorithm;

  {
    MechanismProperties p;
    p.function = ProtocolFunction::kForwarding;
    (void)reg.Register(mechanisms::kDummy, p, [](const MechanismSpec&) {
      return Result<std::unique_ptr<Module>>(std::make_unique<DummyModule>());
    });
  }
  {
    MechanismProperties p;
    p.function = ProtocolFunction::kErrorDetection;
    p.header_bytes = 1;
    p.per_byte_ns = 0.3;
    p.reliability_level = 1;
    (void)reg.Register(mechanisms::kParity, p, [](const MechanismSpec&) {
      return Result<std::unique_ptr<Module>>(
          std::make_unique<ChecksumModule>(Algorithm::kParity));
    });
  }
  {
    MechanismProperties p;
    p.function = ProtocolFunction::kErrorDetection;
    p.header_bytes = 2;
    p.per_byte_ns = 2.0;
    p.reliability_level = 1;
    (void)reg.Register(mechanisms::kCrc16, p, [](const MechanismSpec&) {
      return Result<std::unique_ptr<Module>>(
          std::make_unique<ChecksumModule>(Algorithm::kCrc16));
    });
  }
  {
    MechanismProperties p;
    p.function = ProtocolFunction::kErrorDetection;
    p.header_bytes = 4;
    p.per_byte_ns = 1.0;  // table-driven: cheaper per byte than bitwise CRC16
    p.reliability_level = 1;
    (void)reg.Register(mechanisms::kCrc32, p, [](const MechanismSpec&) {
      return Result<std::unique_ptr<Module>>(
          std::make_unique<ChecksumModule>(Algorithm::kCrc32));
    });
  }
  {
    MechanismProperties p;
    p.function = ProtocolFunction::kEncryption;
    p.per_byte_ns = 1.5;
    p.provides_encryption = true;
    (void)reg.Register(mechanisms::kXorCipher, p, [](const MechanismSpec& s) {
      const auto key = static_cast<std::uint64_t>(s.ParamOr("key", 0));
      return Result<std::unique_ptr<Module>>(
          std::make_unique<XorCipherModule>(key));
    });
  }
  {
    MechanismProperties p;
    p.function = ProtocolFunction::kOrdering;
    p.header_bytes = 4;
    p.provides_ordering = true;
    (void)reg.Register(mechanisms::kSequencer, p, [](const MechanismSpec& s) {
      const auto gap_ms = s.ParamOr("gap_timeout_ms", 50);
      const auto max_buffer =
          static_cast<std::size_t>(s.ParamOr("max_buffer", 64));
      return Result<std::unique_ptr<Module>>(std::make_unique<SequencerModule>(
          milliseconds(gap_ms), max_buffer));
    });
  }
  {
    MechanismProperties p;
    p.function = ProtocolFunction::kRetransmission;
    p.header_bytes = 5;
    p.per_packet_us = 1.0;
    p.reliability_level = 2;
    p.provides_ordering = true;
    p.window_limited = true;
    p.window_packets = 1;  // stop-and-wait
    (void)reg.Register(mechanisms::kIrq, p, [](const MechanismSpec& s) {
      IrqModule::Options o;
      o.rto = microseconds(s.ParamOr("rto_us", 20000));
      o.max_retries = static_cast<int>(s.ParamOr("max_retries", 10));
      return Result<std::unique_ptr<Module>>(std::make_unique<IrqModule>(o));
    });
  }
  {
    MechanismProperties p;
    p.function = ProtocolFunction::kRetransmission;
    p.header_bytes = 5;
    p.per_packet_us = 1.5;
    p.reliability_level = 2;
    p.provides_ordering = true;
    p.window_limited = true;
    p.window_packets = 32;
    (void)reg.Register(mechanisms::kGoBackN, p, [](const MechanismSpec& s) {
      GoBackNModule::Options o;
      o.window = static_cast<std::size_t>(s.ParamOr("window", 32));
      o.rto = microseconds(s.ParamOr("rto_us", 20000));
      o.max_retries = static_cast<int>(s.ParamOr("max_retries", 10));
      return Result<std::unique_ptr<Module>>(
          std::make_unique<GoBackNModule>(o));
    });
  }
  {
    MechanismProperties p;
    p.function = ProtocolFunction::kFragmentation;
    p.header_bytes = 7;
    p.per_packet_us = 1.0;
    (void)reg.Register(mechanisms::kFragment, p, [](const MechanismSpec& s) {
      const auto mtu =
          static_cast<std::size_t>(s.ParamOr("mtu", 8 * 1024));
      return Result<std::unique_ptr<Module>>(
          std::make_unique<FragmentModule>(mtu));
    });
  }
  {
    MechanismProperties p;
    p.function = ProtocolFunction::kFlowControl;
    (void)reg.Register(mechanisms::kRateLimiter, p,
                       [](const MechanismSpec& s) {
      RateLimiterModule::Options o;
      o.rate_bytes_per_sec = static_cast<std::uint64_t>(
          s.ParamOr("rate_bytes_per_sec", 1'000'000));
      o.burst_bytes =
          static_cast<std::uint64_t>(s.ParamOr("burst_bytes", 64 * 1024));
      return Result<std::unique_ptr<Module>>(
          std::make_unique<RateLimiterModule>(o));
    });
  }
}

}  // namespace

MechanismRegistry& MechanismRegistry::Global() {
  static MechanismRegistry* registry = [] {
    auto* r = new MechanismRegistry();
    RegisterBuiltins(*r);
    return r;
  }();
  return *registry;
}

Status MechanismRegistry::Register(const std::string& name,
                                   MechanismProperties properties,
                                   Factory factory) {
  MutexLock lock(mu_);
  const auto [it, inserted] =
      entries_.try_emplace(name, Entry{properties, std::move(factory)});
  (void)it;
  if (!inserted) {
    return AlreadyExistsError("mechanism already registered: " + name);
  }
  return Status::Ok();
}

const MechanismProperties* MechanismRegistry::Properties(
    const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = entries_.find(name);
  return it != entries_.end() ? &it->second.properties : nullptr;
}

Result<std::unique_ptr<Module>> MechanismRegistry::Create(
    const MechanismSpec& spec) const {
  Factory factory;
  {
    MutexLock lock(mu_);
    const auto it = entries_.find(spec.name);
    if (it == entries_.end()) {
      return Status(NotFoundError("unknown mechanism: " + spec.name));
    }
    factory = it->second.factory;
  }
  return factory(spec);
}

Result<std::vector<std::unique_ptr<Module>>> MechanismRegistry::CreateChain(
    const ModuleGraphSpec& spec) const {
  std::vector<std::unique_ptr<Module>> modules;
  modules.reserve(spec.chain.size());
  for (const MechanismSpec& m : spec.chain) {
    COOL_ASSIGN_OR_RETURN(std::unique_ptr<Module> module, Create(m));
    modules.push_back(std::move(module));
  }
  return modules;
}

std::vector<std::string> MechanismRegistry::Names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

}  // namespace cool::dacapo
