// Configuration management (paper §5.1): "Applications specify their
// requirements within a service request, and Da CaPo configures in
// real-time layer C protocols that are optimally adapted to application
// requirements, network services, and available resources."
//
// Input:  ProtocolRequirements (mapped from the QoSSpec, src/qos/mapping.h)
//         + a NetworkEstimate describing the layer-T service.
// Output: a concrete ModuleGraphSpec plus the cost model's service
//         prediction, or kResourceExhausted when no configuration in the
//         mechanism library can satisfy the requirements — which the ORB
//         surfaces to the client as a QoS exception (unilateral
//         negotiation, paper §4.3).
#pragma once

#include <cstdint>

#include "dacapo/graph.h"
#include "qos/mapping.h"

namespace cool::dacapo {

// What layer T offers underneath the configured protocol.
struct NetworkEstimate {
  std::uint64_t bandwidth_bps = 100'000'000;
  std::uint32_t rtt_us = 1000;
  double loss_rate = 0.0;             // datagram loss of the raw service
  std::size_t typical_packet_bytes = 8 * 1024;
  bool transport_reliable = false;    // true when T itself is a stream
};

struct ConfiguredGraph {
  ModuleGraphSpec spec;
  // Cost-model predictions (used for admission; the benchmarks measure the
  // real values).
  double predicted_throughput_kbps = 0.0;
  double predicted_latency_us = 0.0;

  std::string ToString() const;
};

class ConfigurationManager {
 public:
  explicit ConfigurationManager(
      const MechanismRegistry& registry = MechanismRegistry::Global())
      : registry_(registry) {}

  // Selects mechanisms for every required protocol function, then verifies
  // the composed graph against the performance constraints.
  Result<ConfiguredGraph> Configure(const qos::ProtocolRequirements& req,
                                    const NetworkEstimate& net) const;

  // Cost model, exposed for tests and the reconfiguration ablation. Both
  // account for module pipeline costs, per-packet headers, window limits.
  double EstimateThroughputKbps(const ModuleGraphSpec& spec,
                                const NetworkEstimate& net) const;
  double EstimateLatencyMicros(const ModuleGraphSpec& spec,
                               const NetworkEstimate& net) const;

 private:
  const MechanismRegistry& registry_;
};

}  // namespace cool::dacapo
