#include "dacapo/config_manager.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace cool::dacapo {

namespace {

// Framing overhead the T module adds per packet (length prefix).
constexpr std::size_t kTFramingBytes = 4;
// Cost of one mailbox hop between neighbouring module threads.
constexpr double kQueueHopUs = 0.5;

}  // namespace

std::string ConfiguredGraph::ToString() const {
  std::ostringstream os;
  os << spec.ToString() << " predicted{thr="
     << static_cast<std::uint64_t>(predicted_throughput_kbps)
     << "kbps, lat=" << static_cast<std::uint64_t>(predicted_latency_us)
     << "us}";
  return os.str();
}

double ConfigurationManager::EstimateThroughputKbps(
    const ModuleGraphSpec& spec, const NetworkEstimate& net) const {
  const double pkt = static_cast<double>(net.typical_packet_bytes);

  std::size_t header_bytes = kTFramingBytes;
  double max_stage_us = kQueueHopUs;  // at minimum one hop
  double window_limit_bps = -1.0;

  for (const MechanismSpec& m : spec.chain) {
    const MechanismProperties* p = registry_.Properties(m.name);
    if (p == nullptr) continue;  // validated elsewhere
    header_bytes += p->header_bytes;
    const double stage_us =
        p->per_packet_us + p->per_byte_ns * pkt / 1000.0 + kQueueHopUs;
    max_stage_us = std::max(max_stage_us, stage_us);
    if (p->window_limited) {
      std::size_t window = p->window_packets;
      if (m.name == mechanisms::kGoBackN) {
        window = static_cast<std::size_t>(m.ParamOr("window", 32));
      }
      const double rtt_s = static_cast<double>(net.rtt_us) / 1e6;
      const double limit =
          static_cast<double>(window) * pkt * 8.0 / std::max(rtt_s, 1e-9);
      window_limit_bps =
          window_limit_bps < 0 ? limit : std::min(window_limit_bps, limit);
    }
  }

  // Modules form a thread pipeline: sustained rate is set by the slowest
  // stage, not the sum of stages.
  const double pipeline_bps = pkt * 8.0 / (max_stage_us / 1e6);
  const double wire_goodput_bps = static_cast<double>(net.bandwidth_bps) *
                                  pkt / (pkt + static_cast<double>(header_bytes));

  double bps = std::min(pipeline_bps, wire_goodput_bps);
  if (window_limit_bps >= 0) bps = std::min(bps, window_limit_bps);
  return bps / 1000.0;
}

double ConfigurationManager::EstimateLatencyMicros(
    const ModuleGraphSpec& spec, const NetworkEstimate& net) const {
  const double pkt = static_cast<double>(net.typical_packet_bytes);

  double processing_us = 0.0;
  std::size_t header_bytes = kTFramingBytes;
  for (const MechanismSpec& m : spec.chain) {
    const MechanismProperties* p = registry_.Properties(m.name);
    if (p == nullptr) continue;
    header_bytes += p->header_bytes;
    // Both directions traverse the chain once each; count one traversal per
    // one-way latency.
    processing_us += p->per_packet_us + p->per_byte_ns * pkt / 1000.0 +
                     kQueueHopUs;
  }

  const double serialization_us =
      (pkt + static_cast<double>(header_bytes)) * 8.0 /
      static_cast<double>(net.bandwidth_bps) * 1e6;
  const double propagation_us = static_cast<double>(net.rtt_us) / 2.0;
  return processing_us + serialization_us + propagation_us;
}

Result<ConfiguredGraph> ConfigurationManager::Configure(
    const qos::ProtocolRequirements& req, const NetworkEstimate& net) const {
  ModuleGraphSpec spec;

  // ---- mechanism selection, top (A-side) to bottom (T-side) --------------

  // Encryption sits on top so everything below (including ARQ headers and
  // checksums) covers the ciphertext.
  if (req.need_encryption) {
    MechanismSpec m;
    m.name = mechanisms::kXorCipher;
    // Both peers instantiate from the same spec, so the key rides in it
    // (a research prototype's stand-in for out-of-band key agreement).
    m.params["key"] = 0x5eed5eed5eedLL ^ static_cast<std::int64_t>(req.priority);
    spec.chain.push_back(std::move(m));
  }

  // Retransmission: required explicitly, or forced when the raw loss rate
  // exceeds what the application tolerates ("adapt to changing service
  // properties of the underlying network").
  const double tolerated_loss_rate =
      req.max_loss_permille ==
              std::numeric_limits<corba::ULong>::max()
          ? 1.0
          : static_cast<double>(req.max_loss_permille) / 1000.0;
  const bool loss_forces_arq =
      !net.transport_reliable && net.loss_rate > tolerated_loss_rate;
  const bool need_arq = req.need_retransmission || loss_forces_arq;

  bool arq_orders = false;
  if (need_arq) {
    // Stop-and-wait (IRQ) caps throughput at pkt/RTT; pick it only when the
    // throughput requirement fits under that cap with margin, otherwise use
    // a window sized to the bandwidth-delay product.
    const double rtt_s = std::max(static_cast<double>(net.rtt_us) / 1e6, 1e-9);
    const double irq_kbps = static_cast<double>(net.typical_packet_bytes) *
                            8.0 / rtt_s / 1000.0;
    MechanismSpec m;
    const auto rto_us =
        std::max<std::int64_t>(4 * static_cast<std::int64_t>(net.rtt_us),
                               2000);
    if (req.min_throughput_kbps != 0 &&
        static_cast<double>(req.min_throughput_kbps) > irq_kbps / 2.0) {
      m.name = mechanisms::kGoBackN;
      const double bdp_packets =
          static_cast<double>(net.bandwidth_bps) * rtt_s /
          (static_cast<double>(net.typical_packet_bytes) * 8.0);
      m.params["window"] =
          std::max<std::int64_t>(4, static_cast<std::int64_t>(bdp_packets) * 2);
      m.params["rto_us"] = rto_us;
    } else {
      m.name = mechanisms::kIrq;
      m.params["rto_us"] = rto_us;
    }
    arq_orders = true;  // both ARQ mechanisms deliver in order
    spec.chain.push_back(std::move(m));
  }

  if (req.need_ordering && !arq_orders && !net.transport_reliable) {
    MechanismSpec m;
    m.name = mechanisms::kSequencer;
    spec.chain.push_back(std::move(m));
  }

  // Error detection at the bottom: it covers every header pushed above it.
  if (req.need_error_detection || need_arq) {
    MechanismSpec m;
    // CRC32 when loss tolerance is strict or the data rate is high (the
    // table-driven implementation is cheaper per octet); CRC16 otherwise.
    if (req.max_loss_permille <= 1 || req.min_throughput_kbps >= 20'000) {
      m.name = mechanisms::kCrc32;
    } else {
      m.name = mechanisms::kCrc16;
    }
    spec.chain.push_back(std::move(m));
  }

  // ---- admission against the cost model -----------------------------------

  ConfiguredGraph out;
  out.spec = spec;
  out.predicted_throughput_kbps = EstimateThroughputKbps(spec, net);
  out.predicted_latency_us = EstimateLatencyMicros(spec, net);

  if (req.min_throughput_kbps != 0 &&
      out.predicted_throughput_kbps <
          static_cast<double>(req.min_throughput_kbps)) {
    return Status(ResourceExhaustedError(
        "no protocol configuration reaches " +
        std::to_string(req.min_throughput_kbps) + " kbps (predicted " +
        std::to_string(static_cast<std::uint64_t>(
            out.predicted_throughput_kbps)) +
        " kbps for " + spec.ToString() + ")"));
  }
  if (req.max_latency_us != std::numeric_limits<corba::ULong>::max() &&
      out.predicted_latency_us > static_cast<double>(req.max_latency_us)) {
    return Status(ResourceExhaustedError(
        "no protocol configuration meets latency bound " +
        std::to_string(req.max_latency_us) + " us (predicted " +
        std::to_string(
            static_cast<std::uint64_t>(out.predicted_latency_us)) +
        " us)"));
  }
  // Residual loss: without ARQ the configured protocol passes the raw loss
  // through to the application.
  if (!need_arq && !net.transport_reliable &&
      net.loss_rate > tolerated_loss_rate) {
    return Status(ResourceExhaustedError(
        "link loss exceeds the tolerated loss bound and retransmission "
        "is not admissible"));
  }

  COOL_LOG(kDebug, "dacapo") << "configured " << out.ToString();
  return out;
}

}  // namespace cool::dacapo
