#include "dacapo/modules.h"

#include <algorithm>

#include "common/logging.h"
#include "dacapo/checksum.h"

namespace cool::dacapo {

namespace {

// Little-endian header scratch helpers (module headers are fixed LE; the
// CDR byte-order machinery is an ORB concern, not a Da CaPo one).
void PutU32(std::uint8_t* out, std::uint32_t v) noexcept {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t GetU32(const std::uint8_t* in) noexcept {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

// ARQ packet types (shared by IRQ and go-back-N).
constexpr std::uint8_t kArqData = 0;
constexpr std::uint8_t kArqAck = 1;
constexpr std::size_t kArqHeaderSize = 5;  // type(1) + seq(4)

void ReportError(ModulePort& port, std::string_view who, std::string text) {
  ControlMsg msg;
  msg.kind = ControlMsg::Kind::kError;
  msg.text = std::string(who) + ": " + std::move(text);
  port.ControlUp(std::move(msg));
}

}  // namespace

// --- DummyModule ------------------------------------------------------------

void DummyModule::ProcessBurst(Direction dir, PacketBatch& batch,
                               ModulePort& port) {
  scratch_.clear();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    scratch_.push_back(batch.Take(i));
  }
  batch.Compact();
  ForwardBatchOnward(dir, scratch_, port);
}

// --- ChecksumModule ---------------------------------------------------------

std::string_view ChecksumModule::name() const {
  switch (algo_) {
    case Algorithm::kParity: return "parity";
    case Algorithm::kCrc16: return "crc16";
    case Algorithm::kCrc32: return "crc32";
  }
  return "checksum";
}

std::size_t ChecksumModule::TrailerSize() const noexcept {
  switch (algo_) {
    case Algorithm::kParity: return 1;
    case Algorithm::kCrc16: return 2;
    case Algorithm::kCrc32: return 4;
  }
  return 0;
}

bool ChecksumModule::AppendChecksum(Packet& pkt, ModulePort& port) {
  std::uint8_t trailer[4];
  switch (algo_) {
    case Algorithm::kParity:
      trailer[0] = ParityByte(pkt.Data());
      break;
    case Algorithm::kCrc16: {
      const std::uint16_t c = Crc16(pkt.Data());
      trailer[0] = static_cast<std::uint8_t>(c);
      trailer[1] = static_cast<std::uint8_t>(c >> 8);
      break;
    }
    case Algorithm::kCrc32:
      PutU32(trailer, Crc32(pkt.Data()));
      break;
  }
  if (Status s = pkt.PushTrailer({trailer, TrailerSize()}); !s.ok()) {
    ReportError(port, name(), s.ToString());
    return false;  // packet dropped
  }
  return true;
}

bool ChecksumModule::VerifyAndStrip(Packet& pkt, ModulePort& port) {
  auto trailer = pkt.PopTrailer(TrailerSize());
  if (!trailer.ok()) {
    ++corrupted_dropped_;
    return false;  // truncated packet: drop
  }
  bool ok = false;
  switch (algo_) {
    case Algorithm::kParity:
      ok = (*trailer)[0] == ParityByte(pkt.Data());
      break;
    case Algorithm::kCrc16: {
      const std::uint16_t expect =
          static_cast<std::uint16_t>((*trailer)[0]) |
          static_cast<std::uint16_t>((*trailer)[1]) << 8;
      ok = expect == Crc16(pkt.Data());
      break;
    }
    case Algorithm::kCrc32:
      ok = GetU32(trailer->data()) == Crc32(pkt.Data());
      break;
  }
  if (!ok) {
    ++corrupted_dropped_;
    COOL_LOG(kDebug, "dacapo")
        << port.channel_name() << "/" << name() << ": checksum mismatch";
    return false;  // drop; an ARQ module above recovers
  }
  return true;
}

void ChecksumModule::HandleData(Direction dir, PacketPtr pkt,
                                ModulePort& port) {
  if (dir == Direction::kDown) {
    if (AppendChecksum(*pkt, port)) port.ForwardDown(std::move(pkt));
    return;
  }
  if (VerifyAndStrip(*pkt, port)) port.ForwardUp(std::move(pkt));
}

void ChecksumModule::ProcessBurst(Direction dir, PacketBatch& batch,
                                  ModulePort& port) {
  // The CRC kernels are vectorized per packet (checksum.cc); the burst
  // override amortizes dispatch and forwards survivors as one train.
  scratch_.clear();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    PacketPtr pkt = batch.Take(i);
    const bool keep = dir == Direction::kDown ? AppendChecksum(*pkt, port)
                                              : VerifyAndStrip(*pkt, port);
    if (keep) scratch_.push_back(std::move(pkt));
  }
  batch.Compact();
  ForwardBatchOnward(dir, scratch_, port);
}

std::string ChecksumModule::DescribeStats() const {
  return "corrupted_dropped=" + std::to_string(corrupted_dropped());
}

// --- XorCipherModule --------------------------------------------------------

void XorCipherModule::HandleData(Direction dir, PacketPtr pkt,
                                 ModulePort& port) {
  XorCipher(pkt->Data(), key_);
  ForwardOnward(dir, std::move(pkt), port);
}

void XorCipherModule::ProcessBurst(Direction dir, PacketBatch& batch,
                                   ModulePort& port) {
  scratch_.clear();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    PacketPtr pkt = batch.Take(i);
    XorCipher(pkt->Data(), key_);  // word-at-a-time kernel
    scratch_.push_back(std::move(pkt));
  }
  batch.Compact();
  ForwardBatchOnward(dir, scratch_, port);
}

// --- SequencerModule --------------------------------------------------------

void SequencerModule::HandleData(Direction dir, PacketPtr pkt,
                                 ModulePort& port) {
  if (dir == Direction::kDown) {
    std::uint8_t header[4];
    PutU32(header, tx_seq_++);
    if (Status s = pkt->PushHeader(header); !s.ok()) {
      ReportError(port, name(), s.ToString());
      return;
    }
    port.ForwardDown(std::move(pkt));
    return;
  }

  auto header = pkt->PopHeader(4);
  if (!header.ok()) return;  // malformed: drop
  const std::uint32_t seq = GetU32(header->data());

  if (seq == rx_expected_) {
    ++rx_expected_;
    release_scratch_.push_back(std::move(pkt));
    FlushInOrder(port);  // batches this packet with any unblocked followers
    return;
  }
  if (seq < rx_expected_) return;  // stale duplicate: drop

  // Out of order: buffer until the gap fills or times out.
  ++reordered_;
  if (rx_buffer_.empty()) oldest_buffered_at_ = Now();
  if (rx_buffer_.size() >= max_buffer_) SkipGap(port);
  rx_buffer_.emplace(seq, std::move(pkt));
}

void SequencerModule::CollectInOrder() {
  for (auto it = rx_buffer_.begin();
       it != rx_buffer_.end() && it->first == rx_expected_;) {
    release_scratch_.push_back(std::move(it->second));
    ++rx_expected_;
    it = rx_buffer_.erase(it);
  }
}

void SequencerModule::FlushInOrder(ModulePort& port) {
  CollectInOrder();
  port.ForwardUpBatch(release_scratch_);  // whole release train, one push
  if (!rx_buffer_.empty()) oldest_buffered_at_ = Now();
}

void SequencerModule::SkipGap(ModulePort& port) {
  if (rx_buffer_.empty()) return;
  ++skipped_;
  rx_expected_ = rx_buffer_.begin()->first;
  FlushInOrder(port);
}

void SequencerModule::OnTick(ModulePort& port) {
  if (!rx_buffer_.empty() && Now() - oldest_buffered_at_ > gap_timeout_) {
    SkipGap(port);
  }
}

void SequencerModule::ProcessBurst(Direction dir, PacketBatch& batch,
                                   ModulePort& port) {
  if (dir == Direction::kDown) {
    // Stamp the whole train, then forward it as one burst.
    tx_scratch_.clear();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      PacketPtr pkt = batch.Take(i);
      std::uint8_t header[4];
      PutU32(header, tx_seq_++);
      if (Status s = pkt->PushHeader(header); !s.ok()) {
        ReportError(port, name(), s.ToString());
        continue;  // packet dropped; sequence number burned
      }
      tx_scratch_.push_back(std::move(pkt));
    }
    batch.Compact();
    port.ForwardDownBatch(tx_scratch_);
    return;
  }

  // Up: classify the whole train, releasing one in-order run at the end
  // instead of one ForwardUp per unblocked packet.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    PacketPtr pkt = batch.Take(i);
    auto header = pkt->PopHeader(4);
    if (!header.ok()) continue;  // malformed: drop
    const std::uint32_t seq = GetU32(header->data());
    if (seq == rx_expected_) {
      ++rx_expected_;
      release_scratch_.push_back(std::move(pkt));
      CollectInOrder();  // followers this packet unblocked
      continue;
    }
    if (seq < rx_expected_) continue;  // stale duplicate: drop
    ++reordered_;
    if (rx_buffer_.empty()) oldest_buffered_at_ = Now();
    if (rx_buffer_.size() >= max_buffer_) {
      ++skipped_;
      rx_expected_ = rx_buffer_.begin()->first;
      CollectInOrder();
    }
    rx_buffer_.emplace(seq, std::move(pkt));
  }
  batch.Compact();
  if (!release_scratch_.empty()) port.ForwardUpBatch(release_scratch_);
  if (!rx_buffer_.empty()) oldest_buffered_at_ = Now();
}

std::string SequencerModule::DescribeStats() const {
  return "reordered=" + std::to_string(reordered()) +
         " skipped=" + std::to_string(skipped());
}

// --- IrqModule --------------------------------------------------------------

void IrqModule::Transmit(Outstanding& o, ModulePort& port) {
  auto clone = port.arena().Clone(*o.master);
  if (!clone.ok()) {
    COOL_LOG(kWarn, "dacapo") << port.channel_name()
                              << "/irq: clone failed, will retry on tick";
    return;
  }
  o.last_tx = Now();
  port.ForwardDown(std::move(clone).value());
}

void IrqModule::SendAck(std::uint32_t seq, ModulePort& port) {
  auto ack = port.arena().Allocate();
  if (!ack.ok()) return;  // peer retransmits; next ACK attempt will succeed
  std::uint8_t header[kArqHeaderSize];
  header[0] = kArqAck;
  PutU32(header + 1, seq);
  if (!(*ack)->PushHeader(header).ok()) return;
  port.ForwardDown(std::move(ack).value());
}

void IrqModule::HandleData(Direction dir, PacketPtr pkt, ModulePort& port) {
  if (dir == Direction::kDown) {
    // The runtime only hands us a down packet when ReadyForDown() — i.e.
    // nothing is outstanding (stop-and-wait).
    Outstanding o;
    o.seq = tx_seq_++;
    std::uint8_t header[kArqHeaderSize];
    header[0] = kArqData;
    PutU32(header + 1, o.seq);
    if (Status s = pkt->PushHeader(header); !s.ok()) {
      ReportError(port, name(), s.ToString());
      return;
    }
    o.master = std::move(pkt);
    outstanding_ = std::move(o);
    Transmit(*outstanding_, port);
    return;
  }

  // Up path: DATA from the peer or ACK for our outstanding packet.
  auto header = pkt->PopHeader(kArqHeaderSize);
  if (!header.ok()) return;
  const std::uint8_t type = (*header)[0];
  const std::uint32_t seq = GetU32(header->data() + 1);

  if (type == kArqAck) {
    if (outstanding_ && seq == outstanding_->seq) {
      outstanding_.reset();  // window opens; runtime resumes down pops
    }
    return;
  }
  if (type != kArqData) return;  // unknown: drop

  if (seq == rx_expected_) {
    ++rx_expected_;
    SendAck(seq, port);
    port.ForwardUp(std::move(pkt));
  } else if (seq < rx_expected_) {
    SendAck(seq, port);  // duplicate: re-ACK so the sender can advance
  }
  // seq > rx_expected_ cannot happen with a stop-and-wait peer; drop.
}

void IrqModule::OnTick(ModulePort& port) {
  if (!outstanding_) return;
  if (Now() - outstanding_->last_tx < options_.rto) return;
  if (outstanding_->retries >= options_.max_retries) {
    ReportError(port, name(), "max retransmissions exceeded");
    outstanding_.reset();
    return;
  }
  ++outstanding_->retries;
  ++retransmissions_;
  Transmit(*outstanding_, port);
}

std::string IrqModule::DescribeStats() const {
  return "retransmissions=" + std::to_string(retransmissions());
}

// --- GoBackNModule ----------------------------------------------------------

void GoBackNModule::TransmitClone(const Packet& master, ModulePort& port) {
  auto clone = port.arena().Clone(master);
  if (!clone.ok()) {
    COOL_LOG(kWarn, "dacapo") << port.channel_name()
                              << "/go_back_n: clone failed, retry on tick";
    return;
  }
  port.ForwardDown(std::move(clone).value());
}

void GoBackNModule::SendAck(ModulePort& port) {
  auto ack = port.arena().Allocate();
  if (!ack.ok()) return;
  std::uint8_t header[kArqHeaderSize];
  header[0] = kArqAck;
  // Cumulative: acknowledges everything below rx_expected_.
  PutU32(header + 1, rx_expected_);
  if (!(*ack)->PushHeader(header).ok()) return;
  port.ForwardDown(std::move(ack).value());
}

void GoBackNModule::HandleData(Direction dir, PacketPtr pkt,
                               ModulePort& port) {
  if (dir == Direction::kDown) {
    const std::uint32_t seq = tx_next_++;
    std::uint8_t header[kArqHeaderSize];
    header[0] = kArqData;
    PutU32(header + 1, seq);
    if (Status s = pkt->PushHeader(header); !s.ok()) {
      ReportError(port, name(), s.ToString());
      return;
    }
    TransmitClone(*pkt, port);
    window_.emplace(seq, std::move(pkt));
    if (window_.size() == 1) last_progress_ = Now();
    return;
  }

  auto header = pkt->PopHeader(kArqHeaderSize);
  if (!header.ok()) return;
  const std::uint8_t type = (*header)[0];
  const std::uint32_t seq = GetU32(header->data() + 1);

  if (type == kArqAck) {
    // Cumulative ACK: `seq` is the receiver's next expected sequence.
    bool progressed = false;
    for (auto it = window_.begin();
         it != window_.end() && it->first < seq;) {
      it = window_.erase(it);
      progressed = true;
    }
    if (progressed) {
      last_progress_ = Now();
      retry_round_ = 0;
    }
    return;
  }
  if (type != kArqData) return;

  if (seq == rx_expected_) {
    ++rx_expected_;
    port.ForwardUp(std::move(pkt));
    SendAck(port);
  } else {
    // Out of order (go-back-N receiver accepts only in order): discard and
    // re-ACK so the sender learns where we are.
    SendAck(port);
  }
}

void GoBackNModule::ProcessBurst(Direction dir, PacketBatch& batch,
                                 ModulePort& port) {
  if (dir == Direction::kDown) {
    // Stamp and transmit while the window has room; the unconsumed tail
    // stays in the batch and the engine stalls it until ACKs open slots.
    std::size_t i = 0;
    for (; i < batch.size() && window_.size() < options_.window; ++i) {
      PacketPtr pkt = batch.Take(i);
      const std::uint32_t seq = tx_next_++;
      std::uint8_t header[kArqHeaderSize];
      header[0] = kArqData;
      PutU32(header + 1, seq);
      if (Status s = pkt->PushHeader(header); !s.ok()) {
        ReportError(port, name(), s.ToString());
        continue;
      }
      TransmitClone(*pkt, port);
      window_.emplace(seq, std::move(pkt));
      if (window_.size() == 1) last_progress_ = Now();
    }
    batch.Compact();
    return;
  }

  // Up: process the whole train, then answer it with ONE cumulative ACK
  // (it covers every in-order delivery and every out-of-order resync in
  // the train — per-packet ACKs here were pure overhead).
  bool saw_data = false;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    PacketPtr pkt = batch.Take(i);
    auto header = pkt->PopHeader(kArqHeaderSize);
    if (!header.ok()) continue;
    const std::uint8_t type = (*header)[0];
    const std::uint32_t seq = GetU32(header->data() + 1);
    if (type == kArqAck) {
      bool progressed = false;
      for (auto it = window_.begin();
           it != window_.end() && it->first < seq;) {
        it = window_.erase(it);
        progressed = true;
      }
      if (progressed) {
        last_progress_ = Now();
        retry_round_ = 0;
      }
      continue;
    }
    if (type != kArqData) continue;
    saw_data = true;
    if (seq == rx_expected_) {
      ++rx_expected_;
      port.ForwardUp(std::move(pkt));
    }
    // Out of order: discard; the train-level ACK below resyncs the sender.
  }
  batch.Compact();
  if (saw_data) SendAck(port);
}

void GoBackNModule::OnTick(ModulePort& port) {
  if (window_.empty()) return;
  if (Now() - last_progress_ < options_.rto) return;
  if (retry_round_ >= options_.max_retries) {
    ReportError(port, name(), "max retransmission rounds exceeded");
    window_.clear();
    return;
  }
  ++retry_round_;
  last_progress_ = Now();
  for (const auto& [seq, master] : window_) {
    ++retransmissions_;
    TransmitClone(*master, port);
  }
}

std::string GoBackNModule::DescribeStats() const {
  return "retransmissions=" + std::to_string(retransmissions());
}

// --- RateLimiterModule ------------------------------------------------------

void RateLimiterModule::Refill() {
  const TimePoint now = Now();
  const double elapsed = ToSeconds(now - last_refill_);
  last_refill_ = now;
  tokens_ = std::min(
      static_cast<double>(options_.burst_bytes),
      tokens_ + elapsed * static_cast<double>(options_.rate_bytes_per_sec));
}

void RateLimiterModule::TryRelease(ModulePort& port) {
  if (!held_) return;
  Refill();
  const auto need = static_cast<double>(held_->size());
  if (tokens_ >= need) {
    tokens_ -= need;
    port.ForwardDown(std::move(held_));
  }
}

void RateLimiterModule::HandleData(Direction dir, PacketPtr pkt,
                                   ModulePort& port) {
  if (dir == Direction::kUp) {
    port.ForwardUp(std::move(pkt));
    return;
  }
  Refill();
  const auto need = static_cast<double>(pkt->size());
  if (tokens_ >= need) {
    tokens_ -= need;
    port.ForwardDown(std::move(pkt));
  } else {
    held_ = std::move(pkt);  // ReadyForDown turns false until released
  }
}

void RateLimiterModule::OnTick(ModulePort& port) { TryRelease(port); }

void RateLimiterModule::ProcessBurst(Direction dir, PacketBatch& batch,
                                     ModulePort& port) {
  if (dir == Direction::kUp) {
    scratch_.clear();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      scratch_.push_back(batch.Take(i));
    }
    batch.Compact();
    port.ForwardUpBatch(scratch_);
    return;
  }
  // One clock read / refill per train instead of one per packet.
  Refill();
  scratch_.clear();
  std::size_t i = 0;
  for (; i < batch.size(); ++i) {
    const auto need = static_cast<double>(batch[i]->size());
    if (tokens_ < need) break;
    tokens_ -= need;
    scratch_.push_back(batch.Take(i));
  }
  if (i < batch.size()) {
    // First unaffordable packet waits on the tick refill; the engine
    // stalls the truncated tail behind it (ReadyForDown is now false).
    held_ = batch.Take(i);
  }
  batch.Compact();
  port.ForwardDownBatch(scratch_);
}

// --- FragmentModule ----------------------------------------------------------

void FragmentModule::HandleData(Direction dir, PacketPtr pkt,
                                ModulePort& port) {
  constexpr std::uint8_t kLastFlag = 1;

  if (dir == Direction::kDown) {
    const auto data = pkt->Data();
    if (data.size() <= mtu_) {
      // Single-fragment fast path: still carries a header so the receiver
      // has one format to parse.
      std::uint8_t header[kHeaderSize];
      header[0] = kLastFlag;
      PutU32(header + 1, tx_msg_id_);
      header[5] = 0;
      header[6] = 0;
      ++tx_msg_id_;
      if (!pkt->PushHeader(header).ok()) {
        ReportError(port, name(), "no headroom for fragment header");
        return;
      }
      port.ForwardDown(std::move(pkt));
      return;
    }

    ++fragmented_;
    const std::uint32_t msg_id = tx_msg_id_++;
    std::uint16_t index = 0;
    std::vector<PacketPtr> train;  // whole message forwarded as one batch
    for (std::size_t offset = 0; offset < data.size(); offset += mtu_) {
      const std::size_t n = std::min(mtu_, data.size() - offset);
      auto fragment = port.arena().Make(data.subspan(offset, n));
      if (!fragment.ok()) {
        // Arena backpressure: release what we already cut so downstream
        // can drain it, then wait for capacity rather than tearing the
        // message in half. WaitArena (not a plain sleep) keeps up-traffic
        // flowing while we wait — the window below us may need an ACK
        // before it releases the very packets we are waiting for.
        port.ForwardDownBatch(train);
        while (!fragment.ok() &&
               fragment.status().code() == ErrorCode::kResourceExhausted) {
          port.WaitArena(microseconds(100));
          fragment = port.arena().Make(data.subspan(offset, n));
        }
        if (!fragment.ok()) {
          ReportError(port, name(), fragment.status().ToString());
          return;
        }
      }
      std::uint8_t header[kHeaderSize];
      header[0] = (offset + n == data.size()) ? kLastFlag : 0;
      PutU32(header + 1, msg_id);
      header[5] = static_cast<std::uint8_t>(index);
      header[6] = static_cast<std::uint8_t>(index >> 8);
      ++index;
      if (!(*fragment)->PushHeader(header).ok()) {
        ReportError(port, name(), "no headroom for fragment header");
        return;  // collected fragments return to the arena undelivered
      }
      train.push_back(std::move(fragment).value());
    }
    port.ForwardDownBatch(train);
    return;
  }

  // Up: reassemble.
  auto header = pkt->PopHeader(kHeaderSize);
  if (!header.ok()) {
    ++dropped_;
    return;
  }
  const bool last = ((*header)[0] & kLastFlag) != 0;
  const std::uint32_t msg_id = GetU32(header->data() + 1);
  const std::uint16_t index = static_cast<std::uint16_t>(
      (*header)[5] | static_cast<std::uint16_t>((*header)[6]) << 8);

  if (!rx_active_) {
    if (index != 0) {
      ++dropped_;  // tail of a message whose head we never saw
      return;
    }
    rx_active_ = true;
    rx_msg_id_ = msg_id;
    rx_next_index_ = 0;
    rx_buffer_.clear();
  } else if (msg_id != rx_msg_id_ || index != rx_next_index_) {
    // Fragment from a different/torn message: drop the partial assembly
    // and, if this is a fresh message head, restart with it.
    ++dropped_;
    rx_active_ = false;
    rx_buffer_.clear();
    if (index == 0) {
      rx_active_ = true;
      rx_msg_id_ = msg_id;
      rx_next_index_ = 0;
    } else {
      return;
    }
  }

  const auto data = pkt->Data();
  rx_buffer_.insert(rx_buffer_.end(), data.begin(), data.end());
  ++rx_next_index_;
  if (!last) return;

  rx_active_ = false;
  pkt.reset();  // free the fragment before allocating the full message
  auto assembled = port.arena().Make(rx_buffer_);
  if (!assembled.ok()) {
    ++dropped_;
    ReportError(port, name(), assembled.status().ToString());
    return;
  }
  port.ForwardUp(std::move(assembled).value());
  rx_buffer_.clear();
}

std::string FragmentModule::DescribeStats() const {
  return "fragmented=" + std::to_string(fragmented()) +
         " dropped=" + std::to_string(dropped());
}

// --- AppAModule -------------------------------------------------------------

void AppAModule::HandleData(Direction dir, PacketPtr pkt, ModulePort& port) {
  if (dir == Direction::kDown) {
    {
      MutexLock lock(stats_mu_);
      ++stats_.packets_tx;
      stats_.bytes_tx += pkt->size();
    }
    port.ForwardDown(std::move(pkt));
    return;
  }

  {
    MutexLock lock(stats_mu_);
    ++stats_.packets_rx;
    stats_.bytes_rx += pkt->size();
    const TimePoint now = Now();
    if (stats_.first_rx == TimePoint{}) stats_.first_rx = now;
    stats_.last_rx = now;
  }
  if (mode_ == DeliveryMode::kQueue) {
    rx_queue_.Push(std::move(pkt));  // zero-copy handoff to the application
    if (rx_notify_) rx_notify_();
  }
  // kCountOnly: releasing the PacketPtr returns the buffer to the arena —
  // exactly the paper's measuring A-module behaviour.
}

void AppAModule::ProcessBurst(Direction dir, PacketBatch& batch,
                              ModulePort& port) {
  if (dir == Direction::kDown) {
    scratch_.clear();
    {
      MutexLock lock(stats_mu_);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        ++stats_.packets_tx;
        stats_.bytes_tx += batch[i]->size();
        scratch_.push_back(batch.Take(i));
      }
    }
    batch.Compact();
    port.ForwardDownBatch(scratch_);
    return;
  }

  {
    MutexLock lock(stats_mu_);
    const TimePoint now = Now();
    if (stats_.first_rx == TimePoint{}) stats_.first_rx = now;
    stats_.last_rx = now;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ++stats_.packets_rx;
      stats_.bytes_rx += batch[i]->size();
    }
  }
  if (mode_ == DeliveryMode::kQueue) {
    scratch_.clear();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      scratch_.push_back(batch.Take(i));
    }
    batch.Compact();
    rx_queue_.PushBatch(scratch_);  // one lock, whole train
    if (rx_notify_) rx_notify_();
    return;
  }
  batch.Clear();  // kCountOnly: buffers return to the arena
}

void AppAModule::OnStop(ModulePort& port) {
  (void)port;
  rx_queue_.Close();
  if (rx_notify_) rx_notify_();
}

Result<PacketPtr> AppAModule::ReceivePacket(Duration timeout) {
  auto item = rx_queue_.PopFor(timeout);
  if (!item.has_value()) {
    if (rx_queue_.closed()) {
      return Status(UnavailableError("channel closed"));
    }
    return Status(DeadlineExceededError("receive timed out"));
  }
  return std::move(*item);
}

Result<PacketPtr> AppAModule::TryReceivePacket() {
  std::optional<PacketPtr> item = rx_queue_.TryPop();
  if (!item.has_value()) {
    if (rx_queue_.closed()) {
      return Status(UnavailableError("channel closed"));
    }
    return PacketPtr{};
  }
  return std::move(*item);
}

Result<std::vector<std::uint8_t>> AppAModule::Receive(Duration timeout) {
  COOL_ASSIGN_OR_RETURN(PacketPtr pkt, ReceivePacket(timeout));
  const auto data = pkt->Data();
  return std::vector<std::uint8_t>(data.begin(), data.end());
}

std::string AppAModule::DescribeStats() const {
  const Stats s = snapshot();
  return "tx=" + std::to_string(s.packets_tx) +
         " rx=" + std::to_string(s.packets_rx);
}

AppAModule::Stats AppAModule::snapshot() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

void AppAModule::ResetStats() {
  MutexLock lock(stats_mu_);
  stats_ = Stats{};
}

}  // namespace cool::dacapo
