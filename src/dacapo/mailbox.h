// Per-module mailbox: the pair of message queues from the paper's Fig. 6
// (one for data, one for control), refined so that a module can exert
// backpressure on the *down* direction (toward the network) while still
// draining control messages and up-travelling packets (e.g. ACKs) — an ARQ
// module that stopped reading entirely would deadlock waiting for its own
// acknowledgements.
//
// Priority on pop: control > up-data > down-data. The down queue is bounded;
// pushing into a full down queue blocks, which propagates backpressure
// chain-upward to the sending application. Up and control are unbounded
// (their volume is bounded by the receive window of the transport).
//
// The mailbox is single-consumer (exactly one engine thread pops it) and
// multi-producer. Producers therefore wake the consumer with NotifyOne;
// only Close broadcasts. The batch operations (PushDownBatch, PushUpBatch,
// PopBatch) move whole trains of packets under a single lock acquisition,
// so the per-packet mutex + wakeup cost of the Fig. 6 pointer-passing
// design is amortized across the batch.
//
// Since PR 8 one mailbox serves the whole chain (run-to-completion burst
// engine, DESIGN.md §12): every item carries the chain position (`origin`)
// of the module that handles it first, and the engine walks the train from
// there through the rest of the chain without re-queueing.
#pragma once

#include <deque>
#include <string>
#include <variant>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "dacapo/packet.h"

namespace cool::dacapo {

enum class Direction { kDown, kUp };

inline Direction Opposite(Direction d) noexcept {
  return d == Direction::kDown ? Direction::kUp : Direction::kDown;
}

// In-band control messages travelling along the chain (distinct from
// protocol headers, which ride on packets).
struct ControlMsg {
  enum class Kind {
    kError,        // unrecoverable module failure; text explains
    kPeerClosed,   // transport saw the peer go away
    kPause,        // reconfiguration: stop emitting data
    kResume,       // reconfiguration finished
    kStatsRequest, // modules append stats via ControlUp
  };
  Kind kind = Kind::kError;
  std::string text;
  std::uint64_t arg = 0;
};

struct DataItem {
  Direction dir = Direction::kDown;
  PacketPtr pkt;
  // Chain position of the module that handles this item first (the burst
  // engine starts its walk there).
  std::size_t origin = 0;
};

class Mailbox {
 public:
  struct PopResult {
    enum class Kind { kControl, kData, kTimeout, kClosed } kind;
    // Valid for the corresponding Kind only.
    ControlMsg control;
    Direction control_dir = Direction::kDown;
    std::size_t control_origin = 0;
    DataItem data;
  };

  explicit Mailbox(std::size_t down_capacity = 64)
      : down_capacity_(down_capacity) {}

  // Control: never blocks, never dropped. (All notifications below happen
  // under the mutex so a consumer may destroy the mailbox right after
  // observing the item — see BlockingQueue for the rationale.)
  void PushControl(Direction dir, ControlMsg msg, std::size_t origin = 0) {
    MutexLock lock(mu_);
    if (closed_) return;
    control_.push_back({dir, std::move(msg), origin});
    cv_.NotifyOne();
  }

  // Up data: never blocks (see file comment).
  void PushUp(PacketPtr pkt, std::size_t origin = 0) {
    MutexLock lock(mu_);
    if (closed_) return;
    up_.push_back({std::move(pkt), origin});
    cv_.NotifyOne();
  }

  // Batched up push: the whole train enters under one lock acquisition and
  // the consumer is woken once. `pkts` is emptied either way.
  void PushUpBatch(std::vector<PacketPtr>& pkts, std::size_t origin = 0) {
    if (pkts.empty()) return;
    MutexLock lock(mu_);
    if (!closed_) {
      for (auto& p : pkts) up_.push_back({std::move(p), origin});
      cv_.NotifyOne();
    }
    pkts.clear();  // closed: packets return to the arena here
  }

  // Down data: blocks while the down queue is full. Returns false when the
  // mailbox closed while waiting (packet is dropped).
  bool PushDown(PacketPtr pkt, std::size_t origin = 0) {
    MutexLock lock(mu_);
    while (!closed_ && down_.size() >= down_capacity_) space_.Wait(mu_);
    if (closed_) return false;
    down_.push_back({std::move(pkt), origin});
    cv_.NotifyOne();
    return true;
  }

  // Batched down push: FIFO, blocking for space as needed, one lock
  // acquisition while the queue has room. Returns false once the mailbox
  // closed (remaining packets are dropped). `pkts` is emptied either way.
  bool PushDownBatch(std::vector<PacketPtr>& pkts, std::size_t origin = 0) {
    MutexLock lock(mu_);
    bool pushed_any = false;
    for (auto& p : pkts) {
      while (!closed_ && down_.size() >= down_capacity_) {
        // The consumer may be asleep with the items we already queued; it
        // must run for space to ever appear, so wake it before waiting.
        if (pushed_any) cv_.NotifyOne();
        space_.Wait(mu_);
      }
      if (closed_) {
        pkts.clear();
        return false;
      }
      down_.push_back({std::move(p), origin});
      pushed_any = true;
    }
    if (pushed_any) cv_.NotifyOne();
    pkts.clear();
    return true;
  }

  // Pops the highest-priority item. Down-data is only eligible when
  // `accept_down` is true. Returns kTimeout if nothing eligible arrived
  // within `timeout`, kClosed once closed and fully drained.
  PopResult PopNext(bool accept_down, Duration timeout) {
    const TimePoint deadline = DeadlineFor(timeout);
    MutexLock lock(mu_);
    for (;;) {
      if (!control_.empty()) {
        PopResult r;
        r.kind = PopResult::Kind::kControl;
        r.control_dir = control_.front().dir;
        r.control = std::move(control_.front().msg);
        r.control_origin = control_.front().origin;
        control_.pop_front();
        return r;
      }
      if (!up_.empty()) {
        PopResult r;
        r.kind = PopResult::Kind::kData;
        r.data = DataItem{Direction::kUp, std::move(up_.front().pkt),
                          up_.front().origin};
        up_.pop_front();
        return r;
      }
      if (accept_down && !down_.empty()) {
        PopResult r;
        r.kind = PopResult::Kind::kData;
        r.data = DataItem{Direction::kDown, std::move(down_.front().pkt),
                          down_.front().origin};
        down_.pop_front();
        space_.NotifyOne();
        return r;
      }
      if (closed_) {
        PopResult r;
        r.kind = PopResult::Kind::kClosed;
        return r;
      }
      if (!cv_.WaitUntil(mu_, deadline)) {
        PopResult r;
        r.kind = PopResult::Kind::kTimeout;
        return r;
      }
    }
  }

  enum class BatchStatus { kItems, kTimeout, kClosed };

  // Drains every eligible item — all control, then all up-data, then (when
  // `accept_down`) all down-data, FIFO within each class — under a single
  // lock acquisition, up to `max_n` items appended to `out` (which is
  // cleared first; pass the same vector each call to reuse its capacity).
  // Blocks like PopNext when nothing is eligible: kTimeout after `timeout`,
  // kClosed once closed and drained, kItems otherwise. One space_ wakeup is
  // issued per drained down-item so every blocked producer resumes.
  BatchStatus PopBatch(bool accept_down, std::size_t max_n, Duration timeout,
                       std::vector<PopResult>& out) {
    out.clear();
    if (max_n == 0) return BatchStatus::kTimeout;
    const TimePoint deadline = DeadlineFor(timeout);
    MutexLock lock(mu_);
    for (;;) {
      while (out.size() < max_n && !control_.empty()) {
        PopResult r;
        r.kind = PopResult::Kind::kControl;
        r.control_dir = control_.front().dir;
        r.control = std::move(control_.front().msg);
        r.control_origin = control_.front().origin;
        control_.pop_front();
        out.push_back(std::move(r));
      }
      while (out.size() < max_n && !up_.empty()) {
        PopResult r;
        r.kind = PopResult::Kind::kData;
        r.data = DataItem{Direction::kUp, std::move(up_.front().pkt),
                          up_.front().origin};
        up_.pop_front();
        out.push_back(std::move(r));
      }
      if (accept_down) {
        while (out.size() < max_n && !down_.empty()) {
          PopResult r;
          r.kind = PopResult::Kind::kData;
          r.data = DataItem{Direction::kDown, std::move(down_.front().pkt),
                            down_.front().origin};
          down_.pop_front();
          space_.NotifyOne();
          out.push_back(std::move(r));
        }
      }
      if (!out.empty()) return BatchStatus::kItems;
      if (closed_) return BatchStatus::kClosed;
      if (!cv_.WaitUntil(mu_, deadline)) return BatchStatus::kTimeout;
    }
  }

  void Close() {
    MutexLock lock(mu_);
    closed_ = true;
    // Packets held in the queues return to the arena on destruction.
    control_.clear();
    up_.clear();
    down_.clear();
    cv_.NotifyAll();
    space_.NotifyAll();
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t down_size() const {
    MutexLock lock(mu_);
    return down_.size();
  }

 private:
  struct ControlItem {
    Direction dir;
    ControlMsg msg;
    std::size_t origin;
  };
  struct QueuedPacket {
    PacketPtr pkt;
    std::size_t origin;
  };

  const std::size_t down_capacity_;
  mutable Mutex mu_{LockRank::kMailbox, "dacapo::Mailbox::mu_"};
  CondVar cv_;
  CondVar space_;
  std::deque<ControlItem> control_ COOL_GUARDED_BY(mu_);
  std::deque<QueuedPacket> up_ COOL_GUARDED_BY(mu_);
  std::deque<QueuedPacket> down_ COOL_GUARDED_BY(mu_);
  bool closed_ COOL_GUARDED_BY(mu_) = false;
};

}  // namespace cool::dacapo
