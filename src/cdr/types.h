// CORBA primitive type aliases (CORBA 2.0 §5 / IDL-to-C++ mapping), used by
// the CDR codec, GIOP message definitions and generated stub code.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cool::corba {

using Boolean = bool;
using Char = char;
using Octet = std::uint8_t;
using Short = std::int16_t;
using UShort = std::uint16_t;
using Long = std::int32_t;
using ULong = std::uint32_t;
using LongLong = std::int64_t;
using ULongLong = std::uint64_t;
using Float = float;
using Double = double;
using String = std::string;
using OctetSeq = std::vector<Octet>;

}  // namespace cool::corba
