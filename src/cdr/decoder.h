// CDR decoder: the mirror of cdr::Encoder. All getters return Result so a
// truncated or corrupt message surfaces as kProtocolError instead of UB —
// GIOP engines turn that into a MessageError message.
#pragma once

#include <bit>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "cdr/encoder.h"
#include "cdr/types.h"
#include "common/status.h"

namespace cool::cdr {

class Decoder {
 public:
  // `data` must stay alive while the decoder is used. `base_offset` mirrors
  // Encoder's: octets logically preceding `data` in the message.
  Decoder(std::span<const corba::Octet> data,
          ByteOrder order = NativeOrder(), std::size_t base_offset = 0)
      : data_(data), order_(order), base_offset_(base_offset) {}

  ByteOrder order() const noexcept { return order_; }
  void set_order(ByteOrder order) noexcept { order_ = order; }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool AtEnd() const noexcept { return remaining() == 0; }

  Result<corba::Octet> GetOctet() {
    if (remaining() < 1) return Underrun("octet");
    return data_[pos_++];
  }

  Result<corba::Boolean> GetBoolean() {
    COOL_ASSIGN_OR_RETURN(corba::Octet o, GetOctet());
    if (o > 1) return ProtocolError("boolean octet not 0/1");
    return o == 1;
  }

  Result<corba::Char> GetChar() {
    COOL_ASSIGN_OR_RETURN(corba::Octet o, GetOctet());
    return static_cast<corba::Char>(o);
  }

  Result<corba::Short> GetShort() { return GetIntegral<corba::Short>(); }
  Result<corba::UShort> GetUShort() { return GetIntegral<corba::UShort>(); }
  Result<corba::Long> GetLong() { return GetIntegral<corba::Long>(); }
  Result<corba::ULong> GetULong() { return GetIntegral<corba::ULong>(); }
  Result<corba::LongLong> GetLongLong() {
    return GetIntegral<corba::LongLong>();
  }
  Result<corba::ULongLong> GetULongLong() {
    return GetIntegral<corba::ULongLong>();
  }

  Result<corba::Float> GetFloat() {
    COOL_ASSIGN_OR_RETURN(corba::ULong bits, GetULong());
    return std::bit_cast<corba::Float>(bits);
  }

  Result<corba::Double> GetDouble() {
    COOL_ASSIGN_OR_RETURN(corba::ULongLong bits, GetULongLong());
    return std::bit_cast<corba::Double>(bits);
  }

  Result<corba::String> GetString() {
    COOL_ASSIGN_OR_RETURN(corba::ULong len, GetULong());
    if (len == 0) return Status(ProtocolError("CDR string length 0"));
    if (remaining() < len) return Underrun("string body");
    corba::String s(reinterpret_cast<const char*>(data_.data() + pos_),
                    len - 1);
    if (data_[pos_ + len - 1] != 0) {
      return Status(ProtocolError("CDR string missing NUL"));
    }
    pos_ += len;
    return s;
  }

  // Zero-copy form of GetString: the returned view aliases the decoder's
  // underlying buffer (NUL excluded) and is valid only while that buffer
  // lives — copy into a corba::String before the receive buffer is
  // recycled or reused (see DESIGN.md "Buffer ownership and lifetimes").
  Result<std::string_view> GetStringView() {
    COOL_ASSIGN_OR_RETURN(corba::ULong len, GetULong());
    if (len == 0) return Status(ProtocolError("CDR string length 0"));
    if (remaining() < len) return Underrun("string body");
    std::string_view s(reinterpret_cast<const char*>(data_.data() + pos_),
                       len - 1);
    if (data_[pos_ + len - 1] != 0) {
      return Status(ProtocolError("CDR string missing NUL"));
    }
    pos_ += len;
    return s;
  }

  Result<corba::OctetSeq> GetOctetSeq() {
    COOL_ASSIGN_OR_RETURN(corba::ULong len, GetULong());
    if (remaining() < len) return Underrun("octet sequence body");
    corba::OctetSeq s(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                      data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return s;
  }

  // Zero-copy form of GetOctetSeq: the returned span aliases the decoder's
  // underlying buffer; same lifetime rules as GetStringView.
  Result<std::span<const corba::Octet>> GetOctetSeqView() {
    COOL_ASSIGN_OR_RETURN(corba::ULong len, GetULong());
    if (remaining() < len) return Underrun("octet sequence body");
    std::span<const corba::Octet> s = data_.subspan(pos_, len);
    pos_ += len;
    return s;
  }

  // Bulk sequence<primitive>: the decode mirror of Encoder::PutPrimitiveSeq.
  // Validates count against the remaining octets *before* sizing `out`, so
  // a hostile count cannot force a huge allocation; the payload then lands
  // as one memcpy (native order) or an element-wise byteswap.
  template <typename T>
  Status GetPrimitiveSeq(std::vector<T>& out) {
    static_assert(kPrimitiveSeqElement<T>);
    COOL_ASSIGN_OR_RETURN(corba::ULong count, GetULong());
    out.clear();
    if (count == 0) return Status::Ok();
    COOL_RETURN_IF_ERROR(Align(sizeof(T)));
    if (remaining() / sizeof(T) < count) {
      return Underrun("primitive sequence body");
    }
    out.resize(count);
    auto* raw = reinterpret_cast<corba::Octet*>(out.data());
    const corba::Octet* src = data_.data() + pos_;
    if (sizeof(T) == 1 || order_ == NativeOrder()) {
      std::memcpy(raw, src, count * sizeof(T));
    } else {
      for (std::size_t e = 0; e < count; ++e) {
        for (std::size_t i = 0; i < sizeof(T); ++i) {
          raw[e * sizeof(T) + i] = src[e * sizeof(T) + (sizeof(T) - 1 - i)];
        }
      }
    }
    pos_ += count * sizeof(T);
    return Status::Ok();
  }

  Status GetRaw(std::span<corba::Octet> out) {
    if (remaining() < out.size()) return Underrun("raw bytes");
    std::memcpy(out.data(), data_.data() + pos_, out.size());
    pos_ += out.size();
    return Status::Ok();
  }

  Status Align(std::size_t n) {
    const std::size_t pos = base_offset_ + pos_;
    const std::size_t pad = (n - pos % n) % n;
    if (remaining() < pad) return Underrun("alignment padding");
    pos_ += pad;
    return Status::Ok();
  }

  std::size_t offset() const noexcept { return base_offset_ + pos_; }

 private:
  template <typename T>
  Result<T> GetIntegral() {
    COOL_RETURN_IF_ERROR(Align(sizeof(T)));
    if (remaining() < sizeof(T)) return Underrun("integral");
    // Accumulate in a full-width register: narrow |= would promote the
    // shifted byte to int and narrow back on assignment for 16-bit types.
    std::uint64_t u = 0;
    if (order_ == ByteOrder::kLittleEndian) {
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        u |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
      }
    } else {
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        u |= static_cast<std::uint64_t>(data_[pos_ + sizeof(T) - 1 - i])
             << (8 * i);
      }
    }
    pos_ += sizeof(T);
    return std::bit_cast<T>(static_cast<std::make_unsigned_t<T>>(u));
  }

  Status Underrun(const char* what) const {
    return ProtocolError(std::string("CDR underrun reading ") + what);
  }

  std::span<const corba::Octet> data_;
  ByteOrder order_;
  std::size_t base_offset_;
  std::size_t pos_ = 0;
};

}  // namespace cool::cdr
