// CDR (Common Data Representation) encoder, CORBA 2.0 §12. Primitives are
// aligned to their natural size relative to the *start of the message*; the
// encoder therefore tracks a logical offset, which GIOP seeds with the
// 12-byte header it writes itself.
#pragma once

#include <bit>
#include <cstring>
#include <span>
#include <string_view>
#include <type_traits>

#include "cdr/types.h"
#include "common/byte_buffer.h"

namespace cool::cdr {

enum class ByteOrder : corba::Octet {
  kBigEndian = 0,    // CDR FALSE
  kLittleEndian = 1, // CDR TRUE
};

inline ByteOrder NativeOrder() noexcept {
  return std::endian::native == std::endian::little ? ByteOrder::kLittleEndian
                                                    : ByteOrder::kBigEndian;
}

// Sequence element types eligible for bulk marshalling: fixed-size
// arithmetic primitives whose CDR image is the naturally-aligned native
// representation modulo byte order. bool is excluded (vector<bool> is a
// bitset, and CDR booleans need 0/1 validation on decode).
template <typename T>
inline constexpr bool kPrimitiveSeqElement =
    std::is_arithmetic_v<T> && !std::is_same_v<T, bool> &&
    (sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 || sizeof(T) == 8);

class Encoder {
 public:
  // `base_offset`: how many octets logically precede this encoder's output
  // in the enclosing message (alignment is computed from the message start).
  explicit Encoder(ByteOrder order = NativeOrder(),
                   std::size_t base_offset = 0)
      : order_(order), base_offset_(base_offset) {}

  // Adopts `buf` (typically a BufferPool lease) as the output buffer,
  // clearing its contents but keeping its capacity and pool homing. This is
  // the allocation-free form: encode into leased storage, TakeBuffer(), and
  // the storage returns to its pool when the frame dies.
  Encoder(ByteOrder order, std::size_t base_offset, ByteBuffer buf)
      : order_(order), base_offset_(base_offset), buf_(std::move(buf)) {
    buf_.Clear();
  }

  ByteOrder order() const noexcept { return order_; }

  // Pre-sizes the output buffer when the caller knows the frame size, so
  // large payloads don't pay repeated vector regrowth during encoding.
  void Reserve(std::size_t n) { buf_.Reserve(n); }

  void PutOctet(corba::Octet v) { buf_.AppendByte(v); }
  void PutBoolean(corba::Boolean v) { PutOctet(v ? 1 : 0); }
  void PutChar(corba::Char v) {
    PutOctet(static_cast<corba::Octet>(v));
  }
  void PutShort(corba::Short v) { PutIntegral(v); }
  void PutUShort(corba::UShort v) { PutIntegral(v); }
  void PutLong(corba::Long v) { PutIntegral(v); }
  void PutULong(corba::ULong v) { PutIntegral(v); }
  void PutLongLong(corba::LongLong v) { PutIntegral(v); }
  void PutULongLong(corba::ULongLong v) { PutIntegral(v); }

  void PutFloat(corba::Float v) {
    PutIntegral(std::bit_cast<corba::ULong>(v));
  }
  void PutDouble(corba::Double v) {
    PutIntegral(std::bit_cast<corba::ULongLong>(v));
  }

  // CDR string: ulong length including the terminating NUL, then the octets,
  // then NUL.
  void PutString(std::string_view s) {
    PutULong(static_cast<corba::ULong>(s.size() + 1));
    buf_.Append(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
    buf_.AppendByte(0);
  }

  // sequence<octet>: ulong count then raw octets.
  void PutOctetSeq(std::span<const corba::Octet> s) {
    PutULong(static_cast<corba::ULong>(s.size()));
    buf_.Append(s);
  }

  // Bulk sequence<primitive>: ulong count, element alignment, then the
  // payload. Consecutive same-size primitives stay naturally aligned, so
  // when the target byte order is native the CDR image IS the array image
  // — one memcpy instead of count individual PutIntegral calls. A foreign
  // byte order swaps element-wise through a stack staging chunk, still
  // appending in large runs.
  template <typename T>
  void PutPrimitiveSeq(std::span<const T> v) {
    static_assert(kPrimitiveSeqElement<T>);
    PutULong(static_cast<corba::ULong>(v.size()));
    if (v.empty()) return;
    Align(sizeof(T));
    const auto* raw = reinterpret_cast<const corba::Octet*>(v.data());
    if (sizeof(T) == 1 || order_ == NativeOrder()) {
      buf_.Append(std::span<const corba::Octet>(raw, v.size() * sizeof(T)));
      return;
    }
    corba::Octet chunk[512];
    std::size_t fill = 0;
    for (std::size_t e = 0; e < v.size(); ++e) {
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        chunk[fill + i] = raw[e * sizeof(T) + (sizeof(T) - 1 - i)];
      }
      fill += sizeof(T);
      if (fill == sizeof(chunk)) {
        buf_.Append(std::span<const corba::Octet>(chunk, fill));
        fill = 0;
      }
    }
    if (fill != 0) buf_.Append(std::span<const corba::Octet>(chunk, fill));
  }

  // Raw bytes, no count, no alignment (e.g. the 4-octet GIOP magic).
  void PutRaw(std::span<const corba::Octet> s) { buf_.Append(s); }

  // Inserts padding so the next primitive of size `n` is naturally aligned.
  void Align(std::size_t n) {
    const std::size_t pos = base_offset_ + buf_.size();
    const std::size_t pad = (n - pos % n) % n;
    buf_.AppendZeros(pad);
  }

  // Logical offset of the next octet written (message-relative).
  std::size_t offset() const noexcept { return base_offset_ + buf_.size(); }

  const ByteBuffer& buffer() const noexcept { return buf_; }
  ByteBuffer&& TakeBuffer() noexcept { return std::move(buf_); }

 private:
  template <typename T>
  void PutIntegral(T v) {
    Align(sizeof(T));
    auto u = std::bit_cast<std::make_unsigned_t<T>>(v);
    corba::Octet bytes[sizeof(T)];
    if (order_ == ByteOrder::kLittleEndian) {
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        bytes[i] = static_cast<corba::Octet>(u >> (8 * i));
      }
    } else {
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        bytes[sizeof(T) - 1 - i] = static_cast<corba::Octet>(u >> (8 * i));
      }
    }
    buf_.Append(bytes);
  }

  ByteOrder order_;
  std::size_t base_offset_;
  ByteBuffer buf_;
};

}  // namespace cool::cdr
