// In-process simulated network. Replaces the paper's testbed (ATM link +
// ChorusOS endsystems) with real threads exchanging bytes through paced,
// delayed, optionally lossy in-memory channels:
//
//  * StreamSocket — reliable FIFO byte stream ("TCP"): pacing to the link
//    bandwidth + propagation delay, no loss, no reorder.
//  * DatagramPort — unreliable message port (raw "layer T" service and the
//    Chorus-IPC analogue): pacing, delay, jitter (which may reorder), loss.
//
// All delays are real wall-clock delays, so throughput/latency measured by
// the benchmarks is real measured behaviour of the running protocol stack,
// not a closed-form model.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "sim/address.h"
#include "sim/link.h"
#include "sim/waitset.h"

namespace cool::sim {

class Network;
class StreamSocket;

struct Datagram {
  Address from;
  std::vector<std::uint8_t> payload;
};

namespace internal {

// One direction of a stream connection: a bounded queue of timed chunks.
class StreamPipe {
 public:
  StreamPipe(LinkProperties link, std::size_t window_bytes)
      : link_(link), window_bytes_(window_bytes) {}

  // Paces the caller to the link bandwidth, then enqueues the bytes with
  // delivery time now+latency. Blocks while the receive window is full.
  // Fails with kUnavailable once the pipe is closed.
  Status Write(std::span<const std::uint8_t> data);

  // Gathered write: the concatenation of `parts` is paced and enqueued as
  // one chunk — a writev for the simulated stream. The reader cannot tell
  // it apart from Write(join(parts)).
  Status WriteV(std::span<const std::span<const std::uint8_t>> parts);

  // Blocks until at least one ready octet is available (or the pipe is
  // closed and drained -> kUnavailable; or `deadline` passes ->
  // kDeadlineExceeded). Returns the number of octets copied, up to
  // out.size().
  Result<std::size_t> Read(std::span<std::uint8_t> out,
                           std::optional<TimePoint> deadline = std::nullopt);

  // Non-blocking read: copies any deliverable octets and returns the count
  // (0 when nothing is due yet — a watcher is re-armed for the head chunk's
  // delivery time); kUnavailable once closed and drained.
  Result<std::size_t> TryRead(std::span<std::uint8_t> out);

  // Attaches the read side to `set`: every delivery and Close() signals
  // `token` at the moment the data becomes readable.
  void WatchRead(const WaitSet& set, WaitSet::Token token);

  void Close();

 private:
  std::size_t DrainReadyLocked(std::span<std::uint8_t> out)
      COOL_REQUIRES(mu_);

  struct Chunk {
    TimePoint ready;
    std::vector<std::uint8_t> data;
    std::size_t offset = 0;
  };

  // Bound on recycled chunk backing stores (the NIC-ring analogue: a
  // drained chunk's storage is reused by a later write instead of being
  // freed, so a steady request/reply exchange allocates nothing here).
  static constexpr std::size_t kMaxSpareChunks = 8;
  // Consumed-prefix bound of the chunk FIFO before it compacts.
  static constexpr std::size_t kCompactChunks = 32;

  // FIFO accessors over chunks_/chunks_head_ (see below).
  bool HasChunkLocked() const COOL_REQUIRES(mu_) {
    return chunks_head_ < chunks_.size();
  }
  Chunk& FrontChunkLocked() COOL_REQUIRES(mu_) { return chunks_[chunks_head_]; }
  void PopChunkLocked() COOL_REQUIRES(mu_) {
    if (++chunks_head_ == chunks_.size()) {
      chunks_.clear();
      chunks_head_ = 0;
    } else if (chunks_head_ >= kCompactChunks) {
      chunks_.erase(chunks_.begin(),
                    chunks_.begin() + static_cast<std::ptrdiff_t>(chunks_head_));
      chunks_head_ = 0;
    }
  }

  const LinkProperties link_;
  const std::size_t window_bytes_;

  Mutex mu_{LockRank::kSimNetwork, "sim::StreamPipe::mu_"};
  CondVar readable_;
  CondVar writable_;
  Watchable read_watch_;  // internally synchronised
  // In-flight chunk FIFO as vector + head index rather than std::deque: a
  // default-constructed deque eagerly allocates its map + first node
  // (~576 bytes in libstdc++), which at 100k connections — two pipes each
  // — dominated the idle per-connection footprint. An idle pipe holds no
  // chunk heap at all.
  std::vector<Chunk> chunks_ COOL_GUARDED_BY(mu_);
  std::size_t chunks_head_ COOL_GUARDED_BY(mu_) = 0;
  std::vector<std::vector<std::uint8_t>> spare_ COOL_GUARDED_BY(mu_);
  std::size_t buffered_bytes_ COOL_GUARDED_BY(mu_) = 0;
  TimePoint link_free_at_ COOL_GUARDED_BY(mu_){};
  bool closed_ COOL_GUARDED_BY(mu_) = false;
};

// Shared accept queue: outlives the Listener wrapper so an in-flight
// Connect never dereferences a destroyed listener.
struct AcceptQueue {
  Mutex mu{LockRank::kSimNetwork, "sim::AcceptQueue::mu"};
  CondVar cv;
  Watchable watch;  // internally synchronised
  std::deque<std::unique_ptr<StreamSocket>> pending COOL_GUARDED_BY(mu);
  bool closed COOL_GUARDED_BY(mu) = false;

  void Enqueue(std::unique_ptr<StreamSocket> socket);
  Result<std::unique_ptr<StreamSocket>> Pop();
  Result<std::unique_ptr<StreamSocket>> PopFor(Duration timeout);
  // Non-blocking accept: a null socket (no error) means nothing pending.
  Result<std::unique_ptr<StreamSocket>> TryPop();
  void WatchAccept(const WaitSet& set, WaitSet::Token token);
  void Close();
};

struct TimedDatagram {
  TimePoint ready;
  std::uint64_t seq = 0;  // tie-break keeps delivery deterministic
  Datagram dgram;
  friend bool operator>(const TimedDatagram& a, const TimedDatagram& b) {
    return a.ready != b.ready ? a.ready > b.ready : a.seq > b.seq;
  }
};

// Shared receive queue of a datagram port (same lifetime rationale).
struct DatagramQueue {
  mutable Mutex mu{LockRank::kSimNetwork, "sim::DatagramQueue::mu"};
  CondVar cv;
  Watchable watch;  // internally synchronised
  std::priority_queue<TimedDatagram, std::vector<TimedDatagram>,
                      std::greater<>>
      rx COOL_GUARDED_BY(mu);
  std::uint64_t next_seq COOL_GUARDED_BY(mu) = 0;
  bool closed COOL_GUARDED_BY(mu) = false;

  void Deliver(TimePoint ready, Address from,
               std::vector<std::uint8_t> payload);
  // Blocks until the earliest datagram is deliverable; nullopt when closed
  // (Pop) or when the deadline passes first (PopFor).
  std::optional<Datagram> Pop();
  std::optional<Datagram> PopFor(Duration timeout);
  // Non-blocking: nullopt when nothing is deliverable yet (a watcher is
  // re-armed for the head datagram's arrival) — check depleted() to tell
  // "not yet" from "closed and drained".
  std::optional<Datagram> TryPop();
  bool depleted() const;
  void WatchRecv(const WaitSet& set, WaitSet::Token token);
  void Close();
};

}  // namespace internal

// Reliable bidirectional byte stream between two simulated hosts.
class StreamSocket {
 public:
  StreamSocket(Address local, Address remote,
               std::shared_ptr<internal::StreamPipe> tx,
               std::shared_ptr<internal::StreamPipe> rx)
      : local_(std::move(local)),
        remote_(std::move(remote)),
        tx_(std::move(tx)),
        rx_(std::move(rx)) {}

  ~StreamSocket() { Close(); }

  StreamSocket(const StreamSocket&) = delete;
  StreamSocket& operator=(const StreamSocket&) = delete;

  Status Send(std::span<const std::uint8_t> data) { return tx_->Write(data); }

  // Gathered send (writev): `parts` leave as one contiguous write.
  Status SendV(std::span<const std::span<const std::uint8_t>> parts) {
    return tx_->WriteV(parts);
  }

  // Reads up to out.size() octets; blocks for at least one.
  Result<std::size_t> Recv(std::span<std::uint8_t> out) {
    return rx_->Read(out);
  }

  // As Recv, but gives up with kDeadlineExceeded after `timeout`.
  Result<std::size_t> RecvFor(std::span<std::uint8_t> out, Duration timeout) {
    return rx_->Read(out, DeadlineFor(timeout));
  }

  // Reads exactly out.size() octets or fails.
  Status RecvExact(std::span<std::uint8_t> out);

  // Non-blocking read: 0 (no error) when nothing is deliverable yet;
  // kUnavailable once the peer closed and the stream is drained.
  Result<std::size_t> TryRecv(std::span<std::uint8_t> out) {
    return rx_->TryRead(out);
  }

  // Signals `token` on `set` whenever TryRecv may make progress.
  void WatchRecv(const WaitSet& set, WaitSet::Token token) {
    rx_->WatchRead(set, token);
  }

  // Closes both directions (peer reads drain then see kUnavailable).
  void Close() {
    tx_->Close();
    rx_->Close();
  }

  const Address& local() const noexcept { return local_; }
  const Address& remote() const noexcept { return remote_; }

 private:
  Address local_;
  Address remote_;
  std::shared_ptr<internal::StreamPipe> tx_;
  std::shared_ptr<internal::StreamPipe> rx_;
};

// Passive side of stream setup.
class Listener {
 public:
  Listener(Network* net, Address addr,
           std::shared_ptr<internal::AcceptQueue> queue)
      : net_(net), addr_(std::move(addr)), queue_(std::move(queue)) {}
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Blocks until a peer connects or the listener is closed (kUnavailable).
  Result<std::unique_ptr<StreamSocket>> Accept() { return queue_->Pop(); }
  Result<std::unique_ptr<StreamSocket>> AcceptFor(Duration timeout) {
    return queue_->PopFor(timeout);
  }

  // Non-blocking accept: a null socket (no error) means nothing pending.
  Result<std::unique_ptr<StreamSocket>> TryAccept() {
    return queue_->TryPop();
  }

  // Signals `token` on `set` whenever a connection is waiting to accept.
  void WatchAccept(const WaitSet& set, WaitSet::Token token) {
    queue_->WatchAccept(set, token);
  }

  void Close() { queue_->Close(); }

  const Address& address() const noexcept { return addr_; }

 private:
  friend class Network;

  Network* net_;
  Address addr_;
  std::shared_ptr<internal::AcceptQueue> queue_;
};

// Unreliable message port.
class DatagramPort {
 public:
  DatagramPort(Network* net, Address addr,
               std::shared_ptr<internal::DatagramQueue> queue)
      : net_(net), addr_(std::move(addr)), queue_(std::move(queue)) {}
  ~DatagramPort();

  DatagramPort(const DatagramPort&) = delete;
  DatagramPort& operator=(const DatagramPort&) = delete;

  // Paces to link bandwidth; the datagram may be dropped (loss_rate),
  // delayed (latency + jitter) and consequently reordered.
  Status SendTo(const Address& dst, std::span<const std::uint8_t> payload);

  // Gathered variant: the concatenation of `parts` forms one datagram.
  Status SendToV(const Address& dst,
                 std::span<const std::span<const std::uint8_t>> parts);

  // Blocks until a datagram is deliverable or the port is closed.
  std::optional<Datagram> Recv() { return queue_->Pop(); }
  std::optional<Datagram> RecvFor(Duration timeout) {
    return queue_->PopFor(timeout);
  }

  // Non-blocking: nullopt when nothing is deliverable yet; depleted()
  // distinguishes "not yet" from "closed and drained".
  std::optional<Datagram> TryRecv() { return queue_->TryPop(); }
  bool depleted() const { return queue_->depleted(); }

  // Signals `token` on `set` whenever TryRecv may make progress.
  void WatchRecv(const WaitSet& set, WaitSet::Token token) {
    queue_->WatchRecv(set, token);
  }

  void Close() { queue_->Close(); }

  const Address& address() const noexcept { return addr_; }

 private:
  friend class Network;

  Network* net_;
  Address addr_;
  std::shared_ptr<internal::DatagramQueue> queue_;

  Mutex tx_mu_{LockRank::kSimNetwork, "sim::DatagramPort::tx_mu_"};
  TimePoint link_free_at_ COOL_GUARDED_BY(tx_mu_){};
};

// The network fabric: host-pair link properties plus the registries of
// listeners and datagram ports. Must outlive every Listener/Port/Socket
// created through it.
class Network {
 public:
  explicit Network(LinkProperties default_link = {},
                   std::uint64_t rng_seed = 1)
      : default_link_(default_link), rng_(rng_seed) {}

  // Symmetric per-host-pair override.
  void SetLink(const std::string& host_a, const std::string& host_b,
               LinkProperties props);
  LinkProperties LinkBetween(const std::string& a, const std::string& b) const;

  Result<std::unique_ptr<Listener>> Listen(const Address& addr);

  // Establishes a stream from `local_host` to `remote`. The handshake costs
  // one round-trip of the link latency, as TCP connection setup would.
  Result<std::unique_ptr<StreamSocket>> Connect(const std::string& local_host,
                                                const Address& remote);

  Result<std::unique_ptr<DatagramPort>> OpenPort(const Address& addr);

 private:
  friend class Listener;
  friend class DatagramPort;

  void Unregister(const Listener* listener);
  void UnregisterPort(const DatagramPort* port);

  // Datagram fan-in used by DatagramPort::SendTo (applies loss + jitter).
  Status RouteDatagram(const Address& from, const Address& dst,
                       std::vector<std::uint8_t> payload,
                       TimePoint earliest_arrival);

  bool RollLossLocked(double p) COOL_REQUIRES(mu_);
  Duration RollJitterLocked(Duration max_jitter) COOL_REQUIRES(mu_);

  const LinkProperties default_link_;

  mutable Mutex mu_{LockRank::kSimNetwork, "sim::Network::mu_"};
  std::unordered_map<Address, std::shared_ptr<internal::AcceptQueue>,
                     AddressHash>
      listeners_ COOL_GUARDED_BY(mu_);
  std::unordered_map<Address, std::shared_ptr<internal::DatagramQueue>,
                     AddressHash>
      ports_ COOL_GUARDED_BY(mu_);
  std::map<std::pair<std::string, std::string>, LinkProperties> links_
      COOL_GUARDED_BY(mu_);
  Rng rng_ COOL_GUARDED_BY(mu_);
  std::uint16_t next_ephemeral_ COOL_GUARDED_BY(mu_) = 40000;
};

}  // namespace cool::sim
