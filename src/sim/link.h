// Link properties of the simulated network. Defaults approximate the
// paper's era: ~100 Mbit/s of usable rate (155 Mb/s ATM minus cell tax) and
// sub-millisecond campus latency.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/clock.h"

namespace cool::sim {

struct LinkProperties {
  // Serialization rate applied to every octet that crosses the link.
  std::uint64_t bandwidth_bps = 100'000'000;
  // One-way propagation delay.
  Duration latency = microseconds(500);
  // Uniform random extra delay in [0, jitter] applied per datagram
  // (streams are FIFO and only see pacing + latency).
  Duration jitter = Duration::zero();
  // Probability that a *datagram* is silently dropped. Streams are
  // reliable by construction (they model TCP above the loss).
  double loss_rate = 0.0;
  // Maximum datagram payload.
  std::size_t mtu = 64 * 1024;

  // Time the link is busy serializing `bytes` octets.
  Duration SerializationDelay(std::size_t bytes) const {
    if (bandwidth_bps == 0) return Duration::zero();
    const double seconds = static_cast<double>(bytes) * 8.0 /
                           static_cast<double>(bandwidth_bps);
    return std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(seconds));
  }
};

}  // namespace cool::sim
