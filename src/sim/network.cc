#include "sim/network.h"

#include <algorithm>

#include "common/logging.h"

namespace cool::sim {

namespace internal {

Status StreamPipe::Write(std::span<const std::uint8_t> data) {
  const std::span<const std::uint8_t> one[] = {data};
  return WriteV(one);
}

Status StreamPipe::WriteV(std::span<const std::span<const std::uint8_t>> parts) {
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  if (total == 0) return Status::Ok();

  // Pace: the link is busy until every previously written octet has been
  // serialized; this write extends that horizon.
  TimePoint send_done;
  {
    MutexLock lock(mu_);
    if (closed_) return UnavailableError("stream closed");
    const TimePoint start = std::max(Now(), link_free_at_);
    send_done = start + link_.SerializationDelay(total);
    link_free_at_ = send_done;
  }
  PreciseSleep(send_done - Now());

  MutexLock lock(mu_);
  while (!closed_ && buffered_bytes_ >= window_bytes_) writable_.Wait(mu_);
  if (closed_) return UnavailableError("stream closed");

  Chunk chunk;
  const TimePoint deliver_at = send_done + link_.latency;
  chunk.ready = deliver_at;
  if (!spare_.empty()) {
    chunk.data = std::move(spare_.back());  // recycled backing store
    spare_.pop_back();
  }
  chunk.data.reserve(total);
  for (const auto& part : parts) {
    chunk.data.insert(chunk.data.end(), part.begin(), part.end());
  }
  buffered_bytes_ += total;
  chunks_.push_back(std::move(chunk));
  readable_.NotifyOne();  // under the lock: destruction-safe
  read_watch_.SignalReady(deliver_at);
  return Status::Ok();
}

Result<std::size_t> StreamPipe::Read(std::span<std::uint8_t> out,
                                     std::optional<TimePoint> deadline) {
  if (out.empty()) return std::size_t{0};
  MutexLock lock(mu_);
  for (;;) {
    if (HasChunkLocked()) {
      const TimePoint ready = FrontChunkLocked().ready;
      if (ready <= Now()) break;
      if (deadline.has_value() && ready > *deadline) {
        if (Now() >= *deadline) {
          return Status(DeadlineExceededError("stream read timed out"));
        }
        readable_.WaitUntil(mu_, *deadline);
      } else {
        readable_.WaitUntil(mu_, ready);
      }
      continue;
    }
    if (closed_) return Status(UnavailableError("stream closed by peer"));
    if (deadline.has_value()) {
      if (Now() >= *deadline) {
        return Status(DeadlineExceededError("stream read timed out"));
      }
      readable_.WaitUntil(mu_, *deadline);
    } else {
      readable_.Wait(mu_);
    }
  }

  return DrainReadyLocked(out);
}

std::size_t StreamPipe::DrainReadyLocked(std::span<std::uint8_t> out)
    COOL_REQUIRES(mu_) {
  std::size_t copied = 0;
  while (copied < out.size() && HasChunkLocked() &&
         FrontChunkLocked().ready <= Now()) {
    Chunk& chunk = FrontChunkLocked();
    const std::size_t take =
        std::min(out.size() - copied, chunk.data.size() - chunk.offset);
    std::copy_n(chunk.data.begin() + static_cast<std::ptrdiff_t>(chunk.offset),
                take, out.begin() + static_cast<std::ptrdiff_t>(copied));
    chunk.offset += take;
    copied += take;
    buffered_bytes_ -= take;
    if (chunk.offset == chunk.data.size()) {
      if (spare_.size() < kMaxSpareChunks) {
        chunk.data.clear();  // keep the capacity warm for the next write
        spare_.push_back(std::move(chunk.data));
      }
      PopChunkLocked();
    }
  }
  if (copied > 0) writable_.NotifyOne();
  return copied;
}

Result<std::size_t> StreamPipe::TryRead(std::span<std::uint8_t> out) {
  if (out.empty()) return std::size_t{0};
  MutexLock lock(mu_);
  const std::size_t copied = DrainReadyLocked(out);
  if (copied > 0) return copied;
  if (HasChunkLocked()) {
    // Head chunk still in flight: re-arm the watcher for its delivery time
    // so the pre-attach backlog is never silently stranded.
    read_watch_.SignalReady(FrontChunkLocked().ready);
    return std::size_t{0};
  }
  if (closed_) return Status(UnavailableError("stream closed by peer"));
  return std::size_t{0};
}

void StreamPipe::WatchRead(const WaitSet& set, WaitSet::Token token) {
  MutexLock lock(mu_);
  read_watch_.Watch(set, token);
}

void StreamPipe::Close() {
  MutexLock lock(mu_);
  closed_ = true;
  readable_.NotifyAll();
  writable_.NotifyAll();
  read_watch_.SignalReady();
}

void AcceptQueue::Enqueue(std::unique_ptr<StreamSocket> socket) {
  MutexLock lock(mu);
  if (closed) return;  // connection refused; peer sees closed pipes
  pending.push_back(std::move(socket));
  cv.NotifyOne();
  watch.SignalReady();
}

Result<std::unique_ptr<StreamSocket>> AcceptQueue::Pop() {
  MutexLock lock(mu);
  while (!closed && pending.empty()) cv.Wait(mu);
  if (pending.empty()) return Status(UnavailableError("listener closed"));
  auto socket = std::move(pending.front());
  pending.pop_front();
  return socket;
}

Result<std::unique_ptr<StreamSocket>> AcceptQueue::PopFor(Duration timeout) {
  const TimePoint deadline = DeadlineFor(timeout);
  MutexLock lock(mu);
  while (!closed && pending.empty()) {
    if (!cv.WaitUntil(mu, deadline)) break;  // timed out
  }
  if (!closed && pending.empty()) {
    return Status(DeadlineExceededError("accept timed out"));
  }
  if (pending.empty()) return Status(UnavailableError("listener closed"));
  auto socket = std::move(pending.front());
  pending.pop_front();
  return socket;
}

Result<std::unique_ptr<StreamSocket>> AcceptQueue::TryPop() {
  MutexLock lock(mu);
  if (!pending.empty()) {
    auto socket = std::move(pending.front());
    pending.pop_front();
    return socket;
  }
  if (closed) return Status(UnavailableError("listener closed"));
  return std::unique_ptr<StreamSocket>();
}

void AcceptQueue::WatchAccept(const WaitSet& set, WaitSet::Token token) {
  MutexLock lock(mu);
  watch.Watch(set, token);
}

void AcceptQueue::Close() {
  std::deque<std::unique_ptr<StreamSocket>> orphans;
  {
    MutexLock lock(mu);
    closed = true;
    orphans.swap(pending);
    cv.NotifyAll();
    watch.SignalReady();
  }
  // Hang up connections that were queued but never accepted — their peers
  // may be blocked mid-handshake and must see kUnavailable, not wait
  // forever. Outside the lock: Close() takes the pipes' own locks.
  for (auto& socket : orphans) socket->Close();
}

void DatagramQueue::Deliver(TimePoint ready, Address from,
                            std::vector<std::uint8_t> payload) {
  MutexLock lock(mu);
  if (closed) return;
  TimedDatagram t;
  t.ready = ready;
  t.seq = next_seq++;
  t.dgram = Datagram{std::move(from), std::move(payload)};
  rx.push(std::move(t));
  cv.NotifyOne();
  watch.SignalReady(ready);
}

std::optional<Datagram> DatagramQueue::Pop() {
  MutexLock lock(mu);
  for (;;) {
    if (!rx.empty()) {
      const TimePoint ready = rx.top().ready;
      if (ready <= Now()) break;
      cv.WaitUntil(mu, ready);
      continue;
    }
    if (closed) return std::nullopt;
    cv.Wait(mu);
  }
  Datagram d = std::move(const_cast<TimedDatagram&>(rx.top()).dgram);
  rx.pop();
  return d;
}

std::optional<Datagram> DatagramQueue::PopFor(Duration timeout) {
  const TimePoint deadline = DeadlineFor(timeout);
  MutexLock lock(mu);
  for (;;) {
    if (!rx.empty() && rx.top().ready <= Now()) break;
    const TimePoint wake =
        rx.empty() ? deadline : std::min(deadline, rx.top().ready);
    if (closed && rx.empty()) return std::nullopt;
    if (Now() >= deadline) return std::nullopt;
    cv.WaitUntil(mu, wake);
    if (closed && rx.empty()) return std::nullopt;
  }
  Datagram d = std::move(const_cast<TimedDatagram&>(rx.top()).dgram);
  rx.pop();
  return d;
}

std::optional<Datagram> DatagramQueue::TryPop() {
  MutexLock lock(mu);
  if (!rx.empty()) {
    if (rx.top().ready > Now()) {
      // Head datagram still in flight: re-arm for its arrival time.
      watch.SignalReady(rx.top().ready);
      return std::nullopt;
    }
    Datagram d = std::move(const_cast<TimedDatagram&>(rx.top()).dgram);
    rx.pop();
    return d;
  }
  return std::nullopt;
}

bool DatagramQueue::depleted() const {
  MutexLock lock(mu);
  return closed && rx.empty();
}

void DatagramQueue::WatchRecv(const WaitSet& set, WaitSet::Token token) {
  MutexLock lock(mu);
  watch.Watch(set, token);
}

void DatagramQueue::Close() {
  MutexLock lock(mu);
  closed = true;
  cv.NotifyAll();
  watch.SignalReady();
}

}  // namespace internal

Status StreamSocket::RecvExact(std::span<std::uint8_t> out) {
  std::size_t got = 0;
  while (got < out.size()) {
    COOL_ASSIGN_OR_RETURN(std::size_t n, Recv(out.subspan(got)));
    got += n;
  }
  return Status::Ok();
}

Listener::~Listener() {
  Close();
  net_->Unregister(this);
}

DatagramPort::~DatagramPort() {
  Close();
  net_->UnregisterPort(this);
}

Status DatagramPort::SendTo(const Address& dst,
                            std::span<const std::uint8_t> payload) {
  // Kept separate from SendToV: this runs per fragment on the dacapo data
  // path, and the single-span case needs no gather loop.
  const LinkProperties link = net_->LinkBetween(addr_.host, dst.host);
  if (payload.size() > link.mtu) {
    return InvalidArgumentError("datagram exceeds link MTU");
  }

  TimePoint send_done;
  {
    MutexLock lock(tx_mu_);
    const TimePoint start = std::max(Now(), link_free_at_);
    send_done = start + link.SerializationDelay(payload.size());
    link_free_at_ = send_done;
  }
  PreciseSleep(send_done - Now());

  return net_->RouteDatagram(
      addr_, dst, std::vector<std::uint8_t>(payload.begin(), payload.end()),
      send_done + link.latency);
}

Status DatagramPort::SendToV(
    const Address& dst, std::span<const std::span<const std::uint8_t>> parts) {
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  const LinkProperties link = net_->LinkBetween(addr_.host, dst.host);
  if (total > link.mtu) {
    return InvalidArgumentError("datagram exceeds link MTU");
  }

  TimePoint send_done;
  {
    MutexLock lock(tx_mu_);
    const TimePoint start = std::max(Now(), link_free_at_);
    send_done = start + link.SerializationDelay(total);
    link_free_at_ = send_done;
  }
  PreciseSleep(send_done - Now());

  std::vector<std::uint8_t> payload;
  payload.reserve(total);
  for (const auto& part : parts) {
    payload.insert(payload.end(), part.begin(), part.end());
  }
  return net_->RouteDatagram(addr_, dst, std::move(payload),
                             send_done + link.latency);
}

void Network::SetLink(const std::string& host_a, const std::string& host_b,
                      LinkProperties props) {
  MutexLock lock(mu_);
  links_[std::minmax(host_a, host_b)] = props;
}

LinkProperties Network::LinkBetween(const std::string& a,
                                    const std::string& b) const {
  if (a == b) {
    // Loopback: no pacing (bandwidth 0 == infinite), no propagation.
    LinkProperties loopback;
    loopback.bandwidth_bps = 0;
    loopback.latency = Duration::zero();
    loopback.jitter = Duration::zero();
    loopback.loss_rate = 0.0;
    return loopback;
  }
  MutexLock lock(mu_);
  const auto it = links_.find(std::minmax(a, b));
  return it != links_.end() ? it->second : default_link_;
}

Result<std::unique_ptr<Listener>> Network::Listen(const Address& addr) {
  MutexLock lock(mu_);
  auto [it, inserted] = listeners_.try_emplace(addr);
  if (!inserted) {
    return Status(AlreadyExistsError("address in use: " + addr.ToString()));
  }
  it->second = std::make_shared<internal::AcceptQueue>();
  return std::make_unique<Listener>(this, addr, it->second);
}

Result<std::unique_ptr<StreamSocket>> Network::Connect(
    const std::string& local_host, const Address& remote) {
  std::shared_ptr<internal::AcceptQueue> queue;
  Address local;
  {
    MutexLock lock(mu_);
    const auto it = listeners_.find(remote);
    if (it == listeners_.end()) {
      return Status(
          UnavailableError("connection refused: " + remote.ToString()));
    }
    queue = it->second;
    local = Address{local_host, next_ephemeral_++};
  }

  const LinkProperties link = LinkBetween(local_host, remote.host);
  // TCP-style handshake: one round trip before data can flow.
  PreciseSleep(link.latency * 2);

  constexpr std::size_t kWindowBytes = 4 * 1024 * 1024;
  auto a_to_b = std::make_shared<internal::StreamPipe>(link, kWindowBytes);
  auto b_to_a = std::make_shared<internal::StreamPipe>(link, kWindowBytes);

  auto client_side =
      std::make_unique<StreamSocket>(local, remote, a_to_b, b_to_a);
  auto server_side =
      std::make_unique<StreamSocket>(remote, local, b_to_a, a_to_b);
  queue->Enqueue(std::move(server_side));
  return client_side;
}

Result<std::unique_ptr<DatagramPort>> Network::OpenPort(const Address& addr) {
  MutexLock lock(mu_);
  auto [it, inserted] = ports_.try_emplace(addr);
  if (!inserted) {
    return Status(AlreadyExistsError("port in use: " + addr.ToString()));
  }
  it->second = std::make_shared<internal::DatagramQueue>();
  return std::make_unique<DatagramPort>(this, addr, it->second);
}

void Network::Unregister(const Listener* listener) {
  MutexLock lock(mu_);
  const auto it = listeners_.find(listener->addr_);
  if (it != listeners_.end() && it->second == listener->queue_) {
    listeners_.erase(it);
  }
}

void Network::UnregisterPort(const DatagramPort* port) {
  MutexLock lock(mu_);
  const auto it = ports_.find(port->addr_);
  if (it != ports_.end() && it->second == port->queue_) ports_.erase(it);
}

Status Network::RouteDatagram(const Address& from, const Address& dst,
                              std::vector<std::uint8_t> payload,
                              TimePoint earliest_arrival) {
  const LinkProperties link = LinkBetween(from.host, dst.host);
  std::shared_ptr<internal::DatagramQueue> queue;
  TimePoint arrival = earliest_arrival;
  {
    MutexLock lock(mu_);
    if (RollLossLocked(link.loss_rate)) {
      return Status::Ok();  // silently dropped, like the real thing
    }
    arrival += RollJitterLocked(link.jitter);
    const auto it = ports_.find(dst);
    if (it == ports_.end()) {
      return Status::Ok();  // no receiver: datagram falls on the floor
    }
    queue = it->second;
  }
  queue->Deliver(arrival, from, std::move(payload));
  return Status::Ok();
}

bool Network::RollLossLocked(double p) {
  return p > 0.0 && rng_.NextBool(p);
}

Duration Network::RollJitterLocked(Duration max_jitter) {
  if (max_jitter <= Duration::zero()) return Duration::zero();
  const double frac = rng_.NextDouble();
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(ToSeconds(max_jitter) * frac));
}

}  // namespace cool::sim
