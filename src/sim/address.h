// Endpoint addressing for the simulated network: host name + port, the
// in-process analogue of the testbed's IP:port endpoints.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace cool::sim {

struct Address {
  std::string host;
  std::uint16_t port = 0;

  std::string ToString() const { return host + ":" + std::to_string(port); }

  friend bool operator==(const Address&, const Address&) = default;
  friend auto operator<=>(const Address&, const Address&) = default;
};

struct AddressHash {
  std::size_t operator()(const Address& a) const noexcept {
    return std::hash<std::string>{}(a.host) * 31 +
           std::hash<std::uint16_t>{}(a.port);
  }
};

}  // namespace cool::sim
