#include "sim/waitset.h"

#include <algorithm>

namespace cool::sim {

namespace internal {

void WaitSetCore::Post(std::uint64_t token, TimePoint when) {
  MutexLock lock(mu);
  if (closed || tokens.find(token) == tokens.end()) return;
  entries.push(Entry{when, next_seq++, token});
  if (!notify_pending) {
    notify_pending = true;
    cv.NotifyOne();  // under the lock: destruction-safe
  }
}

}  // namespace internal

bool WaitSet::Add(Token token) {
  MutexLock lock(core_->mu);
  if (core_->closed) return false;
  return core_->tokens.insert(token).second;
}

void WaitSet::Remove(Token token) {
  MutexLock lock(core_->mu);
  core_->tokens.erase(token);
}

void WaitSet::Post(Token token) { core_->Post(token, TimePoint::min()); }

void WaitSet::PostAt(Token token, TimePoint when) { core_->Post(token, when); }

std::size_t WaitSet::Wait(std::span<ReadyEvent> out, Duration timeout) {
  // A nested wait-set wait inside a reactor callback or dispatch upcall
  // parks a shared run-to-completion worker on a second readiness source —
  // the calling worker's own wait set goes unserviced meanwhile.
  COOL_DETECTOR_HOOK(deadlock::AssertBlockingAllowed("sim::WaitSet::Wait"));
  if (out.empty()) return 0;
  const TimePoint deadline = DeadlineFor(timeout);
  internal::WaitSetCore& core = *core_;
  MutexLock lock(core.mu);
  for (;;) {
    // The waiter is awake and about to scan: posts from here until the next
    // WaitUntil need no notify (the scan below, or the pre-sleep re-check,
    // will see their entries). This coalesces a burst of deliveries into
    // one wakeup instead of one NotifyOne syscall each.
    core.notify_pending = false;
    const TimePoint now = Now();
    std::size_t n = 0;
    while (!core.entries.empty() && core.entries.top().when <= now &&
           n < out.size()) {
      const Token token = core.entries.top().token;
      core.entries.pop();
      if (core.tokens.find(token) == core.tokens.end()) continue;  // stale
      const auto emitted = out.first(n);
      const bool dup =
          std::any_of(emitted.begin(), emitted.end(),
                      [token](const ReadyEvent& e) { return e.token == token; });
      if (dup) continue;  // collapse duplicates among due entries
      out[n++] = ReadyEvent{token};
    }
    if (n > 0) return n;
    if (core.closed) return 0;
    if (now >= deadline) return 0;
    TimePoint wake = deadline;
    if (!core.entries.empty()) wake = std::min(wake, core.entries.top().when);
    core.cv.WaitUntil(core.mu, wake);
  }
}

void WaitSet::Close() {
  MutexLock lock(core_->mu);
  core_->closed = true;
  core_->cv.NotifyAll();
}

bool WaitSet::closed() const {
  MutexLock lock(core_->mu);
  return core_->closed;
}

void Watchable::Watch(const WaitSet& set, WaitSet::Token token) {
  std::shared_ptr<internal::WaitSetCore> core = set.core_;
  {
    MutexLock lock(mu_);
    core_ = core;
    token_ = token;
    armed_.store(true, std::memory_order_release);
  }
  core->Post(token, TimePoint::min());  // probe: harvest pre-attach state
}

void Watchable::Unwatch() {
  MutexLock lock(mu_);
  armed_.store(false, std::memory_order_release);
  core_.reset();
  token_ = 0;
}

void Watchable::SignalReadySlow(TimePoint when) {
  std::shared_ptr<internal::WaitSetCore> core;
  WaitSet::Token token = 0;
  {
    MutexLock lock(mu_);
    core = core_;
    token = token_;
  }
  if (core != nullptr) core->Post(token, when);
}

bool Watchable::watched() const {
  MutexLock lock(mu_);
  return core_ != nullptr;
}

}  // namespace cool::sim
