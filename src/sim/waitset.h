// Readiness primitive for the simulated network: a WaitSet multiplexes many
// sockets/listeners/ports onto one blocked thread, the way epoll multiplexes
// file descriptors. Sources carry a Watchable; attaching it to a WaitSet
// under a token makes every subsequent state change (data arrival, accept,
// close) post a timed readiness entry, and WaitSet::Wait blocks until any
// registered token has a *due* entry.
//
// Entries carry a delivery TimePoint because the simulated network delivers
// in the future (link pacing + propagation): a chunk written now becomes
// readable at now+latency, and the waiter must wake exactly then, not when
// the write happened. Signals are therefore never deduplicated at post time
// — only among already-due entries when Wait() harvests them.
//
// Lifetimes: the shared core keeps either side safe if the other goes away
// first. Destroying a WaitSet with sources still attached is fine (their
// signals become no-ops); destroying a source with the WaitSet still
// watching is fine too (its token just never fires again). One watcher per
// Watchable: attaching to a second WaitSet replaces the first.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <queue>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cool::sim {

class WaitSet;

namespace internal {

// State shared between a WaitSet and the Watchables attached to it.
struct WaitSetCore {
  struct Entry {
    TimePoint when;
    std::uint64_t seq = 0;  // tie-break keeps harvest order deterministic
    std::uint64_t token = 0;
    friend bool operator>(const Entry& a, const Entry& b) {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  Mutex mu{LockRank::kWaitSet, "sim::WaitSetCore::mu"};
  CondVar cv;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> entries
      COOL_GUARDED_BY(mu);
  std::unordered_set<std::uint64_t> tokens COOL_GUARDED_BY(mu);
  std::uint64_t next_seq COOL_GUARDED_BY(mu) = 0;
  bool closed COOL_GUARDED_BY(mu) = false;
  // Readiness delivery coalesces per wakeup: while a notify is outstanding
  // (or the single waiter is awake harvesting), further posts skip the
  // NotifyOne. The waiter clears the flag each time it scans the heap, and
  // the flag is only read/written under mu, so a post that lands while the
  // waiter is between scan and sleep still finds the lock held and its
  // entry is seen before the sleep. One waiter per core by design (each
  // reactor worker owns its wait set).
  bool notify_pending COOL_GUARDED_BY(mu) = false;

  // Queues a readiness entry for `token`, due at `when`. No-op for tokens
  // that are not (or no longer) registered, and after Close().
  void Post(std::uint64_t token, TimePoint when);
};

}  // namespace internal

// Blocks one thread on "any registered token ready".
class WaitSet {
 public:
  using Token = std::uint64_t;

  struct ReadyEvent {
    Token token = 0;
  };

  WaitSet() : core_(std::make_shared<internal::WaitSetCore>()) {}
  ~WaitSet() { Close(); }

  WaitSet(const WaitSet&) = delete;
  WaitSet& operator=(const WaitSet&) = delete;

  // Registers `token`; posts for unregistered tokens are dropped. Returns
  // false if the token is already registered or the set is closed.
  bool Add(Token token);

  // Unregisters `token` and discards its pending entries lazily (they are
  // skipped at harvest).
  void Remove(Token token);

  // Posts an immediately-due readiness entry — the self-wakeup used for
  // cross-thread scheduling onto the waiting thread.
  void Post(Token token);

  // Posts a readiness entry due at `when` — the timer primitive. Deadline
  // bookkeeping (reactor timeouts, idle-connection deadlines) rides the
  // same lazily-cancelled min-heap as delayed deliveries: scheduling and
  // firing are O(log n), cancellation is Remove()'s lazy token discard,
  // and nothing ever scans — 100k pending deadlines cost one heap entry
  // each.
  void PostAt(Token token, TimePoint when);

  // Blocks until at least one registered token has a due entry, the timeout
  // elapses, or Close(). Harvests up to out.size() distinct ready tokens
  // (duplicates among due entries collapse); returns the number written.
  // 0 means timeout or closed — poll closed() to tell them apart.
  std::size_t Wait(std::span<ReadyEvent> out, Duration timeout);

  // Wakes all waiters; subsequent Wait() calls return 0 immediately.
  void Close();

  bool closed() const;

 private:
  friend class Watchable;

  std::shared_ptr<internal::WaitSetCore> core_;
};

// The source half: owned by a readiness source (stream pipe, accept queue,
// datagram queue), attached to at most one WaitSet at a time.
class Watchable {
 public:
  Watchable() = default;

  Watchable(const Watchable&) = delete;
  Watchable& operator=(const Watchable&) = delete;

  // Attaches to `set` under `token` and posts an immediately-due probe so
  // state that became ready before attachment is harvested at once.
  // Sources whose pending items become due in the future must additionally
  // re-arm from their TryX path (post the head item's due time when asked
  // for data that is not deliverable yet).
  void Watch(const WaitSet& set, WaitSet::Token token);

  // Detaches; later SignalReady calls become no-ops.
  void Unwatch();

  // Posts a readiness entry due at `when`. Safe to call with the source's
  // own mutex held: the core is signalled via a copied reference, never
  // through a lock chained to the caller's. Unwatched sources pay one
  // relaxed atomic load, not a lock — every simulated delivery signals, so
  // this sits on the data-path hot loop. A signal racing Watch() may be
  // dropped; the post-attach probe plus TryX re-arm (above) cover it.
  void SignalReady(TimePoint when) {
    if (!armed_.load(std::memory_order_acquire)) return;
    SignalReadySlow(when);
  }
  void SignalReady() { SignalReady(TimePoint::min()); }

  bool watched() const;

 private:
  void SignalReadySlow(TimePoint when);

  mutable Mutex mu_{LockRank::kWaitSet, "sim::Watchable::mu_"};
  std::atomic<bool> armed_{false};  // mirrors core_ != nullptr
  std::shared_ptr<internal::WaitSetCore> core_ COOL_GUARDED_BY(mu_);
  WaitSet::Token token_ COOL_GUARDED_BY(mu_) = 0;
};

}  // namespace cool::sim
