#include "giop/message.h"

#include <algorithm>

namespace cool::giop {

std::string_view MsgTypeName(MsgType t) noexcept {
  switch (t) {
    case MsgType::kRequest: return "Request";
    case MsgType::kReply: return "Reply";
    case MsgType::kCancelRequest: return "CancelRequest";
    case MsgType::kLocateRequest: return "LocateRequest";
    case MsgType::kLocateReply: return "LocateReply";
    case MsgType::kCloseConnection: return "CloseConnection";
    case MsgType::kMessageError: return "MessageError";
  }
  return "Unknown";
}

bool IsKnownVersion(Version v) noexcept {
  return v == kGiop10 || v == kGiopQos;
}

namespace {

// Writes the 12-octet GIOP header with a placeholder size, returning the
// offset of message_size for back-patching.
void PutHeader(cdr::Encoder& enc, Version version, MsgType type) {
  enc.PutRaw(kMagic);
  enc.PutOctet(version.major);
  enc.PutOctet(version.minor);
  enc.PutBoolean(enc.order() == cdr::ByteOrder::kLittleEndian);
  enc.PutOctet(static_cast<corba::Octet>(type));
  enc.PutULong(0);  // message_size, patched below
}

ByteBuffer Finish(cdr::Encoder&& enc) {
  ByteBuffer buf = std::move(enc).TakeBuffer();
  PatchMessageSize(buf, 0);
  return buf;
}

void PutServiceContextList(cdr::Encoder& enc, const ServiceContextList& list) {
  enc.PutULong(static_cast<corba::ULong>(list.size()));
  for (const ServiceContext& sc : list) {
    enc.PutULong(sc.context_id);
    enc.PutOctetSeq(sc.context_data);
  }
}

Result<ServiceContextList> GetServiceContextList(cdr::Decoder& dec) {
  COOL_ASSIGN_OR_RETURN(corba::ULong count, dec.GetULong());
  if (count > dec.remaining() / 8) {
    return Status(ProtocolError("service context count exceeds message"));
  }
  ServiceContextList list;
  list.reserve(count);
  for (corba::ULong i = 0; i < count; ++i) {
    ServiceContext sc;
    COOL_ASSIGN_OR_RETURN(sc.context_id, dec.GetULong());
    COOL_ASSIGN_OR_RETURN(sc.context_data, dec.GetOctetSeq());
    list.push_back(std::move(sc));
  }
  return list;
}

// Defaults for null RequestHeaderView fields; file scope so their uses in
// the preamble hot path carry no function-local-static init guard.
const ServiceContextList kNoContext;
const std::vector<qos::QoSParameter> kNoQoS;

}  // namespace

void PatchMessageSize(ByteBuffer& frame, std::size_t tail_size) {
  const corba::ULong size =
      static_cast<corba::ULong>(frame.size() - kHeaderSize + tail_size);
  corba::Octet bytes[4];
  if (frame.data()[6] != 0) {  // byte_order octet: 1 == little-endian
    bytes[0] = static_cast<corba::Octet>(size);
    bytes[1] = static_cast<corba::Octet>(size >> 8);
    bytes[2] = static_cast<corba::Octet>(size >> 16);
    bytes[3] = static_cast<corba::Octet>(size >> 24);
  } else {
    bytes[3] = static_cast<corba::Octet>(size);
    bytes[2] = static_cast<corba::Octet>(size >> 8);
    bytes[1] = static_cast<corba::Octet>(size >> 16);
    bytes[0] = static_cast<corba::Octet>(size >> 24);
  }
  (void)frame.WriteAt(8, bytes);
}

namespace {

// Shared by BuildRequestPreamble and BuildRequest so the whole-message
// builder keeps one encoder end to end (no intermediate buffer hand-offs
// on the marshal hot path).
void PutRequestPreamble(cdr::Encoder& enc, Version version,
                        const RequestHeaderView& header) {
  PutHeader(enc, version, MsgType::kRequest);
  PutServiceContextList(
      enc, header.service_context != nullptr ? *header.service_context
                                             : kNoContext);
  enc.PutULong(header.request_id);
  enc.PutBoolean(header.response_expected);
  enc.PutOctetSeq(header.object_key);
  enc.PutString(header.operation);
  enc.PutOctetSeq(header.requesting_principal);
  if (version == kGiopQos) {
    // The extension field (paper Fig. 2-ii): present iff version 9.9.
    qos::EncodeQoSParameterSeq(
        enc, header.qos_params != nullptr ? *header.qos_params : kNoQoS);
  }
  // Operation arguments follow the request header, 8-aligned as the
  // argument encoder assumed (see Engine: args are encoded with base offset
  // rounded to 8 so alignment is preserved after splicing).
  enc.Align(8);
}

void PutReplyPreamble(cdr::Encoder& enc, Version version,
                      const ReplyHeader& header) {
  PutHeader(enc, version, MsgType::kReply);
  PutServiceContextList(enc, header.service_context);
  enc.PutULong(header.request_id);
  enc.PutULong(static_cast<corba::ULong>(header.reply_status));
  enc.Align(8);
}

}  // namespace

ByteBuffer BuildRequestPreamble(Version version,
                                const RequestHeaderView& header,
                                std::size_t tail_size, cdr::ByteOrder order,
                                ByteBuffer buf) {
  cdr::Encoder enc(order, 0, std::move(buf));
  // Expected preamble size (header fields + padding slack) up front, so a
  // cold (unpooled) buffer grows at most once.
  enc.Reserve(kHeaderSize + 64 + header.object_key.size() +
              header.operation.size() + header.requesting_principal.size());
  PutRequestPreamble(enc, version, header);
  ByteBuffer out = std::move(enc).TakeBuffer();
  PatchMessageSize(out, tail_size);
  return out;
}

ByteBuffer BuildReplyPreamble(Version version, const ReplyHeader& header,
                              std::size_t tail_size, cdr::ByteOrder order,
                              ByteBuffer buf) {
  cdr::Encoder enc(order, 0, std::move(buf));
  PutReplyPreamble(enc, version, header);
  ByteBuffer out = std::move(enc).TakeBuffer();
  PatchMessageSize(out, tail_size);
  return out;
}

ByteBuffer BuildRequest(Version version, const RequestHeader& header,
                        std::span<const corba::Octet> args_cdr,
                        cdr::ByteOrder order) {
  RequestHeaderView view;
  view.service_context = &header.service_context;
  view.request_id = header.request_id;
  view.response_expected = header.response_expected;
  view.object_key = header.object_key;
  view.operation = header.operation;
  view.requesting_principal = header.requesting_principal;
  view.qos_params = &header.qos_params;
  cdr::Encoder enc(order);
  // Expected frame size (header fields + padding slack) up front, so large
  // argument bodies don't regrow the buffer repeatedly.
  enc.Reserve(kHeaderSize + 64 + header.object_key.size() +
              header.operation.size() + header.requesting_principal.size() +
              args_cdr.size());
  PutRequestPreamble(enc, version, view);
  enc.PutRaw(args_cdr);
  return Finish(std::move(enc));
}

ByteBuffer BuildReply(Version version, const ReplyHeader& header,
                      std::span<const corba::Octet> body_cdr,
                      cdr::ByteOrder order) {
  cdr::Encoder enc(order);
  enc.Reserve(kHeaderSize + 32 + body_cdr.size());
  PutReplyPreamble(enc, version, header);
  enc.PutRaw(body_cdr);
  return Finish(std::move(enc));
}

std::array<corba::Octet, kHeaderSize> HeaderBytes(Version version,
                                                  MsgType type,
                                                  corba::ULong message_size,
                                                  cdr::ByteOrder order) {
  std::array<corba::Octet, kHeaderSize> h{};
  std::copy(kMagic.begin(), kMagic.end(), h.begin());
  h[4] = version.major;
  h[5] = version.minor;
  h[6] = order == cdr::ByteOrder::kLittleEndian ? 1 : 0;
  h[7] = static_cast<corba::Octet>(type);
  if (order == cdr::ByteOrder::kLittleEndian) {
    h[8] = static_cast<corba::Octet>(message_size);
    h[9] = static_cast<corba::Octet>(message_size >> 8);
    h[10] = static_cast<corba::Octet>(message_size >> 16);
    h[11] = static_cast<corba::Octet>(message_size >> 24);
  } else {
    h[11] = static_cast<corba::Octet>(message_size);
    h[10] = static_cast<corba::Octet>(message_size >> 8);
    h[9] = static_cast<corba::Octet>(message_size >> 16);
    h[8] = static_cast<corba::Octet>(message_size >> 24);
  }
  return h;
}

ByteBuffer BuildReplyHeaderBody(const ReplyHeader& header,
                                cdr::ByteOrder order) {
  cdr::Encoder enc(order, kHeaderSize);
  PutServiceContextList(enc, header.service_context);
  enc.PutULong(header.request_id);
  enc.PutULong(static_cast<corba::ULong>(header.reply_status));
  enc.Align(8);
  return std::move(enc).TakeBuffer();
}

ByteBuffer BuildCancelRequest(Version version,
                              const CancelRequestHeader& header,
                              cdr::ByteOrder order) {
  cdr::Encoder enc(order);
  PutHeader(enc, version, MsgType::kCancelRequest);
  enc.PutULong(header.request_id);
  return Finish(std::move(enc));
}

ByteBuffer BuildLocateRequest(Version version,
                              const LocateRequestHeader& header,
                              cdr::ByteOrder order) {
  cdr::Encoder enc(order);
  PutHeader(enc, version, MsgType::kLocateRequest);
  enc.PutULong(header.request_id);
  enc.PutOctetSeq(header.object_key);
  return Finish(std::move(enc));
}

ByteBuffer BuildLocateReply(Version version, const LocateReplyHeader& header,
                            cdr::ByteOrder order) {
  cdr::Encoder enc(order);
  PutHeader(enc, version, MsgType::kLocateReply);
  enc.PutULong(header.request_id);
  enc.PutULong(static_cast<corba::ULong>(header.locate_status));
  return Finish(std::move(enc));
}

ByteBuffer BuildCloseConnection(Version version, cdr::ByteOrder order) {
  cdr::Encoder enc(order);
  PutHeader(enc, version, MsgType::kCloseConnection);
  return Finish(std::move(enc));
}

ByteBuffer BuildMessageError(Version version, cdr::ByteOrder order) {
  cdr::Encoder enc(order);
  PutHeader(enc, version, MsgType::kMessageError);
  return Finish(std::move(enc));
}

Result<MessageHeader> ParseHeader(std::span<const corba::Octet> bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status(ProtocolError("GIOP header truncated"));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    if (bytes[i] != kMagic[i]) {
      return Status(ProtocolError("bad GIOP magic"));
    }
  }
  MessageHeader h;
  h.version = Version{bytes[4], bytes[5]};
  if (bytes[6] > 1) {
    return Status(ProtocolError("bad GIOP byte_order flag"));
  }
  h.byte_order = bytes[6] == 1 ? cdr::ByteOrder::kLittleEndian
                               : cdr::ByteOrder::kBigEndian;
  if (bytes[7] > static_cast<corba::Octet>(MsgType::kMessageError)) {
    return Status(ProtocolError("unknown GIOP message type"));
  }
  h.message_type = static_cast<MsgType>(bytes[7]);
  cdr::Decoder dec(bytes.subspan(8, 4), h.byte_order, 8);
  COOL_ASSIGN_OR_RETURN(h.message_size, dec.GetULong());
  return h;
}

Result<ParsedMessage> ParseMessage(std::span<const corba::Octet> bytes) {
  return ParseMessage(ByteBuffer(bytes));
}

Result<ParsedMessage> ParseMessage(ByteBuffer frame) {
  COOL_ASSIGN_OR_RETURN(MessageHeader header, ParseHeader(frame.view()));
  if (frame.size() != kHeaderSize + header.message_size) {
    return Status(ProtocolError(
        "GIOP message_size does not match delivered message"));
  }
  ParsedMessage msg;
  msg.header = header;
  msg.buffer = std::move(frame);
  return msg;
}

Result<RequestHeader> ParseRequestHeader(cdr::Decoder& dec, Version version) {
  RequestHeader h;
  COOL_ASSIGN_OR_RETURN(h.service_context, GetServiceContextList(dec));
  COOL_ASSIGN_OR_RETURN(h.request_id, dec.GetULong());
  COOL_ASSIGN_OR_RETURN(h.response_expected, dec.GetBoolean());
  COOL_ASSIGN_OR_RETURN(h.object_key, dec.GetOctetSeq());
  COOL_ASSIGN_OR_RETURN(h.operation, dec.GetString());
  COOL_ASSIGN_OR_RETURN(h.requesting_principal, dec.GetOctetSeq());
  if (version == kGiopQos) {
    COOL_ASSIGN_OR_RETURN(h.qos_params, qos::DecodeQoSParameterSeq(dec));
  }
  // Skip padding so the decoder sits at the 8-aligned argument body.
  COOL_RETURN_IF_ERROR(dec.Align(8));
  return h;
}

Result<ReplyHeader> ParseReplyHeader(cdr::Decoder& dec) {
  ReplyHeader h;
  COOL_ASSIGN_OR_RETURN(h.service_context, GetServiceContextList(dec));
  COOL_ASSIGN_OR_RETURN(h.request_id, dec.GetULong());
  COOL_ASSIGN_OR_RETURN(corba::ULong status, dec.GetULong());
  if (status > static_cast<corba::ULong>(ReplyStatus::kLocationForward)) {
    return Status(ProtocolError("bad reply_status"));
  }
  h.reply_status = static_cast<ReplyStatus>(status);
  COOL_RETURN_IF_ERROR(dec.Align(8));
  return h;
}

Result<CancelRequestHeader> ParseCancelRequestHeader(cdr::Decoder& dec) {
  CancelRequestHeader h;
  COOL_ASSIGN_OR_RETURN(h.request_id, dec.GetULong());
  return h;
}

Result<LocateRequestHeader> ParseLocateRequestHeader(cdr::Decoder& dec) {
  LocateRequestHeader h;
  COOL_ASSIGN_OR_RETURN(h.request_id, dec.GetULong());
  COOL_ASSIGN_OR_RETURN(h.object_key, dec.GetOctetSeq());
  return h;
}

Result<LocateReplyHeader> ParseLocateReplyHeader(cdr::Decoder& dec) {
  LocateReplyHeader h;
  COOL_ASSIGN_OR_RETURN(h.request_id, dec.GetULong());
  COOL_ASSIGN_OR_RETURN(corba::ULong status, dec.GetULong());
  if (status > static_cast<corba::ULong>(LocateStatus::kObjectForward)) {
    return Status(ProtocolError("bad locate_status"));
  }
  h.locate_status = static_cast<LocateStatus>(status);
  return h;
}

}  // namespace cool::giop
