#include "giop/dispatch_pool.h"

namespace cool::giop {

DispatchClass ClassifyQoS(
    const std::vector<qos::QoSParameter>& qos_params) noexcept {
  bool latency_sensitive = false;
  for (const qos::QoSParameter& p : qos_params) {
    switch (p.type()) {
      case qos::ParamType::kPriority:
        // An explicit priority wins over everything else: 0..84 low,
        // 85..169 normal, 170..255 high.
        if (p.request_value >= 170) return DispatchClass::kHigh;
        if (p.request_value < 85) return DispatchClass::kLow;
        return DispatchClass::kNormal;
      case qos::ParamType::kLatencyMicros:
      case qos::ParamType::kJitterMicros:
        latency_sensitive = true;
        break;
      default:
        break;
    }
  }
  return latency_sensitive ? DispatchClass::kHigh : DispatchClass::kNormal;
}

std::size_t DefaultWorkerThreads() noexcept {
  return static_cast<std::size_t>(HardwareConcurrency());
}

std::uint64_t DispatchPool::AllocRunnerId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

DispatchPool::DispatchPool(std::size_t workers, std::size_t queue_capacity)
    : worker_count_(workers == 0 ? 1 : workers),
      queue_capacity_(queue_capacity) {
  workers_.reserve(worker_count_);
  for (std::size_t i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

DispatchPool::~DispatchPool() { Close(); }

bool DispatchPool::Submit(DispatchRunner* runner, std::uint64_t runner_id,
                          DispatchClass cls, DispatchJob job) {
  MutexLock lock(mu_);
  while (!closed_ && queued_ >= queue_capacity_) {
    // Backpressure: stall the submitting receive path (and with it the
    // connection) until a worker makes room. Blocking here is the design
    // — the submitting reactor callback is the flow-control valve, and
    // pool workers never need the reactor, so no cycle — hence the
    // explicit blocking-allowed scope for the deadlock detector.
    deadlock::ScopedBlockingAllowed allow;
    job_space_.Wait(mu_);
  }
  if (closed_ || detached_.contains(runner_id)) return false;
  Entry entry;
  entry.runner = runner;
  entry.runner_id = runner_id;
  entry.job = std::move(job);
  queues_[static_cast<std::size_t>(cls)].push_back(std::move(entry));
  ++queued_;
  job_ready_.NotifyOne();
  return true;
}

bool DispatchPool::CancelQueued(std::uint64_t runner_id,
                                corba::ULong request_id) {
  MutexLock lock(mu_);
  for (auto& q : queues_) {
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (it->runner_id != runner_id ||
          it->job.header.request_id != request_id) {
        continue;
      }
      q.erase(it);
      --queued_;
      job_space_.NotifyOne();
      return true;
    }
  }
  return false;
}

void DispatchPool::DetachRunner(std::uint64_t runner_id) {
  MutexLock lock(mu_);
  detached_.insert(runner_id);
  for (auto& q : queues_) {
    for (auto it = q.begin(); it != q.end();) {
      if (it->runner_id == runner_id) {
        it = q.erase(it);
        --queued_;
        job_space_.NotifyOne();
      } else {
        ++it;
      }
    }
  }
  while (running_.contains(runner_id)) {
    runner_idle_.Wait(mu_);
  }
}

std::optional<DispatchPool::Entry> DispatchPool::NextEntry() {
  MutexLock lock(mu_);
  for (;;) {
    for (auto& q : queues_) {  // highest priority class first
      if (q.empty()) continue;
      Entry entry = std::move(q.front());
      q.pop_front();
      --queued_;
      ++running_[entry.runner_id];  // pop+mark atomic: detach barrier
      job_space_.NotifyOne();
      return entry;
    }
    if (closed_) return std::nullopt;  // closed + drained: exit
    job_ready_.Wait(mu_);
  }
}

void DispatchPool::DrainRunnerWaiters(std::uint64_t runner_id) {
  MutexLock lock(mu_);
  auto it = running_.find(runner_id);
  if (it != running_.end() && --it->second == 0) running_.erase(it);
  runner_idle_.NotifyAll();
}

void DispatchPool::WorkerLoop() {
  for (;;) {
    std::optional<Entry> entry = NextEntry();
    if (!entry.has_value()) return;
    {
      // Servant upcalls share this fixed worker pool: an unbounded wait
      // in one starves every queued dispatch, so the detector flags them.
      deadlock::ScopedContext ctx(deadlock::Context::kDispatchUpcall);
      entry->runner->RunDispatchJob(entry->job);
    }
    jobs_run_.fetch_add(1, std::memory_order_relaxed);
    DrainRunnerWaiters(entry->runner_id);
  }
}

void DispatchPool::Close() {
  {
    MutexLock lock(mu_);
    if (closed_) return;
    closed_ = true;
    job_ready_.NotifyAll();
    job_space_.NotifyAll();
  }
  // Workers drain the queue (NextEntry keeps popping after close) and
  // exit; join outside the lock so in-flight upcalls can finish.
  for (Thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

}  // namespace cool::giop
