#include "giop/dispatch_pool.h"

#include <sstream>

namespace cool::giop {

DispatchClass ClassifyQoS(
    const std::vector<qos::QoSParameter>& qos_params) noexcept {
  // Band projection of the shared classifier; the weight/rate dimensions
  // only matter once the hierarchical scheduler consumes them.
  switch (qos::ClassifyForScheduling(qos_params).band) {
    case qos::SchedProfile::Band::kHigh:
      return DispatchClass::kHigh;
    case qos::SchedProfile::Band::kLow:
      return DispatchClass::kLow;
    case qos::SchedProfile::Band::kNormal:
      break;
  }
  return DispatchClass::kNormal;
}

namespace {

qos::SchedProfile ProfileForClass(DispatchClass cls) {
  qos::SchedProfile profile;
  switch (cls) {
    case DispatchClass::kHigh:
      profile.band = qos::SchedProfile::Band::kHigh;
      break;
    case DispatchClass::kLow:
      profile.band = qos::SchedProfile::Band::kLow;
      break;
    case DispatchClass::kNormal:
      profile.band = qos::SchedProfile::Band::kNormal;
      break;
  }
  return profile;
}

std::size_t BandIndex(qos::SchedProfile::Band band) {
  return static_cast<std::size_t>(band);
}

}  // namespace

std::size_t DefaultWorkerThreads() noexcept {
  return static_cast<std::size_t>(HardwareConcurrency());
}

std::uint64_t DispatchPool::AllocRunnerId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

DispatchPool::DispatchPool(std::size_t workers, std::size_t queue_capacity) {
  options_.workers = workers;
  options_.queue_capacity = queue_capacity;
  Start();
}

DispatchPool::DispatchPool(const Options& options) : options_(options) {
  Start();
}

sched::ClassOptions DispatchPool::BandOptions(DispatchClass cls) const {
  static constexpr const char* kNames[kDispatchClasses] = {"high", "normal",
                                                           "low"};
  const auto i = static_cast<std::size_t>(cls);
  sched::ClassOptions opts;
  opts.name = kNames[i];
  opts.weight = options_.class_weights[i];
  opts.quantum_bytes = options_.quantum_bytes;
  opts.codel.enabled = options_.codel_enabled;
  opts.codel.target = options_.codel_target;
  opts.codel.interval = options_.codel_interval;
  return opts;
}

void DispatchPool::Start() {
  worker_count_ = options_.workers == 0 ? 1 : options_.workers;
  {
    MutexLock lock(mu_);
    // Band order is tie-break order: simultaneous activations at equal
    // virtual time serve High before Normal before Low, preserving the
    // strict-priority intuition for newly-queued work.
    cls_id_[0] = tree_.AddClass(Tree::kRoot, BandOptions(DispatchClass::kHigh));
    cls_id_[1] =
        tree_.AddClass(Tree::kRoot, BandOptions(DispatchClass::kNormal));
    cls_id_[2] = tree_.AddClass(Tree::kRoot, BandOptions(DispatchClass::kLow));
  }
  workers_.reserve(worker_count_);
  for (std::size_t i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

DispatchPool::~DispatchPool() { Close(); }

bool DispatchPool::Submit(DispatchRunner* runner, std::uint64_t runner_id,
                          const qos::SchedProfile& profile, DispatchJob job) {
  MutexLock lock(mu_);
  while (!closed_ && queued_ >= options_.queue_capacity) {
    // Backpressure: stall the submitting receive path (and with it the
    // connection) until a worker makes room. Blocking here is the design
    // — the submitting reactor callback is the flow-control valve, and
    // pool workers never need the reactor, so no cycle — hence the
    // explicit blocking-allowed scope for the deadlock detector.
    deadlock::ScopedBlockingAllowed allow;
    job_space_.Wait(mu_);
  }
  if (closed_ || detached_.contains(runner_id)) return false;
  const TimePoint now = Now();
  Entry entry;
  entry.runner = runner;
  entry.runner_id = runner_id;
  entry.job = std::move(job);
  entry.enqueued_at = now;
  const std::size_t band = BandIndex(profile.band);
  if (options_.scheduler == DispatchScheduler::kHierarchical) {
    const std::size_t cost = kJobBaseCost + entry.job.msg.body().size();
    sched::FlowProfile flow;
    flow.weight = profile.weight;
    flow.rate_bytes_per_sec = profile.rate_bytes_per_sec;
    tree_.Enqueue(cls_id_[band], runner_id, flow, std::move(entry), cost, now);
  } else {
    flat_stats_[band].enqueued++;
    flat_queues_[band].push_back(std::move(entry));
  }
  ++queued_;
  job_ready_.NotifyOne();
  return true;
}

bool DispatchPool::Submit(DispatchRunner* runner, std::uint64_t runner_id,
                          DispatchClass cls, DispatchJob job) {
  return Submit(runner, runner_id, ProfileForClass(cls), std::move(job));
}

bool DispatchPool::CancelQueued(std::uint64_t runner_id,
                                corba::ULong request_id) {
  MutexLock lock(mu_);
  if (options_.scheduler == DispatchScheduler::kHierarchical) {
    bool found = false;
    tree_.RemoveIf([&](Tree::ClassId, std::uint64_t, const Entry& e) {
      if (found || e.runner_id != runner_id ||
          e.job.header.request_id != request_id) {
        return false;
      }
      found = true;
      return true;
    });
    if (!found) return false;
    --queued_;
    job_space_.NotifyOne();
    return true;
  }
  for (auto& q : flat_queues_) {
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (it->runner_id != runner_id ||
          it->job.header.request_id != request_id) {
        continue;
      }
      q.erase(it);
      --queued_;
      job_space_.NotifyOne();
      return true;
    }
  }
  return false;
}

void DispatchPool::DetachRunner(std::uint64_t runner_id) {
  MutexLock lock(mu_);
  detached_.insert(runner_id);
  std::size_t removed = 0;
  if (options_.scheduler == DispatchScheduler::kHierarchical) {
    removed = tree_.RemoveIf([&](Tree::ClassId, std::uint64_t,
                                 const Entry& e) {
      return e.runner_id == runner_id;
    });
    for (std::size_t i = 0; i < kDispatchClasses; ++i) {
      tree_.RemoveFlow(cls_id_[i], runner_id);
    }
  } else {
    for (auto& q : flat_queues_) {
      for (auto it = q.begin(); it != q.end();) {
        if (it->runner_id == runner_id) {
          it = q.erase(it);
          ++removed;
        } else {
          ++it;
        }
      }
    }
  }
  for (std::size_t i = 0; i < removed; ++i) {
    --queued_;
    job_space_.NotifyOne();
  }
  while (running_.contains(runner_id)) {
    runner_idle_.Wait(mu_);
  }
}

void DispatchPool::SetClassWeight(DispatchClass cls, std::uint32_t weight) {
  MutexLock lock(mu_);
  options_.class_weights[static_cast<std::size_t>(cls)] =
      weight == 0 ? 1 : weight;
  tree_.SetClassOptions(cls_id_[static_cast<std::size_t>(cls)],
                        BandOptions(cls), Now());
}

void DispatchPool::SetCodel(bool enabled, Duration target, Duration interval) {
  MutexLock lock(mu_);
  options_.codel_enabled = enabled;
  options_.codel_target = target;
  options_.codel_interval = interval;
  for (std::size_t i = 0; i < kDispatchClasses; ++i) {
    const auto cls = static_cast<DispatchClass>(i);
    tree_.SetClassOptions(cls_id_[i], BandOptions(cls), Now());
  }
  job_ready_.NotifyOne();
}

DispatchPool::Next DispatchPool::NextDecision() {
  MutexLock lock(mu_);
  for (;;) {
    Next out;
    const TimePoint now = Now();
    if (options_.scheduler == DispatchScheduler::kHierarchical) {
      std::vector<Tree::Served> drops;
      std::optional<Tree::Served> served =
          tree_.Dequeue(now, &drops, /*drain=*/closed_);
      for (Tree::Served& d : drops) {
        ++running_[d.value.runner_id];  // pop+mark atomic: detach barrier
        --queued_;
        job_space_.NotifyOne();
        out.dropped.push_back(std::move(d.value));
      }
      if (served.has_value()) {
        ++running_[served->value.runner_id];
        --queued_;
        job_space_.NotifyOne();
        out.entry = std::move(served->value);
      }
      if (out.HasWork()) return out;
      if (closed_ && tree_.empty()) return out;  // closed + drained: exit
      if (std::optional<TimePoint> ready = tree_.NextReadyTime(now)) {
        // Queued work gated on a token bucket: sleep until the grant.
        job_ready_.WaitUntil(mu_, *ready);
      } else {
        job_ready_.Wait(mu_);
      }
      continue;
    }
    for (std::size_t i = 0; i < kDispatchClasses; ++i) {
      auto& q = flat_queues_[i];  // highest priority class first
      if (q.empty()) continue;
      Entry entry = std::move(q.front());
      q.pop_front();
      --queued_;
      ++running_[entry.runner_id];
      flat_stats_[i].dequeued++;
      const Duration sojourn =
          now > entry.enqueued_at ? now - entry.enqueued_at : Duration{};
      flat_stats_[i].sojourn_us.Add(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(sojourn)
              .count()));
      job_space_.NotifyOne();
      out.entry = std::move(entry);
      return out;
    }
    if (closed_) return out;
    job_ready_.Wait(mu_);
  }
}

void DispatchPool::DrainRunnerWaiters(std::uint64_t runner_id) {
  MutexLock lock(mu_);
  auto it = running_.find(runner_id);
  if (it != running_.end() && --it->second == 0) running_.erase(it);
  runner_idle_.NotifyAll();
}

void DispatchPool::WorkerLoop() {
  for (;;) {
    Next next = NextDecision();
    // Shed jobs first: the runner owes the client a TRANSIENT before any
    // later job of the same connection replies. Outside mu_ — the drop
    // callback sends on the connection (rank kEngine > kDispatchPool).
    for (Entry& shed : next.dropped) {
      shed.runner->DropDispatchJob(shed.job);
      jobs_shed_.fetch_add(1, std::memory_order_relaxed);
      DrainRunnerWaiters(shed.runner_id);
    }
    if (!next.entry.has_value()) {
      if (next.dropped.empty()) return;  // closed + drained
      continue;
    }
    {
      // Servant upcalls share this fixed worker pool: an unbounded wait
      // in one starves every queued dispatch, so the detector flags them.
      deadlock::ScopedContext ctx(deadlock::Context::kDispatchUpcall);
      next.entry->runner->RunDispatchJob(next.entry->job);
    }
    jobs_run_.fetch_add(1, std::memory_order_relaxed);
    DrainRunnerWaiters(next.entry->runner_id);
  }
}

std::array<DispatchClassStats, kDispatchClasses> DispatchPool::StatsSnapshot()
    const {
  std::array<DispatchClassStats, kDispatchClasses> out;
  MutexLock lock(mu_);
  if (options_.scheduler == DispatchScheduler::kHierarchical) {
    std::vector<sched::ClassSnapshot> snap = tree_.Snapshot();
    for (std::size_t i = 0; i < kDispatchClasses; ++i) {
      const sched::ClassSnapshot& cls = snap[cls_id_[i]];
      out[i].name = cls.name;
      out[i].queued = cls.queued;
      out[i].enqueued = cls.enqueued;
      out[i].dispatched = cls.dequeued;
      out[i].dropped = cls.dropped;
      out[i].sojourn_p50_us = cls.sojourn_p50_us;
      out[i].sojourn_p99_us = cls.sojourn_p99_us;
      out[i].sojourn_p999_us = cls.sojourn_p999_us;
      out[i].sojourn_max_us = cls.sojourn_max_us;
      out[i].bindings = cls.flows;
    }
    return out;
  }
  static constexpr const char* kNames[kDispatchClasses] = {"high", "normal",
                                                           "low"};
  for (std::size_t i = 0; i < kDispatchClasses; ++i) {
    out[i].name = kNames[i];
    out[i].queued = flat_queues_[i].size();
    out[i].enqueued = flat_stats_[i].enqueued;
    out[i].dispatched = flat_stats_[i].dequeued;
    out[i].sojourn_p50_us = flat_stats_[i].sojourn_us.Percentile(50);
    out[i].sojourn_p99_us = flat_stats_[i].sojourn_us.Percentile(99);
    out[i].sojourn_p999_us = flat_stats_[i].sojourn_us.Percentile(99.9);
    out[i].sojourn_max_us = flat_stats_[i].sojourn_us.max();
  }
  return out;
}

std::string DispatchPool::DescribeStats() const {
  const std::array<DispatchClassStats, kDispatchClasses> stats =
      StatsSnapshot();
  std::ostringstream os;
  for (const DispatchClassStats& cls : stats) {
    os << "class " << cls.name << ": queued=" << cls.queued
       << " enqueued=" << cls.enqueued << " dispatched=" << cls.dispatched
       << " dropped=" << cls.dropped << " sojourn_us{p50=" << cls.sojourn_p50_us
       << " p99=" << cls.sojourn_p99_us << " p99.9=" << cls.sojourn_p999_us
       << " max=" << cls.sojourn_max_us << "} bindings=" << cls.bindings.size()
       << "\n";
  }
  return os.str();
}

void DispatchPool::Close() {
  {
    MutexLock lock(mu_);
    if (closed_) return;
    closed_ = true;
    job_ready_.NotifyAll();
    job_space_.NotifyAll();
  }
  // Workers drain the queue (NextDecision keeps popping after close, with
  // shaping and AQM bypassed) and exit; join outside the lock so in-flight
  // upcalls can finish.
  for (Thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

}  // namespace cool::giop
