// The proprietary COOL message protocol (paper Fig. 1: "COOL supports GIOP
// and the proprietary COOL protocol in the message layer", both behind the
// generic message protocol layer).
//
// The original protocol is unspecified in public documents; we implement a
// plausible compact RPC framing that showcases why an ORB vendor kept one
// next to GIOP: no service-context list, no principal, no CDR alignment
// padding (packed little-endian), single-octet message types — smaller and
// cheaper to parse than GIOP for intra-COOL traffic. QoS parameters are
// carried natively (no version split needed: the field is always present,
// possibly empty).
//
// Wire format (all integers packed little-endian):
//   header : magic "COOL" | type u8 | id u32 | body_size u32
//   request: flags u8 (bit0 = response expected)
//            key_len u16, key bytes
//            op_len u16, op bytes
//            qos_count u16, qos_count x QoSParameter (4 x u32)
//            args bytes (to end of body)
//   reply  : status u8 (0 ok, 1 user exception, 2 system exception)
//            results bytes
//   error  : empty body
#pragma once

#include <functional>

#include "giop/engine.h"  // ReplyStatus + DispatchResult reused
#include "transport/com_channel.h"

namespace cool::coolproto {

enum class MsgType : std::uint8_t {
  kRequest = 0,
  kReply = 1,
  kError = 2,
};

inline constexpr std::size_t kHeaderSize = 13;

struct Request {
  std::uint32_t id = 0;
  bool response_expected = true;
  corba::OctetSeq object_key;
  std::string operation;
  std::vector<qos::QoSParameter> qos_params;
  std::vector<std::uint8_t> args;
};

struct Reply {
  std::uint32_t id = 0;
  giop::ReplyStatus status = giop::ReplyStatus::kNoException;
  std::vector<std::uint8_t> results;
};

// Wire codecs (exposed for tests).
ByteBuffer EncodeRequest(const Request& request);
ByteBuffer EncodeReply(const Reply& reply);
ByteBuffer EncodeError();
Result<Request> DecodeRequest(std::span<const std::uint8_t> message);
Result<Reply> DecodeReply(std::span<const std::uint8_t> message);
Result<MsgType> PeekType(std::span<const std::uint8_t> message);

// Client engine with the same call shape as giop::GiopClient.
class CoolClient {
 public:
  explicit CoolClient(transport::ComChannel* channel) : channel_(channel) {}

  Result<Reply> Invoke(const corba::OctetSeq& object_key,
                       const std::string& operation,
                       std::span<const std::uint8_t> args,
                       const std::vector<qos::QoSParameter>& qos_params,
                       Duration timeout = seconds(10));
  Status InvokeOneway(const corba::OctetSeq& object_key,
                      const std::string& operation,
                      std::span<const std::uint8_t> args,
                      const std::vector<qos::QoSParameter>& qos_params);

 private:
  transport::ComChannel* channel_;
  Mutex mu_{LockRank::kEngine, "giop::CoolClient::mu_"};
  std::uint32_t next_id_ COOL_GUARDED_BY(mu_) = 1;
};

// Server engine; plugs into the same dispatcher type as the GIOP server so
// the object adapter serves both protocols of the message layer.
class CoolServer {
 public:
  // Reuses giop::GiopServer::DispatchResult / conventions: decoder is
  // positioned at the argument bytes (packed; base offset 0).
  using Dispatcher = std::function<giop::GiopServer::DispatchResult(
      const Request&, cdr::Decoder&)>;

  CoolServer(transport::ComChannel* channel, Dispatcher dispatcher)
      : channel_(channel), dispatcher_(std::move(dispatcher)) {}

  Status ServeOne(Duration timeout = seconds(30));
  Status Serve();

  std::uint64_t requests_served() const noexcept { return requests_served_; }

 private:
  transport::ComChannel* channel_;
  Dispatcher dispatcher_;
  std::uint64_t requests_served_ = 0;
};

}  // namespace cool::coolproto
