// Shared servant-dispatch worker pool. One pool serves every GIOP
// connection of an ORB: jobs are queued per QoS-derived priority class
// (paper §4.2 — the extension's QoS semantics survive server-side
// concurrency) and run on a fixed set of workers, so ten thousand idle
// connections cost zero dispatch threads. Each GiopServer participates as
// a DispatchRunner under a runner id; detaching a runner is a barrier that
// removes its queued jobs and waits out its in-flight upcalls, making
// connection teardown safe while the pool lives on.
#pragma once

#include <array>
#include <atomic>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/thread.h"
#include "giop/message.h"

namespace cool::giop {

// Dispatch priority classes for the server worker pool, derived from the
// 9.9 Request's qos_params. Lower value = served first.
enum class DispatchClass : int {
  kHigh = 0,    // explicit priority >= 170, or a latency/jitter bound
  kNormal = 1,  // no QoS, or QoS without scheduling implications
  kLow = 2,     // explicit priority < 85
};

inline constexpr std::size_t kDispatchClasses = 3;

// Maps a Request's QoS parameters onto a DispatchClass: an explicit
// kPriority parameter wins (0..84 low, 85..169 normal, 170..255 high);
// otherwise a latency or jitter bound marks the request latency-sensitive
// and promotes it to kHigh.
DispatchClass ClassifyQoS(
    const std::vector<qos::QoSParameter>& qos_params) noexcept;

// Default worker-pool size: one upcall thread per hardware thread.
std::size_t DefaultWorkerThreads() noexcept;

// One admitted Request on its way to a servant upcall. The ParsedMessage
// owns the transport frame; the args decoder reads straight out of it.
struct DispatchJob {
  RequestHeader header;
  ParsedMessage msg;
  // Absolute message offset of the argument bytes (the decoder position
  // right after the request header), so workers need not re-parse.
  std::size_t args_offset = 0;

  cdr::Decoder ArgsDecoder() const {
    return cdr::Decoder(msg.body().subspan(args_offset - kHeaderSize),
                        msg.header.byte_order, args_offset);
  }
};

// What the pool calls back into to run a job — a GiopServer, which owns
// the upcall and the reply send. Runners outlive their queued jobs by
// contract: detach (or close the pool) before destroying the runner.
class DispatchRunner {
 public:
  virtual ~DispatchRunner() = default;
  virtual void RunDispatchJob(const DispatchJob& job) = 0;
};

class DispatchPool {
 public:
  explicit DispatchPool(std::size_t workers = DefaultWorkerThreads(),
                        std::size_t queue_capacity = 1024);
  ~DispatchPool();

  DispatchPool(const DispatchPool&) = delete;
  DispatchPool& operator=(const DispatchPool&) = delete;

  // Process-unique runner id for Submit/CancelQueued/DetachRunner.
  static std::uint64_t AllocRunnerId();

  // Queues a job; blocks while the queue is at capacity (connection
  // backpressure). Returns false once the pool is closed or the runner
  // detached — the job is dropped.
  bool Submit(DispatchRunner* runner, std::uint64_t runner_id,
              DispatchClass cls, DispatchJob job);

  // Kills a queued-but-unstarted job of `runner_id`; false when no such
  // job is queued (it may be running already, or not yet submitted).
  bool CancelQueued(std::uint64_t runner_id, corba::ULong request_id);

  // Barrier: drops the runner's queued jobs, refuses new ones, and waits
  // until none of its jobs is mid-upcall. After return the pool holds no
  // reference to the runner. Must not be called from a pool worker.
  void DetachRunner(std::uint64_t runner_id);

  // Drains queued jobs, joins the workers. Idempotent.
  void Close();

  std::size_t workers() const noexcept { return worker_count_; }
  std::uint64_t jobs_run() const noexcept {
    return jobs_run_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    DispatchRunner* runner = nullptr;
    std::uint64_t runner_id = 0;
    DispatchJob job;
  };

  void WorkerLoop();
  // Pops the next job and marks its runner busy, atomically (the detach
  // barrier depends on pop+mark being one step). nullopt once closed and
  // drained.
  std::optional<Entry> NextEntry();
  // Marks the entry's runner idle again and wakes detach waiters.
  void DrainRunnerWaiters(std::uint64_t runner_id);

  const std::size_t worker_count_;
  const std::size_t queue_capacity_;
  std::atomic<std::uint64_t> jobs_run_{0};

  mutable Mutex mu_{LockRank::kDispatchPool, "giop::DispatchPool::mu_"};
  std::array<std::deque<Entry>, kDispatchClasses> queues_
      COOL_GUARDED_BY(mu_);
  std::size_t queued_ COOL_GUARDED_BY(mu_) = 0;
  bool closed_ COOL_GUARDED_BY(mu_) = false;
  CondVar job_ready_;
  CondVar job_space_;
  CondVar runner_idle_;
  // runner id -> number of its jobs currently mid-upcall.
  std::unordered_map<std::uint64_t, std::size_t> running_
      COOL_GUARDED_BY(mu_);
  std::unordered_set<std::uint64_t> detached_ COOL_GUARDED_BY(mu_);
  // Started in the constructor, joined only by Close().
  std::vector<Thread> workers_;
};

}  // namespace cool::giop
