// Shared servant-dispatch worker pool. One pool serves every GIOP
// connection of an ORB: jobs enter a hierarchical traffic-class tree
// (common/qos_sched.h) — WFQ across the three QoS bands, deficit round
// robin across the bindings inside each band, optional CoDel AQM on the
// per-binding queues — and run on a fixed set of workers, so ten thousand
// idle connections cost zero dispatch threads and a bursty tenant cannot
// starve its neighbours (paper §4.2: the extension's QoS semantics survive
// server-side concurrency). The legacy strict-priority three-deque scan
// survives as DispatchScheduler::kFlatPriority, the in-run baseline for
// bench_qos_fairness. Each GiopServer participates as a DispatchRunner
// under a runner id; detaching a runner is a barrier that removes its
// queued jobs and waits out its in-flight upcalls, making connection
// teardown safe while the pool lives on.
#pragma once

#include <array>
#include <atomic>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/qos_sched.h"
#include "common/thread.h"
#include "giop/message.h"
#include "qos/classify.h"

namespace cool::giop {

// Dispatch priority classes for the server worker pool, derived from the
// 9.9 Request's qos_params. Lower value = served first.
enum class DispatchClass : int {
  kHigh = 0,    // explicit priority >= 170, or a latency/jitter bound
  kNormal = 1,  // no QoS, or QoS without scheduling implications
  kLow = 2,     // explicit priority < 85
};

inline constexpr std::size_t kDispatchClasses = 3;

// Maps a Request's QoS parameters onto a DispatchClass: an explicit
// kPriority parameter wins (0..84 low, 85..169 normal, 170..255 high);
// otherwise a latency or jitter bound marks the request latency-sensitive
// and promotes it to kHigh. The full classifier (band + weight + rate) is
// qos::ClassifyForScheduling; this is its band projection.
DispatchClass ClassifyQoS(
    const std::vector<qos::QoSParameter>& qos_params) noexcept;

// Default worker-pool size: one upcall thread per hardware thread.
std::size_t DefaultWorkerThreads() noexcept;

// Which scheduler arbitrates queued dispatches.
enum class DispatchScheduler {
  kHierarchical,  // WFQ bands + per-binding DRR + optional CoDel
  kFlatPriority,  // legacy strict-priority scan (baseline / A-B runs)
};

// One admitted Request on its way to a servant upcall. The ParsedMessage
// owns the transport frame; the args decoder reads straight out of it.
struct DispatchJob {
  RequestHeader header;
  ParsedMessage msg;
  // Absolute message offset of the argument bytes (the decoder position
  // right after the request header), so workers need not re-parse.
  std::size_t args_offset = 0;

  cdr::Decoder ArgsDecoder() const {
    return cdr::Decoder(msg.body().subspan(args_offset - kHeaderSize),
                        msg.header.byte_order, args_offset);
  }
};

// What the pool calls back into to run a job — a GiopServer, which owns
// the upcall and the reply send. Runners outlive their queued jobs by
// contract: detach (or close the pool) before destroying the runner.
class DispatchRunner {
 public:
  virtual ~DispatchRunner() = default;
  virtual void RunDispatchJob(const DispatchJob& job) = 0;
  // A queued job the AQM shed before it ran (CoDel decided the queue's
  // standing delay already broke the contract). Called outside the pool
  // lock; the default swallows the job silently.
  virtual void DropDispatchJob(const DispatchJob& job) { (void)job; }
};

// Per-class view of the pool's scheduler state (DescribeStats's
// structured twin; the metrics seed for the adaptive control plane).
struct DispatchClassStats {
  std::string name;
  std::size_t queued = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t dropped = 0;
  std::uint64_t sojourn_p50_us = 0;
  std::uint64_t sojourn_p99_us = 0;
  std::uint64_t sojourn_p999_us = 0;
  std::uint64_t sojourn_max_us = 0;
  // Per-binding rows (hierarchical mode only; flat mode reports none).
  std::vector<sched::FlowSnapshot> bindings;
};

class DispatchPool {
 public:
  struct Options {
    std::size_t workers = DefaultWorkerThreads();
    std::size_t queue_capacity = 1024;
    DispatchScheduler scheduler = DispatchScheduler::kHierarchical;
    // WFQ weights of the High/Normal/Low bands. High outweighs Low 8:1 at
    // saturation yet Low keeps 1/13 of the workers — the anti-starvation
    // floor the flat scan never had.
    std::array<std::uint32_t, kDispatchClasses> class_weights{8, 4, 1};
    // DRR quantum among bindings, in job-cost units (see kJobBaseCost).
    std::uint32_t quantum_bytes = 4096;
    // CoDel AQM on the per-binding queues. Off by default: shedding a
    // dispatch surfaces as a TRANSIENT system exception at the client,
    // a policy the ORB owner opts into (README "qos_scheduler" knobs).
    bool codel_enabled = false;
    Duration codel_target = milliseconds(5);
    Duration codel_interval = milliseconds(100);
  };

  // Scheduling cost of a job: a floor per dispatch (the upcall overhead)
  // plus its argument bytes, so both job count and payload size weigh in.
  static constexpr std::size_t kJobBaseCost = 512;

  explicit DispatchPool(std::size_t workers = DefaultWorkerThreads(),
                        std::size_t queue_capacity = 1024);
  explicit DispatchPool(const Options& options);
  ~DispatchPool();

  DispatchPool(const DispatchPool&) = delete;
  DispatchPool& operator=(const DispatchPool&) = delete;

  // Process-unique runner id for Submit/CancelQueued/DetachRunner.
  static std::uint64_t AllocRunnerId();

  // Queues a job under the runner's binding flow; blocks while the queue
  // is at capacity (connection backpressure). Returns false once the pool
  // is closed or the runner detached — the job is dropped.
  bool Submit(DispatchRunner* runner, std::uint64_t runner_id,
              const qos::SchedProfile& profile, DispatchJob job);
  // Band-only convenience (tests, QoS-less callers): default weight, no
  // rate cap.
  bool Submit(DispatchRunner* runner, std::uint64_t runner_id,
              DispatchClass cls, DispatchJob job);

  // Kills a queued-but-unstarted job of `runner_id`; false when no such
  // job is queued (it may be running already, or not yet submitted).
  bool CancelQueued(std::uint64_t runner_id, corba::ULong request_id);

  // Barrier: drops the runner's queued jobs, refuses new ones, and waits
  // until none of its jobs is mid-upcall. After return the pool holds no
  // reference to the runner. Must not be called from a pool worker.
  void DetachRunner(std::uint64_t runner_id);

  // Live reconfiguration (the adaptive-control-plane hook): band weight
  // and AQM parameters apply from the next arbitration; queued jobs stay.
  void SetClassWeight(DispatchClass cls, std::uint32_t weight);
  void SetCodel(bool enabled, Duration target, Duration interval);

  // Drains queued jobs, joins the workers. Idempotent.
  void Close();

  std::size_t workers() const noexcept { return worker_count_; }
  std::uint64_t jobs_run() const noexcept {
    return jobs_run_.load(std::memory_order_relaxed);
  }
  std::uint64_t jobs_shed() const noexcept {
    return jobs_shed_.load(std::memory_order_relaxed);
  }

  // Per-class counters + sojourn percentiles (High, Normal, Low order).
  std::array<DispatchClassStats, kDispatchClasses> StatsSnapshot() const;
  // Human-readable stats line per class, in the DescribeStats idiom of
  // the Da CaPo modules.
  std::string DescribeStats() const;

 private:
  struct Entry {
    DispatchRunner* runner = nullptr;
    std::uint64_t runner_id = 0;
    DispatchJob job;
    TimePoint enqueued_at{};  // flat-mode sojourn (the tree keeps its own)
  };

  using Tree = sched::TrafficClassTree<Entry>;

  // One scheduler decision: at most one entry to run plus any entries the
  // AQM shed while reaching it. Neither present <=> closed and drained.
  struct Next {
    std::optional<Entry> entry;
    std::vector<Entry> dropped;
    bool HasWork() const { return entry.has_value() || !dropped.empty(); }
  };

  void Start();
  void WorkerLoop();
  // Pops the next decision and marks every popped runner busy, atomically
  // (the detach barrier depends on pop+mark being one step).
  Next NextDecision();
  // Marks the entry's runner idle again and wakes detach waiters.
  void DrainRunnerWaiters(std::uint64_t runner_id);
  sched::ClassOptions BandOptions(DispatchClass cls) const;

  std::size_t worker_count_ = 0;
  Options options_;
  std::atomic<std::uint64_t> jobs_run_{0};
  std::atomic<std::uint64_t> jobs_shed_{0};

  mutable Mutex mu_{LockRank::kDispatchPool, "giop::DispatchPool::mu_"};
  // Hierarchical scheduler state: root -> {high, normal, low} leaf classes
  // keyed by cls_id_, flows keyed by runner id (one flow per binding).
  Tree tree_ COOL_GUARDED_BY(mu_){};
  std::array<Tree::ClassId, kDispatchClasses> cls_id_ COOL_GUARDED_BY(mu_){};
  // Flat-priority baseline state (DispatchScheduler::kFlatPriority only).
  // Direct pushes onto flat_queues_ outside Submit bypass the scheduler
  // and are banned by scripts/check_invariants.py rule 14.
  std::array<std::deque<Entry>, kDispatchClasses> flat_queues_
      COOL_GUARDED_BY(mu_);
  // Flat-mode per-class counters/sojourn (same surface as the tree's).
  struct FlatStats {
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    Histogram sojourn_us;
  };
  std::array<FlatStats, kDispatchClasses> flat_stats_ COOL_GUARDED_BY(mu_);
  std::size_t queued_ COOL_GUARDED_BY(mu_) = 0;
  bool closed_ COOL_GUARDED_BY(mu_) = false;
  CondVar job_ready_;
  CondVar job_space_;
  CondVar runner_idle_;
  // runner id -> number of its jobs currently mid-upcall or mid-drop.
  std::unordered_map<std::uint64_t, std::size_t> running_
      COOL_GUARDED_BY(mu_);
  std::unordered_set<std::uint64_t> detached_ COOL_GUARDED_BY(mu_);
  // Started in the constructor, joined only by Close().
  std::vector<Thread> workers_;
};

}  // namespace cool::giop
