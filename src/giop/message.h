// GIOP message layer (CORBA 2.0 §12 + the paper's §4.2 extension).
//
// "OMG's standard GIOP uses seven messages to send method invocations from
// client to object implementation, return the response back to the client,
// cancel requests, handle errors, etc."
//
// The QoS extension follows the paper exactly:
//  * the GIOP header `version` field distinguishes standard GIOP
//    (major 1, minor 0) from the QoS extension (major 9, minor 9);
//  * the Request message is the only message modified — it gains a final
//    `sequence<QoSParameter> qos_params` field;
//  * a server that cannot satisfy the requested QoS answers with the
//    standard CORBA exception mechanism (SYSTEM_EXCEPTION Reply).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "cdr/decoder.h"
#include "cdr/encoder.h"
#include "cdr/types.h"
#include "common/byte_buffer.h"
#include "common/status.h"
#include "qos/qos.h"

namespace cool::giop {

struct Version {
  corba::Octet major = 1;
  corba::Octet minor = 0;
  friend bool operator==(const Version&, const Version&) = default;
  std::string ToString() const {
    return std::to_string(major) + "." + std::to_string(minor);
  }
};

// Standard GIOP and the paper's QoS extension ("major version number 9,
// minor version number 9").
inline constexpr Version kGiop10{1, 0};
inline constexpr Version kGiopQos{9, 9};

enum class MsgType : corba::Octet {
  kRequest = 0,
  kReply = 1,
  kCancelRequest = 2,
  kLocateRequest = 3,
  kLocateReply = 4,
  kCloseConnection = 5,
  kMessageError = 6,
};

std::string_view MsgTypeName(MsgType t) noexcept;

inline constexpr std::size_t kHeaderSize = 12;
inline constexpr std::array<corba::Octet, 4> kMagic{'G', 'I', 'O', 'P'};

struct MessageHeader {
  Version version;
  cdr::ByteOrder byte_order = cdr::NativeOrder();
  MsgType message_type = MsgType::kRequest;
  corba::ULong message_size = 0;  // octets following the 12-octet header
};

struct ServiceContext {
  corba::ULong context_id = 0;
  corba::OctetSeq context_data;
  friend bool operator==(const ServiceContext&,
                         const ServiceContext&) = default;
};
using ServiceContextList = std::vector<ServiceContext>;

// The only GIOP message modified by the extension (paper Fig. 2-ii):
// qos_params is appended and is present on the wire iff the message header
// carries version 9.9.
struct RequestHeader {
  ServiceContextList service_context;
  corba::ULong request_id = 0;
  corba::Boolean response_expected = true;
  corba::OctetSeq object_key;
  corba::String operation;
  corba::OctetSeq requesting_principal;
  std::vector<qos::QoSParameter> qos_params;  // extension field

  friend bool operator==(const RequestHeader&,
                         const RequestHeader&) = default;
};

enum class ReplyStatus : corba::ULong {
  kNoException = 0,
  kUserException = 1,
  kSystemException = 2,
  kLocationForward = 3,
};

struct ReplyHeader {
  ServiceContextList service_context;
  corba::ULong request_id = 0;
  ReplyStatus reply_status = ReplyStatus::kNoException;
  friend bool operator==(const ReplyHeader&, const ReplyHeader&) = default;
};

struct CancelRequestHeader {
  corba::ULong request_id = 0;
};

struct LocateRequestHeader {
  corba::ULong request_id = 0;
  corba::OctetSeq object_key;
};

enum class LocateStatus : corba::ULong {
  kUnknownObject = 0,
  kObjectHere = 1,
  kObjectForward = 2,
};

struct LocateReplyHeader {
  corba::ULong request_id = 0;
  LocateStatus locate_status = LocateStatus::kUnknownObject;
};

// --- encoding ---------------------------------------------------------------
// Build functions return the complete wire message (header + CDR body) with
// message_size back-patched.

ByteBuffer BuildRequest(Version version, const RequestHeader& header,
                        std::span<const corba::Octet> args_cdr,
                        cdr::ByteOrder order = cdr::NativeOrder());
ByteBuffer BuildReply(Version version, const ReplyHeader& header,
                      std::span<const corba::Octet> body_cdr,
                      cdr::ByteOrder order = cdr::NativeOrder());
ByteBuffer BuildCancelRequest(Version version,
                              const CancelRequestHeader& header,
                              cdr::ByteOrder order = cdr::NativeOrder());
ByteBuffer BuildLocateRequest(Version version,
                              const LocateRequestHeader& header,
                              cdr::ByteOrder order = cdr::NativeOrder());
ByteBuffer BuildLocateReply(Version version, const LocateReplyHeader& header,
                            cdr::ByteOrder order = cdr::NativeOrder());
ByteBuffer BuildCloseConnection(Version version,
                                cdr::ByteOrder order = cdr::NativeOrder());
ByteBuffer BuildMessageError(Version version,
                             cdr::ByteOrder order = cdr::NativeOrder());

// --- scatter-gather assembly ------------------------------------------------
// The allocation-free invocation path never concatenates the CDR argument
// buffer into the frame. Instead the engine builds a *preamble* — GIOP
// header + Request/Reply header, trailing 8-alignment included, with
// message_size already patched for a tail of `tail_size` octets — into a
// pooled buffer, and hands {preamble, args} to ComChannel::SendMessageV.

// RequestHeader by view: field spans alias caller-owned storage, so
// building a preamble copies no object key / operation / principal bytes.
// qos_params (the 9.9 extension field) and service_context may be null
// (encoded as empty).
struct RequestHeaderView {
  const ServiceContextList* service_context = nullptr;
  corba::ULong request_id = 0;
  corba::Boolean response_expected = true;
  std::span<const corba::Octet> object_key;
  std::string_view operation;
  std::span<const corba::Octet> requesting_principal;
  const std::vector<qos::QoSParameter>* qos_params = nullptr;
};

// Encodes the preamble into `buf` (cleared first; typically a BufferPool
// lease) and returns it. The preamble ends 8-aligned so a CDR body encoded
// at an 8-aligned base offset splices in behind it unchanged; message_size
// is patched for preamble + `tail_size` octets of body to follow.
ByteBuffer BuildRequestPreamble(Version version,
                                const RequestHeaderView& header,
                                std::size_t tail_size, cdr::ByteOrder order,
                                ByteBuffer buf);
ByteBuffer BuildReplyPreamble(Version version, const ReplyHeader& header,
                              std::size_t tail_size, cdr::ByteOrder order,
                              ByteBuffer buf);

// Back-patches message_size = (frame.size() - kHeaderSize) + tail_size into
// an assembled frame prefix (endianness taken from the header's byte_order
// octet). `frame` must start with a 12-octet GIOP header.
void PatchMessageSize(ByteBuffer& frame, std::size_t tail_size);

// --- in-place assembly ------------------------------------------------------
// Building blocks for assembling a message directly into externally-owned
// memory (e.g. a Da CaPo arena packet) instead of a full-message staging
// buffer: the fixed header with message_size already filled in, and the
// Reply's CDR header body encoded at base offset kHeaderSize (trailing
// 8-alignment included) so the result body splices in behind it unchanged.

std::array<corba::Octet, kHeaderSize> HeaderBytes(Version version,
                                                  MsgType type,
                                                  corba::ULong message_size,
                                                  cdr::ByteOrder order);

ByteBuffer BuildReplyHeaderBody(const ReplyHeader& header,
                                cdr::ByteOrder order = cdr::NativeOrder());

// --- decoding ---------------------------------------------------------------

// A parsed message: the validated header plus the full wire frame. Owning
// the frame as a ByteBuffer lets the engines adopt the transport's receive
// buffer by move — zero copies on the receive path, and pooled storage
// returns to its BufferPool when the ParsedMessage dies. Decoders and
// body() spans alias `buffer` and must not outlive it.
struct ParsedMessage {
  MessageHeader header;
  // Full frame: 12-octet GIOP header + body.
  ByteBuffer buffer;

  // Body octets (excluding the 12-octet GIOP header).
  std::span<const corba::Octet> body() const noexcept {
    return buffer.view().subspan(kHeaderSize);
  }

  cdr::Decoder MakeBodyDecoder() const {
    return cdr::Decoder(body(), header.byte_order, kHeaderSize);
  }
};

// Parses and validates the 12-octet header.
Result<MessageHeader> ParseHeader(std::span<const corba::Octet> bytes);

// Parses a complete message (header + body in one buffer, as delivered by
// the generic transport layer). The span overload copies the frame into
// the ParsedMessage; the ByteBuffer overload adopts it without copying —
// the engines use the latter with the transport's receive buffer.
Result<ParsedMessage> ParseMessage(std::span<const corba::Octet> bytes);
Result<ParsedMessage> ParseMessage(ByteBuffer frame);

// Body parsers. `ParseRequestHeader` reads qos_params iff version is 9.9.
Result<RequestHeader> ParseRequestHeader(cdr::Decoder& dec, Version version);
Result<ReplyHeader> ParseReplyHeader(cdr::Decoder& dec);
Result<CancelRequestHeader> ParseCancelRequestHeader(cdr::Decoder& dec);
Result<LocateRequestHeader> ParseLocateRequestHeader(cdr::Decoder& dec);
Result<LocateReplyHeader> ParseLocateReplyHeader(cdr::Decoder& dec);

// True when this implementation speaks `v` (1.0 always; 9.9 iff the peer
// enabled the extension — the engine checks that flag).
bool IsKnownVersion(Version v) noexcept;

}  // namespace cool::giop
