#include "giop/cool_protocol.h"

#include "common/logging.h"

namespace cool::coolproto {

namespace {

constexpr std::uint8_t kMagic[4] = {'C', 'O', 'O', 'L'};

void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  Result<std::uint8_t> U8() {
    if (pos_ + 1 > data_.size()) return Underrun();
    return data_[pos_++];
  }
  Result<std::uint16_t> U16() {
    if (pos_ + 2 > data_.size()) return Underrun();
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | static_cast<std::uint16_t>(data_[pos_ + 1]) << 8);
    pos_ += 2;
    return v;
  }
  Result<std::uint32_t> U32() {
    if (pos_ + 4 > data_.size()) return Underrun();
    const std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                            static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
                            static_cast<std::uint32_t>(data_[pos_ + 2]) << 16 |
                            static_cast<std::uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
  }
  Result<std::span<const std::uint8_t>> Bytes(std::size_t n) {
    if (pos_ + n > data_.size()) {
      return Status(ProtocolError("COOL message underrun"));
    }
    auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }
  std::span<const std::uint8_t> Rest() {
    auto view = data_.subspan(pos_);
    pos_ = data_.size();
    return view;
  }

 private:
  Status Underrun() const { return ProtocolError("COOL message underrun"); }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

ByteBuffer Finish(MsgType type, std::uint32_t id,
                  std::vector<std::uint8_t> body) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + body.size());
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  out.push_back(static_cast<std::uint8_t>(type));
  PutU32(out, id);
  PutU32(out, static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return ByteBuffer(std::move(out));
}

Result<std::pair<MsgType, std::uint32_t>> ParseHeader(
    std::span<const std::uint8_t> message) {
  if (message.size() < kHeaderSize) {
    return Status(ProtocolError("COOL header truncated"));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    if (message[i] != kMagic[i]) {
      return Status(ProtocolError("bad COOL magic"));
    }
  }
  if (message[4] > static_cast<std::uint8_t>(MsgType::kError)) {
    return Status(ProtocolError("unknown COOL message type"));
  }
  Reader r(message.subspan(5));
  COOL_ASSIGN_OR_RETURN(std::uint32_t id, r.U32());
  COOL_ASSIGN_OR_RETURN(std::uint32_t body_size, r.U32());
  if (message.size() != kHeaderSize + body_size) {
    return Status(ProtocolError("COOL body_size mismatch"));
  }
  return std::make_pair(static_cast<MsgType>(message[4]), id);
}

}  // namespace

ByteBuffer EncodeRequest(const Request& request) {
  std::vector<std::uint8_t> body;
  body.push_back(request.response_expected ? 1 : 0);
  PutU16(body, static_cast<std::uint16_t>(request.object_key.size()));
  body.insert(body.end(), request.object_key.begin(),
              request.object_key.end());
  PutU16(body, static_cast<std::uint16_t>(request.operation.size()));
  body.insert(body.end(), request.operation.begin(),
              request.operation.end());
  PutU16(body, static_cast<std::uint16_t>(request.qos_params.size()));
  for (const qos::QoSParameter& p : request.qos_params) {
    PutU32(body, p.param_type);
    PutU32(body, p.request_value);
    PutU32(body, static_cast<std::uint32_t>(p.max_value));
    PutU32(body, static_cast<std::uint32_t>(p.min_value));
  }
  body.insert(body.end(), request.args.begin(), request.args.end());
  return Finish(MsgType::kRequest, request.id, std::move(body));
}

ByteBuffer EncodeReply(const Reply& reply) {
  std::vector<std::uint8_t> body;
  body.push_back(static_cast<std::uint8_t>(reply.status));
  body.insert(body.end(), reply.results.begin(), reply.results.end());
  return Finish(MsgType::kReply, reply.id, std::move(body));
}

ByteBuffer EncodeError() { return Finish(MsgType::kError, 0, {}); }

Result<MsgType> PeekType(std::span<const std::uint8_t> message) {
  COOL_ASSIGN_OR_RETURN(auto header, ParseHeader(message));
  return header.first;
}

Result<Request> DecodeRequest(std::span<const std::uint8_t> message) {
  COOL_ASSIGN_OR_RETURN(auto header, ParseHeader(message));
  if (header.first != MsgType::kRequest) {
    return Status(ProtocolError("not a COOL Request"));
  }
  Request request;
  request.id = header.second;
  Reader r(message.subspan(kHeaderSize));
  COOL_ASSIGN_OR_RETURN(std::uint8_t flags, r.U8());
  request.response_expected = (flags & 1) != 0;
  COOL_ASSIGN_OR_RETURN(std::uint16_t key_len, r.U16());
  COOL_ASSIGN_OR_RETURN(auto key, r.Bytes(key_len));
  request.object_key.assign(key.begin(), key.end());
  COOL_ASSIGN_OR_RETURN(std::uint16_t op_len, r.U16());
  COOL_ASSIGN_OR_RETURN(auto op, r.Bytes(op_len));
  request.operation.assign(op.begin(), op.end());
  COOL_ASSIGN_OR_RETURN(std::uint16_t qos_count, r.U16());
  for (std::uint16_t i = 0; i < qos_count; ++i) {
    qos::QoSParameter p;
    COOL_ASSIGN_OR_RETURN(p.param_type, r.U32());
    COOL_ASSIGN_OR_RETURN(p.request_value, r.U32());
    COOL_ASSIGN_OR_RETURN(std::uint32_t max_v, r.U32());
    COOL_ASSIGN_OR_RETURN(std::uint32_t min_v, r.U32());
    p.max_value = static_cast<corba::Long>(max_v);
    p.min_value = static_cast<corba::Long>(min_v);
    request.qos_params.push_back(p);
  }
  const auto args = r.Rest();
  request.args.assign(args.begin(), args.end());
  return request;
}

Result<Reply> DecodeReply(std::span<const std::uint8_t> message) {
  COOL_ASSIGN_OR_RETURN(auto header, ParseHeader(message));
  if (header.first != MsgType::kReply) {
    return Status(ProtocolError("not a COOL Reply"));
  }
  Reply reply;
  reply.id = header.second;
  Reader r(message.subspan(kHeaderSize));
  COOL_ASSIGN_OR_RETURN(std::uint8_t status, r.U8());
  if (status > static_cast<std::uint8_t>(
                   giop::ReplyStatus::kSystemException)) {
    return Status(ProtocolError("bad COOL reply status"));
  }
  reply.status = static_cast<giop::ReplyStatus>(status);
  const auto results = r.Rest();
  reply.results.assign(results.begin(), results.end());
  return reply;
}

// --- engines -------------------------------------------------------------------

Result<Reply> CoolClient::Invoke(
    const corba::OctetSeq& object_key, const std::string& operation,
    std::span<const std::uint8_t> args,
    const std::vector<qos::QoSParameter>& qos_params, Duration timeout) {
  Request request;
  {
    // mu_ only covers the id allocation — never the exchange itself
    // (scripts/check_invariants.py rule 8). ComChannel::Call serializes
    // the send/receive pair at the transport layer.
    MutexLock lock(mu_);
    request.id = next_id_++;
  }
  request.object_key = object_key;
  request.operation = operation;
  request.qos_params = qos_params;
  request.args.assign(args.begin(), args.end());

  COOL_ASSIGN_OR_RETURN(ByteBuffer raw,
                        channel_->Call(EncodeRequest(request).view(), timeout));
  COOL_ASSIGN_OR_RETURN(MsgType type, PeekType(raw.view()));
  if (type == MsgType::kError) {
    return Status(ProtocolError("peer answered COOL Error"));
  }
  COOL_ASSIGN_OR_RETURN(Reply reply, DecodeReply(raw.view()));
  if (reply.id != request.id) {
    return Status(ProtocolError("COOL reply id mismatch"));
  }
  return reply;
}

Status CoolClient::InvokeOneway(
    const corba::OctetSeq& object_key, const std::string& operation,
    std::span<const std::uint8_t> args,
    const std::vector<qos::QoSParameter>& qos_params) {
  MutexLock lock(mu_);
  Request request;
  request.id = next_id_++;
  request.response_expected = false;
  request.object_key = object_key;
  request.operation = operation;
  request.qos_params = qos_params;
  request.args.assign(args.begin(), args.end());
  return channel_->SendMessage(EncodeRequest(request).view());
}

Status CoolServer::ServeOne(Duration timeout) {
  auto raw = channel_->ReceiveMessage(timeout);
  if (!raw.ok()) return raw.status();

  auto request = DecodeRequest(raw->view());
  if (!request.ok()) {
    (void)channel_->SendMessage(EncodeError().view());
    return request.status();
  }
  cdr::Decoder args(request->args, cdr::ByteOrder::kLittleEndian, 0);
  const giop::GiopServer::DispatchResult result =
      dispatcher_(*request, args);
  ++requests_served_;
  if (!request->response_expected) return Status::Ok();

  Reply reply;
  reply.id = request->id;
  reply.status = result.status;
  const auto view = result.body.view();
  reply.results.assign(view.begin(), view.end());
  return channel_->SendMessage(EncodeReply(reply).view());
}

Status CoolServer::Serve() {
  for (;;) {
    Status s = ServeOne(seconds(3600));
    if (s.ok()) continue;
    if (s.code() == ErrorCode::kProtocolError) {
      COOL_LOG(kWarn, "coolproto") << "protocol error: " << s;
      continue;
    }
    return s;
  }
}

}  // namespace cool::coolproto
