// GIOP protocol engines: the client and server halves of the message layer,
// running over one generic-transport channel each. The engines own request
// ids, reply matching, version selection (1.0 vs the 9.9 QoS extension) and
// backwards compatibility (a server with the extension disabled answers 9.9
// Requests with MessageError, as an unmodified COOL would).
//
// Both engines multiplex one channel across many in-flight requests:
//
//  * GiopClient runs a reply demultiplexer: with a Reactor in Options the
//    demux is a reactor callback draining the channel's non-blocking
//    receive path (no thread per binding); otherwise a polling reader
//    thread drains the channel. Either way, per-request slots keyed by
//    request id let Invoke / InvokeDeferred / Locate from any number of
//    caller threads pipeline over the same connection. No lock is ever
//    held across blocking I/O (scripts/check_invariants.py rule 8).
//  * GiopServer runs dispatcher upcalls on a priority worker pool — a
//    shared DispatchPool (one per ORB, via Options.pool) or a private one
//    (Options.worker_threads; 0 = inline dispatch in the receive loop).
//    Replies may return out of order; only the reply *send* is serialized.
//    A CancelRequest kills a queued-but-unstarted dispatch, and per-request
//    QoS parameters (9.9 Requests) map to dispatch priority classes so the
//    paper's QoS semantics survive concurrency.
#pragma once

#include <array>
#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/buffer_pool.h"
#include "common/mutex.h"
#include "common/thread.h"
#include "giop/dispatch_pool.h"
#include "giop/message.h"
#include "transport/com_channel.h"
#include "transport/reactor.h"

namespace cool::giop {

class GiopClient {
 public:
  struct Options {
    // Speak GIOP 9.9 for requests that carry QoS parameters. Requests
    // without QoS always use standard GIOP 1.0 (paper §4.1: "Never call
    // setQoSParameter: no QoS support is required and standard GIOP can be
    // used").
    bool use_qos_extension = true;
    cdr::ByteOrder order = cdr::NativeOrder();
    corba::OctetSeq principal;
    // Cap on remembered cancelled/timed-out request ids whose late replies
    // must be discarded; oldest entries are FIFO-evicted beyond this.
    std::size_t abandoned_cap = 1024;
    // Poll quantum of the demux reader thread: the granularity at which it
    // notices a stop request on an otherwise idle connection. (A close of
    // the channel interrupts the wait immediately; the quantum only bounds
    // how long a stop request on a healthy idle connection goes unnoticed.)
    Duration reader_poll = milliseconds(50);
    // Reply demultiplexing via a reactor callback instead of a dedicated
    // reader thread. Used when the channel supports the non-blocking
    // receive path (RegisterRx); falls back to the reader thread otherwise.
    transport::Reactor* reactor = nullptr;
  };

  // The channel must outlive the engine.
  GiopClient(transport::ComChannel* channel, Options options)
      : channel_(channel), options_(std::move(options)) {}
  ~GiopClient();

  GiopClient(const GiopClient&) = delete;
  GiopClient& operator=(const GiopClient&) = delete;

  // A received Reply, with accessors to decode its result body.
  struct Reply {
    ReplyHeader header;
    ParsedMessage message;
    cdr::Decoder MakeResultsDecoder() const;

    // The reply body (results / exception) as raw octets, and its offset
    // within the whole GIOP message (always 8-aligned), for callers that
    // re-home the bytes into their own decoder.
    std::span<const corba::Octet> ResultsBytes() const {
      return message.body().subspan(results_offset_ - kHeaderSize);
    }
    std::size_t ResultsMessageOffset() const { return results_offset_; }

   private:
    friend class GiopClient;
    std::size_t results_offset_ = 0;
  };

  // Synchronous two-way invocation. `args_cdr` must be encoded with an
  // 8-aligned base offset (use MakeArgsEncoder). Carries `qos_params` in an
  // extended 9.9 Request when non-empty. Any number of threads may invoke
  // concurrently; their requests pipeline over the one channel.
  Result<Reply> Invoke(const corba::OctetSeq& object_key,
                       const std::string& operation,
                       std::span<const corba::Octet> args_cdr,
                       const std::vector<qos::QoSParameter>& qos_params,
                       Duration timeout = seconds(10));

  // One-way (response_expected = false); returns after handing the Request
  // to the transport.
  Status InvokeOneway(const corba::OctetSeq& object_key,
                      const std::string& operation,
                      std::span<const corba::Octet> args_cdr,
                      const std::vector<qos::QoSParameter>& qos_params);

  // Deferred-synchronous: sends the Request and returns its id; collect the
  // Reply later with PollReply (or abandon it with Cancel).
  Result<corba::ULong> InvokeDeferred(
      const corba::OctetSeq& object_key, const std::string& operation,
      std::span<const corba::Octet> args_cdr,
      const std::vector<qos::QoSParameter>& qos_params);
  Result<Reply> PollReply(corba::ULong request_id,
                          Duration timeout = seconds(10));

  // Sends CancelRequest and locally abandons the id: a waiting caller is
  // released with kCancelled, and a late Reply for it is discarded by the
  // demux reader.
  Status Cancel(corba::ULong request_id);

  // GIOP object location probe.
  Result<LocateStatus> Locate(const corba::OctetSeq& object_key,
                              Duration timeout = seconds(10));

  // Sends CloseConnection (client-initiated shutdown is non-standard in
  // GIOP 1.0 but COOL uses it to tear down idle bindings).
  Status SendClose();

  // Argument encoder whose alignment matches the spliced position inside
  // the Request message (8-aligned). Encodes into a pooled buffer; the
  // storage returns to the pool when the caller's ByteBuffer dies.
  cdr::Encoder MakeArgsEncoder() const {
    return cdr::Encoder(options_.order, 0, BufferPool::Default().Lease());
  }

  corba::ULong last_request_id() const {
    MutexLock lock(mu_);
    return next_request_id_ - 1;
  }

  // Number of requests currently awaiting a reply (tests/metrics).
  std::size_t in_flight() const {
    MutexLock lock(mu_);
    return pending_.size();
  }

 private:
  // One in-flight request awaiting its reply. Fields are guarded by the
  // client's mu_ (not annotatable from a nested type); `cv` has a single
  // waiter, so completion notifies with NotifyOne.
  struct Slot {
    CondVar cv;
    bool done = false;
    Result<ParsedMessage> outcome{Status(InternalError("reply pending"))};
  };

  struct PendingCall {
    corba::ULong id = 0;
    std::shared_ptr<Slot> slot;
  };

  // Allocates an id + slot, starts the demux reader if needed, and sends
  // the message whose preamble `build_head(id)` returns followed by `tail`
  // (empty for messages built whole, e.g. LocateRequest) as one gathered
  // write. Fails fast once the connection is known to be broken. Templated
  // on the builder so the hot path never type-erases it into a heap-backed
  // std::function.
  template <typename BuildHead>
  Result<PendingCall> StartCall(std::span<const corba::Octet> tail,
                                const BuildHead& build_head);

  // Blocks until the slot completes or `deadline` passes. On completion
  // the slot is consumed (erased from pending_). On timeout the id is
  // abandoned (Invoke/Locate) or left outstanding for a later poll
  // (PollReply), per `abandon_on_timeout`.
  Result<ParsedMessage> AwaitSlot(corba::ULong id,
                                  const std::shared_ptr<Slot>& slot,
                                  Duration timeout, bool abandon_on_timeout);

  void EnsureReaderLocked() COOL_REQUIRES(mu_);
  void ReaderLoop(std::stop_token stop);
  // Reactor callback: drains TryReceiveMessage until nothing is pending.
  void DrainReactor();
  // Parses and routes one received frame (shared by both demux paths).
  // Returns true when the connection is terminal (demux should stop).
  bool HandleFrame(ByteBuffer raw);
  // Routes a Reply/LocateReply to its slot; unknown ids are discarded if
  // abandoned, logged otherwise.
  void CompleteRequest(corba::ULong request_id, ParsedMessage msg);
  // Fails every pending slot with `status`. `terminal` marks the
  // connection broken: subsequent calls fail fast and the abandoned-id
  // memory is released (nothing more can arrive).
  void FailPending(const Status& status, bool terminal);
  void AbandonLocked(corba::ULong id) COOL_REQUIRES(mu_);

  // Serializes writes to the channel; never held together with mu_.
  Status SendSerialized(const ByteBuffer& msg);
  // Gathered variant: {head, tail} leave as one message via SendMessageV.
  Status SendSerializedV(const ByteBuffer& head,
                         std::span<const corba::Octet> tail);

  // Builds the Request preamble (GIOP header + request header, 8-aligned,
  // message_size patched for `args_size` octets of body to follow) into a
  // pooled buffer. The args themselves never pass through here.
  ByteBuffer BuildRequestHead(const corba::OctetSeq& object_key,
                              const std::string& operation,
                              const std::vector<qos::QoSParameter>& qos_params,
                              std::size_t args_size, bool response_expected,
                              corba::ULong request_id) const;
  static Result<Reply> MakeReply(ParsedMessage parsed);

  transport::ComChannel* channel_;
  Options options_;

  Mutex send_mu_{LockRank::kEngine, "giop::GiopClient::send_mu_"};
  mutable Mutex mu_{LockRank::kEngine, "giop::GiopClient::mu_"};
  corba::ULong next_request_id_ COOL_GUARDED_BY(mu_) = 1;
  std::unordered_map<corba::ULong, std::shared_ptr<Slot>> pending_
      COOL_GUARDED_BY(mu_);
  // Abandoned-id memory, allocated on the first cancel/timeout (same
  // rationale as GiopServer::CancelMemory: the empty deque is not free).
  struct AbandonMemory {
    std::unordered_set<corba::ULong> ids;
    std::deque<corba::ULong> fifo;  // FIFO eviction order beyond the cap
  };
  std::unique_ptr<AbandonMemory> abandoned_ COOL_GUARDED_BY(mu_);
  // Terminal connection status; non-OK once the demux reader has exited.
  Status broken_ COOL_GUARDED_BY(mu_) = Status::Ok();
  bool reader_started_ COOL_GUARDED_BY(mu_) = false;
  // Started under mu_, joined only by the destructor (no concurrent use).
  Thread reader_;
  // Reactor registration (written once under mu_ in EnsureReaderLocked,
  // read by the destructor when no other thread can touch the engine).
  bool reactor_registered_ = false;
  std::uint64_t rx_reg_ = 0;
};

template <typename BuildHead>
Result<GiopClient::PendingCall> GiopClient::StartCall(
    std::span<const corba::Octet> tail, const BuildHead& build_head) {
  PendingCall call;
  {
    MutexLock lock(mu_);
    if (!broken_.ok()) return broken_;
    call.id = next_request_id_++;
    call.slot = std::make_shared<Slot>();
    pending_.emplace(call.id, call.slot);
    EnsureReaderLocked();
  }
  const ByteBuffer head = build_head(call.id);
  const Status sent = SendSerializedV(head, tail);
  if (!sent.ok()) {
    MutexLock lock(mu_);
    pending_.erase(call.id);
    return sent;
  }
  return call;
}

class GiopServer : public DispatchRunner {
 public:
  struct Options {
    // When false the server is an unmodified GIOP 1.0 implementation: a
    // 9.9 Request is answered with MessageError.
    bool accept_qos_extension = true;
    cdr::ByteOrder order = cdr::NativeOrder();
    // Shared dispatch pool (one per ORB): upcalls run on the pool's
    // workers and worker_threads below is ignored. The pool must outlive
    // the server; Close() detaches from it.
    DispatchPool* pool = nullptr;
    // Private dispatcher worker-pool size (when pool == nullptr). Workers
    // run servant upcalls concurrently and may answer out of order; 0 runs
    // every upcall inline in the receive loop (the historical serial mode).
    std::size_t worker_threads = DefaultWorkerThreads();
    // Bound on queued-but-unstarted dispatches; the receive loop blocks
    // (connection backpressure) once this many upcalls are waiting.
    std::size_t queue_capacity = 256;
    // Cap on remembered CancelRequest ids (FIFO-evicted beyond this).
    std::size_t cancelled_cap = 1024;
    // Scheduler knobs of the private pool (pool == nullptr mode); the
    // shared pool carries its own DispatchPool::Options.
    DispatchScheduler scheduler = DispatchScheduler::kHierarchical;
    bool codel_enabled = false;
    Duration codel_target = milliseconds(5);
    Duration codel_interval = milliseconds(100);
  };

  // What the upcall produced; body must be encoded with MakeBodyEncoder.
  struct DispatchResult {
    ReplyStatus status = ReplyStatus::kNoException;
    ByteBuffer body;
  };

  // Upcall into the object adapter. The decoder is positioned at the
  // operation arguments. With worker_threads > 0 the dispatcher is called
  // from pool threads concurrently and must be thread-safe.
  using Dispatcher =
      std::function<DispatchResult(const RequestHeader&, cdr::Decoder&)>;
  // Object-existence probe for LocateRequest.
  using Locator = std::function<bool(const corba::OctetSeq&)>;

  GiopServer(transport::ComChannel* channel, Dispatcher dispatcher,
             Options options)
      : GiopServer(channel, std::move(dispatcher),
                   std::make_shared<const Options>(std::move(options))) {}

  // Shared-config constructor: an ORB builds ONE immutable Options block
  // and every accepted connection's server references it, instead of each
  // carrying a private copy — part of the per-connection memory diet.
  GiopServer(transport::ComChannel* channel, Dispatcher dispatcher,
             std::shared_ptr<const Options> options)
      : channel_(channel),
        dispatcher_(std::move(dispatcher)),
        options_(std::move(options)) {}
  ~GiopServer();

  GiopServer(const GiopServer&) = delete;
  GiopServer& operator=(const GiopServer&) = delete;

  void SetLocator(Locator locator) { locator_ = std::move(locator); }

  // Handles exactly one incoming message: a Request is parsed, admitted
  // and (pool mode) enqueued for a worker — the upcall itself may still be
  // running when ServeOne returns. Returns:
  //  * OK            — message handled, connection still open
  //  * kCancelled    — peer sent CloseConnection (clean end)
  //  * kUnavailable  — transport gone
  //  * other         — protocol violation (a MessageError was sent back
  //                    when possible)
  Status ServeOne(Duration timeout = seconds(30));

  // Reactor entry: handles one already-received frame — everything
  // ServeOne does after its blocking receive, with the same return
  // contract.
  Status HandleFrame(ByteBuffer raw);

  // Loop until the connection ends; returns the terminating status
  // (kCancelled for a clean CloseConnection). Drains the worker pool and
  // releases the cancel memory before returning.
  Status Serve();

  // DispatchRunner: runs one upcall (last-chance cancel check included).
  // Called by the pool's workers; public only for that reason.
  void RunDispatchJob(const DispatchJob& job) override;
  // DispatchRunner: a queued dispatch the pool's AQM shed — answers a
  // response-expecting Request with a TRANSIENT system exception so the
  // client sees the overload instead of a stall.
  void DropDispatchJob(const DispatchJob& job) override;

  // Stops the worker pool after draining queued dispatches. Idempotent;
  // called by the destructor. Not safe to call concurrently with itself.
  void Close();

  // Reply-body encoder over a pooled buffer (see MakeArgsEncoder).
  cdr::Encoder MakeBodyEncoder() const {
    return cdr::Encoder(options_->order, 0, BufferPool::Default().Lease());
  }

  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  // Dispatches killed before they started (cancelled while queued, or
  // cancel recorded before the Request arrived).
  std::uint64_t requests_cancelled() const {
    return requests_cancelled_.load(std::memory_order_relaxed);
  }
  // Queued dispatches the scheduler's AQM shed before they ran.
  std::uint64_t requests_shed() const {
    return requests_shed_.load(std::memory_order_relaxed);
  }

 private:
  Status HandleRequest(ParsedMessage msg);
  Status HandleCancel(corba::ULong request_id);
  // Runs the upcall and sends the Reply (when one is expected).
  Status DispatchAndReply(const DispatchJob& job);

  // The private DispatchPool (pool == nullptr, worker_threads > 0),
  // created lazily on the first pooled dispatch so idle servers cost no
  // threads. Returns nullptr once closed.
  DispatchPool* EnsurePrivatePool();
  bool TakeCancelledLocked(corba::ULong id) COOL_REQUIRES(pool_mu_);
  void RememberCancelLocked(corba::ULong id) COOL_REQUIRES(pool_mu_);

  // Serializes reply/error sends from workers and the receive loop.
  Status SendSerialized(const ByteBuffer& msg);
  // Gathered variant: {head, tail} leave as one message via SendMessageV.
  Status SendSerializedV(const ByteBuffer& head,
                         std::span<const corba::Octet> tail);

  transport::ComChannel* channel_;
  Dispatcher dispatcher_;
  // Immutable, typically shared across every connection of one ORB.
  std::shared_ptr<const Options> options_;
  Locator locator_;

  Mutex send_mu_{LockRank::kEngine, "giop::GiopServer::send_mu_"};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> requests_cancelled_{0};
  std::atomic<std::uint64_t> requests_shed_{0};

  // Identity under the dispatch pool (shared or private).
  const std::uint64_t runner_id_ = DispatchPool::AllocRunnerId();

  mutable Mutex pool_mu_{LockRank::kDispatchPool, "giop::GiopServer::pool_mu_"};
  bool pool_closed_ COOL_GUARDED_BY(pool_mu_) = false;
  // Private worker pool (pool == nullptr mode): the same hierarchical
  // scheduler as the shared pool, just not shared — one code path, no
  // duplicated queue logic. Created once under pool_mu_; the object stays
  // alive until the destructor, so a pointer read under pool_mu_ may be
  // used after release (Submit must not run under pool_mu_: it blocks for
  // backpressure).
  std::unique_ptr<DispatchPool> private_pool_ COOL_GUARDED_BY(pool_mu_);
  // CancelRequest bookkeeping, allocated on the first cancel: cancels are
  // rare, and a default-constructed std::deque eagerly allocates ~576
  // bytes in libstdc++ — real money with one GiopServer per connection at
  // 100k connections.
  struct CancelMemory {
    std::unordered_set<corba::ULong> ids;
    std::deque<corba::ULong> fifo;  // FIFO eviction order beyond the cap
  };
  std::unique_ptr<CancelMemory> cancel_memory_ COOL_GUARDED_BY(pool_mu_);
};

}  // namespace cool::giop
