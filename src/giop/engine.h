// GIOP protocol engines: the client and server halves of the message layer,
// running over one generic-transport channel each. The engines own request
// ids, reply matching, version selection (1.0 vs the 9.9 QoS extension) and
// backwards compatibility (a server with the extension disabled answers 9.9
// Requests with MessageError, as an unmodified COOL would).
#pragma once

#include <functional>
#include <unordered_set>

#include "common/mutex.h"
#include "giop/message.h"
#include "transport/com_channel.h"

namespace cool::giop {

class GiopClient {
 public:
  struct Options {
    // Speak GIOP 9.9 for requests that carry QoS parameters. Requests
    // without QoS always use standard GIOP 1.0 (paper §4.1: "Never call
    // setQoSParameter: no QoS support is required and standard GIOP can be
    // used").
    bool use_qos_extension = true;
    cdr::ByteOrder order = cdr::NativeOrder();
    corba::OctetSeq principal;
  };

  // The channel must outlive the engine.
  GiopClient(transport::ComChannel* channel, Options options)
      : channel_(channel), options_(options) {}

  // A received Reply, with accessors to decode its result body.
  struct Reply {
    ReplyHeader header;
    ParsedMessage message;
    cdr::Decoder MakeResultsDecoder() const;

    // The reply body (results / exception) as raw octets, and its offset
    // within the whole GIOP message (always 8-aligned), for callers that
    // re-home the bytes into their own decoder.
    std::span<const corba::Octet> ResultsBytes() const {
      return std::span<const corba::Octet>(message.body)
          .subspan(results_offset_ - kHeaderSize);
    }
    std::size_t ResultsMessageOffset() const { return results_offset_; }

   private:
    friend class GiopClient;
    std::size_t results_offset_ = 0;
  };

  // Synchronous two-way invocation. `args_cdr` must be encoded with an
  // 8-aligned base offset (use MakeArgsEncoder). Carries `qos_params` in an
  // extended 9.9 Request when non-empty.
  Result<Reply> Invoke(const corba::OctetSeq& object_key,
                       const std::string& operation,
                       std::span<const corba::Octet> args_cdr,
                       const std::vector<qos::QoSParameter>& qos_params,
                       Duration timeout = seconds(10));

  // One-way (response_expected = false); returns after handing the Request
  // to the transport.
  Status InvokeOneway(const corba::OctetSeq& object_key,
                      const std::string& operation,
                      std::span<const corba::Octet> args_cdr,
                      const std::vector<qos::QoSParameter>& qos_params);

  // Deferred-synchronous: sends the Request and returns its id; collect the
  // Reply later with PollReply (or abandon it with Cancel).
  Result<corba::ULong> InvokeDeferred(
      const corba::OctetSeq& object_key, const std::string& operation,
      std::span<const corba::Octet> args_cdr,
      const std::vector<qos::QoSParameter>& qos_params);
  Result<Reply> PollReply(corba::ULong request_id,
                          Duration timeout = seconds(10));

  // Sends CancelRequest and locally abandons the id: a late Reply for it is
  // discarded by the matching loop.
  Status Cancel(corba::ULong request_id);

  // GIOP object location probe.
  Result<LocateStatus> Locate(const corba::OctetSeq& object_key,
                              Duration timeout = seconds(10));

  // Sends CloseConnection (client-initiated shutdown is non-standard in
  // GIOP 1.0 but COOL uses it to tear down idle bindings).
  Status SendClose();

  // Argument encoder whose alignment matches the spliced position inside
  // the Request message (8-aligned).
  cdr::Encoder MakeArgsEncoder() const {
    return cdr::Encoder(options_.order, 0);
  }

  corba::ULong last_request_id() const {
    MutexLock lock(mu_);
    return next_request_id_ - 1;
  }

 private:
  Result<ParsedMessage> NextMatchingReplyLocked(corba::ULong request_id,
                                                Duration timeout)
      COOL_REQUIRES(mu_);
  ByteBuffer BuildRequestMessage(
      const corba::OctetSeq& object_key, const std::string& operation,
      std::span<const corba::Octet> args_cdr,
      const std::vector<qos::QoSParameter>& qos_params,
      bool response_expected, corba::ULong request_id) const;

  transport::ComChannel* channel_;
  Options options_;
  mutable Mutex mu_;
  corba::ULong next_request_id_ COOL_GUARDED_BY(mu_) = 1;
  std::unordered_set<corba::ULong> abandoned_ COOL_GUARDED_BY(mu_);
};

class GiopServer {
 public:
  struct Options {
    // When false the server is an unmodified GIOP 1.0 implementation: a
    // 9.9 Request is answered with MessageError.
    bool accept_qos_extension = true;
    cdr::ByteOrder order = cdr::NativeOrder();
  };

  // What the upcall produced; body must be encoded with MakeBodyEncoder.
  struct DispatchResult {
    ReplyStatus status = ReplyStatus::kNoException;
    ByteBuffer body;
  };

  // Upcall into the object adapter. The decoder is positioned at the
  // operation arguments.
  using Dispatcher =
      std::function<DispatchResult(const RequestHeader&, cdr::Decoder&)>;
  // Object-existence probe for LocateRequest.
  using Locator = std::function<bool(const corba::OctetSeq&)>;

  GiopServer(transport::ComChannel* channel, Dispatcher dispatcher,
             Options options)
      : channel_(channel),
        dispatcher_(std::move(dispatcher)),
        options_(options) {}

  void SetLocator(Locator locator) { locator_ = std::move(locator); }

  // Handles exactly one incoming message. Returns:
  //  * OK            — message handled, connection still open
  //  * kCancelled    — peer sent CloseConnection (clean end)
  //  * kUnavailable  — transport gone
  //  * other         — protocol violation (a MessageError was sent back
  //                    when possible)
  Status ServeOne(Duration timeout = seconds(30));

  // Loop until the connection ends; returns the terminating status
  // (kCancelled for a clean CloseConnection).
  Status Serve();

  cdr::Encoder MakeBodyEncoder() const {
    return cdr::Encoder(options_.order, 0);
  }

  std::uint64_t requests_served() const { return requests_served_; }

 private:
  Status HandleRequest(const ParsedMessage& msg);

  transport::ComChannel* channel_;
  Dispatcher dispatcher_;
  Options options_;
  Locator locator_;
  std::unordered_set<corba::ULong> cancelled_;
  std::uint64_t requests_served_ = 0;
};

}  // namespace cool::giop
